# Convenience entry points; everything below is plain dune.

.PHONY: all check test check-fault bench bench-json clean

all:
	dune build

check:
	dune build && dune runtest

test: check

# Fault-injection / differential conformance suite on its own (all its
# randomized tests run under a fixed seed baked into the test file).
check-fault:
	dune exec test/test_fault.exe

# Full benchmark/reproduction suite (slow).
bench:
	dune exec bench/main.exe -- all

# Machine-readable mod-exp + perf trajectory (BENCH_modexp.json).
bench-json:
	dune exec bench/main.exe -- json

clean:
	dune clean

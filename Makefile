# Convenience entry points; everything below is plain dune.

.PHONY: all check test check-fault check-obs check-obs-net check-resilience check-net check-serve check-soak check-stream check-crypto-perf bench bench-json clean

all:
	dune build

check:
	dune build && dune runtest

test: check

# Fault-injection / differential conformance suite on its own (all its
# randomized tests run under a fixed seed baked into the test file).
check-fault:
	dune exec test/test_fault.exe

# Telemetry suite: the obs unit/differential tests, a traced run whose
# output must parse, and BENCH_protocols.json regeneration + schema
# validation (small domain so it stays CI-fast).
check-obs:
	dune exec test/test_obs.exe
	dune exec bin/secmed.exe -- run --scheme pm --rows 16 --distinct 8 --overlap 4 \
	    --trace _build/trace_ci.json
	dune exec bench/main.exe -- json-protocols --sizes 4
	dune exec bin/secmed.exe -- check-bench BENCH_protocols.json

# Distributed-tracing suite: the Trace_wire codec, the forked loopback
# cluster traced end to end (one merged Chrome trace, per-process phase
# structure differentially equal to the in-process run, source spans
# rooted under the mediator's session span), and the live stats surface
# of a loaded mediator.
check-obs-net:
	dune exec test/test_trace_net.exe -- test -e

# Resilience suite: deterministic session-layer tests (manual clocks,
# seeded jitter — never sleeps), a CLI run that must degrade gracefully
# (exit 4 = degraded-but-served), and BENCH_resilience.json
# regeneration + schema validation.
check-resilience:
	dune exec test/test_resilience.exe
	dune exec bin/secmed.exe -- run --scheme pm --rows 16 --distinct 8 --overlap 4 \
	    --fault "byzantine:1:garbage-paillier" --fallback auto --deadline 30; \
	    test $$? -eq 4
	dune exec bench/main.exe -- json-resilience
	dune exec bin/secmed.exe -- check-bench BENCH_resilience.json

# Networked-transport suite: frame codec and mux units, the forked
# loopback cluster differential (distributed run bit-identical to the
# in-process one), live chaos-proxy conformance, and BENCH_net.json
# regeneration + schema validation.
check-net:
	dune exec test/test_net.exe -- test -e
	dune exec bench/main.exe -- json-net
	dune exec bin/secmed.exe -- check-bench BENCH_net.json

# Sustained-load serving suite: the deterministic loadgen fleet against
# a forked loopback cluster (64 verified sessions, typed backpressure,
# domain-parallel mux consumers), then a smoke concurrency sweep of the
# BENCH_serve.json emitter with schema validation.
check-serve:
	dune exec test/test_serve.exe -- test -e
	dune exec bench/main.exe -- json-serve --smoke
	dune exec bin/secmed.exe -- check-bench BENCH_serve.json

# Crash/restart chaos suite: the pure-schedule and smoke-soak tests,
# then a seeded CLI soak — real SIGKILLs against source replicas and a
# SIGTERM drain-restart of the mediator under a verifying fleet — that
# must hold every robustness invariant (exit 0) and leaves its
# machine-readable transition log as a CI artifact.
check-soak:
	dune exec test/test_soak.exe -- test -e
	dune exec bin/secmed.exe -- soak --fast --workers 2 --sessions 3 --kills 2 \
	    --drains 1 --rate 6 --log SOAK_transitions.jsonl

# Streaming-delivery suite: chunk codec / reassembly / credit-flow
# units, the sharded-vs-single differential (k=4, all five schemes,
# bit-identical results and transcripts), then a smoke run of the
# BENCH_stream.json emitter — bounded merge-window high-water marks and
# the receive-buffer reuse allocation comparison — with schema
# validation (the validator also enforces the bounds).
check-stream:
	dune exec test/test_stream.exe -- test -e
	dune exec test/test_shard.exe -- test -e
	dune exec bench/main.exe -- json-stream --smoke
	dune exec bin/secmed.exe -- check-bench BENCH_stream.json

# Crypto hot-path suite: the bigint/crypto differential tests (CRT vs
# plain decryption, Multi_exp vs separate mod_pows, domain-local cache
# stress) plus the batch-executor determinism suite, then a smoke run of
# the BENCH_modexp.json emitter on tiny sizes with schema validation —
# so the JSON writers can't rot.
check-crypto-perf:
	dune exec test/test_bigint.exe
	dune exec test/test_crypto.exe
	dune exec test/test_batch.exe
	dune exec bench/main.exe -- json --sizes 4 --rounds 1
	dune exec bin/secmed.exe -- check-bench BENCH_modexp.json

# Full benchmark/reproduction suite (slow).
bench:
	dune exec bench/main.exe -- all

# Machine-readable mod-exp + perf trajectory (BENCH_modexp.json).
bench-json:
	dune exec bench/main.exe -- json

clean:
	dune clean

# Convenience entry points; everything below is plain dune.

.PHONY: all check test bench bench-json clean

all:
	dune build

check:
	dune build && dune runtest

test: check

# Full benchmark/reproduction suite (slow).
bench:
	dune exec bench/main.exe -- all

# Machine-readable mod-exp + perf trajectory (BENCH_modexp.json).
bench-json:
	dune exec bench/main.exe -- json

clean:
	dune clean

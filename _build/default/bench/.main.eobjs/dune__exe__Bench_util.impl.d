bench/bench_util.ml: Analyze Array Bechamel Benchmark Float Hashtbl Instance List Measure Printf Stdlib String Time Toolkit Unix

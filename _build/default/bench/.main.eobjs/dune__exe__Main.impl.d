bench/main.ml: Ablations Arg Cmd Cmdliner Experiments List Term

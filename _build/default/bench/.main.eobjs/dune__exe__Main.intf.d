bench/main.mli:

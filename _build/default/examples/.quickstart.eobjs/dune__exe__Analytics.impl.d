examples/analytics.ml: Aggregate_join Env Option Outcome Printf Relation Schema Secmed_core Secmed_mediation Secmed_relalg Value

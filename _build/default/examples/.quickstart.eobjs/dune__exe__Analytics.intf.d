examples/analytics.mli:

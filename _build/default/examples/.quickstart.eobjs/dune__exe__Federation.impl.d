examples/federation.ml: Catalog Credential Env List Multi_join Outcome Policy Printf Relation Schema Secmed_core Secmed_mediation Secmed_relalg Transcript Value

examples/federation.mli:

examples/medical_records.ml: Catalog Credential Env Outcome Policy Predicate Printf Protocol Relation Request Schema Secmed_core Secmed_mediation Secmed_relalg Value

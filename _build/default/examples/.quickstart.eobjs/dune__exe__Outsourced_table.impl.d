examples/outsourced_table.ml: Das_partition Env List Outcome Printf Relation Schema Secmed_core Secmed_mediation Secmed_relalg Select_query Value

examples/outsourced_table.mli:

examples/protocol_tour.ml: Leakage List Outcome Printf Protocol Relation Secmed_core Secmed_mediation Secmed_relalg String Transcript Unix Workload

examples/quickstart.ml: Env List Outcome Printf Protocol Relation Schema Secmed_core Secmed_mediation Secmed_relalg Value

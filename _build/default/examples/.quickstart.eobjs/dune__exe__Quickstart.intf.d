examples/quickstart.mli:

examples/set_operations.ml: Env Outcome Printf Relation Schema Secmed_core Secmed_mediation Secmed_relalg Set_ops Value

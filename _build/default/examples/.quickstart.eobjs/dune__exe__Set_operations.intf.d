examples/set_operations.mli:

examples/supply_chain.ml: Env Format Ground_truth Leakage Outcome Pm_join Protocol Relation Schema Secmed_core Secmed_mediation Secmed_relalg Value

(* Encrypted aggregation: answering analytics queries over a mediated
   join without revealing a single row to anyone.

   A retailer holds a customer directory; a payment processor holds
   transactions.  An analyst asks for per-customer and total spending.
   With the dedicated aggregation protocol the sources transmit only
   per-key statistics; with the homomorphic strategy the *mediator* sums
   the matched Paillier ciphertexts, so even the client sees nothing but
   the final totals.

   Run with:  dune exec examples/analytics.exe *)

open Secmed_relalg
open Secmed_core

let customers =
  Relation.of_rows
    (Schema.of_list [ ("customer_id", Value.Tint); ("tier", Value.Tstring) ])
    [
      [ Value.Int 11; Value.Str "gold" ];
      [ Value.Int 12; Value.Str "silver" ];
      [ Value.Int 13; Value.Str "gold" ];
      [ Value.Int 14; Value.Str "bronze" ];
    ]

let transactions =
  Relation.of_rows
    (Schema.of_list [ ("customer_id", Value.Tint); ("amount", Value.Tint) ])
    [
      [ Value.Int 11; Value.Int 250 ];
      [ Value.Int 11; Value.Int 120 ];
      [ Value.Int 12; Value.Int 75 ];
      [ Value.Int 13; Value.Int 310 ];
      [ Value.Int 13; Value.Int 45 ];
      [ Value.Int 99; Value.Int 9999 ];  (* customer unknown to the retailer *)
    ]

let () =
  let env =
    Env.two_source ~seed:23 ~left:("Customers", customers) ~right:("Transactions", transactions) ()
  in
  let client =
    Env.make_client env ~identity:"analyst"
      ~properties:[ [ Secmed_mediation.Credential.property "role" "analyst" ] ]
  in

  let grouped =
    "select customer_id, count(*) as orders, sum(amount) as spent, max(amount) \
     from Customers natural join Transactions group by customer_id"
  in
  Printf.printf "Query: %s\n\n" grouped;
  let o = Aggregate_join.run env client ~query:grouped in
  print_endline (Relation.to_string o.Outcome.result);
  Printf.printf "correct: %b — bytes on the wire: %d (sources shipped per-key stats, no rows)\n\n"
    (Outcome.correct o)
    (Secmed_mediation.Transcript.total_bytes o.Outcome.transcript);

  let scalar = "select count(*) as orders, sum(amount) as revenue \
                from Customers natural join Transactions" in
  Printf.printf "Query: %s   (homomorphic strategy)\n\n" scalar;
  let o = Aggregate_join.run ~strategy:Aggregate_join.Homomorphic env client ~query:scalar in
  print_endline (Relation.to_string o.Outcome.result);
  Printf.printf
    "correct: %b — the mediator combined Paillier ciphertexts; the client received %d\n\
     ciphertexts and learned nothing beyond these totals.\n"
    (Outcome.correct o)
    (Option.value ~default:0
       (Outcome.observed o.Outcome.client_observed "ciphertexts-received"))

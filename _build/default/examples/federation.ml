(* Successive joins across a three-source federation (the paper's
   Section 8 "mediator hierarchy" scenario).

   Research institutes hold trial enrollments, labs hold sample assays,
   and a registry maps assay kits to manufacturers.  One SQL query joins
   all three; the mediation runs as two successive encrypted rounds, the
   client acting as the datasource for the intermediate result.

   Run with:  dune exec examples/federation.exe *)

open Secmed_relalg
open Secmed_mediation
open Secmed_core

let enrollments =
  Relation.of_rows
    (Schema.of_list [ ("subject", Value.Tint); ("trial", Value.Tstring) ])
    [
      [ Value.Int 101; Value.Str "trial-a" ];
      [ Value.Int 102; Value.Str "trial-a" ];
      [ Value.Int 103; Value.Str "trial-b" ];
      [ Value.Int 104; Value.Str "trial-c" ];
    ]

let assays =
  Relation.of_rows
    (Schema.of_list [ ("subject", Value.Tint); ("kit", Value.Tstring); ("result", Value.Tint) ])
    [
      [ Value.Int 101; Value.Str "kit-x"; Value.Int 12 ];
      [ Value.Int 102; Value.Str "kit-y"; Value.Int 44 ];
      [ Value.Int 103; Value.Str "kit-x"; Value.Int 7 ];
      [ Value.Int 105; Value.Str "kit-z"; Value.Int 90 ];
    ]

let registry =
  Relation.of_rows
    (Schema.of_list [ ("kit", Value.Tstring); ("maker", Value.Tstring) ])
    [
      [ Value.Str "kit-x"; Value.Str "acme-bio" ];
      [ Value.Str "kit-y"; Value.Str "medisup" ];
    ]

let env =
  let entry relation source rel =
    { Catalog.relation; source; schema = Relation.schema rel; source_relation = relation }
  in
  Env.make ~seed:31
    ~catalog:
      (Catalog.make
         [ entry "Enrollments" 1 enrollments; entry "Assays" 2 assays;
           entry "Registry" 3 registry ])
    ~sources:
      [
        { Env.source_id = 1; relations = [ ("Enrollments", enrollments) ];
          policy = Policy.open_policy; advertised = [] };
        { Env.source_id = 2; relations = [ ("Assays", assays) ];
          policy = Policy.open_policy; advertised = [] };
        { Env.source_id = 3; relations = [ ("Registry", registry) ];
          policy = Policy.open_policy; advertised = [] };
      ]
    ()

let () =
  let client =
    Env.make_client env ~identity:"coordinator"
      ~properties:[ [ Credential.property "role" "coordinator" ] ]
  in
  let query =
    "select * from Enrollments natural join Assays natural join Registry where result < 50"
  in
  Printf.printf "Query: %s\n\n" query;
  let chain = Multi_join.run env client ~query in
  List.iteri
    (fun i stage ->
      Printf.printf "round %d: %s\n" (i + 1) stage.Multi_join.stage_query;
      Printf.printf "         %d messages, %d bytes, result %d tuples (%s)\n"
        (Transcript.message_count stage.Multi_join.outcome.Outcome.transcript)
        (Transcript.total_bytes stage.Multi_join.outcome.Outcome.transcript)
        (Relation.cardinality stage.Multi_join.outcome.Outcome.result)
        (if Outcome.correct stage.Multi_join.outcome then "correct" else "WRONG"))
    chain.Multi_join.stages;
  print_newline ();
  print_endline "Final federated result:";
  print_endline (Relation.to_string chain.Multi_join.result);
  Printf.printf "\nwhole chain correct: %b   total: %d messages, %d bytes\n"
    (Multi_join.correct chain) chain.Multi_join.total_messages chain.Multi_join.total_bytes

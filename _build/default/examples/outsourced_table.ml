(* Selection over a single outsourced, encrypted table — the original
   database-as-a-service workload ([13] in the paper), mediated.

   A payroll table lives encrypted behind the mediator.  The auditor's
   WHERE clause is translated (at the client) into a condition over coarse
   index values; the mediator filters ciphertexts with the relational
   engine and returns a guaranteed superset; the client decrypts and
   post-filters.  The mediator never sees a salary.

   Run with:  dune exec examples/outsourced_table.exe *)

open Secmed_relalg
open Secmed_core

let payroll =
  Relation.of_rows
    (Schema.of_list
       [ ("emp_id", Value.Tint); ("dept", Value.Tstring); ("salary", Value.Tint) ])
    [
      [ Value.Int 1; Value.Str "engineering"; Value.Int 7200 ];
      [ Value.Int 2; Value.Str "engineering"; Value.Int 6800 ];
      [ Value.Int 3; Value.Str "sales"; Value.Int 5100 ];
      [ Value.Int 4; Value.Str "sales"; Value.Int 4900 ];
      [ Value.Int 5; Value.Str "hr"; Value.Int 4500 ];
      [ Value.Int 6; Value.Str "engineering"; Value.Int 9100 ];
      [ Value.Int 7; Value.Str "hr"; Value.Int 4300 ];
      [ Value.Int 8; Value.Str "sales"; Value.Int 6200 ];
    ]

let () =
  let dummy = Relation.of_rows (Schema.of_list [ ("x", Value.Tint) ]) [ [ Value.Int 0 ] ] in
  let env = Env.two_source ~seed:41 ~left:("Payroll", payroll) ~right:("Unused", dummy) () in
  let client =
    Env.make_client env ~identity:"auditor"
      ~properties:[ [ Secmed_mediation.Credential.property "role" "auditor" ] ]
  in
  let query = "select emp_id, salary from Payroll where salary >= 5000 and dept <> 'hr'" in
  Printf.printf "Query: %s\n\n" query;
  List.iter
    (fun (label, strategy) ->
      let o = Select_query.run ~strategy env client ~query in
      Printf.printf "--- %s partitioning ---\n" label;
      print_endline (Relation.to_string o.Outcome.result);
      Printf.printf
        "correct: %b — mediator returned %d of %d rows (superset), saw only index values\n\n"
        (Outcome.correct o) o.Outcome.client_received_tuples
        (Relation.cardinality payroll))
    [ ("coarse equi-depth(2)", Das_partition.Equi_depth 2);
      ("fine singleton", Das_partition.Singleton) ]

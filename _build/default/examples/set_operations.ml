(* Secure set operations between two suppliers (the Section 8 extension
   to further relational operations).

   Two parts warehouses compare their catalogues: which stock items do we
   both carry (intersection)?  Which of mine does the other lack
   (difference)?  Which of my rows reference a part the other also stocks
   (semi-join)?  In every case the right-hand source transmits only
   fixed-size commutatively-encrypted hashes — none of its tuple data ever
   leaves the premises.

   Run with:  dune exec examples/set_operations.exe *)

open Secmed_relalg
open Secmed_core

let schema = Schema.of_list [ ("part", Value.Tstring); ("grade", Value.Tint) ]

let warehouse_a =
  Relation.of_rows schema
    [
      [ Value.Str "bearing"; Value.Int 2 ];
      [ Value.Str "gasket"; Value.Int 1 ];
      [ Value.Str "rotor"; Value.Int 3 ];
      [ Value.Str "rotor"; Value.Int 3 ];
      [ Value.Str "shaft"; Value.Int 2 ];
    ]

let warehouse_b =
  Relation.of_rows schema
    [
      [ Value.Str "bearing"; Value.Int 2 ];
      [ Value.Str "rotor"; Value.Int 1 ];
      [ Value.Str "valve"; Value.Int 4 ];
    ]

let () =
  let env =
    Env.two_source ~seed:8 ~left:("WarehouseA", warehouse_a) ~right:("WarehouseB", warehouse_b) ()
  in
  let client =
    Env.make_client env ~identity:"buyer"
      ~properties:[ [ Secmed_mediation.Credential.property "role" "buyer" ] ]
  in
  let show title outcome =
    Printf.printf "=== %s (correct: %b) ===\n" title (Outcome.correct outcome);
    print_endline (Relation.to_string outcome.Outcome.result);
    Printf.printf "right source sent %d bytes (hashes only)\n\n"
      (Secmed_mediation.Transcript.bytes_sent_by outcome.Outcome.transcript
         (Secmed_mediation.Transcript.Source 2))
  in
  show "intersection — identical (part, grade) rows"
    (Set_ops.run env client Set_ops.Intersection ~left:"WarehouseA" ~right:"WarehouseB");
  show "difference — rows only WarehouseA has"
    (Set_ops.run env client Set_ops.Difference ~left:"WarehouseA" ~right:"WarehouseB");
  show "semi-join on part — A's rows whose part B also stocks"
    (Set_ops.run ~on:[ "part" ] env client Set_ops.Semi_join ~left:"WarehouseA"
       ~right:"WarehouseB")

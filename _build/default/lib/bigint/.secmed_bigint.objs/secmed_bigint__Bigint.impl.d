lib/bigint/bigint.ml: Array Buffer Char Format Hashtbl List Printf String

lib/core/aggregate_join.mli: Env Outcome

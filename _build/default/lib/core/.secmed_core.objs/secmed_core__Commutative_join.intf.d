lib/core/commutative_join.mli: Env Outcome

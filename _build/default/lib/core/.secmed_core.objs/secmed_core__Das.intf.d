lib/core/das.mli: Das_partition Elgamal Env Hybrid Outcome Predicate Prng Relation Secmed_crypto Secmed_relalg

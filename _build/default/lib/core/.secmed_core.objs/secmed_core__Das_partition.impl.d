lib/core/das_partition.ml: Array Bigint Float Format Hashtbl List Option Printf Random_oracle Secmed_bigint Secmed_crypto Secmed_mediation Secmed_relalg Stdlib String Value

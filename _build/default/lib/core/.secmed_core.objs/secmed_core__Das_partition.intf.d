lib/core/das_partition.mli: Format Secmed_relalg Value

lib/core/das_translate.ml: Das_partition List Predicate Secmed_relalg Value

lib/core/das_translate.mli: Das_partition Predicate Secmed_relalg Value

lib/core/env.ml: Catalog Credential Elgamal Group List Paillier Policy Prng Relation Secmed_crypto Secmed_mediation Secmed_relalg

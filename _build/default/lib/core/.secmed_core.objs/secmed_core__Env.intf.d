lib/core/env.mli: Catalog Credential Elgamal Group Paillier Policy Prng Relation Secmed_crypto Secmed_mediation Secmed_relalg

lib/core/ground_truth.ml: Format Join_key List Relation Request Secmed_mediation Secmed_relalg

lib/core/ground_truth.mli: Format Relation Request Secmed_relalg

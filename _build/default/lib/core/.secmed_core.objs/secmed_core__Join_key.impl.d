lib/core/join_key.ml: Array Hashtbl List Relation Schema Secmed_relalg String Tuple Value

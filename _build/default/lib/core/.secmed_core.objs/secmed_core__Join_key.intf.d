lib/core/join_key.mli: Relation Schema Secmed_relalg Tuple Value

lib/core/leakage.ml: Array Buffer Counters Format Ground_truth List Option Outcome Printf Secmed_crypto Secmed_relalg Stdlib String

lib/core/leakage.mli: Format Ground_truth Outcome

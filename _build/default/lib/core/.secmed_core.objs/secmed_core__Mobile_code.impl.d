lib/core/mobile_code.ml: Algebra Catalog Counters Env Hybrid Outcome Parser Printf Relation Request Secmed_crypto Secmed_mediation Secmed_relalg Secmed_sql String Transcript Tuple Wire

lib/core/mobile_code.mli: Env Outcome

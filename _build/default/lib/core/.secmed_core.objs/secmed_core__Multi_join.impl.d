lib/core/multi_join.ml: Ast Buffer Catalog Env List Option Outcome Parser Policy Predicate Printf Protocol Relation Schema Secmed_mediation Secmed_relalg Secmed_sql Stdlib String Transcript

lib/core/multi_join.mli: Env Outcome Protocol Relation Secmed_relalg

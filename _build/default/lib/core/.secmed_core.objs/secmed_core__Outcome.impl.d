lib/core/outcome.ml: Counters Format List Option Relation Secmed_crypto Secmed_mediation Secmed_relalg Stdlib Transcript Unix

lib/core/outcome.mli: Counters Format Relation Secmed_crypto Secmed_mediation Secmed_relalg Transcript

lib/core/plain_join.ml: Catalog Counters List Outcome Printf Relation Request Secmed_crypto Secmed_mediation Secmed_relalg String Transcript Tuple

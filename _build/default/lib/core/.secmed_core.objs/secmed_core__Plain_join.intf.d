lib/core/plain_join.mli: Env Outcome

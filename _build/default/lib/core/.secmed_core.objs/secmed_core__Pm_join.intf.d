lib/core/pm_join.mli: Env Outcome Secmed_bigint Secmed_relalg

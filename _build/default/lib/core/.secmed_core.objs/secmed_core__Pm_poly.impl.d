lib/core/pm_poly.ml: Array Bigint Counters List Paillier Prng Secmed_bigint Secmed_crypto

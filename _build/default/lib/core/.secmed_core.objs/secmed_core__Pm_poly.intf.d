lib/core/pm_poly.mli: Bigint Paillier Prng Secmed_bigint Secmed_crypto

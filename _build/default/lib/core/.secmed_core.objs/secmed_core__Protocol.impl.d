lib/core/protocol.ml: Commutative_join Das Das_partition Mobile_code Plain_join Pm_join Printf

lib/core/protocol.mli: Das Das_partition Env Outcome Pm_join

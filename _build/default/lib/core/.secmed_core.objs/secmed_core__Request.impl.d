lib/core/request.ml: Aggregate Catalog Credential Env Join_key List Parser Policy Relation Secmed_crypto Secmed_mediation Secmed_relalg Secmed_sql String Transcript

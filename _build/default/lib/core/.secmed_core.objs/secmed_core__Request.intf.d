lib/core/request.mli: Catalog Credential Elgamal Env Join_key Relation Secmed_crypto Secmed_mediation Secmed_relalg Transcript Tuple

lib/core/select_query.mli: Das_partition Env Outcome

lib/core/set_ops.mli: Env Outcome

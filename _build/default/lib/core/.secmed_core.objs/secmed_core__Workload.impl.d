lib/core/workload.ml: Array Credential Env Float Hashtbl List Option Printf Prng Relation Schema Secmed_crypto Secmed_mediation Secmed_relalg Stdlib Tuple Value

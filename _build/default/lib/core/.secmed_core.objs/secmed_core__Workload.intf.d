lib/core/workload.mli: Env Relation Secmed_relalg

(** Secure mediation of aggregation queries over a join
    (SELECT ... COUNT/SUM/MIN/MAX/AVG ... FROM R1 NATURAL JOIN R2
    [GROUP BY A_join]).

    Related work the paper surveys ([14], [9], [18]) computes aggregates
    over encrypted data; this module brings that query class to the
    mediated setting.  The key observation: every aggregate over the join
    decomposes into per-join-key statistics each source can compute on its
    own plaintext — count c_i(a), sum/min/max of its own columns over
    Tup_i(a) — so the sources only ship *per-key aggregate bundles*, never
    tuples.  Matching uses the commutative machinery of Listing 3.

    Two delivery strategies:

    - {b Bundles} (default): each source hybrid-encrypts one bundle per
      key; the mediator forwards the matched pairs; the client combines
      them (e.g. SUM(R2.y) = Σ_a c_1(a)·s_2(a)).  The client learns per-key
      aggregates — strictly less than the full join it is entitled to.
    - {b Homomorphic}: for scalar (non-grouped) COUNT/SUM over right-side
      columns with duplicate-free left join keys, the right source sends
      Paillier ciphertexts and the *mediator* combines the matched ones
      homomorphically, so the client receives a single ciphertext per
      aggregate and learns nothing but the totals. *)

type strategy =
  | Bundles
  | Homomorphic

exception Unsupported of string
(** Query shapes outside this protocol: a residual WHERE, GROUP BY on
    anything but the join attributes, aggregated columns not clearly
    belonging to one relation, or — for {!Homomorphic} — grouped queries,
    non-COUNT/SUM aggregates, left-side columns, or a left relation whose
    join keys are not duplicate-free. *)

val run :
  ?strategy:strategy ->
  Env.t ->
  Env.client ->
  query:string ->
  Outcome.t
(** The outcome's [result] is the aggregate relation (group keys followed
    by one column per aggregate, or a single row for scalar queries);
    [exact] is the trusted-mediator reference. *)

open Secmed_bigint
open Secmed_crypto
open Secmed_relalg
module Mwire = Secmed_mediation.Wire

type strategy =
  | Singleton
  | Equi_width of int
  | Equi_depth of int
  | Hash_buckets of int

let strategy_name = function
  | Singleton -> "singleton"
  | Equi_width k -> Printf.sprintf "equi-width(%d)" k
  | Equi_depth k -> Printf.sprintf "equi-depth(%d)" k
  | Hash_buckets k -> Printf.sprintf "hash-buckets(%d)" k

type partition =
  | Interval of int * int
  | Value_set of Value.t list

type t = {
  relation : string;
  attr : string;
  entries : (partition * int) list;
}

let relation t = t.relation
let attr t = t.attr
let entries t = t.entries
let partition_count t = List.length t.entries

let partition_descriptor = function
  | Interval (lo, hi) -> Printf.sprintf "interval:%d:%d" lo hi
  | Value_set vs ->
    "values:" ^ String.concat "\001" (List.map Value.encode vs)

(* Collision-free identifier from the partition's properties; on the
   (astronomically unlikely) collision within one table, re-salt. *)
let assign_identifiers ~relation ~attr partitions =
  let bound = Bigint.shift_left Bigint.one 62 in
  let identifier salt p =
    let input =
      Printf.sprintf "das-index|%s|%s|%d|%s" relation attr salt (partition_descriptor p)
    in
    let id = Bigint.to_int (Random_oracle.hash_to_range input bound) in
    (id, salt)
  in
  let seen = Hashtbl.create 16 in
  List.map
    (fun p ->
      let rec fresh salt =
        let id, _ = identifier salt p in
        if Hashtbl.mem seen id then fresh (salt + 1)
        else begin
          Hashtbl.add seen id ();
          id
        end
      in
      (p, fresh 0))
    partitions

let distinct_sorted values = List.sort_uniq Value.compare values

let int_values values =
  List.map
    (function
      | Value.Int n -> n
      | Value.Str _ | Value.Bool _ ->
        invalid_arg "Das_partition: equi-width needs an integer domain")
    values

(* Split a list into k contiguous chunks whose sizes differ by at most 1. *)
let chunk_evenly k items =
  let n = List.length items in
  let base = n / k and extra = n mod k in
  let rec go i remaining =
    if i >= k || remaining = [] then []
    else begin
      let size = base + (if i < extra then 1 else 0) in
      let rec take acc count rest =
        if count = 0 then (List.rev acc, rest)
        else begin
          match rest with
          | [] -> (List.rev acc, [])
          | x :: tail -> take (x :: acc) (count - 1) tail
        end
      in
      let chunk, rest = take [] size remaining in
      if chunk = [] then go (i + 1) rest else chunk :: go (i + 1) rest
    end
  in
  go 0 items

let partitions_of strategy values =
  let distinct = distinct_sorted values in
  if distinct = [] then []
  else begin
    match strategy with
    | Singleton -> List.map (fun v -> Value_set [ v ]) distinct
    | Equi_width k ->
      if k <= 0 then invalid_arg "Das_partition: non-positive partition count";
      let ints = int_values distinct in
      let lo = List.hd ints and hi = List.nth ints (List.length ints - 1) in
      let span = hi - lo + 1 in
      let width = Stdlib.max 1 ((span + k - 1) / k) in
      let rec build start =
        if start > hi then []
        else begin
          let stop = Stdlib.min hi (start + width - 1) in
          Interval (start, stop) :: build (stop + 1)
        end
      in
      (* Drop intervals containing no active value (identifiers are per
         active partition, as in the paper). *)
      List.filter
        (fun p ->
          match p with
          | Interval (a, b) -> List.exists (fun v -> v >= a && v <= b) ints
          | Value_set _ -> true)
        (build lo)
    | Equi_depth k ->
      if k <= 0 then invalid_arg "Das_partition: non-positive partition count";
      let chunks = chunk_evenly k distinct in
      let all_ints = List.for_all (function Value.Int _ -> true | _ -> false) distinct in
      List.map
        (fun chunk ->
          if all_ints then begin
            match (List.hd chunk, List.nth chunk (List.length chunk - 1)) with
            | Value.Int a, Value.Int b -> Interval (a, b)
            | _ -> assert false
          end
          else Value_set chunk)
        chunks
    | Hash_buckets k ->
      if k <= 0 then invalid_arg "Das_partition: non-positive partition count";
      let bound = Bigint.of_int k in
      let buckets = Array.make k [] in
      List.iter
        (fun v ->
          let b = Bigint.to_int (Random_oracle.hash_to_range ("das-bucket" ^ Value.encode v) bound) in
          buckets.(b) <- v :: buckets.(b))
        distinct;
      Array.to_list buckets
      |> List.filter_map (fun vs ->
             match vs with [] -> None | _ :: _ -> Some (Value_set (distinct_sorted vs)))
  end

let adapt strategy values =
  match strategy with
  | Equi_width k
    when List.exists (function Value.Int _ -> false | Value.Str _ | Value.Bool _ -> true) values
    ->
    Equi_depth k
  | Singleton | Equi_width _ | Equi_depth _ | Hash_buckets _ -> strategy

let build strategy ~relation ~attr values =
  { relation; attr; entries = assign_identifiers ~relation ~attr (partitions_of strategy values) }

let value_in_partition v = function
  | Interval (lo, hi) ->
    (match v with Value.Int n -> n >= lo && n <= hi | Value.Str _ | Value.Bool _ -> false)
  | Value_set vs -> List.exists (Value.equal v) vs

let index_of_opt t v =
  List.find_map (fun (p, id) -> if value_in_partition v p then Some id else None) t.entries

let index_of t v =
  match index_of_opt t v with Some id -> id | None -> raise Not_found

let overlap p1 p2 =
  match (p1, p2) with
  | Interval (a, b), Interval (c, d) -> a <= d && c <= b
  | Interval _, Value_set vs -> List.exists (fun v -> value_in_partition v p1) vs
  | Value_set vs, Interval _ -> List.exists (fun v -> value_in_partition v p2) vs
  | Value_set xs, Value_set ys ->
    List.exists (fun x -> List.exists (Value.equal x) ys) xs

let overlapping_pairs t1 t2 =
  List.concat_map
    (fun (p1, i1) ->
      List.filter_map (fun (p2, i2) -> if overlap p1 p2 then Some (i1, i2) else None) t2.entries)
    t1.entries

let disclosure_bits t values =
  let counts = Hashtbl.create 16 in
  let total = ref 0 in
  List.iter
    (fun v ->
      match index_of_opt t v with
      | None -> ()
      | Some id ->
        incr total;
        Hashtbl.replace counts id (1 + Option.value ~default:0 (Hashtbl.find_opt counts id)))
    values;
  if !total = 0 then 0.0
  else begin
    Hashtbl.fold
      (fun _ count acc ->
        let p = float_of_int count /. float_of_int !total in
        acc -. (p *. (Float.log p /. Float.log 2.0)))
      counts 0.0
  end

let to_wire t =
  let w = Mwire.writer () in
  Mwire.write_string w t.relation;
  Mwire.write_string w t.attr;
  Mwire.write_list w
    (fun (p, id) ->
      (match p with
       | Interval (lo, hi) ->
         Mwire.write_int w 0;
         Mwire.write_int w lo;
         Mwire.write_int w hi
       | Value_set vs ->
         Mwire.write_int w 1;
         Mwire.write_list w (fun v -> Mwire.write_string w (Value.encode v)) vs);
      Mwire.write_int w id)
    t.entries;
  Mwire.contents w

let of_wire blob =
  let r = Mwire.reader blob in
  let relation = Mwire.read_string r in
  let attr = Mwire.read_string r in
  let entries =
    Mwire.read_list r (fun () ->
        let tag = Mwire.read_int r in
        let p =
          match tag with
          | 0 ->
            let lo = Mwire.read_int r in
            let hi = Mwire.read_int r in
            Interval (lo, hi)
          | 1 ->
            let vs =
              Mwire.read_list r (fun () -> fst (Value.decode (Mwire.read_string r) 0))
            in
            Value_set vs
          | _ -> invalid_arg "Das_partition.of_wire: bad partition tag"
        in
        let id = Mwire.read_int r in
        (p, id))
  in
  Mwire.expect_end r;
  { relation; attr; entries }

let pp fmt t =
  Format.fprintf fmt "ITable_{%s.%s}:@." t.relation t.attr;
  List.iter
    (fun (p, id) ->
      let desc =
        match p with
        | Interval (lo, hi) -> Printf.sprintf "[%d, %d]" lo hi
        | Value_set vs -> "{" ^ String.concat ", " (List.map Value.to_string vs) ^ "}"
      in
      Format.fprintf fmt "  %-30s -> %d@." desc id)
    t.entries

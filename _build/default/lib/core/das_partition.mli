(** Active-domain partitioning and index tables for the DAS scheme
    (Hacıgümüş et al., paper Section 3).

    A datasource divides dom_active(A_join) into partitions and assigns
    each a unique identifier computed with a collision-free hash over the
    partition's description; identifiers serve as the index values A^S. *)

open Secmed_relalg

type strategy =
  | Singleton
      (** one partition per distinct value — finest indexing, maximal
          index leakage, no false positives *)
  | Equi_width of int
      (** k equal-width integer intervals spanning \[min, max\] (integer
          join attributes only) *)
  | Equi_depth of int
      (** k partitions of (nearly) equally many distinct values; integer
          domains use covering intervals, other types explicit value sets *)
  | Hash_buckets of int
      (** k buckets by hash of the value — non-order-preserving *)

val strategy_name : strategy -> string

type partition =
  | Interval of int * int      (** inclusive integer range *)
  | Value_set of Value.t list  (** sorted distinct values *)

type t
(** An index table ITable_{R.A}: the mapping partition -> index value. *)

val adapt : strategy -> Value.t list -> strategy
(** [Equi_width] falls back to [Equi_depth] (same partition count) when
    the domain is not purely integer; other strategies pass through. *)

val build : strategy -> relation:string -> attr:string -> Value.t list -> t
(** Builds the index table for the given active domain (any order,
    duplicates tolerated).  Raises [Invalid_argument] for [Equi_width] on
    non-integer domains or non-positive partition counts. *)

val relation : t -> string
val attr : t -> string
val entries : t -> (partition * int) list
val partition_count : t -> int

val index_of : t -> Value.t -> int
(** Index value of the partition containing the value.  Raises [Not_found]
    when no partition covers it. *)

val index_of_opt : t -> Value.t -> int option

val overlap : partition -> partition -> bool
(** p1 ∩ p2 ≠ ∅ (interval/interval on ranges, otherwise on value sets). *)

val overlapping_pairs : t -> t -> (int * int) list
(** Index-value pairs (i1, i2) of overlapping partitions — exactly the
    disjuncts of the server condition Cond_S. *)

val disclosure_bits : t -> Value.t list -> float
(** Shannon entropy (bits) of the index-value distribution induced by the
    given column of values: how much a tuple's index value tells the
    mediator about its join attribute.  0 for a single partition; equals
    the full value entropy for [Singleton]. *)

val to_wire : t -> string
val of_wire : string -> t
(** Raises [Invalid_argument] on malformed input. *)

val pp : Format.formatter -> t -> unit

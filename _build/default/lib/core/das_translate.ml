open Secmed_relalg

let index_attr name = "idx_" ^ name

(* Could any value of the partition satisfy [x cmp v]? *)
let possibly (cmp : Predicate.comparison) v partition =
  match partition with
  | Das_partition.Value_set xs ->
    List.exists
      (fun x ->
        let c = Value.compare x v in
        match cmp with
        | Predicate.Eq -> c = 0
        | Predicate.Ne -> c <> 0
        | Predicate.Lt -> c < 0
        | Predicate.Le -> c <= 0
        | Predicate.Gt -> c > 0
        | Predicate.Ge -> c >= 0)
      xs
  | Das_partition.Interval (lo, hi) ->
    (match v with
     | Value.Int n ->
       (match cmp with
        | Predicate.Eq -> lo <= n && n <= hi
        | Predicate.Ne -> not (lo = n && hi = n)
        | Predicate.Lt -> lo < n
        | Predicate.Le -> lo <= n
        | Predicate.Gt -> hi > n
        | Predicate.Ge -> hi >= n)
     | Value.Str _ | Value.Bool _ ->
       (* Mixed-type comparison over an integer range: stay sound. *)
       (match cmp with Predicate.Eq -> false | _ -> true))

(* Could some value of the partition lie outside [vs]? *)
let possibly_not_in vs partition =
  match partition with
  | Das_partition.Value_set xs ->
    List.exists (fun x -> not (List.exists (Value.equal x) vs)) xs
  | Das_partition.Interval (lo, hi) ->
    if hi - lo + 1 > List.length vs then true
    else begin
      let rec scan n =
        n <= hi
        && (not (List.exists (Value.equal (Value.Int n)) vs) || scan (n + 1))
      in
      scan lo
    end

let possibly_in vs partition =
  List.exists (fun v -> possibly Predicate.Eq v partition) vs

(* The index-domain condition keeping exactly the partitions of [table]
   selected by [keep]. *)
let keep_condition attr table keep =
  let entries = Das_partition.entries table in
  let kept = List.filter (fun (p, _) -> keep p) entries in
  if List.length kept = List.length entries then Predicate.True
  else begin
    match kept with
    | [] -> Predicate.False
    | _ :: _ ->
      Predicate.In
        (Predicate.Attr (index_attr attr), List.map (fun (_, id) -> Value.Int id) kept)
  end

let flip_comparison : Predicate.comparison -> Predicate.comparison = function
  | Eq -> Eq
  | Ne -> Ne
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

let negate_comparison : Predicate.comparison -> Predicate.comparison = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let translate ~tables predicate =
  (* [go positive p] is a sound server condition for p (or for ¬p when
     [positive] is false); negation is pushed inward. *)
  let atom_cmp positive cmp attr v =
    let cmp = if positive then cmp else negate_comparison cmp in
    match tables attr with
    | None -> Predicate.True
    | Some table ->
      (match cmp with
       | Predicate.Ne ->
         keep_condition attr table (fun p -> possibly_not_in [ v ] p)
       | Predicate.Eq | Predicate.Lt | Predicate.Le | Predicate.Gt | Predicate.Ge ->
         keep_condition attr table (possibly cmp v))
  in
  let rec go positive p =
    match p with
    | Predicate.True -> if positive then Predicate.True else Predicate.False
    | Predicate.False -> if positive then Predicate.False else Predicate.True
    | Predicate.Not inner -> go (not positive) inner
    | Predicate.And (a, b) ->
      if positive then Predicate.And (go true a, go true b)
      else Predicate.Or (go false a, go false b)
    | Predicate.Or (a, b) ->
      if positive then Predicate.Or (go true a, go true b)
      else Predicate.And (go false a, go false b)
    | Predicate.Cmp (cmp, Predicate.Attr a, Predicate.Const v) -> atom_cmp positive cmp a v
    | Predicate.Cmp (cmp, Predicate.Const v, Predicate.Attr a) ->
      atom_cmp positive (flip_comparison cmp) a v
    | Predicate.Cmp (cmp, Predicate.Const x, Predicate.Const y) ->
      let holds =
        let c = Value.compare x y in
        match cmp with
        | Predicate.Eq -> c = 0
        | Predicate.Ne -> c <> 0
        | Predicate.Lt -> c < 0
        | Predicate.Le -> c <= 0
        | Predicate.Gt -> c > 0
        | Predicate.Ge -> c >= 0
      in
      if holds = positive then Predicate.True else Predicate.False
    | Predicate.Cmp (_, Predicate.Attr _, Predicate.Attr _) ->
      (* Attribute-to-attribute comparisons cannot be decided from
         per-attribute indexes; keep everything. *)
      Predicate.True
    | Predicate.In (Predicate.Attr a, vs) ->
      (match tables a with
       | None -> Predicate.True
       | Some table ->
         if positive then keep_condition a table (possibly_in vs)
         else keep_condition a table (possibly_not_in vs))
    | Predicate.In (Predicate.Const v, vs) ->
      let holds = List.exists (Value.equal v) vs in
      if holds = positive then Predicate.True else Predicate.False
  in
  go true predicate

(** DAS condition translation: the query-splitting heart of the
    database-as-a-service model (Hacıgümüş et al., the basis of the
    paper's Section 3).

    Given index tables for the attributes of a relation, a plaintext
    selection condition p is mapped to a *server condition* p^S over the
    index attributes such that every tuple satisfying p lands in a
    partition whose index satisfies p^S (soundness: the server result is a
    superset).  The client re-applies p after decryption.

    Translation rules: atoms over one attribute keep exactly the
    partitions that *possibly* contain a satisfying value; conjunction and
    disjunction translate structurally; negation is pushed to the atoms
    first (De Morgan), where it flips the comparison. *)

open Secmed_relalg

val index_attr : string -> string
(** Name of the index attribute for a plaintext attribute: ["idx_a"]. *)

val translate :
  tables:(string -> Das_partition.t option) ->
  Predicate.t ->
  Predicate.t
(** Server condition over the index attributes.  Attributes without an
    index table, attribute-to-attribute comparisons and other
    untranslatable atoms become [True] (sound: never drops a match).
    Raises [Invalid_argument] on predicates that cannot be normalized
    (none currently). *)

val possibly : Predicate.comparison -> Value.t -> Das_partition.partition -> bool
(** Whether some value of the partition may satisfy [cmp _ value]
    (exposed for tests). *)

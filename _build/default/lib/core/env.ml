open Secmed_crypto
open Secmed_relalg
open Secmed_mediation

type params = { group_bits : int; paillier_bits : int }

let default_params = { group_bits = 256; paillier_bits = 768 }

type source = {
  source_id : int;
  relations : (string * Relation.t) list;
  policy : Policy.t;
  advertised : string list;
}

type client = {
  identity : string;
  key : Elgamal.private_key;
  credentials : Credential.t list;
  paillier_key : Paillier.private_key;
}

type t = {
  params : params;
  group : Group.t;
  ca : Credential.Authority.ca;
  catalog : Catalog.t;
  sources : source list;
  master_prng : Prng.t;
}

let make ?(params = default_params) ?(seed = 0) ~catalog ~sources () =
  let master_prng = Prng.of_int_seed seed in
  let group = Group.default ~bits:params.group_bits in
  let ca = Credential.Authority.create (Prng.split master_prng "ca") group in
  { params; group; ca; catalog; sources; master_prng }

let prng_for t label = Prng.split t.master_prng label

let make_client t ~identity ~properties =
  let prng = prng_for t ("client-" ^ identity) in
  let key = Elgamal.keygen prng t.group in
  let ca_prng = prng_for t ("ca-issue-" ^ identity) in
  let credentials =
    List.map
      (fun props ->
        Credential.Authority.issue t.ca ca_prng ~properties:props (Elgamal.public key))
      properties
  in
  let paillier_key =
    Paillier.keygen (Prng.split prng "paillier") ~bits:t.params.paillier_bits
  in
  { identity; key; credentials; paillier_key }

let source_by_id t id = List.find (fun s -> s.source_id = id) t.sources

let two_source ?params ?seed ~left:(left_name, left_rel) ~right:(right_name, right_rel) () =
  let entry relation source rel =
    {
      Catalog.relation;
      source;
      schema = Relation.schema rel;
      source_relation = relation;
    }
  in
  let catalog = Catalog.make [ entry left_name 1 left_rel; entry right_name 2 right_rel ] in
  let sources =
    [
      {
        source_id = 1;
        relations = [ (left_name, left_rel) ];
        policy = Policy.open_policy;
        advertised = [];
      };
      {
        source_id = 2;
        relations = [ (right_name, right_rel) ];
        policy = Policy.open_policy;
        advertised = [];
      };
    ]
  in
  make ?params ?seed ~catalog ~sources ()

(** The mediated system's participants and run environment.

    Mirrors Figure 2: a client with credentials from a certification
    authority, a mediator holding the global catalog, and datasources with
    their relations and access-control policies.  Protocol runs are
    in-process but every transmission flows through {!Transcript}-recorded
    wire messages. *)

open Secmed_crypto
open Secmed_relalg
open Secmed_mediation

(** Security parameters.  The defaults (256-bit group, 768-bit Paillier)
    keep test runs fast; benches sweep them. *)
type params = {
  group_bits : int;
  paillier_bits : int;
}

val default_params : params

type source = {
  source_id : int;
  relations : (string * Relation.t) list;  (** source-local name -> data *)
  policy : Policy.t;
  advertised : string list;
      (** property keys this source bases decisions on; the mediator uses
          them to select the credential subsets CR_i *)
}

type client = {
  identity : string;
  key : Elgamal.private_key;
  credentials : Credential.t list;
  paillier_key : Paillier.private_key;
}

type t = {
  params : params;
  group : Group.t;
  ca : Credential.Authority.ca;
  catalog : Catalog.t;
  sources : source list;
  master_prng : Prng.t;
}

val make :
  ?params:params ->
  ?seed:int ->
  catalog:Catalog.t ->
  sources:source list ->
  unit ->
  t

val make_client :
  t ->
  identity:string ->
  properties:Credential.property list list ->
  client
(** One credential per property list, all over the same fresh ElGamal key,
    plus a Paillier keypair for the PM protocol. *)

val source_by_id : t -> int -> source
(** Raises [Not_found]. *)

val prng_for : t -> string -> Prng.t
(** Independent deterministic randomness stream for the named participant
    and run (parties must not share randomness). *)

(** Helper: build a complete two-source environment around two relations
    registered under the given global names (open access policy). *)
val two_source :
  ?params:params ->
  ?seed:int ->
  left:string * Relation.t ->
  right:string * Relation.t ->
  unit ->
  t

open Secmed_relalg

type t = {
  card_left : int;
  card_right : int;
  domactive_left : int;
  domactive_right : int;
  domactive_intersection : int;
  exact_join_pairs : int;
}

let compute_keys left right ~join_attrs =
  let dom_left = Join_key.distinct_keys left join_attrs in
  let dom_right = Join_key.distinct_keys right join_attrs in
  let intersection =
    List.filter (fun k -> List.exists (Join_key.equal k) dom_right) dom_left
  in
  let groups relation = Join_key.group_by relation join_attrs in
  let right_groups = groups right in
  let exact_join_pairs =
    List.fold_left
      (fun acc (key, tuples) ->
        match List.find_opt (fun (k, _) -> Join_key.equal k key) right_groups with
        | Some (_, opposite) -> acc + (List.length tuples * List.length opposite)
        | None -> acc)
      0 (groups left)
  in
  {
    card_left = Relation.cardinality left;
    card_right = Relation.cardinality right;
    domactive_left = List.length dom_left;
    domactive_right = List.length dom_right;
    domactive_intersection = List.length intersection;
    exact_join_pairs;
  }

let compute left right ~join_attr = compute_keys left right ~join_attrs:[ join_attr ]

let of_request (request : Request.t) =
  compute_keys request.Request.left_result request.Request.right_result
    ~join_attrs:request.Request.decomposition.Secmed_mediation.Catalog.join_attrs

let pp fmt t =
  Format.fprintf fmt
    "|R1|=%d |R2|=%d |dom1|=%d |dom2|=%d |dom1∩dom2|=%d |R1⋈R2|=%d" t.card_left
    t.card_right t.domactive_left t.domactive_right t.domactive_intersection
    t.exact_join_pairs

(** Ground-truth quantities of a two-relation join workload, computed
    directly on the plaintexts.  The leakage verification compares what
    protocol parties derived against these. *)

open Secmed_relalg

type t = {
  card_left : int;                 (** |R1| *)
  card_right : int;                (** |R2| *)
  domactive_left : int;            (** |dom_active(R1.A_join)| *)
  domactive_right : int;
  domactive_intersection : int;    (** |dom_active(R1) ∩ dom_active(R2)| *)
  exact_join_pairs : int;          (** |R1 ⋈ R2| *)
}

val compute : Relation.t -> Relation.t -> join_attr:string -> t
val compute_keys : Relation.t -> Relation.t -> join_attrs:string list -> t
(** Composite-key variant (the Section 8 extension). *)

val of_request : Request.t -> t
val pp : Format.formatter -> t -> unit

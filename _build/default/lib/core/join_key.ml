open Secmed_relalg

type t = Value.t list

let of_values = function
  | [] -> invalid_arg "Join_key.of_values: empty key"
  | values -> values

let values t = t
let arity = List.length
let nth = List.nth

let compare a b = Tuple.compare (Tuple.of_list a) (Tuple.of_list b)
let equal a b = compare a b = 0

let encode t = Tuple.encode (Tuple.of_list t)

let to_string t = String.concat "," (List.map Value.to_string t)

let positions schema names = Array.of_list (List.map (Schema.find schema) names)

let of_tuple positions tuple =
  Array.to_list (Array.map (Tuple.get tuple) positions)

let distinct_keys relation names =
  let positions = positions (Relation.schema relation) names in
  List.sort_uniq compare (List.map (of_tuple positions) (Relation.tuples relation))

let group_by relation names =
  let positions = positions (Relation.schema relation) names in
  let table = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun tuple ->
      let key = of_tuple positions tuple in
      let encoded = encode key in
      match Hashtbl.find_opt table encoded with
      | Some (k, tuples) -> Hashtbl.replace table encoded (k, tuple :: tuples)
      | None ->
        Hashtbl.add table encoded (key, [ tuple ]);
        order := encoded :: !order)
    (Relation.tuples relation);
  List.map
    (fun encoded ->
      let key, tuples = Hashtbl.find table encoded in
      (key, List.rev tuples))
    (List.rev !order)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** Composite join keys.

    The paper assumes a single join attribute (A1 = A2 = {A_join}) and
    leaves several attributes as future work (Section 8).  This module is
    the generalization: a join key is the vector of a tuple's values at
    the join attributes, compared and hashed componentwise, with a
    self-delimiting byte encoding shared by the commutative hashing and
    the PM root derivation. *)

open Secmed_relalg

type t

val of_values : Value.t list -> t
(** Raises [Invalid_argument] on the empty list. *)

val values : t -> Value.t list
val arity : t -> int
val nth : t -> int -> Value.t

val compare : t -> t -> int
val equal : t -> t -> bool

val encode : t -> string
(** Injective byte encoding (arity header + encoded components). *)

val to_string : t -> string

val positions : Schema.t -> string list -> int array
(** Column positions of the named join attributes.  Raises [Not_found] /
    [Invalid_argument] like [Schema.find]. *)

val of_tuple : int array -> Tuple.t -> t
(** Key of a tuple at the given positions. *)

val distinct_keys : Relation.t -> string list -> t list
(** Sorted distinct join keys of a relation: the composite
    dom_active(A_join). *)

val group_by : Relation.t -> string list -> (t * Tuple.t list) list
(** Tup(a) for every distinct key a, in key order. *)

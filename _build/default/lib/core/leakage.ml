open Secmed_crypto

(* ------------------------------------------------------------------ *)
(* Table rendering helpers. *)

let render_table ~headers rows =
  let columns = List.length headers in
  let widths = Array.make columns 0 in
  let measure row = List.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)) row in
  measure headers;
  List.iter measure rows;
  let buf = Buffer.create 512 in
  let line () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let row cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        Buffer.add_string buf (Printf.sprintf " %-*s |" widths.(i) cell))
      cells;
    Buffer.add_char buf '\n'
  in
  line ();
  row headers;
  line ();
  List.iter row rows;
  line ();
  Buffer.contents buf

let describe_observations observations =
  match observations with
  | [] -> "-"
  | _ ->
    String.concat "; "
      (List.map (fun (key, value) -> Printf.sprintf "%s=%d" key value) observations)

(* ------------------------------------------------------------------ *)
(* Table 1: extra information disclosed to client and mediator. *)

let table1 outcomes =
  let rows =
    List.map
      (fun (o : Outcome.t) ->
        [
          o.Outcome.scheme;
          Printf.sprintf "%s (received %d of %d exact pairs)"
            (describe_observations o.Outcome.client_observed)
            o.Outcome.client_received_tuples
            (Secmed_relalg.Relation.cardinality o.Outcome.exact);
          describe_observations o.Outcome.mediator_observed;
        ])
      outcomes
  in
  render_table ~headers:[ "scheme"; "client"; "mediator" ] rows

(* ------------------------------------------------------------------ *)
(* Table 2: applied cryptographic primitives.  The paper's classes are
   mapped onto our counters. *)

let primitive_classes =
  [
    ("hashfunction", [ Counters.Hash ]);
    ("ideal hash (random oracle)", [ Counters.Ideal_hash ]);
    ("commutative encryption", [ Counters.Commutative_encrypt; Counters.Commutative_decrypt ]);
    ( "homomorphic encryption",
      [ Counters.Homomorphic_encrypt; Counters.Homomorphic_decrypt; Counters.Homomorphic_add;
        Counters.Homomorphic_scalar ] );
    ("random numbers", [ Counters.Random_number ]);
    ("hybrid encryption", [ Counters.Hybrid_encrypt; Counters.Hybrid_decrypt ]);
  ]

let table2 outcomes =
  let class_count (o : Outcome.t) primitives =
    List.fold_left
      (fun acc p -> acc + Option.value ~default:0 (List.assoc_opt p o.Outcome.counters))
      0 primitives
  in
  let rows =
    List.map
      (fun (o : Outcome.t) ->
        o.Outcome.scheme
        :: List.map
             (fun (_, primitives) ->
               let n = class_count o primitives in
               if n = 0 then "-" else string_of_int n)
             primitive_classes)
      outcomes
  in
  render_table ~headers:("scheme" :: List.map fst primitive_classes) rows

(* ------------------------------------------------------------------ *)
(* Machine-checked Table 1 claims. *)

type claim = {
  subject : string;
  description : string;
  expected : int;
  measured : int option;
}

let claim ~subject ~description ~expected ~measured = { subject; description; expected; measured }

let verify (o : Outcome.t) ~(ground_truth : Ground_truth.t) =
  let g = ground_truth in
  let mediator key = Outcome.observed o.Outcome.mediator_observed key in
  let scheme = o.Outcome.scheme in
  if String.length scheme >= 3 && String.sub scheme 0 3 = "das" then
    [
      claim ~subject:"mediator" ~description:"derives |R1| from tuple-wise encryption"
        ~expected:g.Ground_truth.card_left ~measured:(mediator "cardinality-R1S");
      claim ~subject:"mediator" ~description:"derives |R2|"
        ~expected:g.Ground_truth.card_right ~measured:(mediator "cardinality-R2S");
      claim ~subject:"mediator"
        ~description:"learns |RC|, an upper bound of the global result size"
        ~expected:1
        ~measured:
          (match mediator "cardinality-RC" with
           | Some rc when rc >= g.Ground_truth.exact_join_pairs -> Some 1
           | Some _ | None -> None);
      claim ~subject:"client" ~description:"receives a superset of the global result"
        ~expected:1
        ~measured:
          (if o.Outcome.client_received_tuples >= g.Ground_truth.exact_join_pairs then Some 1
           else None);
    ]
  else if String.length scheme >= 11 && String.sub scheme 0 11 = "commutative" then
    [
      claim ~subject:"mediator" ~description:"learns |domactive(R1.Ajoin)|"
        ~expected:g.Ground_truth.domactive_left
        ~measured:(mediator "cardinality-domactive-R1");
      claim ~subject:"mediator" ~description:"learns |domactive(R2.Ajoin)|"
        ~expected:g.Ground_truth.domactive_right
        ~measured:(mediator "cardinality-domactive-R2");
      claim ~subject:"mediator" ~description:"learns the active-domain intersection size"
        ~expected:g.Ground_truth.domactive_intersection
        ~measured:(mediator "intersection-size");
      claim ~subject:"client" ~description:"receives only the exact global result"
        ~expected:g.Ground_truth.exact_join_pairs
        ~measured:(Some o.Outcome.client_received_tuples);
      claim ~subject:"source-1" ~description:"learns |domactive| of the opposite source"
        ~expected:g.Ground_truth.domactive_right
        ~measured:
          (Option.bind
             (List.assoc_opt 1 o.Outcome.sources_observed)
             (fun obs -> List.assoc_opt "cardinality-domactive-opposite" obs));
    ]
  else if
    List.exists (String.equal scheme) [ "intersection"; "semi-join"; "difference" ]
  then
    [
      claim ~subject:"mediator" ~description:"learns the left key-set size"
        ~expected:g.Ground_truth.domactive_left
        ~measured:(mediator "cardinality-keys-left");
      claim ~subject:"mediator" ~description:"learns the right key-set size"
        ~expected:g.Ground_truth.domactive_right
        ~measured:(mediator "cardinality-keys-right");
    ]
  else if String.length scheme >= 9 && String.sub scheme 0 9 = "aggregate" then
    [
      claim ~subject:"mediator" ~description:"learns |domactive(R1.Ajoin)|"
        ~expected:g.Ground_truth.domactive_left
        ~measured:(mediator "cardinality-domactive-R1");
      claim ~subject:"mediator" ~description:"learns |domactive(R2.Ajoin)|"
        ~expected:g.Ground_truth.domactive_right
        ~measured:(mediator "cardinality-domactive-R2");
      claim ~subject:"mediator" ~description:"learns the active-domain intersection size"
        ~expected:g.Ground_truth.domactive_intersection
        ~measured:(mediator "intersection-size");
    ]
  else if String.length scheme >= 2 && String.sub scheme 0 2 = "pm" then
    [
      claim ~subject:"mediator" ~description:"learns |domactive(R1.Ajoin)| from the degree of P1"
        ~expected:g.Ground_truth.domactive_left
        ~measured:(mediator "cardinality-domactive-R1");
      claim ~subject:"mediator" ~description:"learns |domactive(R2.Ajoin)| from the degree of P2"
        ~expected:g.Ground_truth.domactive_right
        ~measured:(mediator "cardinality-domactive-R2");
      claim ~subject:"client" ~description:"can decipher only the exact global result"
        ~expected:g.Ground_truth.exact_join_pairs
        ~measured:(Some o.Outcome.client_received_tuples);
      claim ~subject:"client" ~description:"receives one ciphertext per active-domain value"
        ~expected:(g.Ground_truth.domactive_left + g.Ground_truth.domactive_right)
        ~measured:(Outcome.observed o.Outcome.client_observed "ciphertexts-received");
      claim ~subject:"source-2" ~description:"learns the degree of the opposite polynomial"
        ~expected:g.Ground_truth.domactive_left
        ~measured:
          (Option.bind
             (List.assoc_opt 2 o.Outcome.sources_observed)
             (fun obs -> List.assoc_opt "degree-opposite-polynomial" obs));
    ]
  else []

let claim_holds c = c.measured = Some c.expected

let all_hold claims = List.for_all claim_holds claims

let pp_claims fmt claims =
  List.iter
    (fun c ->
      Format.fprintf fmt "%-9s %-55s expected %d, measured %s -> %s@." c.subject
        c.description c.expected
        (match c.measured with Some v -> string_of_int v | None -> "n/a")
        (if claim_holds c then "ok" else "VIOLATED"))
    claims

(** Regeneration of the paper's Section 6 analysis from actual protocol
    executions.

    Table 1 ("extra information disclosed to client and mediator") and
    Table 2 ("applied cryptographic primitives") are rebuilt from outcome
    observations and primitive counters rather than asserted, and
    {!verify} machine-checks that each run's disclosures match the paper's
    claims. *)

val table1 : Outcome.t list -> string
(** Rendered Table 1: per scheme, the extra information the client and the
    mediator could derive, with the measured values. *)

val table2 : Outcome.t list -> string
(** Rendered Table 2: per scheme, which cryptographic primitive classes
    were actually invoked (with counts). *)

type claim = {
  subject : string;   (** "mediator", "client", "source-1", ... *)
  description : string;
  expected : int;
  measured : int option;
}

val verify : Outcome.t -> ground_truth:Ground_truth.t -> claim list
(** The paper's Table 1 claims instantiated for this run: e.g. in the DAS
    run the mediator must have been able to derive |R1|, |R2| and |RC|; in
    the commutative run |domactive| and the intersection size.  A claim
    with [measured = Some expected] holds. *)

val all_hold : claim list -> bool
val pp_claims : Format.formatter -> claim list -> unit

(** Successive joins over more than two datasources (paper Section 8:
    "in a mediator hierarchy one mediator can act as a datasource for
    other mediators.  Therefore, the case in which several join queries
    are executed successively has to be considered").

    A query joining n relations is executed as a left-deep chain of n-1
    two-party delivery rounds.  After each round the client holds the
    decrypted intermediate result and plays the role of a datasource for
    the next round (the hierarchical layer, with the client standing in
    for the intermediate mediator — see DESIGN.md); the other datasource
    of each round is the real source of the next relation, with its
    access-control policy enforced as usual.

    Restrictions: the chain must consist of NATURAL JOINs; any WHERE /
    projection / DISTINCT clauses must use unqualified attribute names
    (they are applied after the final round); intermediate results must
    have unique bare attribute names. *)

open Secmed_relalg

type stage = {
  stage_query : string;     (** the two-relation query of this round *)
  outcome : Outcome.t;
}

type t = {
  result : Relation.t;      (** final global result at the client *)
  exact : Relation.t;       (** trusted-mediator reference for the chain *)
  stages : stage list;      (** in execution order *)
  total_messages : int;
  total_bytes : int;
}

val correct : t -> bool

exception Unsupported of string

val run :
  ?scheme:Protocol.scheme ->
  Env.t ->
  Env.client ->
  query:string ->
  t
(** Default scheme: the commutative protocol (the paper's recommendation).
    A query with a single join degenerates to one ordinary round. *)

(** Non-private reference pipeline: the sources ship plaintext partial
    results and the (trusted) mediator joins them — Figure 1's basic
    mediated system.  Used as the correctness oracle and the no-crypto
    baseline in benchmarks. *)

val run : Env.t -> Env.client -> query:string -> Outcome.t

type scheme =
  | Das of Das_partition.strategy * Das.server_eval
  | Commutative of { use_ids : bool }
  | Private_matching of Pm_join.variant
  | Mobile_code
  | Plain

let default_das = Das (Das_partition.Equi_depth 4, Das.Pair_index)

let all_schemes =
  [ default_das; Commutative { use_ids = false }; Private_matching Pm_join.Session_keys;
    Mobile_code; Plain ]

let paper_schemes =
  [ default_das; Commutative { use_ids = false }; Private_matching Pm_join.Session_keys ]

let scheme_name = function
  | Das (strategy, eval) ->
    let eval_tag = match eval with Das.Pair_index -> "" | Das.Nested_loop -> "/nested-loop" in
    Printf.sprintf "das[%s%s]" (Das_partition.strategy_name strategy) eval_tag
  | Commutative { use_ids } -> if use_ids then "commutative[ids]" else "commutative"
  | Private_matching v -> "pm[" ^ Pm_join.variant_name v ^ "]"
  | Mobile_code -> "mobile-code"
  | Plain -> "plain"

let scheme_of_name = function
  | "das" -> Some default_das
  | "das-singleton" -> Some (Das (Das_partition.Singleton, Das.Pair_index))
  | "das-nested-loop" -> Some (Das (Das_partition.Equi_depth 4, Das.Nested_loop))
  | "commutative" -> Some (Commutative { use_ids = false })
  | "commutative-ids" -> Some (Commutative { use_ids = true })
  | "pm" -> Some (Private_matching Pm_join.Session_keys)
  | "pm-direct" -> Some (Private_matching Pm_join.Direct_payload)
  | "mobile-code" -> Some Mobile_code
  | "plain" -> Some Plain
  | _ -> None

let run scheme env client ~query =
  match scheme with
  | Das (strategy, server_eval) -> Das.run ~strategy ~server_eval env client ~query
  | Commutative { use_ids } -> Commutative_join.run ~use_ids env client ~query
  | Private_matching variant -> Pm_join.run ~variant env client ~query
  | Mobile_code -> Mobile_code.run env client ~query
  | Plain -> Plain_join.run env client ~query

(** Uniform entry point over the three delivery protocols and the two
    baselines. *)

type scheme =
  | Das of Das_partition.strategy * Das.server_eval
  | Commutative of { use_ids : bool }
  | Private_matching of Pm_join.variant
  | Mobile_code
  | Plain

val all_schemes : scheme list
(** One representative configuration of each protocol/baseline. *)

val paper_schemes : scheme list
(** The paper's three protocols (DAS, commutative, PM) in default
    configurations. *)

val scheme_name : scheme -> string
val scheme_of_name : string -> scheme option
(** Accepts the names produced by {!scheme_name} plus the variants
    ["pm-direct"], ["commutative-ids"], ["das-singleton"],
    ["das-nested-loop"]. *)

val run : scheme -> Env.t -> Env.client -> query:string -> Outcome.t

open Secmed_crypto
open Secmed_relalg
open Secmed_sql
open Secmed_mediation

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* Rewrite attribute references to their bare names so the translated
   condition lines up with the mediator's idx_<bare> columns. *)
let normalize_predicate schema p =
  let bare name =
    let position = Schema.find schema name in
    (Schema.attr_at schema position).Schema.name
  in
  let term = function
    | Predicate.Attr a -> Predicate.Attr (bare a)
    | Predicate.Const _ as c -> c
  in
  let rec go = function
    | Predicate.True -> Predicate.True
    | Predicate.False -> Predicate.False
    | Predicate.Cmp (op, x, y) -> Predicate.Cmp (op, term x, term y)
    | Predicate.And (a, b) -> Predicate.And (go a, go b)
    | Predicate.Or (a, b) -> Predicate.Or (go a, go b)
    | Predicate.Not a -> Predicate.Not (go a)
    | Predicate.In (x, vs) -> Predicate.In (term x, vs)
  in
  go p

let run ?(strategy = Das_partition.Equi_depth 4) env client ~query =
  let b = Outcome.Builder.create ~scheme:"das-select" in
  let tr = Outcome.Builder.transcript b in
  let (result, exact, received), counters =
    Counters.with_fresh (fun () ->
        let ast = Parser.parse query in
        if ast.Ast.joins <> [] then
          unsupported "selection protocol handles single relations; use the join protocols";
        if Ast.has_aggregates ast || ast.Ast.group_by <> [] then
          unsupported "use the aggregation protocol for aggregate queries";
        let entry =
          try Catalog.locate env.Env.catalog ast.Ast.from.Ast.table
          with Not_found -> unsupported "unknown relation %s" ast.Ast.from.Ast.table
        in
        let sid = entry.Catalog.source in
        (* Request phase, single partial query. *)
        Transcript.record tr ~sender:Client ~receiver:Mediator ~label:"global-query"
          ~size:(String.length query + Request.credential_size client.Env.credentials);
        Transcript.record tr ~sender:Mediator ~receiver:(Source sid) ~label:"partial-query"
          ~size:
            (String.length entry.Catalog.source_relation
            + Request.credential_size client.Env.credentials);
        let source = Env.source_by_id env sid in
        List.iter
          (fun c ->
            if not (Credential.Authority.verify env.Env.ca c) then
              raise (Request.Bad_credential sid))
          client.Env.credentials;
        let relation =
          match List.assoc_opt entry.Catalog.source_relation source.Env.relations with
          | Some r -> r
          | None -> raise (Request.Access_denied sid)
        in
        let properties = List.concat_map Credential.properties client.Env.credentials in
        let granted =
          match Policy.apply source.Env.policy properties relation with
          | Some r -> Relation.rename entry.Catalog.relation r
          | None -> raise (Request.Access_denied sid)
        in
        let schema = Relation.schema granted in
        let where =
          Option.map
            (fun w -> normalize_predicate schema (Algebra.predicate_of_expr w))
            ast.Ast.where
        in
        (* Reference result. *)
        let apply_clauses relation =
          let filtered =
            match where with None -> relation | Some p -> Relation.select p relation
          in
          let projected =
            match ast.Ast.select with
            | None -> filtered
            | Some items ->
              Relation.project
                (List.map
                   (function
                     | Ast.S_column c -> Ast.column_name c
                     | Ast.S_aggregate _ -> assert false)
                   items)
                filtered
          in
          if ast.Ast.distinct then Relation.distinct projected else projected
        in
        let exact = apply_clauses granted in

        (* The source indexes every attribute the condition references. *)
        let indexed_attrs =
          match where with
          | None -> []
          | Some p ->
            List.sort_uniq String.compare
              (List.filter_map
                 (fun name ->
                   match Schema.find_opt schema name with
                   | Some position -> Some (Schema.attr_at schema position).Schema.name
                   | None -> None)
                 (Predicate.attrs_used p))
        in
        let prng = Env.prng_for env (Printf.sprintf "select-source-%d" sid) in
        let pk =
          match client.Env.credentials with
          | c :: _ -> Credential.public_key c
          | [] -> raise (Request.Access_denied sid)
        in
        let tables =
          List.map
            (fun attr ->
              let column = Relation.column granted attr in
              ( attr,
                Das_partition.build
                  (Das_partition.adapt strategy column)
                  ~relation:entry.Catalog.relation ~attr column ))
            indexed_attrs
        in
        let encrypted_rows =
          Outcome.Builder.timed b "source-encrypt" (fun () ->
              List.map
                (fun tuple ->
                  let etuple = Hybrid.encrypt prng pk (Tuple.encode tuple) in
                  let indexes =
                    List.map
                      (fun (attr, table) ->
                        Das_partition.index_of table
                          (Tuple.get tuple (Schema.find schema attr)))
                      tables
                  in
                  (etuple, indexes))
                (Relation.tuples granted))
        in
        let tables_wire =
          let w = Wire.writer () in
          Wire.write_list w
            (fun (attr, table) ->
              Wire.write_string w attr;
              Wire.write_string w (Das_partition.to_wire table))
            tables;
          Wire.contents w
        in
        let enc_tables = Hybrid.encrypt prng pk tables_wire in
        let rows_size =
          List.fold_left
            (fun acc (ct, idx) -> acc + Hybrid.size ct + (8 * List.length idx))
            0 encrypted_rows
        in
        Transcript.record tr ~sender:(Source sid) ~receiver:Mediator ~label:"RS+enc(ITables)"
          ~size:(rows_size + Hybrid.size enc_tables);
        Outcome.Builder.mediator_sees b "cardinality-RS" (List.length encrypted_rows);

        (* Client setting: tables travel to the client, which translates. *)
        Transcript.record tr ~sender:Mediator ~receiver:Client ~label:"enc(ITables)"
          ~size:(Hybrid.size enc_tables);
        let server_condition =
          Outcome.Builder.timed b "client-translate" (fun () ->
              match where with
              | None -> Predicate.True
              | Some p ->
                let blob =
                  match Hybrid.decrypt client.Env.key enc_tables with
                  | Some blob -> blob
                  | None -> failwith "Select_query: authentication failure on ITables"
                in
                let r = Wire.reader blob in
                let decoded =
                  Wire.read_list r (fun () ->
                      let attr = Wire.read_string r in
                      let table = Das_partition.of_wire (Wire.read_string r) in
                      (attr, table))
                in
                Wire.expect_end r;
                Das_translate.translate
                  ~tables:(fun attr -> List.assoc_opt attr decoded)
                  p)
        in
        Transcript.record tr ~sender:Client ~receiver:Mediator ~label:"server-query-qS"
          ~size:(24 * Stdlib.max 1 (Predicate.size server_condition));
        Outcome.Builder.mediator_sees b "condition-size-qS" (Predicate.size server_condition);

        (* The mediator filters the encrypted relation with the relational
           engine over the index columns. *)
        let rc =
          Outcome.Builder.timed b "mediator-server-query" (fun () ->
              let index_schema =
                Schema.make
                  (Schema.attr "etuple" Value.Tstring
                  :: List.map
                       (fun (attr, _) -> Schema.attr (Das_translate.index_attr attr) Value.Tint)
                       tables)
              in
              let index_relation =
                Relation.make index_schema
                  (List.map
                     (fun (ct, indexes) ->
                       Tuple.of_list
                         (Value.Str (Hybrid.to_wire ct)
                         :: List.map (fun i -> Value.Int i) indexes))
                     encrypted_rows)
              in
              List.map
                (fun t ->
                  match Tuple.get t 0 with
                  | Value.Str wire -> Hybrid.of_wire wire
                  | Value.Int _ | Value.Bool _ -> assert false)
                (Relation.tuples (Relation.select server_condition index_relation)))
        in
        Outcome.Builder.mediator_sees b "cardinality-RC" (List.length rc);
        Transcript.record tr ~sender:Mediator ~receiver:Client ~label:"RC"
          ~size:(List.fold_left (fun acc ct -> acc + Hybrid.size ct) 0 rc);
        Outcome.Builder.client_sees b "candidates-received" (List.length rc);

        (* Client: decrypt, post-filter with the original condition. *)
        let result =
          Outcome.Builder.timed b "client-postprocess" (fun () ->
              let tuples =
                List.map
                  (fun ct ->
                    match Hybrid.decrypt client.Env.key ct with
                    | Some blob -> Tuple.decode blob
                    | None -> failwith "Select_query: authentication failure on etuple")
                  rc
              in
              apply_clauses (Relation.make schema tuples))
        in
        (result, exact, List.length rc))
  in
  Outcome.Builder.finish b ~result ~exact ~client_received_tuples:received ~counters

(** Selection queries over a single encrypted relation — the original DAS
    query class ([13], [19], [24] in the paper's related work), brought to
    the mediated setting.

    The source DAS-encrypts its relation with one index table per
    attribute the WHERE clause references; the client (query translator)
    maps the plaintext condition to a server condition over index values
    ({!Das_translate}); the mediator — never seeing a plaintext — filters
    the encrypted rows with the relational engine and returns a guaranteed
    superset, which the client decrypts and post-filters. *)

exception Unsupported of string
(** Queries with joins, aggregates or GROUP BY (use the join /
    aggregation protocols for those). *)

val run :
  ?strategy:Das_partition.strategy ->
  Env.t ->
  Env.client ->
  query:string ->
  Outcome.t
(** Default strategy: [Equi_depth 4] per indexed attribute.  A query
    without a WHERE clause transfers the whole (encrypted) relation. *)

(** Secure mediation of further relational operations (the paper's
    Section 8: "Inclusion of other relational operations is a demanding
    field of further research").

    All three operations run a lean variant of the commutative-encryption
    protocol in which only the *left* source attaches encrypted payloads;
    the right source contributes bare commutatively-encrypted key hashes.
    The mediator matches doubly-encrypted hashes exactly as in Listing 3
    and forwards the selected left payloads:

    - {b Intersection}: keys are whole tuples; matched payloads decrypt to
      the distinct tuples present in both relations.
    - {b Semi-join} (R1 ⋉ R2): keys are the join attributes; matched
      payloads carry Tup_1(a), so the client obtains every R1 tuple whose
      key appears in R2 (bag semantics).
    - {b Difference} (R1 ∖ R2): keys are whole tuples; the mediator
      forwards the *unmatched* payloads.

    Compared to running the full join protocol and projecting, the right
    source ships no tuple data at all — the ablation benchmark quantifies
    the saving. *)

type op =
  | Intersection
  | Semi_join
  | Difference

val op_name : op -> string

val run :
  ?on:string list ->
  Env.t ->
  Env.client ->
  op ->
  left:string ->
  right:string ->
  Outcome.t
(** [run env client op ~left ~right] mediates the operation over the two
    named global relations.  [on] overrides the key attributes for
    {!Semi_join} (default: all common attributes); it is ignored by the
    whole-tuple operations.  Raises [Invalid_argument] when the relations
    are not layout-compatible for {!Intersection}/{!Difference}, plus
    everything {!Request.run} raises. *)

open Secmed_crypto
open Secmed_relalg
open Secmed_mediation

type value_kind = Ints | Strings

type spec = {
  rows_left : int;
  rows_right : int;
  distinct_left : int;
  distinct_right : int;
  overlap : int;
  extra_attrs : int;
  value_kind : value_kind;
  skew : float;
  seed : int;
}

let default =
  {
    rows_left = 32;
    rows_right = 32;
    distinct_left = 16;
    distinct_right = 16;
    overlap = 8;
    extra_attrs = 2;
    value_kind = Ints;
    skew = 0.0;
    seed = 7;
  }

let validate spec =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  if spec.distinct_left <= 0 || spec.distinct_right <= 0 then
    fail "Workload: distinct counts must be positive";
  if spec.overlap < 0 || spec.overlap > Stdlib.min spec.distinct_left spec.distinct_right
  then fail "Workload: overlap must be within both distinct counts";
  if spec.rows_left < spec.distinct_left || spec.rows_right < spec.distinct_right then
    fail "Workload: need at least as many rows as distinct values";
  if spec.extra_attrs < 0 then fail "Workload: negative attribute count";
  if spec.skew < 0.0 then fail "Workload: negative skew"

(* Distinct universe values: overlap shared ones first, then the
   side-exclusive remainders. *)
let universe prng spec =
  let total = spec.distinct_left + spec.distinct_right - spec.overlap in
  let values =
    match spec.value_kind with
    | Ints ->
      let seen = Hashtbl.create (2 * total) in
      let rec draw () =
        let v = Prng.uniform_int prng (Stdlib.max 1 (20 * total)) in
        if Hashtbl.mem seen v then draw ()
        else begin
          Hashtbl.add seen v ();
          Value.Int v
        end
      in
      Array.init total (fun _ -> draw ())
    | Strings ->
      Array.init total (fun i ->
          Value.Str (Printf.sprintf "key-%04d-%s" i (Secmed_crypto.Bytes_util.to_hex (Prng.bytes prng 3))))
  in
  let shared = Array.sub values 0 spec.overlap in
  let left_only = Array.sub values spec.overlap (spec.distinct_left - spec.overlap) in
  let right_only =
    Array.sub values spec.distinct_left (spec.distinct_right - spec.overlap)
  in
  (Array.append shared left_only, Array.append shared right_only)

(* Zipf sampler over ranks 1..n: P(k) proportional to k^-s (inverse-CDF via
   linear scan of the cumulative weights; n is small). *)
let zipf_pick prng skew actives =
  if skew <= 0.0 then Prng.pick prng actives
  else begin
    let n = Array.length actives in
    let weights = Array.init n (fun k -> Float.pow (float_of_int (k + 1)) (-.skew)) in
    let total = Array.fold_left ( +. ) 0.0 weights in
    let u = float_of_int (Prng.uniform_int prng 1_000_000) /. 1_000_000.0 *. total in
    let rec scan k acc =
      if k >= n - 1 then actives.(n - 1)
      else begin
        let acc = acc +. weights.(k) in
        if u < acc then actives.(k) else scan (k + 1) acc
      end
    in
    scan 0 0.0
  end

let build_relation prng ~name ~prefix ~actives ~rows ~extra_attrs ~skew =
  let attrs =
    Schema.attr "a_join" (Value.ty_of actives.(0))
    :: List.init extra_attrs (fun i ->
           Schema.attr (Printf.sprintf "%s%d" prefix i) Value.Tint)
  in
  let schema = Schema.make attrs in
  let row join_value =
    Tuple.of_list
      (join_value :: List.init extra_attrs (fun _ -> Value.Int (Prng.uniform_int prng 1000)))
  in
  let covered = Array.to_list (Array.map row actives) in
  let filler =
    List.init (rows - Array.length actives) (fun _ -> row (zipf_pick prng skew actives))
  in
  let tuples = Array.of_list (covered @ filler) in
  Prng.shuffle prng tuples;
  ignore name;
  Relation.make schema (Array.to_list tuples)

let generate spec =
  validate spec;
  let prng = Prng.create ~seed:(Printf.sprintf "workload-%d" spec.seed) in
  let left_actives, right_actives = universe prng spec in
  let left =
    build_relation (Prng.split prng "left") ~name:"R1" ~prefix:"l" ~actives:left_actives
      ~rows:spec.rows_left ~extra_attrs:spec.extra_attrs ~skew:spec.skew
  in
  let right =
    build_relation (Prng.split prng "right") ~name:"R2" ~prefix:"r" ~actives:right_actives
      ~rows:spec.rows_right ~extra_attrs:spec.extra_attrs ~skew:spec.skew
  in
  (left, right)

let scenario ?params spec =
  let left, right = generate spec in
  let env = Env.two_source ?params ~seed:spec.seed ~left:("R1", left) ~right:("R2", right) () in
  let client =
    Env.make_client env ~identity:"alice"
      ~properties:[ [ Credential.property "role" "analyst" ] ]
  in
  (env, client, "select * from R1 natural join R2")

let expected_join_size left right ~join_attr =
  let count relation =
    let idx = Schema.find (Relation.schema relation) join_attr in
    let counts = Hashtbl.create 32 in
    List.iter
      (fun t ->
        let key = Value.encode (Tuple.get t idx) in
        Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
      (Relation.tuples relation);
    counts
  in
  let left_counts = count left and right_counts = count right in
  Hashtbl.fold
    (fun key n acc ->
      match Hashtbl.find_opt right_counts key with
      | Some m -> acc + (n * m)
      | None -> acc)
    left_counts 0

(** Synthetic workload generation (deterministic from a seed).

    Produces the two-source join workloads of the evaluation: relations
    R1(a_join, l_0, ..) and R2(a_join, r_0, ..) with controlled active
    domain sizes, overlap and rows per value. *)

open Secmed_relalg

type value_kind = Ints | Strings

type spec = {
  rows_left : int;
  rows_right : int;
  distinct_left : int;   (** |dom_active(R1.a_join)| *)
  distinct_right : int;
  overlap : int;         (** |dom_active(R1) ∩ dom_active(R2)| *)
  extra_attrs : int;     (** non-join attributes per relation *)
  value_kind : value_kind;
  skew : float;
      (** Zipf exponent for the join-value frequency distribution of the
          filler rows; 0.0 = uniform (the default), ~1.0 = heavily skewed
          toward a few hot keys *)
  seed : int;
}

val default : spec
(** 32/32 rows, 16/16 distinct, overlap 8, 2 extra attributes, ints. *)

val validate : spec -> unit
(** Raises [Invalid_argument] on inconsistent parameters (e.g. overlap
    larger than a side's distinct count, or fewer rows than distinct
    values). *)

val generate : spec -> Relation.t * Relation.t
(** Every active value appears in at least one row; remaining rows draw
    join values uniformly from the active set. *)

val scenario :
  ?params:Env.params -> spec -> Env.t * Env.client * string
(** Environment + client (single all-access credential) + the canonical
    query ["select * from R1 natural join R2"] over the generated data. *)

val expected_join_size : Relation.t -> Relation.t -> join_attr:string -> int
(** Reference count of joined pairs (for sanity checks in benches). *)

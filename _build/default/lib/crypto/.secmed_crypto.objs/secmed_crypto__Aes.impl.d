lib/crypto/aes.ml: Array Bytes Bytes_util Char Stdlib String

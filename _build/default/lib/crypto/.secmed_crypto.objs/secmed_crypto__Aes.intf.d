lib/crypto/aes.mli:

lib/crypto/bytes_util.ml: Char List Printf Stdlib String

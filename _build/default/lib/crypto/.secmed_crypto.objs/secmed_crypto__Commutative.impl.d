lib/crypto/commutative.ml: Bigint Counters Group Secmed_bigint

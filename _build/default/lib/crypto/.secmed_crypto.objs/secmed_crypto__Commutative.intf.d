lib/crypto/commutative.mli: Bigint Group Prng Secmed_bigint

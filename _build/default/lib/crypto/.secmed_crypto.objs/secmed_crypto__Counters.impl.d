lib/crypto/counters.ml: Array List

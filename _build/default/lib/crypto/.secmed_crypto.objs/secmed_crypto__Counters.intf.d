lib/crypto/counters.mli:

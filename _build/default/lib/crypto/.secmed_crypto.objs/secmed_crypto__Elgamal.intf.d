lib/crypto/elgamal.mli: Bigint Group Prng Secmed_bigint

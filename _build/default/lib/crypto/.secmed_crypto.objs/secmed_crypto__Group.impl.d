lib/crypto/group.ml: Bigint Hashtbl Primes Printf Prng Secmed_bigint

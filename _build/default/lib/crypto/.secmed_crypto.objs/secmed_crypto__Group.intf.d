lib/crypto/group.mli: Bigint Prng Secmed_bigint

lib/crypto/hmac.ml: Bytes_util Char Sha256 String

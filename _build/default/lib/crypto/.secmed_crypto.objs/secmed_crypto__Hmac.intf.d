lib/crypto/hmac.mli:

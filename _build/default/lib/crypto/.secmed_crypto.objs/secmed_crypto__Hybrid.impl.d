lib/crypto/hybrid.ml: Aes Bigint Bytes_util Counters Elgamal Group Hmac Prng Secmed_bigint Sha256 String

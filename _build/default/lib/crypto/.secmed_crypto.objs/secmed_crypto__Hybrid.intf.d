lib/crypto/hybrid.mli: Elgamal Prng

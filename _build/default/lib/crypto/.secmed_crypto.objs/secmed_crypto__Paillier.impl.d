lib/crypto/paillier.ml: Bigint Char Counters Primes Prng Secmed_bigint String

lib/crypto/paillier.mli: Bigint Prng Secmed_bigint

lib/crypto/primes.ml: Array Bigint List Prng Secmed_bigint

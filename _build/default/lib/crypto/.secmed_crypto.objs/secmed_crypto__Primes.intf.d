lib/crypto/primes.mli: Bigint Prng Secmed_bigint

lib/crypto/prng.ml: Array Buffer Bytes_util Char Printf Sha256 Stdlib String

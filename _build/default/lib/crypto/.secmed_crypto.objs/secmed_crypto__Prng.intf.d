lib/crypto/prng.mli:

lib/crypto/random_oracle.ml: Bigint Buffer Bytes_util Counters Group Secmed_bigint Sha256 String

lib/crypto/random_oracle.mli: Bigint Group Secmed_bigint

lib/crypto/schnorr.ml: Bigint Bytes_util Group Secmed_bigint Sha256 String

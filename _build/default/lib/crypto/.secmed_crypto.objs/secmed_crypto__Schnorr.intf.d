lib/crypto/schnorr.mli: Bigint Group Prng Secmed_bigint

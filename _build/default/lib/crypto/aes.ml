(* AES-128.  GF(2^8) arithmetic modulo x^8+x^4+x^3+x+1 (0x11b); the S-box
   is computed from field inverses and the FIPS affine transform. *)

let xtime b =
  let b2 = b lsl 1 in
  if b land 0x80 <> 0 then (b2 lxor 0x1b) land 0xff else b2

let gf_mul a b =
  let acc = ref 0 and a = ref a and b = ref b in
  while !b <> 0 do
    if !b land 1 = 1 then acc := !acc lxor !a;
    a := xtime !a;
    b := !b lsr 1
  done;
  !acc

(* Discrete log tables over the generator 3. *)
let alog = Array.make 256 0
let log_ = Array.make 256 0

let () =
  let v = ref 1 in
  for i = 0 to 254 do
    alog.(i) <- !v;
    log_.(!v) <- i;
    v := gf_mul !v 3
  done;
  alog.(255) <- 1

let gf_inv b = if b = 0 then 0 else alog.((255 - log_.(b)) mod 255)

let rotl8 b n = ((b lsl n) lor (b lsr (8 - n))) land 0xff

let sbox =
  Array.init 256 (fun b ->
      let s = gf_inv b in
      s lxor rotl8 s 1 lxor rotl8 s 2 lxor rotl8 s 3 lxor rotl8 s 4 lxor 0x63)

let inv_sbox =
  let t = Array.make 256 0 in
  Array.iteri (fun i s -> t.(s) <- i) sbox;
  t

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

type key = int array array (* 11 round keys, 16 bytes each *)

let expand_key key_bytes =
  if String.length key_bytes <> 16 then invalid_arg "Aes.expand_key: need 16 bytes";
  (* Words w.(0..43); round key r uses words 4r..4r+3. *)
  let w = Array.make 44 [| 0; 0; 0; 0 |] in
  for i = 0 to 3 do
    w.(i) <- Array.init 4 (fun j -> Char.code key_bytes.[(4 * i) + j])
  done;
  for i = 4 to 43 do
    let prev = w.(i - 1) in
    let temp =
      if i mod 4 = 0 then begin
        let rot = [| prev.(1); prev.(2); prev.(3); prev.(0) |] in
        let sub = Array.map (fun b -> sbox.(b)) rot in
        [| sub.(0) lxor rcon.((i / 4) - 1); sub.(1); sub.(2); sub.(3) |]
      end
      else prev
    in
    w.(i) <- Array.init 4 (fun j -> w.(i - 4).(j) lxor temp.(j))
  done;
  Array.init 11 (fun r -> Array.init 16 (fun b -> w.((4 * r) + (b / 4)).(b mod 4)))

(* The state is kept as 16 bytes in column order: state.(4*c + r). *)

let add_round_key state rk =
  for i = 0 to 15 do
    state.(i) <- state.(i) lxor rk.(i)
  done

let sub_bytes box state =
  for i = 0 to 15 do
    state.(i) <- box.(state.(i))
  done

let shift_rows state =
  let copy = Array.copy state in
  for c = 0 to 3 do
    for r = 0 to 3 do
      state.((4 * c) + r) <- copy.((4 * ((c + r) mod 4)) + r)
    done
  done

let inv_shift_rows state =
  let copy = Array.copy state in
  for c = 0 to 3 do
    for r = 0 to 3 do
      state.((4 * ((c + r) mod 4)) + r) <- copy.((4 * c) + r)
    done
  done

let mix_column state c mat =
  let base = 4 * c in
  let col = Array.init 4 (fun r -> state.(base + r)) in
  for r = 0 to 3 do
    let v = ref 0 in
    for i = 0 to 3 do
      v := !v lxor gf_mul mat.((4 * r) + i) col.(i)
    done;
    state.(base + r) <- !v
  done

let mix_matrix = [| 2; 3; 1; 1; 1; 2; 3; 1; 1; 1; 2; 3; 3; 1; 1; 2 |]
let inv_mix_matrix = [| 14; 11; 13; 9; 9; 14; 11; 13; 13; 9; 14; 11; 11; 13; 9; 14 |]

let mix_columns state mat =
  for c = 0 to 3 do
    mix_column state c mat
  done

let state_of_block block =
  Array.init 16 (fun i -> Char.code block.[i])

let block_of_state state =
  String.init 16 (fun i -> Char.chr state.(i))

let encrypt_block rks block =
  if String.length block <> 16 then invalid_arg "Aes.encrypt_block: need 16 bytes";
  let state = state_of_block block in
  add_round_key state rks.(0);
  for round = 1 to 9 do
    sub_bytes sbox state;
    shift_rows state;
    mix_columns state mix_matrix;
    add_round_key state rks.(round)
  done;
  sub_bytes sbox state;
  shift_rows state;
  add_round_key state rks.(10);
  block_of_state state

let decrypt_block rks block =
  if String.length block <> 16 then invalid_arg "Aes.decrypt_block: need 16 bytes";
  let state = state_of_block block in
  add_round_key state rks.(10);
  inv_shift_rows state;
  sub_bytes inv_sbox state;
  for round = 9 downto 1 do
    add_round_key state rks.(round);
    mix_columns state inv_mix_matrix;
    inv_shift_rows state;
    sub_bytes inv_sbox state
  done;
  add_round_key state rks.(0);
  block_of_state state

let ctr_transform ~key ~nonce msg =
  if String.length nonce <> 12 then invalid_arg "Aes.ctr_transform: need 12 nonce bytes";
  let rks = expand_key key in
  let len = String.length msg in
  let out = Bytes.create len in
  let nblocks = (len + 15) / 16 in
  for b = 0 to nblocks - 1 do
    let counter_block = nonce ^ Bytes_util.be32 b in
    let keystream = encrypt_block rks counter_block in
    let off = 16 * b in
    let n = Stdlib.min 16 (len - off) in
    for i = 0 to n - 1 do
      Bytes.set out (off + i)
        (Char.chr (Char.code msg.[off + i] lxor Char.code keystream.[i]))
    done
  done;
  Bytes.to_string out

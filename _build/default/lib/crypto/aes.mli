(** AES-128 block cipher (FIPS 197) with a CTR mode keystream.

    Tables are derived from the GF(2^8) field arithmetic at module
    initialization rather than hard-coded; the test suite checks the FIPS
    197 and NIST SP 800-38A vectors. *)

type key

val expand_key : string -> key
(** Expects exactly 16 key bytes. *)

val encrypt_block : key -> string -> string
(** Encrypts exactly one 16-byte block. *)

val decrypt_block : key -> string -> string

val ctr_transform : key:string -> nonce:string -> string -> string
(** CTR en/decryption (an involution).  [key] is 16 bytes, [nonce] is 12
    bytes; the 4-byte big-endian block counter starts at 0. *)

let hex_digits = "0123456789abcdef"

let to_hex s =
  String.init
    (2 * String.length s)
    (fun i ->
      let byte = Char.code s.[i / 2] in
      let nibble = if i mod 2 = 0 then byte lsr 4 else byte land 0xf in
      hex_digits.[nibble])

let nibble_of_char c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg (Printf.sprintf "Bytes_util.of_hex: bad character %C" c)

let of_hex s =
  let len = String.length s in
  if len mod 2 <> 0 then invalid_arg "Bytes_util.of_hex: odd length";
  String.init (len / 2) (fun i ->
      Char.chr ((nibble_of_char s.[2 * i] lsl 4) lor nibble_of_char s.[(2 * i) + 1]))

let xor a b =
  if String.length a <> String.length b then invalid_arg "Bytes_util.xor: length mismatch";
  String.init (String.length a) (fun i -> Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let constant_time_equal a b =
  if String.length a <> String.length b then false
  else begin
    let diff = ref 0 in
    for i = 0 to String.length a - 1 do
      diff := !diff lor (Char.code a.[i] lxor Char.code b.[i])
    done;
    !diff = 0
  end

let be32 v =
  String.init 4 (fun i -> Char.chr ((v lsr ((3 - i) * 8)) land 0xff))

let le32 v =
  String.init 4 (fun i -> Char.chr ((v lsr (i * 8)) land 0xff))

let le64 v =
  String.init 8 (fun i -> Char.chr ((v lsr (i * 8)) land 0xff))

let read_be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let chunks size s =
  if size <= 0 then invalid_arg "Bytes_util.chunks: non-positive size";
  let len = String.length s in
  let rec go off acc =
    if off >= len then List.rev acc
    else begin
      let n = Stdlib.min size (len - off) in
      go (off + n) (String.sub s off n :: acc)
    end
  in
  go 0 []

(** Small byte-string helpers shared by the crypto modules. *)

val to_hex : string -> string
val of_hex : string -> string
(** Raises [Invalid_argument] on odd length or non-hex characters. *)

val xor : string -> string -> string
(** Pointwise xor; raises [Invalid_argument] on length mismatch. *)

val constant_time_equal : string -> string -> bool
(** Length-then-accumulated-difference comparison (no early exit on content). *)

val be32 : int -> string
(** 4-byte big-endian encoding of the low 32 bits. *)

val le32 : int -> string
val le64 : int -> string

val read_be32 : string -> int -> int
(** Big-endian 32-bit read at the given offset. *)

val chunks : int -> string -> string list
(** Split into pieces of the given size (last may be shorter). *)

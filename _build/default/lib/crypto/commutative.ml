open Secmed_bigint

type key = { group : Group.t; e : Bigint.t; d : Bigint.t }

let keygen prng group =
  let e = Group.random_exponent prng group in
  let d =
    match Bigint.mod_inverse e group.Group.q with
    | Some d -> d
    | None -> assert false (* q prime and 1 <= e < q *)
  in
  { group; e; d }

let key_exponent key = key.e

let apply key x =
  Counters.bump Counters.Commutative_encrypt;
  Bigint.mod_pow x key.e key.group.Group.p

let unapply key y =
  Counters.bump Counters.Commutative_decrypt;
  Bigint.mod_pow y key.d key.group.Group.p

let group key = key.group

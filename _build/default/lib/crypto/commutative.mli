(** Commutative encryption over QR_p (Pohlig–Hellman / SRA exponentiation),
    as used by Agrawal et al. and Section 4 of the paper.

    f_e(x) = x^e mod p on the subgroup QR_p of a safe prime p = 2q + 1.
    The four defining properties hold: commutativity (powers commute),
    bijectivity and polynomial-time invertibility (e is invertible mod q),
    and indistinguishability under DDH. *)

open Secmed_bigint

type key

val keygen : Prng.t -> Group.t -> key
(** Uniform exponent in [\[1, q)] (every such exponent is invertible since
    q is prime). *)

val key_exponent : key -> Bigint.t
(** Exposed for white-box tests. *)

val apply : key -> Bigint.t -> Bigint.t
(** f_e.  The argument must be an element of QR_p. *)

val unapply : key -> Bigint.t -> Bigint.t
(** f_e^{-1}; [unapply k (apply k x) = x]. *)

val group : key -> Group.t

type primitive =
  | Hash
  | Ideal_hash
  | Hybrid_encrypt
  | Hybrid_decrypt
  | Commutative_encrypt
  | Commutative_decrypt
  | Homomorphic_encrypt
  | Homomorphic_decrypt
  | Homomorphic_add
  | Homomorphic_scalar
  | Random_number

let all =
  [ Hash; Ideal_hash; Hybrid_encrypt; Hybrid_decrypt; Commutative_encrypt;
    Commutative_decrypt; Homomorphic_encrypt; Homomorphic_decrypt;
    Homomorphic_add; Homomorphic_scalar; Random_number ]

let name = function
  | Hash -> "hash"
  | Ideal_hash -> "ideal-hash"
  | Hybrid_encrypt -> "hybrid-encrypt"
  | Hybrid_decrypt -> "hybrid-decrypt"
  | Commutative_encrypt -> "commutative-encrypt"
  | Commutative_decrypt -> "commutative-decrypt"
  | Homomorphic_encrypt -> "homomorphic-encrypt"
  | Homomorphic_decrypt -> "homomorphic-decrypt"
  | Homomorphic_add -> "homomorphic-add"
  | Homomorphic_scalar -> "homomorphic-scalar"
  | Random_number -> "random-number"

let index = function
  | Hash -> 0
  | Ideal_hash -> 1
  | Hybrid_encrypt -> 2
  | Hybrid_decrypt -> 3
  | Commutative_encrypt -> 4
  | Commutative_decrypt -> 5
  | Homomorphic_encrypt -> 6
  | Homomorphic_decrypt -> 7
  | Homomorphic_add -> 8
  | Homomorphic_scalar -> 9
  | Random_number -> 10

let table = Array.make (List.length all) 0

let bump_by p n = table.(index p) <- table.(index p) + n
let bump p = bump_by p 1

let reset () = Array.fill table 0 (Array.length table) 0

let count p = table.(index p)

let snapshot () = List.map (fun p -> (p, count p)) all

let used () = List.filter (fun p -> count p > 0) all

let with_fresh f =
  let saved = Array.copy table in
  reset ();
  let restore () = Array.blit saved 0 table 0 (Array.length table) in
  match f () with
  | result ->
    let counts = snapshot () in
    restore ();
    (result, counts)
  | exception e ->
    restore ();
    raise e

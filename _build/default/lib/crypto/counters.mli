(** Instrumentation of cryptographic primitive invocations.

    Every primitive the protocols use reports here, so that Table 2 of the
    paper ("applied cryptographic primitives") can be regenerated from
    actual executions rather than asserted. *)

type primitive =
  | Hash                  (** collision-free hash (SHA-256 in index tables) *)
  | Ideal_hash            (** random-oracle hash into the commutative domain *)
  | Hybrid_encrypt        (** the paper's [encrypt] *)
  | Hybrid_decrypt        (** the paper's [decrypt] *)
  | Commutative_encrypt   (** one application of f_e *)
  | Commutative_decrypt
  | Homomorphic_encrypt   (** Paillier encryption *)
  | Homomorphic_decrypt
  | Homomorphic_add       (** ciphertext-ciphertext addition *)
  | Homomorphic_scalar    (** ciphertext-constant multiplication *)
  | Random_number         (** fresh masking randomness (the PM r values) *)

val all : primitive list
val name : primitive -> string

val bump : primitive -> unit
val bump_by : primitive -> int -> unit
val reset : unit -> unit

val count : primitive -> int

val snapshot : unit -> (primitive * int) list
(** Counts for every primitive, in {!all} order (zeros included). *)

val used : unit -> primitive list
(** Primitives with a non-zero count since the last {!reset}. *)

val with_fresh : (unit -> 'a) -> 'a * (primitive * int) list
(** Runs the thunk with counters reset, returning its result and the counts
    it accumulated; restores the previous counts afterwards. *)

(** ElGamal over QR_p, used as the key-encapsulation half of the hybrid
    scheme.  Semantic security follows from DDH in QR_p. *)

open Secmed_bigint

type public_key = { group : Group.t; y : Bigint.t }
type private_key = { public : public_key; x : Bigint.t }

val keygen : Prng.t -> Group.t -> private_key
val public : private_key -> public_key

type ciphertext = { c1 : Bigint.t; c2 : Bigint.t }

val encrypt : Prng.t -> public_key -> Bigint.t -> ciphertext
(** Encrypts a group element (caller must supply an element of QR_p). *)

val decrypt : private_key -> ciphertext -> Bigint.t

val encapsulate : Prng.t -> public_key -> ciphertext * string
(** Picks a random group element, encrypts it, and returns the ciphertext
    together with a 32-byte shared secret derived from the element. *)

val decapsulate : private_key -> ciphertext -> string

val fingerprint : public_key -> string
(** Short stable identifier for a public key (hex of a truncated hash);
    used inside credentials. *)

let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  key ^ String.make (block_size - String.length key) '\000'

let sha256 ~key msg =
  let key = normalize_key key in
  let ipad = String.map (fun c -> Char.chr (Char.code c lxor 0x36)) key in
  let opad = String.map (fun c -> Char.chr (Char.code c lxor 0x5c)) key in
  Sha256.digest (opad ^ Sha256.digest (ipad ^ msg))

let sha256_hex ~key msg = Bytes_util.to_hex (sha256 ~key msg)

let verify ~key msg ~tag = Bytes_util.constant_time_equal (sha256 ~key msg) tag

(** HMAC-SHA256 (RFC 2104). *)

val sha256 : key:string -> string -> string
(** 32-byte raw MAC. *)

val sha256_hex : key:string -> string -> string

val verify : key:string -> string -> tag:string -> bool
(** Constant-time tag comparison. *)

open Secmed_bigint

type ciphertext = {
  kem : Elgamal.ciphertext;
  nonce : string; (* 12 bytes *)
  body : string;
  tag : string; (* 32 bytes *)
  key_bytes : int; (* byte width of the group modulus, for wire encoding *)
}

let derive_keys secret =
  let enc_key = String.sub (Sha256.digest ("enc" ^ secret)) 0 16 in
  let mac_key = Sha256.digest ("mac" ^ secret) in
  (enc_key, mac_key)

let encrypt prng pk plaintext =
  Counters.bump Counters.Hybrid_encrypt;
  let kem, secret = Elgamal.encapsulate prng pk in
  let enc_key, mac_key = derive_keys secret in
  let nonce = Prng.bytes prng 12 in
  let body = Aes.ctr_transform ~key:enc_key ~nonce plaintext in
  let tag = Hmac.sha256 ~key:mac_key (nonce ^ body) in
  let key_bytes = (pk.Elgamal.group.Group.bits + 7) / 8 in
  { kem; nonce; body; tag; key_bytes }

let decrypt sk ct =
  Counters.bump Counters.Hybrid_decrypt;
  let secret = Elgamal.decapsulate sk ct.kem in
  let enc_key, mac_key = derive_keys secret in
  if Hmac.verify ~key:mac_key (ct.nonce ^ ct.body) ~tag:ct.tag then
    Some (Aes.ctr_transform ~key:enc_key ~nonce:ct.nonce ct.body)
  else None

(* Exact wire size: key-width header, two group elements, nonce, tag,
   body-length header, body. *)
let size ct = 4 + (2 * ct.key_bytes) + 12 + 32 + 4 + String.length ct.body

let to_wire ct =
  let c1 = Bigint.to_bytes_be_padded ct.key_bytes ct.kem.Elgamal.c1 in
  let c2 = Bigint.to_bytes_be_padded ct.key_bytes ct.kem.Elgamal.c2 in
  Bytes_util.be32 ct.key_bytes ^ c1 ^ c2 ^ ct.nonce ^ ct.tag
  ^ Bytes_util.be32 (String.length ct.body)
  ^ ct.body

let of_wire s =
  let fail () = invalid_arg "Hybrid.of_wire: malformed ciphertext" in
  if String.length s < 4 then fail ();
  let key_bytes = Bytes_util.read_be32 s 0 in
  let header = 4 + (2 * key_bytes) + 12 + 32 + 4 in
  if key_bytes <= 0 || String.length s < header then fail ();
  let c1 = Bigint.of_bytes_be (String.sub s 4 key_bytes) in
  let c2 = Bigint.of_bytes_be (String.sub s (4 + key_bytes) key_bytes) in
  let nonce = String.sub s (4 + (2 * key_bytes)) 12 in
  let tag = String.sub s (4 + (2 * key_bytes) + 12) 32 in
  let body_len = Bytes_util.read_be32 s (header - 4) in
  if String.length s <> header + body_len then fail ();
  let body = String.sub s header body_len in
  { kem = { Elgamal.c1; c2 }; nonce; body; tag; key_bytes }

let random_session_key prng = Prng.bytes prng 16

let dem_encrypt prng ~key plaintext =
  let nonce = Prng.bytes prng 12 in
  let body = Aes.ctr_transform ~key ~nonce plaintext in
  let mac_key = Sha256.digest ("dem-mac" ^ key) in
  let tag = Hmac.sha256 ~key:mac_key (nonce ^ body) in
  nonce ^ tag ^ body

let dem_decrypt ~key blob =
  if String.length blob < 44 then None
  else begin
    let nonce = String.sub blob 0 12 in
    let tag = String.sub blob 12 32 in
    let body = String.sub blob 44 (String.length blob - 44) in
    let mac_key = Sha256.digest ("dem-mac" ^ key) in
    if Hmac.verify ~key:mac_key (nonce ^ body) ~tag then
      Some (Aes.ctr_transform ~key ~nonce body)
    else None
  end

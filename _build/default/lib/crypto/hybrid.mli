(** The paper's [encrypt]/[decrypt]: hybrid public-key encryption.

    A fresh symmetric session key is encapsulated with the client's public
    (ElGamal) key; the body is AES-128-CTR encrypted and authenticated with
    HMAC-SHA256 (encrypt-then-MAC).  Matches Section 2: "the information is
    encrypted with a newly generated symmetric session key and the session
    key is encrypted with the public keys of the client". *)

type ciphertext

val encrypt : Prng.t -> Elgamal.public_key -> string -> ciphertext
val decrypt : Elgamal.private_key -> ciphertext -> string option
(** [None] when authentication fails. *)

val size : ciphertext -> int
(** Wire size in bytes (for communication accounting). *)

val to_wire : ciphertext -> string
val of_wire : string -> ciphertext
(** Raises [Invalid_argument] on malformed input. *)

(** {1 Session-key (DEM-only) operations}

    The PM protocol's footnote-2 variant transmits the session key through
    the homomorphic channel and the bulk data under that key; these expose
    the symmetric half on its own. *)

val random_session_key : Prng.t -> string
(** 16 bytes. *)

val dem_encrypt : Prng.t -> key:string -> string -> string
val dem_decrypt : key:string -> string -> string option

(** Primality testing and prime generation. *)

open Secmed_bigint

val is_probable_prime : ?rounds:int -> Prng.t -> Bigint.t -> bool
(** Trial division by small primes followed by Miller–Rabin with random
    bases (default 24 rounds; error probability below 4^-rounds). *)

val gen_prime : Prng.t -> bits:int -> Bigint.t
(** Random probable prime with exactly [bits] bits (top two bits set so
    products of two such primes have the expected width).  Requires
    [bits >= 8]. *)

val gen_safe_prime : Prng.t -> bits:int -> Bigint.t
(** Random probable safe prime p = 2q + 1 with [bits] bits, q prime.
    Candidates are sieved jointly on q and p before Miller–Rabin. *)

val small_primes : int array
(** Primes below 2000, used by the sieving stage (exposed for tests). *)

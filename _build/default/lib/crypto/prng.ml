(* ChaCha20 (RFC 8439) block function driven as a deterministic DRBG.
   The 256-bit key is SHA-256 of the seed; the nonce is fixed; the block
   counter advances as output is consumed. *)

let m32 = 0xFFFFFFFF

type t = {
  key_words : int array; (* 8 words *)
  mutable counter : int;
  mutable pool : string; (* unconsumed bytes of the last block *)
  mutable pool_off : int;
  seed : string;
}

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land m32

let quarter st a b c d =
  st.(a) <- (st.(a) + st.(b)) land m32;
  st.(d) <- rotl (st.(d) lxor st.(a)) 16;
  st.(c) <- (st.(c) + st.(d)) land m32;
  st.(b) <- rotl (st.(b) lxor st.(c)) 12;
  st.(a) <- (st.(a) + st.(b)) land m32;
  st.(d) <- rotl (st.(d) lxor st.(a)) 8;
  st.(c) <- (st.(c) + st.(d)) land m32;
  st.(b) <- rotl (st.(b) lxor st.(c)) 7

let read_le32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let block key_words counter =
  let init =
    Array.append
      [| 0x61707865; 0x3320646e; 0x79622d32; 0x6b206574 |]
      (Array.append key_words [| counter land m32; (counter lsr 32) land m32; 0; 0 |])
  in
  let st = Array.copy init in
  for _round = 1 to 10 do
    quarter st 0 4 8 12;
    quarter st 1 5 9 13;
    quarter st 2 6 10 14;
    quarter st 3 7 11 15;
    quarter st 0 5 10 15;
    quarter st 1 6 11 12;
    quarter st 2 7 8 13;
    quarter st 3 4 9 14
  done;
  let out = Buffer.create 64 in
  for i = 0 to 15 do
    Buffer.add_string out (Bytes_util.le32 ((st.(i) + init.(i)) land m32))
  done;
  Buffer.contents out

let key_words_of_seed seed =
  let key = Sha256.digest seed in
  Array.init 8 (fun i -> read_le32 key (4 * i))

let create ~seed =
  { key_words = key_words_of_seed seed; counter = 0; pool = ""; pool_off = 0; seed }

let of_int_seed n = create ~seed:(Printf.sprintf "secmed-prng-%d" n)

let split g label = create ~seed:(g.seed ^ "/" ^ label)

let bytes g n =
  if n < 0 then invalid_arg "Prng.bytes: negative count";
  let out = Buffer.create n in
  let remaining = ref n in
  while !remaining > 0 do
    if g.pool_off >= String.length g.pool then begin
      g.pool <- block g.key_words g.counter;
      g.counter <- g.counter + 1;
      g.pool_off <- 0
    end;
    let available = String.length g.pool - g.pool_off in
    let take = Stdlib.min available !remaining in
    Buffer.add_substring out g.pool g.pool_off take;
    g.pool_off <- g.pool_off + take;
    remaining := !remaining - take
  done;
  Buffer.contents out

let byte_source g n = bytes g n

let uniform_int g bound =
  if bound <= 0 then invalid_arg "Prng.uniform_int: bound must be positive";
  (* Rejection sampling over 62-bit draws to avoid modulo bias. *)
  let draw () =
    let s = bytes g 8 in
    let v = ref 0 in
    String.iter (fun c -> v := ((!v lsl 8) lor Char.code c) land max_int) s;
    !v
  in
  let limit = max_int - (max_int mod bound) in
  let rec go () =
    let v = draw () in
    if v < limit then v mod bound else go ()
  in
  go ()

let bool g = Char.code (bytes g 1).[0] land 1 = 1

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = uniform_int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(uniform_int g (Array.length a))

let raw_block ~key ~counter =
  if String.length key <> 32 then invalid_arg "Prng.raw_block: need a 32-byte key";
  block (Array.init 8 (fun i -> read_le32 key (4 * i))) counter

(** Deterministic ChaCha20-based pseudo-random generator.

    Every random choice in the library flows through a [Prng.t] so that
    protocol runs, tests and benchmarks are exactly reproducible from a
    seed.  The generator runs ChaCha20 in counter mode over a key derived
    from the seed; [split] derives statistically independent child streams
    (distinct labels give unrelated keys). *)

type t

val create : seed:string -> t
val of_int_seed : int -> t

val split : t -> string -> t
(** [split g label] is an independent generator derived from [g]'s seed and
    [label]; the parent is not advanced. *)

val bytes : t -> int -> string
(** The next [n] bytes of the stream. *)

val byte_source : t -> int -> string
(** Same as {!bytes} with the generator captured; shaped for
    [Bigint.random_below]. *)

val uniform_int : t -> int -> int
(** Uniform in [\[0, bound)]; requires [bound > 0]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

(**/**)

val raw_block : key:string -> counter:int -> string
(** The underlying ChaCha20 block function (32-byte key, zero nonce),
    exposed for test vectors only. *)

open Secmed_bigint

let expand label input nbytes =
  let out = Buffer.create nbytes in
  let counter = ref 0 in
  while Buffer.length out < nbytes do
    Buffer.add_string out (Sha256.digest (label ^ Bytes_util.be32 !counter ^ input));
    incr counter
  done;
  String.sub (Buffer.contents out) 0 nbytes

let hash group input =
  Counters.bump Counters.Ideal_hash;
  let p = group.Group.p in
  let nbytes = ((Bigint.numbits p + 64) + 7) / 8 in
  let u = Bigint.emod (Bigint.of_bytes_be (expand "secmed-ro" input nbytes)) p in
  (* Avoid the degenerate elements 0 / 1 / p-1 before squaring. *)
  let u = if Bigint.compare u Bigint.two < 0 then Bigint.two else u in
  Bigint.mod_pow u Bigint.two p

let hash_to_range input bound =
  Counters.bump Counters.Hash;
  if Bigint.sign bound <= 0 then invalid_arg "Random_oracle.hash_to_range: bound must be positive";
  let nbytes = ((Bigint.numbits bound + 64) + 7) / 8 in
  Bigint.emod (Bigint.of_bytes_be (expand "secmed-h" input nbytes)) bound

(** The paper's "ideal hash function h" mapping join-attribute values into
    the commutative-encryption domain QR_p.

    Instantiated as expand-then-square: SHA-256 in counter mode expands the
    input to [numbits p + 64] bits, the result is reduced mod p and squared.
    Squaring lands in QR_p; the 64 surplus bits make the pre-squaring value
    statistically close to uniform mod p. *)

open Secmed_bigint

val hash : Group.t -> string -> Bigint.t
(** Deterministic; both datasources call this with the same group. *)

val hash_to_range : string -> Bigint.t -> Bigint.t
(** Domain-separated hash of a byte string into [\[0, bound)]; the
    collision-free (non-oracle) hash used for DAS partition identifiers. *)

(** Schnorr signatures over QR_p, used by the simulated certification
    authority to sign credentials.  (Fiat–Shamir transform of the Schnorr
    identification protocol; hash is SHA-256.) *)

open Secmed_bigint

type public_key = { group : Group.t; y : Bigint.t }
type private_key

type signature = { r : Bigint.t; s : Bigint.t }

val keygen : Prng.t -> Group.t -> private_key
val public : private_key -> public_key

val sign : Prng.t -> private_key -> string -> signature
val verify : public_key -> string -> signature -> bool

val signature_to_wire : signature -> string
val signature_of_wire : string -> signature
(** Raises [Invalid_argument] on malformed input. *)

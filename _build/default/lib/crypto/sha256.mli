(** SHA-256 (FIPS 180-4), pure OCaml.

    Verified against the NIST short-message test vectors in the test suite.
    Both a one-shot and an incremental interface are provided. *)

type ctx

val init : unit -> ctx
val update : ctx -> string -> unit
val finalize : ctx -> string
(** 32-byte raw digest.  The context must not be reused afterwards. *)

val digest : string -> string
(** One-shot 32-byte raw digest. *)

val hex_digest : string -> string

val digest_size : int
(** 32. *)

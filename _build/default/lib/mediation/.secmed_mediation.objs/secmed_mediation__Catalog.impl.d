lib/mediation/catalog.ml: Aggregate Algebra Ast Hashtbl List Option Predicate Printf Schema Secmed_relalg Secmed_sql String Value

lib/mediation/catalog.mli: Aggregate Ast Predicate Schema Secmed_relalg Secmed_sql

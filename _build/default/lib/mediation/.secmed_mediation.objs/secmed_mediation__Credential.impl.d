lib/mediation/credential.ml: Elgamal Format Group List Schnorr Secmed_crypto String Wire

lib/mediation/credential.mli: Elgamal Format Group Prng Schnorr Secmed_crypto

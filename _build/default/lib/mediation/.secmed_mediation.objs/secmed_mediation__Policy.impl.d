lib/mediation/policy.ml: Credential List Predicate Relation Secmed_relalg String

lib/mediation/policy.mli: Credential Predicate Relation Secmed_relalg

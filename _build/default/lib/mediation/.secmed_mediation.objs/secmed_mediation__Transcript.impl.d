lib/mediation/transcript.ml: Array Buffer Bytes Hashtbl List Printf Stdlib String

lib/mediation/transcript.mli:

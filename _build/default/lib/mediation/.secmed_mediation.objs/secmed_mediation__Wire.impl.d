lib/mediation/wire.ml: Bigint Buffer Bytes_util Char List Secmed_bigint Secmed_crypto String

lib/mediation/wire.mli: Secmed_bigint

open Secmed_relalg
open Secmed_sql

type entry = {
  relation : string;
  source : int;
  schema : Schema.t;
  source_relation : string;
}

type t = entry list

let make entries =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if Hashtbl.mem seen e.relation then
        invalid_arg (Printf.sprintf "Catalog.make: duplicate relation %s" e.relation);
      Hashtbl.add seen e.relation ())
    entries;
  entries

let entries t = t

let locate t name = List.find (fun e -> String.equal e.relation name) t

let mem t name = List.exists (fun e -> String.equal e.relation name) t

type decomposition = {
  left : entry;
  right : entry;
  join_attrs : string list;
  partial_query_left : string;
  partial_query_right : string;
  residual_where : Predicate.t option;
  projection : string list option;
  aggregation : (Aggregate.spec list * string list) option;
  distinct : bool;
}

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let bare_name column = column.Ast.name

let resolve_ref t (r : Ast.table_ref) =
  match r.alias with
  | Some alias when not (String.equal alias r.table) ->
    unsupported "table aliases are not supported in the mediated setting (%s AS %s)" r.table alias
  | Some _ | None ->
    (try locate t r.table
     with Not_found -> unsupported "unknown relation %s" r.table)

let decompose t (q : Ast.query) =
  let left = resolve_ref t q.from in
  let right, kind =
    match q.joins with
    | [ (kind, table) ] -> (resolve_ref t table, kind)
    | [] -> unsupported "query has no JOIN; the protocols mediate exactly one join"
    | _ :: _ :: _ -> unsupported "query has more than one JOIN"
  in
  if left.source = right.source then
    unsupported "both relations are managed by the same datasource %d" left.source;
  let common = Schema.common_names left.schema right.schema in
  let join_attrs =
    match kind with
    | Ast.J_natural ->
      (match common with
       | [] -> unsupported "relations %s and %s share no attribute" left.relation right.relation
       | _ :: _ -> common)
    | Ast.J_on (a, b) ->
      let check_side col entry =
        (match col.Ast.qualifier with
         | Some qualifier when not (String.equal qualifier entry.relation) ->
           unsupported "join attribute %s does not belong to %s" (Ast.column_name col)
             entry.relation
         | Some _ | None -> ());
        if not (Schema.mem entry.schema (bare_name col)) then
          unsupported "relation %s has no attribute %s" entry.relation (bare_name col)
      in
      check_side a left;
      check_side b right;
      if not (String.equal (bare_name a) (bare_name b)) then
        unsupported "join attributes %s and %s differ; the global schema embedding maps them to one name"
          (bare_name a) (bare_name b);
      (match common with
       | [ c ] when String.equal c (bare_name a) -> ()
       | _ ->
         unsupported "relations %s and %s must share exactly the join attribute %s"
           left.relation right.relation (bare_name a));
      [ bare_name a ]
  in
  List.iter
    (fun join_attr ->
      let ty_of entry =
        (Schema.attr_at entry.schema (Schema.find entry.schema join_attr)).Schema.ty
      in
      if not (Value.ty_equal (ty_of left) (ty_of right)) then
        unsupported "join attribute %s has different types in %s and %s" join_attr
          left.relation right.relation)
    join_attrs;
  {
    left;
    right;
    join_attrs;
    partial_query_left = Printf.sprintf "select * from %s" left.source_relation;
    partial_query_right = Printf.sprintf "select * from %s" right.source_relation;
    residual_where = Option.map Algebra.predicate_of_expr q.where;
    projection =
      Option.map
        (List.map (function
          | Ast.S_column c -> Ast.column_name c
          | Ast.S_aggregate a ->
            (Aggregate.spec ?alias:a.Ast.agg_alias a.Ast.agg_func
               (Option.map Ast.column_name a.Ast.agg_column))
              .Aggregate.alias))
        q.select;
    aggregation =
      (if Ast.has_aggregates q || q.group_by <> [] then begin
         let keys = List.map Ast.column_name q.group_by in
         let items = Option.value ~default:[] q.select in
         List.iter
           (function
             | Ast.S_column c ->
               let name = Ast.column_name c in
               if not (List.exists (String.equal name) keys) then
                 unsupported "column %s is neither aggregated nor grouped" name
             | Ast.S_aggregate _ -> ())
           items;
         let specs =
           List.filter_map
             (function
               | Ast.S_aggregate a ->
                 Some
                   (Aggregate.spec ?alias:a.Ast.agg_alias a.Ast.agg_func
                      (Option.map Ast.column_name a.Ast.agg_column))
               | Ast.S_column _ -> None)
             items
         in
         Some (specs, keys)
       end
       else None);
    distinct = q.distinct;
  }

let global_schema _t d =
  let left = Schema.qualify d.left.relation d.left.schema in
  let right = Schema.qualify d.right.relation d.right.schema in
  let right_attrs =
    List.filter
      (fun a -> not (List.exists (String.equal a.Schema.name) d.join_attrs))
      (Schema.attrs right)
  in
  Schema.make (Schema.attrs left @ right_attrs)

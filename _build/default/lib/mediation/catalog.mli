(** The mediator's global schema: the embedding of heterogeneous source
    schemas into one homogeneous view (paper Section 2, citing [2]).

    The catalog knows, for every global relation name, which datasource
    manages it and under what schema; this is what lets the mediator
    localize datasources and identify the join attributes A1 and A2. *)

open Secmed_relalg
open Secmed_sql

type entry = {
  relation : string;      (** global relation name *)
  source : int;           (** datasource id (1-based) *)
  schema : Schema.t;
  source_relation : string;  (** the name the source itself uses *)
}

type t

val make : entry list -> t
(** Raises [Invalid_argument] on duplicate global relation names. *)

val entries : t -> entry list
val locate : t -> string -> entry
(** Raises [Not_found] for unknown relation names. *)

val mem : t -> string -> bool

(** Decomposition of a global join query into two partial queries plus a
    join specification — the request-phase step 2 of Listing 1. *)
type decomposition = {
  left : entry;
  right : entry;
  join_attrs : string list;
      (** bare names of the join attributes.  The paper assumes a single
          A_join; NATURAL JOIN over relations sharing several attributes
          yields a composite key (the Section 8 extension). *)
  partial_query_left : string;   (** "select * from R1" *)
  partial_query_right : string;
  residual_where : Predicate.t option;
      (** any extra WHERE condition, applied after the join *)
  projection : string list option;
      (** SELECT output names if not [*] (aggregate items appear under
          their alias) *)
  aggregation : (Aggregate.spec list * string list) option;
      (** aggregate specs and GROUP BY keys when the query aggregates *)
  distinct : bool;
}

exception Unsupported of string
(** Raised when a query is outside the paper's scope (Section 2 confines
    queries to one JOIN of two relations on a single join attribute). *)

val decompose : t -> Ast.query -> decomposition
(** Validates and decomposes.  For a NATURAL JOIN the join attributes are
    the common bare attributes of the two schemas (at least one); an
    explicit [ON a = b] must name attributes of the respective relations
    with a common bare name, which must then be the only shared one. *)

val global_schema : t -> decomposition -> Schema.t
(** Schema of the mediated join result (left schema + right schema minus
    the duplicated join attributes), each side qualified by relation
    name. *)

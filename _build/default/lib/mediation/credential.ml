open Secmed_crypto

type property = { key : string; value : string }

let property key value = { key; value }
let property_to_string p = p.key ^ "=" ^ p.value

type t = {
  serial : int;
  issuer : string;
  properties : property list;
  public_key : Elgamal.public_key;
  signature : Schnorr.signature;
}

let properties c = c.properties
let public_key c = c.public_key

let has_property c p = List.exists (fun q -> q.key = p.key && q.value = p.value) c.properties

let pp fmt c =
  Format.fprintf fmt "credential #%d from %s {%s} key:%s" c.serial c.issuer
    (String.concat "; " (List.map property_to_string c.properties))
    (Elgamal.fingerprint c.public_key)

let signed_payload_of ~serial ~issuer ~props ~key =
  let w = Wire.writer () in
  Wire.write_int w serial;
  Wire.write_string w issuer;
  Wire.write_list w
    (fun p ->
      Wire.write_string w p.key;
      Wire.write_string w p.value)
    (List.sort compare props);
  Wire.write_string w (Elgamal.fingerprint key);
  Wire.contents w

let signed_payload c =
  signed_payload_of ~serial:c.serial ~issuer:c.issuer ~props:c.properties
    ~key:c.public_key

let size c =
  String.length (signed_payload c)
  + String.length (Schnorr.signature_to_wire c.signature)
  + (2 * ((c.public_key.Elgamal.group.Group.bits + 7) / 8))

type identity_certificate = {
  identity : string;
  key_fingerprint : string;
  id_signature : Schnorr.signature;
}

module Authority = struct
  type ca = { ca_name : string; signing_key : Schnorr.private_key; mutable next_serial : int }

  let create ?(name = "trusted-ca") prng group =
    { ca_name = name; signing_key = Schnorr.keygen prng group; next_serial = 1 }

  let name ca = ca.ca_name

  let verification_key ca = Schnorr.public ca.signing_key

  let issue ca prng ~properties:props key =
    let serial = ca.next_serial in
    ca.next_serial <- serial + 1;
    let payload = signed_payload_of ~serial ~issuer:ca.ca_name ~props ~key in
    {
      serial;
      issuer = ca.ca_name;
      properties = props;
      public_key = key;
      signature = Schnorr.sign prng ca.signing_key payload;
    }

  let identity_payload ~identity ~fingerprint = "identity:" ^ identity ^ ":" ^ fingerprint

  let issue_identity ca prng ~identity key =
    let key_fingerprint = Elgamal.fingerprint key in
    let payload = identity_payload ~identity ~fingerprint:key_fingerprint in
    { identity; key_fingerprint; id_signature = Schnorr.sign prng ca.signing_key payload }

  let verify ca c =
    String.equal c.issuer ca.ca_name
    && Schnorr.verify (verification_key ca) (signed_payload c) c.signature

  let verify_identity ca cert key =
    String.equal cert.key_fingerprint (Elgamal.fingerprint key)
    && Schnorr.verify (verification_key ca)
         (identity_payload ~identity:cert.identity ~fingerprint:cert.key_fingerprint)
         cert.id_signature
end

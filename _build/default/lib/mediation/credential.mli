(** Credentials and the certification authority (paper Section 2).

    A credential links *properties* of a client (not its identity) to one
    of the client's public encryption keys, signed by a trusted CA.  The
    client separately holds identity certificates linking its identity to
    each key, to be produced only in case of dispute. *)

open Secmed_crypto

type property = { key : string; value : string }

val property : string -> string -> property
val property_to_string : property -> string

type t = private {
  serial : int;
  issuer : string;
  properties : property list;
  public_key : Elgamal.public_key;
  signature : Schnorr.signature;
}

val properties : t -> property list
val public_key : t -> Elgamal.public_key
val has_property : t -> property -> bool
val pp : Format.formatter -> t -> unit

val signed_payload : t -> string
(** The byte string the CA signature covers (serial, issuer, properties,
    key fingerprint). *)

val size : t -> int
(** Wire size in bytes. *)

type identity_certificate = private {
  identity : string;
  key_fingerprint : string;
  id_signature : Schnorr.signature;
}

(** The trusted certification authority of the preparatory phase. *)
module Authority : sig
  type ca

  val create : ?name:string -> Prng.t -> Group.t -> ca
  val name : ca -> string
  val verification_key : ca -> Schnorr.public_key

  val issue : ca -> Prng.t -> properties:property list -> Elgamal.public_key -> t
  (** Issues a credential over the given client key. *)

  val issue_identity :
    ca -> Prng.t -> identity:string -> Elgamal.public_key -> identity_certificate

  val verify : ca -> t -> bool
  (** Checks the CA signature (datasources run this before granting
      access). *)

  val verify_identity : ca -> identity_certificate -> Elgamal.public_key -> bool
end

open Secmed_relalg

type grant =
  | Full
  | Filtered of Predicate.t
  | Deny

type rule = { requires : Credential.property list; grant : grant }

type t = { rules : rule list; default : grant }

let make ?(default = Deny) rules = { rules; default }

let open_policy = { rules = []; default = Full }

let satisfied presented rule =
  List.for_all
    (fun required ->
      List.exists
        (fun p ->
          String.equal p.Credential.key required.Credential.key
          && String.equal p.Credential.value required.Credential.value)
        presented)
    rule.requires

let decide policy presented =
  match List.find_opt (satisfied presented) policy.rules with
  | Some rule -> rule.grant
  | None -> policy.default

let apply policy presented relation =
  match decide policy presented with
  | Deny -> None
  | Full -> Some relation
  | Filtered predicate -> Some (Relation.select predicate relation)

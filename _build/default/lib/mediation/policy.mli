(** Datasource access control (paper Section 2): decisions are based only
    on the properties in verified credentials.  "In case the credentials do
    not allow full data access, the partial results might be filtered in
    order to return only those records for which access permissions
    exist." *)

open Secmed_relalg

type grant =
  | Full
  | Filtered of Predicate.t  (** row-level restriction *)
  | Deny

type rule = {
  requires : Credential.property list;
      (** all must appear among the presented credentials' properties *)
  grant : grant;
}

type t

val make : ?default:grant -> rule list -> t
(** Rules are evaluated in order; the first whose requirement is satisfied
    decides.  [default] (default [Deny]) applies when none matches. *)

val open_policy : t
(** Grants everything to anyone (for workloads without access control). *)

val decide : t -> Credential.property list -> grant
(** Decision for the union of properties of the presented credentials. *)

val apply : t -> Credential.property list -> Relation.t -> Relation.t option
(** The filtered partial result, or [None] when access is denied. *)

lib/relalg/aggregate.ml: Hashtbl List Printf Relation Schema String Tuple Value

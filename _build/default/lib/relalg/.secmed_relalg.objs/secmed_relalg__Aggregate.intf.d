lib/relalg/aggregate.mli: Relation Value

lib/relalg/csv.mli: Relation Schema

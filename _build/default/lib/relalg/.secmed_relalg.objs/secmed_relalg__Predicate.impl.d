lib/relalg/predicate.ml: Format List Schema String Tuple Value

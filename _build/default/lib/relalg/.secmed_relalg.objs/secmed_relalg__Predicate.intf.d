lib/relalg/predicate.mli: Format Schema Tuple Value

lib/relalg/relation.ml: Array Format Fun Hashtbl List Map Predicate Printf Schema Stdlib String Tuple Value

lib/relalg/relation.mli: Format Predicate Schema Tuple Value

lib/relalg/tuple.ml: Array Buffer Format Hashtbl Schema Stdlib String Value

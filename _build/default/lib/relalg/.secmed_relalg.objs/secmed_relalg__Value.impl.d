lib/relalg/value.ml: Char Format Hashtbl Printf Stdlib String

type func =
  | Count
  | Sum
  | Min
  | Max
  | Avg

let func_name = function
  | Count -> "count"
  | Sum -> "sum"
  | Min -> "min"
  | Max -> "max"
  | Avg -> "avg"

type spec = {
  func : func;
  column : string option;
  alias : string;
}

let spec ?alias func column =
  (match (func, column) with
   | Count, _ -> ()
   | (Sum | Min | Max | Avg), None ->
     invalid_arg (Printf.sprintf "Aggregate.spec: %s needs a column" (func_name func))
   | (Sum | Min | Max | Avg), Some _ -> ());
  let alias =
    match alias with
    | Some a -> a
    | None ->
      (match column with
       | None -> func_name func
       | Some c ->
         (* Drop any qualifier for the default alias. *)
         let bare =
           match String.index_opt c '.' with
           | None -> c
           | Some i -> String.sub c (i + 1) (String.length c - i - 1)
         in
         func_name func ^ "_" ^ bare)
  in
  { func; column; alias }

let output_type s relation =
  match s.func with
  | Count -> Value.Tint
  | Sum | Min | Max | Avg ->
    let column =
      match s.column with
      | Some c -> c
      | None -> invalid_arg "Aggregate.output_type: missing column"
    in
    let schema = Relation.schema relation in
    let attr = Schema.attr_at schema (Schema.find schema column) in
    (match (s.func, attr.Schema.ty) with
     | (Sum | Avg), Value.Tint -> Value.Tint
     | (Sum | Avg), (Value.Tstring | Value.Tbool) ->
       invalid_arg
         (Printf.sprintf "Aggregate.output_type: %s needs an integer column, %s is %s"
            (func_name s.func) column (Value.ty_name attr.Schema.ty))
     | (Min | Max), ty -> ty
     | Count, _ -> assert false)

let ints_of values =
  List.map
    (function
      | Value.Int n -> n
      | Value.Str _ | Value.Bool _ ->
        invalid_arg "Aggregate.evaluate: numeric aggregate over non-integer values")
    values

let evaluate func values =
  match func with
  | Count -> Value.Int (List.length values)
  | Sum -> Value.Int (List.fold_left ( + ) 0 (ints_of values))
  | Avg ->
    (match values with
     | [] -> invalid_arg "Aggregate.evaluate: avg of empty group"
     | _ :: _ ->
       let ints = ints_of values in
       Value.Int (List.fold_left ( + ) 0 ints / List.length ints))
  | Min | Max ->
    (match values with
     | [] -> invalid_arg "Aggregate.evaluate: min/max of empty group"
     | first :: rest ->
       let keep_smaller = func = Min in
       List.fold_left
         (fun best v ->
           if not (Value.ty_equal (Value.ty_of best) (Value.ty_of v)) then
             invalid_arg "Aggregate.evaluate: mixed types in group"
           else if Value.compare v best < 0 = keep_smaller then v
           else best)
         first rest)

let group_by relation ~keys ~specs =
  let schema = Relation.schema relation in
  let key_positions = List.map (Schema.find schema) keys in
  let column_values spec tuple_group =
    match spec.column with
    | None -> List.map (fun _ -> Value.Int 1) tuple_group
    | Some c ->
      let position = Schema.find schema c in
      List.map (fun t -> Tuple.get t position) tuple_group
  in
  let out_schema =
    Schema.make
      (List.map (fun i -> Schema.attr_at schema i) key_positions
      @ List.map
          (fun s ->
            let ty =
              match s.func with Count -> Value.Tint | _ -> output_type s relation
            in
            Schema.attr s.alias ty)
          specs)
  in
  (* Group tuples by their key projection, preserving first-seen order,
     then sort output canonically. *)
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun tuple ->
      let key = List.map (Tuple.get tuple) key_positions in
      let encoded = Tuple.encode (Tuple.of_list key) in
      match Hashtbl.find_opt groups encoded with
      | Some (k, tuples) -> Hashtbl.replace groups encoded (k, tuple :: tuples)
      | None ->
        Hashtbl.add groups encoded (key, [ tuple ]);
        order := encoded :: !order)
    (Relation.tuples relation);
  let rows =
    if keys = [] && Hashtbl.length groups = 0 then begin
      (* Global aggregate of an empty relation: COUNT is 0, others fail. *)
      [ List.map
          (fun s ->
            match s.func with
            | Count -> Value.Int 0
            | Sum | Min | Max | Avg ->
              invalid_arg "Aggregate.group_by: non-count aggregate over empty relation")
          specs ]
    end
    else
      List.rev_map
        (fun encoded ->
          let key, tuples = Hashtbl.find groups encoded in
          let tuples = List.rev tuples in
          key @ List.map (fun s -> evaluate s.func (column_values s tuples)) specs)
        !order
  in
  Relation.sort (Relation.of_rows out_schema rows)

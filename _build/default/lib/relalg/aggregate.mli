(** Grouping and aggregation over relations.

    The substrate for aggregation queries (SELECT ... GROUP BY): used by
    the trusted reference evaluation and by the encrypted-aggregation
    protocol's client-side assembly. *)

type func =
  | Count       (** row count — the column argument is ignored *)
  | Sum
  | Min
  | Max
  | Avg         (** integer average, truncated toward zero *)

val func_name : func -> string

type spec = {
  func : func;
  column : string option;  (** [None] only for [Count] *)
  alias : string;          (** output attribute name *)
}

val spec : ?alias:string -> func -> string option -> spec
(** Default alias: ["count"], ["sum_x"], etc. *)

val output_type : spec -> Relation.t -> Value.ty
(** Result type of the aggregate over the given input (checks the column
    exists and is numeric where required; raises [Invalid_argument]). *)

val evaluate : func -> Value.t list -> Value.t
(** Aggregate of a non-empty value list.  [Count] counts; the numeric
    functions require integers.  Raises [Invalid_argument] on empty input
    or type mismatch. *)

val group_by : Relation.t -> keys:string list -> specs:spec list -> Relation.t
(** SELECT keys, aggs FROM r GROUP BY keys.  Output schema: the key
    attributes (in the given order, original qualifiers kept) followed by
    one attribute per spec.  Empty [keys] produces a single row over the
    whole relation ([Count] of an empty relation is 0; other aggregates
    over an empty relation raise [Invalid_argument]). *)

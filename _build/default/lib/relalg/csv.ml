let parse_rows text =
  let len = String.length text in
  let rows = ref [] and fields = ref [] in
  let buf = Buffer.create 16 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let rec plain i =
    if i >= len then ()
    else begin
      match text.[i] with
      | ',' ->
        flush_field ();
        plain (i + 1)
      | '\n' ->
        flush_row ();
        plain (i + 1)
      | '\r' -> plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
    end
  and quoted i =
    if i >= len then invalid_arg "Csv.parse_rows: unterminated quote"
    else begin
      match text.[i] with
      | '"' when i + 1 < len && text.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
    end
  in
  plain 0;
  (* Final row without trailing newline. *)
  if Buffer.length buf > 0 || !fields <> [] then flush_row ();
  List.rev !rows

let read_relation schema text =
  match parse_rows text with
  | [] -> invalid_arg "Csv.read_relation: empty input"
  | header :: rows ->
    let expected = List.map (fun a -> a.Schema.name) (Schema.attrs schema) in
    if not (List.equal String.equal header expected) then
      invalid_arg
        (Printf.sprintf "Csv.read_relation: header [%s] does not match schema [%s]"
           (String.concat "," header) (String.concat "," expected));
    let attrs = Schema.attrs schema in
    let parse_row row =
      if List.length row <> List.length attrs then
        invalid_arg
          (Printf.sprintf "Csv.read_relation: row with %d fields, expected %d"
             (List.length row) (List.length attrs));
      Tuple.of_list (List.map2 (fun a field -> Value.parse a.Schema.ty field) attrs row)
    in
    Relation.make schema (List.map parse_row rows)

let escape_field s =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if needs_quote then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let write_relation r =
  let buf = Buffer.create 256 in
  let write_row cells =
    Buffer.add_string buf (String.concat "," (List.map escape_field cells));
    Buffer.add_char buf '\n'
  in
  write_row (List.map (fun a -> a.Schema.name) (Schema.attrs (Relation.schema r)));
  List.iter
    (fun t -> write_row (List.map Value.to_string (Tuple.to_list t)))
    (Relation.tuples r);
  Buffer.contents buf

let load_file schema path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  read_relation schema text

let save_file r path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (write_relation r))

(** Minimal CSV import/export for examples and workload files.

    Supports quoted fields with embedded commas/quotes/newlines (RFC 4180
    style).  The first line is the header. *)

val parse_rows : string -> string list list
(** Raw rows of fields.  Raises [Invalid_argument] on unterminated quotes. *)

val read_relation : Schema.t -> string -> Relation.t
(** Parses CSV text whose header must match the schema's bare attribute
    names (in order); values are parsed per attribute type. *)

val write_relation : Relation.t -> string

val load_file : Schema.t -> string -> Relation.t
val save_file : Relation.t -> string -> unit

type term =
  | Attr of string
  | Const of Value.t

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of comparison * term * term
  | And of t * t
  | Or of t * t
  | Not of t
  | In of term * Value.t list

let eq_attr a b = Cmp (Eq, Attr a, Attr b)
let eq_const a v = Cmp (Eq, Attr a, Const v)

let conj = function
  | [] -> True
  | first :: rest -> List.fold_left (fun acc p -> And (acc, p)) first rest

let disj = function
  | [] -> False
  | first :: rest -> List.fold_left (fun acc p -> Or (acc, p)) first rest

let eval_term schema tuple = function
  | Const v -> v
  | Attr name -> Tuple.get tuple (Schema.find schema name)

let eval_cmp op a b =
  let c = Value.compare a b in
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let rec eval schema tuple p =
  match p with
  | True -> true
  | False -> false
  | Cmp (op, x, y) -> eval_cmp op (eval_term schema tuple x) (eval_term schema tuple y)
  | And (a, b) -> eval schema tuple a && eval schema tuple b
  | Or (a, b) -> eval schema tuple a || eval schema tuple b
  | Not a -> not (eval schema tuple a)
  | In (x, vs) ->
    let v = eval_term schema tuple x in
    List.exists (Value.equal v) vs

let attrs_used p =
  let rec go acc = function
    | True | False -> acc
    | Cmp (_, x, y) -> term acc x |> fun acc -> term acc y
    | And (a, b) | Or (a, b) -> go (go acc a) b
    | Not a -> go acc a
    | In (x, _) -> term acc x
  and term acc = function Attr a -> a :: acc | Const _ -> acc in
  List.sort_uniq String.compare (go [] p)

let rec size = function
  | True | False -> 0
  | Cmp _ | In _ -> 1
  | And (a, b) | Or (a, b) -> size a + size b
  | Not a -> size a

let cmp_symbol = function
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Cmp (op, x, y) -> Format.fprintf fmt "%a %s %a" pp_term x (cmp_symbol op) pp_term y
  | And (a, b) -> Format.fprintf fmt "(%a ∧ %a)" pp a pp b
  | Or (a, b) -> Format.fprintf fmt "(%a ∨ %a)" pp a pp b
  | Not a -> Format.fprintf fmt "¬%a" pp a
  | In (x, vs) ->
    Format.fprintf fmt "%a IN {%s}" pp_term x
      (String.concat ", " (List.map Value.to_string vs))

and pp_term fmt = function
  | Attr a -> Format.pp_print_string fmt a
  | Const v -> Value.pp fmt v

let to_string p = Format.asprintf "%a" pp p

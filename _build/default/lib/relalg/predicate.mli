(** Selection predicates over tuples: the condition language for σ.

    Expressive enough for the paper's conditions: the DAS server condition
    Cond_S is a disjunction of conjunctions of index equalities, the client
    condition Cond_C an attribute equality. *)

type term =
  | Attr of string  (** attribute reference, optionally qualified *)
  | Const of Value.t

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of comparison * term * term
  | And of t * t
  | Or of t * t
  | Not of t
  | In of term * Value.t list

val eq_attr : string -> string -> t
val eq_const : string -> Value.t -> t

val conj : t list -> t
(** n-ary conjunction ([True] for the empty list). *)

val disj : t list -> t
(** n-ary disjunction ([False] for the empty list). *)

val eval : Schema.t -> Tuple.t -> t -> bool
(** Raises [Not_found] on unknown attributes and [Invalid_argument] on
    ambiguous names. *)

val attrs_used : t -> string list
val size : t -> int
(** Number of atomic comparisons (a proxy for condition complexity; the
    DAS Cond_S grows with the number of overlapping partition pairs). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

type t = { schema : Schema.t; tuples : Tuple.t list }

let make schema tuples =
  List.iter
    (fun tuple ->
      if not (Tuple.matches_schema schema tuple) then
        invalid_arg
          (Format.asprintf "Relation.make: tuple %a does not match schema %a"
             Tuple.pp tuple Schema.pp schema))
    tuples;
  { schema; tuples }

let of_rows schema rows = make schema (List.map Tuple.of_list rows)
let empty schema = { schema; tuples = [] }
let schema r = r.schema
let tuples r = r.tuples
let cardinality r = List.length r.tuples
let is_empty r = r.tuples = []
let mem r tuple = List.exists (Tuple.equal tuple) r.tuples

let column r name =
  let i = Schema.find r.schema name in
  List.map (fun t -> Tuple.get t i) r.tuples

let active_domain r name =
  List.sort_uniq Value.compare (column r name)

let select predicate r =
  { r with tuples = List.filter (fun t -> Predicate.eval r.schema t predicate) r.tuples }

let project names r =
  let sub, positions = Schema.project r.schema names in
  { schema = sub; tuples = List.map (Tuple.project positions) r.tuples }

let rename rel r = { r with schema = Schema.qualify rel r.schema }

let product a b =
  let schema = Schema.append a.schema b.schema in
  let tuples =
    List.concat_map (fun ta -> List.map (fun tb -> Tuple.append ta tb) b.tuples) a.tuples
  in
  { schema; tuples }

let require_equal_layout op a b =
  if not (Schema.equal_layout a.schema b.schema) then
    invalid_arg
      (Format.asprintf "Relation.%s: schema mismatch %a vs %a" op Schema.pp a.schema
         Schema.pp b.schema)

let union a b =
  require_equal_layout "union" a b;
  { a with tuples = a.tuples @ b.tuples }

module Tuple_map = Map.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

let multiset tuples =
  List.fold_left
    (fun acc t ->
      Tuple_map.update t (function None -> Some 1 | Some n -> Some (n + 1)) acc)
    Tuple_map.empty tuples

let diff a b =
  require_equal_layout "diff" a b;
  let counts = ref (multiset b.tuples) in
  let keep t =
    match Tuple_map.find_opt t !counts with
    | Some n when n > 0 ->
      counts := Tuple_map.add t (n - 1) !counts;
      false
    | Some _ | None -> true
  in
  { a with tuples = List.filter keep a.tuples }

let intersect a b =
  require_equal_layout "intersect" a b;
  let counts = ref (multiset b.tuples) in
  let keep t =
    match Tuple_map.find_opt t !counts with
    | Some n when n > 0 ->
      counts := Tuple_map.add t (n - 1) !counts;
      true
    | Some _ | None -> false
  in
  { a with tuples = List.filter keep a.tuples }

let distinct r = { r with tuples = List.sort_uniq Tuple.compare r.tuples }

(* Natural join: hash partition the right side on the common attributes,
   probe with the left side; right copies of common attributes drop out. *)
let natural_join a b =
  let common = Schema.common_names a.schema b.schema in
  if common = [] then product a b
  else begin
    let key_positions schema =
      Array.of_list (List.map (Schema.find schema) common)
    in
    let ka = key_positions a.schema and kb = key_positions b.schema in
    let kept_b =
      (* Positions in b that are not join attributes. *)
      let is_common i =
        let bare = (Schema.attr_at b.schema i).Schema.name in
        List.exists (String.equal bare) common
      in
      List.filter (fun i -> not (is_common i)) (List.init (Schema.arity b.schema) Fun.id)
    in
    let schema =
      Schema.append a.schema
        (Schema.make (List.map (Schema.attr_at b.schema) kept_b))
    in
    let table = Hashtbl.create (List.length b.tuples) in
    List.iter
      (fun tb ->
        let key = Tuple.project kb tb in
        Hashtbl.add table (Tuple.encode key) tb)
      b.tuples;
    let kept_b = Array.of_list kept_b in
    let tuples =
      List.concat_map
        (fun ta ->
          let key = Tuple.encode (Tuple.project ka ta) in
          List.rev_map
            (fun tb -> Tuple.append ta (Tuple.project kept_b tb))
            (Hashtbl.find_all table key))
        a.tuples
    in
    { schema; tuples }
  end

let equi_join ~left ~right a b =
  let la = Schema.find a.schema left and rb = Schema.find b.schema right in
  let schema = Schema.append a.schema b.schema in
  let table = Hashtbl.create (List.length b.tuples) in
  List.iter
    (fun tb -> Hashtbl.add table (Value.encode (Tuple.get tb rb)) tb)
    b.tuples;
  let tuples =
    List.concat_map
      (fun ta ->
        let key = Value.encode (Tuple.get ta la) in
        List.rev_map (fun tb -> Tuple.append ta tb) (Hashtbl.find_all table key))
      a.tuples
  in
  { schema; tuples }

let nested_loop_join a b =
  let common = Schema.common_names a.schema b.schema in
  if common = [] then product a b
  else begin
    (* Work positionally: comparing and concatenating raw tuples avoids
       building the (name-clashing) intermediate cross-product schema. *)
    let pa = List.map (Schema.find a.schema) common in
    let pb = List.map (Schema.find b.schema) common in
    let keep_b =
      Array.of_list
        (List.filter (fun i -> not (List.mem i pb)) (List.init (Schema.arity b.schema) Fun.id))
    in
    let schema =
      Schema.append a.schema
        (Schema.make (List.map (Schema.attr_at b.schema) (Array.to_list keep_b)))
    in
    let matches ta tb =
      List.for_all2 (fun i j -> Value.equal (Tuple.get ta i) (Tuple.get tb j)) pa pb
    in
    let tuples =
      List.concat_map
        (fun ta ->
          List.filter_map
            (fun tb ->
              if matches ta tb then Some (Tuple.append ta (Tuple.project keep_b tb)) else None)
            b.tuples)
        a.tuples
    in
    { schema; tuples }
  end

let sort r = { r with tuples = List.sort Tuple.compare r.tuples }

let equal_contents a b =
  Schema.equal_layout a.schema b.schema
  && List.equal Tuple.equal (List.sort Tuple.compare a.tuples)
       (List.sort Tuple.compare b.tuples)

let pp fmt r =
  let headers = Array.of_list (Schema.names r.schema) in
  let rows =
    List.map (fun t -> Array.of_list (List.map Value.to_string (Tuple.to_list t))) r.tuples
  in
  let ncols = Array.length headers in
  let widths =
    Array.init ncols (fun c ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length row.(c)))
          (String.length headers.(c))
          rows)
  in
  let line ch =
    Format.fprintf fmt "+%s+@."
      (String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) ch) widths)))
  in
  let row cells =
    Format.fprintf fmt "|%s|@."
      (String.concat "|"
         (Array.to_list
            (Array.mapi (fun c cell -> Printf.sprintf " %-*s " widths.(c) cell) cells)))
  in
  line '-';
  row headers;
  line '-';
  List.iter row rows;
  line '-';
  Format.fprintf fmt "(%d tuple%s)" (cardinality r) (if cardinality r = 1 then "" else "s")

let to_string r = Format.asprintf "%a" pp r

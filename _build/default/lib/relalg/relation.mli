(** Relations (bags of tuples over a schema) and the relational operators
    the mediator pipeline uses. *)

type t

val make : Schema.t -> Tuple.t list -> t
(** Raises [Invalid_argument] when a tuple does not match the schema. *)

val of_rows : Schema.t -> Value.t list list -> t
val empty : Schema.t -> t
val schema : t -> Schema.t
val tuples : t -> Tuple.t list
val cardinality : t -> int
val is_empty : t -> bool
val mem : t -> Tuple.t -> bool

val column : t -> string -> Value.t list
(** Values of the named attribute, in tuple order (with duplicates). *)

val active_domain : t -> string -> Value.t list
(** Sorted distinct values of the named attribute: dom_active(A). *)

(** {1 Operators} *)

val select : Predicate.t -> t -> t
val project : string list -> t -> t
val rename : string -> t -> t
(** Re-qualifies every attribute with the given relation name. *)

val product : t -> t -> t
val union : t -> t -> t
(** Bag union; schemas must have equal layout. *)

val diff : t -> t -> t
(** Bag difference. *)

val intersect : t -> t -> t
val distinct : t -> t

val natural_join : t -> t -> t
(** Hash join on all common bare attribute names; degenerates to a cross
    product when there are none.  Common attributes appear once, with the
    left qualifier. *)

val equi_join : left:string -> right:string -> t -> t -> t
(** Join on one attribute pair, keeping both columns. *)

val nested_loop_join : t -> t -> t
(** Reference natural-join implementation (σ over ×) used to cross-check
    the hash join in tests and the DAS ablation. *)

val sort : t -> t
(** Canonical tuple order (for display and set comparison). *)

val equal_contents : t -> t -> bool
(** Same bag of tuples modulo order, requiring equal schema layout. *)

val pp : Format.formatter -> t -> unit
(** ASCII table. *)

val to_string : t -> string

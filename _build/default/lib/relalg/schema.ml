type attr = { rel : string option; name : string; ty : Value.ty }

type t = attr array

let attr ?rel name ty = { rel; name; ty }

let display_name a =
  match a.rel with None -> a.name | Some r -> r ^ "." ^ a.name

let make attrs =
  let arr = Array.of_list attrs in
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun a ->
      let key = display_name a in
      if Hashtbl.mem seen key then
        invalid_arg (Printf.sprintf "Schema.make: duplicate attribute %s" key);
      Hashtbl.add seen key ())
    arr;
  arr

let of_list pairs = make (List.map (fun (name, ty) -> attr name ty) pairs)

let attrs t = Array.to_list t
let arity = Array.length
let attr_at t i = t.(i)
let names t = Array.to_list (Array.map display_name t)

let split_qualified s =
  match String.index_opt s '.' with
  | None -> (None, s)
  | Some i -> (Some (String.sub s 0 i), String.sub s (i + 1) (String.length s - i - 1))

let find_opt t name =
  let qual, bare = split_qualified name in
  let matches a =
    String.equal a.name bare
    && (match qual with None -> true | Some q -> a.rel = Some q)
  in
  let hits = ref [] in
  Array.iteri (fun i a -> if matches a then hits := i :: !hits) t;
  match !hits with
  | [ i ] -> Some i
  | [] -> None
  | _ :: _ :: _ ->
    invalid_arg (Printf.sprintf "Schema.find: ambiguous attribute %s" name)

let find t name =
  match find_opt t name with Some i -> i | None -> raise Not_found

let mem t name = match find_opt t name with Some _ -> true | None -> false

let qualify rel t = Array.map (fun a -> { a with rel = Some rel }) t

let unqualify t = Array.map (fun a -> { a with rel = None }) t

let append a b = make (Array.to_list a @ Array.to_list b)

let project t names =
  let positions = Array.of_list (List.map (find t) names) in
  let sub = make (List.map (fun i -> t.(i)) (Array.to_list positions)) in
  (sub, positions)

let common_names a b =
  let names_of t =
    List.sort_uniq String.compare (Array.to_list (Array.map (fun x -> x.name) t))
  in
  List.filter (fun n -> List.exists (fun m -> String.equal n m) (names_of b)) (names_of a)

let equal_layout a b =
  arity a = arity b
  && Array.for_all2
       (fun x y -> String.equal x.name y.name && Value.ty_equal x.ty y.ty)
       a b

let pp fmt t =
  Format.fprintf fmt "(%s)"
    (String.concat ", "
       (Array.to_list
          (Array.map (fun a -> display_name a ^ ":" ^ Value.ty_name a.ty) t)))

let to_string t = Format.asprintf "%a" pp t

(** Relation schemas: ordered lists of (optionally qualified) typed
    attributes. *)

type attr = {
  rel : string option; (** qualifier, e.g. [Some "R1"] in [R1.Ajoin] *)
  name : string;
  ty : Value.ty;
}

type t

val attr : ?rel:string -> string -> Value.ty -> attr

val make : attr list -> t
(** Raises [Invalid_argument] when two attributes share the same qualified
    display name. *)

val of_list : (string * Value.ty) list -> t
val attrs : t -> attr list
val arity : t -> int
val attr_at : t -> int -> attr

val display_name : attr -> string
(** ["R.a"] or ["a"]. *)

val names : t -> string list

val find : t -> string -> int
(** Index of an attribute.  A bare name matches any qualifier if the match
    is unique; a qualified name ["R.a"] matches exactly.  Raises
    [Not_found] if absent and [Invalid_argument] if ambiguous. *)

val find_opt : t -> string -> int option
val mem : t -> string -> bool

val qualify : string -> t -> t
(** Sets the qualifier of every attribute. *)

val unqualify : t -> t

val append : t -> t -> t
(** Schema of a cross product; raises [Invalid_argument] on display-name
    clash. *)

val project : t -> string list -> t * int array
(** Sub-schema for the named attributes and their source positions. *)

val common_names : t -> t -> string list
(** Bare attribute names present in both (the natural-join attributes). *)

val equal_layout : t -> t -> bool
(** Same bare names and types in the same order (qualifiers ignored). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

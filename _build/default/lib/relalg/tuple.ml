type t = Value.t array

let of_list = Array.of_list
let of_array = Array.copy
let to_list = Array.to_list
let arity = Array.length
let get t i = t.(i)

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i = la then 0
      else begin
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
      end
    in
    go 0
  end

let equal a b = compare a b = 0

let hash t = Hashtbl.hash (Array.map Value.hash t)

let append a b = Array.append a b

let project positions t = Array.map (fun i -> t.(i)) positions

let matches_schema schema t =
  Schema.arity schema = Array.length t
  && Array.for_all
       (fun i -> Value.ty_equal (Schema.attr_at schema i).Schema.ty (Value.ty_of t.(i)))
       (Array.init (Array.length t) (fun i -> i))

let encode t =
  let buf = Buffer.create 32 in
  Buffer.add_string buf (Value.encode (Value.Int (Array.length t)));
  Array.iter (fun v -> Buffer.add_string buf (Value.encode v)) t;
  Buffer.contents buf

let decode s =
  let header, off = Value.decode s 0 in
  let n =
    match header with
    | Value.Int n when n >= 0 -> n
    | Value.Int _ | Value.Str _ | Value.Bool _ ->
      invalid_arg "Tuple.decode: bad arity header"
  in
  let off = ref off in
  let values =
    Array.init n (fun _ ->
        let v, next = Value.decode s !off in
        off := next;
        v)
  in
  if !off <> String.length s then invalid_arg "Tuple.decode: trailing bytes";
  values

let pp fmt t =
  Format.fprintf fmt "⟨%s⟩"
    (String.concat ", " (Array.to_list (Array.map Value.to_string t)))

(** Tuples: immutable value vectors matching a schema (the schema lives on
    the enclosing relation). *)

type t

val of_list : Value.t list -> t
val of_array : Value.t array -> t
val to_list : t -> Value.t list
val arity : t -> int
val get : t -> int -> Value.t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val append : t -> t -> t

val project : int array -> t -> t
(** Keep the values at the given source positions, in order. *)

val matches_schema : Schema.t -> t -> bool
(** Arity and per-position type agreement. *)

val encode : t -> string
(** Self-delimiting byte encoding (arity header + encoded values); this is
    the [t] that the paper's [etuple = encrypt(t)] serializes. *)

val decode : string -> t
(** Raises [Invalid_argument] on malformed or trailing input. *)

val pp : Format.formatter -> t -> unit

type ty = Tint | Tstring | Tbool

type t =
  | Int of int
  | Str of string
  | Bool of bool

let ty_of = function Int _ -> Tint | Str _ -> Tstring | Bool _ -> Tbool

let ty_name = function Tint -> "int" | Tstring -> "string" | Tbool -> "bool"

let ty_equal (a : ty) (b : ty) = a = b

let type_rank = function Int _ -> 0 | Str _ -> 1 | Bool _ -> 2

let compare a b =
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | Str x, Str y -> Stdlib.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | (Int _ | Str _ | Bool _), _ -> Stdlib.compare (type_rank a) (type_rank b)

let equal a b = compare a b = 0

let hash = function
  | Int x -> Hashtbl.hash (0, x)
  | Str s -> Hashtbl.hash (1, s)
  | Bool b -> Hashtbl.hash (2, b)

let to_string = function
  | Int x -> string_of_int x
  | Str s -> s
  | Bool b -> string_of_bool b

let pp fmt v =
  match v with
  | Str s -> Format.fprintf fmt "%S" s
  | Int _ | Bool _ -> Format.pp_print_string fmt (to_string v)

let parse ty s =
  match ty with
  | Tint ->
    (match int_of_string_opt (String.trim s) with
     | Some v -> Int v
     | None -> invalid_arg (Printf.sprintf "Value.parse: bad int %S" s))
  | Tbool ->
    (match String.lowercase_ascii (String.trim s) with
     | "true" | "1" | "yes" -> Bool true
     | "false" | "0" | "no" -> Bool false
     | _ -> invalid_arg (Printf.sprintf "Value.parse: bad bool %S" s))
  | Tstring -> Str s

(* Wire encoding: tag byte, then a fixed or length-prefixed body. *)

let be64 v = String.init 8 (fun i -> Char.chr ((v lsr ((7 - i) * 8)) land 0xff))

let read_be64 s off =
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

let encode = function
  | Int x -> "i" ^ be64 x
  | Str s -> "s" ^ be64 (String.length s) ^ s
  | Bool b -> if b then "bT" else "bF"

let decode s off =
  if off >= String.length s then invalid_arg "Value.decode: truncated input";
  match s.[off] with
  | 'i' ->
    if off + 9 > String.length s then invalid_arg "Value.decode: truncated int";
    (Int (read_be64 s (off + 1)), off + 9)
  | 's' ->
    if off + 9 > String.length s then invalid_arg "Value.decode: truncated string header";
    let len = read_be64 s (off + 1) in
    if off + 9 + len > String.length s then invalid_arg "Value.decode: truncated string";
    (Str (String.sub s (off + 9) len), off + 9 + len)
  | 'b' ->
    if off + 2 > String.length s then invalid_arg "Value.decode: truncated bool";
    (match s.[off + 1] with
     | 'T' -> (Bool true, off + 2)
     | 'F' -> (Bool false, off + 2)
     | _ -> invalid_arg "Value.decode: bad bool")
  | c -> invalid_arg (Printf.sprintf "Value.decode: bad tag %C" c)

(** Typed attribute values. *)

type ty = Tint | Tstring | Tbool

type t =
  | Int of int
  | Str of string
  | Bool of bool

val ty_of : t -> ty
val ty_name : ty -> string
val ty_equal : ty -> ty -> bool

val compare : t -> t -> int
(** Total order; values of different types order by type tag. *)

val equal : t -> t -> bool
val hash : t -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val parse : ty -> string -> t
(** Raises [Invalid_argument] on unparsable input (e.g. CSV import). *)

val encode : t -> string
(** Self-delimiting tagged byte encoding (used when tuples are serialized
    for encryption). *)

val decode : string -> int -> t * int
(** [decode s off] reads one value at [off], returning it and the next
    offset.  Raises [Invalid_argument] on malformed input. *)

lib/sql/algebra.ml: Aggregate Ast Format List Option Predicate Printf Relation Secmed_relalg String

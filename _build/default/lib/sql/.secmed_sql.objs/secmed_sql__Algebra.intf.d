lib/sql/algebra.mli: Aggregate Ast Format Predicate Relation Secmed_relalg

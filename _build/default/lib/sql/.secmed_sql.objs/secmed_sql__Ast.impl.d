lib/sql/ast.ml: Aggregate Format List Predicate Printf Secmed_relalg String Value

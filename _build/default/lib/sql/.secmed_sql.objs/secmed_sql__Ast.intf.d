lib/sql/ast.mli: Format Secmed_relalg

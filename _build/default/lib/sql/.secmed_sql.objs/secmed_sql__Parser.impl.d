lib/sql/parser.ml: Aggregate Array Ast Lexer List Predicate Printf Secmed_relalg Token

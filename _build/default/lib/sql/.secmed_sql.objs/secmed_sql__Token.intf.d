lib/sql/token.mli:

open Secmed_relalg

type t =
  | Scan of string
  | Rename of string * t
  | Select of Predicate.t * t
  | Project of string list * t
  | Distinct of t
  | Natural_join of t * t
  | Equi_join of (string * string) * t * t
  | Product of t * t
  | Group_by of string list * Aggregate.spec list * t

let term_of_operand = function
  | Ast.Col c -> Predicate.Attr (Ast.column_name c)
  | Ast.Lit l -> Predicate.Const (Ast.value_of_literal l)

let rec predicate_of_expr = function
  | Ast.E_bool true -> Predicate.True
  | Ast.E_bool false -> Predicate.False
  | Ast.E_cmp (op, a, b) -> Predicate.Cmp (op, term_of_operand a, term_of_operand b)
  | Ast.E_and (a, b) -> Predicate.And (predicate_of_expr a, predicate_of_expr b)
  | Ast.E_or (a, b) -> Predicate.Or (predicate_of_expr a, predicate_of_expr b)
  | Ast.E_not a -> Predicate.Not (predicate_of_expr a)
  | Ast.E_in (x, ls) ->
    Predicate.In (term_of_operand x, List.map Ast.value_of_literal ls)

let scan_of_ref (r : Ast.table_ref) =
  let name = match r.alias with Some a -> a | None -> r.table in
  Rename (name, Scan r.table)

let spec_of_item = function
  | Ast.S_aggregate { Ast.agg_func; agg_column; agg_alias } ->
    Some (Aggregate.spec ?alias:agg_alias agg_func (Option.map Ast.column_name agg_column))
  | Ast.S_column _ -> None

let of_query (q : Ast.query) =
  let base = scan_of_ref q.from in
  let joined =
    List.fold_left
      (fun acc (kind, table) ->
        let right = scan_of_ref table in
        match kind with
        | Ast.J_natural -> Natural_join (acc, right)
        | Ast.J_on (a, b) -> Equi_join ((Ast.column_name a, Ast.column_name b), acc, right))
      base q.joins
  in
  let filtered =
    match q.where with
    | None -> joined
    | Some w -> Select (predicate_of_expr w, joined)
  in
  let projected =
    if Ast.has_aggregates q || q.group_by <> [] then begin
      let keys = List.map Ast.column_name q.group_by in
      let items = Option.value ~default:[] q.select in
      (* Plain select columns must be grouping keys (standard SQL rule). *)
      List.iter
        (function
          | Ast.S_column c ->
            let name = Ast.column_name c in
            if not (List.exists (String.equal name) keys) then
              invalid_arg
                (Printf.sprintf "Algebra.of_query: column %s is neither aggregated nor grouped"
                   name)
          | Ast.S_aggregate _ -> ())
        items;
      let specs = List.filter_map spec_of_item items in
      let output_names =
        List.map
          (function
            | Ast.S_column c -> Ast.column_name c
            | Ast.S_aggregate a ->
              (Aggregate.spec ?alias:a.Ast.agg_alias a.Ast.agg_func
                 (Option.map Ast.column_name a.Ast.agg_column))
                .Aggregate.alias)
          items
      in
      Project (output_names, Group_by (keys, specs, filtered))
    end
    else begin
      match q.select with
      | None -> filtered
      | Some items ->
        let names =
          List.map
            (function
              | Ast.S_column c -> Ast.column_name c
              | Ast.S_aggregate _ -> assert false)
            items
        in
        Project (names, filtered)
    end
  in
  if q.distinct then Distinct projected else projected

let rec eval env = function
  | Scan name -> env name
  | Rename (rel, inner) -> Relation.rename rel (eval env inner)
  | Select (p, inner) -> Relation.select p (eval env inner)
  | Project (cols, inner) -> Relation.project cols (eval env inner)
  | Distinct inner -> Relation.distinct (eval env inner)
  | Natural_join (a, b) -> Relation.natural_join (eval env a) (eval env b)
  | Equi_join ((la, rb), a, b) -> Relation.equi_join ~left:la ~right:rb (eval env a) (eval env b)
  | Product (a, b) -> Relation.product (eval env a) (eval env b)
  | Group_by (keys, specs, inner) -> Aggregate.group_by (eval env inner) ~keys ~specs

let rec leaves = function
  | Scan name -> [ name ]
  | Rename (_, inner) | Select (_, inner) | Project (_, inner) | Distinct inner
  | Group_by (_, _, inner) ->
    leaves inner
  | Natural_join (a, b) | Equi_join (_, a, b) | Product (a, b) -> leaves a @ leaves b

let rec join_attributes = function
  | Scan _ -> []
  | Rename (_, inner) | Select (_, inner) | Project (_, inner) | Distinct inner
  | Group_by (_, _, inner) ->
    join_attributes inner
  | Natural_join (a, b) | Product (a, b) -> join_attributes a @ join_attributes b
  | Equi_join (pair, a, b) -> (pair :: join_attributes a) @ join_attributes b

let rec pp_node fmt indent node =
  let pad = String.make indent ' ' in
  match node with
  | Scan name -> Format.fprintf fmt "%sScan %s@." pad name
  | Rename (rel, inner) ->
    Format.fprintf fmt "%sRename %s@." pad rel;
    pp_node fmt (indent + 2) inner
  | Select (p, inner) ->
    Format.fprintf fmt "%sSelect %s@." pad (Predicate.to_string p);
    pp_node fmt (indent + 2) inner
  | Project (cols, inner) ->
    Format.fprintf fmt "%sProject [%s]@." pad (String.concat "; " cols);
    pp_node fmt (indent + 2) inner
  | Distinct inner ->
    Format.fprintf fmt "%sDistinct@." pad;
    pp_node fmt (indent + 2) inner
  | Natural_join (a, b) ->
    Format.fprintf fmt "%sNaturalJoin@." pad;
    pp_node fmt (indent + 2) a;
    pp_node fmt (indent + 2) b
  | Equi_join ((la, rb), a, b) ->
    Format.fprintf fmt "%sEquiJoin %s = %s@." pad la rb;
    pp_node fmt (indent + 2) a;
    pp_node fmt (indent + 2) b
  | Product (a, b) ->
    Format.fprintf fmt "%sProduct@." pad;
    pp_node fmt (indent + 2) a;
    pp_node fmt (indent + 2) b
  | Group_by (keys, specs, inner) ->
    Format.fprintf fmt "%sGroupBy [%s] aggregates [%s]@." pad (String.concat "; " keys)
      (String.concat "; "
         (List.map
            (fun s ->
              Printf.sprintf "%s(%s)" (Aggregate.func_name s.Aggregate.func)
                (Option.value ~default:"*" s.Aggregate.column))
            specs));
    pp_node fmt (indent + 2) inner

let pp fmt node = pp_node fmt 0 node

let to_string node = Format.asprintf "%a" pp node

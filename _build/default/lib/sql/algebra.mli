(** Relational algebra trees — the back half of "SQL2Algebra" ([4]): the
    mediator transforms the client's SQL into a tree with operators in the
    inner nodes and partial queries (scans) at the leaves. *)

open Secmed_relalg

type t =
  | Scan of string                          (** base relation (a partial query) *)
  | Rename of string * t                    (** qualify attributes *)
  | Select of Predicate.t * t
  | Project of string list * t
  | Distinct of t
  | Natural_join of t * t
  | Equi_join of (string * string) * t * t  (** left attr, right attr *)
  | Product of t * t
  | Group_by of string list * Aggregate.spec list * t
      (** grouping keys, aggregate specs *)

val of_query : Ast.query -> t
(** Compiles parsed SQL.  Each table reference becomes [Rename (alias,
    Scan table)], joins nest left-deep, WHERE becomes [Select], an explicit
    column list becomes [Project]. *)

val predicate_of_expr : Ast.expr -> Predicate.t

val eval : (string -> Relation.t) -> t -> Relation.t
(** Evaluates against an environment mapping base-relation names to
    relations (raises whatever the environment raises on unknown names). *)

val leaves : t -> string list
(** Base relation names, left to right. *)

val join_attributes : t -> (string * string) list
(** For each join node, the (left, right) attribute pair joined on;
    natural joins are reported via their common bare names at compile
    time is not possible here, so they appear as [(a, a)] pairs resolved
    during {!eval} — this accessor reports only explicit equi-joins. *)

val pp : Format.formatter -> t -> unit
(** Indented tree rendering (the paper's "algebra tree"). *)

val to_string : t -> string

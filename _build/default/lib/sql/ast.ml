open Secmed_relalg

type column = { qualifier : string option; name : string }

type literal =
  | L_int of int
  | L_str of string
  | L_bool of bool

type operand =
  | Col of column
  | Lit of literal

type expr =
  | E_cmp of Predicate.comparison * operand * operand
  | E_and of expr * expr
  | E_or of expr * expr
  | E_not of expr
  | E_in of operand * literal list
  | E_bool of bool

type agg_item = {
  agg_func : Aggregate.func;
  agg_column : column option;
  agg_alias : string option;
}

type select_item =
  | S_column of column
  | S_aggregate of agg_item

type table_ref = { table : string; alias : string option }

type join_kind =
  | J_natural
  | J_on of column * column

type query = {
  distinct : bool;
  select : select_item list option;
  from : table_ref;
  joins : (join_kind * table_ref) list;
  where : expr option;
  group_by : column list;
}

let has_aggregates q =
  match q.select with
  | None -> false
  | Some items ->
    List.exists (function S_aggregate _ -> true | S_column _ -> false) items

let column_name c =
  match c.qualifier with None -> c.name | Some q -> q ^ "." ^ c.name

let value_of_literal = function
  | L_int n -> Value.Int n
  | L_str s -> Value.Str s
  | L_bool b -> Value.Bool b

let literal_to_string = function
  | L_int n -> string_of_int n
  | L_str s -> "'" ^ s ^ "'"
  | L_bool b -> string_of_bool b

let operand_to_string = function
  | Col c -> column_name c
  | Lit l -> literal_to_string l

let cmp_to_string : Predicate.comparison -> string = function
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec expr_to_string = function
  | E_cmp (op, a, b) ->
    Printf.sprintf "%s %s %s" (operand_to_string a) (cmp_to_string op) (operand_to_string b)
  | E_and (a, b) -> Printf.sprintf "(%s AND %s)" (expr_to_string a) (expr_to_string b)
  | E_or (a, b) -> Printf.sprintf "(%s OR %s)" (expr_to_string a) (expr_to_string b)
  | E_not a -> Printf.sprintf "NOT %s" (expr_to_string a)
  | E_in (x, ls) ->
    Printf.sprintf "%s IN (%s)" (operand_to_string x)
      (String.concat ", " (List.map literal_to_string ls))
  | E_bool b -> string_of_bool b

let table_ref_to_string t =
  match t.alias with None -> t.table | Some a -> t.table ^ " AS " ^ a

let select_item_to_string = function
  | S_column c -> column_name c
  | S_aggregate { agg_func; agg_column; agg_alias } ->
    Printf.sprintf "%s(%s)%s"
      (String.uppercase_ascii (Aggregate.func_name agg_func))
      (match agg_column with None -> "*" | Some c -> column_name c)
      (match agg_alias with None -> "" | Some a -> " AS " ^ a)

let pp_query fmt q =
  let select =
    match q.select with
    | None -> "*"
    | Some items -> String.concat ", " (List.map select_item_to_string items)
  in
  Format.fprintf fmt "SELECT %s%s FROM %s"
    (if q.distinct then "DISTINCT " else "")
    select (table_ref_to_string q.from);
  List.iter
    (fun (kind, table) ->
      match kind with
      | J_natural -> Format.fprintf fmt " NATURAL JOIN %s" (table_ref_to_string table)
      | J_on (a, b) ->
        Format.fprintf fmt " JOIN %s ON %s = %s" (table_ref_to_string table)
          (column_name a) (column_name b))
    q.joins;
  (match q.where with
   | None -> ()
   | Some w -> Format.fprintf fmt " WHERE %s" (expr_to_string w));
  match q.group_by with
  | [] -> ()
  | keys ->
    Format.fprintf fmt " GROUP BY %s" (String.concat ", " (List.map column_name keys))

let query_to_string q = Format.asprintf "%a" pp_query q

(** Abstract syntax of the SQL subset (the front half of "SQL2Algebra"). *)

type column = { qualifier : string option; name : string }

type literal =
  | L_int of int
  | L_str of string
  | L_bool of bool

type operand =
  | Col of column
  | Lit of literal

type expr =
  | E_cmp of Secmed_relalg.Predicate.comparison * operand * operand
  | E_and of expr * expr
  | E_or of expr * expr
  | E_not of expr
  | E_in of operand * literal list
  | E_bool of bool

type agg_item = {
  agg_func : Secmed_relalg.Aggregate.func;
  agg_column : column option;  (** [None] only for a COUNT over all rows *)
  agg_alias : string option;
}

type select_item =
  | S_column of column
  | S_aggregate of agg_item

type table_ref = { table : string; alias : string option }

type join_kind =
  | J_natural
  | J_on of column * column

type query = {
  distinct : bool;
  select : select_item list option; (** [None] for [SELECT *] *)
  from : table_ref;
  joins : (join_kind * table_ref) list;
  where : expr option;
  group_by : column list;
}

val has_aggregates : query -> bool

val column_name : column -> string
(** ["q.name"] or ["name"]. *)

val value_of_literal : literal -> Secmed_relalg.Value.t
val pp_query : Format.formatter -> query -> unit
val query_to_string : query -> string

exception Error of string * int

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let len = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let rec go i =
    if i >= len then emit Token.Eof
    else begin
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '*' ->
        emit Token.Star;
        go (i + 1)
      | ',' ->
        emit Token.Comma;
        go (i + 1)
      | '.' ->
        emit Token.Dot;
        go (i + 1)
      | '(' ->
        emit Token.Lparen;
        go (i + 1)
      | ')' ->
        emit Token.Rparen;
        go (i + 1)
      | '=' ->
        emit (Token.Op "=");
        go (i + 1)
      | '<' ->
        if i + 1 < len && input.[i + 1] = '=' then begin
          emit (Token.Op "<=");
          go (i + 2)
        end
        else if i + 1 < len && input.[i + 1] = '>' then begin
          emit (Token.Op "<>");
          go (i + 2)
        end
        else begin
          emit (Token.Op "<");
          go (i + 1)
        end
      | '>' ->
        if i + 1 < len && input.[i + 1] = '=' then begin
          emit (Token.Op ">=");
          go (i + 2)
        end
        else begin
          emit (Token.Op ">");
          go (i + 1)
        end
      | '!' when i + 1 < len && input.[i + 1] = '=' ->
        emit (Token.Op "<>");
        go (i + 2)
      | '\'' -> string_lit (i + 1) (Buffer.create 8)
      | c when is_digit c || (c = '-' && i + 1 < len && is_digit input.[i + 1]) ->
        let j = ref (i + 1) in
        while !j < len && is_digit input.[!j] do
          incr j
        done;
        (match int_of_string_opt (String.sub input i (!j - i)) with
         | Some n -> emit (Token.Int_lit n)
         | None -> raise (Error ("integer literal out of range", i)));
        go !j
      | c when is_ident_start c ->
        let j = ref (i + 1) in
        while !j < len && is_ident_char input.[!j] do
          incr j
        done;
        let word = String.sub input i (!j - i) in
        let upper = String.uppercase_ascii word in
        if List.mem upper Token.keywords then emit (Token.Keyword upper)
        else emit (Token.Ident word);
        go !j
      | c -> raise (Error (Printf.sprintf "unexpected character %C" c, i))
    end
  and string_lit i buf =
    if i >= len then raise (Error ("unterminated string literal", i))
    else begin
      match input.[i] with
      | '\'' when i + 1 < len && input.[i + 1] = '\'' ->
        Buffer.add_char buf '\'';
        string_lit (i + 2) buf
      | '\'' ->
        emit (Token.Str_lit (Buffer.contents buf));
        go (i + 1)
      | c ->
        Buffer.add_char buf c;
        string_lit (i + 1) buf
    end
  in
  go 0;
  List.rev !tokens

(** Hand-written lexer for the SQL subset. *)

exception Error of string * int
(** Message and byte position. *)

val tokenize : string -> Token.t list
(** Ends with {!Token.Eof}.  Identifiers are case-preserved; keywords are
    recognized case-insensitively.  String literals use single quotes with
    [''] as the escape. *)

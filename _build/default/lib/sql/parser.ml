open Secmed_relalg

exception Error of string

type state = { tokens : Token.t array; mutable pos : int }

let peek st = st.tokens.(st.pos)

let advance st = st.pos <- st.pos + 1

let fail st expected =
  raise (Error (Printf.sprintf "expected %s but found %s" expected (Token.to_string (peek st))))

let expect st token =
  if Token.equal (peek st) token then advance st
  else fail st (Token.to_string token)

let keyword st k = Token.equal (peek st) (Token.Keyword k)

let eat_keyword st k = if keyword st k then (advance st; true) else false

let ident st =
  match peek st with
  | Token.Ident name ->
    advance st;
    name
  | _ -> fail st "an identifier"

let column st =
  let first = ident st in
  match peek st with
  | Token.Dot ->
    advance st;
    let name = ident st in
    { Ast.qualifier = Some first; name }
  | _ -> { Ast.qualifier = None; name = first }

let literal st =
  match peek st with
  | Token.Int_lit n ->
    advance st;
    Ast.L_int n
  | Token.Str_lit s ->
    advance st;
    Ast.L_str s
  | Token.Keyword "TRUE" ->
    advance st;
    Ast.L_bool true
  | Token.Keyword "FALSE" ->
    advance st;
    Ast.L_bool false
  | _ -> fail st "a literal"

let operand st =
  match peek st with
  | Token.Ident _ -> Ast.Col (column st)
  | _ -> Ast.Lit (literal st)

let comparison_of_op : string -> Predicate.comparison = function
  | "=" -> Eq
  | "<>" -> Ne
  | "<" -> Lt
  | "<=" -> Le
  | ">" -> Gt
  | ">=" -> Ge
  | op -> raise (Error (Printf.sprintf "unknown comparison operator %s" op))

(* Precedence: OR < AND < NOT < atom. *)
let rec expr st =
  let left = conjunction st in
  if eat_keyword st "OR" then Ast.E_or (left, expr st) else left

and conjunction st =
  let left = negation st in
  if eat_keyword st "AND" then Ast.E_and (left, conjunction st) else left

and negation st =
  if eat_keyword st "NOT" then Ast.E_not (negation st) else atom st

and atom st =
  match peek st with
  | Token.Lparen ->
    advance st;
    let inner = expr st in
    expect st Token.Rparen;
    inner
  | Token.Keyword "TRUE" ->
    advance st;
    Ast.E_bool true
  | Token.Keyword "FALSE" ->
    advance st;
    Ast.E_bool false
  | _ ->
    let left = operand st in
    (match peek st with
     | Token.Op op ->
       advance st;
       Ast.E_cmp (comparison_of_op op, left, operand st)
     | Token.Keyword "IN" ->
       advance st;
       expect st Token.Lparen;
       let rec items acc =
         let acc = literal st :: acc in
         match peek st with
         | Token.Comma ->
           advance st;
           items acc
         | _ -> List.rev acc
       in
       let ls = items [] in
       expect st Token.Rparen;
       Ast.E_in (left, ls)
     | _ -> fail st "a comparison operator or IN")

let table_ref st =
  let table = ident st in
  if eat_keyword st "AS" then { Ast.table; alias = Some (ident st) }
  else begin
    match peek st with
    | Token.Ident _ -> { Ast.table; alias = Some (ident st) }
    | _ -> { Ast.table; alias = None }
  end

let aggregate_func st =
  match peek st with
  | Token.Keyword "COUNT" -> Some Aggregate.Count
  | Token.Keyword "SUM" -> Some Aggregate.Sum
  | Token.Keyword "MIN" -> Some Aggregate.Min
  | Token.Keyword "MAX" -> Some Aggregate.Max
  | Token.Keyword "AVG" -> Some Aggregate.Avg
  | _ -> None

let select_item st =
  match aggregate_func st with
  | Some agg_func ->
    advance st;
    expect st Token.Lparen;
    let agg_column =
      match peek st with
      | Token.Star ->
        advance st;
        if agg_func <> Aggregate.Count then
          raise (Error "only COUNT may take * as its argument");
        None
      | _ -> Some (column st)
    in
    expect st Token.Rparen;
    let agg_alias = if eat_keyword st "AS" then Some (ident st) else None in
    Ast.S_aggregate { Ast.agg_func; agg_column; agg_alias }
  | None -> Ast.S_column (column st)

let select_list st =
  match peek st with
  | Token.Star ->
    advance st;
    None
  | _ ->
    let rec items acc =
      let acc = select_item st :: acc in
      match peek st with
      | Token.Comma ->
        advance st;
        items acc
      | _ -> List.rev acc
    in
    Some (items [])

let joins st =
  let rec go acc =
    if eat_keyword st "NATURAL" then begin
      expect st (Token.Keyword "JOIN");
      let table = table_ref st in
      go ((Ast.J_natural, table) :: acc)
    end
    else if eat_keyword st "JOIN" then begin
      let table = table_ref st in
      let kind =
        if eat_keyword st "ON" then begin
          let a = column st in
          expect st (Token.Op "=");
          let b = column st in
          Ast.J_on (a, b)
        end
        else Ast.J_natural
      in
      go ((kind, table) :: acc)
    end
    else List.rev acc
  in
  go []

let group_by_clause st =
  if eat_keyword st "GROUP" then begin
    expect st (Token.Keyword "BY");
    let rec keys acc =
      let acc = column st :: acc in
      match peek st with
      | Token.Comma ->
        advance st;
        keys acc
      | _ -> List.rev acc
    in
    keys []
  end
  else []

let parse input =
  let st = { tokens = Array.of_list (Lexer.tokenize input); pos = 0 } in
  expect st (Token.Keyword "SELECT");
  let distinct = eat_keyword st "DISTINCT" in
  let select = select_list st in
  expect st (Token.Keyword "FROM");
  let from = table_ref st in
  let joins = joins st in
  let where = if eat_keyword st "WHERE" then Some (expr st) else None in
  let group_by = group_by_clause st in
  expect st Token.Eof;
  { Ast.distinct; select; from; joins; where; group_by }

(** Recursive-descent parser for the SQL subset.

    Grammar (keywords case-insensitive):
    {v
    query   ::= SELECT [DISTINCT] (ʼ*ʼ | item {, item}) FROM tref
                { [NATURAL] JOIN tref [ON column = column] } [WHERE expr]
                [GROUP BY column {, column}]
    item    ::= column | func ( ʼ*ʼ | column ) [AS ident]
    func    ::= COUNT | SUM | MIN | MAX | AVG
    tref    ::= ident [AS ident | ident]
    column  ::= ident [. ident]
    expr    ::= disjunction of conjunctions of (NOT) atoms
    atom    ::= operand cmp operand | operand IN ( literal {, literal} )
              | TRUE | FALSE | ( expr )
    v} *)

exception Error of string

val parse : string -> Ast.query
(** Raises {!Error} (with a human-readable message) or {!Lexer.Error}. *)

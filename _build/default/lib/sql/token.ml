type t =
  | Ident of string
  | Int_lit of int
  | Str_lit of string
  | Keyword of string
  | Star
  | Comma
  | Dot
  | Lparen
  | Rparen
  | Op of string
  | Eof

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "JOIN"; "NATURAL"; "ON"; "AND"; "OR"; "NOT";
    "AS"; "IN"; "TRUE"; "FALSE"; "DISTINCT"; "GROUP"; "BY"; "COUNT"; "SUM";
    "MIN"; "MAX"; "AVG" ]

let equal (a : t) (b : t) = a = b

let to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int_lit n -> Printf.sprintf "integer %d" n
  | Str_lit s -> Printf.sprintf "string %S" s
  | Keyword k -> k
  | Star -> "*"
  | Comma -> ","
  | Dot -> "."
  | Lparen -> "("
  | Rparen -> ")"
  | Op o -> o
  | Eof -> "end of input"

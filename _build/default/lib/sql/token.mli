(** Lexical tokens of the SQL subset. *)

type t =
  | Ident of string
  | Int_lit of int
  | Str_lit of string
  | Keyword of string  (** upper-cased: SELECT, FROM, WHERE, JOIN, ... *)
  | Star
  | Comma
  | Dot
  | Lparen
  | Rparen
  | Op of string  (** =, <>, <, <=, >, >= *)
  | Eof

val keywords : string list
val equal : t -> t -> bool
val to_string : t -> string

test/test_bigint.ml: Alcotest Bigint List Printf QCheck2 QCheck_alcotest Secmed_bigint Secmed_crypto

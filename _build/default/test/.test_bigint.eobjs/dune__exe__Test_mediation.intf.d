test/test_mediation.mli:

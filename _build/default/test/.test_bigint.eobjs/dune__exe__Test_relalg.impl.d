test/test_relalg.ml: Aggregate Alcotest Array Csv List Predicate Printf QCheck2 QCheck_alcotest Relation Schema Secmed_crypto Secmed_relalg String Tuple Value

test/test_sql.ml: Alcotest Algebra Ast Format Lexer List Parser Relation Schema Secmed_relalg Secmed_sql String Token Tuple Value

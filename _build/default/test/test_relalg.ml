(* Tests for the relational algebra substrate. *)

open Secmed_relalg

let v_int n = Value.Int n
let v_str s = Value.Str s

(* ------------------------------------------------------------------ *)
(* Values. *)

let test_value_compare () =
  Alcotest.(check bool) "int order" true (Value.compare (v_int 1) (v_int 2) < 0);
  Alcotest.(check bool) "str order" true (Value.compare (v_str "a") (v_str "b") < 0);
  Alcotest.(check bool) "equal" true (Value.equal (Value.Bool true) (Value.Bool true));
  Alcotest.(check bool) "cross type stable" true
    (Value.compare (v_int 5) (v_str "5") <> 0)

let test_value_parse () =
  Alcotest.(check bool) "int" true (Value.equal (v_int (-42)) (Value.parse Value.Tint " -42 "));
  Alcotest.(check bool) "bool yes" true
    (Value.equal (Value.Bool true) (Value.parse Value.Tbool "Yes"));
  Alcotest.(check bool) "bool 0" true
    (Value.equal (Value.Bool false) (Value.parse Value.Tbool "0"));
  Alcotest.(check bool) "string verbatim" true
    (Value.equal (v_str " keep me ") (Value.parse Value.Tstring " keep me "));
  Alcotest.check_raises "bad int" (Invalid_argument "Value.parse: bad int \"zap\"") (fun () ->
      ignore (Value.parse Value.Tint "zap"))

let test_value_codec () =
  List.iter
    (fun v ->
      let decoded, next = Value.decode (Value.encode v) 0 in
      Alcotest.(check bool) (Value.to_string v) true (Value.equal v decoded);
      Alcotest.(check int) "consumed all" (String.length (Value.encode v)) next)
    [ v_int 0; v_int 1; v_int (-1); v_int max_int; v_int min_int; v_str ""; v_str "hello";
      v_str (String.make 1000 'x'); Value.Bool true; Value.Bool false ]

let test_value_decode_errors () =
  List.iter
    (fun blob ->
      match Value.decode blob 0 with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "should reject %S" blob)
    [ ""; "z"; "i123"; "s\x00\x00\x00\x00\x00\x00\x00\x05ab"; "bX" ]

(* ------------------------------------------------------------------ *)
(* Schemas. *)

let schema_r1 =
  Schema.make
    [ Schema.attr ~rel:"R1" "a" Value.Tint; Schema.attr ~rel:"R1" "b" Value.Tstring ]

let test_schema_find () =
  Alcotest.(check int) "bare" 0 (Schema.find schema_r1 "a");
  Alcotest.(check int) "qualified" 1 (Schema.find schema_r1 "R1.b");
  Alcotest.(check bool) "missing" true (Schema.find_opt schema_r1 "zzz" = None);
  Alcotest.(check bool) "wrong qualifier" true (Schema.find_opt schema_r1 "R2.a" = None)

let test_schema_ambiguous () =
  let s =
    Schema.make [ Schema.attr ~rel:"R1" "a" Value.Tint; Schema.attr ~rel:"R2" "a" Value.Tint ]
  in
  Alcotest.check_raises "ambiguous bare name"
    (Invalid_argument "Schema.find: ambiguous attribute a") (fun () ->
      ignore (Schema.find s "a"));
  Alcotest.(check int) "qualified disambiguates" 1 (Schema.find s "R2.a")

let test_schema_duplicate () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Schema.make: duplicate attribute a")
    (fun () -> ignore (Schema.of_list [ ("a", Value.Tint); ("a", Value.Tstring) ]))

let test_schema_qualify_append () =
  let s = Schema.of_list [ ("x", Value.Tint) ] in
  let q = Schema.qualify "T" s in
  Alcotest.(check (list string)) "qualified names" [ "T.x" ] (Schema.names q);
  let appended = Schema.append q (Schema.qualify "U" s) in
  Alcotest.(check (list string)) "append" [ "T.x"; "U.x" ] (Schema.names appended);
  Alcotest.(check (list string)) "common names" [ "x" ]
    (Schema.common_names q (Schema.qualify "U" s))

let test_schema_project () =
  let sub, positions = Schema.project schema_r1 [ "b"; "a" ] in
  Alcotest.(check (list string)) "names" [ "R1.b"; "R1.a" ] (Schema.names sub);
  Alcotest.(check (list int)) "positions" [ 1; 0 ] (Array.to_list positions)

(* ------------------------------------------------------------------ *)
(* Tuples. *)

let test_tuple_codec () =
  let t = Tuple.of_list [ v_int 42; v_str "x,y"; Value.Bool false ] in
  Alcotest.(check bool) "roundtrip" true (Tuple.equal t (Tuple.decode (Tuple.encode t)));
  Alcotest.(check bool) "empty tuple" true
    (Tuple.equal (Tuple.of_list []) (Tuple.decode (Tuple.encode (Tuple.of_list []))));
  Alcotest.check_raises "trailing bytes" (Invalid_argument "Tuple.decode: trailing bytes")
    (fun () -> ignore (Tuple.decode (Tuple.encode t ^ "x")))

let test_tuple_ops () =
  let t = Tuple.of_list [ v_int 1; v_int 2; v_int 3 ] in
  Alcotest.(check bool) "project" true
    (Tuple.equal (Tuple.of_list [ v_int 3; v_int 1 ]) (Tuple.project [| 2; 0 |] t));
  Alcotest.(check bool) "append" true
    (Tuple.equal
       (Tuple.of_list [ v_int 1; v_int 2; v_int 3; v_int 4 ])
       (Tuple.append t (Tuple.of_list [ v_int 4 ])));
  Alcotest.(check bool) "compare lexicographic" true
    (Tuple.compare (Tuple.of_list [ v_int 1; v_int 9 ]) (Tuple.of_list [ v_int 2; v_int 0 ]) < 0)

(* ------------------------------------------------------------------ *)
(* Predicates. *)

let people_schema =
  Schema.of_list [ ("name", Value.Tstring); ("age", Value.Tint); ("active", Value.Tbool) ]

let alice = Tuple.of_list [ v_str "alice"; v_int 30; Value.Bool true ]

let test_predicate_eval () =
  let open Predicate in
  let check name expected p =
    Alcotest.(check bool) name expected (eval people_schema alice p)
  in
  check "eq" true (eq_const "name" (v_str "alice"));
  check "ne" false (Cmp (Ne, Attr "age", Const (v_int 30)));
  check "lt" true (Cmp (Lt, Attr "age", Const (v_int 31)));
  check "ge" true (Cmp (Ge, Attr "age", Const (v_int 30)));
  check "and" true (And (eq_const "name" (v_str "alice"), Cmp (Gt, Attr "age", Const (v_int 20))));
  check "or short" true (Or (False, eq_const "active" (Value.Bool true)));
  check "not" false (Not True);
  check "in" true (In (Attr "age", [ v_int 10; v_int 30 ]));
  check "in miss" false (In (Attr "age", [ v_int 10; v_int 31 ]));
  check "attr vs attr" true (Cmp (Eq, Attr "name", Attr "name"))

let test_predicate_helpers () =
  let open Predicate in
  Alcotest.(check bool) "conj empty" true (eval people_schema alice (conj []));
  Alcotest.(check bool) "disj empty" false (eval people_schema alice (disj []));
  Alcotest.(check int) "size" 3
    (size (And (eq_const "a" (v_int 1), Or (eq_const "b" (v_int 2), eq_const "c" (v_int 3)))));
  Alcotest.(check (list string)) "attrs_used" [ "age"; "name" ]
    (attrs_used (And (eq_const "name" (v_str "x"), Cmp (Lt, Attr "age", Const (v_int 1)))))

let test_predicate_unknown_attr () =
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Predicate.eval people_schema alice (Predicate.eq_const "ghost" (v_int 1))))

(* ------------------------------------------------------------------ *)
(* Relations. *)

let r1 =
  Relation.of_rows
    (Schema.of_list [ ("a", Value.Tint); ("b", Value.Tstring) ])
    [ [ v_int 1; v_str "x" ]; [ v_int 2; v_str "y" ]; [ v_int 2; v_str "z" ]; [ v_int 3; v_str "w" ] ]

let r2 =
  Relation.of_rows
    (Schema.of_list [ ("a", Value.Tint); ("c", Value.Tint) ])
    [ [ v_int 2; v_int 20 ]; [ v_int 3; v_int 30 ]; [ v_int 3; v_int 31 ]; [ v_int 4; v_int 40 ] ]

let test_relation_make_typecheck () =
  Alcotest.check_raises "wrong type"
    (Invalid_argument
       "Relation.make: tuple ⟨x⟩ does not match schema (a:int)")
    (fun () ->
      ignore (Relation.of_rows (Schema.of_list [ ("a", Value.Tint) ]) [ [ v_str "x" ] ]))

let test_select_project () =
  let selected = Relation.select (Predicate.eq_const "a" (v_int 2)) r1 in
  Alcotest.(check int) "select" 2 (Relation.cardinality selected);
  let projected = Relation.project [ "b" ] r1 in
  Alcotest.(check (list string)) "project schema" [ "b" ] (Schema.names (Relation.schema projected));
  Alcotest.(check int) "project keeps bag" 4 (Relation.cardinality projected)

let test_active_domain () =
  Alcotest.(check int) "distinct" 3 (List.length (Relation.active_domain r1 "a"));
  Alcotest.(check int) "column with dups" 4 (List.length (Relation.column r1 "a"))

let test_natural_join () =
  let joined = Relation.natural_join r1 r2 in
  (* a=2: 2 left x 1 right = 2; a=3: 1 x 2 = 2. *)
  Alcotest.(check int) "cardinality" 4 (Relation.cardinality joined);
  Alcotest.(check (list string)) "schema" [ "a"; "b"; "c" ]
    (Schema.names (Relation.schema joined))

let test_nested_loop_matches_hash () =
  let a = Relation.natural_join r1 r2 in
  let b = Relation.nested_loop_join r1 r2 in
  Alcotest.(check bool) "same contents" true (Relation.equal_contents a b)

let test_join_no_common_is_product () =
  let left = Relation.of_rows (Schema.of_list [ ("x", Value.Tint) ]) [ [ v_int 1 ]; [ v_int 2 ] ] in
  let right = Relation.of_rows (Schema.of_list [ ("y", Value.Tint) ]) [ [ v_int 3 ] ] in
  Alcotest.(check int) "product" 2 (Relation.cardinality (Relation.natural_join left right))

let test_equi_join () =
  let left = Relation.rename "L" r1 and right = Relation.rename "R" r2 in
  let joined = Relation.equi_join ~left:"L.a" ~right:"R.a" left right in
  Alcotest.(check int) "cardinality" 4 (Relation.cardinality joined);
  Alcotest.(check int) "keeps both columns" 4 (Schema.arity (Relation.schema joined))

let test_union_diff_intersect () =
  let s = Schema.of_list [ ("n", Value.Tint) ] in
  let a = Relation.of_rows s [ [ v_int 1 ]; [ v_int 1 ]; [ v_int 2 ] ] in
  let bb = Relation.of_rows s [ [ v_int 1 ]; [ v_int 3 ] ] in
  Alcotest.(check int) "union bag" 5 (Relation.cardinality (Relation.union a bb));
  Alcotest.(check int) "diff bag" 2 (Relation.cardinality (Relation.diff a bb));
  Alcotest.(check int) "intersect bag" 1 (Relation.cardinality (Relation.intersect a bb));
  Alcotest.(check int) "distinct" 2 (Relation.cardinality (Relation.distinct a))

let test_equal_contents_order_insensitive () =
  let s = Schema.of_list [ ("n", Value.Tint) ] in
  let a = Relation.of_rows s [ [ v_int 1 ]; [ v_int 2 ] ] in
  let bb = Relation.of_rows s [ [ v_int 2 ]; [ v_int 1 ] ] in
  let c = Relation.of_rows s [ [ v_int 1 ]; [ v_int 1 ] ] in
  Alcotest.(check bool) "reordered equal" true (Relation.equal_contents a bb);
  Alcotest.(check bool) "bag sensitive" false (Relation.equal_contents a c)

let test_rename () =
  let renamed = Relation.rename "T" r1 in
  Alcotest.(check (list string)) "names" [ "T.a"; "T.b" ] (Schema.names (Relation.schema renamed))

(* ------------------------------------------------------------------ *)
(* Aggregation. *)

let sales =
  Relation.of_rows
    (Schema.of_list [ ("region", Value.Tstring); ("amount", Value.Tint) ])
    [ [ v_str "north"; v_int 10 ]; [ v_str "north"; v_int 30 ];
      [ v_str "south"; v_int 5 ]; [ v_str "north"; v_int 20 ];
      [ v_str "south"; v_int 7 ] ]

let test_aggregate_group_by () =
  let result =
    Aggregate.group_by sales ~keys:[ "region" ]
      ~specs:
        [ Aggregate.spec Aggregate.Count None;
          Aggregate.spec Aggregate.Sum (Some "amount");
          Aggregate.spec Aggregate.Min (Some "amount");
          Aggregate.spec Aggregate.Max (Some "amount");
          Aggregate.spec Aggregate.Avg (Some "amount") ]
  in
  Alcotest.(check (list string)) "schema"
    [ "region"; "count"; "sum_amount"; "min_amount"; "max_amount"; "avg_amount" ]
    (Schema.names (Relation.schema result));
  let rows =
    List.map (fun t -> List.map Value.to_string (Tuple.to_list t)) (Relation.tuples result)
  in
  Alcotest.(check (list (list string))) "groups"
    [ [ "north"; "3"; "60"; "10"; "30"; "20" ]; [ "south"; "2"; "12"; "5"; "7"; "6" ] ]
    rows

let test_aggregate_global () =
  let result =
    Aggregate.group_by sales ~keys:[]
      ~specs:[ Aggregate.spec Aggregate.Count None; Aggregate.spec Aggregate.Sum (Some "amount") ]
  in
  Alcotest.(check int) "one row" 1 (Relation.cardinality result);
  match Relation.tuples result with
  | [ t ] ->
    Alcotest.(check string) "count" "5" (Value.to_string (Tuple.get t 0));
    Alcotest.(check string) "sum" "72" (Value.to_string (Tuple.get t 1))
  | _ -> Alcotest.fail "expected one row"

let test_aggregate_empty () =
  let empty = Relation.empty (Relation.schema sales) in
  let counted =
    Aggregate.group_by empty ~keys:[] ~specs:[ Aggregate.spec Aggregate.Count None ]
  in
  (match Relation.tuples counted with
   | [ t ] -> Alcotest.(check string) "count 0" "0" (Value.to_string (Tuple.get t 0))
   | _ -> Alcotest.fail "one row");
  (match
     Aggregate.group_by empty ~keys:[] ~specs:[ Aggregate.spec Aggregate.Sum (Some "amount") ]
   with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "sum over empty must fail");
  (* Grouped aggregation of an empty relation is simply empty. *)
  let grouped =
    Aggregate.group_by empty ~keys:[ "region" ]
      ~specs:[ Aggregate.spec Aggregate.Sum (Some "amount") ]
  in
  Alcotest.(check int) "no groups" 0 (Relation.cardinality grouped)

let test_aggregate_errors () =
  (match Aggregate.spec Aggregate.Sum None with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "sum without column");
  match
    Aggregate.group_by sales ~keys:[] ~specs:[ Aggregate.spec Aggregate.Sum (Some "region") ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sum over strings must fail"

let test_aggregate_min_max_strings () =
  let result =
    Aggregate.group_by sales ~keys:[]
      ~specs:[ Aggregate.spec Aggregate.Min (Some "region");
               Aggregate.spec Aggregate.Max (Some "region") ]
  in
  match Relation.tuples result with
  | [ t ] ->
    Alcotest.(check string) "min" "north" (Value.to_string (Tuple.get t 0));
    Alcotest.(check string) "max" "south" (Value.to_string (Tuple.get t 1))
  | _ -> Alcotest.fail "one row"

(* ------------------------------------------------------------------ *)
(* Property tests: the hash join agrees with the nested-loop reference
   on random relations. *)

let random_relation rng ~attrs ~rows ~domain =
  let schema =
    Schema.of_list (List.init attrs (fun i -> (Printf.sprintf "c%d" i, Value.Tint)))
  in
  let tuples =
    List.init rows (fun _ ->
        Tuple.of_list (List.init attrs (fun _ -> v_int (Secmed_crypto.Prng.uniform_int rng domain))))
  in
  Relation.make schema tuples

let prop name ?(count = 100) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let join_prop =
  let rng = Secmed_crypto.Prng.of_int_seed 31 in
  prop "hash join = nested loop join"
    QCheck2.Gen.(triple (int_range 0 20) (int_range 0 20) (int_range 1 6))
    (fun (rows_a, rows_b, domain) ->
      (* Shared attribute c0 (the join key) + private attributes. *)
      let a =
        Relation.rename "A"
          (random_relation rng ~attrs:2 ~rows:rows_a ~domain)
      in
      let a = Relation.make
          (Schema.make [ Schema.attr "k" Value.Tint; Schema.attr ~rel:"A" "x" Value.Tint ])
          (Relation.tuples a)
      in
      let b =
        Relation.make
          (Schema.make [ Schema.attr "k" Value.Tint; Schema.attr ~rel:"B" "y" Value.Tint ])
          (Relation.tuples (random_relation rng ~attrs:2 ~rows:rows_b ~domain))
      in
      Relation.equal_contents (Relation.natural_join a b) (Relation.nested_loop_join a b))

let select_split_prop =
  let rng = Secmed_crypto.Prng.of_int_seed 77 in
  prop "select splits into complement parts"
    QCheck2.Gen.(pair (int_range 0 30) (int_range 1 5))
    (fun (rows, domain) ->
      let r = random_relation rng ~attrs:1 ~rows ~domain in
      let p = Predicate.Cmp (Predicate.Lt, Predicate.Attr "c0", Predicate.Const (v_int (domain / 2))) in
      let yes = Relation.select p r and no = Relation.select (Predicate.Not p) r in
      Relation.cardinality yes + Relation.cardinality no = Relation.cardinality r)

(* ------------------------------------------------------------------ *)
(* CSV. *)

let test_csv_roundtrip () =
  let schema = Schema.of_list [ ("id", Value.Tint); ("note", Value.Tstring) ] in
  let r =
    Relation.of_rows schema
      [ [ v_int 1; v_str "plain" ];
        [ v_int 2; v_str "with,comma" ];
        [ v_int 3; v_str "with \"quote\"" ];
        [ v_int 4; v_str "multi\nline" ] ]
  in
  let text = Csv.write_relation r in
  Alcotest.(check bool) "roundtrip" true
    (Relation.equal_contents r (Csv.read_relation schema text))

let test_csv_parse_rows () =
  Alcotest.(check (list (list string))) "basic"
    [ [ "a"; "b" ]; [ "1"; "2" ] ]
    (Csv.parse_rows "a,b\n1,2\n");
  Alcotest.(check (list (list string))) "quoted"
    [ [ "x,y"; "z\"q" ] ]
    (Csv.parse_rows "\"x,y\",\"z\"\"q\"\n");
  Alcotest.(check (list (list string))) "no trailing newline"
    [ [ "a" ] ] (Csv.parse_rows "a")

let test_csv_header_mismatch () =
  let schema = Schema.of_list [ ("id", Value.Tint) ] in
  match Csv.read_relation schema "wrong\n1\n" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "header mismatch must be rejected"

let () =
  Alcotest.run "relalg"
    [
      ( "value",
        [
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "parse" `Quick test_value_parse;
          Alcotest.test_case "codec" `Quick test_value_codec;
          Alcotest.test_case "decode errors" `Quick test_value_decode_errors;
        ] );
      ( "schema",
        [
          Alcotest.test_case "find" `Quick test_schema_find;
          Alcotest.test_case "ambiguous" `Quick test_schema_ambiguous;
          Alcotest.test_case "duplicate" `Quick test_schema_duplicate;
          Alcotest.test_case "qualify/append" `Quick test_schema_qualify_append;
          Alcotest.test_case "project" `Quick test_schema_project;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "codec" `Quick test_tuple_codec;
          Alcotest.test_case "ops" `Quick test_tuple_ops;
        ] );
      ( "predicate",
        [
          Alcotest.test_case "eval" `Quick test_predicate_eval;
          Alcotest.test_case "helpers" `Quick test_predicate_helpers;
          Alcotest.test_case "unknown attribute" `Quick test_predicate_unknown_attr;
        ] );
      ( "relation",
        [
          Alcotest.test_case "typecheck" `Quick test_relation_make_typecheck;
          Alcotest.test_case "select/project" `Quick test_select_project;
          Alcotest.test_case "active domain" `Quick test_active_domain;
          Alcotest.test_case "natural join" `Quick test_natural_join;
          Alcotest.test_case "nested loop = hash" `Quick test_nested_loop_matches_hash;
          Alcotest.test_case "join without common attrs" `Quick test_join_no_common_is_product;
          Alcotest.test_case "equi join" `Quick test_equi_join;
          Alcotest.test_case "union/diff/intersect" `Quick test_union_diff_intersect;
          Alcotest.test_case "equal_contents" `Quick test_equal_contents_order_insensitive;
          Alcotest.test_case "rename" `Quick test_rename;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "group by" `Quick test_aggregate_group_by;
          Alcotest.test_case "global" `Quick test_aggregate_global;
          Alcotest.test_case "empty input" `Quick test_aggregate_empty;
          Alcotest.test_case "errors" `Quick test_aggregate_errors;
          Alcotest.test_case "min/max strings" `Quick test_aggregate_min_max_strings;
        ] );
      ("properties", [ join_prop; select_split_prop ]);
      ( "csv",
        [
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "parse rows" `Quick test_csv_parse_rows;
          Alcotest.test_case "header mismatch" `Quick test_csv_header_mismatch;
        ] );
    ]

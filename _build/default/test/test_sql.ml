(* Tests for the SQL2Algebra substrate: lexer, parser, algebra trees. *)

open Secmed_relalg
open Secmed_sql

(* ------------------------------------------------------------------ *)
(* Lexer. *)

let token = Alcotest.testable (fun fmt t -> Format.pp_print_string fmt (Token.to_string t)) Token.equal

let test_lexer_basics () =
  Alcotest.(check (list token)) "select star"
    [ Token.Keyword "SELECT"; Token.Star; Token.Keyword "FROM"; Token.Ident "R1"; Token.Eof ]
    (Lexer.tokenize "select * from R1");
  Alcotest.(check (list token)) "mixed case keywords"
    [ Token.Keyword "SELECT"; Token.Ident "x"; Token.Eof ]
    (Lexer.tokenize "SeLeCt x")

let test_lexer_operators () =
  Alcotest.(check (list token)) "operators"
    [ Token.Op "="; Token.Op "<>"; Token.Op "<"; Token.Op "<="; Token.Op ">"; Token.Op ">=";
      Token.Op "<>"; Token.Eof ]
    (Lexer.tokenize "= <> < <= > >= !=")

let test_lexer_literals () =
  Alcotest.(check (list token)) "numbers and strings"
    [ Token.Int_lit 42; Token.Int_lit (-7); Token.Str_lit "it's"; Token.Eof ]
    (Lexer.tokenize "42 -7 'it''s'")

let test_lexer_qualified () =
  Alcotest.(check (list token)) "dots"
    [ Token.Ident "R1"; Token.Dot; Token.Ident "a"; Token.Eof ]
    (Lexer.tokenize "R1.a")

let test_lexer_errors () =
  (match Lexer.tokenize "a @ b" with
   | exception Lexer.Error (_, 2) -> ()
   | exception Lexer.Error (_, pos) -> Alcotest.failf "wrong position %d" pos
   | _ -> Alcotest.fail "must reject @");
  match Lexer.tokenize "'unterminated" with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "must reject unterminated string"

(* ------------------------------------------------------------------ *)
(* Parser. *)

let parse = Parser.parse

let test_parse_star_join () =
  let q = parse "select * from R1 natural join R2" in
  Alcotest.(check bool) "star" true (q.Ast.select = None);
  Alcotest.(check string) "from" "R1" q.Ast.from.Ast.table;
  (match q.Ast.joins with
   | [ (Ast.J_natural, t) ] -> Alcotest.(check string) "join table" "R2" t.Ast.table
   | _ -> Alcotest.fail "expected one natural join");
  Alcotest.(check bool) "no where" true (q.Ast.where = None)

let test_parse_join_on () =
  let q = parse "SELECT * FROM R1 JOIN R2 ON R1.a = R2.a" in
  match q.Ast.joins with
  | [ (Ast.J_on (a, b), _) ] ->
    Alcotest.(check string) "left" "R1.a" (Ast.column_name a);
    Alcotest.(check string) "right" "R2.a" (Ast.column_name b)
  | _ -> Alcotest.fail "expected ON join"

let test_parse_columns_where () =
  let q =
    parse
      "select distinct R1.a, b from R1 natural join R2 where R1.a > 5 and b = 'x' or not (c = 1)"
  in
  ignore q;
  let q2 = parse "select a from T1 natural join T2 where x = 1 and (y = 2 or z = 3)" in
  Alcotest.(check bool) "distinct flag" true (parse "select distinct a from T natural join U").Ast.distinct;
  (match q2.Ast.select with
   | Some [ Ast.S_column c ] -> Alcotest.(check string) "column" "a" (Ast.column_name c)
   | _ -> Alcotest.fail "one column");
  match q2.Ast.where with
  | Some (Ast.E_and (_, Ast.E_or _)) -> ()
  | _ -> Alcotest.fail "precedence: AND over OR with parens"

let test_parse_in_list () =
  let q = parse "select * from A natural join B where x in (1, 2, 3)" in
  match q.Ast.where with
  | Some (Ast.E_in (Ast.Col c, [ Ast.L_int 1; Ast.L_int 2; Ast.L_int 3 ])) ->
    Alcotest.(check string) "column" "x" (Ast.column_name c)
  | _ -> Alcotest.fail "IN list"

let test_parse_errors () =
  List.iter
    (fun q ->
      match parse q with
      | exception Parser.Error _ -> ()
      | exception Lexer.Error _ -> ()
      | _ -> Alcotest.failf "should reject %S" q)
    [ ""; "select"; "select * from"; "select * from R1 join"; "select from R1";
      "select * from R1 where"; "select * from R1 where x =";
      (* "extra" would parse as an implicit alias; a second trailing word
         cannot. *)
      "select * from R1 alias extra" ]

let test_parse_roundtrip_pp () =
  let q = parse "select a, R2.b from R1 natural join R2 where a = 1" in
  let rendered = Ast.query_to_string q in
  (* Re-parsing the rendering yields the same AST. *)
  Alcotest.(check string) "pp stable" rendered (Ast.query_to_string (parse rendered))

(* ------------------------------------------------------------------ *)
(* Algebra compilation and evaluation. *)

let db =
  let r1 =
    Relation.of_rows
      (Schema.of_list [ ("a", Value.Tint); ("b", Value.Tstring) ])
      [ [ Value.Int 1; Value.Str "x" ]; [ Value.Int 2; Value.Str "y" ]; [ Value.Int 3; Value.Str "z" ] ]
  in
  let r2 =
    Relation.of_rows
      (Schema.of_list [ ("a", Value.Tint); ("c", Value.Tint) ])
      [ [ Value.Int 2; Value.Int 20 ]; [ Value.Int 3; Value.Int 30 ]; [ Value.Int 3; Value.Int 31 ] ]
  in
  function
  | "R1" -> r1
  | "R2" -> r2
  | name -> failwith ("unknown relation " ^ name)

let eval_sql q = Algebra.eval db (Algebra.of_query (parse q))

let test_eval_join () =
  let result = eval_sql "select * from R1 natural join R2" in
  Alcotest.(check int) "join size" 3 (Relation.cardinality result);
  Alcotest.(check (list string)) "schema" [ "R1.a"; "R1.b"; "R2.c" ]
    (Schema.names (Relation.schema result))

let test_eval_where () =
  let result = eval_sql "select * from R1 natural join R2 where c > 25" in
  Alcotest.(check int) "filtered" 2 (Relation.cardinality result)

let test_eval_projection () =
  let result = eval_sql "select b from R1 natural join R2" in
  Alcotest.(check (list string)) "projected schema" [ "R1.b" ]
    (Schema.names (Relation.schema result));
  Alcotest.(check int) "bag size" 3 (Relation.cardinality result);
  let d = eval_sql "select distinct b from R1 natural join R2" in
  Alcotest.(check int) "distinct" 2 (Relation.cardinality d)

let test_eval_join_on () =
  let result = eval_sql "select * from R1 join R2 on R1.a = R2.a" in
  Alcotest.(check int) "equi join keeps both sides" 3 (Relation.cardinality result);
  Alcotest.(check int) "arity" 4 (Schema.arity (Relation.schema result))

let test_eval_plain_scan () =
  let result = eval_sql "select * from R1" in
  Alcotest.(check int) "scan" 3 (Relation.cardinality result)

let test_leaves_and_joins () =
  let tree = Algebra.of_query (parse "select * from R1 join R2 on R1.a = R2.a where c = 1") in
  Alcotest.(check (list string)) "leaves" [ "R1"; "R2" ] (Algebra.leaves tree);
  Alcotest.(check (list (pair string string))) "join attrs" [ ("R1.a", "R2.a") ]
    (Algebra.join_attributes tree)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_parse_aggregates () =
  let q = parse "select a, count(*), sum(c) as total from R1 natural join R2 group by a" in
  Alcotest.(check bool) "has aggregates" true (Ast.has_aggregates q);
  (match q.Ast.select with
   | Some [ Ast.S_column _; Ast.S_aggregate c; Ast.S_aggregate s ] ->
     Alcotest.(check bool) "count star" true (c.Ast.agg_column = None);
     Alcotest.(check (option string)) "alias" (Some "total") s.Ast.agg_alias
   | _ -> Alcotest.fail "expected three select items");
  Alcotest.(check int) "group by" 1 (List.length q.Ast.group_by);
  (* SUM over star is rejected. *)
  match parse "select sum(*) from R1 natural join R2" with
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.fail "SUM(*) must be rejected"

let test_eval_aggregates () =
  let result = eval_sql "select a, sum(c) as total from R1 natural join R2 group by a" in
  (* The key keeps its qualifier from the joined schema. *)
  Alcotest.(check (list string)) "schema" [ "R1.a"; "total" ]
    (Schema.names (Relation.schema result));
  let rows =
    List.map (fun t -> List.map Value.to_string (Tuple.to_list t)) (Relation.tuples result)
  in
  Alcotest.(check (list (list string))) "groups" [ [ "2"; "20" ]; [ "3"; "61" ] ] rows;
  let scalar = eval_sql "select count(*) from R1 natural join R2" in
  (match Relation.tuples scalar with
   | [ t ] -> Alcotest.(check string) "count" "3" (Value.to_string (Tuple.get t 0))
   | _ -> Alcotest.fail "one row");
  (* Plain column outside GROUP BY is rejected at compile time. *)
  match Algebra.of_query (parse "select b, sum(c) from R1 natural join R2 group by a") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ungrouped column must be rejected"

let test_algebra_pp () =
  let tree = Algebra.of_query (parse "select a from R1 natural join R2 where a = 1") in
  let rendered = Algebra.to_string tree in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains rendered needle))
    [ "Project"; "Select"; "NaturalJoin"; "Scan R1"; "Scan R2" ]

let () =
  Alcotest.run "sql"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "literals" `Quick test_lexer_literals;
          Alcotest.test_case "qualified names" `Quick test_lexer_qualified;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "star + natural join" `Quick test_parse_star_join;
          Alcotest.test_case "join on" `Quick test_parse_join_on;
          Alcotest.test_case "columns/where/distinct" `Quick test_parse_columns_where;
          Alcotest.test_case "in list" `Quick test_parse_in_list;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "pp roundtrip" `Quick test_parse_roundtrip_pp;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "natural join" `Quick test_eval_join;
          Alcotest.test_case "where" `Quick test_eval_where;
          Alcotest.test_case "projection/distinct" `Quick test_eval_projection;
          Alcotest.test_case "join on" `Quick test_eval_join_on;
          Alcotest.test_case "plain scan" `Quick test_eval_plain_scan;
          Alcotest.test_case "leaves/join attrs" `Quick test_leaves_and_joins;
          Alcotest.test_case "parse aggregates" `Quick test_parse_aggregates;
          Alcotest.test_case "eval aggregates" `Quick test_eval_aggregates;
          Alcotest.test_case "pretty printing" `Quick test_algebra_pp;
        ] );
    ]

(* Ablation benchmarks for the design choices called out in DESIGN.md
   (A1–A4) plus a Bechamel microbenchmark suite for the cryptographic
   primitives. *)

open Bechamel
open Secmed_bigint
open Secmed_crypto
open Secmed_relalg
open Secmed_core

(* ------------------------------------------------------------------ *)
(* A1 — PM payload encodings: direct vs session keys (footnote 2). *)

let pm_payload () =
  Bench_util.heading
    "A1 — PM payload encoding: direct packing vs session-key/ID-table (footnote 2)";
  (* Direct packing needs the tuple set to fit the Paillier plaintext, so
     this ablation uses a 1024-bit key and sweeps rows per join value. *)
  let params = { Env.group_bits = 256; paillier_bits = 1024 } in
  let rows =
    List.filter_map
      (fun rows_per_value ->
        let spec =
          {
            Workload.default with
            rows_left = 6 * rows_per_value;
            rows_right = 6 * rows_per_value;
            distinct_left = 6;
            distinct_right = 6;
            overlap = 3;
            extra_attrs = 0;
            seed = 2007;
          }
        in
        let env, client, query = Workload.scenario ~params spec in
        let run variant = Protocol.run_exn (Protocol.Private_matching variant) env client ~query in
        let session = run Pm_join.Session_keys in
        let direct =
          try
            let o = run Pm_join.Direct_payload in
            Some o
          with Invalid_argument _ -> None
        in
        let bytes o = Secmed_mediation.Transcript.total_bytes o.Outcome.transcript in
        Some
          [
            string_of_int rows_per_value;
            (match direct with
             | Some o -> Printf.sprintf "%s (%s)" (Bench_util.fmt_bytes (bytes o))
                           (if Outcome.correct o then "ok" else "WRONG")
             | None -> "exceeds plaintext capacity");
            Printf.sprintf "%s (%s)" (Bench_util.fmt_bytes (bytes session))
              (if Outcome.correct session then "ok" else "WRONG");
          ])
      [ 1; 2; 4; 8 ]
  in
  Bench_util.print_table
    ~headers:[ "rows per join value"; "direct payload"; "session keys" ]
    rows;
  print_endline "The direct encoding hits the Paillier plaintext ceiling as tuple sets grow;";
  print_endline "the session-key variant scales (the paper's motivation for footnote 2)."

(* ------------------------------------------------------------------ *)
(* A2 — mediator server-query evaluation: pair-index vs nested loop. *)

let das_server_eval ~sizes () =
  Bench_util.heading "A2 — DAS mediator evaluation: pair-index join vs literal sigma-over-product";
  let rows =
    List.map
      (fun size ->
        let spec = Experiments.spec_for_domain size in
        let env, client, query = Workload.scenario ~params:Experiments.bench_params spec in
        let mediator_time eval =
          let o = Protocol.run_exn (Protocol.Das (Das_partition.Equi_depth 4, eval)) env client ~query in
          Option.value ~default:0.0 (List.assoc_opt "mediator-server-query" o.Outcome.timings)
        in
        [
          string_of_int size;
          Bench_util.fmt_ms (mediator_time Das.Pair_index);
          Bench_util.fmt_ms (mediator_time Das.Nested_loop);
        ])
      sizes
  in
  Bench_util.print_table
    ~headers:[ "|domactive|"; "pair-index (ms)"; "nested-loop (ms)" ]
    rows

(* ------------------------------------------------------------------ *)
(* A3 — encrypted polynomial evaluation: Horner vs naive powers. *)

let horner ~degrees () =
  Bench_util.heading "A3 — homomorphic polynomial evaluation: Horner vs term-by-term";
  let prng = Prng.of_int_seed 1 in
  let sk = Paillier.keygen prng ~bits:512 in
  let pk = Paillier.public sk in
  let point = Pm_join.root_of_value (Value.Int 42) in
  let rows =
    List.map
      (fun degree ->
        let roots =
          List.init degree (fun i -> Pm_join.root_of_value (Value.Int i))
        in
        let poly = Pm_poly.from_roots ~modulus:pk.Paillier.n roots in
        let coeffs = Pm_poly.encrypt prng pk poly in
        let t_horner =
          Bench_util.time_median ~runs:3 (fun () -> Pm_poly.eval_encrypted pk coeffs point)
        in
        let t_naive =
          Bench_util.time_median ~runs:3 (fun () ->
              Pm_poly.eval_encrypted_naive prng pk coeffs point)
        in
        [ string_of_int degree; Bench_util.fmt_ms t_horner; Bench_util.fmt_ms t_naive;
          Printf.sprintf "%.2fx" (t_naive /. Float.max 1e-9 t_horner) ])
      degrees
  in
  Bench_util.print_table
    ~headers:[ "degree"; "Horner (ms)"; "naive (ms)"; "naive/Horner" ]
    rows

(* ------------------------------------------------------------------ *)
(* A4 — Karatsuba threshold in the bigint substrate. *)

(* Calibration: at which operand width (in 31-bit limbs) does one
   Karatsuba split start beating plain schoolbook?  For each width the
   "split" configuration sets the threshold to exactly that width, so the
   top level splits once and the halves run schoolbook — isolating the
   crossover the recursive threshold should sit at. *)
type kara_sample = { ks_limbs : int; ks_school : float; ks_split : float }

let kara_limb_sizes = [ 8; 12; 16; 20; 24; 28; 32; 40; 48; 64; 96 ]
let kara_thresholds = [ 8; 12; 16; 20; 24; 28; 32; 40; 48; 64; 1_000_000 ]

let measure_karatsuba ?(rounds = 5) ?(min_time = 0.02) () =
  let prng = Prng.of_int_seed 11 in
  let src = Prng.byte_source prng in
  (* Operands with a non-zero top limb, so the magnitude is exactly
     [limbs] limbs wide. *)
  let full_width bits =
    let rec gen () =
      let x = Bigint.random_bits src bits in
      if Bigint.numbits x > bits - 31 then x else gen ()
    in
    gen ()
  in
  let saved = !Bigint.karatsuba_threshold in
  let timed threshold x y =
    Bench_util.best_time ~rounds ~min_time (fun () ->
        Bigint.karatsuba_threshold := threshold;
        Bigint.mul x y)
  in
  let sweep =
    List.map
      (fun limbs ->
        let bits = limbs * 31 in
        let x = full_width bits and y = full_width bits in
        {
          ks_limbs = limbs;
          ks_school = timed 1_000_000 x y;
          ks_split = timed limbs x y;
        })
      kara_limb_sizes
  in
  (* Crossover: smallest width where the split wins. *)
  let crossover =
    match List.find_opt (fun s -> s.ks_split < s.ks_school) sweep with
    | Some s -> s.ks_limbs
    | None -> saved
  in
  (* Full recursion: best threshold over 2048-bit operands. *)
  let x = full_width 2048 and y = full_width 2048 in
  let recursive =
    List.map (fun t -> (t, timed t x y)) kara_thresholds
  in
  let best_threshold, _ =
    List.fold_left
      (fun (bt, bv) (t, v) -> if v < bv then (t, v) else (bt, bv))
      (saved, infinity) recursive
  in
  Bigint.karatsuba_threshold := saved;
  (sweep, crossover, recursive, best_threshold)

let karatsuba () =
  Bench_util.heading "A4 — bigint multiplication: Karatsuba threshold calibration";
  let sweep, crossover, recursive, best_threshold = measure_karatsuba () in
  let fmt_us t = Printf.sprintf "%.2f" (t *. 1e6) in
  Bench_util.subheading "single split vs schoolbook, by operand width";
  Bench_util.print_table
    ~headers:[ "limbs"; "bits"; "schoolbook (µs)"; "one split (µs)"; "split wins" ]
    (List.map
       (fun s ->
         [ string_of_int s.ks_limbs; string_of_int (s.ks_limbs * 31);
           fmt_us s.ks_school; fmt_us s.ks_split;
           string_of_bool (s.ks_split < s.ks_school) ])
       sweep);
  Printf.printf "measured crossover: %d limbs (current default threshold: %d)\n"
    crossover !Bigint.karatsuba_threshold;
  Bench_util.subheading "full recursion at 2048-bit operands, by threshold";
  Bench_util.print_table
    ~headers:[ "threshold"; "2048-bit multiply (µs)" ]
    (List.map (fun (t, v) -> [ string_of_int t; fmt_us v ]) recursive);
  Printf.printf "best recursive threshold at 2048 bits: %d\n" best_threshold;
  print_endline "threshold=1000000 disables Karatsuba (pure schoolbook)."

(* ------------------------------------------------------------------ *)
(* A5 — modular exponentiation: plain division vs per-call Montgomery
   setup (the pre-context behaviour) vs cached context vs fixed-base
   window tables, plus the end-to-end effect on a full PM run. *)

(* One measurement row: median seconds per exponentiation for each of
   the four configurations at the given modulus width.  Shared with the
   JSON trajectory emitter so the table and the file never diverge. *)
type modexp_sample = {
  ms_bits : int;
  ms_exp_bits : int;
  t_plain : float;
  t_per_call : float;
  t_cached : float;
  t_fixed_base : float;
}

let measure_modexp ?(rounds = 7) ?exp_bits bits =
  let exp_bits = Option.value ~default:bits exp_bits in
  let prng = Prng.of_int_seed (5 + bits + exp_bits) in
  let src = Prng.byte_source prng in
  let m = Bigint.random_bits src bits in
  let m = if Bigint.is_even m then Bigint.succ m else m in
  let b = Bigint.emod (Bigint.random_bits src bits) m in
  (* Insist on a full-width exponent so every configuration runs its
     Montgomery path (mod_pow falls back to plain below 17 bits). *)
  let rec gen_exp () =
    let e = Bigint.random_bits src exp_bits in
    if Bigint.numbits e = exp_bits then e else gen_exp ()
  in
  let e = gen_exp () in
  let ctx = Bigint.Ctx.create m in
  let fb = Bigint.Fixed_base.create ~base:b ~modulus:m ~bits:exp_bits in
  let plain () =
    Bigint.use_montgomery := false;
    let r = Bigint.mod_pow b e m in
    Bigint.use_montgomery := true;
    r
  in
  (* Per-call rebuilds the Montgomery context on every exponentiation:
     exactly what every call paid before the transparent cache. *)
  let per_call () = Bigint.Ctx.mod_pow (Bigint.Ctx.create m) b e in
  let cached () = Bigint.Ctx.mod_pow ctx b e in
  let fixed () = Bigint.Fixed_base.pow fb e in
  (* Batch repetitions so each sample is well above timer resolution,
     interleave the configurations across rounds (cancels clock and GC
     drift), and keep the best round per configuration. *)
  let reps = Stdlib.max 1 (32768 / (bits + exp_bits)) in
  let sample f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let best = Array.make 4 infinity in
  let thunks = [| plain; per_call; cached; fixed |] in
  for _ = 1 to rounds do
    Array.iteri (fun i f -> best.(i) <- Float.min best.(i) (sample f)) thunks
  done;
  {
    ms_bits = bits;
    ms_exp_bits = exp_bits;
    t_plain = best.(0);
    t_per_call = best.(1);
    t_cached = best.(2);
    t_fixed_base = best.(3);
  }

(* The two exponent regimes worth reporting: full-width exponents (the
   protocols' common case, where the context setup amortizes to <0.1% of
   the call) and short RSA-style exponents (e around 2^16) over large
   moduli, where per-call context setup is a measurable fraction and the
   cache's win shows up directly. *)
let modexp_workloads =
  List.map (fun bits -> (bits, None)) [ 256; 512; 1024 ]
  @ List.map (fun bits -> (bits, Some 17)) [ 1024; 2048 ]

(* ------------------------------------------------------------------ *)
(* PR 6 hot-path rows: CRT Paillier decryption, simultaneous 2-base
   exponentiation, and the domain-parallel batch-encryption executor.
   Shared by the A5 text ablation and the BENCH_modexp.json emitter. *)

type crt_sample = { crt_bits : int; t_plain_dec : float; t_crt_dec : float }

let measure_crt ?(rounds = 5) ?(min_time = 0.02) bits =
  let prng = Prng.of_int_seed (100 + bits) in
  let sk = Paillier.keygen prng ~bits in
  let pk = Paillier.public sk in
  let ct = Paillier.encrypt prng pk (Bigint.of_int 0x5ec4ed) in
  {
    crt_bits = bits;
    t_plain_dec =
      Bench_util.best_time ~rounds ~min_time (fun () -> Paillier.decrypt_plain sk ct);
    t_crt_dec = Bench_util.best_time ~rounds ~min_time (fun () -> Paillier.decrypt sk ct);
  }

type multi_exp_sample = { me_bits : int; t_separate : float; t_joint : float }

let measure_multi_exp ?(rounds = 5) ?(min_time = 0.02) bits =
  let prng = Prng.of_int_seed (200 + bits) in
  let src = Prng.byte_source prng in
  let m = Bigint.random_bits src bits in
  let m = if Bigint.is_even m then Bigint.succ m else m in
  let b1 = Bigint.emod (Bigint.random_bits src bits) m in
  let b2 = Bigint.emod (Bigint.random_bits src bits) m in
  let e1 = Bigint.random_bits src bits in
  let e2 = Bigint.random_bits src bits in
  let ctx = Bigint.Ctx.create m in
  {
    me_bits = bits;
    t_separate =
      Bench_util.best_time ~rounds ~min_time (fun () ->
          Bigint.Ctx.mod_mul ctx (Bigint.Ctx.mod_pow ctx b1 e1)
            (Bigint.Ctx.mod_pow ctx b2 e2));
    t_joint =
      Bench_util.best_time ~rounds ~min_time (fun () ->
          Bigint.Multi_exp.pow2 ctx (b1, e1) (b2, e2));
  }

(* Source-side batch encryption: tuples/sec of per-tuple hybrid
   encryption through the Batch executor at each domain count. *)
type batch_sample = { bs_domains : int; bs_tuples_per_sec : float }

let batch_tuples = 48
let batch_payload_bytes = 256

let measure_batch ?(rounds = 3) ~domain_counts () =
  let group = Group.default ~bits:256 in
  let kp = Elgamal.keygen (Prng.create ~seed:"bench-batch-key") group in
  let pk = Elgamal.public kp in
  let prng = Prng.create ~seed:"bench-batch" in
  let payloads =
    Array.init batch_tuples (fun i ->
        String.make batch_payload_bytes (Char.chr (33 + (i mod 90))))
  in
  List.map
    (fun domains ->
      let t =
        Bench_util.best_time ~rounds ~min_time:0.0 (fun () ->
            Batch.map_seeded ~domains ~prng ~label:"bench"
              (fun _ prng p -> Hybrid.encrypt prng pk p)
              payloads)
      in
      { bs_domains = domains; bs_tuples_per_sec = float_of_int batch_tuples /. Float.max 1e-9 t })
    domain_counts

let hot_path_tables ?(rounds = 5) () =
  let fmt_ms t = Printf.sprintf "%.3f" (t *. 1000.0) in
  let crt = List.map (measure_crt ~rounds) [ 512; 1024 ] in
  Bench_util.subheading "CRT Paillier decryption (client's n+m PM decryptions)";
  Bench_util.print_table
    ~headers:[ "key bits"; "decrypt_plain (ms)"; "decrypt CRT (ms)"; "speedup" ]
    (List.map
       (fun s ->
         [ string_of_int s.crt_bits; fmt_ms s.t_plain_dec; fmt_ms s.t_crt_dec;
           Printf.sprintf "%.2fx" (s.t_plain_dec /. Float.max 1e-9 s.t_crt_dec) ])
       crt);
  let me = List.map (measure_multi_exp ~rounds) [ 256; 512; 1024 ] in
  Bench_util.subheading "simultaneous 2-base exponentiation (Shamir) vs two mod_pows";
  Bench_util.print_table
    ~headers:[ "modulus bits"; "two mod_pows (ms)"; "joint pow2 (ms)"; "speedup" ]
    (List.map
       (fun s ->
         [ string_of_int s.me_bits; fmt_ms s.t_separate; fmt_ms s.t_joint;
           Printf.sprintf "%.2fx" (s.t_separate /. Float.max 1e-9 s.t_joint) ])
       me);
  let batch = measure_batch ~domain_counts:[ 1; 2; 4 ] () in
  let base =
    match batch with s :: _ -> s.bs_tuples_per_sec | [] -> 1.0
  in
  Bench_util.subheading
    (Printf.sprintf
       "domain-parallel source encryption (%d tuples x %d B, recommended domains on this \
        machine: %d)"
       batch_tuples batch_payload_bytes (Batch.recommended_domains ()));
  Bench_util.print_table
    ~headers:[ "domains"; "tuples/sec"; "speedup vs 1" ]
    (List.map
       (fun s ->
         [ string_of_int s.bs_domains;
           Printf.sprintf "%.1f" s.bs_tuples_per_sec;
           Printf.sprintf "%.2fx" (s.bs_tuples_per_sec /. Float.max 1e-9 base) ])
       batch);
  (crt, me, batch)

let montgomery () =
  Bench_util.heading
    "A5 — modular exponentiation: plain vs per-call Montgomery vs cached context vs \
     fixed-base windows";
  let samples =
    List.map (fun (bits, exp_bits) -> measure_modexp ?exp_bits bits) modexp_workloads
  in
  let fmt t = Printf.sprintf "%.3f" (t *. 1000.0) in
  let rows =
    List.map
      (fun s ->
        [ string_of_int s.ms_bits;
          string_of_int s.ms_exp_bits;
          fmt s.t_plain;
          fmt s.t_per_call;
          fmt s.t_cached;
          fmt s.t_fixed_base;
          Printf.sprintf "%.2fx" (s.t_per_call /. Float.max 1e-9 s.t_cached);
          Printf.sprintf "%.2fx" (s.t_per_call /. Float.max 1e-9 s.t_fixed_base) ])
      samples
  in
  Bench_util.print_table
    ~headers:
      [ "modulus bits"; "exp bits"; "plain (ms)"; "per-call (ms)"; "cached ctx (ms)";
        "fixed-base (ms)"; "cached/per-call"; "fixed/per-call" ]
    rows;
  print_endline
    "Full-width exponents amortize the context setup below the measurement noise;";
  print_endline
    "the short-exponent rows (e ~ 2^16 over 1024/2048-bit moduli) isolate the setup";
  print_endline "cost the cached context avoids on every call.";
  (* End-to-end effect on the exponentiation-heavy PM protocol, and the
     transparent cache's efficacy over that run. *)
  let spec = Experiments.spec_for_domain 8 in
  let env, client, query = Workload.scenario ~params:Experiments.bench_params spec in
  let run_pm flag =
    Bigint.use_montgomery := flag;
    let t =
      Bench_util.time_median ~runs:3 (fun () ->
          Protocol.run_exn (Protocol.Private_matching Pm_join.Session_keys) env client ~query)
    in
    Bigint.use_montgomery := true;
    t
  in
  let t_on = run_pm true and t_off = run_pm false in
  Printf.printf "\nfull PM run at |domactive|=8: %.1f ms with Montgomery, %.1f ms without (%.2fx)\n"
    (t_on *. 1000.0) (t_off *. 1000.0) (t_off /. Float.max 1e-9 t_on);
  (* The protocols thread explicit contexts through their own hot loops,
     so the transparent cache only sees the remaining generic mod_pow
     callers (group membership, ElGamal decryption, credentials); run
     every scheme once to exercise them all. *)
  Bigint.ctx_cache_reset ();
  List.iter
    (fun scheme -> ignore (Protocol.run_exn scheme env client ~query))
    Protocol.all_schemes;
  let hits, misses = Bigint.ctx_cache_stats () in
  Printf.printf
    "transparent context cache over one run of every scheme: %d hits / %d misses \
     (%.1f%% hit rate)\n"
    hits misses
    (100.0 *. float_of_int hits /. Float.max 1.0 (float_of_int (hits + misses)));
  (* Round two of the hot path: CRT decryption, joint 2-base
     exponentiation, and the domain-parallel batch executor. *)
  ignore (hot_path_tables ())

(* ------------------------------------------------------------------ *)
(* Machine-readable perf trajectory: BENCH_modexp.json records ops/sec
   for each exponentiation configuration plus the end-to-end P2 sweep,
   so future optimization PRs can diff against this one numerically. *)

let modexp_json ?(path = "BENCH_modexp.json") ?(rounds = 7) ~sizes () =
  let buf = Buffer.create 4096 in
  let ops_per_sec t = 1.0 /. Float.max 1e-9 t in
  (* A low round count is the CI smoke configuration: shrink the
     per-sample floor too so the whole emitter stays fast. *)
  let min_time = if rounds <= 2 then 0.002 else 0.02 in
  Buffer.add_string buf "{\n";
  (* Microbenchmark: the four configurations per modulus width. *)
  let workloads = modexp_workloads @ [ (2048, None) ] in
  let samples =
    List.map (fun (bits, exp_bits) -> measure_modexp ~rounds ?exp_bits bits) workloads
  in
  Buffer.add_string buf "  \"modexp_ops_per_sec\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"modulus_bits\": %d, \"exponent_bits\": %d, \"plain\": %.2f, \
            \"per_call_montgomery\": %.2f, \"cached_context\": %.2f, \
            \"fixed_base\": %.2f }%s\n"
           s.ms_bits s.ms_exp_bits (ops_per_sec s.t_plain) (ops_per_sec s.t_per_call)
           (ops_per_sec s.t_cached) (ops_per_sec s.t_fixed_base)
           (if i = List.length samples - 1 then "" else ",")))
    samples;
  Buffer.add_string buf "  ],\n";
  (* CRT Paillier decryption: before (decrypt_plain) / after (CRT). *)
  let crt = List.map (measure_crt ~rounds ~min_time) [ 512; 1024 ] in
  Buffer.add_string buf "  \"crt_paillier_ops_per_sec\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"key_bits\": %d, \"decrypt_plain\": %.2f, \"decrypt_crt\": %.2f, \
            \"speedup\": %.2f }%s\n"
           s.crt_bits (ops_per_sec s.t_plain_dec) (ops_per_sec s.t_crt_dec)
           (s.t_plain_dec /. Float.max 1e-9 s.t_crt_dec)
           (if i = List.length crt - 1 then "" else ",")))
    crt;
  Buffer.add_string buf "  ],\n";
  (* Simultaneous 2-base exponentiation vs two separate mod_pows. *)
  let me = List.map (measure_multi_exp ~rounds ~min_time) [ 256; 512; 1024 ] in
  Buffer.add_string buf "  \"multi_exp_ops_per_sec\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"modulus_bits\": %d, \"two_mod_pows\": %.2f, \"joint_pow2\": %.2f, \
            \"speedup\": %.2f }%s\n"
           s.me_bits (ops_per_sec s.t_separate) (ops_per_sec s.t_joint)
           (s.t_separate /. Float.max 1e-9 s.t_joint)
           (if i = List.length me - 1 then "" else ",")))
    me;
  Buffer.add_string buf "  ],\n";
  (* Domain-parallel source encryption at 1/2/4 domains.  The speedup is
     whatever this machine's cores allow; recommended_domains records the
     parallelism actually available when the numbers were taken. *)
  let batch = measure_batch ~rounds:(Stdlib.max 2 (rounds / 2)) ~domain_counts:[ 1; 2; 4 ] () in
  let batch_base =
    match batch with s :: _ -> s.bs_tuples_per_sec | [] -> 1.0
  in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"batch_encrypt\": { \"tuples\": %d, \"payload_bytes\": %d, \
        \"recommended_domains\": %d, \"rows\": [\n"
       batch_tuples batch_payload_bytes (Batch.recommended_domains ()));
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"domains\": %d, \"tuples_per_sec\": %.2f, \"speedup_vs_1\": %.2f }%s\n"
           s.bs_domains s.bs_tuples_per_sec
           (s.bs_tuples_per_sec /. Float.max 1e-9 batch_base)
           (if i = List.length batch - 1 then "" else ",")))
    batch;
  Buffer.add_string buf "  ] },\n";
  (* Karatsuba calibration: crossover width and recursive threshold. *)
  let sweep, crossover, _, best_threshold =
    measure_karatsuba ~rounds:(Stdlib.max 2 (rounds - 2)) ~min_time ()
  in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"karatsuba\": { \"crossover_limbs\": %d, \"best_recursive_threshold_2048\": %d, \
        \"default_threshold\": %d, \"sweep\": [\n"
       crossover best_threshold !Bigint.karatsuba_threshold);
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"limbs\": %d, \"schoolbook_us\": %.3f, \"one_split_us\": %.3f }%s\n"
           s.ks_limbs (s.ks_school *. 1e6) (s.ks_split *. 1e6)
           (if i = List.length sweep - 1 then "" else ",")))
    sweep;
  Buffer.add_string buf "  ] },\n";
  (* End-to-end: the P2 perf sweep, wall clock per protocol per size. *)
  let schemes = Protocol.all_schemes in
  Buffer.add_string buf "  \"perf_sweep_seconds\": [\n";
  List.iteri
    (fun i size ->
      let env, client, query =
        Workload.scenario ~params:Experiments.bench_params
          (Experiments.spec_for_domain size)
      in
      let fields =
        List.map
          (fun scheme ->
            let t =
              Bench_util.time_median ~runs:3 (fun () ->
                  Protocol.run_exn scheme env client ~query)
            in
            Printf.sprintf "\"%s\": %.4f" (Protocol.scheme_name scheme) t)
          schemes
      in
      Buffer.add_string buf
        (Printf.sprintf "    { \"domactive\": %d, %s }%s\n" size
           (String.concat ", " fields)
           (if i = List.length sizes - 1 then "" else ",")))
    sizes;
  Buffer.add_string buf "  ],\n";
  (* Cache efficacy over one PM run at the reference size. *)
  let env, client, query =
    Workload.scenario ~params:Experiments.bench_params (Experiments.spec_for_domain 8)
  in
  Bigint.ctx_cache_reset ();
  List.iter
    (fun scheme -> ignore (Protocol.run_exn scheme env client ~query))
    Protocol.all_schemes;
  let hits, misses = Bigint.ctx_cache_stats () in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"ctx_cache\": { \"workload\": \"all-schemes domactive=8\", \"hits\": %d, \
        \"misses\": %d }\n"
       hits misses);
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n" path (Buffer.length buf)

(* ------------------------------------------------------------------ *)
(* A6 — lean set-operation protocols vs full join + projection. *)

let setops () =
  Bench_util.heading
    "A6 — set operations: lean protocol (no right-side payloads) vs join-based";
  let spec = Experiments.spec_for_domain 16 in
  let left, right = Workload.generate spec in
  let env =
    Env.two_source ~params:Experiments.bench_params ~seed:spec.Workload.seed
      ~left:("L", left) ~right:("R", right) ()
  in
  let client = Env.make_client env ~identity:"bench" ~properties:[ [] ] in
  let semi = Set_ops.run ~on:[ "a_join" ] env client Set_ops.Semi_join ~left:"L" ~right:"R" in
  let join =
    Protocol.run_exn (Protocol.Commutative { use_ids = false }) env client
      ~query:"select * from L natural join R"
  in
  let bytes o = Secmed_mediation.Transcript.total_bytes o.Outcome.transcript in
  let s2 o = Secmed_mediation.Transcript.bytes_sent_by o.Outcome.transcript
      (Secmed_mediation.Transcript.Source 2) in
  Bench_util.print_table
    ~headers:[ "pipeline"; "total bytes"; "right-source bytes"; "correct" ]
    [
      [ "semi-join protocol"; Bench_util.fmt_bytes (bytes semi); Bench_util.fmt_bytes (s2 semi);
        string_of_bool (Outcome.correct semi) ];
      [ "commutative join"; Bench_util.fmt_bytes (bytes join); Bench_util.fmt_bytes (s2 join);
        string_of_bool (Outcome.correct join) ];
    ];
  print_endline "The dedicated semi-join never ships right-source tuple data."

(* ------------------------------------------------------------------ *)
(* A7 — DAS query-translator placement (paper §3.1: client / source /
   mediator settings; only the client setting is described there). *)

let das_settings () =
  Bench_util.heading
    "A7 — DAS translator placement: client vs source vs mediator setting";
  let spec = Experiments.spec_for_domain 16 in
  let env, client, query = Workload.scenario ~params:Experiments.bench_params spec in
  let rows =
    List.map
      (fun setting ->
        let o =
          Das.run ~strategy:(Das_partition.Equi_depth 4) ~setting env client ~query
        in
        let t = o.Outcome.transcript in
        let observed list key =
          match Outcome.observed list key with Some v -> string_of_int v | None -> "-"
        in
        [
          Das.setting_name setting;
          string_of_bool (Outcome.correct o);
          string_of_int (Secmed_mediation.Transcript.sends_by t Secmed_mediation.Transcript.Client);
          Bench_util.fmt_bytes (Secmed_mediation.Transcript.total_bytes t);
          observed o.Outcome.mediator_observed "partitions-R1";
          (match Outcome.observed o.Outcome.mediator_observed "approx-value-centibits-R1" with
           | Some cb -> Printf.sprintf "%.2f bits/tuple" (float_of_int cb /. 100.0)
           | None -> "-");
        ])
      [ Das.Client_setting; Das.Source_setting; Das.Mediator_setting ]
  in
  Bench_util.print_table
    ~headers:
      [ "setting"; "correct"; "client sends"; "total bytes"; "mediator sees partitions";
        "mediator value approximation" ]
    rows;
  print_endline "Paper §6: 'it is crucial to encrypt the index table and let the query";
  print_endline "translator reside on client side' — the mediator setting is cheaper (one";
  print_endline "client interaction) but hands the mediator the partition ranges."

(* ------------------------------------------------------------------ *)
(* Micro: Bechamel suite over the primitives every protocol builds on. *)

let micro () =
  Bench_util.heading "Microbenchmarks — cryptographic primitives (Bechamel/OLS)";
  let prng = Prng.of_int_seed 3 in
  let group = Group.default ~bits:256 in
  let elg = Elgamal.keygen prng group in
  let pk = Elgamal.public elg in
  let hybrid_ct = Hybrid.encrypt prng pk (String.make 256 'x') in
  let comm_key = Commutative.keygen prng group in
  let oracle_point = Random_oracle.hash group "bench" in
  let paillier = Paillier.keygen prng ~bits:512 in
  let ppk = Paillier.public paillier in
  let pct = Paillier.encrypt prng ppk (Bigint.of_int 31337) in
  let exponent = Group.random_exponent prng group in
  let tests =
    Test.make_grouped ~name:"crypto" ~fmt:"%s %s"
      [
        Test.make ~name:"sha256 (1 KiB)"
          (Staged.stage
             (let block = String.make 1024 'a' in
              fun () -> ignore (Sha256.digest block)));
        Test.make ~name:"aes128-ctr (1 KiB)"
          (Staged.stage
             (let key = Prng.bytes prng 16 and nonce = Prng.bytes prng 12 in
              let block = String.make 1024 'b' in
              fun () -> ignore (Aes.ctr_transform ~key ~nonce block)));
        Test.make ~name:"modpow 256-bit"
          (Staged.stage (fun () ->
               ignore (Bigint.mod_pow group.Group.g exponent group.Group.p)));
        Test.make ~name:"hybrid encrypt (256 B)"
          (Staged.stage (fun () -> ignore (Hybrid.encrypt prng pk (String.make 256 'x'))));
        Test.make ~name:"hybrid decrypt (256 B)"
          (Staged.stage (fun () -> ignore (Hybrid.decrypt elg hybrid_ct)));
        Test.make ~name:"commutative apply"
          (Staged.stage (fun () -> ignore (Commutative.apply comm_key oracle_point)));
        Test.make ~name:"random-oracle hash"
          (Staged.stage (fun () -> ignore (Random_oracle.hash group "some-join-value")));
        Test.make ~name:"paillier encrypt (512-bit n)"
          (Staged.stage (fun () -> ignore (Paillier.encrypt prng ppk (Bigint.of_int 99))));
        Test.make ~name:"paillier decrypt (512-bit n)"
          (Staged.stage (fun () -> ignore (Paillier.decrypt paillier pct)));
        Test.make ~name:"paillier scalar-mul (128-bit k)"
          (Staged.stage
             (let k = Pm_join.root_of_value (Value.Int 7) in
              fun () -> ignore (Paillier.scalar_mul ppk k pct)));
      ]
  in
  let estimates = Bench_util.bechamel_estimates ~quota:0.4 tests in
  Bench_util.print_bechamel_table "primitive costs" estimates

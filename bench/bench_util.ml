(* Shared helpers for the benchmark harness: text tables, direct timing,
   and a thin wrapper around Bechamel's OLS pipeline. *)

let heading title =
  let bar = String.make (String.length title) '=' in
  Printf.printf "\n%s\n%s\n\n" title bar

let subheading title = Printf.printf "\n--- %s ---\n\n" title

(* Render rows as an aligned text table. *)
let print_table ~headers rows =
  let columns = List.length headers in
  let widths = Array.make columns 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)) row
  in
  measure headers;
  List.iter measure rows;
  let line () =
    print_char '+';
    Array.iter
      (fun w ->
        print_string (String.make (w + 2) '-');
        print_char '+')
      widths;
    print_newline ()
  in
  let row cells =
    print_char '|';
    List.iteri (fun i cell -> Printf.printf " %-*s |" widths.(i) cell) cells;
    print_newline ()
  in
  line ();
  row headers;
  line ();
  List.iter row rows;
  line ()

let fmt_ms seconds = Printf.sprintf "%.1f" (seconds *. 1000.0)
let fmt_bytes b =
  if b >= 1_048_576 then Printf.sprintf "%.2f MiB" (float_of_int b /. 1_048_576.0)
  else if b >= 1024 then Printf.sprintf "%.1f KiB" (float_of_int b /. 1024.0)
  else Printf.sprintf "%d B" b

(* Direct timing: median over [runs] repetitions, on the monotonic clock
   (wall-clock steps from NTP would silently skew gettimeofday samples). *)
let time_median ?(runs = 3) f =
  let samples =
    List.init runs (fun _ ->
        let t0 = Secmed_obs.Clock.now_ns () in
        ignore (f ());
        Secmed_obs.Clock.ns_to_s (Secmed_obs.Clock.elapsed_ns ~since:t0))
  in
  match List.sort compare samples with
  | [] -> 0.0
  | sorted -> List.nth sorted (List.length sorted / 2)

(* Best-of-[rounds] seconds per call, with the repetition count calibrated
   so each sample runs for at least [min_time] (keeps fast primitives well
   above timer resolution without hardcoding per-benchmark rep counts). *)
let best_time ?(rounds = 5) ?(min_time = 0.02) f =
  let sample reps =
    let t0 = Secmed_obs.Clock.now_ns () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    Secmed_obs.Clock.ns_to_s (Secmed_obs.Clock.elapsed_ns ~since:t0) /. float_of_int reps
  in
  let rec calibrate reps =
    let t = sample reps in
    if t *. float_of_int reps >= min_time || reps >= 1 lsl 20 then (reps, t)
    else calibrate (reps * 4)
  in
  let reps, first = calibrate 1 in
  let best = ref first in
  for _ = 2 to rounds do
    best := Float.min !best (sample reps)
  done;
  !best

(* Bechamel: run a grouped test and return (name, estimated ns/run). *)
let bechamel_estimates ?(quota = 0.5) tests =
  let open Bechamel in
  let open Toolkit in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second quota) ~stabilize:false ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name o acc ->
      let ns =
        match Analyze.OLS.estimates o with Some (e :: _) -> e | Some [] | None -> Float.nan
      in
      (name, ns) :: acc)
    results []
  |> List.sort compare

let fmt_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f µs" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let print_bechamel_table title estimates =
  subheading title;
  print_table ~headers:[ "benchmark"; "time/run" ]
    (List.map (fun (name, ns) -> [ name; fmt_ns ns ]) estimates)

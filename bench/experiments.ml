(* Reproduction of the paper's evaluation artifacts (see DESIGN.md §4):
   Tables 1 and 2, Figures 1 and 2, and the Section 6 performance
   discussion turned into measured quantities. *)

open Secmed_relalg
open Secmed_mediation
open Secmed_core

(* Benchmark security parameters (reduced moduli; see DESIGN.md §5). *)
let bench_params = { Env.group_bits = 256; paillier_bits = 512 }

let reference_spec =
  {
    Workload.default with
    rows_left = 32;
    rows_right = 32;
    distinct_left = 16;
    distinct_right = 16;
    overlap = 8;
    extra_attrs = 2;
    seed = 2007;
  }

let scenario ?(spec = reference_spec) () = Workload.scenario ~params:bench_params spec

let spec_for_domain ?(rows_per_value = 2) size =
  {
    Workload.default with
    rows_left = rows_per_value * size;
    rows_right = rows_per_value * size;
    distinct_left = size;
    distinct_right = size;
    overlap = size / 2;
    extra_attrs = 2;
    seed = 2007;
  }

let run_reference_outcomes () =
  let env, client, query = scenario () in
  List.map (fun s -> Protocol.run_exn s env client ~query) Protocol.paper_schemes

(* ------------------------------------------------------------------ *)
(* T1 — Table 1: extra information disclosed to client and mediator. *)

let table1 () =
  Bench_util.heading "Table 1 — extra information disclosed to client and mediator";
  let outcomes = run_reference_outcomes () in
  print_string (Leakage.table1 outcomes);
  print_newline ();
  let left, right = Workload.generate reference_spec in
  let ground_truth = Ground_truth.compute left right ~join_attr:"a_join" in
  Format.printf "Ground truth: %a@.@." Ground_truth.pp ground_truth;
  print_endline "Machine-checked claims (paper's Table 1 rows, instantiated):";
  List.iter
    (fun o ->
      Printf.printf "\n%s:\n" o.Outcome.scheme;
      let claims = Leakage.verify o ~ground_truth in
      Format.printf "%a" Leakage.pp_claims claims;
      if not (Leakage.all_hold claims) then print_endline ">>> SHAPE VIOLATED <<<")
    outcomes

(* ------------------------------------------------------------------ *)
(* T2 — Table 2: applied cryptographic primitives. *)

let table2 () =
  Bench_util.heading "Table 2 — applied cryptographic primitives (measured invocation counts)";
  let outcomes = run_reference_outcomes () in
  print_string (Leakage.table2 outcomes);
  print_newline ();
  print_endline "Paper's claims: DAS uses a (collision-free) hashfunction; the commutative";
  print_endline "approach uses an ideal hash + commutative encryption; PM uses homomorphic";
  print_endline "encryption + random numbers.  Hybrid encryption is shared infrastructure.";
  let ok =
    List.for_all2
      (fun o expected ->
        let count p = Option.value ~default:0 (List.assoc_opt p o.Outcome.counters) in
        List.for_all (fun p -> count p > 0) (fst expected)
        && List.for_all (fun p -> count p = 0) (snd expected))
      outcomes
      [
        ( [ Secmed_crypto.Counters.Hash ],
          [ Secmed_crypto.Counters.Commutative_encrypt; Secmed_crypto.Counters.Homomorphic_encrypt ] );
        ( [ Secmed_crypto.Counters.Ideal_hash; Secmed_crypto.Counters.Commutative_encrypt ],
          [ Secmed_crypto.Counters.Homomorphic_encrypt ] );
        ( [ Secmed_crypto.Counters.Homomorphic_encrypt; Secmed_crypto.Counters.Random_number ],
          [ Secmed_crypto.Counters.Commutative_encrypt ] );
      ]
  in
  Printf.printf "\nShape check (primitive sets match the paper's Table 2): %s\n"
    (if ok then "OK" else "VIOLATED")

(* ------------------------------------------------------------------ *)
(* F1 — Figure 1: the basic mediated information system. *)

let figure1 () =
  Bench_util.heading
    "Figure 1 — basic mediated system (message flow of an actual plain-pipeline run)";
  let env, client, query = scenario ~spec:{ reference_spec with rows_left = 16; rows_right = 16 } () in
  let o = Protocol.run_exn Protocol.Plain env client ~query in
  print_endline (Transcript.flow_diagram o.Outcome.transcript);
  print_endline (Transcript.summary o.Outcome.transcript)

(* ------------------------------------------------------------------ *)
(* F2 — Figure 2: the credential-based MMM system. *)

let figure2 () =
  Bench_util.heading
    "Figure 2 — credential-based MMM (preparatory phase + DAS delivery, from a real run)";
  (* Preparatory phase: the client requests credentials from the CA
     (properties + public key in, credential out). *)
  let env, client, query = scenario ~spec:{ reference_spec with rows_left = 8; rows_right = 8;
                                            distinct_left = 4; distinct_right = 4; overlap = 2 } () in
  let preparatory = Transcript.create () in
  let credential_bytes = Request.credential_size client.Env.credentials in
  Transcript.record preparatory ~sender:Client ~receiver:Authority ~label:"p,id,k_pub"
    ~size:(64 + credential_bytes / 2);
  Transcript.record preparatory ~sender:Authority ~receiver:Client ~label:"credential(p,k_pub)"
    ~size:credential_bytes;
  print_endline "Preparatory phase (certification authority):";
  print_endline (Transcript.flow_diagram preparatory);
  let o = Protocol.run_exn (Protocol.Das (Das_partition.Equi_depth 2, Das.Pair_index)) env client ~query in
  print_endline "Request + delivery phases (DAS, client setting):";
  print_endline (Transcript.flow_diagram o.Outcome.transcript);
  print_endline (Transcript.summary o.Outcome.transcript)

(* ------------------------------------------------------------------ *)
(* P1 — Section 6: interaction counts per party. *)

let rounds () =
  Bench_util.heading "P1 — interactions with the mediator (messages sent per party)";
  let env, client, query = scenario () in
  let schemes = Protocol.all_schemes in
  let rows =
    List.map
      (fun scheme ->
        let o = Protocol.run_exn scheme env client ~query in
        let t = o.Outcome.transcript in
        [
          Protocol.scheme_name scheme;
          string_of_int (Transcript.sends_by t Transcript.Client);
          string_of_int (Transcript.sends_by t (Transcript.Source 1));
          string_of_int (Transcript.sends_by t (Transcript.Source 2));
          string_of_int (Transcript.sends_by t Transcript.Mediator);
          string_of_int (Transcript.rounds t Transcript.Client Transcript.Mediator);
        ])
      schemes
  in
  Bench_util.print_table
    ~headers:[ "scheme"; "client sends"; "S1 sends"; "S2 sends"; "mediator sends";
               "client<->mediator rounds" ]
    rows;
  print_endline "Paper's claims: DAS — client interacts twice, sources only once (\"most";
  print_endline "convenient\"); commutative & PM — sources interact twice with the mediator."

(* ------------------------------------------------------------------ *)
(* P2 — Section 6: wall-clock of the delivery phase. *)

let perf ~sizes () =
  Bench_util.heading "P2 — end-to-end wall clock vs |domactive(A_join)| (median of 3, ms)";
  let schemes = Protocol.all_schemes in
  let rows =
    List.map
      (fun size ->
        let env, client, query = scenario ~spec:(spec_for_domain size) () in
        string_of_int size
        :: List.map
             (fun scheme ->
               let t = Bench_util.time_median ~runs:3 (fun () ->
                   Protocol.run_exn scheme env client ~query)
               in
               Bench_util.fmt_ms t)
             schemes)
      sizes
  in
  Bench_util.print_table
    ~headers:("|domactive|" :: List.map Protocol.scheme_name schemes)
    rows;
  (* Shape check: PM is the most expensive protocol; commutative beats PM. *)
  let largest = List.nth sizes (List.length sizes - 1) in
  let env, client, query = scenario ~spec:(spec_for_domain largest) () in
  let time scheme =
    Bench_util.time_median ~runs:3 (fun () -> Protocol.run_exn scheme env client ~query)
  in
  let t_comm = time (Protocol.Commutative { use_ids = false }) in
  let t_pm = time (Protocol.Private_matching Pm_join.Session_keys) in
  Printf.printf
    "\nShape check (commutative faster than PM at |dom|=%d, paper §6): %s (%.1f vs %.1f ms)\n"
    largest
    (if t_comm < t_pm then "OK" else "VIOLATED")
    (t_comm *. 1000.0) (t_pm *. 1000.0);
  (* Per-phase breakdown at the largest size. *)
  Bench_util.subheading (Printf.sprintf "phase breakdown at |domactive| = %d (ms)" largest);
  List.iter
    (fun scheme ->
      let o = Protocol.run_exn scheme env client ~query in
      Printf.printf "%-22s " (Protocol.scheme_name scheme);
      List.iter
        (fun (phase, seconds) -> Printf.printf "%s=%.1f  " phase (seconds *. 1000.0))
        o.Outcome.timings;
      print_newline ())
    Protocol.paper_schemes

(* ------------------------------------------------------------------ *)
(* P3 — Section 6: communication volume. *)

let comm ~sizes () =
  Bench_util.heading "P3 — communication volume vs |domactive(A_join)| (total wire bytes)";
  let schemes = Protocol.all_schemes in
  let rows =
    List.map
      (fun size ->
        let env, client, query = scenario ~spec:(spec_for_domain size) () in
        string_of_int size
        :: List.map
             (fun scheme ->
               let o = Protocol.run_exn scheme env client ~query in
               Bench_util.fmt_bytes (Transcript.total_bytes o.Outcome.transcript))
             schemes)
      sizes
  in
  Bench_util.print_table
    ~headers:("|domactive|" :: List.map Protocol.scheme_name schemes)
    rows;
  (* Per-link breakdown at the largest size, for the paper's protocols. *)
  let largest = List.nth sizes (List.length sizes - 1) in
  let env, client, query = scenario ~spec:(spec_for_domain largest) () in
  Bench_util.subheading (Printf.sprintf "per-link bytes at |domactive| = %d" largest);
  List.iter
    (fun scheme ->
      let o = Protocol.run_exn scheme env client ~query in
      Printf.printf "%s:\n%s\n" (Protocol.scheme_name scheme)
        (Transcript.summary o.Outcome.transcript))
    Protocol.paper_schemes

(* ------------------------------------------------------------------ *)
(* P4 — Section 6: client post-processing burden. *)

let postproc () =
  Bench_util.heading "P4 — client-side burden: received data and post-processing time";
  let env, client, query = scenario () in
  let rows =
    List.map
      (fun scheme ->
        let o = Protocol.run_exn scheme env client ~query in
        let exact = Relation.cardinality o.Outcome.exact in
        let postprocess =
          Option.value ~default:0.0 (List.assoc_opt "client-postprocess" o.Outcome.timings)
          +. Option.value ~default:0.0 (List.assoc_opt "client-translate" o.Outcome.timings)
        in
        [
          Protocol.scheme_name scheme;
          string_of_int o.Outcome.client_received_tuples;
          string_of_int exact;
          Printf.sprintf "%.2fx" (Outcome.superset_factor o);
          Bench_util.fmt_ms postprocess;
        ])
      Protocol.all_schemes
  in
  Bench_util.print_table
    ~headers:[ "scheme"; "pairs received"; "exact join"; "superset factor"; "client time (ms)" ]
    rows;
  print_endline "Paper's claims: the DAS client \"receives more data records than necessary\"";
  print_endline "and must run the client query; the commutative client receives the exact";
  print_endline "result; the PM client receives all encrypted values but decrypts only matches."

(* ------------------------------------------------------------------ *)
(* P6 — security-parameter sweep: how the protocols scale with modulus
   size (the paper's crypto is parameterized but unevaluated). *)

let security_sweep () =
  Bench_util.heading "P6 — cost of security parameters (|domactive| = 8, median of 3, ms)";
  let spec = spec_for_domain 8 in
  Bench_util.subheading "group size (DAS / commutative: hybrid + commutative encryption)";
  let rows =
    List.map
      (fun group_bits ->
        let params = { Env.group_bits; paillier_bits = 512 } in
        let env, client, query = Workload.scenario ~params spec in
        let time scheme =
          Bench_util.fmt_ms
            (Bench_util.time_median ~runs:3 (fun () -> Protocol.run_exn scheme env client ~query))
        in
        [
          string_of_int group_bits;
          time (Protocol.Das (Das_partition.Equi_depth 4, Das.Pair_index));
          time (Protocol.Commutative { use_ids = false });
        ])
      [ 160; 256; 384; 512 ]
  in
  Bench_util.print_table ~headers:[ "group bits"; "das (ms)"; "commutative (ms)" ] rows;
  Bench_util.subheading "Paillier modulus (PM protocol)";
  let rows =
    List.map
      (fun paillier_bits ->
        let params = { Env.group_bits = 256; paillier_bits } in
        let env, client, query = Workload.scenario ~params spec in
        let t =
          Bench_util.time_median ~runs:3 (fun () ->
              Protocol.run_exn (Protocol.Private_matching Pm_join.Session_keys) env client ~query)
        in
        [ string_of_int paillier_bits; Bench_util.fmt_ms t ])
      [ 384; 512; 768; 1024 ]
  in
  Bench_util.print_table ~headers:[ "paillier bits"; "pm (ms)" ] rows;
  print_endline "Exponentiation cost grows roughly cubically with the modulus size; the";
  print_endline "protocols' relative ordering (commutative < das < pm) is stable across it."

(* ------------------------------------------------------------------ *)
(* P7 — skewed join-value distributions. *)

let skew_sweep () =
  Bench_util.heading
    "P7 — join-value skew (Zipf): result blow-up and protocol behaviour";
  let rows =
    List.map
      (fun skew ->
        let spec =
          { (spec_for_domain ~rows_per_value:4 16) with Workload.skew; seed = 2024 }
        in
        let env, client, query = scenario ~spec () in
        let left, right = Workload.generate spec in
        let g = Ground_truth.compute left right ~join_attr:"a_join" in
        let time scheme =
          Bench_util.fmt_ms
            (Bench_util.time_median ~runs:3 (fun () -> Protocol.run_exn scheme env client ~query))
        in
        [
          Printf.sprintf "%.1f" skew;
          string_of_int g.Ground_truth.exact_join_pairs;
          time (Protocol.Das (Das_partition.Equi_depth 4, Das.Pair_index));
          time (Protocol.Commutative { use_ids = false });
          time (Protocol.Private_matching Pm_join.Session_keys);
        ])
      [ 0.0; 0.8; 1.5 ]
  in
  Bench_util.print_table
    ~headers:[ "zipf skew"; "join pairs"; "das (ms)"; "commutative (ms)"; "pm (ms)" ]
    rows;
  print_endline "Skew concentrates rows on few hot keys: the join result (and hence the";
  print_endline "client-side work) grows, while the per-key protocol traffic is unchanged —";
  print_endline "the protocols' costs are driven by |domactive|, not by row counts."

(* ------------------------------------------------------------------ *)
(* E1 — successive joins over a source chain (Section 8 extension). *)

let chain_env n_sources =
  let prng = Secmed_crypto.Prng.of_int_seed 77 in
  let relations =
    List.init n_sources (fun i ->
        let key_in = Printf.sprintf "k%d" i and key_out = Printf.sprintf "k%d" (i + 1) in
        let attrs =
          if i = n_sources - 1 then [ (key_in, Value.Tint) ]
          else [ (key_in, Value.Tint); (key_out, Value.Tint) ]
        in
        let schema = Schema.of_list attrs in
        let rows =
          List.init 12 (fun _ ->
              List.map (fun _ -> Value.Int (Secmed_crypto.Prng.uniform_int prng 8)) attrs)
        in
        (Printf.sprintf "T%d" i, Relation.of_rows schema rows))
  in
  let entry i (name, rel) =
    { Catalog.relation = name; source = i + 1; schema = Relation.schema rel;
      source_relation = name }
  in
  let env =
    Env.make ~params:bench_params ~seed:77
      ~catalog:(Catalog.make (List.mapi entry relations))
      ~sources:
        (List.mapi
           (fun i (name, rel) ->
             { Env.source_id = i + 1; relations = [ (name, rel) ];
               policy = Policy.open_policy; advertised = [] })
           relations)
      ()
  in
  let query =
    "select * from T0 "
    ^ String.concat " "
        (List.init (n_sources - 1) (fun i -> Printf.sprintf "natural join T%d" (i + 1)))
  in
  (env, query)

let chain () =
  Bench_util.heading
    "E1 — successive joins (mediator-hierarchy extension): 2/3/4-source chains";
  let rows =
    List.concat_map
      (fun n_sources ->
        let env, query = chain_env n_sources in
        let client = Env.make_client env ~identity:"chain" ~properties:[ [] ] in
        List.map
          (fun scheme ->
            let t0 = Unix.gettimeofday () in
            let chain = Multi_join.run ~scheme env client ~query in
            let elapsed = Unix.gettimeofday () -. t0 in
            [
              string_of_int n_sources;
              Protocol.scheme_name scheme;
              string_of_int (List.length chain.Multi_join.stages);
              string_of_int (Relation.cardinality chain.Multi_join.result);
              string_of_bool (Multi_join.correct chain);
              string_of_int chain.Multi_join.total_messages;
              Bench_util.fmt_bytes chain.Multi_join.total_bytes;
              Bench_util.fmt_ms elapsed;
            ])
          Protocol.paper_schemes)
      [ 2; 3; 4 ]
  in
  Bench_util.print_table
    ~headers:[ "sources"; "scheme"; "rounds"; "result"; "correct"; "msgs"; "bytes"; "time (ms)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E2 — set operations (Section 8 extension): measured disclosure. *)

let setops_experiment () =
  Bench_util.heading "E2 — secure set operations: correctness and per-party traffic";
  (* Whole-tuple operations need layout-identical relations: keep only the
     join column. *)
  let spec = { (spec_for_domain 16) with Workload.extra_attrs = 0 } in
  let left, right = Workload.generate spec in
  let env =
    Env.two_source ~params:bench_params ~seed:spec.Workload.seed ~left:("L", left)
      ~right:("R", right) ()
  in
  let client = Env.make_client env ~identity:"ops" ~properties:[ [] ] in
  let rows =
    List.map
      (fun (op, on) ->
        let o = Set_ops.run ?on env client op ~left:"L" ~right:"R" in
        let t = o.Outcome.transcript in
        [
          Set_ops.op_name op;
          string_of_int (Relation.cardinality o.Outcome.result);
          string_of_bool (Outcome.correct o);
          Bench_util.fmt_bytes (Transcript.bytes_sent_by t (Transcript.Source 1));
          Bench_util.fmt_bytes (Transcript.bytes_sent_by t (Transcript.Source 2));
          Bench_util.fmt_bytes (Transcript.total_bytes t);
        ])
      [ (Set_ops.Intersection, None); (Set_ops.Difference, None);
        (Set_ops.Semi_join, Some [ "a_join" ]) ]
  in
  Bench_util.print_table
    ~headers:[ "operation"; "result"; "correct"; "S1 bytes"; "S2 bytes"; "total" ]
    rows;
  print_endline "The right source transmits only fixed-size key hashes in every operation."

(* ------------------------------------------------------------------ *)
(* E3 — encrypted aggregation vs join-then-aggregate. *)

let aggregation () =
  Bench_util.heading
    "E3 — aggregation queries: dedicated protocol vs join + client-side aggregation";
  let spec = spec_for_domain ~rows_per_value:4 16 in
  let env, client, _ = scenario ~spec () in
  let grouped_query =
    "select a_join, count(*) as n, sum(l0) as total from R1 natural join R2 group by a_join"
  in
  let scalar_query = "select count(*) as n, sum(r0) as total from R1 natural join R2" in
  let run_case label thunk =
    let t0 = Unix.gettimeofday () in
    let o : Outcome.t = thunk () in
    let elapsed = Unix.gettimeofday () -. t0 in
    [
      label;
      string_of_int (Relation.cardinality o.Outcome.result);
      string_of_bool (Outcome.correct o);
      string_of_int o.Outcome.client_received_tuples;
      Bench_util.fmt_bytes (Transcript.total_bytes o.Outcome.transcript);
      Bench_util.fmt_ms elapsed;
    ]
  in
  let rows =
    [
      run_case "join(commutative) + aggregate" (fun () ->
          Protocol.run_exn (Protocol.Commutative { use_ids = false }) env client
            ~query:grouped_query);
      run_case "aggregate protocol (grouped)" (fun () ->
          Aggregate_join.run env client ~query:grouped_query);
      run_case "join(commutative) + aggregate [scalar]" (fun () ->
          Protocol.run_exn (Protocol.Commutative { use_ids = false }) env client
            ~query:scalar_query);
      run_case "aggregate protocol (scalar)" (fun () ->
          Aggregate_join.run env client ~query:scalar_query);
    ]
  in
  (* The homomorphic strategy needs duplicate-free left keys. *)
  let unique_spec = { (spec_for_domain ~rows_per_value:1 16) with Workload.rows_right = 64 } in
  let env_u, client_u, _ = scenario ~spec:unique_spec () in
  let rows =
    rows
    @ [
        run_case "aggregate protocol (homomorphic)" (fun () ->
            Aggregate_join.run ~strategy:Aggregate_join.Homomorphic env_u client_u
              ~query:scalar_query);
      ]
  in
  Bench_util.print_table
    ~headers:[ "pipeline"; "result rows"; "correct"; "pairs/bundles to client"; "bytes"; "time (ms)" ]
    rows;
  print_endline "The dedicated protocol ships per-key statistics instead of tuples; the";
  print_endline "homomorphic strategy reduces the client's view to one ciphertext per aggregate."

(* ------------------------------------------------------------------ *)
(* E4 — selection queries over one encrypted relation (the original DAS
   query class). *)

let selection () =
  Bench_util.heading
    "E4 — DAS selection over one encrypted relation: selectivity vs partitions";
  let rows = 256 in
  let inventory =
    Relation.of_rows
      (Schema.of_list [ ("sku", Value.Tint); ("price", Value.Tint) ])
      (List.init rows (fun i -> [ Value.Int i; Value.Int (7 * i mod 1000) ]))
  in
  let dummy = Relation.of_rows (Schema.of_list [ ("x", Value.Tint) ]) [ [ Value.Int 0 ] ] in
  let env =
    Env.two_source ~params:bench_params ~seed:3 ~left:("Inventory", inventory)
      ~right:("Dummy", dummy) ()
  in
  let client = Env.make_client env ~identity:"sel" ~properties:[ [] ] in
  let table_rows =
    List.concat_map
      (fun threshold ->
        let query = Printf.sprintf "select * from Inventory where price < %d" threshold in
        List.map
          (fun k ->
            let strategy =
              if k >= rows then Das_partition.Singleton else Das_partition.Equi_depth k
            in
            let o = Select_query.run ~strategy env client ~query in
            let exact = Relation.cardinality o.Outcome.exact in
            [
              string_of_int threshold;
              Das_partition.strategy_name strategy;
              string_of_int exact;
              string_of_int o.Outcome.client_received_tuples;
              Printf.sprintf "%.2fx"
                (float_of_int o.Outcome.client_received_tuples
                /. float_of_int (Stdlib.max 1 exact));
              string_of_bool (Outcome.correct o);
            ])
          [ 4; 16; 64 ])
      [ 100; 500 ]
  in
  Bench_util.print_table
    ~headers:[ "price <"; "partitioning"; "exact"; "returned"; "superset"; "correct" ]
    table_rows;
  print_endline "Finer partitioning tightens the superset the mediator returns, at the";
  print_endline "cost of a more revealing index — the same trade-off as P5, now for the";
  print_endline "selection workload of the original DAS papers."

(* ------------------------------------------------------------------ *)
(* P5 — the DAS partition-granularity trade-off (Section 3/6, refs [15,8]). *)

let das_tradeoff () =
  Bench_util.heading
    "P5 — DAS trade-off: partition granularity vs superset size vs index disclosure";
  let spec = spec_for_domain 16 in
  let env, client, query = scenario ~spec () in
  let left, _ = Workload.generate spec in
  let column = Relation.column left "a_join" in
  let rows =
    List.map
      (fun k ->
        let strategy =
          if k >= spec.Workload.distinct_left then Das_partition.Singleton
          else Das_partition.Equi_depth k
        in
        let o = Protocol.run_exn (Protocol.Das (strategy, Das.Pair_index)) env client ~query in
        let table =
          Das_partition.build strategy ~relation:"R1" ~attr:"a_join"
            (Relation.active_domain left "a_join")
        in
        [
          Das_partition.strategy_name strategy;
          string_of_int (Das_partition.partition_count table);
          string_of_int o.Outcome.client_received_tuples;
          Printf.sprintf "%.2fx" (Outcome.superset_factor o);
          Printf.sprintf "%.2f" (Das_partition.disclosure_bits table column);
          (if Outcome.correct o then "yes" else "NO");
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  Bench_util.print_table
    ~headers:
      [ "partitioning"; "partitions"; "pairs received"; "superset"; "index leakage (bits)";
        "correct" ]
    rows;
  print_endline "Expected shape (paper §3: \"small partitions ... are more efficient ... but";
  print_endline "can leak confidential information\"): superset factor falls and index";
  print_endline "disclosure rises monotonically as partitions get finer."

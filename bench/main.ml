(* Benchmark harness entry point.

   Each subcommand regenerates one of the paper's evaluation artifacts
   (see DESIGN.md §4 for the experiment index); running with no arguments
   executes the full suite, as expected by EXPERIMENTS.md. *)

open Cmdliner

let default_sizes = [ 4; 8; 16; 32 ]

let sizes_arg =
  let doc = "Active-domain sizes for the sweep (comma-separated)." in
  Arg.(value & opt (list int) default_sizes & info [ "sizes" ] ~docv:"N,N,..." ~doc)

let degrees_arg =
  let doc = "Polynomial degrees for the Horner ablation." in
  Arg.(value & opt (list int) [ 4; 8; 16; 32 ] & info [ "degrees" ] ~docv:"N,N,..." ~doc)

let rounds_arg =
  let doc =
    "Measurement rounds per sample for the JSON emitters (lower it to 1-2 for a CI \
     smoke run)."
  in
  Arg.(value & opt int 7 & info [ "rounds" ] ~docv:"N" ~doc)

let smoke_arg =
  let doc = "Shrink the concurrency sweep to 1/2/4/8 for a CI smoke run." in
  Arg.(value & flag & info [ "smoke" ] ~doc)

let experiments : (string * string * (unit -> unit) Term.t) list =
  [
    ("table1", "Table 1: extra information disclosed to client and mediator",
     Term.(const (fun () () -> Experiments.table1 ()) $ const ()));
    ("table2", "Table 2: applied cryptographic primitives",
     Term.(const (fun () () -> Experiments.table2 ()) $ const ()));
    ("figure1", "Figure 1: basic mediated system (flow diagram)",
     Term.(const (fun () () -> Experiments.figure1 ()) $ const ()));
    ("figure2", "Figure 2: credential-based MMM (flow diagram)",
     Term.(const (fun () () -> Experiments.figure2 ()) $ const ()));
    ("rounds", "P1: interactions with the mediator per party",
     Term.(const (fun () () -> Experiments.rounds ()) $ const ()));
    ("perf", "P2: wall clock vs active-domain size",
     Term.(const (fun sizes () -> Experiments.perf ~sizes ()) $ sizes_arg));
    ("comm", "P3: communication volume vs active-domain size",
     Term.(const (fun sizes () -> Experiments.comm ~sizes ()) $ sizes_arg));
    ("postproc", "P4: client-side burden per protocol",
     Term.(const (fun () () -> Experiments.postproc ()) $ const ()));
    ("das-tradeoff", "P5: DAS partition granularity trade-off",
     Term.(const (fun () () -> Experiments.das_tradeoff ()) $ const ()));
    ("security-sweep", "P6: protocol cost vs security parameters",
     Term.(const (fun () () -> Experiments.security_sweep ()) $ const ()));
    ("skew", "P7: skewed join-value distributions",
     Term.(const (fun () () -> Experiments.skew_sweep ()) $ const ()));
    ("chain", "E1: successive joins over 2/3/4-source chains",
     Term.(const (fun () () -> Experiments.chain ()) $ const ()));
    ("setops", "E2: secure set operations (intersection/difference/semi-join)",
     Term.(const (fun () () -> Experiments.setops_experiment ()) $ const ()));
    ("aggregation", "E3: encrypted aggregation vs join-then-aggregate",
     Term.(const (fun () () -> Experiments.aggregation ()) $ const ()));
    ("selection", "E4: DAS selection over one encrypted relation",
     Term.(const (fun () () -> Experiments.selection ()) $ const ()));
    ("ablation-pm", "A1: PM direct payload vs session keys",
     Term.(const (fun () () -> Ablations.pm_payload ()) $ const ()));
    ("ablation-das", "A2: DAS mediator pair-index vs nested loop",
     Term.(const (fun sizes () -> Ablations.das_server_eval ~sizes ()) $ sizes_arg));
    ("ablation-horner", "A3: homomorphic Horner vs naive evaluation",
     Term.(const (fun degrees () -> Ablations.horner ~degrees ()) $ degrees_arg));
    ("ablation-karatsuba", "A4: bigint Karatsuba threshold",
     Term.(const (fun () () -> Ablations.karatsuba ()) $ const ()));
    ("ablation-montgomery", "A5: Montgomery vs plain modular exponentiation",
     Term.(const (fun () () -> Ablations.montgomery ()) $ const ()));
    ("ablation-setops", "A6: lean set-operation protocols vs join-based",
     Term.(const (fun () () -> Ablations.setops ()) $ const ()));
    ("ablation-das-settings", "A7: DAS translator placement",
     Term.(const (fun () () -> Ablations.das_settings ()) $ const ()));
    ("micro", "Bechamel microbenchmarks of the crypto primitives",
     Term.(const (fun () () -> Ablations.micro ()) $ const ()));
    ("json", "Write BENCH_modexp.json and BENCH_protocols.json (full machine-readable record)",
     Term.(const (fun sizes rounds () ->
               Ablations.modexp_json ~rounds ~sizes ();
               Protocols_json.write ~sizes ())
           $ sizes_arg $ rounds_arg));
    ("json-protocols", "Write only BENCH_protocols.json: per-scheme/phase/party costs",
     Term.(const (fun sizes () -> Protocols_json.write ~sizes ()) $ sizes_arg));
    ("json-resilience",
     "Write BENCH_resilience.json: session recovery latency and degradation rates under \
      seeded fault plans",
     Term.(const (fun () () -> Resilience_json.write ()) $ const ()));
    ("json-net",
     "Write BENCH_net.json: in-process vs loopback-TCP cost per scheme, with socket-level \
      byte accounting",
     Term.(const (fun () () -> Net_json.write ()) $ const ()));
    ("json-serve",
     "Write BENCH_serve.json: loadgen throughput and latency percentiles per scheme at \
      increasing session concurrency, clean vs chaos",
     Term.(const (fun smoke () -> Serve_json.write ~smoke ()) $ smoke_arg));
    ("json-stream",
     "Write BENCH_stream.json: chunked streaming throughput with bounded-memory high-water \
      marks (unsharded and k=4), protocol-level stream flatness, and receive-buffer reuse \
      allocation counts",
     Term.(const (fun smoke () -> Stream_json.write ~smoke ()) $ smoke_arg));
  ]

let run_all () =
  print_endline "secmed benchmark harness — full reproduction run";
  print_endline "(see DESIGN.md section 4 for the experiment index and EXPERIMENTS.md";
  print_endline " for paper-vs-measured records)";
  Experiments.table1 ();
  Experiments.table2 ();
  Experiments.figure1 ();
  Experiments.figure2 ();
  Experiments.rounds ();
  Experiments.perf ~sizes:default_sizes ();
  Experiments.comm ~sizes:default_sizes ();
  Experiments.postproc ();
  Experiments.das_tradeoff ();
  Experiments.security_sweep ();
  Experiments.skew_sweep ();
  Experiments.chain ();
  Experiments.setops_experiment ();
  Experiments.aggregation ();
  Experiments.selection ();
  Ablations.pm_payload ();
  Ablations.das_server_eval ~sizes:[ 4; 8; 16 ] ();
  Ablations.horner ~degrees:[ 4; 8; 16 ] ();
  Ablations.karatsuba ();
  Ablations.montgomery ();
  Ablations.setops ();
  Ablations.das_settings ();
  Ablations.micro ()

let commands =
  List.map
    (fun (name, doc, term) ->
      Cmd.v (Cmd.info name ~doc) Term.(const (fun f -> f ()) $ term))
    experiments

let all_cmd = Cmd.v (Cmd.info "all" ~doc:"Run every experiment") Term.(const run_all $ const ())

let () =
  let info =
    Cmd.info "secmed-bench" ~version:"1.0"
      ~doc:"Regenerates the evaluation artifacts of 'Secure Mediation of Join Queries by \
            Processing Ciphertexts' (ICDE 2007)"
  in
  let default = Term.(const run_all $ const ()) in
  exit (Cmd.eval (Cmd.group ~default info (all_cmd :: commands)))

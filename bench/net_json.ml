(* BENCH_net.json: the cost of distributing the mediation — per scheme,
   one in-process run against the same query served by a real forked
   mediator/datasource cluster on 127.0.0.1 (DESIGN.md §11).  Each entry
   records both wall clocks, the canonical transcript totals, the
   client's raw socket byte counters (framing overhead rides on top of
   the payloads), and whether the distributed result was bit-identical
   to the in-process one.  The schema is validated by
   `secmed check-bench` (and by make check-net in CI). *)

open Secmed_mediation
open Secmed_core
open Secmed_net
module Json = Secmed_obs.Json

let small_spec =
  {
    Workload.default with
    rows_left = 12;
    rows_right = 12;
    distinct_left = 6;
    distinct_right = 6;
    overlap = 3;
    extra_attrs = 1;
    seed = 2007;
  }

let schemes = [ "plain"; "das"; "commutative"; "pm"; "mobile-code" ]

let timed f =
  let t0 = Secmed_obs.Clock.now_ns () in
  let r = f () in
  (r, Secmed_obs.Clock.ns_to_s (Secmed_obs.Clock.elapsed_ns ~since:t0))

let entry c name =
  let scheme = Option.get (Protocol.scheme_of_name name) in
  let reference, seconds_inproc =
    timed (fun () ->
        Protocol.run_exn scheme (Loopback.env c) (Loopback.client_of c)
          ~query:(Loopback.canonical_query c))
  in
  let response, seconds_net = timed (fun () -> Loopback.query c ~scheme:name ()) in
  let outcome =
    match response.Peer.result with
    | Protocol.Served o -> o
    | Protocol.Unserved _ -> failwith (name ^ ": unserved over loopback")
  in
  let tr = outcome.Outcome.transcript in
  let sock_in, sock_out = response.Peer.socket_bytes in
  let matches =
    String.equal
      (Secmed_relalg.Relation.to_string reference.Outcome.result)
      (Secmed_relalg.Relation.to_string outcome.Outcome.result)
    && Transcript.total_bytes reference.Outcome.transcript = Transcript.total_bytes tr
    && Transcript.message_count reference.Outcome.transcript = Transcript.message_count tr
  in
  Json.Obj
    [
      ("scheme", Json.Str name);
      ("seconds_inproc", Json.Float seconds_inproc);
      ("seconds_net", Json.Float seconds_net);
      ("messages", Json.Int (Transcript.message_count tr));
      ("bytes", Json.Int (Transcript.total_bytes tr));
      ("socket_bytes_in", Json.Int sock_in);
      ("socket_bytes_out", Json.Int sock_out);
      ("epochs", Json.Int response.Peer.epochs);
      ("match", Json.Bool matches);
    ]

let write ?(path = "BENCH_net.json") () =
  let entries =
    Loopback.with_cluster ~params:Experiments.bench_params ~spec:small_spec @@ fun c ->
    List.map (entry c) schemes
  in
  let json =
    Json.Obj
      [
        ( "params",
          Json.Obj
            [
              ("group_bits", Json.Int Experiments.bench_params.Env.group_bits);
              ("paillier_bits", Json.Int Experiments.bench_params.Env.paillier_bits);
            ] );
        ("net", Json.List entries);
      ]
  in
  let contents = Json.to_string_pretty json ^ "\n" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n" path (String.length contents)

(* BENCH_protocols.json: machine-readable end-to-end protocol costs —
   per scheme and domain size, wall clock split by phase, and bytes /
   sends / rounds / crypto-primitive counts split by party.  The schema
   is validated by `secmed check-bench` (and by make check-obs in CI),
   so downstream tooling can rely on the keys staying put. *)

open Secmed_crypto
open Secmed_mediation
open Secmed_core
module Json = Secmed_obs.Json

let counts_json counts =
  Json.Obj
    (List.filter_map
       (fun (p, n) -> if n = 0 then None else Some (Counters.name p, Json.Int n))
       counts)

(* The per-party view: communication from the transcript, crypto ops per
   phase from the scoped attribution. *)
let parties_json outcome =
  let tr = outcome.Outcome.transcript in
  Json.Obj
    (List.map
       (fun party ->
         let name = Transcript.party_name party in
         let phases =
           List.filter_map
             (fun ((p, phase), counts) ->
               if String.equal p name then Some (phase, counts_json counts) else None)
             outcome.Outcome.attributed
         in
         ( name,
           Json.Obj
             [
               ("bytes_sent", Json.Int (Transcript.bytes_sent_by tr party));
               ("bytes_received", Json.Int (Transcript.bytes_received_by tr party));
               ("messages_sent", Json.Int (Transcript.sends_by tr party));
               ("ops_by_phase", Json.Obj phases);
             ] ))
       (Transcript.parties tr))

let rounds_json outcome =
  let tr = outcome.Outcome.transcript in
  Json.Obj
    (List.filter_map
       (fun party ->
         if Transcript.party_equal party Transcript.Mediator then None
         else
           Some
             ( Transcript.party_name party,
               Json.Int (Transcript.rounds tr party Transcript.Mediator) ))
       (Transcript.parties tr))

let entry ~size scheme env client ~query =
  let t0 = Secmed_obs.Clock.now_ns () in
  let outcome = Protocol.run_exn scheme env client ~query in
  let seconds = Secmed_obs.Clock.ns_to_s (Secmed_obs.Clock.elapsed_ns ~since:t0) in
  let tr = outcome.Outcome.transcript in
  Json.Obj
    [
      ("scheme", Json.Str (Protocol.scheme_name scheme));
      ("domain_size", Json.Int size);
      ("correct", Json.Bool (Outcome.correct outcome));
      ("seconds", Json.Float seconds);
      ( "phases",
        Json.Obj (List.map (fun (phase, s) -> (phase, Json.Float s)) outcome.Outcome.timings)
      );
      ("parties", parties_json outcome);
      ("messages", Json.Int (Transcript.message_count tr));
      ("bytes", Json.Int (Transcript.total_bytes tr));
      ("rounds", rounds_json outcome);
      ("counters", counts_json outcome.Outcome.counters);
    ]

let write ?(path = "BENCH_protocols.json") ~sizes () =
  let entries =
    List.concat_map
      (fun size ->
        let env, client, query =
          Workload.scenario ~params:Experiments.bench_params
            (Experiments.spec_for_domain size)
        in
        List.map (fun scheme -> entry ~size scheme env client ~query) Protocol.all_schemes)
      sizes
  in
  let json =
    Json.Obj
      [
        ( "params",
          Json.Obj
            [
              ("group_bits", Json.Int Experiments.bench_params.Env.group_bits);
              ("paillier_bits", Json.Int Experiments.bench_params.Env.paillier_bits);
            ] );
        ("sizes", Json.List (List.map (fun s -> Json.Int s) sizes));
        ("schemes", Json.List entries);
      ]
  in
  let contents = Json.to_string_pretty json ^ "\n" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n" path (String.length contents)

(* BENCH_resilience.json: recovery behaviour of the mediation session
   layer under seeded fault plans — per scenario, how long the session
   took to serve (or give up on) the query, how many end-to-end attempts
   it burned, whether it degraded to a fallback scheme, and how often the
   per-party circuit breakers moved.  The schema is validated by
   `secmed check-bench` (and by make check-resilience in CI). *)

open Secmed_mediation
open Secmed_core
module R = Resilience
module Json = Secmed_obs.Json

(* Tiny backoff keeps the suite CI-fast while still exercising the
   schedule; all fault plans are seeded, so runs are reproducible. *)
let bench_policy ?deadline () =
  {
    R.deadline_budget = deadline;
    retry_backoff = R.backoff ~base:0.001 ~max_delay:0.01 ~seed:2007 ();
    breaker_config = R.default_breaker;
  }

let small_spec =
  {
    Workload.default with
    rows_left = 12;
    rows_right = 12;
    distinct_left = 6;
    distinct_right = 6;
    overlap = 3;
    extra_attrs = 1;
    seed = 2007;
  }

type scenario = {
  name : string;
  scheme : Protocol.scheme;
  plan : unit -> Fault.plan option;  (* fresh per run: plans are mutable *)
  deadline : float option;
  fallback : bool;
}

let pm = Protocol.Private_matching Pm_join.Session_keys

let scenarios =
  [
    { name = "clean"; scheme = pm; plan = (fun () -> None); deadline = Some 30.0;
      fallback = true };
    {
      name = "transient-drop";
      scheme = pm;
      plan = (fun () -> Some (Fault.plan ~max_retries:2 [ Fault.rule ~times:1 Fault.Drop ]));
      deadline = Some 30.0;
      fallback = true;
    };
    {
      name = "persistent-drop-degrade";
      (* Only PM's delivery label is dropped, so the chain recovers via
         the commutative fallback. *)
      scheme = pm;
      plan =
        (fun () -> Some (Fault.plan ~max_retries:2 [ Fault.rule ~label:"e-values" Fault.Drop ]));
      deadline = Some 30.0;
      fallback = true;
    };
    {
      name = "byzantine-degrade";
      scheme = pm;
      plan =
        (fun () ->
          Some (Fault.plan ~max_retries:2 ~byzantine:[ (1, Fault.Garbage_paillier) ] []));
      deadline = Some 30.0;
      fallback = true;
    };
    {
      name = "deadline-trip";
      scheme = pm;
      plan = (fun () -> Some (Fault.plan ~max_retries:0 [ Fault.rule (Fault.Delay 0.5) ]));
      deadline = Some 0.05;
      fallback = false;
    };
  ]

(* Every protocol attempt roots one Protocol trace span, so the span
   count is the number of end-to-end attempts across the whole
   degradation chain. *)
let measure_session f =
  let t0 = Secmed_obs.Clock.now_ns () in
  let result, trace = Secmed_obs.Trace.collect f in
  let seconds = Secmed_obs.Clock.ns_to_s (Secmed_obs.Clock.elapsed_ns ~since:t0) in
  let attempts =
    List.length
      (List.filter
         (fun s -> s.Secmed_obs.Trace.kind = Secmed_obs.Trace.Protocol)
         (Secmed_obs.Trace.spans trace))
  in
  (result, seconds, attempts)

let breaker_transition_count session =
  List.fold_left
    (fun acc b -> acc + List.length (R.breaker_transitions b))
    0 (R.breakers session)

let entry_json s ~outcome_kind ~degraded_from ~correct ~failures ~attempts ~seconds
    ~transitions =
  Json.Obj
    [
      ("scenario", Json.Str s.name);
      ("scheme", Json.Str (Protocol.scheme_name s.scheme));
      ("outcome", Json.Str outcome_kind);
      ( "degraded_from",
        match degraded_from with None -> Json.Null | Some d -> Json.Str d );
      ("correct", match correct with None -> Json.Null | Some b -> Json.Bool b);
      ("attempts", Json.Int attempts);
      ("seconds", Json.Float seconds);
      ( "deadline_budget",
        match s.deadline with None -> Json.Null | Some d -> Json.Float d );
      ("breaker_transitions", Json.Int transitions);
      ("schemes_failed", Json.List (List.map (fun n -> Json.Str n) failures));
    ]

let run_scenario env client query s =
  let session = R.session ~policy:(bench_policy ?deadline:s.deadline ()) () in
  let plan = s.plan () in
  let chain = if s.fallback then Protocol.degradation_chain s.scheme else [] in
  let result, seconds, attempts =
    measure_session (fun () ->
        Protocol.run_session ?fault:plan ~session ~chain s.scheme env client ~query)
  in
  let transitions = breaker_transition_count session in
  let outcome_kind, degraded_from, correct, failures =
    match result with
    | Protocol.Served o ->
      ( (if o.Outcome.degraded_from = None then "served" else "degraded"),
        o.Outcome.degraded_from,
        Some (Outcome.correct o),
        [] )
    | Protocol.Unserved tried ->
      ("failed", None, None, List.map (fun (scheme, _) -> scheme) tried)
  in
  entry_json s ~outcome_kind ~degraded_from ~correct ~failures ~attempts ~seconds
    ~transitions

(* A long-lived session: the same byzantine source across successive
   queries trips its breaker, and the next query is short-circuited
   without contacting anybody. *)
let breaker_scenario env client query =
  let s =
    { name = "breaker-short-circuit"; scheme = pm; plan = (fun () -> None);
      deadline = Some 30.0; fallback = false }
  in
  let policy =
    {
      (bench_policy ?deadline:s.deadline ()) with
      R.breaker_config =
        { R.default_breaker with R.min_samples = 2; window = 4; cooldown = 60.0 };
    }
  in
  let session = R.session ~policy () in
  let byzantine () = Some (Fault.plan ~max_retries:0 ~byzantine:[ (1, Fault.Garbage_paillier) ] []) in
  let result, seconds, attempts =
    measure_session (fun () ->
        (* Two poisoned queries open source 1's breaker ... *)
        let _ = Protocol.run_session ?fault:(byzantine ()) ~session ~chain:[] s.scheme env client ~query in
        let _ = Protocol.run_session ?fault:(byzantine ()) ~session ~chain:[] s.scheme env client ~query in
        (* ... so the third (clean!) query is refused up front. *)
        Protocol.run_session ~session ~chain:[] s.scheme env client ~query)
  in
  let failures =
    match result with
    | Protocol.Served _ -> []
    | Protocol.Unserved tried -> List.map (fun (_, f) -> f.Protocol.phase) tried
  in
  entry_json s
    ~outcome_kind:(match result with Protocol.Served _ -> "served" | _ -> "short-circuited")
    ~degraded_from:None ~correct:None ~failures ~attempts ~seconds
    ~transitions:(breaker_transition_count session)

let write ?(path = "BENCH_resilience.json") () =
  let env, client, query = Workload.scenario ~params:Experiments.bench_params small_spec in
  let entries =
    List.map (run_scenario env client query) scenarios
    @ [ breaker_scenario env client query ]
  in
  let json =
    Json.Obj
      [
        ( "params",
          Json.Obj
            [
              ("group_bits", Json.Int Experiments.bench_params.Env.group_bits);
              ("paillier_bits", Json.Int Experiments.bench_params.Env.paillier_bits);
            ] );
        ("scenarios", Json.List entries);
      ]
  in
  let contents = Json.to_string_pretty json ^ "\n" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n" path (String.length contents)

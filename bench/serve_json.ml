(* BENCH_serve.json: sustained-load serving under concurrency — a
   deterministic {!Secmed_net.Loadgen} fleet against a forked loopback
   cluster at 1/8/64/256 concurrent sessions (--smoke: 1/2/4/8), each
   level measured clean and under chaos (a times-bounded corrupt proxy
   on source 1's link plus a retry budget).  Each entry records
   throughput, outcome counts (the typed [Refused] column is the
   mediator's admission backpressure), and latency percentiles overall
   and per scheme.  The schema is validated by `secmed check-bench`
   (and by make check-serve in CI). *)

open Secmed_mediation
open Secmed_core
open Secmed_net
module Json = Secmed_obs.Json
module Metrics = Secmed_obs.Metrics

let small_spec =
  {
    Workload.default with
    rows_left = 12;
    rows_right = 12;
    distinct_left = 6;
    distinct_right = 6;
    overlap = 3;
    extra_attrs = 1;
    seed = 2007;
  }

(* Bounded chaos: two corrupted frames, each of which severs one pooled
   mediator->source connection and so faults *every* session bound to
   that slot at once.  The retry budget in the query's fault spec is
   sized for that amplification — a session can be hit by both events
   plus a redial race and still recover. *)
let chaos_plan () =
  match Fault.of_spec "corrupt:mediator->source1:times=2" with
  | Ok plan -> plan
  | Error e -> failwith ("serve_json: bad chaos spec: " ^ e)

let chaos_fault_spec = "retries=4"

(* The sweep's chaos rows measure sever → retry → redial recovery, so
   the source breakers must stay closed: one corrupted frame severs a
   pooled mediator->source connection and fails every session bound to
   that slot at once, instantly tripping a rate breaker — and a
   short-circuit is terminal for the whole query (by design: an open
   breaker refuses up front), so any session whose ~50ms first backoff
   lands inside the cooldown is stranded with budget to spare.  A
   threshold above 1.0 can never be reached, which disables tripping
   without touching the rest of the policy; the breaker's trip and
   half-open behavior is pinned by its own tests. *)
let bench_policy =
  {
    Resilience.default_policy with
    breaker_config = { Resilience.default_breaker with failure_threshold = 2.0 };
  }

let ms h q = Metrics.quantile h q *. 1000.

let scheme_entry elapsed (scheme, h) =
  let sessions = Metrics.histogram_count h in
  Json.Obj
    [
      ("scheme", Json.Str scheme);
      ("sessions", Json.Int sessions);
      ("qps", Json.Float (if elapsed <= 0. then 0. else float_of_int sessions /. elapsed));
      ("p50_ms", Json.Float (ms h 0.5));
      ("p95_ms", Json.Float (ms h 0.95));
      ("p99_ms", Json.Float (ms h 0.99));
    ]

let level_entry ~mode ~concurrency ~sessions_per_worker report =
  let count k = Loadgen.count k report in
  Json.Obj
    [
      ("mode", Json.Str mode);
      ("concurrency", Json.Int concurrency);
      ("sessions_per_worker", Json.Int sessions_per_worker);
      ("sessions", Json.Int (List.length report.Loadgen.records));
      ("seconds", Json.Float report.Loadgen.elapsed);
      ("qps", Json.Float (Loadgen.qps report));
      ("served", Json.Int (count Loadgen.Served));
      ("degraded", Json.Int (count Loadgen.Degraded));
      ("unserved", Json.Int (count Loadgen.Unserved));
      ("refused", Json.Int (count Loadgen.Refused));
      ("failed", Json.Int (count Loadgen.Failed));
      ("p50_ms", Json.Float (ms report.Loadgen.latency 0.5));
      ("p95_ms", Json.Float (ms report.Loadgen.latency 0.95));
      ("p99_ms", Json.Float (ms report.Loadgen.latency 0.99));
      ( "schemes",
        Json.List (List.map (scheme_entry report.Loadgen.elapsed) report.Loadgen.per_scheme)
      );
    ]

let run_level ?(trace = false) ~mode ~concurrency ~sessions_per_worker () =
  let chaos, fault_spec =
    match mode with
    | "chaos" -> ([ (1, chaos_plan ()) ], chaos_fault_spec)
    | _ -> ([], "")
  in
  (* A per-operation timeout scaled to the offered concurrency: at
     64-256 concurrent drivers the runtime is saturated and frame
     exchanges legitimately take tens of seconds — the sweep measures
     queueing delay, and must not let the io_timeout misread saturation
     as link faults (which retry, degrade, and amplify the very
     overload being measured). *)
  let io_timeout = Float.max 60. (0.75 *. float_of_int concurrency) in
  Loopback.with_cluster ~params:Experiments.bench_params ~policy:bench_policy
    ~spec:small_spec ~chaos ~max_sessions:concurrency ~workers:concurrency ~io_timeout
  @@ fun c ->
  let config =
    {
      Loadgen.default_config with
      workers = concurrency;
      sessions_per_worker;
      (* Workers stay systhreads in the bench: the harness forks a fresh
         cluster per level, and OCaml forbids Unix.fork once any domain
         has been spawned. *)
      domains = 1;
      seed = Printf.sprintf "serve-%s-%d" mode concurrency;
      fault_spec;
      io_timeout;
      trace;
    }
  in
  let report = Loadgen.run config (Loopback.target c) in
  Printf.printf "  %-5s c=%-3d %s%!" mode concurrency (Loadgen.render report);
  level_entry ~mode ~concurrency ~sessions_per_worker report

(* The cost of observing: the same clean closed-loop level twice, spans
   off vs spans on (collectors in every process, batches shipped and
   forwarded).  Separate clusters so the off run carries no residue. *)
let run_tracing_overhead ~concurrency ~sessions_per_worker =
  Printf.printf "  tracing overhead at c=%d\n%!" concurrency;
  let qps_of entry =
    match Json.member "qps" entry with
    | Some (Json.Float q) -> q
    | Some (Json.Int q) -> float_of_int q
    | _ -> 0.
  in
  let off = run_level ~mode:"clean" ~concurrency ~sessions_per_worker () in
  let on = run_level ~trace:true ~mode:"clean" ~concurrency ~sessions_per_worker () in
  let qps_off = qps_of off and qps_on = qps_of on in
  let overhead_pct =
    if qps_on <= 0. then 0. else 100. *. ((qps_off /. qps_on) -. 1.)
  in
  Json.Obj
    [
      ("concurrency", Json.Int concurrency);
      ("sessions_per_worker", Json.Int sessions_per_worker);
      ("qps_off", Json.Float qps_off);
      ("qps_on", Json.Float qps_on);
      ("overhead_pct", Json.Float overhead_pct);
      ("tracing_off", off);
      ("tracing_on", on);
    ]

(* The failover row: a seeded chaos soak (process SIGKILLs + a mediator
   drain-restart under load, every invariant checked) distilled into
   availability numbers.  Runs first: Soak.run forks its supervisor on
   entry, and the cleanest fork is one taken before this process has
   spawned any fleet thread. *)
let run_failover ~smoke =
  let cfg =
    {
      Secmed_net.Soak.default_config with
      params = Some Experiments.bench_params;
      spec = small_spec;
      workers = 4;
      sessions_per_worker = (if smoke then 6 else 12);
      standbys = 1;
      kills = 4;
      drains = 1;
      seed = "serve-failover";
      rate = (if smoke then 12. else 10.);
      verify = true;
    }
  in
  Printf.printf "  failover soak: %d kills + %d drains over %d sessions\n%!" cfg.kills
    cfg.drains
    (cfg.workers * cfg.sessions_per_worker);
  let report = Soak.run cfg in
  Printf.printf "%s%!" (Soak.render report);
  if not (Soak.ok report) then failwith "serve_json: failover soak violated invariants";
  Soak.summary_json report

let write ?(smoke = false) ?(path = "BENCH_serve.json") () =
  let levels = if smoke then [ 1; 2; 4; 8 ] else [ 1; 8; 64; 256 ] in
  let sessions_per_worker = 2 in
  Printf.printf "json-serve: loadgen sweep at concurrency %s\n%!"
    (String.concat "/" (List.map string_of_int levels));
  let failover = run_failover ~smoke in
  let entries =
    List.concat_map
      (fun concurrency ->
        List.map
          (fun mode -> run_level ~mode ~concurrency ~sessions_per_worker ())
          [ "clean"; "chaos" ])
      levels
  in
  let overhead =
    run_tracing_overhead ~concurrency:(if smoke then 8 else 64) ~sessions_per_worker
  in
  let json =
    Json.Obj
      [
        ( "params",
          Json.Obj
            [
              ("group_bits", Json.Int Experiments.bench_params.Env.group_bits);
              ("paillier_bits", Json.Int Experiments.bench_params.Env.paillier_bits);
              ("smoke", Json.Bool smoke);
            ] );
        ("serve", Json.List entries);
        ("failover", failover);
        ("tracing_overhead", overhead);
      ]
  in
  let contents = Json.to_string_pretty json ^ "\n" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n" path (String.length contents)

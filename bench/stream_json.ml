(* BENCH_stream.json: the data-axis scaling story (DESIGN.md §16).
   Three sections:

   - "stream": raw chunked transfer through the credit-flow-controlled
     send_rows/recv_rows pair over real socketpairs, swept across row
     counts (and a sharded k=4 run at the top scale).  The point of the
     sweep is the high-water column: the receiver's merge window must
     stay bounded by one chunk per shard while the relation grows by
     1,000x — memory flat in rows, measured, not asserted.
   - "protocol_stream": das/commutative/pm served by a real forked
     cluster at growing per-source row counts; records the client-side
     stream high-water mark next to the transcript volume so the same
     flatness is visible end to end.
   - "io_alloc": allocation per received frame on the reused
     reserve/commit receive path against the naive
     fresh-buffer-per-read baseline it replaced (Gc.minor_words,
     before/after).

   Schema is validated by `secmed check-bench` and exercised by
   `make check-stream` in CI. *)

open Secmed_mediation
open Secmed_core
open Secmed_net
module Obs = Secmed_obs
module Json = Secmed_obs.Json

let timed f =
  let t0 = Obs.Clock.now_ns () in
  let r = f () in
  (r, Obs.Clock.ns_to_s (Obs.Clock.elapsed_ns ~since:t0))

(* ------------------------------------------------------------------ *)
(* Section "stream": transport-level transfer, unsharded and sharded. *)

let socket_pair () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (Io.of_fd ~peer:"bench-a" a, Io.of_fd ~peer:"bench-b" b)

let make_leg () =
  let a, b = socket_pair () in
  let ma = Endpoint.Mux.create a and mb = Endpoint.Mux.create b in
  Endpoint.Mux.subscribe ma 7;
  Endpoint.Mux.subscribe mb 7;
  let route m =
    Endpoint.plain_route
      ~send:(Endpoint.Mux.send m)
      ~next:(fun ~timeout -> Endpoint.Mux.next m ~session:7 ~timeout)
  in
  ((a, b), route ma, route mb)

let transport_for ~role ~shard ~counterpart route =
  Endpoint.transport ~role ~session:7 ~epoch:(fun () -> 1) ~io_timeout:30.
    ~route_of:(fun p -> if Transcript.party_equal p counterpart then Some route else None)
    ~shard ()

let row_bytes = 256

let rows_fixture n =
  List.init n (fun i -> (i, String.init row_bytes (fun j -> Char.chr ((i + j) mod 256))))

let stream_of tr = Option.get tr.Link.rows

let peak name = Obs.Hwm.peak (Obs.Hwm.region name)

let transfer ~shards:k ~rows:n =
  Obs.Hwm.reset ();
  let legs = List.init k (fun _ -> make_leg ()) in
  let conns = List.concat_map (fun ((a, b), _, _) -> [ a; b ]) legs in
  Fun.protect ~finally:(fun () -> List.iter Io.close conns) @@ fun () ->
  let rows = rows_fixture n in
  let size = Stream.total_bytes rows in
  let senders =
    List.mapi
      (fun j ((_, _), s_route, _) ->
        let tr =
          transport_for ~role:(Transcript.Source 1) ~shard:(j, k)
            ~counterpart:Transcript.Mediator s_route
        in
        Thread.create
          (fun () ->
            (stream_of tr).Link.send_rows ~phase:"bench" ~seq:0
              ~sender:(Transcript.Source 1) ~receiver:Transcript.Mediator ~label:"B"
              ~size rows)
          ())
      legs
  in
  let receiver_route =
    match List.map (fun ((_, _), _, r) -> r) legs with
    | [ r ] -> r
    | r0 :: _ as all ->
      {
        Endpoint.r_send = (fun f -> List.iter (fun r -> r.Endpoint.r_send f) all);
        r_next = r0.Endpoint.r_next;
        r_sub = Some (Array.of_list all);
      }
    | [] -> invalid_arg "transfer: shards must be >= 1"
  in
  let receiver =
    transport_for ~role:Transcript.Mediator ~shard:(0, 1)
      ~counterpart:(Transcript.Source 1) receiver_route
  in
  let (), seconds =
    timed (fun () ->
        (stream_of receiver).Link.recv_rows ~phase:"bench" ~seq:0
          ~sender:(Transcript.Source 1) ~receiver:Transcript.Mediator ~label:"B" ~size
          ~expect:rows)
  in
  List.iter Thread.join senders;
  let pending = peak "stream.pending" in
  Json.Obj
    [
      ("rows", Json.Int n);
      ("row_bytes", Json.Int row_bytes);
      ("total_bytes", Json.Int size);
      ("shards", Json.Int k);
      ("seconds", Json.Float seconds);
      ("rows_per_s", Json.Float (float_of_int n /. seconds));
      ("hwm_pending_peak", Json.Int pending);
      ( "pending_bound",
        (* One in-flight chunk per shard plus one max-sized row: the
           invariant the whole memory claim rests on. *)
        Json.Int (k * (Stream.default_chunk_bytes + row_bytes)) );
      ( "bounded",
        Json.Bool (pending > 0 && pending <= k * (Stream.default_chunk_bytes + row_bytes))
      );
      ("hwm_wire_peak", Json.Int (peak "wire.stream"));
      ("hwm_send_peak", Json.Int (peak "io.send"));
      ("backlog_after", Json.Int (Endpoint.stream_backlog ()));
    ]

let stream_section ~smoke =
  let scales = if smoke then [ 100; 1_000; 10_000 ] else [ 100; 1_000; 10_000; 100_000 ] in
  let top = List.fold_left max 0 scales in
  List.map (fun n -> transfer ~shards:1 ~rows:n) scales
  @ [ transfer ~shards:4 ~rows:top ]

(* ------------------------------------------------------------------ *)
(* Section "protocol_stream": the same flatness, end to end. *)

let spec_for rows =
  {
    Workload.default with
    rows_left = rows;
    rows_right = rows;
    distinct_left = 8;
    distinct_right = 8;
    overlap = 4;
    extra_attrs = 1;
    seed = 2016;
  }

let protocol_schemes = [ "das"; "commutative"; "pm" ]

let protocol_entry c ~rows name =
  Obs.Hwm.reset ();
  let response, seconds = timed (fun () -> Loopback.query c ~scheme:name ()) in
  let outcome =
    match response.Peer.result with
    | Protocol.Served o -> o
    | Protocol.Unserved _ -> failwith (name ^ ": unserved over loopback")
  in
  let tr = outcome.Outcome.transcript in
  Json.Obj
    [
      ("scheme", Json.Str name);
      ("rows_per_source", Json.Int rows);
      ("seconds", Json.Float seconds);
      ("messages", Json.Int (Transcript.message_count tr));
      ("bytes", Json.Int (Transcript.total_bytes tr));
      ("epochs", Json.Int response.Peer.epochs);
      (* Client-side merge window: the bench process is the client, so
         this is the client replica's own stream high-water mark. *)
      ("hwm_pending_peak", Json.Int (peak "stream.pending"));
      ("hwm_wire_peak", Json.Int (peak "wire.stream"));
    ]

let protocol_section ~smoke =
  let scales = if smoke then [ 16; 128 ] else [ 16; 128; 1024 ] in
  List.concat_map
    (fun rows ->
      Loopback.with_cluster ~params:Experiments.bench_params ~spec:(spec_for rows)
      @@ fun c -> List.map (protocol_entry c ~rows) protocol_schemes)
    scales

(* ------------------------------------------------------------------ *)
(* Section "io_alloc": reused receive buffer vs fresh-buffer baseline. *)

let frame_bytes = 4096
let batch = 8

(* Frames are pre-encoded and pushed with send_raw so the measured
   loop's allocations are (almost) all on the receive side. *)
let alloc_run ~frames make_recv =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let ca = Io.of_fd ~peer:"alloc-send" a in
  Fun.protect
    ~finally:(fun () ->
      Io.close ca;
      try Unix.close b with Unix.Unix_error _ -> ())
  @@ fun () ->
  let recv = make_recv b in
  let encoded = Wire.frame (String.make frame_bytes 'x') in
  (* Warm up both ends (grow the write buffer, first-read setup). *)
  Io.send_raw ca encoded;
  recv 1;
  (* Gc.allocated_bytes, not minor_words: the buffers at stake (64 KiB
     scratch, 4 KiB frame bodies) exceed Max_young_wosize and are
     allocated directly on the major heap. *)
  let before = Gc.allocated_bytes () in
  let rec go remaining =
    if remaining > 0 then begin
      let n = min batch remaining in
      for _ = 1 to n do
        Io.send_raw ca encoded
      done;
      recv n;
      go (remaining - n)
    end
  in
  go frames;
  let bytes = Gc.allocated_bytes () -. before in
  bytes /. float_of_int frames

(* The shipped path: Io reads land in the reassembly buffer via
   Wire.Stream.reserve/commit; one conn, one persistent buffer. *)
let reused_recv fd =
  let conn = Io.of_fd ~peer:"alloc-recv" fd in
  fun n ->
    for _ = 1 to n do
      ignore (Io.recv_frame conn)
    done

(* The old shape: a fresh scratch buffer per read, copied into the
   stream as a string. *)
let naive_recv fd =
  let s = Wire.Stream.create () in
  let rec take missing =
    if missing = 0 then 0
    else
      match Wire.Stream.next_frame s with
      | Some _ -> take (missing - 1)
      | None -> missing
  in
  fun n ->
    let rec go missing =
      let missing = take missing in
      if missing > 0 then begin
        let scratch = Bytes.create 65536 in
        let got = Unix.read fd scratch 0 65536 in
        Wire.Stream.feed s (Bytes.sub_string scratch 0 got);
        go missing
      end
    in
    go n

let io_alloc_section ~smoke =
  let frames = if smoke then 512 else 4096 in
  let reused = alloc_run ~frames reused_recv in
  let naive = alloc_run ~frames naive_recv in
  Json.Obj
    [
      ("frames", Json.Int frames);
      ("frame_bytes", Json.Int frame_bytes);
      ("alloc_bytes_per_frame_reused", Json.Float reused);
      ("alloc_bytes_per_frame_naive", Json.Float naive);
      ("naive_over_reused", Json.Float (naive /. Float.max reused 1.));
      ("reused_cheaper", Json.Bool (reused < naive));
    ]

(* ------------------------------------------------------------------ *)

let write ?(path = "BENCH_stream.json") ?(smoke = false) () =
  let stream = stream_section ~smoke in
  let protocol = protocol_section ~smoke in
  let io_alloc = io_alloc_section ~smoke in
  let json =
    Json.Obj
      [
        ( "params",
          Json.Obj
            [
              ("group_bits", Json.Int Experiments.bench_params.Env.group_bits);
              ("paillier_bits", Json.Int Experiments.bench_params.Env.paillier_bits);
              ("smoke", Json.Bool smoke);
            ] );
        ("stream", Json.List stream);
        ("protocol_stream", Json.List protocol);
        ("io_alloc", io_alloc);
      ]
  in
  let contents = Json.to_string_pretty json ^ "\n" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n" path (String.length contents)

(* secmed — command-line front end for the secure mediation library.

   `secmed run`     runs one protocol over a synthetic workload
   `secmed query`   mediates a join over two CSV files
   `secmed schemes` lists the available protocols *)

open Cmdliner
open Secmed_relalg
open Secmed_mediation
open Secmed_core

let scheme_conv =
  let parse name =
    match Protocol.scheme_of_name name with
    | Some scheme -> Ok scheme
    | None -> Error (`Msg (Printf.sprintf "unknown scheme %S (try `secmed schemes')" name))
  in
  let print fmt scheme = Format.pp_print_string fmt (Protocol.scheme_name scheme) in
  Arg.conv (parse, print)

let scheme_arg =
  let doc = "Delivery protocol: das, das-singleton, das-nested-loop, commutative, \
             commutative-ids, pm, pm-direct, mobile-code, plain." in
  Arg.(value & opt scheme_conv (Protocol.Commutative { use_ids = false })
       & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc)

let verbose_arg =
  let doc = "Also print the message transcript and leakage analysis." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

(* The raw spec string rides along with the parsed plan: a --connect
   client forwards the text so every replica re-parses the same plan. *)
let fault_conv =
  let parse s =
    match Fault.of_spec s with Ok plan -> Ok (s, plan) | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun fmt (s, _) -> Format.pp_print_string fmt s)

let fault_arg =
  let doc =
    "Fault-injection plan: semicolon-separated clauses of \
     ACTION:FROM->TO[:LABEL][:times=N] with actions drop, truncate, corrupt, duplicate, \
     delay and parties client, mediator, sourceN or *; plus byzantine:SID:MODE (modes \
     malformed-ciphertexts, wrong-partition-ids, stale-commutative-key, \
     garbage-paillier), seed=N and retries=N.  Example: \
     $(b,drop:mediator->client:RC:times=1;retries=2)."
  in
  Arg.(value & opt (some fault_conv) None & info [ "fault" ] ~docv:"SPEC" ~doc)

(* Exit codes of `secmed run` (documented in README "Resilience"):
   0 = served exactly as requested, 3 = fault (query not served),
   4 = served, but by a degradation fallback. *)
let exit_fault = 3
let exit_degraded = 4

module R = Secmed_mediation.Resilience

let deadline_arg =
  let doc =
    "Per-query wall-clock budget in seconds.  Elapsed time and injected link \
     delays (--fault delay rules) consume it; when spent, the run fails with \
     a typed deadline failure instead of hanging."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let fallback_conv =
  let parse = function
    | "none" -> Ok `None
    | "auto" -> Ok `Auto
    | spec ->
      let rec go acc = function
        | [] -> Ok (`Chain (List.rev acc))
        | name :: rest -> (
          match Protocol.scheme_of_name (String.trim name) with
          | Some scheme -> go (scheme :: acc) rest
          | None -> Error (`Msg (Printf.sprintf "unknown fallback scheme %S" name)))
      in
      go [] (String.split_on_char ',' spec)
  in
  let print fmt = function
    | `None -> Format.pp_print_string fmt "none"
    | `Auto -> Format.pp_print_string fmt "auto"
    | `Chain schemes ->
      Format.pp_print_string fmt
        (String.concat "," (List.map Protocol.scheme_name schemes))
  in
  Arg.conv (parse, print)

let fallback_arg =
  let doc =
    "Graceful-degradation chain tried when the scheme exhausts its \
     retry/deadline budget: $(b,auto) (the default chain, pm -> commutative -> \
     das), $(b,none), or a comma-separated list of scheme names.  A degraded \
     but served run exits with code 4."
  in
  Arg.(value & opt fallback_conv `None & info [ "fallback" ] ~docv:"CHAIN" ~doc)

let breaker_conv =
  let parse spec =
    let apply cfg field =
      match String.split_on_char '=' field with
      | [ "window"; v ] ->
        Option.map (fun n -> { cfg with R.window = n }) (int_of_string_opt v)
      | [ "threshold"; v ] ->
        Option.map (fun r -> { cfg with R.failure_threshold = r }) (float_of_string_opt v)
      | [ "min"; v ] ->
        Option.map (fun n -> { cfg with R.min_samples = n }) (int_of_string_opt v)
      | [ "cooldown"; v ] ->
        Option.map (fun s -> { cfg with R.cooldown = s }) (float_of_string_opt v)
      | [ "probes"; v ] ->
        Option.map (fun n -> { cfg with R.half_open_probes = n }) (int_of_string_opt v)
      | _ -> None
    in
    let rec go cfg = function
      | [] -> Ok cfg
      | field :: rest -> (
        match apply cfg (String.trim field) with
        | Some cfg -> go cfg rest
        | None -> Error (`Msg (Printf.sprintf "bad breaker field %S" field)))
    in
    go R.default_breaker (String.split_on_char ',' spec)
  in
  let print fmt (cfg : R.breaker_config) =
    Format.fprintf fmt "window=%d,threshold=%g,min=%d,cooldown=%g,probes=%d" cfg.R.window
      cfg.R.failure_threshold cfg.R.min_samples cfg.R.cooldown cfg.R.half_open_probes
  in
  Arg.conv (parse, print)

let breaker_arg =
  let doc =
    "Per-datasource circuit-breaker tuning as comma-separated fields \
     $(b,window=N,threshold=R,min=N,cooldown=S,probes=N) (defaults: 16, 0.5, \
     4, 1.0, 1).  A party whose failure rate over the sliding window reaches \
     the threshold is short-circuited until the cooldown admits a half-open \
     probe."
  in
  Arg.(value & opt breaker_conv R.default_breaker & info [ "breaker" ] ~docv:"SPEC" ~doc)

let print_fault_events fault =
  match fault with
  | Some plan when Fault.events plan <> [] ->
    print_newline ();
    print_endline "Injected faults:";
    List.iter (fun e -> Format.printf "  %a@." Fault.pp_event e) (Fault.events plan)
  | _ -> ()

let report outcome ~verbose ~ground_truth =
  print_endline "Result:";
  print_endline (Relation.to_string outcome.Outcome.result);
  Printf.printf "\ncorrect: %b   messages: %d   bytes: %d\n" (Outcome.correct outcome)
    (Transcript.message_count outcome.Outcome.transcript)
    (Transcript.total_bytes outcome.Outcome.transcript);
  if verbose then begin
    print_newline ();
    print_endline "Transcript:";
    print_string (Transcript.summary outcome.Outcome.transcript);
    print_newline ();
    (match ground_truth with
     | None -> ()
     | Some g ->
       let claims = Leakage.verify outcome ~ground_truth:g in
       if claims <> [] then begin
         print_endline "Leakage claims:";
         Format.printf "%a" Leakage.pp_claims claims
       end);
    print_newline ();
    print_endline "Flow diagram:";
    print_endline (Transcript.flow_diagram outcome.Outcome.transcript)
  end

module Obs = Secmed_obs
module Net = Secmed_net

let trace_arg =
  let doc =
    "Write a machine-readable trace of the run to $(docv): Chrome \
     trace-event JSON (load in chrome://tracing or Perfetto), or a compact \
     JSONL stream when $(docv) ends in .jsonl."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let write_trace path trace =
  let contents =
    match Obs.Export.format_of_path path with
    | `Chrome -> Obs.Export.chrome_json trace
    | `Jsonl -> Obs.Export.jsonl trace
  in
  Obs.Export.write_file path contents;
  Printf.printf "\ntrace: %s (%d spans, %d events)\n" path
    (List.length (Obs.Trace.spans trace))
    (List.length (Obs.Trace.events trace))

(* A distributed run merges the remote span batches under the client's
   own collector: one file, one pid lane per process. *)
let write_trace_merged path trace remote_spans =
  let processes = Net.Trace_wire.merge ~client:trace remote_spans in
  let contents =
    match Obs.Export.format_of_path path with
    | `Chrome -> Obs.Export.chrome_json_processes processes
    | `Jsonl -> Obs.Export.jsonl_processes processes
  in
  Obs.Export.write_file path contents;
  let spans =
    List.fold_left (fun acc p -> acc + List.length p.Obs.Export.pr_spans) 0 processes
  in
  Printf.printf "\ntrace: %s (%d processes, %d spans)\n" path (List.length processes) spans

(* ------------------------------------------------------------------ *)
(* secmed run *)

(* Workload flags shared by every process of a deployment: all replicas
   must rebuild the identical scenario, so `run`, `serve` and `source`
   accept the same knobs. *)
let spec_term =
  let rows = Arg.(value & opt int 32 & info [ "rows" ] ~docv:"N" ~doc:"Rows per relation.") in
  let distinct =
    Arg.(value & opt int 16 & info [ "distinct" ] ~docv:"N" ~doc:"Distinct join values per side.")
  in
  let overlap =
    Arg.(value & opt int 8 & info [ "overlap" ] ~docv:"N" ~doc:"Shared distinct join values.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.") in
  let strings =
    Arg.(value & flag & info [ "strings" ] ~doc:"Use string-typed join values.")
  in
  let make rows distinct overlap seed strings =
    {
      Workload.default with
      rows_left = rows;
      rows_right = rows;
      distinct_left = distinct;
      distinct_right = distinct;
      overlap;
      seed;
      value_kind = (if strings then Workload.Strings else Workload.Ints);
    }
  in
  Term.(const make $ rows $ distinct $ overlap $ seed $ strings)

let io_timeout_arg =
  let doc =
    "Per-socket-operation timeout in seconds for networked runs (a stalled      read or write fails as a typed transport fault after this long)."
  in
  Arg.(value & opt float 10. & info [ "io-timeout" ] ~docv:"SECONDS" ~doc)

let parse_host_port what target =
  match String.rindex_opt target ':' with
  | None -> failwith (Printf.sprintf "%s expects HOST:PORT, got %S" what target)
  | Some i ->
    let host = String.sub target 0 i in
    let port = String.sub target (i + 1) (String.length target - i - 1) in
    (match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 ->
      ((if String.equal host "" then "127.0.0.1" else host), p)
    | _ -> failwith (Printf.sprintf "%s: bad port in %S" what target))

let run_remote ~target ~spec ~scheme ~fault ~deadline ~fallback ~io_timeout ~trace_file
    ~verbose =
  let host, port = parse_host_port "--connect" target in
  let fallback =
    match fallback with
    | `None -> false
    | `Auto -> true
    | `Chain _ ->
      failwith "--connect supports --fallback auto or none (the chain is the mediator's)"
  in
  Workload.validate spec;
  let env, client, query = Workload.scenario spec in
  let scenario = Net.Scenario.digest spec in
  Printf.printf "scheme: %s\nquery:  %s\nvia:    %s:%d (scenario %s)\n\n"
    (Protocol.scheme_name scheme) query host port (String.sub scenario 0 12);
  let response, trace =
    Obs.Trace.collect (fun () ->
        Net.Peer.run ~host ~port ~scenario ~scheme:(Protocol.scheme_name scheme) ~query
          ?fault_spec:fault ~deadline:(Option.value deadline ~default:0.) ~fallback
          ~io_timeout ~trace:(Option.is_some trace_file) env client)
  in
  let bytes_in, bytes_out = response.Net.Peer.socket_bytes in
  match response.Net.Peer.result with
  | Protocol.Served outcome ->
    let left, right = Workload.generate spec in
    report outcome ~verbose
      ~ground_truth:(Some (Ground_truth.compute left right ~join_attr:"a_join"));
    Printf.printf "\nwire: %d attempt(s); client socket %d bytes in / %d bytes out\n"
      response.Net.Peer.epochs bytes_in bytes_out;
    (let cv name = Obs.Metrics.counter_value (Obs.Metrics.counter name) in
     Printf.printf "      net.* counters: %d frames sent / %d received\n"
       (cv "net.frames_sent") (cv "net.frames_recv"));
    if response.Net.Peer.link_stats <> [] then begin
      print_endline "mediator links:";
      List.iter
        (fun (party, out_bytes, in_bytes) ->
          Printf.printf "  %-10s %7d bytes to it / %7d bytes from it\n"
            (Transcript.party_name party) out_bytes in_bytes)
        response.Net.Peer.link_stats
    end;
    Option.iter
      (fun path -> write_trace_merged path trace response.Net.Peer.remote_spans)
      trace_file;
    (match outcome.Outcome.degraded_from with
    | None -> ()
    | Some from_scheme ->
      Printf.printf "\nDEGRADED: served by %s instead of %s\n" outcome.Outcome.scheme
        from_scheme;
      exit exit_degraded)
  | Protocol.Unserved tried ->
    Format.printf "FAULT: query not served@.%a" Protocol.pp_session_failures tried;
    Option.iter
      (fun path -> write_trace_merged path trace response.Net.Peer.remote_spans)
      trace_file;
    exit exit_fault

let run_cmd =
  let connect =
    let doc =
      "Run as a remote client against a `secmed serve' mediator at $(docv)        instead of in-process.  The workload flags must match the ones the        mediator and its datasources were started with (enforced by a        scenario-digest handshake)."
    in
    Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"HOST:PORT" ~doc)
  in
  let action scheme spec connect fault deadline fallback breaker io_timeout trace_file
      verbose =
    match connect with
    | Some target ->
      (try
         run_remote ~target ~spec ~scheme ~fault:(Option.map fst fault) ~deadline ~fallback
           ~io_timeout ~trace_file ~verbose
       with Net.Io.Transport_error msg ->
         Printf.eprintf "transport error: %s\n" msg;
         exit exit_fault)
    | None ->
      let fault = Option.map snd fault in
      Workload.validate spec;
      let env, client, query = Workload.scenario spec in
      Printf.printf "scheme: %s\nquery:  %s\n\n" (Protocol.scheme_name scheme) query;
      let policy =
        { R.default_policy with R.deadline_budget = deadline; breaker_config = breaker }
      in
      let session = R.session ~policy () in
      let chain =
        match fallback with
        | `None -> []
        | `Auto -> Protocol.degradation_chain scheme
        | `Chain schemes -> schemes
      in
      let session_result, trace =
        Obs.Trace.collect (fun () ->
            Protocol.run_session ?fault ~session ~chain scheme env client ~query)
      in
      (match session_result with
      | Protocol.Served outcome ->
        let left, right = Workload.generate spec in
        report outcome ~verbose
          ~ground_truth:(Some (Ground_truth.compute left right ~join_attr:"a_join"));
        print_fault_events fault;
        Option.iter (fun path -> write_trace path trace) trace_file;
        (match outcome.Outcome.degraded_from with
        | None -> ()
        | Some from_scheme ->
          Printf.printf "\nDEGRADED: served by %s instead of %s\n" outcome.Outcome.scheme
            from_scheme;
          exit exit_degraded)
      | Protocol.Unserved tried ->
        Format.printf "FAULT: query not served@.%a" Protocol.pp_session_failures tried;
        print_fault_events fault;
        Option.iter (fun path -> write_trace path trace) trace_file;
        exit exit_fault)
  in
  let term =
    Term.(const action $ scheme_arg $ spec_term $ connect $ fault_arg $ deadline_arg
          $ fallback_arg $ breaker_arg $ io_timeout_arg $ trace_arg $ verbose_arg)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run one protocol over a synthetic workload, in-process or against a \
             remote mediator (--connect)")
    term

(* ------------------------------------------------------------------ *)
(* secmed serve / secmed source *)

let bind_arg =
  Arg.(value & opt string "127.0.0.1"
       & info [ "bind" ] ~docv:"HOST" ~doc:"Address to listen on.")

let serve_cmd =
  let port =
    Arg.(value & opt int 7000 & info [ "port" ] ~docv:"PORT" ~doc:"TCP port to listen on.")
  in
  let source =
    let doc =
      "Datasource address as $(b,ID=shard@HOST:PORT[,HOST:PORT...][;shard@...]); repeat \
       once per source.  Comma-separated endpoints are standby replicas: the pool dials \
       the first one that is up (primary first) and fails a severed or draining endpoint \
       over to the next, failing back after a cooldown.  Semicolon-separated groups are \
       shards (the optional $(b,shard@) marker is cosmetic): each must run `secmed \
       source --shard J/K', streamed deliveries arrive as K partitioned chunk streams \
       merged in row order, and results are bit-identical to the unsharded run.  The \
       two-relation workload needs sources 1 and 2."
    in
    Arg.(value & opt_all string [] & info [ "source" ] ~docv:"ID=[shard@]H:P,...;..." ~doc)
  in
  let health_interval =
    Arg.(value & opt float 1.0
         & info [ "health-interval" ] ~docv:"SECONDS"
             ~doc:"Probe every source replica with a Ping frame this often and \
                   proactively mark dead or draining ones down (0 disables probing).")
  in
  let drain_deadline =
    Arg.(value & opt float 30.
         & info [ "drain-deadline" ] ~docv:"SECONDS"
             ~doc:"On SIGTERM (or an authenticated Drain frame) stop admitting \
                   sessions, let in-flight ones finish up to this long, then exit 0.")
  in
  let max_sessions =
    Arg.(value & opt int 8
         & info [ "max-sessions" ] ~docv:"N"
             ~doc:"Concurrent client sessions admitted before answering Busy.")
  in
  let source_conns =
    Arg.(value & opt int 2
         & info [ "source-conns" ] ~docv:"K"
             ~doc:"Pooled connections per datasource daemon; sessions check one out \
                   round-robin by session id.")
  in
  let workers =
    Arg.(value & opt (some int) None
         & info [ "workers" ] ~docv:"N"
             ~doc:"Concurrent protocol drivers (default: --max-sessions); admitted \
                   sessions beyond this queue FIFO.")
  in
  let action bind port sources max_sessions source_conns workers io_timeout deadline breaker
      health_interval drain_deadline spec =
    let parse_source spec_str =
      match Net.Shard.parse_source (String.trim spec_str) with
      | Ok (id, _) when id < 1 -> failwith (Printf.sprintf "--source: bad id in %S" spec_str)
      | Ok parsed -> parsed
      | Error msg -> failwith ("--source: " ^ msg)
    in
    let sources = List.map parse_source sources in
    List.iter
      (fun id ->
        if not (List.mem_assoc id sources) then
          failwith (Printf.sprintf "missing --source %d=HOST:PORT" id))
      [ 1; 2 ];
    Workload.validate spec;
    let env, client, _query = Workload.scenario spec in
    let scenario = Net.Scenario.digest spec in
    let policy =
      { R.default_policy with R.deadline_budget = deadline; breaker_config = breaker }
    in
    let listen_fd, bound = Net.Io.listen ~host:bind ~port () in
    Printf.printf "mediator listening on %s:%d (scenario %s)\n%!" bind bound
      (String.sub scenario 0 12);
    List.iter
      (fun (id, shards) ->
        Printf.printf "  source %d at %s\n%!" id
          (String.concat "; "
             (List.map
                (fun replicas ->
                  String.concat ", "
                    (List.map (fun (h, p) -> Printf.sprintf "%s:%d" h p) replicas))
                shards)))
      sources;
    let server =
      Net.Server.create ~env ~client ~scenario ~sources ~listen_fd ~policy ~max_sessions
        ~io_timeout ~source_conns ?workers ~drain_deadline ~health_interval ()
    in
    Sys.set_signal Sys.sigterm
      (Sys.Signal_handle (fun _ -> Net.Server.begin_drain server));
    Net.Server.serve server
  in
  let term =
    Term.(const action $ bind_arg $ port $ source $ max_sessions $ source_conns $ workers
          $ io_timeout_arg $ deadline_arg $ breaker_arg $ health_interval $ drain_deadline
          $ spec_term)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the mediator as a network server over `secmed source' daemons")
    term

let source_cmd =
  let id =
    Arg.(required & opt (some int) None
         & info [ "id" ] ~docv:"N" ~doc:"Datasource id (1 or 2 in the synthetic workload).")
  in
  let port =
    Arg.(value & opt int 0
         & info [ "port" ] ~docv:"PORT"
             ~doc:"TCP port to listen on (0 picks an ephemeral port).")
  in
  let drain_deadline =
    Arg.(value & opt float 30.
         & info [ "drain-deadline" ] ~docv:"SECONDS"
             ~doc:"On SIGTERM (or an authenticated Drain frame) refuse new sessions, \
                   let in-flight ones finish up to this long, then exit 0.")
  in
  let shard_arg =
    Arg.(value & opt string "0/1"
         & info [ "shard" ] ~docv:"J/K"
             ~doc:"Serve shard J of K of this source: transmit only the rows with \
                   index mod K = J in streamed deliveries (shard 0 alone speaks the \
                   scalar frames).  The mediator must list all K shards for this \
                   source, semicolon-separated, in its matching --source flag.")
  in
  let action bind id port shard_str io_timeout drain_deadline spec =
    if id < 1 || id > 2 then failwith "the synthetic workload has sources 1 and 2";
    let shard =
      match Net.Shard.parse_shard_flag shard_str with
      | Ok s -> s
      | Error msg -> failwith ("--shard: " ^ msg)
    in
    Workload.validate spec;
    let env, client, _query = Workload.scenario spec in
    let scenario = Net.Shard.digest (Net.Scenario.digest spec) ~shard in
    let listen_fd, bound = Net.Io.listen ~host:bind ~port () in
    let j, k = shard in
    Printf.printf "source %d%s listening on %s:%d (scenario %s)\n%!" id
      (if k > 1 then Printf.sprintf " shard %d/%d" j k else "")
      bind bound
      (String.sub scenario 0 12);
    Net.Peer.source ~id ~env ~client ~scenario ~listen_fd ~shard ~io_timeout ~drain_deadline
      ~drain_on_sigterm:true ()
  in
  let term =
    Term.(const action $ bind_arg $ id $ port $ shard_arg $ io_timeout_arg $ drain_deadline
          $ spec_term)
  in
  Cmd.v
    (Cmd.info "source" ~doc:"Run one datasource as a daemon for a `secmed serve' mediator")
    term

(* ------------------------------------------------------------------ *)
(* secmed loadgen *)

let mix_conv =
  let parse s =
    try
      Ok
        (List.map
           (fun field ->
             match String.split_on_char '=' (String.trim field) with
             | [ scheme; w ] -> (
               let scheme = String.trim scheme in
               if Option.is_none (Protocol.scheme_of_name scheme) then
                 failwith (Printf.sprintf "unknown scheme %S" scheme);
               match int_of_string_opt (String.trim w) with
               | Some w when w >= 0 -> (scheme, w)
               | _ -> failwith (Printf.sprintf "bad weight in %S" field))
             | _ -> failwith (Printf.sprintf "expected SCHEME=WEIGHT, got %S" field))
           (String.split_on_char ',' s))
    with Failure msg -> Error (`Msg ("--mix: " ^ msg))
  in
  let print fmt mix =
    Format.pp_print_string fmt
      (String.concat "," (List.map (fun (s, w) -> Printf.sprintf "%s=%d" s w) mix))
  in
  Arg.conv (parse, print)

let loadgen_cmd =
  let connect =
    Arg.(required & opt (some string) None
         & info [ "connect" ] ~docv:"HOST:PORT" ~doc:"Mediator address to drive load at.")
  in
  let workers =
    Arg.(value & opt int 8
         & info [ "workers" ] ~docv:"N" ~doc:"Concurrent client workers in the fleet.")
  in
  let sessions =
    Arg.(value & opt int 4
         & info [ "sessions" ] ~docv:"N" ~doc:"Sessions each worker poses.")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"N"
             ~doc:"OCaml domains the workers are grouped onto (1 = plain threads; more \
                   parallelizes client-side crypto).")
  in
  let mix =
    Arg.(value
         & opt mix_conv [ ("das", 1); ("commutative", 1); ("pm", 1) ]
         & info [ "mix" ] ~docv:"SCHEME=W,..."
             ~doc:"Weighted scheme mix each session draws from, e.g. \
                   $(b,das=2,commutative=1,pm=1).")
  in
  let rate =
    Arg.(value & opt (some float) None
         & info [ "rate" ] ~docv:"QPS"
             ~doc:"Open-loop (Poisson) aggregate arrival rate in sessions/sec.  Without \
                   it the fleet runs closed-loop: each worker poses its next session \
                   when the previous one finishes.")
  in
  let seed =
    Arg.(value & opt string "loadgen"
         & info [ "loadgen-seed" ] ~docv:"SEED"
             ~doc:"Seed for the fleet's scheme draws and arrival times; the same seed \
                   and config replay the identical workload.")
  in
  let verify =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"Check every served session bit-for-bit (result, transcript, \
                   primitive counters) against the in-process reference execution of \
                   its scheme.")
  in
  let trace =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Request distributed tracing on every session (batches are \
                   discarded) — measures the span pipeline's overhead under load.")
  in
  let retry =
    Arg.(value & opt int 0
         & info [ "retry" ] ~docv:"N"
             ~doc:"Re-pose a session that never started (unreachable peer, link death \
                   before the verdict, typed Draining) up to $(docv) times with \
                   exponential backoff — lets the fleet ride out a rolling restart.  \
                   Busy is never retried.")
  in
  let action connect workers sessions domains mix rate seed verify trace retry fault
      deadline fallback io_timeout spec =
    let host, port = parse_host_port "--connect" connect in
    Workload.validate spec;
    let env, client, query = Workload.scenario spec in
    let scenario = Net.Scenario.digest spec in
    let config =
      {
        Net.Loadgen.workers;
        sessions_per_worker = sessions;
        domains;
        mix;
        arrival =
          (match rate with
          | None -> Net.Loadgen.Closed
          | Some r when r > 0. -> Net.Loadgen.Poisson r
          | Some _ -> failwith "--rate must be positive");
        seed;
        fault_spec = (match fault with None -> "" | Some (raw, _) -> raw);
        deadline = Option.value deadline ~default:0.;
        fallback = (match fallback with `None -> false | `Auto | `Chain _ -> true);
        io_timeout;
        verify;
        trace;
        retry_connect = retry;
        retry_backoff = 0.25;
      }
    in
    let target = { Net.Loadgen.host; port; scenario; env; client; query } in
    let report =
      try Net.Loadgen.run config target
      with Net.Io.Transport_error msg ->
        Printf.eprintf "transport error: %s\n" msg;
        exit exit_fault
    in
    print_string (Net.Loadgen.render report);
    if report.Net.Loadgen.verify_failures <> [] then exit exit_fault;
    if Net.Loadgen.count Net.Loadgen.Served report
       + Net.Loadgen.count Net.Loadgen.Degraded report
       = 0
    then exit exit_fault
  in
  let term =
    Term.(const action $ connect $ workers $ sessions $ domains $ mix $ rate $ seed
          $ verify $ trace $ retry $ fault_arg $ deadline_arg $ fallback_arg
          $ io_timeout_arg $ spec_term)
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive a deterministic client fleet at a `secmed serve' mediator and report \
             throughput, latency percentiles, and backpressure")
    term

(* ------------------------------------------------------------------ *)
(* secmed stats *)

let render_stats j =
  let module J = Obs.Json in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let mem path v =
    List.fold_left (fun acc k -> Option.bind acc (J.member k)) (Some v) path
  in
  let num path = Option.value ~default:0. (Option.bind (mem path j) J.to_float) in
  let i path = Option.value ~default:0 (Option.bind (mem path j) J.to_int) in
  let s path = Option.value ~default:"" (Option.bind (mem path j) J.to_str) in
  add "uptime %.1fs  scenario %s\n" (num [ "uptime_seconds" ])
    (let sc = s [ "scenario" ] in
     if String.length sc > 12 then String.sub sc 0 12 else sc);
  add "sessions:  %d/%d active, %d admitted, %d refused (%d while draining)\n"
    (i [ "sessions"; "active" ])
    (i [ "sessions"; "max" ])
    (i [ "sessions"; "admitted" ])
    (i [ "sessions"; "refused" ])
    (i [ "sessions"; "drain_refused" ]);
  (match mem [ "sessions"; "draining" ] j with
  | Some (J.Bool true) -> add "draining:  yes (new sessions refused)\n"
  | _ -> ());
  add "scheduler: %d workers, %d busy, %d queued, %d/%d completed, utilization %.1f%%\n"
    (i [ "scheduler"; "workers" ])
    (i [ "scheduler"; "busy" ])
    (i [ "scheduler"; "queued" ])
    (i [ "scheduler"; "completed" ])
    (i [ "scheduler"; "submitted" ])
    (100. *. num [ "scheduler"; "utilization" ]);
  (match Option.bind (mem [ "pool" ] j) J.to_list with
  | None | Some [] -> ()
  | Some sources ->
    add "pool:\n";
    List.iter
      (fun src ->
        let si path = Option.value ~default:0 (Option.bind (mem path src) J.to_int) in
        let slots =
          match Option.bind (mem [ "slots" ] src) J.to_list with
          | None -> ""
          | Some slots ->
            String.concat ", "
              (List.map
                 (fun sl ->
                   let up =
                     match J.member "connected" sl with Some (J.Bool b) -> b | _ -> false
                   in
                   Printf.sprintf "slot %d %s (%d dial%s)"
                     (Option.value ~default:0 (Option.bind (J.member "slot" sl) J.to_int))
                     (if up then "up" else "down")
                     (Option.value ~default:0 (Option.bind (J.member "dials" sl) J.to_int))
                     (if Option.value ~default:0 (Option.bind (J.member "dials" sl) J.to_int)
                         = 1
                      then ""
                      else "s"))
                 slots)
        in
        let replicas =
          match Option.bind (mem [ "replicas" ] src) J.to_list with
          | None | Some [] | Some [ _ ] -> ""
          | Some reps ->
            Printf.sprintf " [%s]"
              (String.concat ", "
                 (List.map
                    (fun re ->
                      Printf.sprintf "replica %d %s"
                        (Option.value ~default:0
                           (Option.bind (J.member "replica" re) J.to_int))
                        (match J.member "up" re with
                        | Some (J.Bool true) -> "up"
                        | _ -> "down"))
                    reps))
        in
        add "  source %d @%s%s: %s\n" (si [ "source" ])
          (Option.value ~default:"" (Option.bind (mem [ "addr" ] src) J.to_str))
          replicas slots)
      sources);
  (match
     Option.bind (mem [ "failover"; "count" ] j) J.to_int
   with
  | Some count when count > 0 ->
    add "failover:  %d transitions\n" count;
    (match Option.bind (mem [ "failover"; "events" ] j) J.to_list with
    | Some events ->
      let n = List.length events in
      List.iteri
        (fun idx e ->
          if idx >= n - 5 then
            add "  %7.2fs source %d replica %d %-8s %s\n"
              (Option.value ~default:0. (Option.bind (J.member "at" e) J.to_float))
              (Option.value ~default:0 (Option.bind (J.member "source" e) J.to_int))
              (Option.value ~default:0 (Option.bind (J.member "replica" e) J.to_int))
              (Option.value ~default:"" (Option.bind (J.member "kind" e) J.to_str))
              (Option.value ~default:"" (Option.bind (J.member "detail" e) J.to_str)))
        events
    | None -> ())
  | _ -> ());
  (match Option.bind (mem [ "breakers" ] j) J.to_list with
  | None | Some [] -> add "breakers:  none created yet\n"
  | Some breakers ->
    add "breakers:  %s\n"
      (String.concat ", "
         (List.map
            (fun b ->
              Printf.sprintf "%s %s (%d transitions)"
                (Option.value ~default:"?" (Option.bind (J.member "party" b) J.to_str))
                (Option.value ~default:"?" (Option.bind (J.member "state" b) J.to_str))
                (Option.value ~default:0 (Option.bind (J.member "transitions" b) J.to_int)))
            breakers)));
  add "net:       %d bytes sent / %d recv (%d / %d frames)\n" (i [ "net"; "bytes_sent" ])
    (i [ "net"; "bytes_recv" ])
    (i [ "net"; "frames_sent" ])
    (i [ "net"; "frames_recv" ]);
  add "streams:   %d rows in / %d out, %d bytes in / %d out, backlog %d chunk%s\n"
    (i [ "streams"; "rows_in" ])
    (i [ "streams"; "rows_out" ])
    (i [ "streams"; "bytes_in" ])
    (i [ "streams"; "bytes_out" ])
    (i [ "streams"; "backlog_chunks" ])
    (if i [ "streams"; "backlog_chunks" ] = 1 then "" else "s");
  (match Option.bind (mem [ "streams"; "sessions" ] j) J.to_list with
  | None | Some [] -> ()
  | Some sessions ->
    List.iteri
      (fun idx st ->
        if idx < 5 then
          let si path = Option.value ~default:0 (Option.bind (mem path st) J.to_int) in
          add "  session %d%s: %d rows in / %d out, %d bytes in / %d out\n"
            (si [ "session" ])
            (match mem [ "active" ] st with
            | Some (J.Bool true) -> " (streaming)"
            | _ -> "")
            (si [ "rows_in" ]) (si [ "rows_out" ])
            (si [ "bytes_in" ]) (si [ "bytes_out" ]))
      sessions);
  (match mem [ "schemes" ] j with
  | Some (J.Obj []) | None -> add "schemes:   none served yet\n"
  | Some (J.Obj schemes) ->
    add "schemes:\n";
    List.iter
      (fun (name, st) ->
        let si path = Option.value ~default:0 (Option.bind (mem path st) J.to_int) in
        let sn path = Option.value ~default:0. (Option.bind (mem path st) J.to_float) in
        add "  %-14s %d served (%d degraded), %d failed; latency p50=%.1fms p90=%.1fms p99=%.1fms\n"
          name (si [ "served" ]) (si [ "degraded" ]) (si [ "failed" ])
          (1000. *. sn [ "latency_seconds"; "p50" ])
          (1000. *. sn [ "latency_seconds"; "p90" ])
          (1000. *. sn [ "latency_seconds"; "p99" ]))
      schemes
  | Some _ -> ());
  Buffer.contents buf

let stats_cmd =
  let target =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"HOST:PORT" ~doc:"Mediator address to query.")
  in
  let watch =
    Arg.(value & opt (some float) None
         & info [ "watch" ] ~docv:"SECONDS"
             ~doc:"Refresh the snapshot every $(docv) seconds until interrupted.")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the raw JSON snapshot instead.")
  in
  let action target watch json_flag io_timeout =
    let host, port = parse_host_port "stats" target in
    let once () =
      let payload = Net.Peer.stats ~host ~port ~io_timeout () in
      if json_flag then print_endline payload
      else
        match Obs.Json.parse payload with
        | Error e -> failwith ("unparseable stats payload: " ^ e)
        | Ok j -> print_string (render_stats j)
    in
    match watch with
    | None -> once ()
    | Some interval ->
      let interval = Float.max 0.2 interval in
      (* A drain-restarting mediator refuses connections for a moment;
         a watch should ride that out, not die on the first
         ECONNREFUSED/EPIPE.  Bounded exponential backoff: ~10
         consecutive failures (about a minute) means it really is gone. *)
      let max_failures = 10 in
      let rec go failures =
        match once () with
        | () ->
          print_newline ();
          flush stdout;
          Thread.delay interval;
          go 0
        | exception Net.Io.Transport_error msg ->
          if failures + 1 >= max_failures then begin
            Printf.eprintf "mediator unreachable after %d attempts: %s\n" max_failures msg;
            exit exit_fault
          end;
          Printf.printf "-- mediator unreachable (%s); retrying\n%!" msg;
          Thread.delay (Float.min 10. (interval *. (2. ** float_of_int failures)));
          go (failures + 1)
      in
      go 0
  in
  let term = Term.(const action $ target $ watch $ json_flag $ io_timeout_arg) in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Show a running mediator's live serving telemetry (admission, scheduler \
             utilization, connection pool, breakers, per-scheme latency)")
    term

(* ------------------------------------------------------------------ *)
(* secmed ping / drain *)

let ping_cmd =
  let target =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"HOST:PORT" ~doc:"Mediator or datasource address to probe.")
  in
  let action target io_timeout =
    let host, port = parse_host_port "ping" target in
    match Net.Peer.ping ~host ~port ~io_timeout () with
    | h ->
      Printf.printf "%s: %s, %d active session%s\n"
        (Transcript.party_name h.Net.Peer.h_role)
        (if h.Net.Peer.h_draining then "draining" else "up")
        h.Net.Peer.h_active
        (if h.Net.Peer.h_active = 1 then "" else "s")
    | exception Net.Io.Transport_error msg ->
      Printf.eprintf "down: %s\n" msg;
      exit exit_fault
  in
  Cmd.v
    (Cmd.info "ping"
       ~doc:"Probe a mediator or datasource daemon with a Ping frame (answered before \
             admission, so it works against a process at capacity)")
    Term.(const action $ target $ io_timeout_arg)

let drain_cmd =
  let target =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"HOST:PORT" ~doc:"Mediator or datasource address to drain.")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "drain-deadline" ] ~docv:"SECONDS"
             ~doc:"Override the peer's drain deadline for this drain.")
  in
  let action target deadline io_timeout spec =
    Workload.validate spec;
    let scenario = Net.Scenario.digest spec in
    let host, port = parse_host_port "drain" target in
    match
      Net.Peer.drain ~host ~port ~scenario
        ~deadline:(Option.value deadline ~default:0.)
        ~io_timeout ()
    with
    | () -> Printf.printf "draining: peer stopped admitting, finishing in-flight sessions\n"
    | exception Net.Peer.Refused reason ->
      Printf.eprintf "drain refused: %s\n" reason;
      exit exit_fault
    | exception Net.Io.Transport_error msg ->
      Printf.eprintf "unreachable: %s\n" msg;
      exit exit_fault
  in
  Cmd.v
    (Cmd.info "drain"
       ~doc:"Gracefully drain a running mediator or datasource daemon.  The Drain frame \
             is authenticated by the scenario digest, so the workload flags must match \
             the peer's")
    Term.(const action $ target $ deadline $ io_timeout_arg $ spec_term)

(* ------------------------------------------------------------------ *)
(* secmed soak *)

let soak_cmd =
  let workers =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc:"Concurrent client workers.")
  in
  let sessions =
    Arg.(value & opt int 8
         & info [ "sessions" ] ~docv:"N" ~doc:"Sessions each worker poses.")
  in
  let standbys =
    Arg.(value & opt int 1
         & info [ "standbys" ] ~docv:"N" ~doc:"Standby replica daemons per source.")
  in
  let kills =
    Arg.(value & opt int 4
         & info [ "kills" ] ~docv:"N"
             ~doc:"SIGKILL/restart cycles, cycling over every source replica.")
  in
  let drains =
    Arg.(value & opt int 1
         & info [ "drains" ] ~docv:"N" ~doc:"Mediator drain-restart cycles.")
  in
  let rate =
    Arg.(value & opt float 10.
         & info [ "rate" ] ~docv:"QPS"
             ~doc:"Open-loop (Poisson) aggregate arrival rate; 0 = closed loop.")
  in
  let seed =
    Arg.(value & opt string "soak"
         & info [ "soak-seed" ] ~docv:"SEED"
             ~doc:"Seeds both the kill schedule's shuffle and the client fleet; the \
                   same seed and config replay the identical soak.")
  in
  let gap =
    Arg.(value & opt float 0.5
         & info [ "gap" ] ~docv:"SECONDS" ~doc:"Settle time before each schedule action.")
  in
  let hold =
    Arg.(value & opt float 1.0
         & info [ "hold" ] ~docv:"SECONDS" ~doc:"How long a killed process stays dead.")
  in
  let retry =
    Arg.(value & opt int 10
         & info [ "retry" ] ~docv:"N"
             ~doc:"Per-session connect-retry budget (rides out restarts).")
  in
  let no_verify =
    Arg.(value & flag
         & info [ "no-verify" ]
             ~doc:"Skip the bit-for-bit comparison of served sessions against the \
                   in-process reference execution.")
  in
  let log =
    Arg.(value & opt (some string) None
         & info [ "log" ] ~docv:"FILE"
             ~doc:"Write the machine-readable transition log (JSON lines: executed \
                   schedule, recovered failover transitions, drain exit codes, \
                   violations, summary).")
  in
  let fast =
    Arg.(value & flag
         & info [ "fast" ]
             ~doc:"Small crypto parameters (160-bit group, 384-bit Paillier) — smoke \
                   speed, not security.")
  in
  let action workers sessions standbys kills drains rate seed gap hold retry no_verify log
      fast io_timeout spec =
    Workload.validate spec;
    let cfg =
      {
        Net.Soak.params =
          (if fast then Some { Env.group_bits = 160; paillier_bits = 384 } else None);
        spec;
        workers;
        sessions_per_worker = sessions;
        standbys;
        kills;
        drains;
        seed;
        rate;
        gap;
        kill_hold = hold;
        retry_connect = retry;
        io_timeout;
        verify = not no_verify;
      }
    in
    let report = Net.Soak.run ~progress:(fun line -> Printf.printf "%s\n%!" line) cfg in
    print_string (Net.Soak.render report);
    Option.iter
      (fun path ->
        Net.Soak.write_log ~path report;
        Printf.printf "wrote %s\n" path)
      log;
    if not (Net.Soak.ok report) then exit exit_fault
  in
  let term =
    Term.(const action $ workers $ sessions $ standbys $ kills $ drains $ rate $ seed $ gap
          $ hold $ retry $ no_verify $ log $ fast $ io_timeout_arg $ spec_term)
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Run a seeded crash/restart chaos soak: SIGKILL and restart source replicas \
             and drain-restart the mediator under a verifying client fleet, then check \
             the robustness invariants (no failed or lost sessions, bit-identical \
             results, clean drain exits, failover transitions matching the schedule)")
    term

(* ------------------------------------------------------------------ *)
(* secmed query *)

let types_conv =
  let parse s =
    try
      Ok
        (List.map
           (fun t ->
             match String.lowercase_ascii (String.trim t) with
             | "int" -> Value.Tint
             | "string" | "str" -> Value.Tstring
             | "bool" -> Value.Tbool
             | other -> failwith other)
           (String.split_on_char ',' s))
    with Failure t -> Error (`Msg (Printf.sprintf "unknown type %S (use int|string|bool)" t))
  in
  let print fmt tys =
    Format.pp_print_string fmt (String.concat "," (List.map Value.ty_name tys))
  in
  Arg.conv (parse, print)

let load_csv path types =
  let header =
    let ic = open_in path in
    let line = Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> input_line ic) in
    List.map String.trim (String.split_on_char ',' line)
  in
  if List.length header <> List.length types then
    failwith
      (Printf.sprintf "%s: %d columns but %d types given" path (List.length header)
         (List.length types));
  let schema = Schema.make (List.map2 (fun name ty -> Schema.attr name ty) header types) in
  Csv.load_file schema path

let query_cmd =
  let pos n docv doc = Arg.(required & pos n (some string) None & info [] ~docv ~doc) in
  let left_csv = pos 0 "LEFT.csv" "CSV file of the first datasource (header row required)." in
  let right_csv = pos 1 "RIGHT.csv" "CSV file of the second datasource." in
  let left_types =
    Arg.(required & opt (some types_conv) None
         & info [ "left-types" ] ~docv:"T,T,..." ~doc:"Column types of LEFT.csv.")
  in
  let right_types =
    Arg.(required & opt (some types_conv) None
         & info [ "right-types" ] ~docv:"T,T,..." ~doc:"Column types of RIGHT.csv.")
  in
  let sql =
    Arg.(value & opt (some string) None
         & info [ "q"; "query" ] ~docv:"SQL"
             ~doc:"Join query (default: SELECT * FROM L NATURAL JOIN R).")
  in
  let action scheme left_path right_path left_types right_types sql verbose =
    let left = load_csv left_path left_types in
    let right = load_csv right_path right_types in
    let env = Env.two_source ~left:("L", left) ~right:("R", right) () in
    let client = Env.make_client env ~identity:"cli" ~properties:[ [] ] in
    let query = Option.value ~default:"select * from L natural join R" sql in
    Printf.printf "scheme: %s\nquery:  %s\n\n" (Protocol.scheme_name scheme) query;
    let outcome = Protocol.run_exn scheme env client ~query in
    let join_attr =
      match Schema.common_names (Relation.schema left) (Relation.schema right) with
      | [ a ] -> Some a
      | _ -> None
    in
    let ground_truth =
      Option.map (fun join_attr -> Ground_truth.compute left right ~join_attr) join_attr
    in
    report outcome ~verbose ~ground_truth
  in
  let term =
    Term.(const action $ scheme_arg $ left_csv $ right_csv $ left_types $ right_types $ sql
          $ verbose_arg)
  in
  Cmd.v (Cmd.info "query" ~doc:"Mediate a join over two CSV files") term

(* ------------------------------------------------------------------ *)
(* secmed setop *)

let setop_cmd =
  let op_conv =
    let parse = function
      | "intersection" | "intersect" -> Ok Set_ops.Intersection
      | "difference" | "diff" -> Ok Set_ops.Difference
      | "semi-join" | "semijoin" -> Ok Set_ops.Semi_join
      | other -> Error (`Msg (Printf.sprintf "unknown operation %S" other))
    in
    Arg.conv (parse, fun fmt op -> Format.pp_print_string fmt (Set_ops.op_name op))
  in
  let op_arg =
    Arg.(required & pos 0 (some op_conv) None
         & info [] ~docv:"OP" ~doc:"intersection, difference, or semi-join.")
  in
  let rows = Arg.(value & opt int 24 & info [ "rows" ] ~docv:"N" ~doc:"Rows per relation.") in
  let distinct =
    Arg.(value & opt int 12 & info [ "distinct" ] ~docv:"N" ~doc:"Distinct join values per side.")
  in
  let overlap =
    Arg.(value & opt int 6 & info [ "overlap" ] ~docv:"N" ~doc:"Shared distinct join values.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.") in
  let action op rows distinct overlap seed verbose =
    (* Whole-tuple operations need layout-identical relations, so the
       synthetic workload keeps only the join column for them. *)
    let extra_attrs =
      match op with Set_ops.Intersection | Set_ops.Difference -> 0 | Set_ops.Semi_join -> 2
    in
    let spec =
      { Workload.default with rows_left = rows; rows_right = rows; distinct_left = distinct;
        distinct_right = distinct; overlap; seed; extra_attrs }
    in
    Workload.validate spec;
    let left, right = Workload.generate spec in
    let env = Env.two_source ~seed ~left:("L", left) ~right:("R", right) () in
    let client = Env.make_client env ~identity:"cli" ~properties:[ [] ] in
    let on = match op with Set_ops.Semi_join -> Some [ "a_join" ] | _ -> None in
    Printf.printf "operation: %s\n\n" (Set_ops.op_name op);
    let outcome = Set_ops.run ?on env client op ~left:"L" ~right:"R" in
    report outcome ~verbose ~ground_truth:None
  in
  let term = Term.(const action $ op_arg $ rows $ distinct $ overlap $ seed $ verbose_arg) in
  Cmd.v
    (Cmd.info "setop" ~doc:"Mediate a set operation over a synthetic workload")
    term

(* ------------------------------------------------------------------ *)
(* secmed chain *)

let chain_cmd =
  let sources =
    Arg.(value & opt int 3 & info [ "sources" ] ~docv:"N" ~doc:"Number of datasources (>= 2).")
  in
  let action scheme n_sources =
    if n_sources < 2 then failwith "need at least 2 sources";
    let prng = Secmed_crypto.Prng.of_int_seed 99 in
    let relations =
      List.init n_sources (fun i ->
          let attrs =
            if i = n_sources - 1 then [ (Printf.sprintf "k%d" i, Value.Tint) ]
            else
              [ (Printf.sprintf "k%d" i, Value.Tint); (Printf.sprintf "k%d" (i + 1), Value.Tint) ]
          in
          let schema = Schema.of_list attrs in
          let rows =
            List.init 10 (fun _ ->
                List.map (fun _ -> Value.Int (Secmed_crypto.Prng.uniform_int prng 6)) attrs)
          in
          (Printf.sprintf "T%d" i, Relation.of_rows schema rows))
    in
    let entry i (name, rel) =
      { Catalog.relation = name; source = i + 1; schema = Relation.schema rel;
        source_relation = name }
    in
    let env =
      Env.make ~seed:99
        ~catalog:(Catalog.make (List.mapi entry relations))
        ~sources:
          (List.mapi
             (fun i (name, rel) ->
               { Env.source_id = i + 1; relations = [ (name, rel) ];
                 policy = Policy.open_policy; advertised = [] })
             relations)
        ()
    in
    let client = Env.make_client env ~identity:"cli" ~properties:[ [] ] in
    let query =
      "select * from T0 "
      ^ String.concat " "
          (List.init (n_sources - 1) (fun i -> Printf.sprintf "natural join T%d" (i + 1)))
    in
    Printf.printf "scheme: %s\nquery:  %s\n\n" (Protocol.scheme_name scheme) query;
    let chain = Multi_join.run ~scheme env client ~query in
    List.iteri
      (fun i stage ->
        Printf.printf "round %d: %s -> %d tuples (%s)\n" (i + 1) stage.Multi_join.stage_query
          (Relation.cardinality stage.Multi_join.outcome.Outcome.result)
          (if Outcome.correct stage.Multi_join.outcome then "correct" else "WRONG"))
      chain.Multi_join.stages;
    Printf.printf "\nchain correct: %b   total: %d messages, %d bytes\n"
      (Multi_join.correct chain) chain.Multi_join.total_messages chain.Multi_join.total_bytes;
    print_newline ();
    print_endline (Relation.to_string chain.Multi_join.result)
  in
  Cmd.v
    (Cmd.info "chain" ~doc:"Run successive joins over an n-source chain")
    Term.(const action $ scheme_arg $ sources)

(* ------------------------------------------------------------------ *)
(* secmed select *)

let select_cmd =
  let rows = Arg.(value & opt int 64 & info [ "rows" ] ~docv:"N" ~doc:"Rows in the relation.") in
  let partitions =
    Arg.(value & opt int 4 & info [ "partitions" ] ~docv:"K" ~doc:"Index partitions per attribute.")
  in
  let sql =
    Arg.(value & opt (some string) None
         & info [ "q"; "query" ] ~docv:"SQL" ~doc:"Selection query over relation T.")
  in
  let action partitions rows sql verbose =
    let prng = Secmed_crypto.Prng.of_int_seed 5 in
    let relation =
      Relation.of_rows
        (Schema.of_list [ ("id", Value.Tint); ("score", Value.Tint) ])
        (List.init rows (fun i ->
             [ Value.Int i; Value.Int (Secmed_crypto.Prng.uniform_int prng 1000) ]))
    in
    let dummy = Relation.of_rows (Schema.of_list [ ("x", Value.Tint) ]) [ [ Value.Int 0 ] ] in
    let env = Env.two_source ~seed:5 ~left:("T", relation) ~right:("U", dummy) () in
    let client = Env.make_client env ~identity:"cli" ~properties:[ [] ] in
    let query = Option.value ~default:"select * from T where score < 250" sql in
    Printf.printf "query: %s  (equi-depth %d)\n\n" query partitions;
    let outcome =
      Select_query.run ~strategy:(Das_partition.Equi_depth partitions) env client ~query
    in
    report outcome ~verbose ~ground_truth:None
  in
  Cmd.v
    (Cmd.info "select" ~doc:"Run a selection query over one encrypted relation")
    Term.(const action $ partitions $ rows $ sql $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* secmed report *)

let report_cmd =
  let rows = Arg.(value & opt int 32 & info [ "rows" ] ~docv:"N" ~doc:"Rows per relation.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.") in
  let all =
    Arg.(value & flag & info [ "all" ] ~doc:"Report every scheme, not just the selected one.")
  in
  let action scheme rows seed all =
    let spec = { Workload.default with rows_left = rows; rows_right = rows; seed } in
    Workload.validate spec;
    let env, client, query = Workload.scenario spec in
    let schemes = if all then Protocol.all_schemes else [ scheme ] in
    List.iter
      (fun scheme ->
        let outcome, trace =
          Obs.Trace.collect (fun () -> Protocol.run_exn scheme env client ~query)
        in
        Printf.printf "%s  (%d messages, %d bytes)\n"
          (Protocol.scheme_name scheme)
          (Transcript.message_count outcome.Outcome.transcript)
          (Transcript.total_bytes outcome.Outcome.transcript);
        print_string (Obs.Report.of_trace trace);
        print_newline ())
      schemes
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Render the per-party / per-phase cost matrix (time and crypto operations) \
             of a traced protocol run")
    Term.(const action $ scheme_arg $ rows $ seed $ all)

(* ------------------------------------------------------------------ *)
(* secmed check-bench *)

let check_bench_cmd =
  let file =
    Arg.(value & pos 0 string "BENCH_protocols.json"
         & info [] ~docv:"FILE" ~doc:"Benchmark JSON to validate.")
  in
  let action file =
    let contents =
      let ic = open_in file in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          really_input_string ic (in_channel_length ic))
    in
    let fail : 'a. string -> 'a =
     fun msg ->
      Printf.eprintf "%s: %s\n" file msg;
      exit 1
    in
    match Obs.Json.parse contents with
    | Error e -> fail ("invalid JSON: " ^ e)
    | Ok json ->
      let str = function Some (Obs.Json.Str s) -> Some s | _ -> None in
      let check_keys ~what ~name_key ~required entries =
        List.iter
          (fun entry ->
            let name =
              match str (Obs.Json.member name_key entry) with
              | Some s -> s
              | None -> fail (Printf.sprintf "entry without a %S name" name_key)
            in
            List.iter
              (fun key ->
                if Obs.Json.member key entry = None then
                  fail (Printf.sprintf "%s %S: missing key %S" what name key))
              required)
          entries
      in
      let check_entries ~what ~name_key ~required entries =
        check_keys ~what ~name_key ~required entries;
        Printf.printf "%s: ok (%d %s entries)\n" file (List.length entries) what
      in
      (* Six validated shapes: BENCH_protocols.json carries a "schemes"
         array, BENCH_resilience.json a "scenarios" array, BENCH_net.json
         a "net" array, BENCH_serve.json a "serve" array,
         BENCH_modexp.json a "modexp_ops_per_sec" array plus the
         hot-path sections, BENCH_stream.json a "stream" array plus the
         protocol-level and allocation sections. *)
      (match
         ( Obs.Json.member "schemes" json,
           Obs.Json.member "scenarios" json,
           Obs.Json.member "net" json,
           Obs.Json.member "serve" json,
           Obs.Json.member "modexp_ops_per_sec" json,
           Obs.Json.member "stream" json )
       with
       | Some (Obs.Json.List entries), _, _, _, _, _ when entries <> [] ->
         check_entries ~what:"scheme" ~name_key:"scheme"
           ~required:
             [ "domain_size"; "seconds"; "phases"; "parties"; "messages";
               "bytes"; "rounds"; "counters" ]
           entries
       | _, Some (Obs.Json.List entries), _, _, _, _ when entries <> [] ->
         check_entries ~what:"scenario" ~name_key:"scenario"
           ~required:
             [ "scheme"; "outcome"; "attempts"; "seconds"; "degraded_from";
               "breaker_transitions" ]
           entries
       | _, _, Some (Obs.Json.List entries), _, _, _ when entries <> [] ->
         check_entries ~what:"net" ~name_key:"scheme"
           ~required:
             [ "seconds_inproc"; "seconds_net"; "messages"; "bytes";
               "socket_bytes_in"; "socket_bytes_out"; "epochs"; "match" ]
           entries
       | _, _, _, Some (Obs.Json.List entries), _, _ when entries <> [] ->
         List.iter
           (fun entry ->
             (match Obs.Json.member "schemes" entry with
             | Some (Obs.Json.List per_scheme) when per_scheme <> [] ->
               check_keys ~what:"serve scheme" ~name_key:"scheme"
                 ~required:[ "sessions"; "qps"; "p50_ms"; "p95_ms"; "p99_ms" ]
                 per_scheme
             | _ -> fail "serve entry: missing or empty \"schemes\" array"))
           entries;
         check_keys ~what:"serve" ~name_key:"mode"
           ~required:
             [ "concurrency"; "sessions"; "seconds"; "qps"; "served"; "degraded";
               "unserved"; "refused"; "failed"; "p50_ms"; "p95_ms"; "p99_ms"; "schemes" ]
           entries;
         (match Obs.Json.member "tracing_overhead" json with
         | Some overhead ->
           List.iter
             (fun key ->
               if Obs.Json.member key overhead = None then
                 fail (Printf.sprintf "tracing_overhead: missing key %S" key))
             [ "concurrency"; "sessions_per_worker"; "qps_off"; "qps_on";
               "overhead_pct"; "tracing_off"; "tracing_on" ]
         | None -> fail "missing section \"tracing_overhead\"");
         (match Obs.Json.member "failover" json with
         | Some failover ->
           List.iter
             (fun key ->
               if Obs.Json.member key failover = None then
                 fail (Printf.sprintf "failover: missing key %S" key))
             [ "availability_pct"; "kill_window_p99_ms"; "failover_latency_s"; "kills";
               "drains"; "sessions"; "failed"; "violations" ];
           (match Obs.Json.member "violations" failover with
           | Some (Obs.Json.List []) -> ()
           | Some (Obs.Json.List vs) ->
             fail (Printf.sprintf "failover: soak recorded %d violations" (List.length vs))
           | _ -> fail "failover: \"violations\" is not a list")
         | None -> fail "missing section \"failover\"");
         Printf.printf "%s: ok (%d serve entries + failover soak + tracing overhead)\n"
           file (List.length entries)
       | _, _, _, _, Some (Obs.Json.List entries), _ when entries <> [] ->
         List.iter
           (fun entry ->
             List.iter
               (fun key ->
                 if Obs.Json.member key entry = None then
                   fail (Printf.sprintf "modexp entry: missing key %S" key))
               [ "modulus_bits"; "exponent_bits"; "plain"; "per_call_montgomery";
                 "cached_context"; "fixed_base" ])
           entries;
         List.iter
           (fun key ->
             if Obs.Json.member key json = None then
               fail (Printf.sprintf "missing section %S" key))
           [ "crt_paillier_ops_per_sec"; "multi_exp_ops_per_sec"; "batch_encrypt";
             "karatsuba"; "perf_sweep_seconds"; "ctx_cache" ];
         Printf.printf "%s: ok (%d modexp entries + hot-path sections)\n" file
           (List.length entries)
       | _, _, _, _, _, Some (Obs.Json.List entries) when entries <> [] ->
         (* Shape plus the two load-bearing invariants: every transfer's
            merge window stayed within its per-shard chunk bound, and
            the reused receive path allocated less than the baseline. *)
         List.iter
           (fun entry ->
             List.iter
               (fun key ->
                 if Obs.Json.member key entry = None then
                   fail (Printf.sprintf "stream entry: missing key %S" key))
               [ "rows"; "row_bytes"; "total_bytes"; "shards"; "seconds";
                 "rows_per_s"; "hwm_pending_peak"; "pending_bound"; "bounded";
                 "backlog_after" ];
             (match Obs.Json.member "bounded" entry with
             | Some (Obs.Json.Bool true) -> ()
             | _ -> fail "stream entry: merge window exceeded its chunk bound");
             match Obs.Json.member "backlog_after" entry with
             | Some (Obs.Json.Int 0) -> ()
             | _ -> fail "stream entry: chunk backlog not drained to zero")
           entries;
         (match Obs.Json.member "protocol_stream" json with
         | Some (Obs.Json.List per_scheme) when per_scheme <> [] ->
           check_keys ~what:"protocol_stream" ~name_key:"scheme"
             ~required:
               [ "rows_per_source"; "seconds"; "messages"; "bytes"; "epochs";
                 "hwm_pending_peak" ]
             per_scheme
         | _ -> fail "missing or empty \"protocol_stream\" array");
         (match Obs.Json.member "io_alloc" json with
         | Some io_alloc ->
           List.iter
             (fun key ->
               if Obs.Json.member key io_alloc = None then
                 fail (Printf.sprintf "io_alloc: missing key %S" key))
             [ "frames"; "frame_bytes"; "alloc_bytes_per_frame_reused";
               "alloc_bytes_per_frame_naive"; "reused_cheaper" ];
           (match Obs.Json.member "reused_cheaper" io_alloc with
           | Some (Obs.Json.Bool true) -> ()
           | _ ->
             fail "io_alloc: reused receive buffer allocated more than the baseline")
         | None -> fail "missing section \"io_alloc\"");
         Printf.printf "%s: ok (%d stream entries + protocol sweep + io_alloc)\n" file
           (List.length entries)
       | _ ->
         fail
           "missing or empty \"schemes\" / \"scenarios\" / \"net\" / \"serve\" / \
            \"modexp_ops_per_sec\" / \"stream\" array")
  in
  Cmd.v
    (Cmd.info "check-bench"
       ~doc:"Validate that a BENCH_protocols.json, BENCH_resilience.json, BENCH_net.json, \
             BENCH_serve.json, BENCH_modexp.json or BENCH_stream.json file parses and \
             carries the expected keys")
    Term.(const action $ file)

(* ------------------------------------------------------------------ *)
(* secmed schemes *)

let schemes_cmd =
  let action () =
    List.iter
      (fun (name, description) -> Printf.printf "%-16s %s\n" name description)
      [
        ("das", "DAS delivery, equi-depth(4) index (Listing 2)");
        ("das-singleton", "DAS with one partition per value (exact server result)");
        ("das-nested-loop", "DAS with the literal sigma-over-product mediator");
        ("commutative", "commutative encryption delivery (Listing 3)");
        ("commutative-ids", "commutative with the footnote-1 ID optimization");
        ("pm", "private matching, session-key payloads (Listing 4 + footnote 2)");
        ("pm-direct", "private matching with direct payload packing");
        ("mobile-code", "prior-work baseline: client-side join of encrypted partials");
        ("plain", "non-private baseline: trusted mediator joins plaintexts");
      ]
  in
  Cmd.v (Cmd.info "schemes" ~doc:"List available protocols") Term.(const action $ const ())

let () =
  let info =
    Cmd.info "secmed" ~version:"1.0"
      ~doc:"Secure mediation of join queries by processing ciphertexts (ICDE 2007)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; serve_cmd; source_cmd; loadgen_cmd; stats_cmd; ping_cmd; drain_cmd;
            soak_cmd; query_cmd; setop_cmd;
            chain_cmd; select_cmd;
            report_cmd; check_bench_cmd; schemes_cmd ]))

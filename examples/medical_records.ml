(* Credential-based access control in a medical scenario (the paper's
   motivating inter-enterprise setting).

   A hospital and an insurance company act as datasources; the hospital
   only releases non-sensitive rows to nurses while physicians see
   everything.  The same join query therefore yields different global
   results for different credential holders — and the mediator never sees
   any plaintext record.

   Run with:  dune exec examples/medical_records.exe *)

open Secmed_relalg
open Secmed_mediation
open Secmed_core

let admissions =
  Relation.of_rows
    (Schema.of_list
       [ ("patient_id", Value.Tint); ("diagnosis", Value.Tstring); ("sensitive", Value.Tbool) ])
    [
      [ Value.Int 17; Value.Str "fractured wrist"; Value.Bool false ];
      [ Value.Int 23; Value.Str "hiv treatment"; Value.Bool true ];
      [ Value.Int 31; Value.Str "influenza"; Value.Bool false ];
      [ Value.Int 46; Value.Str "psychiatric care"; Value.Bool true ];
      [ Value.Int 58; Value.Str "appendectomy"; Value.Bool false ];
    ]

let claims =
  Relation.of_rows
    (Schema.of_list [ ("patient_id", Value.Tint); ("claim_eur", Value.Tint) ])
    [
      [ Value.Int 17; Value.Int 420 ];
      [ Value.Int 23; Value.Int 9100 ];
      [ Value.Int 31; Value.Int 150 ];
      [ Value.Int 46; Value.Int 5300 ];
      [ Value.Int 99; Value.Int 75 ];
    ]

let hospital_policy =
  Policy.make
    [
      { Policy.requires = [ Credential.property "role" "physician" ]; grant = Policy.Full };
      {
        Policy.requires = [ Credential.property "role" "nurse" ];
        grant = Policy.Filtered (Predicate.eq_const "sensitive" (Value.Bool false));
      };
    ]

let env =
  let entry relation source rel =
    { Catalog.relation; source; schema = Relation.schema rel; source_relation = relation }
  in
  Env.make ~seed:7
    ~catalog:(Catalog.make [ entry "Admissions" 1 admissions; entry "Claims" 2 claims ])
    ~sources:
      [
        {
          Env.source_id = 1;
          relations = [ ("Admissions", admissions) ];
          policy = hospital_policy;
          advertised = [ "role" ];
        };
        {
          Env.source_id = 2;
          relations = [ ("Claims", claims) ];
          policy = Policy.open_policy;
          advertised = [];
        };
      ]
    ()

let query = "select * from Admissions natural join Claims where claim_eur > 200"

let run_as identity role =
  Printf.printf "=== %s (role=%s) ===\n" identity role;
  let client =
    Env.make_client env ~identity ~properties:[ [ Credential.property "role" role ] ]
  in
  match Protocol.run_exn (Protocol.Commutative { use_ids = false }) env client ~query with
  | outcome ->
    print_endline (Relation.to_string outcome.Outcome.result);
    Printf.printf "(correct: %b — matches a trusted mediator's answer for these credentials)\n\n"
      (Outcome.correct outcome)
  | exception Request.Access_denied source ->
    Printf.printf "access denied by datasource %d\n\n" source

let () =
  Printf.printf "Query: %s\n\n" query;
  run_as "dr-jones" "physician";
  run_as "nurse-ben" "nurse";
  run_as "visitor-eve" "visitor"

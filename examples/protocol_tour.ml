(* Side-by-side tour of all five pipelines — the paper's three protocols
   (DAS, commutative, private matching) plus the mobile-code and plaintext
   baselines — on one synthetic workload.

   Run with:  dune exec examples/protocol_tour.exe *)

open Secmed_relalg
open Secmed_mediation
open Secmed_core

let spec =
  {
    Workload.default with
    rows_left = 24;
    rows_right = 24;
    distinct_left = 12;
    distinct_right = 12;
    overlap = 6;
    seed = 2007;
  }

let () =
  let env, client, query = Workload.scenario spec in
  Printf.printf "Workload: %d+%d rows, %d+%d distinct join values, overlap %d\n"
    spec.Workload.rows_left spec.Workload.rows_right spec.Workload.distinct_left
    spec.Workload.distinct_right spec.Workload.overlap;
  Printf.printf "Query:    %s\n\n" query;
  Printf.printf "%-22s %8s %9s %9s %6s %10s %9s\n" "scheme" "correct" "result" "received"
    "msgs" "bytes" "time(ms)";
  let line = String.make 80 '-' in
  print_endline line;
  let outcomes =
    List.map
      (fun scheme ->
        let t0 = Unix.gettimeofday () in
        let o = Protocol.run_exn scheme env client ~query in
        let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
        Printf.printf "%-22s %8b %9d %9d %6d %10d %9.1f\n" (Protocol.scheme_name scheme)
          (Outcome.correct o)
          (Relation.cardinality o.Outcome.result)
          o.Outcome.client_received_tuples
          (Transcript.message_count o.Outcome.transcript)
          (Transcript.total_bytes o.Outcome.transcript)
          ms;
        o)
      Protocol.all_schemes
  in
  print_endline line;
  print_newline ();
  print_endline "Extra information disclosed (regenerated paper Table 1):";
  print_endline (Leakage.table1 outcomes);
  print_endline "Applied cryptographic primitives (regenerated paper Table 2):";
  print_endline (Leakage.table2 outcomes)

(* Quickstart: mediate one join query over two datasources with the
   commutative-encryption protocol (the paper's recommended one).

   Run with:  dune exec examples/quickstart.exe *)

open Secmed_relalg
open Secmed_core

let employees =
  Relation.of_rows
    (Schema.of_list [ ("dept", Value.Tstring); ("name", Value.Tstring) ])
    [
      [ Value.Str "radiology"; Value.Str "Dr. Adams" ];
      [ Value.Str "radiology"; Value.Str "Dr. Brown" ];
      [ Value.Str "surgery"; Value.Str "Dr. Clarke" ];
      [ Value.Str "pediatrics"; Value.Str "Dr. Diaz" ];
    ]

let budgets =
  Relation.of_rows
    (Schema.of_list [ ("dept", Value.Tstring); ("budget", Value.Tint) ])
    [
      [ Value.Str "radiology"; Value.Int 900 ];
      [ Value.Str "surgery"; Value.Int 1500 ];
      [ Value.Str "oncology"; Value.Int 1200 ];
    ]

let () =
  (* 1. Build the mediated system: two datasources behind one mediator. *)
  let env =
    Env.two_source ~seed:42 ~left:("Employees", employees) ~right:("Budgets", budgets) ()
  in

  (* 2. The client obtains a credential from the certification authority. *)
  let client =
    Env.make_client env ~identity:"alice"
      ~properties:[ [ Secmed_mediation.Credential.property "role" "controller" ] ]
  in

  (* 3. Issue a join query; the mediator combines encrypted partial
        results without ever seeing a plaintext row. *)
  let query = "select * from Employees natural join Budgets" in
  let outcome = Protocol.run_exn (Protocol.Commutative { use_ids = false }) env client ~query in

  print_endline "Global result (decrypted at the client):";
  print_endline (Relation.to_string outcome.Outcome.result);
  print_newline ();

  Printf.printf "Protocol was correct: %b\n" (Outcome.correct outcome);
  Printf.printf "Messages exchanged:   %d (%d bytes)\n"
    (Secmed_mediation.Transcript.message_count outcome.Outcome.transcript)
    (Secmed_mediation.Transcript.total_bytes outcome.Outcome.transcript);
  print_newline ();

  print_endline "What the mediator could derive (and nothing more):";
  List.iter
    (fun (what, value) -> Printf.printf "  %-32s = %d\n" what value)
    outcome.Outcome.mediator_observed

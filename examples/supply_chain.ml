(* Private matching between two loosely coupled enterprises.

   A manufacturer and a logistics provider join their records on order
   numbers via an untrusted mediator, using the homomorphic-encryption
   (private matching) protocol.  Neither company learns which of its
   records the *other* side holds beyond what the client assembles, and
   the mediator only learns the sizes of the active join domains (the
   polynomial degrees).

   Run with:  dune exec examples/supply_chain.exe *)

open Secmed_relalg
open Secmed_core

let orders =
  Relation.of_rows
    (Schema.of_list [ ("order_no", Value.Tint); ("part", Value.Tstring); ("qty", Value.Tint) ])
    [
      [ Value.Int 1001; Value.Str "bearing"; Value.Int 500 ];
      [ Value.Int 1002; Value.Str "gearbox"; Value.Int 20 ];
      [ Value.Int 1003; Value.Str "rotor"; Value.Int 64 ];
      [ Value.Int 1004; Value.Str "stator"; Value.Int 64 ];
      [ Value.Int 1005; Value.Str "coupling"; Value.Int 150 ];
    ]

let shipments =
  Relation.of_rows
    (Schema.of_list [ ("order_no", Value.Tint); ("carrier", Value.Tstring); ("eta_days", Value.Tint) ])
    [
      [ Value.Int 1002; Value.Str "north-rail"; Value.Int 4 ];
      [ Value.Int 1003; Value.Str "blue-freight"; Value.Int 11 ];
      [ Value.Int 1005; Value.Str "north-rail"; Value.Int 2 ];
      [ Value.Int 1006; Value.Str "air-express"; Value.Int 1 ];
    ]

let () =
  let env =
    Env.two_source ~seed:11 ~left:("Orders", orders) ~right:("Shipments", shipments) ()
  in
  let client =
    Env.make_client env ~identity:"auditor"
      ~properties:[ [ Secmed_mediation.Credential.property "role" "auditor" ] ]
  in
  let query = "select * from Orders natural join Shipments" in
  let outcome =
    Protocol.run_exn (Protocol.Private_matching Pm_join.Session_keys) env client ~query
  in

  print_endline "Joined orders/shipments (client-side view):";
  print_endline (Relation.to_string outcome.Outcome.result);
  print_newline ();

  (* The leakage report: what each party could derive, checked against
     the ground truth. *)
  let ground_truth = Ground_truth.compute orders shipments ~join_attr:"order_no" in
  Format.printf "Ground truth: %a@.@." Ground_truth.pp ground_truth;
  let claims = Leakage.verify outcome ~ground_truth in
  print_endline "Paper Table 1 claims, instantiated and machine-checked:";
  Format.printf "%a@." Leakage.pp_claims claims;

  print_endline "Message flow through the untrusted mediator:";
  print_endline (Secmed_mediation.Transcript.summary outcome.Outcome.transcript)

(* Sign-magnitude arbitrary-precision integers.

   Magnitudes are little-endian arrays of 31-bit limbs (base 2^31).  The
   base is chosen so that every intermediate of schoolbook multiplication
   and Knuth Algorithm-D division fits in OCaml's 63-bit native int:
   (B-1)^2 + 2*(B-1) = B^2 - 1 = 2^62 - 1 = max_int. *)

type t = { sign : int; mag : int array }
(* Invariants: [mag] has no leading (high-index) zero limb; [sign] is 0 iff
   [mag] is empty, otherwise -1 or 1. *)

exception Overflow
exception Division_by_zero_big

let limb_bits = 31
let base = 1 lsl limb_bits
let mask = base - 1

(* Calibrated by the A4 ablation (bench/ablations.ml): one Karatsuba
   split first beats schoolbook at 40-limb (~1240-bit) operands on the
   31-bit-limb representation; see the "karatsuba" section of
   BENCH_modexp.json for the measured sweep. *)
let karatsuba_threshold = ref 40

let zero = { sign = 0; mag = [||] }

(* ------------------------------------------------------------------ *)
(* Magnitude (nat) helpers: arrays may carry leading zeros internally;
   [trim] restores the canonical form. *)

let trim_len (a : int array) =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  !n

let trim a =
  let n = trim_len a in
  if n = Array.length a then a else Array.sub a 0 n

let nat_of_int n =
  (* n >= 0 *)
  if n = 0 then [||]
  else if n < base then [| n |]
  else begin
    let rec count acc v = if v = 0 then acc else count (acc + 1) (v lsr limb_bits) in
    let len = count 0 n in
    Array.init len (fun i -> (n lsr (i * limb_bits)) land mask)
  end

let nat_cmp a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let nat_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let av = if i < la then a.(i) else 0 in
    let bv = if i < lb then b.(i) else 0 in
    let s = av + bv + !carry in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  trim r

(* [nat_sub a b] requires a >= b. *)
let nat_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bv = if i < lb then b.(i) else 0 in
    let d = a.(i) - bv - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  trim r

let nat_mul_school a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          (* ai * b.(j) <= (B-1)^2; + r + carry <= B^2 - 1 = max_int *)
          let p = (ai * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- p land mask;
          carry := p lsr limb_bits
        done;
        r.(i + lb) <- r.(i + lb) + !carry
      end
    done;
    trim r
  end

(* Karatsuba split at limb k: x = x1 * B^k + x0. *)
let nat_split a k =
  let la = Array.length a in
  if la <= k then (a, [||])
  else (Array.sub a 0 k, Array.sub a k (la - k))

let rec nat_mul a b =
  let la = Array.length a and lb = Array.length b in
  let smaller = if la < lb then la else lb in
  if smaller < !karatsuba_threshold then nat_mul_school a b
  else begin
    let k = (if la > lb then la else lb) / 2 in
    let a0, a1 = nat_split a k in
    let b0, b1 = nat_split b k in
    let z0 = nat_mul a0 b0 in
    let z2 = nat_mul a1 b1 in
    let z1 = nat_sub (nat_mul (nat_add a0 a1) (nat_add b0 b1)) (nat_add z0 z2) in
    (* result = z2 * B^2k + z1 * B^k + z0 *)
    let lr = la + lb in
    let r = Array.make lr 0 in
    Array.blit z0 0 r 0 (Array.length z0);
    let add_shifted src off =
      let carry = ref 0 in
      let ls = Array.length src in
      let i = ref 0 in
      while !i < ls || !carry <> 0 do
        let idx = off + !i in
        let sv = if !i < ls then src.(!i) else 0 in
        let s = r.(idx) + sv + !carry in
        r.(idx) <- s land mask;
        carry := s lsr limb_bits;
        incr i
      done
    in
    add_shifted z1 k;
    add_shifted z2 (2 * k);
    trim r
  end

let nat_shift_left a n =
  if Array.length a = 0 then [||]
  else begin
    let limbs = n / limb_bits and bits = n mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    if bits = 0 then Array.blit a 0 r limbs la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let v = (a.(i) lsl bits) lor !carry in
        r.(i + limbs) <- v land mask;
        carry := v lsr limb_bits
      done;
      r.(la + limbs) <- !carry
    end;
    trim r
  end

let nat_shift_right a n =
  let limbs = n / limb_bits and bits = n mod limb_bits in
  let la = Array.length a in
  if limbs >= la then [||]
  else begin
    let lr = la - limbs in
    let r = Array.make lr 0 in
    if bits = 0 then Array.blit a limbs r 0 lr
    else
      for i = 0 to lr - 1 do
        let lo = a.(i + limbs) lsr bits in
        let hi = if i + limbs + 1 < la then (a.(i + limbs + 1) lsl (limb_bits - bits)) land mask else 0 in
        r.(i) <- lo lor hi
      done;
    trim r
  end

let int_numbits v =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let nat_numbits a =
  let la = Array.length a in
  if la = 0 then 0 else ((la - 1) * limb_bits) + int_numbits a.(la - 1)

(* Division by a single limb; returns (quotient, remainder-int). *)
let nat_divmod_limb a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (trim q, !r)

(* Knuth TAOCP vol.2 Algorithm D.  Requires Array.length v >= 2 and
   v trimmed (top limb non-zero), and nat_cmp u v >= 0 not required. *)
let nat_divmod_knuth u v =
  let n = Array.length v in
  let shift = limb_bits - int_numbits v.(n - 1) in
  let vn = trim (nat_shift_left v shift) in
  let un_t = nat_shift_left u shift in
  let m = Array.length u - n in
  (* Working dividend with one extra high limb. *)
  let un = Array.make (Array.length u + 1) 0 in
  Array.blit un_t 0 un 0 (Array.length un_t);
  let q = Array.make (m + 1) 0 in
  let v1 = vn.(n - 1) and v2 = vn.(n - 2) in
  for j = m downto 0 do
    let u2 = un.(j + n) and u1 = un.(j + n - 1) and u0 = un.(j + n - 2) in
    let num = (u2 lsl limb_bits) lor u1 in
    let qhat = ref (num / v1) and rhat = ref (num mod v1) in
    let continue_adjust = ref true in
    while !continue_adjust do
      if !qhat >= base || !qhat * v2 > (!rhat lsl limb_bits) lor u0 then begin
        decr qhat;
        rhat := !rhat + v1;
        if !rhat >= base then continue_adjust := false
      end
      else continue_adjust := false
    done;
    (* Multiply and subtract qhat * vn from un[j .. j+n]. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * vn.(i)) + !carry in
      carry := p lsr limb_bits;
      let d = un.(j + i) - (p land mask) - !borrow in
      if d < 0 then begin
        un.(j + i) <- d + base;
        borrow := 1
      end
      else begin
        un.(j + i) <- d;
        borrow := 0
      end
    done;
    let d = un.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* qhat was one too large: add back. *)
      un.(j + n) <- d + base;
      decr qhat;
      let carry2 = ref 0 in
      for i = 0 to n - 1 do
        let s = un.(j + i) + vn.(i) + !carry2 in
        un.(j + i) <- s land mask;
        carry2 := s lsr limb_bits
      done;
      un.(j + n) <- (un.(j + n) + !carry2) land mask
    end
    else un.(j + n) <- d;
    q.(j) <- !qhat
  done;
  let r = nat_shift_right (trim (Array.sub un 0 n)) shift in
  (trim q, r)

let nat_divmod a b =
  let lb = Array.length b in
  if lb = 0 then raise Division_by_zero_big
  else if nat_cmp a b < 0 then ([||], a)
  else if lb = 1 then begin
    let q, r = nat_divmod_limb a b.(0) in
    (q, nat_of_int r)
  end
  else nat_divmod_knuth a b

(* ------------------------------------------------------------------ *)
(* Signed layer. *)

let make sign mag =
  let mag = trim mag in
  if Array.length mag = 0 then zero else { sign; mag }

let one = { sign = 1; mag = [| 1 |] }
let two = { sign = 1; mag = [| 2 |] }
let minus_one = { sign = -1; mag = [| 1 |] }

let of_int n =
  if n = 0 then zero
  else if n > 0 then { sign = 1; mag = nat_of_int n }
  else if n = min_int then
    (* -min_int overflows; build from magnitude bits directly. *)
    { sign = -1; mag = nat_add (nat_of_int max_int) [| 1 |] }
  else { sign = -1; mag = nat_of_int (-n) }

let to_int_opt a =
  let la = Array.length a.mag in
  if la = 0 then Some 0
  else if nat_numbits a.mag > 62 then
    if a.sign < 0 && nat_numbits a.mag = 63 then begin
      (* Could still be min_int. *)
      let m = of_int min_int in
      if nat_cmp a.mag m.mag = 0 then Some min_int else None
    end
    else None
  else begin
    let v = ref 0 in
    for i = la - 1 downto 0 do
      v := (!v lsl limb_bits) lor a.mag.(i)
    done;
    Some (a.sign * !v)
  end

let to_int a = match to_int_opt a with Some v -> v | None -> raise Overflow

let sign a = a.sign
let is_zero a = a.sign = 0
let is_one a = a.sign = 1 && Array.length a.mag = 1 && a.mag.(0) = 1
let is_even a = a.sign = 0 || a.mag.(0) land 1 = 0
let is_odd a = not (is_even a)

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then nat_cmp a.mag b.mag
  else nat_cmp b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let hash a = Hashtbl.hash (a.sign, a.mag)

let neg a = if a.sign = 0 then zero else { a with sign = -a.sign }
let abs a = if a.sign < 0 then neg a else a

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (nat_add a.mag b.mag)
  else begin
    let c = nat_cmp a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (nat_sub a.mag b.mag)
    else make b.sign (nat_sub b.mag a.mag)
  end

let sub a b = add a (neg b)
let succ a = add a one
let pred a = sub a one

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (nat_mul a.mag b.mag)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero_big
  else if a.sign = 0 then (zero, zero)
  else begin
    let q, r = nat_divmod a.mag b.mag in
    let quotient = make (a.sign * b.sign) q in
    let remainder = make a.sign r in
    (quotient, remainder)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let ediv_rem a b =
  let q, r = divmod a b in
  if r.sign >= 0 then (q, r)
  else if b.sign > 0 then (pred q, add r b)
  else (succ q, sub r b)

let ediv a b = fst (ediv_rem a b)
let emod a b = snd (ediv_rem a b)

let mul_int a n = mul a (of_int n)
let add_int a n = add a (of_int n)

let pow a n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent"
  else begin
    let rec go acc b n =
      if n = 0 then acc
      else begin
        let acc = if n land 1 = 1 then mul acc b else acc in
        go acc (mul b b) (n lsr 1)
      end
    in
    go one a n
  end

let shift_left a n =
  if n < 0 then invalid_arg "Bigint.shift_left: negative count"
  else if a.sign = 0 || n = 0 then a
  else make a.sign (nat_shift_left a.mag n)

let shift_right a n =
  if n < 0 then invalid_arg "Bigint.shift_right: negative count"
  else if a.sign = 0 || n = 0 then a
  else make a.sign (nat_shift_right a.mag n)

let numbits a = nat_numbits a.mag

let testbit a n =
  if n < 0 then invalid_arg "Bigint.testbit: negative index"
  else begin
    let limb = n / limb_bits and bit = n mod limb_bits in
    limb < Array.length a.mag && (a.mag.(limb) lsr bit) land 1 = 1
  end

(* ------------------------------------------------------------------ *)
(* Number theory. *)

let gcd a b =
  let rec go a b = if is_zero b then a else go b (emod a b) in
  go (abs a) (abs b)

let extended_gcd a b =
  (* Invariants: r = u*a + v*b for both running rows. *)
  let rec go r0 u0 v0 r1 u1 v1 =
    if is_zero r1 then (r0, u0, v0)
    else begin
      let q = div r0 r1 in
      go r1 u1 v1 (sub r0 (mul q r1)) (sub u0 (mul q u1)) (sub v0 (mul q v1))
    end
  in
  let g, u, v = go a one zero b zero one in
  if g.sign < 0 then (neg g, neg u, neg v) else (g, u, v)

let mod_inverse a m =
  if m.sign <= 0 then invalid_arg "Bigint.mod_inverse: modulus must be positive"
  else begin
    let g, u, _ = extended_gcd (emod a m) m in
    if is_one g then Some (emod u m) else None
  end

(* Plain square-and-multiply with full divisions after every step; kept as
   the reference implementation and the fallback for even moduli. *)
let mod_pow_plain b e m =
  let nbits = numbits e in
  let result = ref one and acc = ref b in
  for i = 0 to nbits - 1 do
    if testbit e i then result := emod (mul !result !acc) m;
    if i < nbits - 1 then acc := emod (mul !acc !acc) m
  done;
  !result

(* ------------------------------------------------------------------ *)
(* Montgomery arithmetic (CIOS) for odd moduli: multiplication in the
   Montgomery domain avoids the per-step long division of the plain
   route.  All loops stay within the 63-bit int bounds established for
   the schoolbook multiplier. *)

module Montgomery = struct
  type ctx = {
    m : int array; (* modulus limbs, n >= 1, odd *)
    n : int;
    m_prime : int; (* -m^{-1} mod B *)
    modulus : t;
    r_mod_m : t; (* B^n mod m: the Montgomery representation of 1 *)
    r2_mod_m : int array; (* B^2n mod m: converts into the domain by mont_mul *)
  }

  (* Inverse of an odd limb modulo B = 2^31 by Newton iteration. *)
  let limb_inverse m0 =
    let x = ref m0 in
    (* Each step doubles the number of correct low bits; 5 steps > 31. *)
    for _ = 1 to 5 do
      x := (!x * ((2 - (m0 * !x)) land mask)) land mask
    done;
    !x

  let create modulus =
    if modulus.sign <= 0 || is_even modulus || is_one modulus then None
    else begin
      let m = modulus.mag in
      let n = Array.length m in
      let m_prime = (base - limb_inverse m.(0)) land mask in
      let r_mod_m = emod { sign = 1; mag = nat_shift_left [| 1 |] (n * limb_bits) } modulus in
      let r2_mod_m =
        (emod { sign = 1; mag = nat_shift_left [| 1 |] (2 * n * limb_bits) } modulus).mag
      in
      Some { m; n; m_prime; modulus; r_mod_m; r2_mod_m }
    end

  (* t <- (a * b + (..) * m) / B^n, result < 2m then conditionally
     subtracted; a, b are n-limb Montgomery representatives (< m). *)
  let mont_mul ctx a b =
    let n = ctx.n and m = ctx.m in
    let t = Array.make (n + 2) 0 in
    for i = 0 to n - 1 do
      let ai = if i < Array.length a then a.(i) else 0 in
      (* t += a_i * b *)
      let carry = ref 0 in
      for j = 0 to n - 1 do
        let bj = if j < Array.length b then b.(j) else 0 in
        let sum = t.(j) + (ai * bj) + !carry in
        t.(j) <- sum land mask;
        carry := sum lsr limb_bits
      done;
      let sum = t.(n) + !carry in
      t.(n) <- sum land mask;
      t.(n + 1) <- t.(n + 1) + (sum lsr limb_bits);
      (* Reduce one limb: add mtimes * m and shift right one limb. *)
      let mtimes = (t.(0) * ctx.m_prime) land mask in
      let carry = ref ((t.(0) + (mtimes * m.(0))) lsr limb_bits) in
      for j = 1 to n - 1 do
        let sum = t.(j) + (mtimes * m.(j)) + !carry in
        t.(j - 1) <- sum land mask;
        carry := sum lsr limb_bits
      done;
      let sum = t.(n) + !carry in
      t.(n - 1) <- sum land mask;
      t.(n) <- t.(n + 1) + (sum lsr limb_bits);
      t.(n + 1) <- 0
    done;
    let result = trim (Array.sub t 0 (n + 1)) in
    if nat_cmp result ctx.m >= 0 then nat_sub result ctx.m else result

  let to_mont ctx x =
    (* x * B^n mod m = mont_mul x (B^2n mod m): one CIOS pass instead of
       the shift-and-divide the seed paid per conversion. *)
    mont_mul ctx x.mag ctx.r2_mod_m

  let from_mont ctx x = make 1 (mont_mul ctx x [| 1 |])

  (* Left-to-right 4-bit fixed-window exponentiation entirely in the
     Montgomery domain: takes and returns Montgomery representatives, so
     callers chaining many operations avoid per-step conversions. *)
  let pow_mont ctx b_mont e =
    if is_zero e then ctx.r_mod_m.mag
    else begin
      let one_mont = ctx.r_mod_m.mag in
      (* Precompute b^0..b^15 in Montgomery form. *)
      let window = 4 in
      let table = Array.make (1 lsl window) one_mont in
      for i = 1 to (1 lsl window) - 1 do
        table.(i) <- mont_mul ctx table.(i - 1) b_mont
      done;
      let nbits = numbits e in
      let top_chunk = (nbits + window - 1) / window in
      let acc = ref one_mont in
      for chunk = top_chunk - 1 downto 0 do
        if chunk < top_chunk - 1 then
          for _ = 1 to window do
            acc := mont_mul ctx !acc !acc
          done;
        let digit = ref 0 in
        for bit = window - 1 downto 0 do
          let position = (chunk * window) + bit in
          digit := (!digit lsl 1) lor (if position < nbits && testbit e position then 1 else 0)
        done;
        if !digit <> 0 then acc := mont_mul ctx !acc table.(!digit)
      done;
      !acc
    end

  let mod_pow ctx b e =
    if is_zero e then emod one ctx.modulus
    else from_mont ctx (pow_mont ctx (to_mont ctx (emod b ctx.modulus)) e)
end

let use_montgomery = ref true

(* ------------------------------------------------------------------ *)
(* Reusable per-modulus contexts.  A [Ctx.ctx] carries the Montgomery
   state (inverse limb, R mod m) for one modulus so that the setup cost
   is paid once per modulus instead of once per exponentiation.  Even
   moduli (for which no Montgomery inverse exists) degrade to a plain
   context whose operations fall back to division-based arithmetic. *)

module Ctx = struct
  type kind =
    | Mont of Montgomery.ctx
    | Plain (* even modulus, or modulus = 1: no Montgomery inverse *)

  type ctx = { modulus : t; kind : kind }

  (* Montgomery-domain representative: a trimmed limb array < m.  For a
     [Plain] context the "domain" is the ordinary residue ring, so the
     representative is just the reduced magnitude. *)
  type mont = int array

  let create modulus =
    if modulus.sign <= 0 then
      invalid_arg "Bigint.Ctx.create: modulus must be positive"
    else begin
      match Montgomery.create modulus with
      | Some mc -> { modulus; kind = Mont mc }
      | None -> { modulus; kind = Plain }
    end

  let modulus c = c.modulus

  let uses_montgomery c =
    !use_montgomery && (match c.kind with Mont _ -> true | Plain -> false)

  let mod_mul c a b = emod (mul a b) c.modulus

  let to_mont c x =
    let x = emod x c.modulus in
    match c.kind with
    | Mont mc -> Montgomery.to_mont mc x
    | Plain -> x.mag

  let of_mont c r =
    match c.kind with
    | Mont mc -> Montgomery.from_mont mc r
    | Plain -> make 1 r

  let mont_one c =
    match c.kind with
    | Mont mc -> mc.Montgomery.r_mod_m.mag
    | Plain -> (emod one c.modulus).mag

  (* Representatives are canonical (reduced below m and trimmed), so
     structural equality of the limb arrays decides value equality. *)
  let mont_equal (a : mont) (b : mont) = a = b

  let mont_mul c a b =
    match c.kind with
    | Mont mc -> Montgomery.mont_mul mc a b
    | Plain -> (emod (mul (make 1 a) (make 1 b)) c.modulus).mag

  let mont_pow c b e =
    if e.sign < 0 then invalid_arg "Bigint.Ctx.mont_pow: negative exponent"
    else begin
      match c.kind with
      | Mont mc -> Montgomery.pow_mont mc b e
      | Plain ->
        if is_one c.modulus then [||]
        else (mod_pow_plain (make 1 b) e c.modulus).mag
    end

  let mod_pow c b e =
    let m = c.modulus in
    if is_one m then zero
    else begin
      let b =
        if e.sign < 0 then
          match mod_inverse b m with
          | Some inv -> inv
          | None ->
            invalid_arg "Bigint.Ctx.mod_pow: negative exponent, base not invertible"
        else emod b m
      in
      let e = abs e in
      match c.kind with
      | Mont mc when !use_montgomery && numbits e > 16 -> Montgomery.mod_pow mc b e
      | Mont _ | Plain -> mod_pow_plain b e m
    end
end

(* ------------------------------------------------------------------ *)
(* Transparent bounded context cache.  The protocol workloads reuse a
   handful of moduli (n^2, p, q, prime candidates) across thousands of
   exponentiations; caching the contexts drops Montgomery setup from
   O(#modexps) to O(#moduli) without any caller-visible API change. *)

let ctx_cache_slots = 8

type ctx_slot = { slot_ctx : Ctx.ctx; mutable stamp : int }

(* The cache is domain-local state: each domain gets its own slot array
   and counters, so concurrent domains never race on the LRU bookkeeping
   (the slot mutations and tick/hit/miss increments are unsynchronised).
   Contexts built under one domain are immutable after creation and could
   in principle be shared, but the bookkeeping around them cannot; per-
   domain replication keeps the fast path free of locks at the cost of
   one table rebuild per (domain, modulus) pair. *)
type ctx_cache_state = {
  slots : ctx_slot option array;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let ctx_cache_key : ctx_cache_state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { slots = Array.make ctx_cache_slots None; tick = 0; hits = 0; misses = 0 })

let ctx_cache () = Domain.DLS.get ctx_cache_key

let ctx_cache_stats () =
  let st = ctx_cache () in
  (st.hits, st.misses)

let ctx_cache_reset () =
  let st = ctx_cache () in
  Array.fill st.slots 0 ctx_cache_slots None;
  st.tick <- 0;
  st.hits <- 0;
  st.misses <- 0

let ctx_of_modulus m =
  let st = ctx_cache () in
  st.tick <- st.tick + 1;
  let found = ref None in
  for i = 0 to ctx_cache_slots - 1 do
    match st.slots.(i) with
    | Some slot when !found = None && equal (Ctx.modulus slot.slot_ctx) m ->
      slot.stamp <- st.tick;
      found := Some slot.slot_ctx
    | _ -> ()
  done;
  match !found with
  | Some c ->
    st.hits <- st.hits + 1;
    c
  | None ->
    st.misses <- st.misses + 1;
    let c = Ctx.create m in
    (* Evict the least-recently-used slot (empty slots have stamp 0). *)
    let victim = ref 0 and victim_stamp = ref max_int in
    for i = 0 to ctx_cache_slots - 1 do
      let stamp = match st.slots.(i) with None -> 0 | Some slot -> slot.stamp in
      if stamp < !victim_stamp then begin
        victim := i;
        victim_stamp := stamp
      end
    done;
    st.slots.(!victim) <- Some { slot_ctx = c; stamp = st.tick };
    c

let cached_ctx m =
  if m.sign <= 0 then invalid_arg "Bigint.cached_ctx: modulus must be positive"
  else ctx_of_modulus m

let mod_pow b e m =
  if m.sign <= 0 then invalid_arg "Bigint.mod_pow: modulus must be positive"
  else if is_one m then zero
  else begin
    let b =
      if e.sign < 0 then
        match mod_inverse b m with
        | Some inv -> inv
        | None -> invalid_arg "Bigint.mod_pow: negative exponent, base not invertible"
      else emod b m
    in
    let e = abs e in
    (* Montgomery pays off once the exponent is more than a few words;
       only odd moduli enter the cache, so every cached context carries
       usable Montgomery state. *)
    if !use_montgomery && is_odd m && numbits e > 16 then
      Ctx.mod_pow (ctx_of_modulus m) b e
    else mod_pow_plain b e m
  end

(* ------------------------------------------------------------------ *)
(* Fixed-base windowed exponentiation.  For a base that is raised to
   many different exponents under one modulus (group generators, public
   keys), precompute base^(d * 16^i) for every 4-bit window position i
   and digit d in Montgomery form: an exponentiation then costs one
   multiplication per non-zero window and no squarings at all. *)

module Fixed_base = struct
  let window = 4

  type fb = {
    fb_ctx : Ctx.ctx;
    fb_base : t;
    covered_bits : int; (* exponents of up to this many bits use the table *)
    table : mont_table;
  }

  and mont_table = Ctx.mont array array
  (* table.(i).(d-1) = base^(d * 16^i) in the Montgomery domain. *)

  let create ~base ~modulus ~bits =
    if bits <= 0 then invalid_arg "Bigint.Fixed_base.create: bits must be positive";
    let fb_ctx = Ctx.create modulus in
    let windows = (bits + window - 1) / window in
    let digits = (1 lsl window) - 1 in
    let cur = ref (Ctx.to_mont fb_ctx base) in
    let table =
      Array.init windows (fun _ ->
          let row = Array.make digits !cur in
          for d = 1 to digits - 1 do
            row.(d) <- Ctx.mont_mul fb_ctx row.(d - 1) !cur
          done;
          (* base^(16^(i+1)) = base^(15 * 16^i) * base^(16^i). *)
          cur := Ctx.mont_mul fb_ctx row.(digits - 1) !cur;
          row)
    in
    { fb_ctx; fb_base = base; covered_bits = windows * window; table }

  let base fb = fb.fb_base
  let modulus fb = Ctx.modulus fb.fb_ctx

  let pow fb e =
    let m = Ctx.modulus fb.fb_ctx in
    if is_one m then zero
    else if e.sign < 0 || numbits e > fb.covered_bits || not (Ctx.uses_montgomery fb.fb_ctx)
    then
      (* Out-of-range exponents and the [use_montgomery := false]
         ablation take the general (context) route. *)
      Ctx.mod_pow fb.fb_ctx fb.fb_base e
    else if is_zero e then emod one m
    else begin
      let acc = ref (Ctx.mont_one fb.fb_ctx) in
      let nbits = numbits e in
      let windows = (nbits + window - 1) / window in
      for i = 0 to windows - 1 do
        let digit = ref 0 in
        for bit = window - 1 downto 0 do
          let position = (i * window) + bit in
          digit :=
            (!digit lsl 1) lor (if position < nbits && testbit e position then 1 else 0)
        done;
        if !digit <> 0 then acc := Ctx.mont_mul fb.fb_ctx !acc fb.table.(i).(!digit - 1)
      done;
      Ctx.of_mont fb.fb_ctx !acc
    end

  (* Bounded cache of tables keyed on (base, modulus), LRU eviction as
     for the context cache.  A cached table is reused when it covers at
     least the requested exponent width. *)

  let cache_slots = 8

  type fb_slot = { slot_fb : fb; mutable fb_stamp : int }

  (* Domain-local for the same reason as the context cache: tables are
     immutable once built, but the LRU slots and stamps are not. *)
  type fb_cache_state = {
    fb_slots : fb_slot option array;
    mutable fb_tick : int;
  }

  let cache_key : fb_cache_state Domain.DLS.key =
    Domain.DLS.new_key (fun () ->
        { fb_slots = Array.make cache_slots None; fb_tick = 0 })

  let cached ~base ~modulus ~bits =
    let st = Domain.DLS.get cache_key in
    st.fb_tick <- st.fb_tick + 1;
    let found = ref None in
    for i = 0 to cache_slots - 1 do
      match st.fb_slots.(i) with
      | Some slot
        when !found = None
             && equal slot.slot_fb.fb_base base
             && equal (Ctx.modulus slot.slot_fb.fb_ctx) modulus
             && slot.slot_fb.covered_bits >= bits ->
        slot.fb_stamp <- st.fb_tick;
        found := Some slot.slot_fb
      | _ -> ()
    done;
    match !found with
    | Some fb -> fb
    | None ->
      let fb = create ~base ~modulus ~bits in
      let victim = ref 0 and victim_stamp = ref max_int in
      for i = 0 to cache_slots - 1 do
        let stamp = match st.fb_slots.(i) with None -> 0 | Some slot -> slot.fb_stamp in
        if stamp < !victim_stamp then begin
          victim := i;
          victim_stamp := stamp
        end
      done;
      st.fb_slots.(!victim) <- Some { slot_fb = fb; fb_stamp = st.fb_tick };
      fb
end

(* ------------------------------------------------------------------ *)
(* Simultaneous multi-exponentiation (Shamir's trick).  b1^e1 * b2^e2
   is computed with one joint 2-bit-window scan of both exponents over
   a shared Montgomery context: the squaring chain is paid once instead
   of twice, and each window column costs at most one multiplication by
   a precomputed b1^i * b2^j table entry.  Against two independent
   windowed exponentiations this saves ~40% of the modular
   multiplications, which is exactly the shape of Paillier's g^m * r^n
   encrypt-then-mask and ElGamal's m * y^r. *)

module Multi_exp = struct
  let window = 2

  (* In-domain core: a^ea * b^eb for non-negative exponents. *)
  let mont_pow2 (c : Ctx.ctx) (a : Ctx.mont) ea (b : Ctx.mont) eb =
    if ea.sign < 0 || eb.sign < 0 then
      invalid_arg "Bigint.Multi_exp: negative exponent";
    let one_m = Ctx.mont_one c in
    (* table.(i).(j) = a^i * b^j for i, j in 0..3. *)
    let table = Array.make_matrix 4 4 one_m in
    for j = 1 to 3 do
      table.(0).(j) <- Ctx.mont_mul c table.(0).(j - 1) b
    done;
    for i = 1 to 3 do
      table.(i).(0) <- Ctx.mont_mul c table.(i - 1).(0) a;
      for j = 1 to 3 do
        table.(i).(j) <- Ctx.mont_mul c table.(i).(j - 1) b
      done
    done;
    let nbits = Stdlib.max (numbits ea) (numbits eb) in
    if nbits = 0 then one_m
    else begin
      let cols = (nbits + window - 1) / window in
      let digit e col =
        let d = ref 0 in
        for bit = window - 1 downto 0 do
          let pos = (col * window) + bit in
          d := (!d lsl 1) lor (if testbit e pos then 1 else 0)
        done;
        !d
      in
      let acc = ref one_m in
      let started = ref false in
      for col = cols - 1 downto 0 do
        if !started then
          for _ = 1 to window do
            acc := Ctx.mont_mul c !acc !acc
          done;
        let da = digit ea col and db = digit eb col in
        if da <> 0 || db <> 0 then begin
          acc := if !started then Ctx.mont_mul c !acc table.(da).(db) else table.(da).(db);
          started := true
        end
      done;
      !acc
    end

  let pow2 c (b1, e1) (b2, e2) =
    if is_one (Ctx.modulus c) then zero
    else if e1.sign < 0 || e2.sign < 0 then
      invalid_arg "Bigint.Multi_exp.pow2: negative exponent"
    else if Ctx.uses_montgomery c then
      Ctx.of_mont c
        (mont_pow2 c (Ctx.to_mont c b1) e1 (Ctx.to_mont c b2) e2)
    else
      (* Even-modulus / ablation fallback: two plain exponentiations. *)
      Ctx.mod_mul c (Ctx.mod_pow c b1 e1) (Ctx.mod_pow c b2 e2)

  (* a * b^e with the conversions fused: one to_mont for [a] instead of
     a full-width modular multiplication at the end. *)
  let mul_pow c a b e =
    if is_one (Ctx.modulus c) then zero
    else if e.sign < 0 then Ctx.mod_mul c a (Ctx.mod_pow c b e)
    else if Ctx.uses_montgomery c then begin
      let b_m = Ctx.to_mont c b in
      let p_m = Ctx.mont_pow c b_m e in
      Ctx.of_mont c (Ctx.mont_mul c (Ctx.to_mont c a) p_m)
    end
    else Ctx.mod_mul c a (Ctx.mod_pow c b e)

  (* a * base^e against a fixed-base table: the table multiplications
     accumulate directly onto [a] in the Montgomery domain, so a full
     exponentiation-then-multiply collapses into the window scan. *)
  let mul_pow_fb (fb : Fixed_base.fb) a e =
    let c = fb.Fixed_base.fb_ctx in
    let m = Ctx.modulus c in
    if is_one m then zero
    else if
      e.sign < 0
      || numbits e > fb.Fixed_base.covered_bits
      || not (Ctx.uses_montgomery c)
    then Ctx.mod_mul c a (Fixed_base.pow fb e)
    else begin
      let w = Fixed_base.window in
      let acc = ref (Ctx.to_mont c a) in
      let nbits = numbits e in
      let windows = (nbits + w - 1) / w in
      for i = 0 to windows - 1 do
        let digit = ref 0 in
        for bit = w - 1 downto 0 do
          let position = (i * w) + bit in
          digit :=
            (!digit lsl 1)
            lor (if position < nbits && testbit e position then 1 else 0)
        done;
        if !digit <> 0 then
          acc := Ctx.mont_mul c !acc fb.Fixed_base.table.(i).(!digit - 1)
      done;
      Ctx.of_mont c !acc
    end

  (* base^e1 * b2^e2 where [base] has a fixed-base table: b2^e2 runs the
     shared squaring chain and the table entries for e1 (absolute powers,
     independent of the chain) are folded in afterwards, all in-domain. *)
  let pow2_fb (fb : Fixed_base.fb) e1 (b2, e2) =
    let c = fb.Fixed_base.fb_ctx in
    let m = Ctx.modulus c in
    if is_one m then zero
    else if
      e1.sign < 0 || e2.sign < 0
      || numbits e1 > fb.Fixed_base.covered_bits
      || not (Ctx.uses_montgomery c)
    then Ctx.mod_mul c (Fixed_base.pow fb e1) (Ctx.mod_pow c b2 e2)
    else begin
      let p2_m = Ctx.mont_pow c (Ctx.to_mont c b2) e2 in
      let w = Fixed_base.window in
      let acc = ref p2_m in
      let nbits = numbits e1 in
      let windows = (nbits + w - 1) / w in
      for i = 0 to windows - 1 do
        let digit = ref 0 in
        for bit = w - 1 downto 0 do
          let position = (i * w) + bit in
          digit :=
            (!digit lsl 1)
            lor (if position < nbits && testbit e1 position then 1 else 0)
        done;
        if !digit <> 0 then
          acc := Ctx.mont_mul c !acc fb.Fixed_base.table.(i).(!digit - 1)
      done;
      Ctx.of_mont c !acc
    end
end

(* ------------------------------------------------------------------ *)
(* String conversions.  Decimal I/O works in chunks of 9 digits
   (10^9 < 2^31 fits in one limb). *)

let chunk_pow = 1_000_000_000
let chunk_digits = 9

let to_string a =
  if a.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks acc mag =
      if Array.length mag = 0 then acc
      else begin
        let q, r = nat_divmod_limb mag chunk_pow in
        chunks (r :: acc) q
      end
    in
    (match chunks [] a.mag with
     | [] -> assert false
     | first :: rest ->
       if a.sign < 0 then Buffer.add_char buf '-';
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let to_hex a =
  if a.sign = 0 then "0x0"
  else begin
    let buf = Buffer.create 32 in
    if a.sign < 0 then Buffer.add_char buf '-';
    Buffer.add_string buf "0x";
    let nbits = numbits a in
    let top_nibble = ((nbits - 1) / 4) * 4 in
    let started = ref false in
    let pos = ref top_nibble in
    while !pos >= 0 do
      let nib = ref 0 in
      for b = 3 downto 0 do
        nib := (!nib lsl 1) lor (if testbit a (!pos + b) then 1 else 0)
      done;
      if !nib <> 0 || !started || !pos = 0 then begin
        started := true;
        Buffer.add_char buf "0123456789abcdef".[!nib]
      end;
      pos := !pos - 4
    done;
    Buffer.contents buf
  end

let pp fmt a = Format.pp_print_string fmt (to_string a)

let parse_decimal s start =
  let len = String.length s in
  if start >= len then invalid_arg "Bigint.of_string: empty magnitude";
  let acc = ref zero in
  let chunk = ref 0 and chunk_len = ref 0 in
  let flush () =
    if !chunk_len > 0 then begin
      let scale = pow (of_int 10) !chunk_len in
      acc := add (mul !acc scale) (of_int !chunk);
      chunk := 0;
      chunk_len := 0
    end
  in
  let saw_digit = ref false in
  for i = start to len - 1 do
    match s.[i] with
    | '0' .. '9' as c ->
      saw_digit := true;
      chunk := (!chunk * 10) + (Char.code c - Char.code '0');
      incr chunk_len;
      if !chunk_len = chunk_digits then flush ()
    | '_' -> ()
    | c -> invalid_arg (Printf.sprintf "Bigint.of_string: bad character %C" c)
  done;
  flush ();
  if not !saw_digit then invalid_arg "Bigint.of_string: no digits";
  !acc

let parse_hex s start =
  let len = String.length s in
  let acc = ref zero in
  let saw_digit = ref false in
  for i = start to len - 1 do
    match s.[i] with
    | '_' -> ()
    | c ->
      let v =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> invalid_arg (Printf.sprintf "Bigint.of_string: bad hex character %C" c)
      in
      saw_digit := true;
      acc := add (shift_left !acc 4) (of_int v)
  done;
  if not !saw_digit then invalid_arg "Bigint.of_string: no digits";
  !acc

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let negative, start =
    match s.[0] with
    | '-' -> (true, 1)
    | '+' -> (false, 1)
    | _ -> (false, 0)
  in
  let v =
    if len - start >= 2 && s.[start] = '0' && (s.[start + 1] = 'x' || s.[start + 1] = 'X')
    then parse_hex s (start + 2)
    else parse_decimal s start
  in
  if negative then neg v else v

let of_string_opt s = try Some (of_string s) with Invalid_argument _ -> None

(* ------------------------------------------------------------------ *)
(* Byte serialization (big-endian, magnitude only). *)

let of_bytes_be s =
  let acc = ref zero in
  String.iter (fun c -> acc := add (shift_left !acc 8) (of_int (Char.code c))) s;
  !acc

let byte_length a =
  let nb = numbits a in
  (nb + 7) / 8

let to_bytes_be a =
  if a.sign < 0 then invalid_arg "Bigint.to_bytes_be: negative value"
  else begin
    let len = byte_length a in
    String.init len (fun i ->
        let bit = (len - 1 - i) * 8 in
        let byte = ref 0 in
        for b = 7 downto 0 do
          byte := (!byte lsl 1) lor (if testbit a (bit + b) then 1 else 0)
        done;
        Char.chr !byte)
  end

let to_bytes_be_padded width a =
  let s = to_bytes_be a in
  let len = String.length s in
  if len > width then invalid_arg "Bigint.to_bytes_be_padded: value too wide"
  else String.make (width - len) '\000' ^ s

(* ------------------------------------------------------------------ *)
(* Randomness. *)

let random_bits rand_bytes n =
  if n < 0 then invalid_arg "Bigint.random_bits: negative bit count"
  else if n = 0 then zero
  else begin
    let nbytes = (n + 7) / 8 in
    let s = rand_bytes nbytes in
    if String.length s <> nbytes then invalid_arg "Bigint.random_bits: bad byte source";
    let excess = (nbytes * 8) - n in
    let v = of_bytes_be s in
    shift_right v excess
  end

let random_below rand_bytes bound =
  if bound.sign <= 0 then invalid_arg "Bigint.random_below: bound must be positive"
  else begin
    let nbits = numbits bound in
    let rec draw () =
      let v = random_bits rand_bytes nbits in
      if compare v bound < 0 then v else draw ()
    in
    draw ()
  end

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( mod ) = rem
  let ( = ) = equal
  let ( <> ) a b = not (equal a b)
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
  let ( ~- ) = neg
end

(* Integer square root by Newton's method on the bit-length-based initial
   guess; monotone convergence from above. *)
let isqrt n =
  if n.sign < 0 then invalid_arg "Bigint.isqrt: negative input"
  else if is_zero n then zero
  else begin
    let initial = shift_left one ((numbits n + 1) / 2) in
    let rec refine x =
      let next = shift_right (add x (div n x)) 1 in
      if compare next x < 0 then refine next else x
    in
    refine initial
  end

let is_square n =
  if n.sign < 0 then false
  else begin
    let s = isqrt n in
    equal (mul s s) n
  end

(* Jacobi symbol by the binary algorithm (quadratic reciprocity). *)
let jacobi a n =
  if n.sign <= 0 || is_even n then
    invalid_arg "Bigint.jacobi: modulus must be odd and positive"
  else begin
    let rec go a n acc =
      let a = emod a n in
      if is_zero a then if is_one n then acc else 0
      else begin
        (* Pull out factors of two: (2/n) = -1 iff n = 3, 5 mod 8. *)
        let twos = ref 0 and a' = ref a in
        while is_even !a' do
          a' := shift_right !a' 1;
          incr twos
        done;
        let acc =
          if !twos land 1 = 1 then begin
            let n_mod_8 = to_int (emod n (of_int 8)) in
            if n_mod_8 = 3 || n_mod_8 = 5 then -acc else acc
          end
          else acc
        in
        (* Reciprocity: flip sign iff both are 3 mod 4. *)
        let acc =
          if
            to_int (emod !a' (of_int 4)) = 3
            && to_int (emod n (of_int 4)) = 3
          then -acc
          else acc
        in
        go n !a' acc
      end
    in
    go a n 1
  end

(** Arbitrary-precision signed integers.

    Pure OCaml sign–magnitude implementation on 31-bit limbs (no external
    bignum dependency is available in this environment).  All operations are
    functional; values are immutable and structurally comparable via
    {!compare}/{!equal}.

    Conventions: [div]/[rem] truncate toward zero (like OCaml's [/] and
    [mod]); [ediv]/[emod] are Euclidean (remainder always non-negative). *)

type t

exception Overflow
(** Raised by {!to_int} when the value does not fit in an OCaml [int]. *)

exception Division_by_zero_big
(** Raised by division and modular operations on a zero divisor/modulus. *)

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Conversions} *)

val of_int : int -> t
val to_int : t -> int
val to_int_opt : t -> int option

val of_string : string -> t
(** Parses an optional sign followed by decimal digits, or a ["0x"]-prefixed
    hexadecimal literal.  Underscores are permitted as digit separators.
    Raises [Invalid_argument] on malformed input. *)

val of_string_opt : string -> t option
val to_string : t -> string
val to_hex : t -> string
(** Lowercase hexadecimal magnitude with a ["-"] sign prefix if negative and
    a ["0x"] prefix. *)

val pp : Format.formatter -> t -> unit

(** {1 Predicates and comparison} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val is_zero : t -> bool
val is_one : t -> bool
val is_even : t -> bool
val is_odd : t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val succ : t -> t
val pred : t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], [q] truncated toward zero
    and [sign r = sign a] (or [r = 0]). *)

val div : t -> t -> t
val rem : t -> t -> t

val ediv : t -> t -> t
val emod : t -> t -> t
(** Euclidean division: [emod a b] is in [\[0, |b|)]. *)

val pow : t -> int -> t
(** [pow a n] for [n >= 0]; raises [Invalid_argument] on negative [n]. *)

val mul_int : t -> int -> t
val add_int : t -> int -> t

(** {1 Bit operations}

    Bit operations act on the magnitude for non-negative values; shifting
    negative values keeps the sign and shifts the magnitude. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
val testbit : t -> int -> bool
val numbits : t -> int
(** Position of the highest set bit plus one; [numbits zero = 0]. *)

(** {1 Number theory} *)

val gcd : t -> t -> t
(** Non-negative gcd; [gcd zero zero = zero]. *)

val extended_gcd : t -> t -> t * t * t
(** [extended_gcd a b = (g, u, v)] with [u*a + v*b = g] and [g = gcd a b]. *)

val mod_inverse : t -> t -> t option
(** [mod_inverse a m] is [Some x] with [a*x = 1 (mod m)], [0 <= x < m], when
    [gcd a m = 1]; [None] otherwise.  Requires [m > 0]. *)

val mod_pow : t -> t -> t -> t
(** [mod_pow b e m] is [b^e mod m] (Euclidean residue).  Negative exponents
    use the modular inverse of [b] and raise [Invalid_argument] when the
    inverse does not exist.  Requires [m > 0].

    Odd moduli with non-trivial exponents take a Montgomery (CIOS) fast
    path whose per-modulus setup is memoized in a small transparent cache
    (see {!ctx_cache_stats}); repeated exponentiations under the same
    modulus — the shape of every protocol in this system — pay the setup
    once.  The {!use_montgomery} knob bypasses the fast path entirely. *)

(** {1 Modular-ring contexts}

    A {!Ctx.ctx} packages the per-modulus Montgomery state so hot loops
    can pay the setup (limb inverse + R mod m) once and additionally
    chain operations in the Montgomery domain without converting in and
    out at every step.  Even moduli (no Montgomery inverse exists) give
    a degraded context whose operations fall back to division-based
    arithmetic but satisfy the same equations. *)

module Ctx : sig
  type ctx
  (** Reusable context for one fixed modulus. *)

  type mont
  (** A residue in Montgomery representation (plain representation for
      even-modulus contexts).  Only meaningful with the context that
      produced it. *)

  val create : t -> ctx
  (** Requires a positive modulus; raises [Invalid_argument] otherwise. *)

  val modulus : ctx -> t

  val uses_montgomery : ctx -> bool
  (** Whether operations on this context run in the Montgomery domain:
      true iff the modulus is odd (and > 1) and {!use_montgomery} is on. *)

  val mod_pow : ctx -> t -> t -> t
  (** As {!Bigint.mod_pow} with the cached context; same conventions for
      negative exponents. *)

  val mod_mul : ctx -> t -> t -> t
  (** [a * b mod m] in the ordinary domain. *)

  val to_mont : ctx -> t -> mont
  (** Reduces mod m and converts into the Montgomery domain. *)

  val of_mont : ctx -> mont -> t

  val mont_one : ctx -> mont
  (** The representative of 1. *)

  val mont_equal : mont -> mont -> bool
  (** Value equality of two representatives of the same context. *)

  val mont_mul : ctx -> mont -> mont -> mont

  val mont_pow : ctx -> mont -> t -> mont
  (** In-domain windowed exponentiation; the exponent is an ordinary
      non-negative integer (raises [Invalid_argument] when negative). *)
end

val ctx_cache_stats : unit -> int * int
(** (hits, misses) of the transparent context cache inside {!mod_pow}
    since the last {!ctx_cache_reset}.  The cache is domain-local: each
    OCaml 5 domain sees (and resets) only its own slots and counters, so
    concurrent domains never contend on the LRU bookkeeping. *)

val ctx_cache_reset : unit -> unit
(** Empties the calling domain's transparent context cache and zeroes
    its counters. *)

val cached_ctx : t -> Ctx.ctx
(** The context for [m] from the same domain-local transparent cache
    that {!mod_pow} uses — for callers that want {!Ctx} or {!Multi_exp}
    operations against a modulus without managing context lifetimes.
    Requires [m > 0]. *)

(** {1 Fixed-base exponentiation}

    For a base raised to many exponents under one modulus (group
    generators, long-lived public keys), a precomputed table of
    [base^(d * 16^i)] in Montgomery form turns each exponentiation into
    at most one multiplication per 4-bit window — no squarings. *)

module Fixed_base : sig
  type fb

  val create : base:t -> modulus:t -> bits:int -> fb
  (** Precomputes the window table covering exponents of up to [bits]
      bits (rounded up to a whole number of 4-bit windows).  Requires
      [bits > 0] and [modulus > 0]. *)

  val cached : base:t -> modulus:t -> bits:int -> fb
  (** Bounded memoized variant of {!create} keyed on (base, modulus);
      a cached table is reused when it covers at least [bits]. *)

  val pow : fb -> t -> t
  (** [pow fb e = base^e mod modulus].  Exponents that are negative or
      wider than the table, and runs with {!use_montgomery} off, fall
      back to the general context route (still correct, not
      table-accelerated). *)

  val base : fb -> t
  val modulus : fb -> t
end

(** {1 Simultaneous multi-exponentiation}

    Shamir's trick: [b1^e1 * b2^e2 mod m] with one shared squaring chain
    and a 16-entry [b1^i * b2^j] table, scanned in joint 2-bit windows.
    Roughly [max(|e1|,|e2|)] squarings plus one multiplication per
    non-zero window column, against ~2.5 multiplications per bit for two
    independent exponentiations.  Paillier's [g^m * r^n] and ElGamal's
    [m * y^r] are exactly this shape. *)

module Multi_exp : sig
  val pow2 : Ctx.ctx -> t * t -> t * t -> t
  (** [pow2 c (b1, e1) (b2, e2) = b1^e1 * b2^e2 mod m].  Requires
      non-negative exponents (raises [Invalid_argument] otherwise).
      Even-modulus contexts and the [use_montgomery := false] ablation
      fall back to two plain exponentiations — same result, no sharing. *)

  val mont_pow2 : Ctx.ctx -> Ctx.mont -> t -> Ctx.mont -> t -> Ctx.mont
  (** In-domain core of {!pow2}: [mont_pow2 c a ea b eb = a^ea * b^eb]
      with all values in the context's Montgomery representation, for
      callers that chain further in-domain operations. *)

  val mul_pow : Ctx.ctx -> t -> t -> t -> t
  (** [mul_pow c a b e = a * b^e mod m] with the domain conversions
      fused (one conversion of [a] instead of a full-width final
      modular multiplication).  Negative [e] takes the general
      inverse-based route of {!Ctx.mod_pow}. *)

  val mul_pow_fb : Fixed_base.fb -> t -> t -> t
  (** [mul_pow_fb fb a e = a * base^e mod m] where [base]/[m] come from
      the fixed-base table: the window multiplications accumulate
      directly onto [a] in the Montgomery domain.  Exponents outside the
      table's coverage fall back to [Fixed_base.pow] then multiply. *)

  val pow2_fb : Fixed_base.fb -> t -> t * t -> t
  (** [pow2_fb fb e1 (b2, e2) = base^e1 * b2^e2 mod m]: the variable
      base runs the squaring chain, the fixed-base windows for [e1] are
      folded in afterwards without leaving the Montgomery domain. *)
end

(** {1 Byte serialization} *)

val of_bytes_be : string -> t
(** Non-negative value from big-endian bytes; [""] maps to [zero]. *)

val to_bytes_be : t -> string
(** Minimal big-endian encoding of the magnitude ([zero] gives [""]).
    Raises [Invalid_argument] on negative values. *)

val to_bytes_be_padded : int -> t -> string
(** Big-endian encoding left-padded with zero bytes to exactly the given
    width.  Raises [Invalid_argument] if the value needs more bytes. *)

(** {1 Randomness}

    Random values are drawn through a caller-supplied byte source so the
    library stays agnostic of the RNG (tests use deterministic sources). *)

val random_bits : (int -> string) -> int -> t
(** [random_bits rand_bytes n] is uniform in [\[0, 2^n)]. *)

val random_below : (int -> string) -> t -> t
(** [random_below rand_bytes bound] is uniform in [\[0, bound)] by rejection
    sampling.  Requires [bound > 0]. *)

(** {1 Infix operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( mod ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( <> ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
  val ( ~- ) : t -> t
end

(** {1 Tuning} *)

val karatsuba_threshold : int ref
(** Limb count above which multiplication switches to Karatsuba.  Exposed
    for the ablation benchmark; default 40, the measured schoolbook/
    Karatsuba crossover from the A4 calibration sweep (recorded in the
    "karatsuba" section of BENCH_modexp.json). *)

val use_montgomery : bool ref
(** Whether {!mod_pow} may take the Montgomery (CIOS) fast path for odd
    moduli (default [true]).  Exposed for the ablation benchmark; the
    plain square-and-multiply-with-division route is always used for even
    moduli and tiny exponents. *)

val mod_pow_plain : t -> t -> t -> t
(** Reference modular exponentiation (no Montgomery), exported for
    differential testing and the ablation benchmark.  Requires a
    non-negative base already reduced mod m and a non-negative exponent. *)

val isqrt : t -> t
(** Integer square root: the largest s with s*s <= n.  Raises
    [Invalid_argument] on negative input. *)

val is_square : t -> bool

val jacobi : t -> t -> int
(** Jacobi symbol (a/n) in {-1, 0, 1} for odd positive n; for prime n this
    is the Legendre symbol, deciding quadratic residuosity without a
    modular exponentiation.  Raises [Invalid_argument] when n is even or
    non-positive. *)

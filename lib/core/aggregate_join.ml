open Secmed_bigint
open Secmed_crypto
open Secmed_relalg
open Secmed_mediation

type strategy =
  | Bundles
  | Homomorphic

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* Which relation an aggregated column lives in. *)
type side = L | R

type kind =
  | K_count
  | K_sum of side * string
  | K_avg of side * string
  | K_min of side * string
  | K_max of side * string

let classify ~join_attrs left_schema right_schema (spec : Aggregate.spec) =
  match spec.Aggregate.column with
  | None -> K_count
  | Some column ->
    let bare =
      match String.index_opt column '.' with
      | None -> column
      | Some i -> String.sub column (i + 1) (String.length column - i - 1)
    in
    let in_left = Schema.mem left_schema column in
    let in_right = Schema.mem right_schema column in
    let side =
      (* A join attribute lives in both relations but carries the same
         value on both sides of every matched pair; source it from the
         left. *)
      if List.exists (String.equal bare) join_attrs then L
      else begin
        match (in_left, in_right) with
        | true, false -> L
        | false, true -> R
        | true, true -> unsupported "aggregated column %s is ambiguous, qualify it" column
        | false, false -> unsupported "aggregated column %s not found" column
      end
    in
    (match spec.Aggregate.func with
     | Aggregate.Count -> K_count
     | Aggregate.Sum -> K_sum (side, column)
     | Aggregate.Avg -> K_avg (side, column)
     | Aggregate.Min -> K_min (side, column)
     | Aggregate.Max -> K_max (side, column))

(* Per-key statistics one source contributes for one of its keys. *)
let own_partials ~schema ~kinds ~own_side tuples =
  let value_of column tuple = Tuple.get tuple (Schema.find schema column) in
  let ints column =
    List.map
      (fun t ->
        match value_of column t with
        | Value.Int n -> n
        | Value.Str _ | Value.Bool _ ->
          unsupported "aggregate over non-integer column %s" column)
      tuples
  in
  List.mapi (fun index kind -> (index, kind)) kinds
  |> List.filter_map (fun (index, kind) ->
         match kind with
         | K_count -> None
         | K_sum (s, c) | K_avg (s, c) when s = own_side ->
           Some (index, List.fold_left ( + ) 0 (ints c))
         | K_min (s, c) when s = own_side ->
           Some (index, List.fold_left Stdlib.min max_int (ints c))
         | K_max (s, c) when s = own_side ->
           Some (index, List.fold_left Stdlib.max min_int (ints c))
         | K_sum _ | K_avg _ | K_min _ | K_max _ -> None)

let encode_bundle ~count ~partials =
  let w = Wire.writer () in
  Wire.write_int w count;
  Wire.write_list w
    (fun (index, v) ->
      Wire.write_int w index;
      Wire.write_int w v)
    partials;
  Wire.contents w

let decode_bundle blob =
  let r = Wire.reader blob in
  let count = Wire.read_int r in
  let partials =
    Wire.read_list r (fun () ->
        let index = Wire.read_int r in
        let v = Wire.read_int r in
        (index, v))
  in
  Wire.expect_end r;
  (count, partials)

(* Combine the two sides' per-key statistics into the per-key value of one
   aggregate over the joined pairs. *)
let combine_per_key kind ~c1 ~c2 ~p1 ~p2 index =
  let own side = match side with L -> List.assoc index p1 | R -> List.assoc index p2 in
  let opposite_count side = match side with L -> c2 | R -> c1 in
  match kind with
  | K_count -> `Weighted (c1 * c2)
  | K_sum (s, _) -> `Weighted (own s * opposite_count s)
  | K_avg (s, _) ->
    (* Per-key average is the side's own average (pair multiplicity
       cancels); for scalar queries the weighted sum/count pair is used. *)
    `Ratio (own s * opposite_count s, c1 * c2)
  | K_min (s, _) -> `Extremum (own s)
  | K_max (s, _) -> `Extremum (own s)

let run ?(strategy = Bundles) env client ~query =
  let scheme =
    match strategy with Bundles -> "aggregate" | Homomorphic -> "aggregate-homomorphic"
  in
  let b = Outcome.Builder.create ~scheme in
  let tr = Outcome.Builder.transcript b in
  let group = env.Env.group in
  let group_bytes = (group.Group.bits + 7) / 8 in
  let (result, exact, received), counters =
    Counters.with_fresh (fun () ->
        let request =
          Outcome.Builder.timed b "request" (fun () -> Request.run (Link.make tr) env client ~query)
        in
        let d = request.Request.decomposition in
        let specs, group_keys =
          match d.Catalog.aggregation with
          | Some (specs, keys) -> (specs, keys)
          | None -> unsupported "query has no aggregates; use the join protocols"
        in
        if d.Catalog.residual_where <> None then
          unsupported "WHERE is not supported by the aggregation protocol";
        let join_attrs = Request.join_attrs request in
        let grouped =
          match group_keys with
          | [] -> false
          | keys ->
            if List.sort compare keys = List.sort compare join_attrs then true
            else unsupported "GROUP BY must list exactly the join attributes"
        in
        let left_schema = Relation.schema request.Request.left_result in
        let right_schema = Relation.schema request.Request.right_result in
        (* Classify before computing the reference so malformed queries
           surface as Unsupported rather than a raw Not_found. *)
        let kinds = List.map (classify ~join_attrs left_schema right_schema) specs in
        let exact = Request.exact_result env request in
        let s1 = d.Catalog.left.Catalog.source in
        let s2 = d.Catalog.right.Catalog.source in
        let prng1 = Env.prng_for env (Printf.sprintf "agg-source-%d" s1) in
        let prng2 = Env.prng_for env (Printf.sprintf "agg-source-%d" s2) in
        let pk = request.Request.client_pk in
        let groups1 = Request.groups request `Left in
        let groups2 = Request.groups request `Right in

        match strategy with
        | Bundles ->
          (* Each source sends, per key: commutatively encrypted hash +
             hybrid-encrypted per-key statistics bundle. *)
          let side_messages prng ~own_side ~schema groups =
            let key = Commutative.keygen prng group in
            let messages =
              List.map
                (fun (a, tuples) ->
                  let hashed = Random_oracle.hash group (Join_key.encode a) in
                  let partials = own_partials ~schema ~kinds ~own_side tuples in
                  let bundle =
                    Wire.contents
                      (let w = Wire.writer () in
                       Wire.write_string w (Join_key.encode a);
                       Wire.write_string w
                         (encode_bundle ~count:(List.length tuples) ~partials);
                       w)
                  in
                  (Commutative.apply key hashed, Hybrid.encrypt prng pk bundle))
                groups
            in
            let shuffled = Array.of_list messages in
            Prng.shuffle prng shuffled;
            (key, Array.to_list shuffled)
          in
          let key1, m1 = Outcome.Builder.timed b "source-encrypt" (fun () ->
              side_messages prng1 ~own_side:L ~schema:left_schema groups1)
          in
          let key2, m2 = Outcome.Builder.timed b "source-encrypt" (fun () ->
              side_messages prng2 ~own_side:R ~schema:right_schema groups2)
          in
          let set_size ms =
            List.fold_left (fun acc (_, ct) -> acc + group_bytes + Hybrid.size ct) 0 ms
          in
          Transcript.record tr ~sender:(Source s1) ~receiver:Mediator ~label:"agg-bundles"
            ~size:(set_size m1);
          Transcript.record tr ~sender:(Source s2) ~receiver:Mediator ~label:"agg-bundles"
            ~size:(set_size m2);
          Outcome.Builder.mediator_sees b "cardinality-domactive-R1" (List.length m1);
          Outcome.Builder.mediator_sees b "cardinality-domactive-R2" (List.length m2);
          (* Hash exchange with retained payloads (IDs), as in Set_ops. *)
          Transcript.record tr ~sender:Mediator ~receiver:(Source s2) ~label:"hashes-1"
            ~size:((group_bytes + 8) * List.length m1);
          Transcript.record tr ~sender:Mediator ~receiver:(Source s1) ~label:"hashes-2"
            ~size:((group_bytes + 8) * List.length m2);
          let from_s1 =
            Outcome.Builder.timed b "source-reencrypt" (fun () ->
                List.mapi (fun id (h, _) -> (id, Commutative.apply key1 h)) m2)
          in
          let from_s2 =
            Outcome.Builder.timed b "source-reencrypt" (fun () ->
                List.mapi (fun id (h, _) -> (id, Commutative.apply key2 h)) m1)
          in
          Transcript.record tr ~sender:(Source s1) ~receiver:Mediator
            ~label:"doubly-encrypted" ~size:((group_bytes + 8) * List.length from_s1);
          Transcript.record tr ~sender:(Source s2) ~receiver:Mediator
            ~label:"doubly-encrypted" ~size:((group_bytes + 8) * List.length from_s2);
          (* Match: from_s2 re-encrypts S1's hashes (ids into m1); from_s1
             re-encrypts S2's (ids into m2). *)
          let matches =
            Outcome.Builder.timed b "mediator-match" (fun () ->
                let table = Hashtbl.create 64 in
                List.iter
                  (fun (id, h) -> Hashtbl.replace table (Bigint.to_string h) id)
                  from_s2;
                List.filter_map
                  (fun (id2, h) ->
                    Option.map
                      (fun id1 -> (id1, id2))
                      (Hashtbl.find_opt table (Bigint.to_string h)))
                  from_s1)
          in
          Outcome.Builder.mediator_sees b "intersection-size" (List.length matches);
          let payload1 = Array.of_list (List.map snd m1) in
          let payload2 = Array.of_list (List.map snd m2) in
          let forwarded =
            List.map (fun (id1, id2) -> (payload1.(id1), payload2.(id2))) matches
          in
          Transcript.record tr ~sender:Mediator ~receiver:Client ~label:"matched-bundles"
            ~size:
              (List.fold_left
                 (fun acc (x, y) -> acc + Hybrid.size x + Hybrid.size y)
                 0 forwarded);
          Outcome.Builder.client_sees b "bundles-received" (2 * List.length forwarded);

          (* Client: decrypt bundles, combine per key, assemble. *)
          let result =
            Outcome.Builder.timed b "client-postprocess" (fun () ->
                let decrypt ct =
                  match Hybrid.decrypt client.Env.key ct with
                  | Some blob ->
                    let r = Wire.reader blob in
                    let key = Tuple.decode (Wire.read_string r) in
                    let count, partials = decode_bundle (Wire.read_string r) in
                    Wire.expect_end r;
                    (key, count, partials)
                  | None -> failwith "Aggregate_join: authentication failure"
                in
                let per_key =
                  List.map
                    (fun (ct1, ct2) ->
                      let key, c1, p1 = decrypt ct1 in
                      let _, c2, p2 = decrypt ct2 in
                      let values =
                        List.mapi
                          (fun index kind -> combine_per_key kind ~c1 ~c2 ~p1 ~p2 index)
                          kinds
                      in
                      (key, values))
                    forwarded
                in
                let spec_ty kind (spec : Aggregate.spec) =
                  match kind with
                  | K_count | K_sum _ | K_avg _ -> Value.Tint
                  | K_min (side, column) | K_max (side, column) ->
                    let schema = match side with L -> left_schema | R -> right_schema in
                    ignore spec;
                    (Schema.attr_at schema (Schema.find schema column)).Schema.ty
                in
                let agg_attrs =
                  List.map2
                    (fun kind (spec : Aggregate.spec) ->
                      Schema.attr spec.Aggregate.alias (spec_ty kind spec))
                    kinds specs
                in
                let relation =
                  if grouped then begin
                    let key_attrs =
                      List.map
                        (fun name -> Schema.attr_at left_schema (Schema.find left_schema name))
                        group_keys
                    in
                    let schema = Schema.make (key_attrs @ agg_attrs) in
                    let key_positions = Join_key.positions left_schema join_attrs in
                    (* group_keys may reorder join_attrs; map positions. *)
                    let reorder key =
                      List.map
                        (fun name ->
                          let rec find i = function
                            | [] -> assert false
                            | attr :: rest ->
                              if String.equal attr name then i else find (i + 1) rest
                          in
                          Tuple.get key (find 0 join_attrs))
                        group_keys
                    in
                    ignore key_positions;
                    let rows =
                      List.map
                        (fun (key, values) ->
                          reorder key
                          @ List.map
                              (function
                                | `Weighted v -> Value.Int v
                                | `Ratio (num, den) -> Value.Int (num / den)
                                | `Extremum v -> Value.Int v)
                              values)
                        per_key
                    in
                    Relation.sort (Relation.of_rows schema rows)
                  end
                  else begin
                    let schema = Schema.make agg_attrs in
                    if per_key = [] then begin
                      (* Match Aggregate.group_by semantics on empty input. *)
                      let row =
                        List.map
                          (function
                            | K_count -> Value.Int 0
                            | K_sum _ | K_avg _ | K_min _ | K_max _ ->
                              invalid_arg
                                "Aggregate.group_by: non-count aggregate over empty relation")
                          kinds
                      in
                      Relation.of_rows schema [ row ]
                    end
                    else begin
                      let row =
                        List.mapi
                          (fun index kind ->
                            let values = List.map (fun (_, vs) -> List.nth vs index) per_key in
                            match kind with
                            | K_count | K_sum _ ->
                              Value.Int
                                (List.fold_left
                                   (fun acc -> function
                                     | `Weighted v -> acc + v
                                     | `Ratio _ | `Extremum _ -> assert false)
                                   0 values)
                            | K_avg _ ->
                              let num, den =
                                List.fold_left
                                  (fun (n, d) -> function
                                    | `Ratio (num, den) -> (n + num, d + den)
                                    | `Weighted _ | `Extremum _ -> assert false)
                                  (0, 0) values
                              in
                              Value.Int (num / den)
                            | K_min _ ->
                              Value.Int
                                (List.fold_left
                                   (fun acc -> function
                                     | `Extremum v -> Stdlib.min acc v
                                     | `Weighted _ | `Ratio _ -> assert false)
                                   max_int values)
                            | K_max _ ->
                              Value.Int
                                (List.fold_left
                                   (fun acc -> function
                                     | `Extremum v -> Stdlib.max acc v
                                     | `Weighted _ | `Ratio _ -> assert false)
                                   min_int values))
                          kinds
                      in
                      Relation.of_rows schema [ row ]
                    end
                  end
                in
                let projected =
                  match d.Catalog.projection with
                  | None -> relation
                  | Some columns -> Relation.project columns relation
                in
                if d.Catalog.distinct then Relation.distinct projected else projected)
          in
          (result, exact, List.length forwarded)

        | Homomorphic ->
          (* Scalar COUNT/SUM over right-side columns, mediator-side
             combination under the client's Paillier key. *)
          if grouped then unsupported "Homomorphic strategy supports scalar queries only";
          List.iter
            (fun kind ->
              match kind with
              | K_count | K_sum (R, _) -> ()
              | K_sum (L, _) | K_avg _ | K_min _ | K_max _ ->
                unsupported
                  "Homomorphic strategy supports COUNT and right-side SUM aggregates only")
            kinds;
          (* c1(a) must be 1 for every left key so that pair weighting is
             trivial; S1 verifies this on its own plaintext. *)
          if List.exists (fun (_, tuples) -> List.length tuples > 1) groups1 then
            unsupported
              "Homomorphic strategy requires duplicate-free join keys in the left relation";
          let ppk = Paillier.public client.Env.paillier_key in
          let ct_bytes = (Bigint.numbits ppk.Paillier.n_squared + 7) / 8 in
          (* S1: bare hashes.  S2: hashes + per-key Paillier ciphertexts
             (one per aggregate). *)
          let key1 = Commutative.keygen prng1 group in
          let hashes1 =
            List.map
              (fun (a, _) -> Commutative.apply key1 (Random_oracle.hash group (Join_key.encode a)))
              groups1
          in
          Transcript.record tr ~sender:(Source s1) ~receiver:Mediator ~label:"hashes"
            ~size:(group_bytes * List.length hashes1);
          let key2 = Commutative.keygen prng2 group in
          let m2 =
            Outcome.Builder.timed b "source-encrypt" (fun () ->
                List.map
                  (fun (a, tuples) ->
                    let hashed =
                      Commutative.apply key2 (Random_oracle.hash group (Join_key.encode a))
                    in
                    let cts =
                      List.map
                        (fun kind ->
                          let plain =
                            match kind with
                            | K_count -> List.length tuples
                            | K_sum (R, column) ->
                              List.fold_left
                                (fun acc t ->
                                  match Tuple.get t (Schema.find right_schema column) with
                                  | Value.Int n -> acc + n
                                  | Value.Str _ | Value.Bool _ ->
                                    unsupported "aggregate over non-integer column %s" column)
                                0 tuples
                            | K_sum (L, _) | K_avg _ | K_min _ | K_max _ -> assert false
                          in
                          Paillier.encrypt prng2 ppk (Bigint.of_int plain))
                        kinds
                    in
                    (hashed, cts))
                  groups2)
          in
          Transcript.record tr ~sender:(Source s2) ~receiver:Mediator ~label:"agg-ciphertexts"
            ~size:(List.length m2 * (group_bytes + (ct_bytes * List.length kinds)));
          Outcome.Builder.mediator_sees b "cardinality-domactive-R1" (List.length hashes1);
          Outcome.Builder.mediator_sees b "cardinality-domactive-R2" (List.length m2);
          (* Exchange and double encryption. *)
          Transcript.record tr ~sender:Mediator ~receiver:(Source s2) ~label:"hashes-1"
            ~size:(group_bytes * List.length hashes1);
          Transcript.record tr ~sender:Mediator ~receiver:(Source s1) ~label:"hashes-2"
            ~size:((group_bytes + 8) * List.length m2);
          let from_s1 =
            List.mapi (fun id (h, _) -> (id, Commutative.apply key1 h)) m2
          in
          let from_s2 = List.map (Commutative.apply key2) hashes1 in
          Transcript.record tr ~sender:(Source s1) ~receiver:Mediator ~label:"doubly-encrypted"
            ~size:((group_bytes + 8) * List.length from_s1);
          Transcript.record tr ~sender:(Source s2) ~receiver:Mediator ~label:"doubly-encrypted"
            ~size:(group_bytes * List.length from_s2);
          (* Mediator: match, then combine the matched ciphertexts. *)
          let matched_ids =
            Outcome.Builder.timed b "mediator-match" (fun () ->
                let left_set = Hashtbl.create 64 in
                List.iter (fun h -> Hashtbl.replace left_set (Bigint.to_string h) ()) from_s2;
                List.filter_map
                  (fun (id, h) ->
                    if Hashtbl.mem left_set (Bigint.to_string h) then Some id else None)
                  from_s1)
          in
          Outcome.Builder.mediator_sees b "intersection-size" (List.length matched_ids);
          let cts2 = Array.of_list (List.map snd m2) in
          let mediator_prng = Env.prng_for env "agg-mediator" in
          let totals =
            Outcome.Builder.timed b "mediator-combine" (fun () ->
                List.mapi
                  (fun index _ ->
                    let matched =
                      List.map (fun id -> List.nth cts2.(id) index) matched_ids
                    in
                    match matched with
                    | [] -> Paillier.encrypt mediator_prng ppk Bigint.zero
                    | first :: rest -> List.fold_left (Paillier.add ppk) first rest)
                  kinds)
          in
          Transcript.record tr ~sender:Mediator ~receiver:Client ~label:"aggregate-totals"
            ~size:(ct_bytes * List.length totals);
          Outcome.Builder.client_sees b "ciphertexts-received" (List.length totals);
          let result =
            Outcome.Builder.timed b "client-postprocess" (fun () ->
                let schema =
                  Schema.make
                    (List.map
                       (fun (spec : Aggregate.spec) -> Schema.attr spec.Aggregate.alias Value.Tint)
                       specs)
                in
                let row =
                  List.map
                    (fun ct -> Value.Int (Bigint.to_int (Paillier.decrypt client.Env.paillier_key ct)))
                    totals
                in
                let relation = Relation.of_rows schema [ row ] in
                let projected =
                  match d.Catalog.projection with
                  | None -> relation
                  | Some columns -> Relation.project columns relation
                in
                if d.Catalog.distinct then Relation.distinct projected else projected)
          in
          (result, exact, List.length matched_ids))
  in
  Outcome.Builder.finish b ~result ~exact ~client_received_tuples:received ~counters

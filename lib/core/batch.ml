open Secmed_crypto

(* Domain-parallel batch executor for the embarrassingly-parallel
   per-tuple crypto loops (source-side hybrid encryption, the client's
   PM batch decryption).

   Two contracts drive the design:

   Determinism.  Outputs are bit-identical regardless of domain count.
   Work needing randomness goes through {!map_seeded}: item [i] gets its
   own PRNG stream [Prng.split prng (label ^ "#" ^ i)], derived from the
   parent's seed alone — never a shared mutable [Prng.t] whose position
   would depend on scheduling.  The sequential path (domains = 1) draws
   from the identical per-item streams, so parallel and sequential runs
   produce the same ciphertext bytes.

   Attribution.  [Counters] state is domain-local; each worker starts at
   zero and returns its snapshot along with its chunk.  The spawning
   domain folds worker snapshots back in with [Counters.merge] at join
   time, landing them in whatever [Counters.scoped] frame is open — so
   per-(party, phase) attribution is the same as a sequential run.

   Domains are spawned per call and joined before returning: no
   persistent pool, so processes remain fork-safe (the loopback
   transport forks mediator/source/client processes). *)

let default = ref 1

let set_default_domains k =
  if k < 1 then invalid_arg "Batch.set_default_domains: must be >= 1";
  default := k

let () =
  match Sys.getenv_opt "SECMED_DOMAINS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some k when k >= 1 -> default := k
     | _ -> ())
  | None -> ()

let default_domains () = !default

let recommended_domains () = Domain.recommended_domain_count ()

let item_prng prng label i = Prng.split prng (label ^ "#" ^ string_of_int i)

(* Core: apply [f i item] over the array, chunked contiguously across
   [k] domains.  Workers return (chunk, counter snapshot); all domains
   are joined (even when one raises) before counters merge and the
   first worker exception is re-raised. *)
let run_mapi k f items =
  let n = Array.length items in
  let k = min k n in
  if n = 0 then [||]
  else if k <= 1 then Array.mapi f items
  else begin
    let job lo hi () =
      let out = Array.init (hi - lo) (fun j -> f (lo + j) items.(lo + j)) in
      (out, Counters.snapshot ())
    in
    let doms =
      Array.init k (fun d -> Domain.spawn (job (d * n / k) ((d + 1) * n / k)))
    in
    let parts =
      Array.map (fun d -> try Ok (Domain.join d) with e -> Error e) doms
    in
    let first_error = ref None in
    Array.iter
      (function
        | Ok (_, counts) -> Counters.merge counts
        | Error e -> if !first_error = None then first_error := Some e)
      parts;
    match !first_error with
    | Some e -> raise e
    | None ->
      Array.concat
        (Array.to_list
           (Array.map (function Ok (out, _) -> out | Error _ -> assert false) parts))
  end

let domains_of opt = max 1 (match opt with Some k -> k | None -> !default)

let parallel_mapi ?domains f items = run_mapi (domains_of domains) f items
let parallel_map ?domains f items = run_mapi (domains_of domains) (fun _ x -> f x) items

let map_seeded ?domains ~prng ~label f items =
  run_mapi (domains_of domains)
    (fun i item -> f i (item_prng prng label i) item)
    items

let map_list ?domains f items =
  Array.to_list (parallel_map ?domains f (Array.of_list items))

let map_seeded_list ?domains ~prng ~label f items =
  Array.to_list (map_seeded ?domains ~prng ~label f (Array.of_list items))

(** Domain-parallel batch executor for per-tuple crypto loops.

    The protocols' dominant cost is embarrassingly parallel: each source
    hybrid-encrypts every tuple of its relation, and the PM client
    decrypts all n+m e-values.  This module fans such loops out over
    OCaml 5 domains under two contracts:

    {b Determinism} — outputs are bit-identical for any domain count.
    Randomised work must go through {!map_seeded}, which derives an
    independent PRNG stream per item from the parent seed
    ([Prng.split prng (label ^ "#" ^ index)]); the sequential path uses
    the identical streams.  Labels must be unique per call site under
    one parent PRNG, since splitting is a pure function of the seed.

    {b Attribution} — [Counters] are domain-local; workers start at
    zero, their snapshots are folded into the calling domain with
    [Counters.merge] at join time, so scoped per-(party, phase)
    accounting matches a sequential run exactly.

    Domains are spawned per call and joined before returning — no
    persistent pool, keeping the process fork-safe for the loopback
    transport.  Worker exceptions propagate after all domains joined. *)

val default_domains : unit -> int
(** Current default worker-domain count (1 unless overridden).  The
    [SECMED_DOMAINS] environment variable sets the initial value. *)

val set_default_domains : int -> unit
(** Requires >= 1; raises [Invalid_argument] otherwise. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()] — what the runtime considers
    the useful parallelism of this machine. *)

val parallel_map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving map, contiguous chunks across [domains] worker
    domains (default {!default_domains}; capped at the item count).
    [domains <= 1] runs sequentially in the calling domain. *)

val parallel_mapi : ?domains:int -> (int -> 'a -> 'b) -> 'a array -> 'b array

val map_seeded :
  ?domains:int ->
  prng:Secmed_crypto.Prng.t ->
  label:string ->
  (int -> Secmed_crypto.Prng.t -> 'a -> 'b) ->
  'a array ->
  'b array
(** [map_seeded ~prng ~label f items] applies [f i stream_i items.(i)]
    where [stream_i = Prng.split prng (label ^ "#" ^ i)] — the
    deterministic-parallelism entry point for randomised per-item work.
    The parent [prng]'s position is not consumed. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!parallel_map} over lists. *)

val map_seeded_list :
  ?domains:int ->
  prng:Secmed_crypto.Prng.t ->
  label:string ->
  (int -> Secmed_crypto.Prng.t -> 'a -> 'b) ->
  'a list ->
  'b list
(** {!map_seeded} over lists. *)

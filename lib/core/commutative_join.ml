open Secmed_bigint
open Secmed_crypto
open Secmed_relalg
open Secmed_mediation

let group_bytes group = (group.Group.bits + 7) / 8

(* Serialization of a tuple set Tup_i(a) for hybrid encryption. *)
let encode_tuple_set tuples =
  let w = Wire.writer () in
  Wire.write_list w (fun t -> Wire.write_string w (Tuple.encode t)) tuples;
  Wire.contents w

let decode_tuple_set blob =
  let r = Wire.reader blob in
  let tuples = Wire.read_list r (fun () -> Tuple.decode (Wire.read_string r)) in
  Wire.expect_end r;
  tuples

(* One source's step 1-3: key generation, hashing, encryption, and the
   shuffled message set M_i. *)
let build_messages prng group pk request which =
  let key = Commutative.keygen prng group in
  (* Per-group hash + f_e + hybrid encryption on independent split
     streams: the Batch executor fans the loop across domains with
     bit-identical messages at any domain count.  The shuffle below
     draws from the parent stream, after the splits, as before. *)
  let shuffled =
    Batch.map_seeded ~prng ~label:"comm-msg"
      (fun _ prng (a, tuples) ->
        let hashed = Random_oracle.hash group (Join_key.encode a) in
        (Commutative.apply key hashed, Hybrid.encrypt prng pk (encode_tuple_set tuples)))
      (Array.of_list (Request.groups request which))
  in
  Prng.shuffle prng shuffled;
  (key, Array.to_list shuffled)

let message_set_size group messages =
  List.fold_left (fun acc (_, ct) -> acc + group_bytes group + Hybrid.size ct) 0 messages

(* Canonical payloads: hashed keys at the group's fixed byte width and
   IDs as 8-byte integers, so each message's wire form is exactly the
   size the transcript declares.  One string per message, so the sets
   can travel row-wise ([Link.deliver_rows]). *)
let message_rows group messages =
  let gb = group_bytes group in
  List.map
    (fun (h, ct) -> Bigint.to_bytes_be_padded gb h ^ Hybrid.to_wire ct)
    messages

let entry_rows group entries =
  let gb = group_bytes group in
  List.map
    (fun (h, payload) ->
      let w = Wire.writer () in
      Wire.write_raw w (Bigint.to_bytes_be_padded gb h);
      (match payload with
       | `Id i -> Wire.write_int w i
       | `Ct ct -> Wire.write_raw w (Hybrid.to_wire ct));
      Wire.contents w)
    entries

let entries_payload group entries = String.concat "" (entry_rows group entries)

let run ?fault ?endpoint ?(use_ids = false) env client ~query =
  let b = Outcome.Builder.create ~scheme:"commutative" in
  let tr = Outcome.Builder.transcript b in
  Fault.attach fault tr;
  let link = Link.make ?endpoint ?fault tr in
  let group = env.Env.group in
  let (result, exact, received), counters =
    Counters.with_fresh (fun () ->
        let request =
          Outcome.Builder.timed b ~party:"Mediator" "request" (fun () -> Request.run link env client ~query)
        in
        let exact = Request.exact_result env request in
        let pk = request.Request.client_pk in
        let source_of which =
          match which with
          | `Left -> request.Request.decomposition.Catalog.left.Catalog.source
          | `Right -> request.Request.decomposition.Catalog.right.Catalog.source
        in

        (* Steps 1-3: each source builds and sends its message set M_i. *)
        let side which =
          let sid = source_of which in
          let prng = Env.prng_for env (Printf.sprintf "comm-source-%d" sid) in
          let key, messages =
            Outcome.Builder.timed b ~party:(Transcript.party_name (Source sid))
              "source-encrypt" (fun () ->
                build_messages prng group pk request which)
          in
          (* A byzantine source ships ciphertexts that parse but fail
             authentication when the client opens them (DESIGN.md §8). *)
          let messages =
            match Fault.byzantine_mode fault sid with
            | Some Fault.Malformed_ciphertexts ->
              List.map
                (fun (h, ct) -> (h, Hybrid.of_wire (Fault.flip_tail (Hybrid.to_wire ct))))
                messages
            | _ -> messages
          in
          Link.deliver_rows link ~phase:"mediator-exchange" ~sender:(Source sid)
            ~receiver:Mediator ~label:"M_i" ~size:(message_set_size group messages)
            (fun () -> message_rows group messages);
          (sid, key, messages)
        in
        let s1, key1, m1 = side `Left in
        let s2, key2, m2 = side `Right in
        (* Conformance audit (only under a fault plan, so honest runs stay
           byte-identical): a public canary h0 travels both directions;
           the mediator later checks f_e1(f_e2(h0)) = f_e2(f_e1(h0)),
           which catches a source whose second pass used a stale key. *)
        let canary_h0 =
          if Fault.auditing fault then
            Some (Random_oracle.hash group "commutative-canary")
          else None
        in
        let send_canary sid key =
          match canary_h0 with
          | None -> None
          | Some h0 ->
            let ch = Commutative.apply key h0 in
            Link.deliver link ~phase:"mediator-match" ~sender:(Source sid)
              ~receiver:Mediator ~label:"canary" ~guard:false ~size:(group_bytes group)
              (fun () -> Bigint.to_bytes_be_padded (group_bytes group) ch);
            Some ch
        in
        let canary1 = send_canary s1 key1 and canary2 = send_canary s2 key2 in
        Outcome.Builder.mediator_sees b "cardinality-domactive-R1" (List.length m1);
        Outcome.Builder.mediator_sees b "cardinality-domactive-R2" (List.length m2);

        (* Step 4: the mediator exchanges the message sets (footnote 1:
           optionally substituting fixed-length IDs for the ciphertexts). *)
        let outbound messages =
          if use_ids then List.mapi (fun i (h, _) -> (h, `Id i)) messages
          else List.map (fun (h, ct) -> (h, `Ct ct)) messages
        in
        let wire_size entries =
          List.fold_left
            (fun acc (_, payload) ->
              acc + group_bytes group
              + (match payload with `Id _ -> 8 | `Ct ct -> Hybrid.size ct))
            0 entries
        in
        let to_s2 = outbound m1 and to_s1 = outbound m2 in
        Link.deliver link ~phase:"source-reencrypt" ~sender:Mediator ~receiver:(Source s2)
          ~label:"M_1" ~size:(wire_size to_s2) (fun () -> entries_payload group to_s2);
        Link.deliver link ~phase:"source-reencrypt" ~sender:Mediator ~receiver:(Source s1)
          ~label:"M_2" ~size:(wire_size to_s1) (fun () -> entries_payload group to_s1);
        Outcome.Builder.source_sees b s1 "cardinality-domactive-opposite" (List.length m2);
        Outcome.Builder.source_sees b s2 "cardinality-domactive-opposite" (List.length m1);

        (* Steps 5-6: each source applies its key on top of the other's.
           A byzantine source may use a stale (different) key for the
           second pass, which would silently empty the intersection —
           the canary audit catches it. *)
        let double_encrypt sid key entries other_canary =
          Outcome.Builder.timed b ~party:(Transcript.party_name (Source sid))
            "source-reencrypt" (fun () ->
              let key =
                match Fault.byzantine_mode fault sid with
                | Some Fault.Stale_commutative_key ->
                  Commutative.keygen
                    (Env.prng_for env (Printf.sprintf "stale-comm-key-%d" sid))
                    group
                | _ -> key
              in
              let reencrypted =
                List.map (fun (h, payload) -> (Commutative.apply key h, payload)) entries
              in
              Link.deliver_rows link ~phase:"mediator-match" ~sender:(Source sid)
                ~receiver:Mediator ~label:"doubly-encrypted" ~size:(wire_size reencrypted)
                (fun () -> entry_rows group reencrypted);
              (reencrypted, Option.map (Commutative.apply key) other_canary))
        in
        let from_s1, double_canary1 = double_encrypt s1 key1 to_s1 canary2 in
        let from_s2, double_canary2 = double_encrypt s2 key2 to_s2 canary1 in
        (match (double_canary1, double_canary2) with
        | Some a, Some b when Bigint.to_string a <> Bigint.to_string b ->
          Fault.fail ~phase:"mediator-match" ~party:Mediator
            "commutative canary mismatch: a source re-encrypted under a stale key"
        | _ -> ());

        (* Step 7: the mediator matches identical first components. *)
        let matches =
          Outcome.Builder.timed b ~party:"Mediator" "mediator-match" (fun () ->
              let table = Hashtbl.create 64 in
              List.iter
                (fun (h, payload) -> Hashtbl.replace table (Bigint.to_string h) payload)
                from_s2;
              (* from_s2 carries (f_e2(f_e1(h(a))), Tup_1(a)); from_s1
                 carries (f_e1(f_e2(h(a))), Tup_2(a)). *)
              List.filter_map
                (fun (h, payload2) ->
                  match Hashtbl.find_opt table (Bigint.to_string h) with
                  | Some payload1 -> Some (payload1, payload2)
                  | None -> None)
                from_s1)
        in
        Outcome.Builder.mediator_sees b "intersection-size" (List.length matches);
        (* With IDs the mediator resolves them back to the ciphertexts it
           retained; without, the ciphertexts travelled with the hashes. *)
        let resolve_payload side_table = function
          | `Ct ct -> ct
          | `Id id -> Hashtbl.find side_table id
        in
        let ids_of messages =
          let t = Hashtbl.create 64 in
          List.iteri (fun i (_, ct) -> Hashtbl.replace t i ct) messages;
          t
        in
        let table_m1 = ids_of m1 and table_m2 = ids_of m2 in
        let result_messages =
          List.map
            (fun (payload1, payload2) ->
              (resolve_payload table_m1 payload1, resolve_payload table_m2 payload2))
            matches
        in
        let result_size =
          List.fold_left
            (fun acc (a, c) -> acc + Hybrid.size a + Hybrid.size c)
            0 result_messages
        in
        Link.deliver_rows link ~phase:"client-postprocess" ~sender:Mediator ~receiver:Client
          ~label:"result-messages" ~size:result_size
          (fun () ->
            List.map (fun (a, c) -> Hybrid.to_wire a ^ Hybrid.to_wire c) result_messages);

        (* Step 8: the client decrypts and combines the tuple sets. *)
        let join_attrs = Request.join_attrs request in
        let right_schema = Relation.schema request.Request.right_result in
        let pos_right = Join_key.positions right_schema join_attrs in
        let keep_right =
          Array.of_list
            (List.filter
               (fun i -> not (Array.exists (Int.equal i) pos_right))
               (List.init (Schema.arity right_schema) Fun.id))
        in
        let joined_schema =
          Schema.append
            (Relation.schema request.Request.left_result)
            (Schema.make (List.map (Schema.attr_at right_schema) (Array.to_list keep_right)))
        in
        let decrypt_set label ct =
          match Hybrid.decrypt client.Env.key ct with
          | Some blob -> decode_tuple_set blob
          | None ->
            Fault.fail ~phase:"client-postprocess" ~party:Client
              ("authentication failure on " ^ label)
        in
        let received = ref 0 in
        let result =
          Outcome.Builder.timed b ~party:"Client" "client-postprocess" (fun () ->
              let joined =
                List.concat_map
                  (fun (ct1, ct2) ->
                    let tup1 = decrypt_set "Tup1" ct1 and tup2 = decrypt_set "Tup2" ct2 in
                    received := !received + (List.length tup1 * List.length tup2);
                    List.concat_map
                      (fun t1 ->
                        List.map (fun t2 -> Tuple.append t1 (Tuple.project keep_right t2)) tup2)
                      tup1)
                  result_messages
              in
              Request.finalize request (Relation.make joined_schema joined))
        in
        Outcome.Builder.client_sees b "result-messages-received" (List.length result_messages);
        Outcome.Builder.attribute b (Counters.attribution ());
        (result, exact, !received))
  in
  Outcome.Builder.finish b ~result ~exact ~client_received_tuples:received ~counters

(** The commutative-encryption delivery phase (paper Listing 3, after
    Agrawal et al.).

    Each source commutatively encrypts the ideal-hash values of its active
    join domain and hybrid-encrypts the associated tuple sets Tup_i(a); the
    sets of messages are exchanged through the mediator so each side adds
    its own key on top of the other's.  Commutativity makes the doubly
    encrypted hashes of equal join values collide, letting the mediator
    assemble exactly the matching pairs — the client receives the exact
    global result, encrypted. *)

val run :
  ?fault:Secmed_mediation.Fault.plan ->
  ?endpoint:Secmed_mediation.Link.endpoint ->
  ?use_ids:bool ->
  Env.t ->
  Env.client ->
  query:string ->
  Outcome.t
(** [use_ids] enables the paper's footnote-1 optimization: the mediator
    keeps the encrypted tuple sets and forwards only fixed-length IDs with
    the hash values, so sources never see each other's ciphertexts and the
    exchange shrinks.  Default [false] (the literal Listing 3).

    With a fault plan the run may raise
    [Secmed_mediation.Fault.Fault_detected]: channel faults are caught by
    the integrity envelope, byzantine ciphertexts at the client's
    authenticated decryption, and a stale re-encryption key by the canary
    audit the mediator runs when a plan is installed (a public canary
    value is double-encrypted along both paths and the results compared —
    commutativity makes honest paths agree). *)

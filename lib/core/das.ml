open Secmed_relalg
open Secmed_crypto
open Secmed_mediation

type server_eval =
  | Pair_index
  | Nested_loop

type encrypted_relation = {
  rows : (Hybrid.ciphertext * int array) list;
  wire_size : int;
}

let encrypt_relation ?domains prng pk tables ~join_attrs relation =
  let positions = Join_key.positions (Relation.schema relation) join_attrs in
  let tables = Array.of_list tables in
  if Array.length tables <> Array.length positions then
    invalid_arg "Das.encrypt_relation: one index table per join attribute required";
  (* Per-tuple hybrid encryption is the dominant source-side cost and
     embarrassingly parallel: each tuple draws from its own PRNG stream
     split off the source seed, so the wire bytes are bit-identical no
     matter how many domains the Batch executor uses. *)
  let rows =
    Batch.map_seeded_list ?domains ~prng ~label:"das-row"
      (fun _ prng tuple ->
        let etuple = Hybrid.encrypt prng pk (Tuple.encode tuple) in
        let indexes =
          Array.mapi
            (fun k position -> Das_partition.index_of tables.(k) (Tuple.get tuple position))
            positions
        in
        (etuple, indexes))
      (Relation.tuples relation)
  in
  let arity = Array.length positions in
  let wire_size =
    List.fold_left (fun acc (ct, _) -> acc + Hybrid.size ct + (8 * arity)) 0 rows
  in
  { rows; wire_size }

let server_query_pairs ~left_tables ~right_tables =
  List.map2 Das_partition.overlapping_pairs left_tables right_tables

(* Cond_S: conjunction over join attributes of the disjunction over the
   attribute's overlapping partition pairs. *)
let condition_of_pairs per_attr_pairs =
  Predicate.conj
    (List.mapi
       (fun k pairs ->
         Predicate.disj
           (List.map
              (fun (i1, i2) ->
                Predicate.And
                  ( Predicate.eq_const (Printf.sprintf "R1S.idx_%d" k) (Value.Int i1),
                    Predicate.eq_const (Printf.sprintf "R2S.idx_%d" k) (Value.Int i2) ))
              pairs))
       per_attr_pairs)

let server_condition ~left_tables ~right_tables =
  condition_of_pairs (server_query_pairs ~left_tables ~right_tables)

(* View of an encrypted relation as an ordinary relation over
   (etuple : string, idx_0 .. idx_{k-1} : int); the nested-loop evaluation
   runs the literal sigma-over-product on the relational engine. *)
let as_relation name arity er =
  let schema =
    Schema.make
      (Schema.attr ~rel:name "etuple" Value.Tstring
      :: List.init arity (fun k -> Schema.attr ~rel:name (Printf.sprintf "idx_%d" k) Value.Tint))
  in
  Relation.make schema
    (List.map
       (fun (ct, indexes) ->
         Tuple.of_list
           (Value.Str (Hybrid.to_wire ct)
           :: Array.to_list (Array.map (fun i -> Value.Int i) indexes)))
       er.rows)

let key_arity er = match er.rows with [] -> 0 | (_, indexes) :: _ -> Array.length indexes

let vector_key indexes =
  String.concat ":" (Array.to_list (Array.map string_of_int indexes))

let server_join eval per_attr_pairs left right =
  match eval with
  | Pair_index ->
    (* Group right rows by their full index vector; for each left row,
       enumerate the (usually few) right vectors compatible with it under
       Cond_S and look them up. *)
    let right_groups = Hashtbl.create 64 in
    List.iter
      (fun (ct, indexes) ->
        let key = vector_key indexes in
        Hashtbl.replace right_groups key
          (ct :: Option.value ~default:[] (Hashtbl.find_opt right_groups key)))
      right.rows;
    (* Per attribute: idx1 -> compatible idx2 list. *)
    let compatible =
      List.map
        (fun pairs ->
          let table = Hashtbl.create 32 in
          List.iter
            (fun (i1, i2) ->
              Hashtbl.replace table i1 (i2 :: Option.value ~default:[] (Hashtbl.find_opt table i1)))
            pairs;
          table)
        per_attr_pairs
    in
    let compatible = Array.of_list compatible in
    (* Cartesian product of the per-attribute compatible index lists: the
       right-side index vectors this left row can pair with under Cond_S. *)
    let candidates_for indexes =
      let arity = Array.length indexes in
      let rec go k acc =
        if k = arity then [ List.rev acc ]
        else begin
          match Hashtbl.find_opt compatible.(k) indexes.(k) with
          | None -> []
          | Some i2s -> List.concat_map (fun i2 -> go (k + 1) (i2 :: acc)) i2s
        end
      in
      go 0 []
    in
    List.concat_map
      (fun (ct1, indexes) ->
        List.concat_map
          (fun vector ->
            let key = String.concat ":" (List.map string_of_int vector) in
            match Hashtbl.find_opt right_groups key with
            | None -> []
            | Some cts -> List.map (fun ct2 -> (ct1, ct2)) cts)
          (candidates_for indexes))
      left.rows
  | Nested_loop ->
    let arity =
      Stdlib.max (List.length per_attr_pairs) (Stdlib.max (key_arity left) (key_arity right))
    in
    let r1s = as_relation "R1S" arity left and r2s = as_relation "R2S" arity right in
    let rc = Relation.select (condition_of_pairs per_attr_pairs) (Relation.product r1s r2s) in
    List.map
      (fun tuple ->
        match (Tuple.get tuple 0, Tuple.get tuple (arity + 1)) with
        | Value.Str w1, Value.Str w2 -> (Hybrid.of_wire w1, Hybrid.of_wire w2)
        | _ -> assert false)
      (Relation.tuples rc)

let decrypt_or_fail ~phase ~party sk label ct =
  match Hybrid.decrypt sk ct with
  | Some plain -> plain
  | None ->
    Fault.fail ~phase ~party (Printf.sprintf "authentication failure decrypting %s" label)

(* Wire bundle of one source's encrypted index tables. *)
let tables_to_wire tables =
  let w = Wire.writer () in
  Wire.write_list w (fun t -> Wire.write_string w (Das_partition.to_wire t)) tables;
  Wire.contents w

let tables_of_wire blob =
  let r = Wire.reader blob in
  let tables = Wire.read_list r (fun () -> Das_partition.of_wire (Wire.read_string r)) in
  Wire.expect_end r;
  tables

type setting =
  | Client_setting    (* Listing 2: the translator at the client *)
  | Source_setting    (* translator at S1; S2's tables travel encrypted to S1 *)
  | Mediator_setting  (* translator at the mediator; tables in plaintext there *)

let setting_name = function
  | Client_setting -> "client-setting"
  | Source_setting -> "source-setting"
  | Mediator_setting -> "mediator-setting"

(* Deterministic per-source ElGamal keys (the source setting needs sources
   to address each other confidentially). *)
let source_keypair env sid =
  Elgamal.keygen (Env.prng_for env (Printf.sprintf "source-key-%d" sid)) env.Env.group

let partition_count_sum tables =
  List.fold_left (fun acc t -> acc + Das_partition.partition_count t) 0 tables

(* Byzantine source behaviours (syntactically detectable — see DESIGN.md
   §8): wrong partition ids are pushed outside the valid index range so
   the mediator's bounds check catches them; malformed ciphertexts keep
   their framing but fail authentication at the client. *)
let apply_byzantine mode er =
  match mode with
  | Some Fault.Wrong_partition_ids ->
    { er with rows = List.map (fun (ct, idx) -> (ct, Array.map (fun i -> -1 - i) idx)) er.rows }
  | Some Fault.Malformed_ciphertexts ->
    {
      er with
      rows =
        List.map
          (fun (ct, idx) -> (Hybrid.of_wire (Fault.flip_tail (Hybrid.to_wire ct)), idx))
          er.rows;
    }
  | _ -> er

(* The mediator rejects index vectors outside the table range before
   evaluating q_S — an honest source never produces them. *)
let validate_indexes which er =
  List.iter
    (fun (_, idx) ->
      Array.iter
        (fun i ->
          if i < 0 then
            Fault.fail ~phase:"mediator-server-query" ~party:Mediator
              (Printf.sprintf "R%dS row carries out-of-range partition index %d" which i))
        idx)
    er.rows

(* Canonical wire form of an encrypted relation: each row's hybrid
   ciphertext followed by its 8-byte big-endian partition indexes —
   exactly [er.wire_size] bytes, so socket-level byte counts match the
   transcript entry in distributed runs.  One string per row, so the
   upload can travel row-wise ([Link.deliver_rows]) without ever
   concatenating the relation. *)
let er_rows er =
  List.map
    (fun (ct, idx) ->
      let w = Wire.writer () in
      Wire.write_raw w (Hybrid.to_wire ct);
      Array.iter (fun i -> Wire.write_int w i) idx;
      Wire.contents w)
    er.rows

(* Canonical q_S encoding: 16 bytes per overlapping pair (two 8-byte
   big-endian indexes), matching the 16*|pairs| transcript size. *)
let pairs_payload pairs =
  let w = Wire.writer () in
  List.iter
    (fun attr_pairs ->
      List.iter
        (fun (i1, i2) ->
          Wire.write_int w i1;
          Wire.write_int w i2)
        attr_pairs)
    pairs;
  Wire.contents w

let run ?fault ?endpoint ?(strategy = Das_partition.Equi_depth 4) ?(server_eval = Pair_index)
    ?(setting = Client_setting) env client ~query =
  let scheme =
    match setting with
    | Client_setting -> "das"
    | Source_setting | Mediator_setting -> "das/" ^ setting_name setting
  in
  let b = Outcome.Builder.create ~scheme in
  let tr = Outcome.Builder.transcript b in
  Fault.attach fault tr;
  let link = Link.make ?endpoint ?fault tr in
  let (result, exact, received), counters =
    Counters.with_fresh (fun () ->
        let request =
          Outcome.Builder.timed b ~party:"Mediator" "request" (fun () -> Request.run link env client ~query)
        in
        let exact = Request.exact_result env request in
        let join_attrs = Request.join_attrs request in
        let pk = request.Request.client_pk in

        (* Listing 2, steps 1-3 at each source: partition every join
           attribute and encrypt the partial result DAS-style.  Where the
           index tables go — and under which key — depends on the
           translator placement. *)
        let source_side which (entry : Catalog.entry) relation =
          let prng = Env.prng_for env (Printf.sprintf "das-source-%d" entry.Catalog.source) in
          Outcome.Builder.timed b
            ~party:(Transcript.party_name (Source entry.Catalog.source)) "source-encrypt"
            (fun () ->
              let tables =
                List.map
                  (fun attr ->
                    let column = Relation.column relation attr in
                    Das_partition.build
                      (Das_partition.adapt strategy column)
                      ~relation:entry.Catalog.relation ~attr column)
                  join_attrs
              in
              let encrypted = encrypt_relation prng pk tables ~join_attrs relation in
              ignore which;
              let encrypted =
                apply_byzantine (Fault.byzantine_mode fault entry.Catalog.source) encrypted
              in
              (prng, tables, encrypted))
        in
        (* One upload per source: the encrypted rows plus this setting's
           form of the index tables (so sources still "send data once"). *)
        let record_upload sid which ~rows_size ?(tables_payload = 0)
            ?(tables_wire = fun () -> "") ~rows () =
          Link.deliver_rows link ~phase:"source-upload" ~sender:(Source sid)
            ~receiver:Mediator
            ~label:(Printf.sprintf "R%dS+ITables" which)
            ~size:(rows_size + tables_payload)
            (fun () ->
              match tables_wire () with
              | "" -> er_rows rows
              | tables -> er_rows rows @ [ tables ])
        in
        let s1 = request.Request.decomposition.Catalog.left.Catalog.source in
        let s2 = request.Request.decomposition.Catalog.right.Catalog.source in
        let prng1, tables1, r1s =
          source_side 1 request.Request.decomposition.Catalog.left request.Request.left_result
        in
        let prng2, tables2, r2s =
          source_side 2 request.Request.decomposition.Catalog.right
            request.Request.right_result
        in
        (* The tuple-wise encryption reveals the partial result sizes to
           the mediator. *)
        Outcome.Builder.mediator_sees b "cardinality-R1S" (List.length r1s.rows);
        Outcome.Builder.mediator_sees b "cardinality-R2S" (List.length r2s.rows);

        (* Steps 4/5: route the index tables to the translator, which
           derives the server query q_S. *)
        let per_attr_pairs =
          match setting with
          | Client_setting ->
            (* Tables encrypted for the client; client translates. *)
            let enc_it1 =
              Outcome.Builder.timed b ~party:(Transcript.party_name (Source s1))
                "source-encrypt" (fun () -> Hybrid.encrypt prng1 pk (tables_to_wire tables1))
            in
            let enc_it2 =
              Outcome.Builder.timed b ~party:(Transcript.party_name (Source s2))
                "source-encrypt" (fun () -> Hybrid.encrypt prng2 pk (tables_to_wire tables2))
            in
            record_upload s1 1 ~rows_size:r1s.wire_size ~tables_payload:(Hybrid.size enc_it1)
              ~tables_wire:(fun () -> Hybrid.to_wire enc_it1) ~rows:r1s ();
            record_upload s2 2 ~rows_size:r2s.wire_size ~tables_payload:(Hybrid.size enc_it2)
              ~tables_wire:(fun () -> Hybrid.to_wire enc_it2) ~rows:r2s ();
            Link.deliver link ~phase:"client-translate" ~sender:Mediator ~receiver:Client
              ~label:"enc(ITables_R1)" ~size:(Hybrid.size enc_it1)
              (fun () -> Hybrid.to_wire enc_it1);
            Link.deliver link ~phase:"client-translate" ~sender:Mediator ~receiver:Client
              ~label:"enc(ITables_R2)" ~size:(Hybrid.size enc_it2)
              (fun () -> Hybrid.to_wire enc_it2);
            let pairs =
              Outcome.Builder.timed b ~party:"Client" "client-translate" (fun () ->
                  let it1 =
                    tables_of_wire
                      (decrypt_or_fail ~phase:"client-translate" ~party:Client client.Env.key
                         "ITables_R1" enc_it1)
                  in
                  let it2 =
                    tables_of_wire
                      (decrypt_or_fail ~phase:"client-translate" ~party:Client client.Env.key
                         "ITables_R2" enc_it2)
                  in
                  Outcome.Builder.client_sees b "partitions-R1" (partition_count_sum it1);
                  Outcome.Builder.client_sees b "partitions-R2" (partition_count_sum it2);
                  server_query_pairs ~left_tables:it1 ~right_tables:it2)
            in
            let total = List.fold_left (fun acc p -> acc + List.length p) 0 pairs in
            Link.deliver link ~phase:"mediator-server-query" ~sender:Client
              ~receiver:Mediator ~label:"server-query-qS" ~size:(16 * total)
              (fun () -> pairs_payload pairs);
            pairs
          | Source_setting ->
            (* S2's tables travel, encrypted under S1's source key, to S1,
               which translates — learning S2's partition structure. *)
            let s1_keys = source_keypair env s1 in
            let enc_it2 =
              Outcome.Builder.timed b ~party:(Transcript.party_name (Source s2))
                "source-encrypt" (fun () ->
                  Hybrid.encrypt prng2 (Elgamal.public s1_keys) (tables_to_wire tables2))
            in
            record_upload s1 1 ~rows_size:r1s.wire_size ~rows:r1s ();
            record_upload s2 2 ~rows_size:r2s.wire_size ~tables_payload:(Hybrid.size enc_it2)
              ~tables_wire:(fun () -> Hybrid.to_wire enc_it2) ~rows:r2s ();
            Link.deliver link ~phase:"source-translate" ~sender:Mediator
              ~receiver:(Source s1) ~label:"enc_S1(ITables_R2)" ~size:(Hybrid.size enc_it2)
              (fun () -> Hybrid.to_wire enc_it2);
            let pairs =
              Outcome.Builder.timed b ~party:(Transcript.party_name (Source s1)) "source-translate" (fun () ->
                  let it2 =
                    tables_of_wire
                      (decrypt_or_fail ~phase:"source-translate" ~party:(Source s1) s1_keys
                         "ITables_R2" enc_it2)
                  in
                  Outcome.Builder.source_sees b s1 "partitions-R2" (partition_count_sum it2);
                  server_query_pairs ~left_tables:tables1 ~right_tables:it2)
            in
            let total = List.fold_left (fun acc p -> acc + List.length p) 0 pairs in
            Link.deliver link ~phase:"mediator-server-query" ~sender:(Source s1)
              ~receiver:Mediator ~label:"server-query-qS" ~size:(16 * total)
              (fun () -> pairs_payload pairs);
            pairs
          | Mediator_setting ->
            (* Tables in plaintext at the mediator — cheapest, but the
               mediator can now approximate every tuple's join value
               (the paper's Section 6 warning). *)
            record_upload s1 1 ~rows_size:r1s.wire_size
              ~tables_payload:(String.length (tables_to_wire tables1))
              ~tables_wire:(fun () -> tables_to_wire tables1) ~rows:r1s ();
            record_upload s2 2 ~rows_size:r2s.wire_size
              ~tables_payload:(String.length (tables_to_wire tables2))
              ~tables_wire:(fun () -> tables_to_wire tables2) ~rows:r2s ();
            Outcome.Builder.mediator_sees b "partitions-R1" (partition_count_sum tables1);
            Outcome.Builder.mediator_sees b "partitions-R2" (partition_count_sum tables2);
            (* Measured value approximation: entropy of the index values
               it holds, in centibits per tuple. *)
            let centibits tables relation =
              List.fold_left
                (fun acc table ->
                  acc
                  + int_of_float
                      (100.0
                      *. Das_partition.disclosure_bits table
                           (Relation.column relation (Das_partition.attr table))))
                0 tables
            in
            Outcome.Builder.mediator_sees b "approx-value-centibits-R1"
              (centibits tables1 request.Request.left_result);
            Outcome.Builder.mediator_sees b "approx-value-centibits-R2"
              (centibits tables2 request.Request.right_result);
            Outcome.Builder.timed b ~party:"Mediator" "mediator-translate" (fun () ->
                server_query_pairs ~left_tables:tables1 ~right_tables:tables2)
        in
        let total_pairs = List.fold_left (fun acc p -> acc + List.length p) 0 per_attr_pairs in

        (* Step 6: the mediator evaluates q_S over the encrypted relations
           and returns R_C. *)
        let rc =
          Outcome.Builder.timed b ~party:"Mediator" "mediator-server-query" (fun () ->
              validate_indexes 1 r1s;
              validate_indexes 2 r2s;
              server_join server_eval per_attr_pairs r1s r2s)
        in
        Outcome.Builder.mediator_sees b "condition-size-qS" total_pairs;
        Outcome.Builder.mediator_sees b "cardinality-RC" (List.length rc);
        let rc_size =
          List.fold_left (fun acc (x, y) -> acc + Hybrid.size x + Hybrid.size y) 0 rc
        in
        Link.deliver_rows link ~phase:"client-postprocess" ~sender:Mediator ~receiver:Client
          ~label:"RC" ~size:rc_size
          (fun () -> List.map (fun (x, y) -> Hybrid.to_wire x ^ Hybrid.to_wire y) rc);
        Outcome.Builder.client_sees b "candidate-pairs-received" (List.length rc);

        (* Step 7: the client decrypts R_C and applies q_C. *)
        let result =
          Outcome.Builder.timed b ~party:"Client" "client-postprocess" (fun () ->
              let left_schema = Relation.schema request.Request.left_result in
              let right_schema = Relation.schema request.Request.right_result in
              let pos_left = Join_key.positions left_schema join_attrs in
              let pos_right = Join_key.positions right_schema join_attrs in
              let keep_right =
                Array.of_list
                  (List.filter
                     (fun i -> not (Array.exists (Int.equal i) pos_right))
                     (List.init (Schema.arity right_schema) Fun.id))
              in
              let joined_schema =
                Schema.append left_schema
                  (Schema.make
                     (List.map (Schema.attr_at right_schema) (Array.to_list keep_right)))
              in
              let joined =
                List.filter_map
                  (fun (ct1, ct2) ->
                    let t1 =
                      Tuple.decode
                        (decrypt_or_fail ~phase:"client-postprocess" ~party:Client
                           client.Env.key "etuple1" ct1)
                    in
                    let t2 =
                      Tuple.decode
                        (decrypt_or_fail ~phase:"client-postprocess" ~party:Client
                           client.Env.key "etuple2" ct2)
                    in
                    (* q_C : R1.A_join = R2.A_join on the plaintexts. *)
                    if
                      Join_key.equal
                        (Join_key.of_tuple pos_left t1)
                        (Join_key.of_tuple pos_right t2)
                    then Some (Tuple.append t1 (Tuple.project keep_right t2))
                    else None)
                  rc
              in
              Request.finalize request (Relation.make joined_schema joined))
        in
        Outcome.Builder.attribute b (Counters.attribution ());
        (result, exact, List.length rc))
  in
  Outcome.Builder.finish b ~result ~exact ~client_received_tuples:received ~counters

(** The DAS delivery phase, client setting (paper Listing 2).

    Each source builds an index table over dom_active(A) for every join
    attribute A, encrypts its partial result tuple-wise (hybrid encryption
    under the client's key) alongside the vector of index values, and
    encrypts the index tables themselves.  The client — acting as the DAS
    query translator — derives the server query q_S (per join attribute, a
    disjunction over overlapping partition pairs, conjoined across
    attributes) and the client query q_C; the mediator evaluates q_S on
    the encrypted relations and returns the superset R_C, which the client
    decrypts and post-filters with q_C.

    With a single join attribute this is exactly the paper's protocol;
    with several it is the Section 8 extension. *)

open Secmed_relalg
open Secmed_crypto

type server_eval =
  | Pair_index   (** hash join on the Cond_S index pairs (default) *)
  | Nested_loop  (** literal σ_CondS(R1S × R2S) over the relational engine *)

(** Placement of the DAS query translator (paper Section 3.1: "In
    principle, it is possible to place the DAS query translator in any
    layer... mediator setting, source setting and client setting.  In
    this article we only describe the client setting.")  All three are
    implemented here, with their differing disclosures measured. *)
type setting =
  | Client_setting
      (** Listing 2: index tables travel encrypted to the client, which
          derives q_S — the paper's confidentiality-preserving choice *)
  | Source_setting
      (** the translator sits at S1; S2's index tables travel to it
          encrypted under S1's source key (S1 learns S2's partition
          structure) *)
  | Mediator_setting
      (** index tables in plaintext at the mediator — one client round
          fewer, but the mediator "would know the partition ranges and
          thus be able to approximate the join attribute value for each
          tuple" (Section 6); the outcome records the measured
          approximation power in centibits per tuple *)

val setting_name : setting -> string

val run :
  ?fault:Secmed_mediation.Fault.plan ->
  ?endpoint:Secmed_mediation.Link.endpoint ->
  ?strategy:Das_partition.strategy ->
  ?server_eval:server_eval ->
  ?setting:setting ->
  Env.t ->
  Env.client ->
  query:string ->
  Outcome.t
(** End-to-end request + DAS delivery.  Default strategy: [Equi_depth 4]
    (applied to each join attribute); default setting: [Client_setting].
    With a fault plan installed the run may raise
    [Secmed_mediation.Fault.Fault_detected]: channel faults are caught by
    the integrity envelope at the receiver, byzantine partition indexes by
    the mediator's bounds check, and byzantine ciphertexts by the client's
    authenticated decryption. *)

(** {1 Exposed internals (unit-tested / reused by benches)} *)

type encrypted_relation = {
  rows : (Hybrid.ciphertext * int array) list;
      (** (etuple, a^S vector) — the schema R^S(Etuple, A^S_1, ..) *)
  wire_size : int;
}

val encrypt_relation :
  ?domains:int -> Prng.t -> Elgamal.public_key -> Das_partition.t list ->
  join_attrs:string list -> Relation.t -> encrypted_relation
(** Per-tuple hybrid encryption through the {!Batch} executor on
    independent per-tuple PRNG streams: bit-identical rows at any
    [domains] count (default {!Batch.default_domains}). *)

val server_query_pairs :
  left_tables:Das_partition.t list ->
  right_tables:Das_partition.t list ->
  (int * int) list list
(** Per join attribute, the index-value pairs of overlapping partitions:
    the disjuncts of that attribute's part of Cond_S. *)

val server_condition :
  left_tables:Das_partition.t list -> right_tables:Das_partition.t list -> Predicate.t
(** Cond_S as a predicate over [R1S.idx_k] / [R2S.idx_k] (used by the
    nested-loop evaluation and shown in diagnostics). *)

val server_join :
  server_eval ->
  (int * int) list list ->
  encrypted_relation ->
  encrypted_relation ->
  (Hybrid.ciphertext * Hybrid.ciphertext) list
(** The mediator's evaluation of q_S: candidate ciphertext pairs R_C. *)

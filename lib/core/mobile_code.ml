open Secmed_crypto
open Secmed_relalg
open Secmed_sql
open Secmed_mediation

let encode_relation relation =
  let w = Wire.writer () in
  Wire.write_list w (fun t -> Wire.write_string w (Tuple.encode t)) (Relation.tuples relation);
  Wire.contents w

let decode_tuples blob =
  let r = Wire.reader blob in
  let tuples = Wire.read_list r (fun () -> Tuple.decode (Wire.read_string r)) in
  Wire.expect_end r;
  tuples

let run ?fault ?endpoint env client ~query =
  let b = Outcome.Builder.create ~scheme:"mobile-code" in
  let tr = Outcome.Builder.transcript b in
  Fault.attach fault tr;
  let link = Link.make ?endpoint ?fault tr in
  let (result, exact, received), counters =
    Counters.with_fresh (fun () ->
        let request =
          Outcome.Builder.timed b ~party:"Mediator" "request" (fun () -> Request.run link env client ~query)
        in
        let exact = Request.exact_result env request in
        let pk = request.Request.client_pk in
        let encrypt_side which (entry : Catalog.entry) relation =
          let prng = Env.prng_for env (Printf.sprintf "mc-source-%d" entry.Catalog.source) in
          Outcome.Builder.timed b
            ~party:(Transcript.party_name (Source entry.Catalog.source)) "source-encrypt"
            (fun () ->
              let ct = Hybrid.encrypt prng pk (encode_relation relation) in
              let ct =
                match Fault.byzantine_mode fault entry.Catalog.source with
                | Some Fault.Malformed_ciphertexts ->
                  Hybrid.of_wire (Fault.flip_tail (Hybrid.to_wire ct))
                | _ -> ct
              in
              Link.deliver link ~phase:"mediator-forward"
                ~sender:(Source entry.Catalog.source) ~receiver:Mediator
                ~label:(Printf.sprintf "encrypted-R%d" which)
                ~size:(Hybrid.size ct)
                (fun () -> Hybrid.to_wire ct);
              ct)
        in
        let ct1 =
          encrypt_side 1 request.Request.decomposition.Catalog.left request.Request.left_result
        in
        let ct2 =
          encrypt_side 2 request.Request.decomposition.Catalog.right
            request.Request.right_result
        in
        (* The mediator ships the partial results plus the mobile join
           program (the rendered algebra tree). *)
        let program = Algebra.to_string (Algebra.of_query (Parser.parse query)) in
        Link.deliver link ~phase:"client-postprocess" ~sender:Mediator ~receiver:Client
          ~label:"encrypted-partials+code"
          ~size:(Hybrid.size ct1 + Hybrid.size ct2 + String.length program)
          (fun () -> Hybrid.to_wire ct1 ^ Hybrid.to_wire ct2 ^ program);
        Outcome.Builder.mediator_sees b "ciphertext-bytes-R1" (Hybrid.size ct1);
        Outcome.Builder.mediator_sees b "ciphertext-bytes-R2" (Hybrid.size ct2);

        (* The client executes the code: decrypt, then join locally. *)
        let decrypt label ct =
          match Hybrid.decrypt client.Env.key ct with
          | Some blob -> decode_tuples blob
          | None ->
            Fault.fail ~phase:"client-postprocess" ~party:Client
              ("authentication failure on " ^ label)
        in
        let result =
          Outcome.Builder.timed b ~party:"Client" "client-postprocess" (fun () ->
              let left =
                Relation.make (Relation.schema request.Request.left_result) (decrypt "R1" ct1)
              in
              let right =
                Relation.make (Relation.schema request.Request.right_result) (decrypt "R2" ct2)
              in
              Outcome.Builder.client_sees b "tuples-received"
                (Relation.cardinality left + Relation.cardinality right);
              Request.finalize request (Relation.natural_join left right))
        in
        let received =
          Relation.cardinality request.Request.left_result
          + Relation.cardinality request.Request.right_result
        in
        Outcome.Builder.attribute b (Counters.attribution ());
        (result, exact, received))
  in
  Outcome.Builder.finish b ~result ~exact ~client_received_tuples:received ~counters

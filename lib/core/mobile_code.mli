(** The prior-work baseline ([4]: "Secure mediation with mobile code").

    The datasources hybrid-encrypt their complete partial results; the
    mediator cannot combine them and instead forwards everything to the
    client together with an executable join program (here: the rendered
    algebra tree standing in for the mobile code).  The client decrypts
    both partial results and computes the join locally.  Functionally
    correct, but the client receives both full partial results — exactly
    the disclosure the paper's three protocols improve on. *)

val run :
  ?fault:Secmed_mediation.Fault.plan ->
  ?endpoint:Secmed_mediation.Link.endpoint ->
  Env.t ->
  Env.client ->
  query:string ->
  Outcome.t
(** With a fault plan the run may raise
    [Secmed_mediation.Fault.Fault_detected] (integrity envelope on the
    forwarded ciphertexts; authenticated decryption at the client). *)

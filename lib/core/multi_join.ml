open Secmed_relalg
open Secmed_sql
open Secmed_mediation

type stage = {
  stage_query : string;
  outcome : Outcome.t;
}

type t = {
  result : Relation.t;
  exact : Relation.t;
  stages : stage list;
  total_messages : int;
  total_bytes : int;
}

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let correct t =
  Relation.equal_contents t.result t.exact
  && List.for_all (fun s -> Outcome.correct s.outcome) t.stages

(* Render the final round's query with the residual clauses attached. *)
let render_query ~distinct ~select ~where left right =
  let buffer = Buffer.create 64 in
  Buffer.add_string buffer "select ";
  if distinct then Buffer.add_string buffer "distinct ";
  (match select with
   | None -> Buffer.add_string buffer "*"
   | Some columns -> Buffer.add_string buffer (String.concat ", " columns));
  Buffer.add_string buffer (Printf.sprintf " from %s natural join %s" left right);
  (match where with
   | None -> ()
   | Some clause -> Buffer.add_string buffer (" where " ^ clause));
  Buffer.contents buffer

let check_unqualified_column col =
  match col.Ast.qualifier with
  | None -> col.Ast.name
  | Some _ ->
    unsupported
      "qualified column %s: successive joins rename intermediate results, use bare names"
      (Ast.column_name col)

let rec render_expr = function
  | Ast.E_bool b -> string_of_bool b
  | Ast.E_cmp (op, a, b) ->
    let op_string : Predicate.comparison -> string = function
      | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
    in
    Printf.sprintf "%s %s %s" (render_operand a) (op_string op) (render_operand b)
  | Ast.E_and (a, b) -> Printf.sprintf "(%s and %s)" (render_expr a) (render_expr b)
  | Ast.E_or (a, b) -> Printf.sprintf "(%s or %s)" (render_expr a) (render_expr b)
  | Ast.E_not a -> Printf.sprintf "not %s" (render_expr a)
  | Ast.E_in (x, ls) ->
    Printf.sprintf "%s in (%s)" (render_operand x)
      (String.concat ", " (List.map render_literal ls))

and render_operand = function
  | Ast.Col col -> check_unqualified_column col
  | Ast.Lit l -> render_literal l

and render_literal = function
  | Ast.L_int n -> string_of_int n
  | Ast.L_str s -> "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"
  | Ast.L_bool b -> string_of_bool b

(* The virtual datasource holding the client's intermediate result. *)
let intermediate_entry env name relation =
  let schema = Schema.unqualify (Relation.schema relation) in
  (* Unqualifying must not collide. *)
  let _ = Schema.make (Schema.attrs schema) in
  let source_id =
    1 + List.fold_left (fun acc s -> Stdlib.max acc s.Env.source_id) 0 env.Env.sources
  in
  let entry =
    { Catalog.relation = name; source = source_id; schema; source_relation = name }
  in
  let source =
    {
      Env.source_id;
      relations = [ (name, Relation.make schema (Relation.tuples relation)) ];
      policy = Policy.open_policy;
      advertised = [];
    }
  in
  (entry, source)

let run ?(scheme = Protocol.Commutative { use_ids = false }) env client ~query =
  let ast = Parser.parse query in
  let tables =
    ast.Ast.from.Ast.table
    :: List.map
         (fun (kind, table) ->
           match kind with
           | Ast.J_natural -> table.Ast.table
           | Ast.J_on _ ->
             unsupported "successive joins support NATURAL JOIN chains only")
         ast.Ast.joins
  in
  (match tables with
   | [] | [ _ ] -> unsupported "query has no JOIN"
   | _ :: _ -> ());
  (* Validate the residual clauses eagerly so failures precede any round. *)
  let select =
    Option.map
      (List.map (function
        | Ast.S_column c -> check_unqualified_column c
        | Ast.S_aggregate _ ->
          unsupported "aggregates are not supported in successive joins"))
      ast.Ast.select
  in
  if ast.Ast.group_by <> [] then unsupported "GROUP BY is not supported in successive joins";
  let where = Option.map render_expr ast.Ast.where in
  let rec rounds stage_index current_name current_intermediate remaining acc =
    match remaining with
    | [] -> List.rev acc
    | next_table :: rest ->
      let is_last = rest = [] in
      let stage_env =
        match current_intermediate with
        | None -> env
        | Some relation ->
          let entry, source = intermediate_entry env current_name relation in
          let next_entry =
            try Catalog.locate env.Env.catalog next_table
            with Not_found -> unsupported "unknown relation %s" next_table
          in
          {
            env with
            Env.catalog = Catalog.make [ entry; next_entry ];
            sources = source :: env.Env.sources;
          }
      in
      let stage_query =
        if is_last then
          render_query ~distinct:ast.Ast.distinct ~select ~where current_name next_table
        else render_query ~distinct:false ~select:None ~where:None current_name next_table
      in
      let outcome = Protocol.run_exn scheme stage_env client ~query:stage_query in
      let stage = { stage_query; outcome } in
      let next_name = Printf.sprintf "I%d" (stage_index + 1) in
      rounds (stage_index + 1) next_name (Some outcome.Outcome.result) rest (stage :: acc)
  in
  let stages = rounds 0 (List.hd tables) None (List.tl tables) [] in
  let last = List.nth stages (List.length stages - 1) in
  let result = last.outcome.Outcome.result in
  (* The chained reference: each round's [exact] is computed from the
     previous round's actual output, so the final round's reference is the
     trusted answer for the whole chain provided every round was exact. *)
  let exact = last.outcome.Outcome.exact in
  {
    result;
    exact;
    stages;
    total_messages =
      List.fold_left
        (fun acc s -> acc + Transcript.message_count s.outcome.Outcome.transcript)
        0 stages;
    total_bytes =
      List.fold_left
        (fun acc s -> acc + Transcript.total_bytes s.outcome.Outcome.transcript)
        0 stages;
  }

open Secmed_crypto
open Secmed_relalg
open Secmed_mediation

type t = {
  scheme : string;
  result : Relation.t;
  exact : Relation.t;
  transcript : Transcript.t;
  mediator_observed : (string * int) list;
  client_observed : (string * int) list;
  sources_observed : (int * (string * int) list) list;
  client_received_tuples : int;
  counters : (Counters.primitive * int) list;
  attributed : ((string * string) * (Counters.primitive * int) list) list;
  timings : (string * float) list;
  degraded_from : string option;
}

let correct t = Relation.equal_contents t.result t.exact

let mark_degraded t ~from_scheme ~reason =
  Transcript.note t.transcript
    (Printf.sprintf "degraded: served by %s after %s gave up (%s)" t.scheme from_scheme
       reason);
  { t with degraded_from = Some from_scheme }

let superset_factor t =
  (* Tuples of the two sources that appear in the exact join, counted once
     per source row used; the DAS client receives more than this. *)
  let exact = Stdlib.max 1 (Relation.cardinality t.exact) in
  float_of_int t.client_received_tuples /. float_of_int exact

let observed list key = List.assoc_opt key list

let timing_total t = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 t.timings

let pp_summary fmt t =
  Format.fprintf fmt "[%s%s] result=%d tuples (exact %d, %s), received=%d, %d messages / %d bytes, %.1f ms@."
    t.scheme
    (match t.degraded_from with
     | None -> ""
     | Some from_scheme -> Printf.sprintf ", degraded from %s" from_scheme)
    (Relation.cardinality t.result) (Relation.cardinality t.exact)
    (if correct t then "correct" else "WRONG")
    t.client_received_tuples
    (Transcript.message_count t.transcript)
    (Transcript.total_bytes t.transcript)
    (timing_total t *. 1000.0)

module Builder = struct
  type builder = {
    scheme : string;
    transcript_ : Transcript.t;
    mutable mediator : (string * int) list;
    mutable client : (string * int) list;
    mutable sources : (int * (string * int) list) list;
    mutable timings : (string * float) list; (* reversed *)
    mutable attributed_ : ((string * string) * (Counters.primitive * int) list) list;
  }

  let create ~scheme =
    {
      scheme;
      transcript_ = Transcript.create ();
      mediator = [];
      client = [];
      sources = [];
      timings = [];
      attributed_ = [];
    }

  let attribute b attributed = b.attributed_ <- attributed

  let transcript b = b.transcript_

  let mediator_sees b key value = b.mediator <- b.mediator @ [ (key, value) ]
  let client_sees b key value = b.client <- b.client @ [ (key, value) ]

  let source_sees b id key value =
    let current = Option.value ~default:[] (List.assoc_opt id b.sources) in
    b.sources <- (id, current @ [ (key, value) ]) :: List.remove_assoc id b.sources

  let timed b ?party phase f =
    let start = Secmed_obs.Clock.now_ns () in
    let finish () =
      let elapsed = Secmed_obs.Clock.ns_to_s (Secmed_obs.Clock.elapsed_ns ~since:start) in
      match List.assoc_opt phase b.timings with
      | Some prior ->
        b.timings <- (phase, prior +. elapsed) :: List.remove_assoc phase b.timings
      | None -> b.timings <- (phase, elapsed) :: b.timings
    in
    let attrs =
      match party with
      | None -> []
      | Some p -> [ ("party", Secmed_obs.Json.Str p) ]
    in
    let run () =
      match party with
      | None -> f ()
      | Some p -> Counters.scoped ~party:p ~phase f
    in
    Secmed_obs.Trace.with_span ~kind:Secmed_obs.Trace.Phase ~attrs phase (fun () ->
        match run () with
        | result ->
          finish ();
          result
        | exception e ->
          finish ();
          raise e)

  let finish b ~result ~exact ~client_received_tuples ~counters =
    {
      scheme = b.scheme;
      result;
      exact;
      transcript = b.transcript_;
      mediator_observed = b.mediator;
      client_observed = b.client;
      sources_observed = List.sort compare b.sources;
      client_received_tuples;
      counters;
      attributed = b.attributed_;
      timings = List.rev b.timings;
      degraded_from = None;
    }
end

(** Result of one end-to-end protocol run: the global result the client
    obtained, plus everything the evaluation harness needs — transcript,
    per-party derived observations (for Table 1), primitive counts (for
    Table 2) and per-phase timings. *)

open Secmed_crypto
open Secmed_relalg
open Secmed_mediation

type t = {
  scheme : string;
  result : Relation.t;             (** global result as obtained by the client *)
  exact : Relation.t;              (** trusted-mediator reference result *)
  transcript : Transcript.t;
  mediator_observed : (string * int) list;
      (** quantities the mediator could derive from what it handled *)
  client_observed : (string * int) list;
  sources_observed : (int * (string * int) list) list;
  client_received_tuples : int;
      (** source tuples the client could decrypt (DAS: the superset) *)
  counters : (Counters.primitive * int) list;
  attributed : ((string * string) * (Counters.primitive * int) list) list;
      (** primitive counts split by (party, phase) — the scoped-attribution
          view of [counters]; entries sum to it when every phase was run
          under a party label (see {!Counters.scoped}) *)
  timings : (string * float) list; (** phase -> seconds, in execution order *)
  degraded_from : string option;
      (** [Some s] when the resilience session served the query with this
          scheme only after scheme [s] exhausted its retry/deadline budget
          (see {!Protocol.run_session}); the trade is recorded as a
          transcript note too *)
}

val correct : t -> bool
(** Whether the protocol's result equals the reference result. *)

val mark_degraded : t -> from_scheme:string -> reason:string -> t
(** Annotate the outcome as served via a degradation fallback: sets
    {!field-degraded_from} and appends a transcript note naming the scheme
    that gave up and why. *)

val superset_factor : t -> float
(** client_received_tuples / source tuples in the exact join (>= 1 for a
    correct protocol with a non-empty result; 1 = minimal disclosure). *)

val observed : (string * int) list -> string -> int option
val timing_total : t -> float
val pp_summary : Format.formatter -> t -> unit

(** Mutable builder used by the protocol implementations. *)
module Builder : sig
  type builder

  val create : scheme:string -> builder
  val transcript : builder -> Transcript.t
  val mediator_sees : builder -> string -> int -> unit
  val client_sees : builder -> string -> int -> unit
  val source_sees : builder -> int -> string -> int -> unit
  val timed : builder -> ?party:string -> string -> (unit -> 'a) -> 'a
  (** Accumulates monotonic wall-clock time under the phase name (summing
      repeats).  Opens a [Phase] trace span for the duration; with [?party]
      the span carries a [party] attribute and the thunk runs inside
      {!Counters.scoped}, so crypto-primitive counts land on that
      (party, phase) pair. *)

  val attribute :
    builder -> ((string * string) * (Counters.primitive * int) list) list -> unit
  (** Store the per-(party, phase) attribution — normally
      [Counters.attribution ()] captured inside the [Counters.with_fresh]
      thunk, before the counter state is restored. *)

  val finish :
    builder ->
    result:Relation.t ->
    exact:Relation.t ->
    client_received_tuples:int ->
    counters:(Counters.primitive * int) list ->
    t
end

open Secmed_relalg
open Secmed_crypto
open Secmed_mediation

let relation_size relation =
  List.fold_left (fun acc t -> acc + String.length (Tuple.encode t)) 0 (Relation.tuples relation)

let run ?fault ?endpoint env client ~query =
  let b = Outcome.Builder.create ~scheme:"plain" in
  let tr = Outcome.Builder.transcript b in
  Fault.attach fault tr;
  let link = Link.make ?endpoint ?fault tr in
  let (result, exact, received), counters =
    Counters.with_fresh (fun () ->
        let request =
          Outcome.Builder.timed b ~party:"Mediator" "request" (fun () -> Request.run link env client ~query)
        in
        let exact = Request.exact_result env request in
        let send which (entry : Catalog.entry) relation =
          Link.deliver link ~phase:"mediator-join"
            ~sender:(Source entry.Catalog.source) ~receiver:Mediator
            ~label:(Printf.sprintf "plaintext-R%d" which)
            ~size:(relation_size relation)
            (fun () ->
              String.concat "" (List.map Tuple.encode (Relation.tuples relation)))
        in
        send 1 request.Request.decomposition.Catalog.left request.Request.left_result;
        send 2 request.Request.decomposition.Catalog.right request.Request.right_result;
        (* The mediator sees everything in the plain pipeline. *)
        Outcome.Builder.mediator_sees b "plaintext-tuples-seen"
          (Relation.cardinality request.Request.left_result
          + Relation.cardinality request.Request.right_result);
        let result =
          Outcome.Builder.timed b ~party:"Mediator" "mediator-join" (fun () ->
              Request.finalize request
                (Relation.natural_join request.Request.left_result
                   request.Request.right_result))
        in
        Link.deliver link ~phase:"client-receive" ~sender:Mediator ~receiver:Client
          ~label:"global-result"
          ~size:(relation_size result)
          (fun () -> String.concat "" (List.map Tuple.encode (Relation.tuples result)));
        Outcome.Builder.client_sees b "tuples-received" (Relation.cardinality result);
        Outcome.Builder.attribute b (Counters.attribution ());
        (result, exact, Relation.cardinality result))
  in
  Outcome.Builder.finish b ~result ~exact ~client_received_tuples:received ~counters

(** Non-private reference pipeline: the sources ship plaintext partial
    results and the (trusted) mediator joins them — Figure 1's basic
    mediated system.  Used as the correctness oracle and the no-crypto
    baseline in benchmarks. *)

val run :
  ?fault:Secmed_mediation.Fault.plan ->
  ?endpoint:Secmed_mediation.Link.endpoint ->
  Env.t ->
  Env.client ->
  query:string ->
  Outcome.t
(** With a fault plan the run may raise
    [Secmed_mediation.Fault.Fault_detected] on the plaintext links (the
    integrity envelope still applies — the reference pipeline fails closed
    like the others so the differential suite can compare them). *)

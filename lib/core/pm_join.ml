open Secmed_bigint
open Secmed_crypto
open Secmed_relalg
open Secmed_mediation

type variant =
  | Direct_payload
  | Session_keys

let variant_name = function
  | Direct_payload -> "direct-payload"
  | Session_keys -> "session-keys"

(* Join values are injected into Z_n through a deterministic 128-bit
   encoding (the paper uses the values directly; hashing makes the
   encoding type-uniform and width-bounded — see DESIGN.md).  Both the
   polynomial roots and the evaluation points use this encoding, and the
   16 bytes double as the "a_k" prefix of the packed plaintext the client
   matches on. *)
let root_bytes key = String.sub (Sha256.digest ("pm-root" ^ Join_key.encode key)) 0 16

let root_of_key key = Bigint.of_bytes_be (root_bytes key)

let root_of_value v = root_of_key (Join_key.of_values [ v ])

let encode_tuple_set tuples =
  let w = Wire.writer () in
  Wire.write_list w (fun t -> Wire.write_string w (Tuple.encode t)) tuples;
  Wire.contents w

let decode_tuple_set blob =
  let r = Wire.reader blob in
  let tuples = Wire.read_list r (fun () -> Tuple.decode (Wire.read_string r)) in
  Wire.expect_end r;
  tuples

let ciphertext_bytes pk = (Bigint.numbits pk.Paillier.n_squared + 7) / 8

let be64 v = String.init 8 (fun i -> Char.chr ((v lsr ((7 - i) * 8)) land 0xff))

let read_be64 s off =
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

(* What one source's pass produces: the e-values plus (session-key
   variant) an ID table of DEM-encrypted tuple sets. *)
type side_output = {
  e_values : Paillier.ciphertext list;
  id_table : (int * string) list;
  id_table_bytes : int;
}

(* Steps 5/6 of Listing 4: for each own value a, homomorphically evaluate
   the opposite polynomial at a, mask with fresh randomness and add the
   packed (a ‖ payload).  Each group entry runs on its own PRNG stream
   (split from the side's seed) through the Batch executor: the Horner
   evaluation plus mask-and-add per entry is the source's dominant cost
   and is independent across entries.  IDs are assigned by position —
   entry i of this side gets [first_id + i] — which reproduces the
   sequential numbering for any domain count. *)
let evaluate_side ~variant ~prng ~pk ~opp_coeffs ~request ~which ~first_id =
  let items =
    Batch.map_seeded ~prng ~label:"pm-eval"
      (fun i prng (a, tuples) ->
        let payload, id_entry =
          match variant with
          | Direct_payload -> (encode_tuple_set tuples, None)
          | Session_keys ->
            let key = Hybrid.random_session_key prng in
            let id = first_id + i in
            (key ^ be64 id, Some (id, Hybrid.dem_encrypt prng ~key (encode_tuple_set tuples)))
        in
        let packed = root_bytes a ^ payload in
        let message =
          try Paillier.encode_bytes pk packed
          with Invalid_argument _ ->
            invalid_arg
              (Printf.sprintf
                 "Pm_join: Tup_i(%s) needs %d plaintext bytes but the Paillier key holds %d; \
                  use the Session_keys variant or a larger key"
                 (Join_key.to_string a) (String.length packed)
                 (Paillier.max_plaintext_bytes pk))
        in
        let evaluated = Pm_poly.eval_encrypted pk opp_coeffs (root_of_key a) in
        (Pm_poly.mask_and_add prng pk evaluated ~payload:message, id_entry))
      (Array.of_list (Request.groups request which))
  in
  let e_values = Array.to_list (Array.map fst items) in
  let id_table = List.filter_map snd (Array.to_list items) in
  let id_table_bytes =
    List.fold_left (fun acc (_, blob) -> acc + 8 + String.length blob) 0 id_table
  in
  { e_values; id_table; id_table_bytes }

(* The client's view of one decrypted e-value. *)
type decrypted_entry = {
  root : string;       (* 16 bytes *)
  entry_payload : string;
}

let decrypt_entries sk e_values =
  let pk = Paillier.public sk in
  (* Step 8's n+m CRT decryptions fan out across domains; decryption is
     deterministic, so plain parallel_map keeps the list order. *)
  let plains = Batch.map_list (Paillier.decrypt sk) e_values in
  List.filter_map
    (fun plain ->
      match Paillier.decode_bytes pk plain with
      | Some packed when String.length packed >= 16 ->
        Some
          {
            root = String.sub packed 0 16;
            entry_payload = String.sub packed 16 (String.length packed - 16);
          }
      | Some _ | None -> None)
    plains

let recover_tuples ~variant ~id_lookup entry =
  match variant with
  | Direct_payload -> (
    try Some (decode_tuple_set entry.entry_payload)
    with Invalid_argument _ | Wire.Malformed _ -> None)
  | Session_keys ->
    if String.length entry.entry_payload <> 24 then None
    else begin
      let key = String.sub entry.entry_payload 0 16 in
      let id = read_be64 entry.entry_payload 16 in
      match id_lookup id with
      | None -> None
      | Some blob ->
        (match Hybrid.dem_decrypt ~key blob with
         | Some set -> (
           try Some (decode_tuple_set set)
           with Invalid_argument _ | Wire.Malformed _ -> None)
         | None -> None)
    end

(* Canonical payloads: every Paillier ciphertext at the fixed modulus
   width, ID-table entries as 8-byte id + DEM blob — so each message's
   wire form is exactly the size the transcript declares.  One string
   per ciphertext / table entry, so the e-value messages can travel
   row-wise ([Link.deliver_rows]). *)
let cts_rows ct_bytes cts =
  List.map
    (fun c -> Bigint.to_bytes_be_padded ct_bytes (Paillier.ciphertext_to_bigint c))
    cts

let cts_payload ct_bytes cts = String.concat "" (cts_rows ct_bytes cts)

let id_table_rows table = List.map (fun (id, blob) -> be64 id ^ blob) table

(* Receiver-side range/group check: a valid Paillier ciphertext is a unit
   of Z_{n^2}, so 0 never appears honestly; the private-type constructor
   already excludes values >= n^2.  Run unconditionally — it is the
   defence against a source shipping garbage coefficients. *)
let validate_ciphertexts ~phase ~party label cts =
  List.iter
    (fun c ->
      if Bigint.is_zero (Paillier.ciphertext_to_bigint c) then
        Fault.fail ~phase ~party
          (Printf.sprintf "%s carries an out-of-group Paillier value (0 not a unit)" label))
    cts

let run ?fault ?endpoint ?(variant = Session_keys) env client ~query =
  let b = Outcome.Builder.create ~scheme:("pm-" ^ variant_name variant) in
  let tr = Outcome.Builder.transcript b in
  Fault.attach fault tr;
  let link = Link.make ?endpoint ?fault tr in
  let (result, exact, received), counters =
    Counters.with_fresh (fun () ->
        let request =
          Outcome.Builder.timed b ~party:"Mediator" "request" (fun () -> Request.run link env client ~query)
        in
        let exact = Request.exact_result env request in
        let pk = Paillier.public client.Env.paillier_key in
        let n_bytes = (Bigint.numbits pk.Paillier.n + 7) / 8 in
        let ct_bytes = ciphertext_bytes pk in
        let s1 = request.Request.decomposition.Catalog.left.Catalog.source in
        let s2 = request.Request.decomposition.Catalog.right.Catalog.source in

        (* Step 1: the client's homomorphic public key is distributed with
           its credentials (we account for it explicitly). *)
        let pk_payload () = Bigint.to_bytes_be_padded n_bytes pk.Paillier.n in
        Link.deliver link ~phase:"request" ~sender:Client ~receiver:Mediator
          ~label:"homomorphic-pk" ~size:n_bytes pk_payload;
        Link.deliver link ~phase:"request" ~sender:Mediator ~receiver:(Source s1)
          ~label:"homomorphic-pk" ~size:n_bytes pk_payload;
        Link.deliver link ~phase:"request" ~sender:Mediator ~receiver:(Source s2)
          ~label:"homomorphic-pk" ~size:n_bytes pk_payload;

        (* Steps 2/3: each source builds its polynomial from its active
           domain and sends the encrypted coefficients to the mediator. *)
        let prng1 = Env.prng_for env (Printf.sprintf "pm-source-%d" s1) in
        let prng2 = Env.prng_for env (Printf.sprintf "pm-source-%d" s2) in
        let build_poly which prng sid =
          Outcome.Builder.timed b ~party:(Transcript.party_name (Source sid)) "source-polynomial" (fun () ->
              let roots = List.map root_of_key (Request.join_attr_values request which) in
              let poly = Pm_poly.from_roots ~modulus:pk.Paillier.n roots in
              let coeffs = Pm_poly.encrypt prng pk poly in
              (* A byzantine source ships values outside the ciphertext
                 group; the opposite source's range check catches them. *)
              let coeffs =
                match Fault.byzantine_mode fault sid with
                | Some Fault.Garbage_paillier ->
                  List.map (fun _ -> Paillier.ciphertext_of_bigint pk Bigint.zero) coeffs
                | _ -> coeffs
              in
              Link.deliver_rows link ~phase:"mediator-forward" ~sender:(Source sid)
                ~receiver:Mediator ~label:"encrypted-coefficients"
                ~size:(ct_bytes * List.length coeffs)
                (fun () -> cts_rows ct_bytes coeffs);
              coeffs)
        in
        let coeffs1 = build_poly `Left prng1 s1 in
        let coeffs2 = build_poly `Right prng2 s2 in
        (* The coefficient count reveals the polynomial degree, i.e. the
           size of the active domain, to the mediator (and to the opposite
           source after forwarding). *)
        Outcome.Builder.mediator_sees b "cardinality-domactive-R1"
          (List.length coeffs1 - 1);
        Outcome.Builder.mediator_sees b "cardinality-domactive-R2"
          (List.length coeffs2 - 1);

        (* Step 4: the mediator forwards the encrypted coefficients. *)
        Link.deliver link ~phase:"source-evaluate" ~sender:Mediator ~receiver:(Source s2)
          ~label:"encrypted-coefficients-P1" ~size:(ct_bytes * List.length coeffs1)
          (fun () -> cts_payload ct_bytes coeffs1);
        Link.deliver link ~phase:"source-evaluate" ~sender:Mediator ~receiver:(Source s1)
          ~label:"encrypted-coefficients-P2" ~size:(ct_bytes * List.length coeffs2)
          (fun () -> cts_payload ct_bytes coeffs2);
        Outcome.Builder.source_sees b s1 "degree-opposite-polynomial"
          (List.length coeffs2 - 1);
        Outcome.Builder.source_sees b s2 "degree-opposite-polynomial"
          (List.length coeffs1 - 1);

        (* Steps 5/6: each source evaluates the opposite polynomial at its
           own values and returns the masked e-values. *)
        let next_first_id = ref 0 in
        let eval_side which prng sid opp_coeffs =
          Outcome.Builder.timed b ~party:(Transcript.party_name (Source sid)) "source-evaluate" (fun () ->
              validate_ciphertexts ~phase:"source-evaluate" ~party:(Source sid)
                "opposite polynomial" opp_coeffs;
              let first_id = !next_first_id in
              next_first_id := first_id + List.length (Request.groups request which);
              let output =
                evaluate_side ~variant ~prng ~pk ~opp_coeffs ~request ~which ~first_id
              in
              (* A byzantine source damages the DEM blobs of its ID table
                 (session-key variant); the client's authenticated DEM
                 decryption fails on every matched entry. *)
              let output =
                match Fault.byzantine_mode fault sid with
                | Some Fault.Malformed_ciphertexts ->
                  {
                    output with
                    id_table =
                      List.map (fun (id, blob) -> (id, Fault.flip_tail blob)) output.id_table;
                  }
                | _ -> output
              in
              Link.deliver_rows link ~phase:"mediator-forward" ~sender:(Source sid)
                ~receiver:Mediator ~label:"e-values"
                ~size:((ct_bytes * List.length output.e_values) + output.id_table_bytes)
                (fun () ->
                  cts_rows ct_bytes output.e_values @ id_table_rows output.id_table);
              output)
        in
        let out1 = eval_side `Left prng1 s1 coeffs2 in
        let out2 = eval_side `Right prng2 s2 coeffs1 in

        (* Step 7: the mediator sends the n+m encrypted values (and, in the
           session-key variant, the ID tables) to the client. *)
        let total_e = List.length out1.e_values + List.length out2.e_values in
        Link.deliver_rows link ~phase:"client-postprocess" ~sender:Mediator ~receiver:Client
          ~label:"e-values"
          ~size:((ct_bytes * total_e) + out1.id_table_bytes + out2.id_table_bytes)
          (fun () ->
            cts_rows ct_bytes out1.e_values
            @ cts_rows ct_bytes out2.e_values
            @ id_table_rows out1.id_table
            @ id_table_rows out2.id_table);
        Outcome.Builder.client_sees b "ciphertexts-received" total_e;

        (* Step 8: the client decrypts everything and keeps the matches. *)
        let received = ref 0 in
        let result =
          Outcome.Builder.timed b ~party:"Client" "client-postprocess" (fun () ->
              validate_ciphertexts ~phase:"client-postprocess" ~party:Client "e-values"
                out1.e_values;
              validate_ciphertexts ~phase:"client-postprocess" ~party:Client "e-values"
                out2.e_values;
              let entries1 = decrypt_entries client.Env.paillier_key out1.e_values in
              let entries2 = decrypt_entries client.Env.paillier_key out2.e_values in
              Outcome.Builder.client_sees b "well-formed-decryptions"
                (List.length entries1 + List.length entries2);
              (* Hash the ID tables and the right-side entries once, so
                 the postprocess is O(n + m) rather than O(n * m) list
                 scans (mirrors the mediator's match in
                 commutative_join.ml). *)
              let id_lookup table =
                let h = Hashtbl.create (List.length table) in
                List.iter
                  (fun (id, blob) ->
                    if not (Hashtbl.mem h id) then Hashtbl.add h id blob)
                  table;
                Hashtbl.find_opt h
              in
              let by_root = Hashtbl.create (List.length entries2) in
              List.iter (fun e -> Hashtbl.replace by_root e.root e) entries2;
              let join_attrs = Request.join_attrs request in
              let right_schema = Relation.schema request.Request.right_result in
              let pos_right = Join_key.positions right_schema join_attrs in
              let keep_right =
                Array.of_list
                  (List.filter
                     (fun i -> not (Array.exists (Int.equal i) pos_right))
                     (List.init (Schema.arity right_schema) Fun.id))
              in
              let joined_schema =
                Schema.append
                  (Relation.schema request.Request.left_result)
                  (Schema.make
                     (List.map (Schema.attr_at right_schema) (Array.to_list keep_right)))
              in
              let joined =
                List.concat_map
                  (fun e1 ->
                    match Hashtbl.find_opt by_root e1.root with
                    | None -> []
                    | Some e2 ->
                      let tup1 = recover_tuples ~variant ~id_lookup:(id_lookup out1.id_table) e1 in
                      let tup2 = recover_tuples ~variant ~id_lookup:(id_lookup out2.id_table) e2 in
                      (match (tup1, tup2) with
                       | Some tup1, Some tup2 ->
                         received := !received + (List.length tup1 * List.length tup2);
                         List.concat_map
                           (fun t1 ->
                             List.map
                               (fun t2 -> Tuple.append t1 (Tuple.project keep_right t2))
                               tup2)
                           tup1
                       | None, _ | _, None ->
                         (* A root match certifies both sides carried this
                            join value, so honest payloads always recover
                            (16-byte root collisions are negligible): an
                            unrecoverable payload is a damaged ID table,
                            not a non-match — fail closed rather than
                            silently under-report. *)
                         Fault.fail ~phase:"client-postprocess" ~party:Client
                           "matched entry with unrecoverable payload"))
                  entries1
              in
              Request.finalize request (Relation.make joined_schema joined))
        in
        Outcome.Builder.attribute b (Counters.attribution ());
        (result, exact, !received))
  in
  Outcome.Builder.finish b ~result ~exact ~client_received_tuples:received ~counters

(** The private-matching delivery phase (paper Listing 4, after Freedman,
    Nissim and Pinkas).

    The client is the only holder of a homomorphic (Paillier) key pair; its
    public key is distributed with the credentials.  Each source encodes
    its active join domain as the roots of a polynomial, sends the
    encrypted coefficients through the mediator to the opposite source,
    which homomorphically evaluates the polynomial at each of its own
    values, masks with fresh randomness and embeds its value and payload:
    e = E(r·P(a) + (a ‖ payload)).  The client decrypts all n+m values;
    only values in the intersection decrypt to well-formed payloads. *)

type variant =
  | Direct_payload
      (** the tuple set itself is packed into the Paillier plaintext
          (limited by the plaintext capacity) *)
  | Session_keys
      (** the paper's footnote-2 refinement: only a session key and an ID
          are packed; the tuple sets travel DEM-encrypted in an ID table *)

val variant_name : variant -> string

val run :
  ?fault:Secmed_mediation.Fault.plan ->
  ?endpoint:Secmed_mediation.Link.endpoint ->
  ?variant:variant ->
  Env.t ->
  Env.client ->
  query:string ->
  Outcome.t
(** Default variant: [Session_keys] (never hits capacity limits).  With
    [Direct_payload], raises [Invalid_argument] when some Tup_i(a) does
    not fit the Paillier plaintext space.

    With a fault plan the run may raise
    [Secmed_mediation.Fault.Fault_detected]: channel faults are caught by
    the integrity envelope, garbage Paillier values by the receivers'
    group-membership check, and damaged ID-table blobs (byzantine
    [Malformed_ciphertexts], session-key variant) at the client, which
    fails closed on any root-matched entry whose payload does not
    recover. *)

val root_of_value : Secmed_relalg.Value.t -> Secmed_bigint.Bigint.t
(** Deterministic 128-bit encoding of a join value into the plaintext ring
    (shared by both sources; exposed for tests). *)

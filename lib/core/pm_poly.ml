open Secmed_bigint
open Secmed_crypto

type t = { modulus : Bigint.t; coeffs : Bigint.t array }
(* coeffs.(k) is c_k; invariant: length >= 1, all in [0, modulus). *)

let of_coefficients ~modulus coeffs =
  if coeffs = [] then invalid_arg "Pm_poly.of_coefficients: empty";
  { modulus; coeffs = Array.of_list (List.map (fun c -> Bigint.emod c modulus) coeffs) }

let from_roots ~modulus roots =
  (* Multiply (a - x) factors incrementally: if P has coefficients c, then
     (a - x) * P has coefficients a*c_k - c_{k-1}. *)
  let multiply_by_factor coeffs a =
    let d = Array.length coeffs in
    Array.init (d + 1) (fun k ->
        let scaled = if k < d then Bigint.mul a coeffs.(k) else Bigint.zero in
        let shifted = if k > 0 then coeffs.(k - 1) else Bigint.zero in
        Bigint.emod (Bigint.sub scaled shifted) modulus)
  in
  let coeffs = List.fold_left multiply_by_factor [| Bigint.one |] roots in
  { modulus; coeffs }

let coefficients p = Array.to_list p.coeffs
let degree p = Array.length p.coeffs - 1

let eval p x =
  let x = Bigint.emod x p.modulus in
  Array.fold_right
    (fun c acc -> Bigint.emod (Bigint.add (Bigint.mul acc x) c) p.modulus)
    p.coeffs Bigint.zero

let encrypt ?(label = "pm-coeff") prng pk p =
  (* One independent randomness stream per coefficient (split from the
     parent seed, position-free), so the encryptions parallelize with
     bit-identical output at any domain count.  Callers encrypting more
     than one polynomial must use distinct parent PRNGs or labels. *)
  Batch.map_seeded_list ~prng ~label
    (fun _ prng c -> Paillier.encrypt prng pk c)
    (coefficients p)

let eval_encrypted pk encrypted_coeffs x =
  match List.rev encrypted_coeffs with
  | [] -> invalid_arg "Pm_poly.eval_encrypted: empty coefficient list"
  | highest :: rest ->
    let ctx = pk.Paillier.n2_ctx in
    if Bigint.Ctx.uses_montgomery ctx then begin
      (* Horner entirely in the Montgomery domain of n^2: one conversion
         in per coefficient and one conversion out at the end, instead
         of a domain round-trip per scalar_mul/add.  The counter bumps
         mirror the homomorphic operations the generic route performs,
         keeping Table 2 reproductions identical. *)
      let x = Bigint.emod x pk.Paillier.n in
      let acc =
        ref (Bigint.Ctx.to_mont ctx (Paillier.ciphertext_to_bigint highest))
      in
      List.iter
        (fun c ->
          Counters.bump Counters.Homomorphic_scalar;
          Counters.bump Counters.Homomorphic_add;
          let c_m = Bigint.Ctx.to_mont ctx (Paillier.ciphertext_to_bigint c) in
          acc := Bigint.Ctx.mont_mul ctx (Bigint.Ctx.mont_pow ctx !acc x) c_m)
        rest;
      Paillier.ciphertext_of_bigint pk (Bigint.Ctx.of_mont ctx !acc)
    end
    else
      List.fold_left
        (fun acc c -> Paillier.add pk (Paillier.scalar_mul pk x acc) c)
        highest rest

let eval_encrypted_naive prng pk encrypted_coeffs x =
  let zero = Paillier.encrypt prng pk Bigint.zero in
  let acc, _ =
    List.fold_left
      (fun (acc, x_pow) c ->
        let term = Paillier.scalar_mul pk x_pow c in
        (Paillier.add pk acc term, Bigint.emod (Bigint.mul x_pow x) pk.Paillier.n))
      (zero, Bigint.one) encrypted_coeffs
  in
  acc

let mask_and_add prng pk evaluated ~payload =
  Counters.bump Counters.Random_number;
  let n = pk.Paillier.n in
  let r = Bigint.succ (Bigint.random_below (Prng.byte_source prng) (Bigint.pred n)) in
  let ctx = pk.Paillier.n2_ctx in
  if Bigint.Ctx.uses_montgomery ctx then begin
    (* E(eval)^r * E(payload; s) = eval^r * s^n * (1 + payload*n): the
       two variable-base exponentiations (same n^2 modulus, same-width
       exponents) share one squaring chain via Shamir's trick, and the
       binomial factor folds in with a single in-domain multiplication.
       The counter bumps mirror the operations the generic route
       performs, keeping Table 2 reproductions identical. *)
    Counters.bump Counters.Homomorphic_encrypt;
    let s = Paillier.random_unit prng pk in
    Counters.bump Counters.Homomorphic_scalar;
    Counters.bump Counters.Homomorphic_add;
    if Bigint.sign payload < 0 || Bigint.compare payload n >= 0 then
      invalid_arg "Pm_poly.mask_and_add: payload out of range";
    let g_m = Bigint.emod (Bigint.succ (Bigint.mul payload n)) pk.Paillier.n_squared in
    let eval_m = Bigint.Ctx.to_mont ctx (Paillier.ciphertext_to_bigint evaluated) in
    let pair_m = Bigint.Multi_exp.mont_pow2 ctx eval_m r (Bigint.Ctx.to_mont ctx s) n in
    let masked = Bigint.Ctx.mont_mul ctx pair_m (Bigint.Ctx.to_mont ctx g_m) in
    Paillier.ciphertext_of_bigint pk (Bigint.Ctx.of_mont ctx masked)
  end
  else
    (* Non-Montgomery route: same draws in the same order (r, then the
       blinding unit inside [encrypt]), so both routes consume the PRNG
       identically. *)
    Paillier.add pk (Paillier.scalar_mul pk r evaluated)
      (Paillier.encrypt prng pk payload)

open Secmed_bigint
open Secmed_crypto

type t = { modulus : Bigint.t; coeffs : Bigint.t array }
(* coeffs.(k) is c_k; invariant: length >= 1, all in [0, modulus). *)

let of_coefficients ~modulus coeffs =
  if coeffs = [] then invalid_arg "Pm_poly.of_coefficients: empty";
  { modulus; coeffs = Array.of_list (List.map (fun c -> Bigint.emod c modulus) coeffs) }

let from_roots ~modulus roots =
  (* Multiply (a - x) factors incrementally: if P has coefficients c, then
     (a - x) * P has coefficients a*c_k - c_{k-1}. *)
  let multiply_by_factor coeffs a =
    let d = Array.length coeffs in
    Array.init (d + 1) (fun k ->
        let scaled = if k < d then Bigint.mul a coeffs.(k) else Bigint.zero in
        let shifted = if k > 0 then coeffs.(k - 1) else Bigint.zero in
        Bigint.emod (Bigint.sub scaled shifted) modulus)
  in
  let coeffs = List.fold_left multiply_by_factor [| Bigint.one |] roots in
  { modulus; coeffs }

let coefficients p = Array.to_list p.coeffs
let degree p = Array.length p.coeffs - 1

let eval p x =
  let x = Bigint.emod x p.modulus in
  Array.fold_right
    (fun c acc -> Bigint.emod (Bigint.add (Bigint.mul acc x) c) p.modulus)
    p.coeffs Bigint.zero

let encrypt prng pk p = List.map (Paillier.encrypt prng pk) (coefficients p)

let eval_encrypted pk encrypted_coeffs x =
  match List.rev encrypted_coeffs with
  | [] -> invalid_arg "Pm_poly.eval_encrypted: empty coefficient list"
  | highest :: rest ->
    let ctx = pk.Paillier.n2_ctx in
    if Bigint.Ctx.uses_montgomery ctx then begin
      (* Horner entirely in the Montgomery domain of n^2: one conversion
         in per coefficient and one conversion out at the end, instead
         of a domain round-trip per scalar_mul/add.  The counter bumps
         mirror the homomorphic operations the generic route performs,
         keeping Table 2 reproductions identical. *)
      let x = Bigint.emod x pk.Paillier.n in
      let acc =
        ref (Bigint.Ctx.to_mont ctx (Paillier.ciphertext_to_bigint highest))
      in
      List.iter
        (fun c ->
          Counters.bump Counters.Homomorphic_scalar;
          Counters.bump Counters.Homomorphic_add;
          let c_m = Bigint.Ctx.to_mont ctx (Paillier.ciphertext_to_bigint c) in
          acc := Bigint.Ctx.mont_mul ctx (Bigint.Ctx.mont_pow ctx !acc x) c_m)
        rest;
      Paillier.ciphertext_of_bigint pk (Bigint.Ctx.of_mont ctx !acc)
    end
    else
      List.fold_left
        (fun acc c -> Paillier.add pk (Paillier.scalar_mul pk x acc) c)
        highest rest

let eval_encrypted_naive prng pk encrypted_coeffs x =
  let zero = Paillier.encrypt prng pk Bigint.zero in
  let acc, _ =
    List.fold_left
      (fun (acc, x_pow) c ->
        let term = Paillier.scalar_mul pk x_pow c in
        (Paillier.add pk acc term, Bigint.emod (Bigint.mul x_pow x) pk.Paillier.n))
      (zero, Bigint.one) encrypted_coeffs
  in
  acc

let mask_and_add prng pk evaluated ~payload =
  Counters.bump Counters.Random_number;
  let r =
    Bigint.succ (Bigint.random_below (Prng.byte_source prng) (Bigint.pred pk.Paillier.n))
  in
  let payload_ct = Paillier.encrypt prng pk payload in
  let ctx = pk.Paillier.n2_ctx in
  if Bigint.Ctx.uses_montgomery ctx then begin
    (* E(eval)^r * E(payload) in one in-domain pass. *)
    Counters.bump Counters.Homomorphic_scalar;
    Counters.bump Counters.Homomorphic_add;
    let eval_m = Bigint.Ctx.to_mont ctx (Paillier.ciphertext_to_bigint evaluated) in
    let payload_m = Bigint.Ctx.to_mont ctx (Paillier.ciphertext_to_bigint payload_ct) in
    let masked = Bigint.Ctx.mont_mul ctx (Bigint.Ctx.mont_pow ctx eval_m r) payload_m in
    Paillier.ciphertext_of_bigint pk (Bigint.Ctx.of_mont ctx masked)
  end
  else Paillier.add pk (Paillier.scalar_mul pk r evaluated) payload_ct

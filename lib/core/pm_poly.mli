(** Polynomials over Z_n for the private-matching protocol (Freedman,
    Nissim, Pinkas; paper Section 5).

    A datasource builds P(x) = (a_1 - x)(a_2 - x)...(a_d - x) whose roots
    are its input values, and the opposite side evaluates the encryption of
    P at its own values using only the encrypted coefficients. *)

open Secmed_bigint
open Secmed_crypto

type t
(** Coefficients c_0..c_d, least-significant first, all reduced mod n. *)

val of_coefficients : modulus:Bigint.t -> Bigint.t list -> t
(** Raises [Invalid_argument] on an empty list. *)

val from_roots : modulus:Bigint.t -> Bigint.t list -> t
(** P(x) = Π (a_i - x) mod n; for no roots, the constant polynomial 1. *)

val coefficients : t -> Bigint.t list
val degree : t -> int

val eval : t -> Bigint.t -> Bigint.t
(** Horner evaluation mod n (plaintext reference). *)

val encrypt :
  ?label:string -> Prng.t -> Paillier.public_key -> t -> Paillier.ciphertext list
(** E(c_0)..E(c_d): what the source transmits.  Coefficient encryptions
    run through the {!Batch} executor on independent per-coefficient
    PRNG streams split from the parent seed under [label] (default
    ["pm-coeff"]) — bit-identical at any domain count; callers
    encrypting several polynomials must vary the parent PRNG or
    [label]. *)

val eval_encrypted :
  Paillier.public_key -> Paillier.ciphertext list -> Bigint.t -> Paillier.ciphertext
(** Homomorphic Horner: E(P(a)) from the encrypted coefficients and a
    plaintext point, using only ⊞ and ⊠.  Raises [Invalid_argument] on an
    empty coefficient list. *)

val eval_encrypted_naive :
  Prng.t -> Paillier.public_key -> Paillier.ciphertext list -> Bigint.t -> Paillier.ciphertext
(** Reference term-by-term evaluation Σ E(c_k)^(a^k) (the pre-Horner
    method; kept for the ablation benchmark). *)

val mask_and_add :
  Prng.t ->
  Paillier.public_key ->
  Paillier.ciphertext ->
  payload:Bigint.t ->
  Paillier.ciphertext
(** E(r·P(a) + payload) for a fresh uniform r — Equation (1) of the paper
    with the payload in place of a0l. *)

type scheme =
  | Das of Das_partition.strategy * Das.server_eval
  | Commutative of { use_ids : bool }
  | Private_matching of Pm_join.variant
  | Mobile_code
  | Plain

let default_das = Das (Das_partition.Equi_depth 4, Das.Pair_index)

let all_schemes =
  [ default_das; Commutative { use_ids = false }; Private_matching Pm_join.Session_keys;
    Mobile_code; Plain ]

let paper_schemes =
  [ default_das; Commutative { use_ids = false }; Private_matching Pm_join.Session_keys ]

let scheme_name = function
  | Das (strategy, eval) ->
    let eval_tag = match eval with Das.Pair_index -> "" | Das.Nested_loop -> "/nested-loop" in
    Printf.sprintf "das[%s%s]" (Das_partition.strategy_name strategy) eval_tag
  | Commutative { use_ids } -> if use_ids then "commutative[ids]" else "commutative"
  | Private_matching v -> "pm[" ^ Pm_join.variant_name v ^ "]"
  | Mobile_code -> "mobile-code"
  | Plain -> "plain"

let scheme_of_name = function
  | "das" -> Some default_das
  | "das-singleton" -> Some (Das (Das_partition.Singleton, Das.Pair_index))
  | "das-nested-loop" -> Some (Das (Das_partition.Equi_depth 4, Das.Nested_loop))
  | "commutative" -> Some (Commutative { use_ids = false })
  | "commutative-ids" -> Some (Commutative { use_ids = true })
  | "pm" -> Some (Private_matching Pm_join.Session_keys)
  | "pm-direct" -> Some (Private_matching Pm_join.Direct_payload)
  | "mobile-code" -> Some Mobile_code
  | "plain" -> Some Plain
  | _ -> None

open Secmed_mediation

type failure = {
  phase : string;
  party : Transcript.party;
  reason : string;
  attempts : int;
}

type run_result =
  | Ok of Outcome.t
  | Fault of failure

exception Faulted of failure

let dispatch ?fault scheme env client ~query =
  match scheme with
  | Das (strategy, server_eval) -> Das.run ?fault ~strategy ~server_eval env client ~query
  | Commutative { use_ids } -> Commutative_join.run ?fault ~use_ids env client ~query
  | Private_matching variant -> Pm_join.run ?fault ~variant env client ~query
  | Mobile_code -> Mobile_code.run ?fault env client ~query
  | Plain -> Plain_join.run ?fault env client ~query

(* The mediator's recovery policy: a transient channel fault is worth a
   bounded number of fresh requests (the rule counters on the plan are
   consumed across attempts, so a [times]-bounded fault clears); a
   byzantine source is not — a fresh request reaches the same liar. *)
let run ?fault scheme env client ~query =
  let module Obs = Secmed_obs in
  let budget = 1 + Fault.max_retries fault in
  let rec attempt n =
    Fault.start_attempt fault ~attempt:n;
    let traced_dispatch () =
      Obs.Trace.with_span ~kind:Obs.Trace.Protocol
        ~attrs:
          [
            ("scheme", Obs.Json.Str (scheme_name scheme));
            ("attempt", Obs.Json.Int n);
          ]
        (scheme_name scheme)
        (fun () -> dispatch ?fault scheme env client ~query)
    in
    match traced_dispatch () with
    | outcome -> Ok outcome
    | exception Fault.Fault_detected f ->
      if n < budget && Fault.retryable fault then begin
        Obs.Trace.event "retry"
          ~attrs:
            [
              ("phase", Obs.Json.Str f.Fault.phase);
              ("reason", Obs.Json.Str f.Fault.reason);
              ("attempt", Obs.Json.Int n);
            ];
        attempt (n + 1)
      end
      else Fault { phase = f.Fault.phase; party = f.Fault.party; reason = f.Fault.reason;
                   attempts = n }
    | exception Wire.Malformed msg ->
      (* Belt and braces: a malformed wire blob that escaped a driver's
         own handling still fails closed instead of crashing. *)
      if n < budget && Fault.retryable fault then attempt (n + 1)
      else
        Fault
          { phase = "wire-decode"; party = Transcript.Mediator; reason = msg; attempts = n }
  in
  attempt 1

let run_exn ?fault scheme env client ~query =
  match run ?fault scheme env client ~query with
  | Ok outcome -> outcome
  | Fault f -> raise (Faulted f)

let pp_failure fmt f =
  Format.fprintf fmt "fault at %s (%s) after %d attempt%s: %s" f.phase
    (Transcript.party_name f.party) f.attempts
    (if f.attempts = 1 then "" else "s")
    f.reason

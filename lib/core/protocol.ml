type scheme =
  | Das of Das_partition.strategy * Das.server_eval
  | Commutative of { use_ids : bool }
  | Private_matching of Pm_join.variant
  | Mobile_code
  | Plain

let default_das = Das (Das_partition.Equi_depth 4, Das.Pair_index)

let all_schemes =
  [ default_das; Commutative { use_ids = false }; Private_matching Pm_join.Session_keys;
    Mobile_code; Plain ]

let paper_schemes =
  [ default_das; Commutative { use_ids = false }; Private_matching Pm_join.Session_keys ]

let scheme_name = function
  | Das (strategy, eval) ->
    let eval_tag = match eval with Das.Pair_index -> "" | Das.Nested_loop -> "/nested-loop" in
    Printf.sprintf "das[%s%s]" (Das_partition.strategy_name strategy) eval_tag
  | Commutative { use_ids } -> if use_ids then "commutative[ids]" else "commutative"
  | Private_matching v -> "pm[" ^ Pm_join.variant_name v ^ "]"
  | Mobile_code -> "mobile-code"
  | Plain -> "plain"

(* Every configuration reachable by a CLI alias; also the search space
   for parsing canonical [scheme_name] spellings back. *)
let named_schemes =
  all_schemes
  @ [
      Das (Das_partition.Singleton, Das.Pair_index);
      Das (Das_partition.Equi_depth 4, Das.Nested_loop);
      Commutative { use_ids = true };
      Private_matching Pm_join.Direct_payload;
    ]

let scheme_of_name = function
  | "das" -> Some default_das
  | "das-singleton" -> Some (Das (Das_partition.Singleton, Das.Pair_index))
  | "das-nested-loop" -> Some (Das (Das_partition.Equi_depth 4, Das.Nested_loop))
  | "commutative" -> Some (Commutative { use_ids = false })
  | "commutative-ids" -> Some (Commutative { use_ids = true })
  | "pm" -> Some (Private_matching Pm_join.Session_keys)
  | "pm-direct" -> Some (Private_matching Pm_join.Direct_payload)
  | "mobile-code" -> Some Mobile_code
  | "plain" -> Some Plain
  | other -> List.find_opt (fun s -> String.equal (scheme_name s) other) named_schemes

open Secmed_mediation

type failure = {
  phase : string;
  party : Transcript.party;
  reason : string;
  attempts : int;
}

type run_result =
  | Ok of Outcome.t
  | Fault of failure

exception Faulted of failure

let dispatch ?fault ?endpoint scheme env client ~query =
  match scheme with
  | Das (strategy, server_eval) ->
    Das.run ?fault ?endpoint ~strategy ~server_eval env client ~query
  | Commutative { use_ids } -> Commutative_join.run ?fault ?endpoint ~use_ids env client ~query
  | Private_matching variant -> Pm_join.run ?fault ?endpoint ~variant env client ~query
  | Mobile_code -> Mobile_code.run ?fault ?endpoint env client ~query
  | Plain -> Plain_join.run ?fault ?endpoint env client ~query

(* Distributed coordination hooks (Secmed_net): the mediator announces
   each attempt to the replicas and collects their end-of-attempt
   reports, possibly overriding a locally-Ok result when a peer
   faulted.  In-process runs have no coordinator. *)
type coordinator = {
  begin_attempt : scheme:string -> attempt:int -> unit;
  end_attempt :
    scheme:string ->
    attempt:int ->
    (Outcome.t, Fault.failure) result ->
    (Outcome.t, Fault.failure) result;
}

module R = Resilience

(* One end-to-end attempt of one scheme, as the resilience engine sees
   it: a typed result, never an exception.  [Wire.Malformed] escaping a
   driver's own handling is belt and braces — it fails closed here and
   goes down the same (traced) retry path as a detected fault. *)
let one_attempt ?fault ?endpoint ?coordinator scheme env client ~query n =
  let module Obs = Secmed_obs in
  Fault.start_attempt fault ~attempt:n;
  (match coordinator with
   | None -> ()
   | Some c -> c.begin_attempt ~scheme:(scheme_name scheme) ~attempt:n);
  let traced_dispatch () =
    Obs.Trace.with_span ~kind:Obs.Trace.Protocol
      ~attrs:
        [
          ("scheme", Obs.Json.Str (scheme_name scheme));
          ("attempt", Obs.Json.Int n);
        ]
      (scheme_name scheme)
      (fun () -> dispatch ?fault ?endpoint scheme env client ~query)
  in
  let local =
    match traced_dispatch () with
    | outcome -> Stdlib.Ok outcome
    | exception Fault.Fault_detected f -> Stdlib.Error f
    | exception Wire.Malformed msg ->
      Stdlib.Error { Fault.phase = "wire-decode"; party = Transcript.Mediator; reason = msg }
  in
  match coordinator with
  | None -> local
  | Some c -> c.end_attempt ~scheme:(scheme_name scheme) ~attempt:n local

let attempt ?fault ?endpoint scheme env client ~query ~attempt =
  one_attempt ?fault ?endpoint scheme env client ~query attempt

let failure_of_verdict : Outcome.t R.verdict -> failure = function
  | R.Served _ -> invalid_arg "failure_of_verdict: served"
  | R.Exhausted { failure = f; attempts } ->
    { phase = f.Fault.phase; party = f.Fault.party; reason = f.Fault.reason; attempts }
  | R.Timed_out { phase; elapsed; budget; attempts } ->
    {
      phase = "deadline";
      party = Transcript.Mediator;
      reason =
        Printf.sprintf "deadline exceeded in %s after %.3fs (budget %.3fs)" phase elapsed
          budget;
      attempts;
    }
  | R.Short_circuited { party; attempts } ->
    {
      phase = "breaker";
      party;
      reason =
        Printf.sprintf "circuit open for %s: request short-circuited"
          (Transcript.party_name party);
      attempts;
    }

let execute_scheme ?fault ?endpoint ?coordinator ?session ~deadline scheme env client ~query =
  R.execute ?session ~deadline ~label:(scheme_name scheme)
    ~retryable:(Fault.retryable fault)
    ~budget:(1 + Fault.max_retries fault)
    ~parties_of:(fun outcome -> Transcript.parties outcome.Outcome.transcript)
    (one_attempt ?fault ?endpoint ?coordinator scheme env client ~query)

(* The mediator's recovery policy: a transient channel fault is worth a
   bounded number of fresh requests (the rule counters on the plan are
   consumed across attempts, so a [times]-bounded fault clears); a
   byzantine source is not — a fresh request reaches the same liar. *)
let run ?fault ?endpoint scheme env client ~query =
  let deadline = R.unlimited R.monotonic in
  match execute_scheme ?fault ?endpoint ~deadline scheme env client ~query with
  | R.Served { value; _ } -> Ok value
  | verdict -> Fault (failure_of_verdict verdict)

let run_exn ?fault ?endpoint scheme env client ~query =
  match run ?fault ?endpoint scheme env client ~query with
  | Ok outcome -> outcome
  | Fault f -> raise (Faulted f)

(* ------------------------------------------------------------------ *)
(* Resilient sessions: deadline, backoff, breakers, degradation. *)

type session_result =
  | Served of Outcome.t
  | Unserved of (string * failure) list

let degradation_chain = function
  | Private_matching _ -> [ Commutative { use_ids = false }; default_das ]
  | Commutative _ -> [ default_das ]
  | Das _ | Mobile_code | Plain -> []

let degradations = Secmed_obs.Metrics.counter "resilience.degradations"

let run_session ?fault ?endpoint ?coordinator ?on_deadline ?session ?chain scheme env client
    ~query =
  let module Obs = Secmed_obs in
  let session = match session with Some s -> s | None -> R.session () in
  let deadline = R.new_deadline session in
  (match on_deadline with None -> () | Some f -> f deadline);
  let chain = match chain with Some c -> c | None -> degradation_chain scheme in
  (* Simulated link delays consume the query budget.  The handler is
     per-plan state: [with_delay_handler] scopes it to this query and
     restores the previous handler however the chain ends, so a crashed
     run cannot charge later queries' delays to a dead deadline. *)
  let with_handler body =
    match fault with
    | None -> body ()
    | Some plan ->
      Fault.with_delay_handler plan
        (Some (fun seconds -> R.charge deadline ~phase:"link-delay" seconds))
        body
  in
  let serve_degraded outcome last_failure =
    let from_scheme = scheme_name scheme in
    Obs.Metrics.incr degradations;
    Obs.Trace.event "degraded"
      ~attrs:
        [
          ("from", Obs.Json.Str from_scheme);
          ("to", Obs.Json.Str outcome.Outcome.scheme);
          ("reason", Obs.Json.Str last_failure.reason);
        ];
    Outcome.mark_degraded outcome ~from_scheme ~reason:last_failure.reason
  in
  let rec serve rev_tried = function
    | [] -> Unserved (List.rev rev_tried)
    | candidate :: rest -> (
      match
        execute_scheme ?fault ?endpoint ?coordinator ~session ~deadline candidate env client
          ~query
      with
      | R.Served { value = outcome; _ } -> (
        match rev_tried with
        | [] -> Served outcome
        | (_, last_failure) :: _ -> Served (serve_degraded outcome last_failure))
      | verdict ->
        let f = failure_of_verdict verdict in
        let rev_tried = (scheme_name candidate, f) :: rev_tried in
        (* A spent deadline also covers every scheme further down. *)
        if R.expired deadline then Unserved (List.rev rev_tried) else serve rev_tried rest)
  in
  with_handler (fun () -> serve [] (scheme :: chain))

let pp_failure fmt f =
  Format.fprintf fmt "fault at %s (%s) after %d attempt%s: %s" f.phase
    (Transcript.party_name f.party) f.attempts
    (if f.attempts = 1 then "" else "s")
    f.reason

let pp_session_failures fmt tried =
  List.iter
    (fun (scheme, f) -> Format.fprintf fmt "%s: %a@." scheme pp_failure f)
    tried

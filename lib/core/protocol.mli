(** Uniform entry point over the three delivery protocols and the two
    baselines. *)

type scheme =
  | Das of Das_partition.strategy * Das.server_eval
  | Commutative of { use_ids : bool }
  | Private_matching of Pm_join.variant
  | Mobile_code
  | Plain

val default_das : scheme
(** [Das (Equi_depth 4, Pair_index)] — the configuration used throughout
    the paper's figures. *)

val all_schemes : scheme list
(** One representative configuration of each protocol/baseline. *)

val paper_schemes : scheme list
(** The paper's three protocols (DAS, commutative, PM) in default
    configurations. *)

val scheme_name : scheme -> string
val scheme_of_name : string -> scheme option
(** Accepts the names produced by {!scheme_name} plus the variants
    ["pm-direct"], ["commutative-ids"], ["das-singleton"],
    ["das-nested-loop"]. *)

(** Typed outcome of a protocol execution under a fault model: which
    phase, at which party, detected the fault, and after how many
    end-to-end attempts the mediator gave up. *)
type failure = {
  phase : string;
  party : Secmed_mediation.Transcript.party;
  reason : string;
  attempts : int;
}

type run_result =
  | Ok of Outcome.t
  | Fault of failure

exception Faulted of failure

val run :
  ?fault:Secmed_mediation.Fault.plan ->
  scheme -> Env.t -> Env.client -> query:string -> run_result
(** Runs the protocol end to end.  Detected faults surface as [Fault]
    rather than exceptions.  Transient channel faults trigger a bounded
    retry with a fresh request (the plan's [max_retries]; rule counters
    persist across attempts, so a [times]-bounded fault is consumed and
    the retry succeeds); byzantine plans are not retried — a fresh
    request reaches the same misbehaving source.  Without a plan this
    never returns [Fault] on honest inputs. *)

val run_exn :
  ?fault:Secmed_mediation.Fault.plan ->
  scheme -> Env.t -> Env.client -> query:string -> Outcome.t
(** Like {!run} but raises {!Faulted} — for call sites that treat a
    fault as fatal (benches, examples, the legacy CLI paths). *)

val pp_failure : Format.formatter -> failure -> unit

(** Uniform entry point over the three delivery protocols and the two
    baselines. *)

type scheme =
  | Das of Das_partition.strategy * Das.server_eval
  | Commutative of { use_ids : bool }
  | Private_matching of Pm_join.variant
  | Mobile_code
  | Plain

val default_das : scheme
(** [Das (Equi_depth 4, Pair_index)] — the configuration used throughout
    the paper's figures. *)

val all_schemes : scheme list
(** One representative configuration of each protocol/baseline. *)

val paper_schemes : scheme list
(** The paper's three protocols (DAS, commutative, PM) in default
    configurations. *)

val scheme_name : scheme -> string
val scheme_of_name : string -> scheme option
(** Accepts the short CLI aliases (["das"], ["das-singleton"],
    ["das-nested-loop"], ["commutative"], ["commutative-ids"], ["pm"],
    ["pm-direct"], ["mobile-code"], ["plain"]) and the canonical
    {!scheme_name} spelling of each of those configurations, so
    [scheme_of_name (scheme_name s) = Some s] for every nameable scheme.
    Anything else is [None]. *)

(** Typed outcome of a protocol execution under a fault model: which
    phase, at which party, detected the fault, and after how many
    end-to-end attempts the mediator gave up. *)
type failure = {
  phase : string;
  party : Secmed_mediation.Transcript.party;
  reason : string;
  attempts : int;
}

type run_result =
  | Ok of Outcome.t
  | Fault of failure

exception Faulted of failure

(** {2 Distributed coordination}

    In a distributed run ([Secmed_net]) every process executes the same
    deterministic replica of the protocol; the mediator process drives
    the retry/degradation policy and keeps the replicas in lockstep
    through a [coordinator]: [begin_attempt] announces the (scheme,
    attempt) pair before the replica executes, [end_attempt] exchanges
    end-of-attempt reports and may override a locally-successful result
    when a peer faulted (the typed failure travels back).  In-process
    runs pass no coordinator and the hooks cost nothing. *)
type coordinator = {
  begin_attempt : scheme:string -> attempt:int -> unit;
  end_attempt :
    scheme:string ->
    attempt:int ->
    (Outcome.t, Secmed_mediation.Fault.failure) result ->
    (Outcome.t, Secmed_mediation.Fault.failure) result;
}

val attempt :
  ?fault:Secmed_mediation.Fault.plan ->
  ?endpoint:Secmed_mediation.Link.endpoint ->
  scheme ->
  Env.t ->
  Env.client ->
  query:string ->
  attempt:int ->
  (Outcome.t, Secmed_mediation.Fault.failure) result
(** One end-to-end attempt, exactly as the resilience engine runs it:
    [Fault.start_attempt] bookkeeping, a protocol-rooted trace span, and
    typed failures instead of exceptions ([Wire.Malformed] fails
    closed).  This is what a non-mediator replica executes when the
    mediator's coordinator announces an attempt. *)

val run :
  ?fault:Secmed_mediation.Fault.plan ->
  ?endpoint:Secmed_mediation.Link.endpoint ->
  scheme -> Env.t -> Env.client -> query:string -> run_result
(** Runs the protocol end to end.  Detected faults surface as [Fault]
    rather than exceptions.  Transient channel faults trigger a bounded
    retry with a fresh request (the plan's [max_retries]; rule counters
    persist across attempts, so a [times]-bounded fault is consumed and
    the retry succeeds); byzantine plans are not retried — a fresh
    request reaches the same misbehaving source.  Without a plan this
    never returns [Fault] on honest inputs. *)

val run_exn :
  ?fault:Secmed_mediation.Fault.plan ->
  ?endpoint:Secmed_mediation.Link.endpoint ->
  scheme -> Env.t -> Env.client -> query:string -> Outcome.t
(** Like {!run} but raises {!Faulted} — for call sites that treat a
    fault as fatal (benches, examples, the legacy CLI paths). *)

(** {2 Resilient sessions}

    {!run_session} wraps the retry loop of {!run} in the
    {!Secmed_mediation.Resilience} layer: a per-query deadline, seeded
    exponential backoff between attempts, per-party circuit breakers
    that persist across queries of the same session, and a graceful
    degradation chain — when a scheme exhausts its retry/deadline
    budget, the next scheme in the chain is tried and a served outcome
    is annotated with [degraded_from] (DESIGN.md §10). *)

type session_result =
  | Served of Outcome.t
      (** the query was answered; [Outcome.degraded_from] tells whether a
          fallback scheme served it *)
  | Unserved of (string * failure) list
      (** every chain entry failed: scheme name and terminal failure, in
          the order tried *)

val degradation_chain : scheme -> scheme list
(** The default fallback order: [pm → commutative → das → fail]; DAS and
    the baselines have no cheaper fallback.  Every step preserves result
    exactness — degradation trades disclosure and cost, not correctness
    (see the table in DESIGN.md §10). *)

val run_session :
  ?fault:Secmed_mediation.Fault.plan ->
  ?endpoint:Secmed_mediation.Link.endpoint ->
  ?coordinator:coordinator ->
  ?on_deadline:(Secmed_mediation.Resilience.deadline -> unit) ->
  ?session:Secmed_mediation.Resilience.session ->
  ?chain:scheme list ->
  scheme -> Env.t -> Env.client -> query:string -> session_result
(** Serve one query under the session's resilience policy.  [chain]
    defaults to {!degradation_chain}; pass [[]] to disable fallback.
    Reusing the same [session] across calls carries breaker state over,
    so a datasource that keeps failing is eventually short-circuited
    ([phase = "breaker"]) without being contacted.  A spent deadline
    ([phase = "deadline"]) aborts the remaining chain.  While the call
    runs, the fault plan's delay handler is scoped to the query deadline
    via [Fault.with_delay_handler] (the previous handler is restored on
    every exit path), so injected [Delay] faults consume budget without
    leaking into later queries.  [on_deadline] hands the freshly-created
    deadline to the caller — the network layer points its per-socket-I/O
    deadline checks at it, so {e real} blocking time trips the budget
    mid-attempt exactly like a simulated delay. *)

val pp_failure : Format.formatter -> failure -> unit
val pp_session_failures : Format.formatter -> (string * failure) list -> unit

open Secmed_relalg
open Secmed_sql
open Secmed_mediation

exception Access_denied of int
exception Bad_credential of int

type t = {
  decomposition : Catalog.decomposition;
  client_pk : Secmed_crypto.Elgamal.public_key;
  left_result : Relation.t;
  right_result : Relation.t;
  credentials_left : Credential.t list;
  credentials_right : Credential.t list;
}

let credential_size credentials =
  List.fold_left (fun acc c -> acc + Credential.size c) 0 credentials

(* The mediator forwards the credential subset relevant to a source: those
   carrying at least one property key the source advertises (all of them
   when the source advertises nothing). *)
let select_credentials (source : Env.source) credentials =
  match source.Env.advertised with
  | [] -> credentials
  | keys ->
    List.filter
      (fun c ->
        List.exists
          (fun p -> List.exists (String.equal p.Credential.key) keys)
          (Credential.properties c))
      credentials

let authorize env transcript source_id entry credentials =
  let source = Env.source_by_id env source_id in
  (* Step 4: S_i checks the credentials. *)
  List.iter
    (fun c ->
      if not (Credential.Authority.verify env.Env.ca c) then
        raise (Bad_credential source_id))
    credentials;
  if credentials = [] then raise (Access_denied source_id);
  let relation =
    match List.assoc_opt entry.Catalog.source_relation source.Env.relations with
    | Some r -> r
    | None -> raise (Access_denied source_id)
  in
  let properties = List.concat_map Credential.properties credentials in
  match Policy.apply source.Env.policy properties relation with
  | None -> raise (Access_denied source_id)
  | Some granted ->
    ignore transcript;
    Relation.rename entry.Catalog.relation granted

let run link env (client : Env.client) ~query =
  let transcript = Link.transcript link in
  (* Step 1: client -> mediator: the query and the credential set CR.
     The declared size includes the credential bytes; the wire frame is
     zero-padded up to it (the prototype never materialises credential
     encodings). *)
  Link.deliver link ~phase:"request" ~sender:Client ~receiver:Mediator ~label:"global-query"
    ~size:(String.length query + credential_size client.Env.credentials)
    (fun () -> query);
  (* Step 2: the mediator decomposes q and localizes the sources. *)
  let ast = Parser.parse query in
  let decomposition = Catalog.decompose env.Env.catalog ast in
  let left_entry = decomposition.Catalog.left
  and right_entry = decomposition.Catalog.right in
  let send_partial entry partial_query =
    let source = Env.source_by_id env entry.Catalog.source in
    let credentials = select_credentials source client.Env.credentials in
    let attrs_bytes =
      List.fold_left
        (fun acc a -> acc + String.length a)
        0 decomposition.Catalog.join_attrs
    in
    Link.deliver link ~phase:"request" ~sender:Mediator
      ~receiver:(Source entry.Catalog.source) ~label:"partial-query"
      ~size:(String.length partial_query + credential_size credentials + attrs_bytes)
      (fun () -> partial_query);
    credentials
  in
  (* Step 3: mediator -> S_i : <q_i, CR_i, A_i>. *)
  let credentials_left = send_partial left_entry decomposition.Catalog.partial_query_left in
  let credentials_right =
    send_partial right_entry decomposition.Catalog.partial_query_right
  in
  (* Step 4 at each source. *)
  let left_result = authorize env transcript left_entry.Catalog.source left_entry credentials_left in
  let right_result =
    authorize env transcript right_entry.Catalog.source right_entry credentials_right
  in
  let client_pk =
    match credentials_left with
    | c :: _ -> Credential.public_key c
    | [] -> raise (Access_denied left_entry.Catalog.source)
  in
  {
    decomposition;
    client_pk;
    left_result;
    right_result;
    credentials_left;
    credentials_right;
  }

let finalize t joined =
  let with_where =
    match t.decomposition.Catalog.residual_where with
    | None -> joined
    | Some predicate -> Relation.select predicate joined
  in
  let with_aggregation =
    match t.decomposition.Catalog.aggregation with
    | None -> with_where
    | Some (specs, keys) -> Aggregate.group_by with_where ~keys ~specs
  in
  let with_projection =
    match t.decomposition.Catalog.projection with
    | None -> with_aggregation
    | Some columns -> Relation.project columns with_aggregation
  in
  if t.decomposition.Catalog.distinct then Relation.distinct with_projection
  else with_projection

let exact_result _env t =
  (* The reference join is harness work, not protocol work: it gets its
     own operation span so traced runs can separate it from the scheme. *)
  Secmed_obs.Trace.with_span "ground-truth" (fun () ->
      finalize t (Relation.natural_join t.left_result t.right_result))

let side t = function
  | `Left -> t.left_result
  | `Right -> t.right_result

let join_attrs t = t.decomposition.Catalog.join_attrs

let join_attr_values t which =
  Join_key.distinct_keys (side t which) (join_attrs t)

let groups t which = Join_key.group_by (side t which) (join_attrs t)

let tup t which a =
  let relation = side t which in
  let positions = Join_key.positions (Relation.schema relation) (join_attrs t) in
  List.filter
    (fun tuple -> Join_key.equal (Join_key.of_tuple positions tuple) a)
    (Relation.tuples relation)

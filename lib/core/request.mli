(** The basic MMM request phase (paper Listing 1), common to all delivery
    protocols:

    1. the client sends the global query q and credential set CR to the
       mediator;
    2. the mediator localizes S1/S2, decomposes q into partial queries and
       selects credential subsets CR1/CR2;
    3. the mediator sends ⟨q_i, CR_i, A_i⟩ to S_i;
    4. S_i checks the credentials and, if authorized, evaluates q_i
       (applying any row-level policy filter) yielding R_i.

    The partial results R_i conceptually remain at the sources; the record
    returned here hands them to the delivery-phase implementations as the
    sources' inputs. *)

open Secmed_crypto
open Secmed_relalg
open Secmed_mediation

exception Access_denied of int
(** Source id that refused the partial query. *)

exception Bad_credential of int
(** Source id that rejected a credential signature. *)

type t = {
  decomposition : Catalog.decomposition;
  client_pk : Elgamal.public_key;  (** taken from the forwarded credentials *)
  left_result : Relation.t;        (** R_1, qualified with its relation name *)
  right_result : Relation.t;       (** R_2 *)
  credentials_left : Credential.t list;   (** CR_1 *)
  credentials_right : Credential.t list;  (** CR_2 *)
}

val run : Link.t -> Env.t -> Env.client -> query:string -> t
(** Parses and decomposes [query], performs steps 1–4 delivering every
    message over the link (transcript + fault plan + optional transport),
    and returns the sources' granted partial results.  Raises
    {!Access_denied}, {!Bad_credential}, [Parser.Error], [Lexer.Error],
    [Catalog.Unsupported], or {!Fault.Fault_detected} when an installed
    fault plan hits the request-phase messages. *)

val exact_result : Env.t -> t -> Relation.t
(** The reference global result: natural join of the partial results with
    the residual WHERE / projection / DISTINCT applied — what an honest
    trusted mediator would return.  Protocol outputs are tested against
    this. *)

val finalize : t -> Relation.t -> Relation.t
(** Applies the residual WHERE, projection and DISTINCT of the query to a
    joined relation (the client's last local step). *)

val join_attrs : t -> string list
(** Bare names of the join attributes (singleton in the paper's setting,
    longer for the Section 8 composite-key extension). *)

val join_attr_values : t -> [ `Left | `Right ] -> Join_key.t list
(** dom_active(R_i.A_join) — sorted distinct join keys of a partial
    result. *)

val tup : t -> [ `Left | `Right ] -> Join_key.t -> Tuple.t list
(** The paper's Tup_i(a): tuples of R_i whose join key equals a. *)

val groups : t -> [ `Left | `Right ] -> (Join_key.t * Tuple.t list) list
(** All (a, Tup_i(a)) pairs at once, in key order. *)

val credential_size : Credential.t list -> int
(** Combined wire size, for transcript accounting. *)

open Secmed_bigint
open Secmed_crypto
open Secmed_relalg
open Secmed_mediation

type op =
  | Intersection
  | Semi_join
  | Difference

let op_name = function
  | Intersection -> "intersection"
  | Semi_join -> "semi-join"
  | Difference -> "difference"

let encode_tuple_set tuples =
  let w = Wire.writer () in
  Wire.write_list w (fun t -> Wire.write_string w (Tuple.encode t)) tuples;
  Wire.contents w

let decode_tuple_set blob =
  let r = Wire.reader blob in
  let tuples = Wire.read_list r (fun () -> Tuple.decode (Wire.read_string r)) in
  Wire.expect_end r;
  tuples

let bare_names relation =
  List.map (fun a -> a.Schema.name) (Schema.attrs (Relation.schema relation))

(* Reference (trusted-mediator) results. *)
let exact_result op ~on left right =
  match op with
  | Intersection -> Relation.intersect (Relation.distinct left) (Relation.distinct right)
  | Difference -> Relation.diff (Relation.distinct left) (Relation.distinct right)
  | Semi_join ->
    let right_keys = Join_key.distinct_keys right on in
    let positions = Join_key.positions (Relation.schema left) on in
    Relation.make (Relation.schema left)
      (List.filter
         (fun tuple ->
           let key = Join_key.of_tuple positions tuple in
           List.exists (Join_key.equal key) right_keys)
         (Relation.tuples left))

let run ?on env client op ~left ~right =
  let b = Outcome.Builder.create ~scheme:(op_name op) in
  let tr = Outcome.Builder.transcript b in
  let group = env.Env.group in
  let group_bytes = (group.Group.bits + 7) / 8 in
  let (result, exact, received), counters =
    Counters.with_fresh (fun () ->
        (* Request phase as usual; the two partial queries are the same
           "select *" queries as for a join. *)
        let query = Printf.sprintf "select * from %s natural join %s" left right in
        let request =
          Outcome.Builder.timed b "request" (fun () -> Request.run (Link.make tr) env client ~query)
        in
        let left_rel = request.Request.left_result in
        let right_rel = request.Request.right_result in
        let key_attrs =
          match op with
          | Semi_join -> Option.value ~default:(Request.join_attrs request) on
          | Intersection | Difference ->
            if not (Schema.equal_layout (Relation.schema left_rel) (Relation.schema right_rel))
            then
              invalid_arg
                (Printf.sprintf "Set_ops.%s: relations %s and %s have different layouts"
                   (op_name op) left right);
            bare_names left_rel
        in
        let exact = Request.finalize request (exact_result op ~on:key_attrs left_rel right_rel) in
        let pk = request.Request.client_pk in
        let s1 = request.Request.decomposition.Catalog.left.Catalog.source in
        let s2 = request.Request.decomposition.Catalog.right.Catalog.source in
        let prng1 = Env.prng_for env (Printf.sprintf "setop-source-%d" s1) in
        let prng2 = Env.prng_for env (Printf.sprintf "setop-source-%d" s2) in

        (* S1: commutative key + hashed keys + encrypted payloads. *)
        let key1 = Commutative.keygen prng1 group in
        let payload_of tuples =
          match op with
          | Semi_join -> tuples
          | Intersection | Difference ->
            (* Whole-tuple keys: every member of the group is the same
               tuple; ship one representative (set semantics). *)
            (match tuples with [] -> [] | t :: _ -> [ t ])
        in
        let m1 =
          Outcome.Builder.timed b "source-encrypt" (fun () ->
              let entries =
                List.map
                  (fun (key, tuples) ->
                    let hashed = Random_oracle.hash group (Join_key.encode key) in
                    ( Commutative.apply key1 hashed,
                      Hybrid.encrypt prng1 pk (encode_tuple_set (payload_of tuples)) ))
                  (Join_key.group_by left_rel key_attrs)
              in
              let shuffled = Array.of_list entries in
              Prng.shuffle prng1 shuffled;
              Array.to_list shuffled)
        in
        Transcript.record tr ~sender:(Source s1) ~receiver:Mediator ~label:"M_1(keys+payloads)"
          ~size:
            (List.fold_left (fun acc (_, ct) -> acc + group_bytes + Hybrid.size ct) 0 m1);

        (* S2: bare hashed keys only — no tuple data leaves S2. *)
        let key2 = Commutative.keygen prng2 group in
        let m2 =
          Outcome.Builder.timed b "source-encrypt" (fun () ->
              let hashes =
                List.map
                  (fun key ->
                    Commutative.apply key2 (Random_oracle.hash group (Join_key.encode key)))
                  (Join_key.distinct_keys right_rel key_attrs)
              in
              let shuffled = Array.of_list hashes in
              Prng.shuffle prng2 shuffled;
              Array.to_list shuffled)
        in
        Transcript.record tr ~sender:(Source s2) ~receiver:Mediator ~label:"M_2(keys)"
          ~size:(group_bytes * List.length m2);
        Outcome.Builder.mediator_sees b "cardinality-keys-left" (List.length m1);
        Outcome.Builder.mediator_sees b "cardinality-keys-right" (List.length m2);

        (* Exchange: the mediator retains the payloads and forwards only
           the hashes (with positional IDs for the left set). *)
        Transcript.record tr ~sender:Mediator ~receiver:(Source s2) ~label:"hashes-1"
          ~size:((group_bytes + 8) * List.length m1);
        Transcript.record tr ~sender:Mediator ~receiver:(Source s1) ~label:"hashes-2"
          ~size:(group_bytes * List.length m2);

        (* Double encryption on both sides. *)
        let from_s1 =
          Outcome.Builder.timed b "source-reencrypt" (fun () ->
              List.map (fun h -> Commutative.apply key1 h) m2)
        in
        Transcript.record tr ~sender:(Source s1) ~receiver:Mediator ~label:"doubly-encrypted-2"
          ~size:(group_bytes * List.length from_s1);
        let from_s2 =
          Outcome.Builder.timed b "source-reencrypt" (fun () ->
              List.mapi (fun id (h, _) -> (id, Commutative.apply key2 h)) m1)
        in
        Transcript.record tr ~sender:(Source s2) ~receiver:Mediator ~label:"doubly-encrypted-1"
          ~size:((group_bytes + 8) * List.length from_s2);

        (* Matching at the mediator. *)
        let selected =
          Outcome.Builder.timed b "mediator-match" (fun () ->
              let right_set = Hashtbl.create 64 in
              List.iter (fun h -> Hashtbl.replace right_set (Bigint.to_string h) ()) from_s1;
              let payloads = Array.of_list (List.map snd m1) in
              List.filter_map
                (fun (id, h) ->
                  let matched = Hashtbl.mem right_set (Bigint.to_string h) in
                  let wanted =
                    match op with
                    | Intersection | Semi_join -> matched
                    | Difference -> not matched
                  in
                  if wanted then Some payloads.(id) else None)
                from_s2)
        in
        Outcome.Builder.mediator_sees b "payloads-forwarded" (List.length selected);
        Transcript.record tr ~sender:Mediator ~receiver:Client ~label:"selected-payloads"
          ~size:(List.fold_left (fun acc ct -> acc + Hybrid.size ct) 0 selected);

        (* Client: decrypt and assemble. *)
        let received = ref 0 in
        let result =
          Outcome.Builder.timed b "client-postprocess" (fun () ->
              let tuples =
                List.concat_map
                  (fun ct ->
                    match Hybrid.decrypt client.Env.key ct with
                    | Some blob ->
                      let tuples = decode_tuple_set blob in
                      received := !received + List.length tuples;
                      tuples
                    | None -> failwith "Set_ops: authentication failure on payload")
                  selected
              in
              let relation = Relation.make (Relation.schema left_rel) tuples in
              let relation =
                match op with
                | Intersection | Difference -> Relation.distinct relation
                | Semi_join -> relation
              in
              Request.finalize request relation)
        in
        (result, exact, !received))
  in
  Outcome.Builder.finish b ~result ~exact ~client_received_tuples:received ~counters

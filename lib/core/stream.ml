(* Chunked row streams (DESIGN.md §16).

   A row-wise protocol message — per-tuple hybrid ciphertexts, PM
   e-values, commutative message sets — is delivered as a sequence of
   bounded [Msg_chunk] frames instead of one whole-relation payload.
   Each chunk carries a batch of (row index, bytes) entries; the indexes
   make the stream self-describing under sharding: shard j of k owns
   exactly the rows with [index mod k = j], and the receiver merges the
   per-shard streams back into index order, so a sharded run is
   byte-identical to the single-source run by construction.

   This module is pure planning and codec; the transport semantics
   (credits, epoch filtering, verification) live in Secmed_net. *)

open Secmed_mediation

type entry = { s_row : int; s_bytes : string }

(* Target payload bytes per chunk.  Small enough that reassembly
   buffers, mux queues, and the merge window all stay well under a
   megabyte per connection; large enough that framing overhead is noise
   against ciphertext rows. *)
let default_chunk_bytes = 65536

(* Hostile cap on a frame's declared chunk count: a corrupted header
   must not convince a receiver to wait on (or account for) a
   pathological number of chunks. *)
let max_chunks = 1 lsl 20

(* ------------------------------------------------------------------ *)
(* Codec: a chunk payload is a counted list of (row, bytes) entries.   *)

let encode_entries entries =
  let w = Wire.writer () in
  Wire.write_list w
    (fun e ->
      Wire.write_int w e.s_row;
      Wire.write_string w e.s_bytes)
    entries;
  Wire.contents w

let decode_entries payload =
  let r = Wire.reader payload in
  let entries =
    Wire.read_list r (fun () ->
        let s_row = Wire.read_int r in
        let s_bytes = Wire.read_string r in
        { s_row; s_bytes })
  in
  Wire.expect_end r;
  entries

(* ------------------------------------------------------------------ *)
(* Planning. *)

let total_bytes rows = List.fold_left (fun acc (_, b) -> acc + String.length b) 0 rows

let entry_overhead = 12 (* 8-byte row index + 4-byte length prefix *)

(* The row bytes carried by an encoded chunk payload, peeked from the
   count prefix without decoding (payload = be32 count ++ count x
   (8-byte row index + 4-byte length + bytes)) — for byte accounting on
   routes that must not pay a full decode. *)
let payload_row_bytes payload =
  let n = String.length payload in
  if n < 4 then 0
  else
    let count =
      (Char.code payload.[0] lsl 24)
      lor (Char.code payload.[1] lsl 16)
      lor (Char.code payload.[2] lsl 8)
      lor Char.code payload.[3]
    in
    max 0 (n - 4 - (entry_overhead * count))

(* Split [rows] into chunk batches whose encoded payload stays near
   [chunk_bytes].  A single row larger than the budget still travels
   (as a chunk of one): the cap bounds buffering, not expressiveness. *)
let plan ?(chunk_bytes = default_chunk_bytes) rows =
  if chunk_bytes <= 0 then invalid_arg "Stream.plan: chunk_bytes must be positive";
  let flush acc batch = match batch with [] -> acc | b -> List.rev b :: acc in
  let rec go acc batch used = function
    | [] -> List.rev (flush acc batch)
    | (row, bytes) :: rest ->
      let cost = entry_overhead + String.length bytes in
      if batch <> [] && used + cost > chunk_bytes then
        go (flush acc batch) [ { s_row = row; s_bytes = bytes } ] cost rest
      else go acc ({ s_row = row; s_bytes = bytes } :: batch) (used + cost) rest
  in
  go [] [] 0 rows

(* ------------------------------------------------------------------ *)
(* Shard partitioning.  Round-robin by row index: cheap, exactly
   balanced, and — because every replica numbers rows identically — the
   same partition at every party without coordination. *)

let shard_of_row ~k row =
  if k <= 0 then invalid_arg "Stream.shard_of_row: k must be positive";
  row mod k

let partition ~k ~shard rows =
  if shard < 0 || shard >= k then invalid_arg "Stream.partition: shard out of range";
  List.filter (fun (row, _) -> shard_of_row ~k row = shard) rows

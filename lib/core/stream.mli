(** Chunked row streams: planning and codec for [Msg_chunk] frames
    (DESIGN.md §16).

    A row-wise delivery is split into bounded chunks of
    (row index, bytes) entries; the explicit indexes let k shards each
    transmit their own partition ([index mod k]) while the receiver
    merges the streams back into index order, making a sharded run
    byte-identical to the single-source run by construction. *)

type entry = { s_row : int; s_bytes : string }

val default_chunk_bytes : int
(** Target encoded payload per chunk (64 KiB). *)

val max_chunks : int
(** Hostile cap on a frame's declared chunk count; receivers reject
    frames claiming more. *)

val encode_entries : entry list -> string
val decode_entries : string -> entry list
(** Raises [Wire.Malformed] on truncation, trailing bytes, or an entry
    count exceeding what the payload can hold. *)

val total_bytes : (int * string) list -> int
(** Sum of the row byte lengths (the transcript size of the stream). *)

val entry_overhead : int
(** Encoded bytes per entry beyond the row bytes themselves. *)

val payload_row_bytes : string -> int
(** The row bytes carried by an encoded chunk payload, peeked from its
    count prefix without decoding — for byte accounting. *)

val plan : ?chunk_bytes:int -> (int * string) list -> entry list list
(** Split rows (in order) into batches whose encoded size stays near
    [chunk_bytes]; an oversized single row forms a chunk of one. *)

val shard_of_row : k:int -> int -> int
(** Round-robin partition: the shard owning a row index. *)

val partition : k:int -> shard:int -> (int * string) list -> (int * string) list
(** The sub-list of rows owned by [shard] of [k], order preserved. *)

open Secmed_bigint

type key = { group : Group.t; e : Bigint.t; d : Bigint.t; p_ctx : Bigint.Ctx.ctx }

let keygen prng group =
  let e = Group.random_exponent prng group in
  let d =
    match Bigint.mod_inverse e group.Group.q with
    | Some d -> d
    | None -> assert false (* q prime and 1 <= e < q *)
  in
  { group; e; d; p_ctx = Bigint.Ctx.create group.Group.p }

let key_exponent key = key.e

let apply key x =
  Counters.bump Counters.Commutative_encrypt;
  Bigint.Ctx.mod_pow key.p_ctx x key.e

let unapply key y =
  Counters.bump Counters.Commutative_decrypt;
  Bigint.Ctx.mod_pow key.p_ctx y key.d

let group key = key.group

type primitive =
  | Hash
  | Ideal_hash
  | Hybrid_encrypt
  | Hybrid_decrypt
  | Commutative_encrypt
  | Commutative_decrypt
  | Homomorphic_encrypt
  | Homomorphic_decrypt
  | Homomorphic_add
  | Homomorphic_scalar
  | Random_number

let all =
  [ Hash; Ideal_hash; Hybrid_encrypt; Hybrid_decrypt; Commutative_encrypt;
    Commutative_decrypt; Homomorphic_encrypt; Homomorphic_decrypt;
    Homomorphic_add; Homomorphic_scalar; Random_number ]

let name = function
  | Hash -> "hash"
  | Ideal_hash -> "ideal-hash"
  | Hybrid_encrypt -> "hybrid-encrypt"
  | Hybrid_decrypt -> "hybrid-decrypt"
  | Commutative_encrypt -> "commutative-encrypt"
  | Commutative_decrypt -> "commutative-decrypt"
  | Homomorphic_encrypt -> "homomorphic-encrypt"
  | Homomorphic_decrypt -> "homomorphic-decrypt"
  | Homomorphic_add -> "homomorphic-add"
  | Homomorphic_scalar -> "homomorphic-scalar"
  | Random_number -> "random-number"

let index = function
  | Hash -> 0
  | Ideal_hash -> 1
  | Hybrid_encrypt -> 2
  | Hybrid_decrypt -> 3
  | Commutative_encrypt -> 4
  | Commutative_decrypt -> 5
  | Homomorphic_encrypt -> 6
  | Homomorphic_decrypt -> 7
  | Homomorphic_add -> 8
  | Homomorphic_scalar -> 9
  | Random_number -> 10

let width = List.length all

(* Scoped attribution: a stack of open frames (innermost first), each a
   private count array, plus a table folding closed frames by
   (party, phase).  Every bump lands in exactly one place — the
   innermost open frame, or the [unattributed] key when none is open —
   so per-scope counts always sum to the global table.

   All state is thread-local: every systhread (and thus every domain's
   initial thread) counts independently from zero, so concurrent
   protocol drivers — the mediator's session workers, a source daemon's
   per-session handlers, a loadgen fleet — never corrupt each other's
   accounting.  A worker's totals are folded back into the spawning
   thread's open frame via {!merge} (the Batch executor does this at
   join time), preserving the sums-equal-snapshot invariant without any
   synchronisation on the hot bump path.

   The registry below maps thread id → state inside a domain-local
   slot; the mutex only guards the registry lookup (a rare miss
   allocates), never the bump path, which touches exclusively
   thread-private arrays. *)
let unattributed = ("unattributed", "")

type attr_state = {
  table : int array;
  mutable frames : int array list;
  order : (string * string) list ref;
  totals : (string * string, int array) Hashtbl.t;
}

type registry = {
  reg_mu : Mutex.t;
  reg_tbl : (int, attr_state) Hashtbl.t;
}

let registry_key : registry Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { reg_mu = Mutex.create (); reg_tbl = Hashtbl.create 8 })

let fresh_state () =
  { table = Array.make width 0; frames = []; order = ref []; totals = Hashtbl.create 8 }

let state () =
  let reg = Domain.DLS.get registry_key in
  let id = Thread.id (Thread.self ()) in
  Mutex.protect reg.reg_mu (fun () ->
      match Hashtbl.find_opt reg.reg_tbl id with
      | Some s -> s
      | None ->
        let s = fresh_state () in
        Hashtbl.add reg.reg_tbl id s;
        s)

let release () =
  let reg = Domain.DLS.get registry_key in
  let id = Thread.id (Thread.self ()) in
  Mutex.protect reg.reg_mu (fun () -> Hashtbl.remove reg.reg_tbl id)

let totals_for attr key =
  match Hashtbl.find_opt attr.totals key with
  | Some a -> a
  | None ->
    let a = Array.make width 0 in
    Hashtbl.add attr.totals key a;
    attr.order := !(attr.order) @ [ key ];
    a

let bump_by p n =
  let attr = state () in
  attr.table.(index p) <- attr.table.(index p) + n;
  (match attr.frames with
   | frame :: _ -> frame.(index p) <- frame.(index p) + n
   | [] ->
     (totals_for attr unattributed).(index p) <-
       (totals_for attr unattributed).(index p) + n)

let bump p = bump_by p 1

let merge counts = List.iter (fun (p, n) -> if n <> 0 then bump_by p n) counts

let counts_of array = List.map (fun p -> (p, array.(index p))) all

let scoped ~party ~phase f =
  let attr = state () in
  let frame = Array.make width 0 in
  attr.frames <- frame :: attr.frames;
  let close () =
    (* Pop through frames an escaping exception left open. *)
    let rec pop = function
      | [] -> []
      | x :: rest -> if x == frame then rest else pop rest
    in
    attr.frames <- pop attr.frames;
    let sum = totals_for attr (party, phase) in
    Array.iteri (fun i n -> sum.(i) <- sum.(i) + n) frame;
    List.iter
      (fun p ->
        let n = frame.(index p) in
        if n > 0 then Secmed_obs.Trace.add_attr ("ops." ^ name p) (Secmed_obs.Json.Int n))
      all
  in
  match f () with
  | result ->
    close ();
    result
  | exception e ->
    close ();
    raise e

let attribution () =
  let attr = state () in
  List.filter_map
    (fun key ->
      match Hashtbl.find_opt attr.totals key with
      | Some a when Array.exists (fun n -> n <> 0) a -> Some (key, counts_of a)
      | _ -> None)
    !(attr.order)

let reset_attribution () =
  let attr = state () in
  attr.frames <- [];
  attr.order := [];
  Hashtbl.reset attr.totals

let reset () =
  let attr = state () in
  Array.fill attr.table 0 width 0;
  reset_attribution ()

let count p = (state ()).table.(index p)

let snapshot () = counts_of (state ()).table

let used () = List.filter (fun p -> count p > 0) all

let with_fresh f =
  let attr = state () in
  let saved = Array.copy attr.table in
  let saved_frames = attr.frames in
  let saved_order = !(attr.order) in
  let saved_totals = Hashtbl.copy attr.totals in
  reset ();
  let restore () =
    Array.blit saved 0 attr.table 0 width;
    attr.frames <- saved_frames;
    attr.order := saved_order;
    Hashtbl.reset attr.totals;
    Hashtbl.iter (Hashtbl.add attr.totals) saved_totals
  in
  match f () with
  | result ->
    let counts = snapshot () in
    restore ();
    (result, counts)
  | exception e ->
    restore ();
    raise e

(** Instrumentation of cryptographic primitive invocations.

    Every primitive the protocols use reports here, so that Table 2 of the
    paper ("applied cryptographic primitives") can be regenerated from
    actual executions rather than asserted. *)

(** All counter state (global table, attribution scopes) is thread-local:
    each systhread — and therefore each OCaml 5 domain's initial thread —
    counts independently from zero, so concurrent protocol drivers (the
    mediator's session workers, a source daemon's per-session handlers, a
    loadgen fleet) never observe each other's accounting.  A parallel
    executor snapshots each worker's counts at join time and folds them
    into the spawning thread with {!merge}, which lands them in the
    caller's innermost open {!scoped} frame exactly as if the work had run
    sequentially.  Long-lived servers should {!release} a session
    thread's slot when the thread retires. *)

type primitive =
  | Hash                  (** collision-free hash (SHA-256 in index tables) *)
  | Ideal_hash            (** random-oracle hash into the commutative domain *)
  | Hybrid_encrypt        (** the paper's [encrypt] *)
  | Hybrid_decrypt        (** the paper's [decrypt] *)
  | Commutative_encrypt   (** one application of f_e *)
  | Commutative_decrypt
  | Homomorphic_encrypt   (** Paillier encryption *)
  | Homomorphic_decrypt
  | Homomorphic_add       (** ciphertext-ciphertext addition *)
  | Homomorphic_scalar    (** ciphertext-constant multiplication *)
  | Random_number         (** fresh masking randomness (the PM r values) *)

val all : primitive list
val name : primitive -> string

val bump : primitive -> unit
val bump_by : primitive -> int -> unit

val merge : (primitive * int) list -> unit
(** Folds a {!snapshot} taken in another domain into this domain's
    counts, as a batch of {!bump_by}s — zero entries are skipped.  Used
    by the Batch executor to re-attribute worker-domain counts to the
    caller's open scope at join time. *)

val reset : unit -> unit

val release : unit -> unit
(** Drops the calling thread's counter state entirely (the next bump on
    this thread starts from a fresh zero state).  Call from a session
    thread's teardown in long-lived servers so retired thread ids don't
    accumulate state in the per-domain registry.  Never required for
    correctness in short-lived programs. *)

val count : primitive -> int

val snapshot : unit -> (primitive * int) list
(** Counts for every primitive, in {!all} order (zeros included). *)

val used : unit -> primitive list
(** Primitives with a non-zero count since the last {!reset}. *)

val with_fresh : (unit -> 'a) -> 'a * (primitive * int) list
(** Runs the thunk with counters reset, returning its result and the counts
    it accumulated; restores the previous counts afterwards.

    Not reentrant: a nested [with_fresh] isolates its own counts and then
    restores the outer partial counts, so nothing the inner thunk counted
    is visible to the outer accounting.  The scoped-attribution API
    ({!scoped}) is the supported way to nest accounting regions — it
    splits one [with_fresh] total by (party, phase) instead of stacking
    resets. *)

val scoped : party:string -> phase:string -> (unit -> 'a) -> 'a
(** Runs the thunk in an attribution scope.  Every {!bump} lands in the
    innermost open scope (bumps outside any scope fall into the
    [("unattributed", "")] bucket), so per-scope counts always sum to the
    global {!snapshot}.  Scopes nest: an inner scope's counts are *not*
    double-counted into the outer one.  On exit the scope's non-zero
    counts are folded into the running (party, phase) attribution and —
    when a trace collector is installed — attached to the innermost open
    span as [ops.<primitive>] attributes. *)

val attribution : unit -> ((string * string) * (primitive * int) list) list
(** Per-(party, phase) counts accumulated by closed {!scoped} regions
    since the last {!reset}, in first-appearance order; keys with all-zero
    counts are omitted.  The sum over all entries equals {!snapshot}
    (restricted to primitives bumped at least once). *)

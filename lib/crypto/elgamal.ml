open Secmed_bigint

type public_key = { group : Group.t; y : Bigint.t }
type private_key = { public : public_key; x : Bigint.t }

let keygen prng group =
  let x = Group.random_exponent prng group in
  let y = Group.element_of_exponent group x in
  { public = { group; y }; x }

let public key = key.public

type ciphertext = { c1 : Bigint.t; c2 : Bigint.t }

let encrypt prng pk m =
  let group = pk.group in
  let r = Group.random_exponent prng group in
  let c1 = Group.element_of_exponent group r in
  (* y is fixed for the lifetime of the key: fixed-base windowing pays
     the table once per key and makes every encryption cheap. *)
  let y_fb =
    Bigint.Fixed_base.cached ~base:pk.y ~modulus:group.p ~bits:(Group.exponent_bits group)
  in
  (* m * y^r with the window multiplications accumulating directly onto
     m in the Montgomery domain. *)
  let c2 = Bigint.Multi_exp.mul_pow_fb y_fb (Bigint.emod m group.p) r in
  { c1; c2 }

let decrypt sk { c1; c2 } =
  let group = sk.public.group in
  (* m = c2 * c1^{-x} = c2 * c1^{q - x} in the prime-order subgroup. *)
  if Bigint.jacobi c1 group.p = 1 then
    (* Honest c1 lands in QR_p = <g>, which has order q, so the inverse
       of c1^x is c1^{q-x}: one fused multiply-exponentiate, no extended
       Euclid.  The context comes from the same domain-local cache that
       mod_pow uses, so the Montgomery setup for p is already paid. *)
    Bigint.Multi_exp.mul_pow (Bigint.cached_ctx group.p) c2 c1
      (Bigint.emod (Bigint.sub group.q sk.x) group.q)
  else begin
    (* Adversarial c1 outside the subgroup: fall back to the generic
       inverse-based route, which is total on all units. *)
    let shared = Bigint.mod_pow c1 sk.x group.p in
    match Bigint.mod_inverse shared group.p with
    | Some inv -> Bigint.emod (Bigint.mul c2 inv) group.p
    | None -> invalid_arg "Elgamal.decrypt: degenerate ciphertext"
  end

let secret_of_element group m =
  Sha256.digest ("secmed-kem" ^ Bigint.to_bytes_be group.Group.p ^ Bigint.to_bytes_be m)

let encapsulate prng pk =
  let group = pk.group in
  (* A random QR_p element: g^t for uniform t. *)
  let t = Group.random_exponent prng group in
  let m = Group.element_of_exponent group t in
  (encrypt prng pk m, secret_of_element group m)

let decapsulate sk ct =
  let m = decrypt sk ct in
  secret_of_element sk.public.group m

let fingerprint pk =
  let raw =
    Sha256.digest
      (Bigint.to_bytes_be pk.group.Group.p
      ^ "|" ^ Bigint.to_bytes_be pk.group.Group.g
      ^ "|" ^ Bigint.to_bytes_be pk.y)
  in
  Bytes_util.to_hex (String.sub raw 0 8)

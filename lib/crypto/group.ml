open Secmed_bigint

type t = { p : Bigint.t; q : Bigint.t; g : Bigint.t; bits : int }

let generate prng ~bits =
  let p = Primes.gen_safe_prime prng ~bits in
  let q = Bigint.shift_right (Bigint.pred p) 1 in
  (* Squaring a random element lands in QR_p; QR_p has prime order q, so
     any non-identity element generates it. *)
  let rec find_generator () =
    let h = Bigint.add Bigint.two (Bigint.random_below (Prng.byte_source prng) (Bigint.sub p (Bigint.of_int 3))) in
    let g = Bigint.mod_pow h Bigint.two p in
    if Bigint.is_one g then find_generator () else g
  in
  { p; q; g = find_generator (); bits }

let cache : (int, t) Hashtbl.t = Hashtbl.create 7

let default ~bits =
  match Hashtbl.find_opt cache bits with
  | Some group -> group
  | None ->
    let prng = Prng.create ~seed:(Printf.sprintf "secmed-group-%d" bits) in
    let group = generate prng ~bits in
    Hashtbl.add cache bits group;
    group

let exponent_bits group = Bigint.numbits group.q

(* The generator is raised to a fresh exponent on every key setup,
   encryption and signature; the memoized fixed-base table makes each of
   those one multiplication per 4-bit exponent window. *)
let element_of_exponent group x =
  let fb =
    Bigint.Fixed_base.cached ~base:group.g ~modulus:group.p ~bits:(exponent_bits group)
  in
  Bigint.Fixed_base.pow fb x

let is_element group x =
  Bigint.sign x > 0
  && Bigint.compare x group.p < 0
  && Bigint.is_one (Bigint.mod_pow x group.q group.p)

let random_exponent prng group =
  Bigint.succ (Bigint.random_below (Prng.byte_source prng) (Bigint.pred group.q))

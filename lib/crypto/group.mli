(** Schnorr-style groups: the subgroup QR_p of quadratic residues of a safe
    prime p = 2q + 1.

    This is the "adequate domain" the paper takes from Agrawal et al. for
    commutative encryption, and the group underlying the ElGamal KEM of the
    hybrid scheme.  Groups are generated deterministically from a fixed
    seed and cached per bit size, so repeated runs (and the whole test
    suite) agree on parameters without re-running safe-prime search. *)

open Secmed_bigint

type t = private {
  p : Bigint.t;       (** safe prime, p = 2q + 1 *)
  q : Bigint.t;       (** Sophie Germain prime, the order of QR_p *)
  g : Bigint.t;       (** generator of QR_p *)
  bits : int;
}

val generate : Prng.t -> bits:int -> t
(** Fresh group from the given randomness (no cache). *)

val default : bits:int -> t
(** Deterministic cached group for this bit size.  Sizes up to 512 bits are
    generated on first use (sub-second for <= 256 bits). *)

val element_of_exponent : t -> Bigint.t -> Bigint.t
(** [g^x mod p], via a memoized fixed-base window table for [g]. *)

val exponent_bits : t -> int
(** Bit width of the exponent space, [numbits q]; the window tables for
    fixed bases in this group cover exactly this many bits. *)

val is_element : t -> Bigint.t -> bool
(** Membership test for QR_p: [x^q = 1 (mod p)] and [0 < x < p]. *)

val random_exponent : Prng.t -> t -> Bigint.t
(** Uniform in [\[1, q)]. *)

open Secmed_bigint

type public_key = {
  n : Bigint.t;
  n_squared : Bigint.t;
  bits : int;
  n2_ctx : Bigint.Ctx.ctx; (* reusable Montgomery context for n^2 *)
}

(* CRT decryption state: with the factorization n = p*q, c^lambda mod n^2
   splits into two half-size exponentiations mod p^2 and q^2 (exponents
   p-1 and q-1 instead of lambda), recombined by the CRT.  Half-width
   moduli quarter the multiplication cost and half-width exponents halve
   the chain length, so the two half computations together run ~4x
   faster than the full-width one. *)
type crt = {
  crt_p : Bigint.t;
  crt_q : Bigint.t;
  p2_ctx : Bigint.Ctx.ctx; (* Montgomery context for p^2 *)
  q2_ctx : Bigint.Ctx.ctx; (* Montgomery context for q^2 *)
  p_minus_1 : Bigint.t;
  q_minus_1 : Bigint.t;
  hp : Bigint.t; (* (L_p(g^{p-1} mod p^2))^{-1} mod p *)
  hq : Bigint.t; (* (L_q(g^{q-1} mod q^2))^{-1} mod q *)
  q_inv_p : Bigint.t; (* q^{-1} mod p *)
}

type private_key = {
  pk : public_key;
  lambda : Bigint.t; (* lcm(p-1, q-1) *)
  mu : Bigint.t; (* (L(g^lambda mod n^2))^{-1} mod n *)
  crt : crt option; (* present when keygen retained the factorization *)
}

let public_of_n n =
  let n_squared = Bigint.mul n n in
  { n; n_squared; bits = Bigint.numbits n; n2_ctx = Bigint.Ctx.create n_squared }

let l_function n u = Bigint.div (Bigint.pred u) n

(* CRT precomputation for one prime factor: hp = (L_p(g^{p-1} mod p^2))^{-1}
   mod p with g = n+1.  By the binomial theorem g^{p-1} = 1 + (p-1)*n
   (mod p^2) since n^2 = 0 (mod p^2), so no exponentiation is needed. *)
let crt_half n p =
  let p2 = Bigint.mul p p in
  let u = Bigint.emod (Bigint.succ (Bigint.mul (Bigint.pred p) n)) p2 in
  let lp = Bigint.div (Bigint.pred u) p in
  Bigint.mod_inverse lp p

let crt_of_factors n p q =
  match crt_half n p, crt_half n q, Bigint.mod_inverse q p with
  | Some hp, Some hq, Some q_inv_p ->
    Some
      {
        crt_p = p;
        crt_q = q;
        p2_ctx = Bigint.Ctx.create (Bigint.mul p p);
        q2_ctx = Bigint.Ctx.create (Bigint.mul q q);
        p_minus_1 = Bigint.pred p;
        q_minus_1 = Bigint.pred q;
        hp;
        hq;
        q_inv_p;
      }
  | _ -> None

let keygen prng ~bits =
  if bits < 16 then invalid_arg "Paillier.keygen: modulus too small";
  let half = bits / 2 in
  let rec go () =
    let p = Primes.gen_prime prng ~bits:half in
    let q = Primes.gen_prime prng ~bits:half in
    if Bigint.equal p q then go ()
    else begin
      let n = Bigint.mul p q in
      let p1 = Bigint.pred p and q1 = Bigint.pred q in
      let lambda = Bigint.div (Bigint.mul p1 q1) (Bigint.gcd p1 q1) in
      let pk = public_of_n n in
      (* g = n+1: g^lambda mod n^2 = 1 + lambda*n (binomial). *)
      let g_lambda =
        Bigint.emod (Bigint.succ (Bigint.mul lambda n)) pk.n_squared
      in
      match Bigint.mod_inverse (l_function n g_lambda) n, crt_of_factors n p q with
      | Some mu, (Some _ as crt) -> { pk; lambda; mu; crt }
      | _ -> go ()
    end
  in
  go ()

let public sk = sk.pk

type ciphertext = Bigint.t

let random_unit prng pk =
  (* r uniform in [1, n) with gcd(r, n) = 1; non-units occur with
     negligible probability but are rejected anyway. *)
  let rec go () =
    let r = Bigint.succ (Bigint.random_below (Prng.byte_source prng) (Bigint.pred pk.n)) in
    if Bigint.is_one (Bigint.gcd r pk.n) then r else go ()
  in
  go ()

let encrypt prng pk m =
  Counters.bump Counters.Homomorphic_encrypt;
  if Bigint.sign m < 0 || Bigint.compare m pk.n >= 0 then
    invalid_arg "Paillier.encrypt: plaintext out of range";
  let r = random_unit prng pk in
  let g_m = Bigint.emod (Bigint.succ (Bigint.mul m pk.n)) pk.n_squared in
  Bigint.Multi_exp.mul_pow pk.n2_ctx g_m r pk.n

let decrypt_plain sk c =
  Counters.bump Counters.Homomorphic_decrypt;
  let pk = sk.pk in
  let u = Bigint.Ctx.mod_pow pk.n2_ctx c sk.lambda in
  Bigint.emod (Bigint.mul (l_function pk.n u) sk.mu) pk.n

let decrypt_crt crt c =
  Counters.bump Counters.Homomorphic_decrypt;
  let half ctx prime exp h =
    (* mod_pow reduces c mod p^2 itself; L_p then maps 1 + m'*p to m'. *)
    let u = Bigint.Ctx.mod_pow ctx c exp in
    Bigint.emod (Bigint.mul (Bigint.div (Bigint.pred u) prime) h) prime
  in
  let mp = half crt.p2_ctx crt.crt_p crt.p_minus_1 crt.hp in
  let mq = half crt.q2_ctx crt.crt_q crt.q_minus_1 crt.hq in
  (* Garner recombination: m = mq + q * ((mp - mq) * q^{-1} mod p). *)
  let diff = Bigint.emod (Bigint.mul (Bigint.sub mp mq) crt.q_inv_p) crt.crt_p in
  Bigint.add mq (Bigint.mul crt.crt_q diff)

let decrypt sk c =
  match sk.crt with
  | Some crt -> decrypt_crt crt c
  | None -> decrypt_plain sk c

let add pk a b =
  Counters.bump Counters.Homomorphic_add;
  Bigint.Ctx.mod_mul pk.n2_ctx a b

let scalar_mul pk k c =
  Counters.bump Counters.Homomorphic_scalar;
  Bigint.Ctx.mod_pow pk.n2_ctx c (Bigint.emod k pk.n)

let rerandomize prng pk c =
  let r = random_unit prng pk in
  Bigint.Multi_exp.mul_pow pk.n2_ctx c r pk.n

let ciphertext_to_bigint c = c

let ciphertext_of_bigint pk v =
  if Bigint.sign v < 0 || Bigint.compare v pk.n_squared >= 0 then
    invalid_arg "Paillier.ciphertext_of_bigint: out of range"
  else v

(* Byte-string packing: 0x01 marker, 2-byte big-endian length, payload.
   The marker byte keeps valid encodings statistically distinguishable
   from the uniform residues produced by non-matching PM entries. *)

let max_plaintext_bytes pk = ((pk.bits - 1) / 8) - 3

let encode_bytes pk s =
  let len = String.length s in
  if len > max_plaintext_bytes pk then invalid_arg "Paillier.encode_bytes: too long";
  if len > 0xffff then invalid_arg "Paillier.encode_bytes: length field overflow";
  let packed =
    "\001" ^ String.init 2 (fun i -> Char.chr ((len lsr ((1 - i) * 8)) land 0xff)) ^ s
  in
  Bigint.of_bytes_be packed

let decode_bytes pk m =
  if Bigint.sign m < 0 || Bigint.compare m pk.n >= 0 then None
  else begin
    let raw = Bigint.to_bytes_be m in
    if String.length raw < 3 || raw.[0] <> '\001' then None
    else begin
      let len = (Char.code raw.[1] lsl 8) lor Char.code raw.[2] in
      if String.length raw <> 3 + len then None else Some (String.sub raw 3 len)
    end
  end

(** The Paillier cryptosystem (EUROCRYPT '99), the additively homomorphic
    scheme the paper cites for the private-matching protocol.

    Plaintext space Z_n, ciphertext space Z_{n^2}^*.  With the standard
    choice g = n + 1, encryption is E(m; r) = (1 + m·n) · r^n mod n^2.
    Homomorphic properties: E(a)·E(b) = E(a+b) and E(a)^k = E(k·a). *)

open Secmed_bigint

type public_key = private {
  n : Bigint.t;
  n_squared : Bigint.t;
  bits : int; (** bit size of n *)
  n2_ctx : Bigint.Ctx.ctx;
  (** Montgomery context for n^2, built once at key (re)construction;
      every homomorphic operation under this key reuses it. *)
}

type private_key

val keygen : Prng.t -> bits:int -> private_key
(** [bits] is the size of the modulus n = p·q (two [bits/2]-bit primes). *)

val public : private_key -> public_key
val public_of_n : Bigint.t -> public_key
(** Rebuild a public key from a transmitted modulus. *)

type ciphertext = private Bigint.t

val encrypt : Prng.t -> public_key -> Bigint.t -> ciphertext
(** Plaintext must lie in [\[0, n)]. *)

val decrypt : private_key -> ciphertext -> Bigint.t

val add : public_key -> ciphertext -> ciphertext -> ciphertext
(** E(a) ⊞ E(b) = E(a + b mod n). *)

val scalar_mul : public_key -> Bigint.t -> ciphertext -> ciphertext
(** k ⊠ E(a) = E(k·a mod n). *)

val rerandomize : Prng.t -> public_key -> ciphertext -> ciphertext
(** Multiplies by a fresh encryption of zero. *)

val ciphertext_to_bigint : ciphertext -> Bigint.t
val ciphertext_of_bigint : public_key -> Bigint.t -> ciphertext
(** Raises [Invalid_argument] when outside [\[0, n^2)]. *)

val max_plaintext_bytes : public_key -> int
(** Largest byte-string length that can be packed into one plaintext. *)

val encode_bytes : public_key -> string -> Bigint.t
(** Length-prefixed injection of a byte string into Z_n; raises
    [Invalid_argument] when it does not fit. *)

val decode_bytes : public_key -> Bigint.t -> string option
(** Inverse of {!encode_bytes}; [None] when the plaintext is not a valid
    encoding (e.g. it is the random value of a non-matching PM entry). *)

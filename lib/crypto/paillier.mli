(** The Paillier cryptosystem (EUROCRYPT '99), the additively homomorphic
    scheme the paper cites for the private-matching protocol.

    Plaintext space Z_n, ciphertext space Z_{n^2}^*.  With the standard
    choice g = n + 1, encryption is E(m; r) = (1 + m·n) · r^n mod n^2.
    Homomorphic properties: E(a)·E(b) = E(a+b) and E(a)^k = E(k·a). *)

open Secmed_bigint

type public_key = private {
  n : Bigint.t;
  n_squared : Bigint.t;
  bits : int; (** bit size of n *)
  n2_ctx : Bigint.Ctx.ctx;
  (** Montgomery context for n^2, built once at key (re)construction;
      every homomorphic operation under this key reuses it. *)
}

type private_key

val keygen : Prng.t -> bits:int -> private_key
(** [bits] is the size of the modulus n = p·q (two [bits/2]-bit primes). *)

val public : private_key -> public_key
val public_of_n : Bigint.t -> public_key
(** Rebuild a public key from a transmitted modulus. *)

type ciphertext = private Bigint.t

val random_unit : Prng.t -> public_key -> Bigint.t
(** A uniform unit of Z_n^* in [\[1, n)] — the blinding factor shape used
    by {!encrypt}; exposed so callers fusing encryption into a larger
    multi-exponentiation (see [Pm_poly.mask_and_add]) draw the identical
    randomness. *)

val encrypt : Prng.t -> public_key -> Bigint.t -> ciphertext
(** Plaintext must lie in [\[0, n)].  Computes (1 + m·n) · r^n mod n^2
    with the multiply fused into the exponentiation's Montgomery domain
    ({!Bigint.Multi_exp.mul_pow}). *)

val decrypt : private_key -> ciphertext -> Bigint.t
(** CRT-accelerated when the key carries its factorization (always true
    for {!keygen} keys): two half-width exponentiations mod p^2 and q^2
    with exponents p-1 and q-1, recombined by Garner's formula — ~4x
    faster than the full-width path.  Falls back to {!decrypt_plain}
    otherwise.  Both paths return identical values on every ciphertext
    in [\[0, n^2)] (differentially tested). *)

val decrypt_plain : private_key -> ciphertext -> Bigint.t
(** The textbook full-width path, L(c^lambda mod n^2)·mu mod n — kept as
    the reference implementation for differential tests and the
    decryption benchmark baseline. *)

val add : public_key -> ciphertext -> ciphertext -> ciphertext
(** E(a) ⊞ E(b) = E(a + b mod n). *)

val scalar_mul : public_key -> Bigint.t -> ciphertext -> ciphertext
(** k ⊠ E(a) = E(k·a mod n). *)

val rerandomize : Prng.t -> public_key -> ciphertext -> ciphertext
(** Multiplies by a fresh encryption of zero. *)

val ciphertext_to_bigint : ciphertext -> Bigint.t
val ciphertext_of_bigint : public_key -> Bigint.t -> ciphertext
(** Raises [Invalid_argument] when outside [\[0, n^2)]. *)

val max_plaintext_bytes : public_key -> int
(** Largest byte-string length that can be packed into one plaintext. *)

val encode_bytes : public_key -> string -> Bigint.t
(** Length-prefixed injection of a byte string into Z_n; raises
    [Invalid_argument] when it does not fit. *)

val decode_bytes : public_key -> Bigint.t -> string option
(** Inverse of {!encode_bytes}; [None] when the plaintext is not a valid
    encoding (e.g. it is the random value of a non-matching PM entry). *)

open Secmed_bigint

(* Eratosthenes sieve for the trial-division stage. *)
let small_primes =
  let limit = 2000 in
  let composite = Array.make (limit + 1) false in
  let primes = ref [] in
  for n = 2 to limit do
    if not composite.(n) then begin
      primes := n :: !primes;
      let m = ref (n * n) in
      while !m <= limit do
        composite.(!m) <- true;
        m := !m + n
      done
    end
  done;
  Array.of_list (List.rev !primes)

let divisible_by_small n =
  let found = ref None in
  (try
     Array.iter
       (fun p ->
         let bp = Bigint.of_int p in
         if Bigint.is_zero (Bigint.emod n bp) then begin
           found := Some p;
           raise Exit
         end)
       small_primes
   with Exit -> ());
  !found

let miller_rabin prng ~rounds n =
  (* n odd, > small primes. Write n-1 = d * 2^s. *)
  let n_minus_1 = Bigint.pred n in
  let s = ref 0 and d = ref n_minus_1 in
  while Bigint.is_even !d do
    d := Bigint.shift_right !d 1;
    incr s
  done;
  let source = Prng.byte_source prng in
  let n_minus_3 = Bigint.sub n (Bigint.of_int 3) in
  (* One Montgomery context covers every witness exponentiation and
     squaring for this candidate; the whole round stays in-domain. *)
  let ctx = Bigint.Ctx.create n in
  let one_m = Bigint.Ctx.mont_one ctx in
  let n_minus_1_m = Bigint.Ctx.to_mont ctx n_minus_1 in
  let witness_passes () =
    let a = Bigint.add Bigint.two (Bigint.random_below source n_minus_3) in
    let x = ref (Bigint.Ctx.mont_pow ctx (Bigint.Ctx.to_mont ctx a) !d) in
    if Bigint.Ctx.mont_equal !x one_m || Bigint.Ctx.mont_equal !x n_minus_1_m then true
    else begin
      let ok = ref false and r = ref 1 in
      while (not !ok) && !r < !s do
        x := Bigint.Ctx.mont_mul ctx !x !x;
        if Bigint.Ctx.mont_equal !x n_minus_1_m then ok := true;
        incr r
      done;
      !ok
    end
  in
  let rec go remaining = remaining = 0 || (witness_passes () && go (remaining - 1)) in
  go rounds

let is_probable_prime ?(rounds = 24) prng n =
  if Bigint.compare n Bigint.two < 0 then false
  else begin
    match Bigint.to_int_opt n with
    | Some small when small <= small_primes.(Array.length small_primes - 1) ->
      Array.exists (fun p -> p = small) small_primes
    | Some _ | None ->
      (match divisible_by_small n with
       | Some _ -> false
       | None -> miller_rabin prng ~rounds n)
  end

(* Uniform [bits]-bit odd value with the top two bits set (so products of
   two such values have exactly 2*[bits] bits). *)
let random_odd_candidate prng ~bits =
  let low = Bigint.random_bits (Prng.byte_source prng) (bits - 2) in
  let top = Bigint.shift_left (Bigint.of_int 3) (bits - 2) in
  let v = Bigint.add low top in
  if Bigint.is_even v then Bigint.succ v else v

let gen_prime prng ~bits =
  if bits < 8 then invalid_arg "Primes.gen_prime: need at least 8 bits";
  let rec go () =
    let candidate = random_odd_candidate prng ~bits in
    (* Step by 2 a bounded number of times before redrawing; cheaper than
       a fresh random draw per test. *)
    let rec scan candidate attempts =
      if attempts = 0 then go ()
      else if Bigint.numbits candidate <> bits then go ()
      else if divisible_by_small candidate <> None then
        scan (Bigint.add candidate Bigint.two) (attempts - 1)
      else if miller_rabin prng ~rounds:24 candidate then candidate
      else scan (Bigint.add candidate Bigint.two) (attempts - 1)
    in
    scan candidate 400
  in
  go ()

let gen_safe_prime prng ~bits =
  if bits < 8 then invalid_arg "Primes.gen_safe_prime: need at least 8 bits";
  let rec go () =
    let q = random_odd_candidate prng ~bits:(bits - 1) in
    (* q must be 3 mod 4 is not required; ensure q odd (it is). *)
    let rec scan q attempts =
      if attempts = 0 then go ()
      else begin
        let p = Bigint.succ (Bigint.shift_left q 1) in
        let next () = scan (Bigint.add q Bigint.two) (attempts - 1) in
        if Bigint.numbits p <> bits then go ()
        else if divisible_by_small q <> None || divisible_by_small p <> None then next ()
        else if
          miller_rabin prng ~rounds:24 q && miller_rabin prng ~rounds:24 p
        then p
        else next ()
      end
    in
    scan q 4000
  in
  go ()

open Secmed_bigint

type public_key = { group : Group.t; y : Bigint.t }
type private_key = { public : public_key; x : Bigint.t }

type signature = { r : Bigint.t; s : Bigint.t }

let keygen prng group =
  let x = Group.random_exponent prng group in
  { public = { group; y = Group.element_of_exponent group x }; x }

let public key = key.public

let challenge group r msg =
  let raw =
    Sha256.digest
      ("secmed-schnorr" ^ Bigint.to_bytes_be group.Group.p ^ Bigint.to_bytes_be r ^ msg)
  in
  Bigint.emod (Bigint.of_bytes_be raw) group.Group.q

let sign prng sk msg =
  let group = sk.public.group in
  let k = Group.random_exponent prng group in
  let r = Group.element_of_exponent group k in
  let e = challenge group r msg in
  (* s = k + e*x mod q; verify: g^s = r * y^e. *)
  let s = Bigint.emod (Bigint.add k (Bigint.mul e sk.x)) group.Group.q in
  { r; s }

let verify pk msg { r; s } =
  let group = pk.group in
  Group.is_element group r
  && Bigint.sign s >= 0
  && Bigint.compare s group.Group.q < 0
  &&
  let e = challenge group r msg in
  let lhs = Group.element_of_exponent group s in
  let y_fb =
    Bigint.Fixed_base.cached ~base:pk.y ~modulus:group.Group.p
      ~bits:(Group.exponent_bits group)
  in
  let rhs = Bigint.emod (Bigint.mul r (Bigint.Fixed_base.pow y_fb e)) group.Group.p in
  Bigint.equal lhs rhs

let signature_to_wire { r; s } =
  let pack v =
    let bytes = Bigint.to_bytes_be v in
    Bytes_util.be32 (String.length bytes) ^ bytes
  in
  pack r ^ pack s

let signature_of_wire blob =
  let fail () = invalid_arg "Schnorr.signature_of_wire: malformed signature" in
  if String.length blob < 4 then fail ();
  let rlen = Bytes_util.read_be32 blob 0 in
  if String.length blob < 4 + rlen + 4 then fail ();
  let r = Bigint.of_bytes_be (String.sub blob 4 rlen) in
  let slen = Bytes_util.read_be32 blob (4 + rlen) in
  if String.length blob <> 8 + rlen + slen then fail ();
  let s = Bigint.of_bytes_be (String.sub blob (8 + rlen) slen) in
  { r; s }

open Secmed_crypto

type action =
  | Drop
  | Truncate of int
  | Corrupt of int
  | Duplicate
  | Delay of float

let action_name = function
  | Drop -> "drop"
  | Truncate n -> Printf.sprintf "truncate(%d)" n
  | Corrupt n -> Printf.sprintf "corrupt(%d)" n
  | Duplicate -> "duplicate"
  | Delay s -> Printf.sprintf "delay(%.3fs)" s

type byzantine_mode =
  | Malformed_ciphertexts
  | Wrong_partition_ids
  | Stale_commutative_key
  | Garbage_paillier

let mode_name = function
  | Malformed_ciphertexts -> "malformed-ciphertexts"
  | Wrong_partition_ids -> "wrong-partition-ids"
  | Stale_commutative_key -> "stale-commutative-key"
  | Garbage_paillier -> "garbage-paillier"

let mode_of_name = function
  | "malformed-ciphertexts" -> Some Malformed_ciphertexts
  | "wrong-partition-ids" -> Some Wrong_partition_ids
  | "stale-commutative-key" -> Some Stale_commutative_key
  | "garbage-paillier" -> Some Garbage_paillier
  | _ -> None

type rule = {
  rule_sender : Transcript.party option;
  rule_receiver : Transcript.party option;
  rule_label : string option;
  rule_action : action;
  mutable remaining : int;
}

let rule ?sender ?receiver ?label ?(times = max_int) action =
  {
    rule_sender = sender;
    rule_receiver = receiver;
    rule_label = label;
    rule_action = action;
    remaining = times;
  }

type event = {
  event_sender : Transcript.party;
  event_receiver : Transcript.party;
  event_label : string;
  event_action : action;
  detail : string;
}

type failure = { phase : string; party : Transcript.party; reason : string }

exception Fault_detected of failure

let fail ~phase ~party reason = raise (Fault_detected { phase; party; reason })

type plan = {
  prng : Prng.t;
  rules : rule list;
  byzantine : (int * byzantine_mode) list;
  retry_budget : int;
  mutable rev_events : event list;
  mutable attempt : int;
  mutable pending_note : string option;
  mutable last_failure : failure option;
  mutable simulated_delay : float;
  mutable on_delay : (float -> unit) option;
}

let plan ?(seed = 0) ?(max_retries = 2) ?(byzantine = []) rules =
  {
    prng = Prng.create ~seed:(Printf.sprintf "fault-plan-%d" seed);
    rules;
    byzantine;
    retry_budget = max_retries;
    rev_events = [];
    attempt = 1;
    pending_note = None;
    last_failure = None;
    simulated_delay = 0.0;
    on_delay = None;
  }

let events p = List.rev p.rev_events

let simulated_delay p = p.simulated_delay

let set_delay_handler p handler = p.on_delay <- handler

(* A crashed run must not leave its handler installed: the next query on
   the same plan would charge link delays to a deadline that no longer
   exists.  Scope the handler to the callback and restore whatever was
   there before, even on exceptions. *)
let with_delay_handler p handler f =
  let saved = p.on_delay in
  p.on_delay <- handler;
  Fun.protect ~finally:(fun () -> p.on_delay <- saved) f

let delay_handler_installed p = Option.is_some p.on_delay

let attempts p = p.attempt

let byzantine_mode plan source =
  match plan with None -> None | Some p -> List.assoc_opt source p.byzantine

let auditing = function None -> false | Some _ -> true

let max_retries = function None -> 0 | Some p -> p.retry_budget

(* Retrying cannot clear a byzantine datasource, only transient channel
   faults. *)
let retryable = function
  | None -> false
  | Some p -> p.byzantine = []

let start_attempt plan ~attempt =
  match plan with
  | None -> ()
  | Some p ->
    p.attempt <- attempt;
    if attempt > 1 then
      let why =
        match p.last_failure with
        | None -> "transient fault"
        | Some f -> Printf.sprintf "%s at %s: %s" f.phase (Transcript.party_name f.party) f.reason
      in
      p.pending_note <-
        Some (Printf.sprintf "retry: attempt %d with a fresh request after %s" attempt why)

let attach plan transcript =
  match plan with
  | None -> ()
  | Some p ->
    (match p.pending_note with
     | None -> ()
     | Some text ->
       Transcript.note transcript text;
       p.pending_note <- None)

(* ------------------------------------------------------------------ *)
(* Channel tampering.

   Payload-carrying messages travel in an integrity envelope: the sender
   appends a 16-byte SHA-256 tag over (label, payload), so a receiver
   detects truncation and byte corruption at the frame boundary instead of
   crashing deep inside a parser.  Byzantine *content* (validly framed but
   semantically malformed) is the receiver-side validators' job. *)

let tag_bytes = 16

let tag ~label payload =
  String.sub (Sha256.digest ("secmed-frame\x00" ^ label ^ "\x00" ^ payload)) 0 tag_bytes

let frame ~label payload = payload ^ tag ~label payload

let unframe ~label framed =
  let n = String.length framed in
  if n < tag_bytes then Error "frame truncated below the integrity tag"
  else begin
    let payload = String.sub framed 0 (n - tag_bytes) in
    if Bytes_util.constant_time_equal (String.sub framed (n - tag_bytes) tag_bytes)
         (tag ~label payload)
    then Ok payload
    else Error "integrity tag mismatch"
  end

let rule_matches ~sender ~receiver ~label r =
  r.remaining > 0
  && (match r.rule_sender with None -> true | Some p -> Transcript.party_equal p sender)
  && (match r.rule_receiver with None -> true | Some p -> Transcript.party_equal p receiver)
  && (match r.rule_label with None -> true | Some l -> String.equal l label)

let record_event p transcript ~sender ~receiver ~label ~action detail =
  p.rev_events <-
    { event_sender = sender; event_receiver = receiver; event_label = label;
      event_action = action; detail }
    :: p.rev_events;
  Transcript.note transcript
    (Printf.sprintf "fault: %s on %s (%s -> %s): %s" (action_name action) label
       (Transcript.party_name sender) (Transcript.party_name receiver) detail);
  if Secmed_obs.Trace.enabled () then
    Secmed_obs.Trace.event "fault"
      ~attrs:
        [
          ("action", Secmed_obs.Json.Str (action_name action));
          ("label", Secmed_obs.Json.Str label);
          ("from", Secmed_obs.Json.Str (Transcript.party_name sender));
          ("to", Secmed_obs.Json.Str (Transcript.party_name receiver));
          ("detail", Secmed_obs.Json.Str detail);
        ]

let deliver p transcript ~phase ~sender ~receiver ~label payload =
  match List.find_opt (rule_matches ~sender ~receiver ~label) p.rules with
  | None -> payload
  | Some r ->
    r.remaining <- r.remaining - 1;
    let event = record_event p transcript ~sender ~receiver ~label ~action:r.rule_action in
    let detect framed =
      match unframe ~label framed with
      | Ok payload -> payload
      | Error reason ->
        fail ~phase ~party:receiver (Printf.sprintf "%s rejected: %s" label reason)
    in
    match r.rule_action with
    | Drop ->
      event "message lost in transit";
      fail ~phase ~party:receiver (Printf.sprintf "%s never arrived (timeout)" label)
    | Delay seconds ->
      p.simulated_delay <- p.simulated_delay +. seconds;
      event (Printf.sprintf "delivery delayed by %.3fs" seconds);
      (* The session layer charges simulated delays against its deadline
         here, so a delayed link can trip Resilience.Deadline_exceeded at
         the point of delivery instead of being free. *)
      (match p.on_delay with None -> () | Some f -> f seconds);
      payload
    | Duplicate ->
      (* The copy really travels — account for it — but the receiver
         discards the replay (sequence numbers), so content is unchanged. *)
      Transcript.record transcript ~sender ~receiver ~label:(label ^ "(dup)")
        ~size:(String.length payload);
      event "duplicate delivered; receiver discarded the replayed copy";
      payload
    | Truncate n ->
      let framed = frame ~label payload in
      let keep = Stdlib.max 0 (String.length framed - Stdlib.max 1 n) in
      event (Printf.sprintf "truncated to %d of %d bytes" keep (String.length framed));
      detect (String.sub framed 0 keep)
    | Corrupt n ->
      let framed = Bytes.of_string (frame ~label payload) in
      for _ = 1 to Stdlib.max 1 n do
        let i = Prng.uniform_int p.prng (Bytes.length framed) in
        let bit = 1 lsl Prng.uniform_int p.prng 8 in
        Bytes.set framed i (Char.chr (Char.code (Bytes.get framed i) lxor bit))
      done;
      event (Printf.sprintf "%d byte(s) corrupted" (Stdlib.max 1 n));
      detect (Bytes.to_string framed)

let inject = deliver

(* ------------------------------------------------------------------ *)
(* Chaos-proxy support: the byte-level TCP proxy (Secmed_net.Chaos)
   replays the same plan against live streams.  It matches rules itself
   (it sits outside any transcript) and keeps its own event log via
   [log_external]. *)

let select p ~sender ~receiver ~label =
  match List.find_opt (rule_matches ~sender ~receiver ~label) p.rules with
  | None -> None
  | Some r ->
    r.remaining <- r.remaining - 1;
    Some r.rule_action

let log_external p ~sender ~receiver ~label ~action detail =
  p.rev_events <-
    { event_sender = sender; event_receiver = receiver; event_label = label;
      event_action = action; detail }
    :: p.rev_events

let corrupt_bytes p ~count s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    for _ = 1 to Stdlib.max 1 count do
      let i = Prng.uniform_int p.prng (Bytes.length b) in
      let bit = 1 lsl Prng.uniform_int p.prng 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit))
    done;
    Bytes.to_string b
  end

(* Byzantine helper: damage a ciphertext without breaking its framing —
   flipping the last byte (MAC / tag material in every ciphertext format
   used here) guarantees an authentication failure at the decryptor while
   the blob still parses structurally. *)
let flip_tail s =
  let n = String.length s in
  if n = 0 then s
  else String.init n (fun i -> if i = n - 1 then Char.chr (Char.code s.[i] lxor 1) else s.[i])

(* The honest path never forces the payload thunk, so fault support is
   free when no plan is installed. *)
let guard plan transcript ~phase ~sender ~receiver ~label payload =
  match plan with
  | None -> ()
  | Some p -> ignore (deliver p transcript ~phase ~sender ~receiver ~label (payload ()))

(* ------------------------------------------------------------------ *)
(* Textual fault specs (the CLI's --fault flag). *)

let party_of_name name =
  match String.lowercase_ascii name with
  | "*" | "any" -> Ok None
  | "client" -> Ok (Some Transcript.Client)
  | "mediator" -> Ok (Some Transcript.Mediator)
  | "ca" | "authority" -> Ok (Some Transcript.Authority)
  | s ->
    let digits =
      if String.length s > 6 && String.sub s 0 6 = "source" then
        Some (String.sub s 6 (String.length s - 6))
      else if String.length s > 1 && s.[0] = 's' then Some (String.sub s 1 (String.length s - 1))
      else None
    in
    (match Option.bind digits int_of_string_opt with
     | Some i -> Ok (Some (Transcript.Source i))
     | None -> Error (Printf.sprintf "unknown party %S" name))

let clause_error clause detail = Error (Printf.sprintf "clause %S: %s" clause detail)

(* ACTION:FROM->TO[:LABEL][:times=N] *)
let parse_rule_clause clause = function
  | action_name :: link :: rest ->
    let action =
      match String.lowercase_ascii action_name with
      | "drop" -> Ok Drop
      | "duplicate" -> Ok Duplicate
      | "truncate" -> Ok (Truncate 4)
      | "corrupt" -> Ok (Corrupt 1)
      | "delay" -> Ok (Delay 0.05)
      | other -> clause_error clause (Printf.sprintf "unknown action %S" other)
    in
    let options, plain = List.partition (fun f -> String.contains f '=') rest in
    let label = match plain with [] | "*" :: _ -> None | l :: _ -> Some l in
    let times =
      List.fold_left
        (fun acc field ->
          match String.split_on_char '=' field with
          | [ "times"; n ] -> Option.value ~default:acc (int_of_string_opt n)
          | _ -> acc)
        max_int options
    in
    (match String.index_opt link '>' with
     | Some i when i > 0 && link.[i - 1] = '-' ->
       let from_part = String.sub link 0 (i - 1) in
       let to_part = String.sub link (i + 1) (String.length link - i - 1) in
       (match (action, party_of_name from_part, party_of_name to_part) with
        | Ok action, Ok sender, Ok receiver ->
          Ok (rule ?sender ?receiver ?label ~times action)
        | (Error _ as e), _, _ -> e
        | _, Error e, _ | _, _, Error e -> clause_error clause e)
     | _ -> clause_error clause "expected FROM->TO link")
  | _ -> clause_error clause "expected ACTION:FROM->TO[:LABEL[:times=N]]"

let of_spec spec =
  let clauses =
    List.filter (fun s -> s <> "") (List.map String.trim (String.split_on_char ';' spec))
  in
  let rec go seed retries byzantine rules = function
    | [] -> Ok (plan ~seed ~max_retries:retries ~byzantine (List.rev rules))
    | clause :: tail ->
      let fields = String.split_on_char ':' clause in
      (match fields with
       | [ kv ] when String.contains kv '=' ->
         (match String.split_on_char '=' kv with
          | [ "seed"; n ] ->
            (match int_of_string_opt n with
             | Some seed -> go seed retries byzantine rules tail
             | None -> clause_error clause "seed needs an integer")
          | [ "retries"; n ] ->
            (match int_of_string_opt n with
             | Some retries -> go seed retries byzantine rules tail
             | None -> clause_error clause "retries needs an integer")
          | _ -> clause_error clause "unknown setting")
       | "byzantine" :: source :: mode :: _ ->
         (match (int_of_string_opt source, mode_of_name mode) with
          | Some sid, Some mode -> go seed retries ((sid, mode) :: byzantine) rules tail
          | None, _ -> clause_error clause "byzantine needs a source id"
          | _, None -> clause_error clause (Printf.sprintf "unknown byzantine mode %S" mode))
       | fields ->
         (match parse_rule_clause clause fields with
          | Ok r -> go seed retries byzantine (r :: rules) tail
          | Error _ as e -> e))
  in
  go 0 2 [] [] clauses

let pp_event fmt e =
  Format.fprintf fmt "%s on %s (%s -> %s): %s" (action_name e.event_action) e.event_label
    (Transcript.party_name e.event_sender)
    (Transcript.party_name e.event_receiver)
    e.detail

(** Declarative, deterministic fault injection for the mediation pipeline.

    The mediator combines partial results from autonomous datasources it
    does not control, so the stack must stay correct — or fail closed with
    a typed error — when a link misdelivers or a party misbehaves.  A
    {!plan} describes, per link and per message label, which channel
    faults to inject (drop, truncate, corrupt, duplicate, delay) and which
    datasources act byzantine (malformed ciphertexts, out-of-range
    partition ids, stale commutative keys, out-of-range Paillier values).
    All injections are seeded and replayable; every injected fault and
    every retry is recorded both in the plan's event log and as a
    {!Transcript.note}, so communication/leakage accounting stays
    truthful.  See DESIGN.md §8 for the fault model. *)

type action =
  | Drop           (** message never arrives *)
  | Truncate of int  (** cut the trailing n bytes off the frame *)
  | Corrupt of int   (** flip one random bit in each of n frame bytes *)
  | Duplicate      (** deliver a second, replayed copy *)
  | Delay of float   (** simulated link delay in seconds *)

val action_name : action -> string

type byzantine_mode =
  | Malformed_ciphertexts  (** hybrid/DEM ciphertexts fail authentication *)
  | Wrong_partition_ids    (** DAS index vectors outside the table range *)
  | Stale_commutative_key  (** re-encryption pass under a different key *)
  | Garbage_paillier       (** Paillier values outside the ciphertext group *)

val mode_name : byzantine_mode -> string
val mode_of_name : string -> byzantine_mode option

type rule

val rule :
  ?sender:Transcript.party ->
  ?receiver:Transcript.party ->
  ?label:string ->
  ?times:int ->
  action ->
  rule
(** Omitted selectors are wildcards; [times] bounds how many matching
    messages the rule fires on (default: unlimited). *)

type event = {
  event_sender : Transcript.party;
  event_receiver : Transcript.party;
  event_label : string;
  event_action : action;
  detail : string;
}

val pp_event : Format.formatter -> event -> unit

(** Typed protocol failure: which phase of which protocol detected the
    fault, at which party, and why.  Raised by hardened drivers and mapped
    to [Protocol.Fault] at the top level. *)
type failure = { phase : string; party : Transcript.party; reason : string }

exception Fault_detected of failure

val fail : phase:string -> party:Transcript.party -> string -> 'a
(** Raise {!Fault_detected}. *)

type plan
(** Mutable: rule counters, the event log and the retry state advance as
    the plan is replayed, so a [times]-bounded transient fault is consumed
    across retries. *)

val plan :
  ?seed:int ->
  ?max_retries:int ->
  ?byzantine:(int * byzantine_mode) list ->
  rule list ->
  plan
(** [seed] drives corruption positions (default 0); [max_retries] bounds
    the mediator's retry-with-fresh-request policy (default 2);
    [byzantine] marks datasources by id. *)

val of_spec : string -> (plan, string) result
(** Parse a plan from the CLI syntax: semicolon-separated clauses of
    [ACTION:FROM->TO[:LABEL][:times=N]] (parties [client], [mediator],
    [sourceN]/[sN] or [*]), [byzantine:SID:MODE], [seed=N], [retries=N].
    Example: ["drop:mediator->client:RC:times=1;byzantine:2:garbage-paillier"]. *)

val events : plan -> event list
(** Injected faults, in injection order, across all attempts. *)

val simulated_delay : plan -> float
val attempts : plan -> int

val set_delay_handler : plan -> (float -> unit) option -> unit
(** Install (or clear, with [None]) a callback invoked with the delay in
    seconds each time a [Delay] rule fires, after the event is logged.
    The resilience session layer uses it to charge simulated link delays
    against the query deadline ({!Resilience.charge}), which may raise
    {!Resilience.Deadline_exceeded} out of the delivery point.

    Prefer {!with_delay_handler}: a bare [set] that is never reset leaks
    the handler into the plan's next use. *)

val with_delay_handler : plan -> (float -> unit) option -> (unit -> 'a) -> 'a
(** [with_delay_handler p h f] runs [f] with [h] installed as the delay
    handler and restores the {e previous} handler when [f] returns or
    raises — so a crashed query cannot charge later queries' link delays
    to its dead deadline, and nesting composes. *)

val delay_handler_installed : plan -> bool
(** Whether a delay handler is currently installed (regression hook for
    the scoping guarantee above). *)

val byzantine_mode : plan option -> int -> byzantine_mode option
(** How the given datasource misbehaves, if at all. *)

val auditing : plan option -> bool
(** Whether drivers should run the (transcript-visible) conformance
    audits that only matter under a fault model — e.g. the commutative
    canary exchange. *)

val max_retries : plan option -> int
val retryable : plan option -> bool
(** Whether a retry can help: true for channel faults, false when any
    source is byzantine (a fresh request reaches the same liar). *)

val start_attempt : plan option -> attempt:int -> unit
(** Called by the protocol driver loop before each attempt; queues a
    retry note for the next transcript. *)

val attach : plan option -> Transcript.t -> unit
(** Called by drivers right after creating their transcript; flushes the
    queued retry note so retries are visible in the final accounting. *)

val flip_tail : string -> string
(** Flip the low bit of the last byte: the byzantine-source primitive that
    damages a ciphertext while leaving its framing parseable, so the
    fault is caught by authentication, not by a parser crash. *)

val guard :
  plan option ->
  Transcript.t ->
  phase:string ->
  sender:Transcript.party ->
  receiver:Transcript.party ->
  label:string ->
  (unit -> string) ->
  unit
(** Channel interception point, placed next to the matching
    [Transcript.record].  With no plan the payload thunk is never forced
    (zero cost).  With a plan, the payload travels in an integrity
    envelope (16-byte SHA-256 tag over label and payload): [Drop] and any
    tamper the envelope check catches raise {!Fault_detected} at the
    receiver; [Duplicate] records the extra copy in the transcript;
    [Delay] accrues {!simulated_delay}.  Every firing is logged to
    {!events} and noted in the transcript. *)

val inject :
  plan ->
  Transcript.t ->
  phase:string ->
  sender:Transcript.party ->
  receiver:Transcript.party ->
  label:string ->
  string ->
  string
(** The delivery engine behind {!guard}, taking the payload by value and
    returning what the receiver accepts (used by [Link.deliver], which
    always has the payload in hand when a transport is attached).
    Failure semantics are identical to {!guard}. *)

(** {2 Chaos-proxy hooks}

    [Secmed_net.Chaos] replays a plan against live TCP streams.  It runs
    outside any protocol replica — no transcript, no phase — so it drives
    the rule table directly and logs what it did for post-mortem
    comparison with the simulated path. *)

val select :
  plan ->
  sender:Transcript.party ->
  receiver:Transcript.party ->
  label:string ->
  action option
(** Consume the first rule matching the link and label (decrementing its
    [times] counter) and return its action; [None] when no rule fires.
    Nothing is logged — callers record their own {!log_external} entry
    describing what they actually did to the stream. *)

val log_external :
  plan ->
  sender:Transcript.party ->
  receiver:Transcript.party ->
  label:string ->
  action:action ->
  string ->
  unit
(** Append an event to the plan's log without touching any transcript. *)

val corrupt_bytes : plan -> count:int -> string -> string
(** Flip [count] seeded random bits (at least one), drawn from the plan's
    PRNG — the byte-level analogue of the [Corrupt] action. *)

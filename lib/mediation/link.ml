type rows_transport = {
  send_rows :
    phase:string ->
    seq:int ->
    sender:Transcript.party ->
    receiver:Transcript.party ->
    label:string ->
    size:int ->
    (int * string) list ->
    unit;
  recv_rows :
    phase:string ->
    seq:int ->
    sender:Transcript.party ->
    receiver:Transcript.party ->
    label:string ->
    size:int ->
    expect:(int * string) list ->
    unit;
}

type transport = {
  role : Transcript.party;
  send :
    phase:string ->
    seq:int ->
    sender:Transcript.party ->
    receiver:Transcript.party ->
    label:string ->
    size:int ->
    string ->
    unit;
  recv :
    phase:string ->
    seq:int ->
    sender:Transcript.party ->
    receiver:Transcript.party ->
    label:string ->
    size:int ->
    string;
  rows : rows_transport option;
}

type endpoint = Inproc | Remote of transport

type t = {
  endpoint : endpoint;
  fault : Fault.plan option;
  transcript : Transcript.t;
  mutable seq : int;
}

let make ?(endpoint = Inproc) ?fault transcript = { endpoint; fault; transcript; seq = 0 }

let transcript t = t.transcript
let fault t = t.fault
let endpoint t = t.endpoint

let is_remote t = match t.endpoint with Inproc -> false | Remote _ -> true

let seq t = t.seq

(* The wire always carries at least [size] bytes: messages whose modelled
   size includes bytes the prototype never materialises (e.g. attached
   credentials) are zero-padded, so the socket-level byte count equals
   the transcript entry.  Both sides compute the same padded frame, so
   the receiver-side equality check is unaffected. *)
let padded payload size =
  let n = String.length payload in
  if n >= size then payload else payload ^ String.make (size - n) '\000'

let deliver t ~phase ~sender ~receiver ~label ?(guard = true) ?size payload =
  match (t.endpoint, t.fault, size) with
  | Inproc, None, Some size ->
    (* Honest in-process fast path: the payload thunk is never forced. *)
    Transcript.record t.transcript ~sender ~receiver ~label ~size
  | Inproc, Some _, Some size when not guard ->
    Transcript.record t.transcript ~sender ~receiver ~label ~size
  | _ ->
    let p = payload () in
    let size = match size with Some s -> s | None -> String.length p in
    Transcript.record t.transcript ~sender ~receiver ~label ~size;
    let p =
      match t.fault with
      | Some plan when guard ->
        Fault.inject plan t.transcript ~phase ~sender ~receiver ~label p
      | _ -> p
    in
    (match t.endpoint with
     | Inproc -> ()
     | Remote tr ->
       let seq = t.seq in
       t.seq <- seq + 1;
       if Transcript.party_equal tr.role sender then
         tr.send ~phase ~seq ~sender ~receiver ~label ~size (padded p size)
       else if Transcript.party_equal tr.role receiver then begin
         let received = tr.recv ~phase ~seq ~sender ~receiver ~label ~size in
         if not (String.equal received (padded p size)) then
           Fault.fail ~phase ~party:receiver
             (Printf.sprintf "%s rejected: wire payload mismatch (%d bytes received, %d computed)"
                label (String.length received) (String.length (padded p size)))
       end)

(* Row-wise delivery: same transcript entry, same sequence slot, same
   declared size as [deliver] of the concatenated rows — the scalar and
   streamed encodings of a message are interchangeable at every layer
   above the transport.  The streamed path engages only on a fault-free
   remote link whose transport implements it; with a fault plan (which
   every replica agrees on, since the spec rides in the session
   announcement) the rows collapse to one payload so the fault layer's
   rule matching and padding semantics are untouched. *)
let deliver_rows t ~phase ~sender ~receiver ~label ?(guard = true) ~size rows =
  match (t.endpoint, t.fault) with
  | Remote ({ rows = Some rt; _ } as tr), None ->
    let indexed = List.mapi (fun i b -> (i, b)) (rows ()) in
    let total = List.fold_left (fun acc (_, b) -> acc + String.length b) 0 indexed in
    let indexed =
      (* Mirror [padded]: a declared size above the materialised bytes
         travels as one trailing zero-filled row. *)
      if total < size then indexed @ [ (List.length indexed, String.make (size - total) '\000') ]
      else indexed
    in
    Transcript.record t.transcript ~sender ~receiver ~label ~size;
    let seq = t.seq in
    t.seq <- seq + 1;
    if Transcript.party_equal tr.role sender then
      rt.send_rows ~phase ~seq ~sender ~receiver ~label ~size indexed
    else if Transcript.party_equal tr.role receiver then
      rt.recv_rows ~phase ~seq ~sender ~receiver ~label ~size ~expect:indexed
  | _ ->
    deliver t ~phase ~sender ~receiver ~label ~guard ~size (fun () ->
        String.concat "" (rows ()))

(** Endpoint-parametric message delivery.

    Every protocol message a driver emits goes through {!deliver}, which
    unifies the three things that must stay in lockstep per message:

    - the {b transcript} entry ([Transcript.record]) — the paper's
      communication accounting;
    - the {b fault plan} interception point ([Fault.inject]) — simulated
      channel faults;
    - the {b transport hop} — when an {!endpoint} is attached, the bytes
      actually cross a socket.

    The transport model is {e deterministic replicated execution}: in a
    distributed run every process (client, mediator, each datasource)
    derives the identical scenario from the shared seed and executes the
    same driver code, so each replica can compute every message locally.
    The transport only materialises a message on the wire when this
    process plays its sender or its receiver; a receiver checks that the
    bytes received equal the bytes it computed, so real corruption on the
    wire surfaces as a typed {!Fault.Fault_detected} at exactly the
    delivery point a simulated [Corrupt] would use.  (This distributes
    {e communication}, not {e trust} — see DESIGN.md §11 for what the
    transport does and does not protect.)

    [Secmed_net] supplies TCP transports; the default endpoint is
    {!Inproc}, which performs no I/O and keeps the thunk-never-forced
    fast path of the fault layer. *)

(* One process's view of a live transport is {!transport} below, as
   closures so this library stays below [Secmed_net].  [seq] is the
   global per-attempt delivery index — identical across replicas because
   they execute the same deliver calls in the same order — used to
   discard duplicated or stale frames. *)

(** Streamed variant of a delivery: the message as (row index, bytes)
    entries instead of one payload.  [send_rows] chunks and transmits
    (a sharded sender transmits only its partition); [recv_rows] pulls
    chunk frames and verifies each entry against the locally recomputed
    [expect] list incrementally — the received relation is never
    materialised as one string.  Both raise typed faults like
    {!transport.recv}. *)
type rows_transport = {
  send_rows :
    phase:string ->
    seq:int ->
    sender:Transcript.party ->
    receiver:Transcript.party ->
    label:string ->
    size:int ->
    (int * string) list ->
    unit;
  recv_rows :
    phase:string ->
    seq:int ->
    sender:Transcript.party ->
    receiver:Transcript.party ->
    label:string ->
    size:int ->
    expect:(int * string) list ->
    unit;
}

type transport = {
  role : Transcript.party;  (** the party this process plays *)
  send :
    phase:string ->
    seq:int ->
    sender:Transcript.party ->
    receiver:Transcript.party ->
    label:string ->
    size:int ->
    string ->
    unit;
  recv :
    phase:string ->
    seq:int ->
    sender:Transcript.party ->
    receiver:Transcript.party ->
    label:string ->
    size:int ->
    string;
      (** Must return the received payload bytes; raises on transport
          failure (timeout, closed stream), ideally as a typed
          {!Fault.Fault_detected}. *)
  rows : rows_transport option;
      (** [None] on transports predating chunked delivery;
          {!deliver_rows} then falls back to the scalar path. *)
}

type endpoint = Inproc | Remote of transport

type t

val make : ?endpoint:endpoint -> ?fault:Fault.plan -> Transcript.t -> t
(** A link bound to one protocol run's transcript.  Default endpoint is
    {!Inproc} (today's direct calls). *)

val transcript : t -> Transcript.t
val fault : t -> Fault.plan option
val endpoint : t -> endpoint
val is_remote : t -> bool

val seq : t -> int
(** Deliveries performed so far on this link (the next message's
    sequence number). *)

val deliver :
  t ->
  phase:string ->
  sender:Transcript.party ->
  receiver:Transcript.party ->
  label:string ->
  ?guard:bool ->
  ?size:int ->
  (unit -> string) ->
  unit
(** Record one protocol message.  [~guard:false] exempts the message
    from fault-plan interception (audit-only messages such as the
    commutative canary, which predate the fault layer's rule matching)
    while still crossing the transport.  [size] is the declared transcript size
    in bytes (defaults to the payload length); when it exceeds the
    payload length the wire frame is zero-padded up to it, so socket
    byte counts match transcript totals even for messages whose modelled
    size includes unmaterialised bytes.  The payload thunk is never
    forced on a fault-free in-process link.

    On a remote link, when this process is the sender the payload is
    sent; when it is the receiver the frame is awaited and compared
    against the locally computed payload (mismatch ⇒
    {!Fault.Fault_detected} blamed on the receiving party); otherwise
    only the sequence number advances. *)

val deliver_rows :
  t ->
  phase:string ->
  sender:Transcript.party ->
  receiver:Transcript.party ->
  label:string ->
  ?guard:bool ->
  size:int ->
  (unit -> string list) ->
  unit
(** Record one row-wise protocol message.  Semantically identical to
    {!deliver} of the concatenated rows (same transcript entry, same
    sequence slot, same padding to [size]) — but on a fault-free remote
    link with a rows-capable transport the message travels as bounded
    chunks of (index, bytes) entries, incrementally verified at the
    receiver, so neither side materialises the whole relation.  On any
    other link (in-process, fault plan active, legacy transport) the
    rows collapse to one payload and the scalar path runs, preserving
    fault-injection semantics exactly; since a fault plan is part of the
    shared session announcement, every replica takes the same branch. *)

open Secmed_crypto
module Obs = Secmed_obs

(* ------------------------------------------------------------------ *)
(* Clocks. *)

type clock = { now : unit -> float; sleep : float -> unit }

let monotonic = { now = Secmed_obs.Clock.now; sleep = Unix.sleepf }

let manual ?(start = 0.0) () =
  let t = ref start in
  let advance d = if d > 0.0 then t := !t +. d in
  ({ now = (fun () -> !t); sleep = advance }, advance)

(* ------------------------------------------------------------------ *)
(* Backoff. *)

type backoff = {
  base : float;
  growth : float;
  max_delay : float;
  jitter : float;
  seed : int;
}

let backoff ?(base = 0.05) ?(factor = 2.0) ?(max_delay = 2.0) ?(jitter = 0.2) ?(seed = 0) ()
    =
  { base; growth = factor; max_delay; jitter; seed }

let no_backoff = backoff ~base:0.0 ~jitter:0.0 ()

let backoff_delay b ~attempt =
  if b.base <= 0.0 then 0.0
  else begin
    let raw = Float.min b.max_delay (b.base *. (b.growth ** float_of_int (attempt - 1))) in
    if b.jitter <= 0.0 then raw
    else begin
      (* A fresh child stream per (seed, attempt): the n-th delay is a pure
         function of the configuration, independent of draw order. *)
      let prng =
        Prng.split (Prng.of_int_seed b.seed) (Printf.sprintf "backoff-%d" attempt)
      in
      let u = float_of_int (Prng.uniform_int prng 1_000_000) /. 1_000_000.0 in
      raw *. (1.0 -. b.jitter +. (2.0 *. b.jitter *. u))
    end
  end

let backoff_schedule b ~attempts = List.init attempts (fun i -> backoff_delay b ~attempt:(i + 1))

(* ------------------------------------------------------------------ *)
(* Deadlines. *)

type deadline = {
  d_clock : clock;
  budget : float;
  start : float;
  mutable charged : float;  (* simulated seconds (injected link delays) *)
}

exception Deadline_exceeded of { phase : string; elapsed : float; budget : float }

let deadline clock ~budget = { d_clock = clock; budget; start = clock.now (); charged = 0.0 }
let unlimited clock = deadline clock ~budget:infinity

let elapsed d = d.d_clock.now () -. d.start +. d.charged
let remaining d = Float.max 0.0 (d.budget -. elapsed d)
let expired d = elapsed d > d.budget

(* Interned eagerly at module init: these are bumped from concurrent
   session workers, and [Lazy.force] is not reentrancy-safe across
   threads. *)
let deadline_trips = Obs.Metrics.counter "resilience.deadline.trips"

let check d ~phase =
  if expired d then begin
    let elapsed = elapsed d in
    Obs.Metrics.incr deadline_trips;
    if Obs.Trace.enabled () then
      Obs.Trace.event "deadline-exceeded"
        ~attrs:
          [
            ("phase", Obs.Json.Str phase);
            ("elapsed_s", Obs.Json.Float elapsed);
            ("budget_s", Obs.Json.Float d.budget);
          ];
    raise (Deadline_exceeded { phase; elapsed; budget = d.budget })
  end

let charge d ~phase seconds =
  d.charged <- d.charged +. Float.max 0.0 seconds;
  check d ~phase

let phase_budget d ~fraction = fraction *. remaining d

(* ------------------------------------------------------------------ *)
(* Circuit breakers. *)

type breaker_state = Closed | Open | Half_open

let breaker_state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type breaker_config = {
  window : int;
  failure_threshold : float;
  min_samples : int;
  cooldown : float;
  half_open_probes : int;
}

let default_breaker =
  { window = 16; failure_threshold = 0.5; min_samples = 4; cooldown = 1.0;
    half_open_probes = 1 }

type transition = { at : float; from_state : breaker_state; to_state : breaker_state }

type breaker = {
  config : breaker_config;
  b_clock : clock;
  b_party : Transcript.party;
  samples : bool Queue.t;  (* true = failure; newest at the back *)
  mutable failures : int;
  mutable state : breaker_state;
  mutable opened_at : float;
  mutable probes_left : int;
  mutable rev_transitions : transition list;
}

let breaker ?(config = default_breaker) clock party =
  {
    config;
    b_clock = clock;
    b_party = party;
    samples = Queue.create ();
    failures = 0;
    state = Closed;
    opened_at = 0.0;
    probes_left = 0;
    rev_transitions = [];
  }

let breaker_party b = b.b_party
let breaker_state b = b.state
let breaker_transitions b = List.rev b.rev_transitions

(* Pre-interned per target state: [transition] runs inside concurrent
   session workers, and the metrics registry itself is unsynchronised. *)
let transition_counters =
  List.map
    (fun st -> (st, Obs.Metrics.counter ("resilience.breaker." ^ breaker_state_name st)))
    [ Closed; Open; Half_open ]

let transition_counter to_state = List.assoc to_state transition_counters

let transition b to_state =
  let from_state = b.state in
  b.state <- to_state;
  b.rev_transitions <-
    { at = b.b_clock.now (); from_state; to_state } :: b.rev_transitions;
  Obs.Metrics.incr (transition_counter to_state);
  if Obs.Trace.enabled () then
    Obs.Trace.event "breaker"
      ~attrs:
        [
          ("party", Obs.Json.Str (Transcript.party_name b.b_party));
          ("from", Obs.Json.Str (breaker_state_name from_state));
          ("to", Obs.Json.Str (breaker_state_name to_state));
        ]

let reset_window b =
  Queue.clear b.samples;
  b.failures <- 0

let breaker_allow b =
  match b.state with
  | Closed | Half_open -> true
  | Open ->
    if b.b_clock.now () -. b.opened_at >= b.config.cooldown then begin
      b.probes_left <- Stdlib.max 1 b.config.half_open_probes;
      transition b Half_open;
      true
    end
    else false

let trip b =
  b.opened_at <- b.b_clock.now ();
  transition b Open

let breaker_record b ~ok =
  match b.state with
  | Open -> ()  (* a short-circuited request never reached the party *)
  | Half_open ->
    if ok then begin
      b.probes_left <- b.probes_left - 1;
      if b.probes_left <= 0 then begin
        reset_window b;
        transition b Closed
      end
    end
    else trip b
  | Closed ->
    Queue.push (not ok) b.samples;
    if not ok then b.failures <- b.failures + 1;
    if Queue.length b.samples > b.config.window then
      if Queue.pop b.samples then b.failures <- b.failures - 1;
    let n = Queue.length b.samples in
    if
      n >= b.config.min_samples
      && float_of_int b.failures >= b.config.failure_threshold *. float_of_int n
    then trip b

(* ------------------------------------------------------------------ *)
(* Policies and sessions. *)

type policy = {
  deadline_budget : float option;
  retry_backoff : backoff;
  breaker_config : breaker_config;
}

let default_policy =
  { deadline_budget = None; retry_backoff = backoff (); breaker_config = default_breaker }

(* A session may be shared by concurrent queries (the mediator server
   funnels every query without a private deadline through one long-lived
   session so breaker history accumulates across clients), so the
   breaker table and every breaker state transition are guarded by
   [s_mu].  The lock is held only around table lookups and the short
   pure state-machine steps — never across an attempt. *)
type session = {
  s_policy : policy;
  s_clock : clock;
  s_breakers : (Transcript.party, breaker) Hashtbl.t;
  s_mu : Mutex.t;
}

let session ?(policy = default_policy) ?(clock = monotonic) () =
  { s_policy = policy; s_clock = clock; s_breakers = Hashtbl.create 7; s_mu = Mutex.create () }

let session_policy s = s.s_policy
let session_clock s = s.s_clock

let breaker_for_unlocked s party =
  match Hashtbl.find_opt s.s_breakers party with
  | Some b -> b
  | None ->
    let b = breaker ~config:s.s_policy.breaker_config s.s_clock party in
    Hashtbl.add s.s_breakers party b;
    b

let breaker_for s party = Mutex.protect s.s_mu (fun () -> breaker_for_unlocked s party)

let breakers s =
  Mutex.protect s.s_mu (fun () -> Hashtbl.fold (fun _ b acc -> b :: acc) s.s_breakers [])

let breakers_json s =
  let sorted =
    List.sort
      (fun a b -> compare (Transcript.party_name a.b_party) (Transcript.party_name b.b_party))
      (breakers s)
  in
  Obs.Json.List
    (List.map
       (fun b ->
         Obs.Json.Obj
           [
             ("party", Obs.Json.Str (Transcript.party_name b.b_party));
             ("state", Obs.Json.Str (breaker_state_name b.state));
             ("transitions", Obs.Json.Int (List.length b.rev_transitions));
           ])
       sorted)

let new_deadline s =
  match s.s_policy.deadline_budget with
  | None -> unlimited s.s_clock
  | Some budget -> deadline s.s_clock ~budget

(* ------------------------------------------------------------------ *)
(* The attempt engine. *)

type 'a verdict =
  | Served of { value : 'a; attempts : int }
  | Exhausted of { failure : Fault.failure; attempts : int }
  | Timed_out of { phase : string; elapsed : float; budget : float; attempts : int }
  | Short_circuited of { party : Transcript.party; attempts : int }

let retries_counter = Obs.Metrics.counter "resilience.retries"
let short_circuits = Obs.Metrics.counter "resilience.short_circuits"
let backoff_hist = Obs.Metrics.histogram "resilience.backoff.seconds"

let execute ?session ~deadline ~label ~retryable ~budget ~parties_of attempt =
  let clock, backoff_cfg =
    match session with
    | None -> (monotonic, no_backoff)
    | Some s -> (s.s_clock, s.s_policy.retry_backoff)
  in
  (* An open breaker refuses the whole query up front: all parties are
     contacted in the request fan-out, so one silenced source means the
     attempt cannot serve anyway. *)
  let refused () =
    match session with
    | None -> None
    | Some s ->
      Mutex.protect s.s_mu (fun () ->
          Hashtbl.fold
            (fun party b acc ->
              match acc with
              | Some _ -> acc
              | None -> if breaker_allow b then None else Some party)
            s.s_breakers None)
  in
  (* Breakers guard datasources only: a fault blamed on the client or the
     mediator is not a reason to stop talking to either — there is nobody
     else to serve the query. *)
  let record ~ok parties =
    match session with
    | None -> ()
    | Some s ->
      Mutex.protect s.s_mu (fun () ->
          List.iter
            (fun party ->
              match (party : Transcript.party) with
              | Transcript.Source _ -> breaker_record (breaker_for_unlocked s party) ~ok
              | Transcript.Client | Transcript.Mediator | Transcript.Authority -> ())
            parties)
  in
  let rec go n =
    match refused () with
    | Some party ->
      Obs.Metrics.incr short_circuits;
      if Obs.Trace.enabled () then
        Obs.Trace.event "short-circuit"
          ~attrs:
            [
              ("scheme", Obs.Json.Str label);
              ("party", Obs.Json.Str (Transcript.party_name party));
            ];
      Short_circuited { party; attempts = n - 1 }
    | None -> (
      match check deadline ~phase:label with
      | exception Deadline_exceeded { phase; elapsed; budget = b } ->
        Timed_out { phase; elapsed; budget = b; attempts = n - 1 }
      | () -> (
        match attempt n with
        | Ok value ->
          record ~ok:true (parties_of value);
          Served { value; attempts = n }
        | Error (f : Fault.failure) ->
          record ~ok:false [ f.Fault.party ];
          if n < budget && retryable then begin
            (* The one retry path: every re-attempt is traced, whatever
               kind of fault provoked it. *)
            Obs.Metrics.incr retries_counter;
            Obs.Trace.event "retry"
              ~attrs:
                [
                  ("phase", Obs.Json.Str f.Fault.phase);
                  ("reason", Obs.Json.Str f.Fault.reason);
                  ("attempt", Obs.Json.Int n);
                ];
            let delay = backoff_delay backoff_cfg ~attempt:n in
            if delay > 0.0 then begin
              Obs.Metrics.observe backoff_hist delay;
              if Obs.Trace.enabled () then
                Obs.Trace.event "backoff"
                  ~attrs:
                    [ ("attempt", Obs.Json.Int n); ("delay_s", Obs.Json.Float delay) ];
              clock.sleep (Float.min delay (remaining deadline))
            end;
            go (n + 1)
          end
          else Exhausted { failure = f; attempts = n }
        | exception Deadline_exceeded { phase; elapsed; budget = b } ->
          (* A mid-attempt trip: an injected link delay charged the budget
             over the line (see Fault.set_delay_handler). *)
          Timed_out { phase; elapsed; budget = b; attempts = n }))
  in
  go 1

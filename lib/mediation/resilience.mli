(** Resilient mediation sessions: deadlines, backoff, circuit breakers.

    The mediator combines answers from autonomous datasources it does not
    control, so a production deployment needs more recovery moves than
    "restart the whole protocol a bounded number of times".  This module
    supplies the policy layer the protocol driver composes with
    (DESIGN.md §10):

    - {b deadline budgets} — a per-query wall-clock budget on a monotonic
      (and injectable) clock, charged both by real elapsed time and by
      simulated link delays (see {!Fault.set_delay_handler}), tripping a
      typed {!Deadline_exceeded} instead of hanging;
    - {b exponential backoff} with deterministic, seeded jitter between
      retry attempts;
    - {b per-party circuit breakers} (closed → open → half-open) over a
      sliding failure window, so a datasource that keeps producing faults
      is short-circuited instead of re-queried;
    - a generic {!execute} attempt engine tying the three together, used
      by [Protocol.run] / [Protocol.run_session] in [lib/core] (this
      library sits below [lib/core], so the engine is parametric in the
      attempt function rather than calling the drivers directly).

    Everything is deterministic under test: jitter is seeded, and every
    time source is a {!clock} value, so unit tests drive a {!manual}
    clock and never sleep.  State transitions are surfaced as
    [Secmed_obs] trace events and metrics (null-guarded: free when no
    collector is installed). *)

(* ------------------------------------------------------------------ *)
(** {1 Clocks} *)

type clock = {
  now : unit -> float;     (** monotonic seconds since an arbitrary origin *)
  sleep : float -> unit;   (** block for the given number of seconds *)
}

val monotonic : clock
(** The process clock: [Secmed_obs.Clock] for [now], [Unix.sleepf] for
    [sleep]. *)

val manual : ?start:float -> unit -> clock * (float -> unit)
(** A virtual clock for tests: [sleep d] advances the clock by [d]
    without blocking; the returned function advances it externally
    (e.g. to expire a breaker cooldown).  Never sleeps for real. *)

(* ------------------------------------------------------------------ *)
(** {1 Backoff} *)

type backoff
(** An exponential-backoff schedule: the delay after failed attempt [n]
    is [min max_delay (base * factor^(n-1))], scaled by a deterministic
    jitter factor drawn uniformly from [[1-jitter, 1+jitter)] using a
    {!Secmed_crypto.Prng} stream derived from [(seed, n)] — so the
    schedule is a pure function of the configuration. *)

val backoff :
  ?base:float ->
  ?factor:float ->
  ?max_delay:float ->
  ?jitter:float ->
  ?seed:int ->
  unit ->
  backoff
(** [base] — first delay in seconds, [<= 0.] disables (default 0.05);
    [factor] — growth per attempt (default 2.0); [max_delay] — pre-jitter
    cap in seconds (default 2.0); [jitter] — jitter fraction in [0,1]
    (default 0.2); [seed] — jitter seed (default 0). *)

val no_backoff : backoff
(** Zero delay everywhere: the pre-resilience immediate-retry behaviour. *)

val backoff_delay : backoff -> attempt:int -> float
(** Delay (seconds) to wait after failed attempt [attempt] (1-based). *)

val backoff_schedule : backoff -> attempts:int -> float list
(** [backoff_delay] for attempts [1..attempts]. *)

(* ------------------------------------------------------------------ *)
(** {1 Deadlines} *)

type deadline
(** A wall-clock budget for one query, measured on a {!clock} from the
    moment of creation.  Simulated time (injected link delays) is added
    via {!charge}. *)

exception Deadline_exceeded of { phase : string; elapsed : float; budget : float }
(** The typed failure a deadline trips with; [elapsed] includes charged
    simulated time. *)

val deadline : clock -> budget:float -> deadline
val unlimited : clock -> deadline
(** An infinite budget: {!check} never raises. *)

val elapsed : deadline -> float
val remaining : deadline -> float
(** Seconds left, clamped to [>= 0.] ([infinity] for {!unlimited}). *)

val expired : deadline -> bool

val check : deadline -> phase:string -> unit
(** Raise {!Deadline_exceeded} (and emit a [deadline-exceeded] trace
    event / metric) if the budget is spent. *)

val charge : deadline -> phase:string -> float -> unit
(** Consume [seconds] of simulated time, then {!check}.  Installed as the
    {!Fault.set_delay_handler} of a plan, this makes an injected [Delay]
    fault trip the deadline mid-protocol instead of being free. *)

val phase_budget : deadline -> fraction:float -> float
(** Apportionment rule: a phase may spend at most [fraction] of the
    budget still remaining when it starts (DESIGN.md §10). *)

(* ------------------------------------------------------------------ *)
(** {1 Circuit breakers} *)

type breaker_state = Closed | Open | Half_open

val breaker_state_name : breaker_state -> string

type breaker_config = {
  window : int;              (** sliding window of recent attempt outcomes *)
  failure_threshold : float; (** failure rate in the window that trips the breaker *)
  min_samples : int;         (** no tripping before this many samples *)
  cooldown : float;          (** seconds open before admitting a half-open probe *)
  half_open_probes : int;    (** consecutive probe successes required to close *)
}

val default_breaker : breaker_config
(** [{ window = 16; failure_threshold = 0.5; min_samples = 4;
      cooldown = 1.0; half_open_probes = 1 }] *)

type breaker
(** One breaker guards one {!Transcript.party} (normally a datasource).
    State machine: [Closed] admits everything and trips [Open] when the
    windowed failure rate reaches the threshold; [Open] rejects until
    [cooldown] has elapsed, then admits probes as [Half_open];
    [Half_open] closes after [half_open_probes] successes and re-opens on
    any failure.  Every transition is logged, emitted as a [breaker]
    trace event and counted in metrics. *)

val breaker : ?config:breaker_config -> clock -> Transcript.party -> breaker
val breaker_party : breaker -> Transcript.party
val breaker_state : breaker -> breaker_state

val breaker_allow : breaker -> bool
(** May a request to this party proceed right now?  On an [Open] breaker
    whose cooldown has elapsed this transitions to [Half_open] and
    admits the probe. *)

val breaker_record : breaker -> ok:bool -> unit
(** Feed one attempt outcome into the state machine. *)

type transition = { at : float; from_state : breaker_state; to_state : breaker_state }

val breaker_transitions : breaker -> transition list
(** In occurrence order, timestamped on the breaker's clock. *)

(* ------------------------------------------------------------------ *)
(** {1 Policies and sessions} *)

type policy = {
  deadline_budget : float option;  (** per-query budget, seconds; [None] = unlimited *)
  retry_backoff : backoff;
  breaker_config : breaker_config;
}

val default_policy : policy
(** No deadline, default backoff, default breakers. *)

type session
(** Long-lived resilience state shared across many queries: the policy,
    the clock, and one lazily-created breaker per party — so a source
    that keeps failing across successive queries trips its breaker and
    later queries short-circuit instead of re-probing it. *)

val session : ?policy:policy -> ?clock:clock -> unit -> session
val session_policy : session -> policy
val session_clock : session -> clock

val breaker_for : session -> Transcript.party -> breaker
(** The party's breaker, created [Closed] on first use. *)

val breakers : session -> breaker list
(** All breakers created so far, in no particular order. *)

val breakers_json : session -> Secmed_obs.Json.t
(** Every breaker as [{party; state; transitions}], sorted by party name
    — the ops-surface view a running mediator serves in its stats
    snapshot. *)

val new_deadline : session -> deadline
(** A fresh per-query deadline from the session policy and clock. *)

(* ------------------------------------------------------------------ *)
(** {1 The attempt engine} *)

type 'a verdict =
  | Served of { value : 'a; attempts : int }
  | Exhausted of { failure : Fault.failure; attempts : int }
      (** every admitted attempt failed and the retry budget is spent *)
  | Timed_out of { phase : string; elapsed : float; budget : float; attempts : int }
      (** the deadline tripped (before an attempt, or mid-attempt via
          {!charge}) *)
  | Short_circuited of { party : Transcript.party; attempts : int }
      (** an open breaker refused the request without contacting the party *)

val execute :
  ?session:session ->
  deadline:deadline ->
  label:string ->
  retryable:bool ->
  budget:int ->
  parties_of:('a -> Transcript.party list) ->
  (int -> ('a, Fault.failure) result) ->
  'a verdict
(** Run up to [budget] attempts of the given function (called with the
    1-based attempt number).  Before each attempt: consult the session
    breakers (any breaker refusing yields [Short_circuited]) and the
    deadline.  After a failure: record it on the blamed party's breaker,
    emit the [retry] trace event, wait out the backoff delay on the
    session clock (capped at the remaining deadline), and try again —
    only while [retryable] holds and budget remains.  After a success:
    record it on the breakers of every party [parties_of] reports
    involved.  Breakers are kept for datasource parties only — a failure
    blamed on the client or the mediator never opens a circuit, since
    there is nobody else to serve the query.  Without a [session] there
    are no breakers and no backoff (the engine behaves exactly like the
    legacy immediate-retry loop, retry tracing included). *)

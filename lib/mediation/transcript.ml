type party =
  | Client
  | Mediator
  | Source of int
  | Authority

let party_name = function
  | Client -> "Client"
  | Mediator -> "Mediator"
  | Source i -> Printf.sprintf "Source%d" i
  | Authority -> "CA"

let party_equal (a : party) (b : party) = a = b

type message = {
  seq : int;
  sender : party;
  receiver : party;
  label : string;
  size : int;
}

type note = { at_seq : int; text : string }

type t = {
  mutable rev_messages : message list;
  mutable rev_notes : note list;
  mutable next_seq : int;
  (* Running totals, maintained by [record] so the hot accessors don't
     re-walk the message list on every call. *)
  mutable n_bytes : int;
}

let create () = { rev_messages = []; rev_notes = []; next_seq = 0; n_bytes = 0 }

let record t ~sender ~receiver ~label ~size =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.rev_messages <- { seq; sender; receiver; label; size } :: t.rev_messages;
  t.n_bytes <- t.n_bytes + size;
  if Secmed_obs.Trace.enabled () then
    Secmed_obs.Trace.event "message"
      ~attrs:
        [
          ("from", Secmed_obs.Json.Str (party_name sender));
          ("to", Secmed_obs.Json.Str (party_name receiver));
          ("label", Secmed_obs.Json.Str label);
          ("bytes", Secmed_obs.Json.Int size);
        ];
  if Secmed_obs.Metrics.recording () then begin
    Secmed_obs.Metrics.(incr (counter "transcript.messages"));
    Secmed_obs.Metrics.(observe (histogram "transcript.message_bytes") (float_of_int size))
  end

let note t text =
  t.rev_notes <- { at_seq = t.next_seq; text } :: t.rev_notes;
  if Secmed_obs.Trace.enabled () then
    Secmed_obs.Trace.event "note" ~attrs:[ ("text", Secmed_obs.Json.Str text) ]

let notes t = List.rev t.rev_notes

let messages t = List.rev t.rev_messages

let message_count t = t.next_seq

let total_bytes t = t.n_bytes

let bytes_on_link t sender receiver =
  List.fold_left
    (fun acc m ->
      if party_equal m.sender sender && party_equal m.receiver receiver then acc + m.size
      else acc)
    0 t.rev_messages

let bytes_sent_by t party =
  List.fold_left
    (fun acc m -> if party_equal m.sender party then acc + m.size else acc)
    0 t.rev_messages

let bytes_received_by t party =
  List.fold_left
    (fun acc m -> if party_equal m.receiver party then acc + m.size else acc)
    0 t.rev_messages

let sends_by t party =
  List.fold_left
    (fun acc m -> if party_equal m.sender party then acc + 1 else acc)
    0 t.rev_messages

let rounds t a b =
  let on_link m =
    (party_equal m.sender a && party_equal m.receiver b)
    || (party_equal m.sender b && party_equal m.receiver a)
  in
  let link_messages = List.filter on_link (messages t) in
  let count, _ =
    List.fold_left
      (fun (count, previous) m ->
        match previous with
        | Some p when party_equal p m.sender -> (count, previous)
        | Some _ | None -> (count + 1, Some m.sender))
      (0, None) link_messages
  in
  count

let parties t =
  List.fold_left
    (fun acc m ->
      let add acc p = if List.exists (party_equal p) acc then acc else acc @ [ p ] in
      add (add acc m.sender) m.receiver)
    [] (messages t)

let labels_seen_by t party =
  List.filter_map
    (fun m -> if party_equal m.receiver party then Some m.label else None)
    (messages t)

let flow_diagram t =
  let ps = Array.of_list (parties t) in
  let n = Array.length ps in
  let position p =
    let rec go i = if party_equal ps.(i) p then i else go (i + 1) in
    go 0
  in
  let col_width = 24 in
  let buf = Buffer.create 1024 in
  let center width s =
    let pad = width - String.length s in
    if pad <= 0 then s
    else String.make (pad / 2) ' ' ^ s ^ String.make (pad - (pad / 2)) ' '
  in
  Array.iter (fun p -> Buffer.add_string buf (center col_width (party_name p))) ps;
  Buffer.add_char buf '\n';
  Array.iter (fun _ -> Buffer.add_string buf (center col_width "|")) ps;
  Buffer.add_char buf '\n';
  List.iter
    (fun m ->
      let a = position m.sender and b = position m.receiver in
      let lo = Stdlib.min a b and hi = Stdlib.max a b in
      let annotation = Printf.sprintf "%s (%dB)" m.label m.size in
      let line = Bytes.make (n * col_width) ' ' in
      for i = 0 to n - 1 do
        Bytes.set line ((i * col_width) + (col_width / 2)) '|'
      done;
      let start = (lo * col_width) + (col_width / 2) + 1 in
      let stop = (hi * col_width) + (col_width / 2) - 1 in
      for i = start to stop do
        Bytes.set line i '-'
      done;
      if a < b then Bytes.set line stop '>' else Bytes.set line start '<';
      (* Fit the annotation between the arrow ends, eliding the tail when
         the span is too narrow. *)
      let available = stop - start - 2 in
      let annotation =
        if String.length annotation <= available then annotation
        else if available <= 2 then ""
        else String.sub annotation 0 (available - 2) ^ ".."
      in
      let label_start = start + 1 + ((available - String.length annotation) / 2) in
      String.iteri
        (fun i c ->
          let pos = label_start + i in
          if pos > start && pos < stop then Bytes.set line pos c)
        annotation;
      Buffer.add_string buf (Bytes.to_string line);
      Buffer.add_char buf '\n')
    (messages t);
  Buffer.contents buf

let summary t =
  let links = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun m ->
      let key = (m.sender, m.receiver) in
      match Hashtbl.find_opt links key with
      | Some (count, bytes) -> Hashtbl.replace links key (count + 1, bytes + m.size)
      | None ->
        Hashtbl.add links key (1, m.size);
        order := key :: !order)
    (messages t);
  let buf = Buffer.create 256 in
  List.iter
    (fun ((sender, receiver) as key) ->
      let count, bytes = Hashtbl.find links key in
      Buffer.add_string buf
        (Printf.sprintf "%-10s -> %-10s : %3d message%s %8d bytes\n" (party_name sender)
           (party_name receiver) count
           (if count = 1 then ", " else "s,")
           bytes))
    (List.rev !order);
  Buffer.add_string buf
    (Printf.sprintf "total: %d messages, %d bytes\n" (message_count t) (total_bytes t));
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "note (seq %d): %s\n" n.at_seq n.text))
    (notes t);
  Buffer.contents buf

(** Message transcripts.

    Every protocol message is recorded with sender, receiver, label and
    exact wire size, so the benchmark harness can report communication
    volumes, interaction counts and message-flow diagrams (Figures 1/2),
    and the leakage analysis can reason about what each party observed. *)

type party =
  | Client
  | Mediator
  | Source of int  (** 1-based, matching the paper's S1, S2 *)
  | Authority

val party_name : party -> string
val party_equal : party -> party -> bool

type message = {
  seq : int;
  sender : party;
  receiver : party;
  label : string;  (** e.g. "partial-query", "encrypted-coefficients" *)
  size : int;      (** wire bytes *)
}

(** Out-of-band annotation attached to the transcript at a message
    position — injected faults, retries, and other events the
    communication accounting must stay truthful about. *)
type note = {
  at_seq : int;  (** sequence number the note precedes *)
  text : string;
}

type t

val create : unit -> t
val record : t -> sender:party -> receiver:party -> label:string -> size:int -> unit
val note : t -> string -> unit
val notes : t -> note list
(** In insertion order; also appended to {!summary}. *)

val messages : t -> message list
(** In transmission order. *)

val message_count : t -> int
val total_bytes : t -> int

val bytes_on_link : t -> party -> party -> int
(** Bytes sent from the first party to the second. *)

val bytes_sent_by : t -> party -> int
val bytes_received_by : t -> party -> int

val sends_by : t -> party -> int
(** Number of messages the party sent — the paper's "interactions". *)

val rounds : t -> party -> party -> int
(** Alternation count on the (unordered) link: the number of maximal runs
    of consecutive same-direction messages between the two parties. *)

val parties : t -> party list
(** All parties appearing, in order of first appearance. *)

val labels_seen_by : t -> party -> string list
(** Labels of messages the party received (what it observed). *)

val flow_diagram : t -> string
(** ASCII sequence diagram of the message flow (regenerates the shape of
    the paper's architecture figures from actual executions). *)

val summary : t -> string
(** Per-link message and byte counts. *)

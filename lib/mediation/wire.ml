open Secmed_bigint
open Secmed_crypto

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun msg -> raise (Malformed msg)) fmt

type writer = Buffer.t

let writer () = Buffer.create 128

let write_int buf v =
  for i = 7 downto 0 do
    Buffer.add_char buf (Char.chr ((v lsr (i * 8)) land 0xff))
  done

let write_raw = Buffer.add_string

let write_string buf s =
  Buffer.add_string buf (Bytes_util.be32 (String.length s));
  Buffer.add_string buf s

let write_bigint buf v = write_string buf (Bigint.to_bytes_be v)

let write_list buf write_elem items =
  Buffer.add_string buf (Bytes_util.be32 (List.length items));
  List.iter write_elem items

let contents = Buffer.contents

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }

let remaining r = String.length r.data - r.pos

let need r n =
  if n < 0 then malformed "negative field length %d at offset %d" n r.pos;
  if r.pos + n > String.length r.data then
    malformed "truncated message: need %d bytes at offset %d, %d remain" n r.pos (remaining r)

let read_int r =
  need r 8;
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code r.data.[r.pos + i]
  done;
  r.pos <- r.pos + 8;
  !v

let read_string r =
  need r 4;
  let len = Bytes_util.read_be32 r.data r.pos in
  r.pos <- r.pos + 4;
  need r len;
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let read_bigint r = Bigint.of_bytes_be (read_string r)

let read_list r read_elem =
  need r 4;
  let count = Bytes_util.read_be32 r.data r.pos in
  r.pos <- r.pos + 4;
  (* A corrupted count must not drive the allocation: every element
     consumes at least one byte of the remaining input, so the count is
     bounded by it. *)
  if count > remaining r then
    malformed "list count %d exceeds the %d remaining bytes" count (remaining r);
  List.init count (fun _ -> read_elem ())

let at_end r = r.pos = String.length r.data

let expect_end r =
  if not (at_end r) then malformed "%d trailing bytes at offset %d" (remaining r) r.pos

(* ------------------------------------------------------------------ *)
(* Stream framing *)

let frame body = Bytes_util.be32 (String.length body) ^ body

module Stream = struct
  type t = {
    mutable buf : Bytes.t;
    mutable start : int;  (* offset of the first unconsumed byte *)
    mutable len : int;    (* unconsumed bytes from [start] *)
    max_frame : int;
    mutable disposed : bool;
  }

  let default_max_frame = 1 lsl 26

  (* Reassembly buffers are the first memory a fast peer can balloon, so
     their capacity is charged to a high-water region: the stream bench
     asserts this stays flat while row counts scale 1000x. *)
  let hwm = Secmed_obs.Hwm.region "wire.stream"

  let create ?(max_frame = default_max_frame) () =
    if max_frame <= 0 then invalid_arg "Wire.Stream.create: max_frame must be positive";
    Secmed_obs.Hwm.alloc hwm 4096;
    { buf = Bytes.create 4096; start = 0; len = 0; max_frame; disposed = false }

  let buffered t = t.len
  let capacity t = Bytes.length t.buf

  let dispose t =
    if not t.disposed then begin
      t.disposed <- true;
      Secmed_obs.Hwm.release hwm (Bytes.length t.buf)
    end

  (* Make room for [extra] more bytes after the unconsumed region,
     compacting to the front and doubling the buffer as needed. *)
  let ensure t extra =
    let need = t.len + extra in
    if t.start > 0 && t.start + need > Bytes.length t.buf then begin
      Bytes.blit t.buf t.start t.buf 0 t.len;
      t.start <- 0
    end;
    if need > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf) in
      while !cap < need do
        cap := !cap * 2
      done;
      let grown = Bytes.create !cap in
      Bytes.blit t.buf t.start grown 0 t.len;
      if not t.disposed then Secmed_obs.Hwm.alloc hwm (!cap - Bytes.length t.buf);
      t.buf <- grown;
      t.start <- 0
    end

  let feed_bytes t b ~off ~len =
    if off < 0 || len < 0 || off > Bytes.length b - len then
      invalid_arg "Wire.Stream.feed_bytes";
    ensure t len;
    Bytes.blit b off t.buf (t.start + t.len) len;
    t.len <- t.len + len

  let feed t s =
    let len = String.length s in
    ensure t len;
    Bytes.blit_string s 0 t.buf (t.start + t.len) len;
    t.len <- t.len + len

  (* Zero-copy receive: a transport reads from the socket directly into
     the reassembly buffer instead of through its own scratch buffer.
     [reserve] hands back the write window, [commit] publishes however
     many bytes the read actually produced.  The window is invalidated
     by any other mutation of the stream, so the pattern is strictly
     reserve -> read -> commit with nothing in between. *)
  let reserve t n =
    if n <= 0 then invalid_arg "Wire.Stream.reserve";
    ensure t n;
    (t.buf, t.start + t.len)

  let commit t n =
    if n < 0 || t.start + t.len + n > Bytes.length t.buf then
      invalid_arg "Wire.Stream.commit";
    t.len <- t.len + n

  let next_frame t =
    if t.len < 4 then None
    else begin
      let n = Bytes_util.read_be32 (Bytes.unsafe_to_string t.buf) t.start in
      if n > t.max_frame then
        malformed "stream frame of %d bytes exceeds the %d-byte cap" n t.max_frame;
      if t.len < 4 + n then None
      else begin
        let body = Bytes.sub_string t.buf (t.start + 4) n in
        t.start <- t.start + 4 + n;
        t.len <- t.len - 4 - n;
        if t.len = 0 then t.start <- 0;
        Some body
      end
    end
end

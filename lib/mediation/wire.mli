(** Length-delimited binary wire format.

    Everything a party transmits is serialized through this module so that
    communication volumes in the transcripts are real byte counts, not
    estimates.

    Readers are hardened against adversarial input: every [read_*] either
    returns a value or raises {!Malformed} — never [Invalid_argument], an
    out-of-bounds access, or an attempt to allocate a structure larger than
    the message that claims to contain it. *)

exception Malformed of string
(** The only failure readers are allowed to surface. *)

type writer

val writer : unit -> writer
val write_int : writer -> int -> unit
(** 8-byte big-endian. *)

val write_string : writer -> string -> unit
(** 4-byte length prefix + bytes. *)

val write_bigint : writer -> Secmed_bigint.Bigint.t -> unit
(** Non-negative values only. *)

val write_list : writer -> ('a -> unit) -> 'a list -> unit
(** 4-byte count followed by each element written by the callback. *)

val contents : writer -> string

type reader

val reader : string -> reader
val remaining : reader -> int
(** Bytes left to read. *)

val read_int : reader -> int
val read_string : reader -> string
val read_bigint : reader -> Secmed_bigint.Bigint.t

val read_list : reader -> (unit -> 'a) -> 'a list
(** The declared count is capped by the remaining bytes before any element
    is read, so a corrupted count prefix cannot drive a huge allocation. *)

val at_end : reader -> bool
val expect_end : reader -> unit
(** Raises {!Malformed} when bytes remain. *)

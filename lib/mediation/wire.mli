(** Length-delimited binary wire format.

    Everything a party transmits is serialized through this module so that
    communication volumes in the transcripts are real byte counts, not
    estimates.

    Readers are hardened against adversarial input: every [read_*] either
    returns a value or raises {!Malformed} — never [Invalid_argument], an
    out-of-bounds access, or an attempt to allocate a structure larger than
    the message that claims to contain it. *)

exception Malformed of string
(** The only failure readers are allowed to surface. *)

type writer

val writer : unit -> writer
val write_int : writer -> int -> unit
(** 8-byte big-endian. *)

val write_raw : writer -> string -> unit
(** Bytes as-is, no length prefix — for fixed-width canonical encodings
    whose framing is implied by the schema. *)

val write_string : writer -> string -> unit
(** 4-byte length prefix + bytes. *)

val write_bigint : writer -> Secmed_bigint.Bigint.t -> unit
(** Non-negative values only. *)

val write_list : writer -> ('a -> unit) -> 'a list -> unit
(** 4-byte count followed by each element written by the callback. *)

val contents : writer -> string

type reader

val reader : string -> reader
val remaining : reader -> int
(** Bytes left to read. *)

val read_int : reader -> int
val read_string : reader -> string
val read_bigint : reader -> Secmed_bigint.Bigint.t

val read_list : reader -> (unit -> 'a) -> 'a list
(** The declared count is capped by the remaining bytes before any element
    is read, so a corrupted count prefix cannot drive a huge allocation. *)

val at_end : reader -> bool
val expect_end : reader -> unit
(** Raises {!Malformed} when bytes remain. *)

val frame : string -> string
(** [frame body] length-prefixes [body] with its 4-byte big-endian size,
    producing the unit a stream transport writes; {!Stream} is the
    matching decoder. *)

(** Incremental frame decoder for stream transports.

    A TCP read returns an arbitrary chunk of the byte stream — possibly
    half a length prefix, possibly three frames and the beginning of a
    fourth.  [Stream] buffers whatever arrives and hands back complete
    frame bodies, whatever the chunk boundaries were: feeding a byte
    string split at {e any} offset yields the same frames as feeding it
    whole (tested at every 1-byte offset in [test_net.ml]). *)
module Stream : sig
  type t

  val create : ?max_frame:int -> unit -> t
  (** [max_frame] caps the declared size of a single frame (default
      64 MiB) so a corrupted or hostile length prefix cannot drive an
      unbounded allocation. *)

  val feed : t -> string -> unit
  (** Append a chunk of the byte stream to the buffer. *)

  val feed_bytes : t -> Bytes.t -> off:int -> len:int -> unit
  (** [feed] from a [Bytes.t] slice (what [Unix.read] fills) without an
      intermediate copy of the whole buffer. *)

  val next_frame : t -> string option
  (** The next complete frame body, consuming it from the buffer, or
      [None] if the buffered bytes do not yet hold one.  Raises
      {!Malformed} when a length prefix exceeds the [max_frame] cap. *)

  val buffered : t -> int
  (** Bytes fed but not yet consumed by {!next_frame}. *)

  val capacity : t -> int
  (** Current size of the underlying buffer (monotone; grows to the
      largest frame seen). *)

  val reserve : t -> int -> Bytes.t * int
  (** [reserve t n] makes room for at least [n] more bytes and returns
      the buffer and the offset of the write window, so a transport can
      [Unix.read] straight into the reassembly buffer — no per-read
      scratch allocation, no copy.  The window is invalidated by any
      other call on [t]; follow with {!commit} before touching the
      stream again. *)

  val commit : t -> int -> unit
  (** [commit t n] publishes [n] bytes written into the window returned
      by the matching {!reserve}.  Raises [Invalid_argument] when [n]
      overruns the reservation. *)

  val dispose : t -> unit
  (** Return the buffer's bytes to the ["wire.stream"] high-water
      region (idempotent).  Call when the owning connection closes. *)
end

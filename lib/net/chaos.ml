open Secmed_mediation

type t = {
  listen_fd : Unix.file_descr;
  port : int;
  plan : Fault.plan;
  plan_mu : Mutex.t;  (* rule counters and the event log are shared by both pumps *)
  target : string * int;
  mu : Mutex.t;
  mutable conns : (Io.conn * Io.conn) list;
  mutable stopped : bool;
}

let detail fmt = Printf.ksprintf Fun.id fmt

(* Forward one decoded frame, applying at most one rule.  Returns
   [false] when the stream was deliberately wrecked (truncation) and
   pumping must stop. *)
let forward t dst frame body =
  match frame with
  | Frame.Msg m -> (
    let verdict =
      Mutex.protect t.plan_mu (fun () ->
          match
            Fault.select t.plan ~sender:m.sender ~receiver:m.receiver ~label:m.label
          with
          | None -> None
          | Some action ->
            let log d = Fault.log_external t.plan ~sender:m.sender ~receiver:m.receiver ~label:m.label ~action d in
            (match action with
            | Fault.Drop -> log (detail "proxy withheld the %d-byte frame" (String.length body))
            | Fault.Delay s -> log (detail "proxy stalled the stream %.3fs" s)
            | Fault.Corrupt n -> log (detail "proxy flipped bits in %d payload bytes" n)
            | Fault.Duplicate -> log "proxy replayed the frame"
            | Fault.Truncate n ->
              log (detail "proxy cut %d trailing bytes and severed the connection" n));
            Some action)
    in
    match verdict with
    | None ->
      Io.send_frame dst body;
      true
    | Some Fault.Drop -> true
    | Some (Fault.Delay s) ->
      Thread.delay s;
      Io.send_frame dst body;
      true
    | Some (Fault.Corrupt n) ->
      let corrupted =
        Mutex.protect t.plan_mu (fun () -> Fault.corrupt_bytes t.plan ~count:n m.payload)
      in
      Io.send_frame dst (Frame.encode (Frame.Msg { m with payload = corrupted }));
      true
    | Some Fault.Duplicate ->
      Io.send_frame dst body;
      Io.send_frame dst body;
      true
    | Some (Fault.Truncate n) ->
      let whole = Wire.frame body in
      let keep = max 0 (String.length whole - max 1 n) in
      Io.send_raw dst (String.sub whole 0 keep);
      false)
  | _ ->
    Io.send_frame dst body;
    true

let pump t src dst =
  let rec loop () =
    let body = Io.recv_frame src in
    match Frame.decode body with
    | frame -> if forward t dst frame body then loop ()
    | exception Wire.Malformed _ ->
      (* Not ours to interpret; pass the bytes through untouched. *)
      Io.send_frame dst body;
      loop ()
  in
  (try loop () with Io.Transport_error _ -> ());
  Io.close src;
  Io.close dst

let start ~plan ~target_host ~target_port ?(port = 0) ?listen () =
  let listen_fd, port =
    match listen with Some bound -> bound | None -> Io.listen ~port ()
  in
  let t =
    {
      listen_fd;
      port;
      plan;
      plan_mu = Mutex.create ();
      target = (target_host, target_port);
      mu = Mutex.create ();
      conns = [];
      stopped = false;
    }
  in
  let accept_loop () =
    let rec loop () =
      match Io.accept listen_fd with
      | inbound ->
        (match Io.connect ~host:(fst t.target) ~port:(snd t.target) () with
        | outbound ->
          Mutex.protect t.mu (fun () -> t.conns <- (inbound, outbound) :: t.conns);
          ignore (Thread.create (fun () -> pump t inbound outbound) () : Thread.t);
          ignore (Thread.create (fun () -> pump t outbound inbound) () : Thread.t)
        | exception Io.Transport_error _ -> Io.close inbound);
        loop ()
      | exception Io.Transport_error _ -> ()  (* listener closed: stop *)
    in
    loop ()
  in
  ignore (Thread.create accept_loop () : Thread.t);
  t

let port t = t.port
let plan t = t.plan

let stop t =
  Mutex.protect t.mu (fun () ->
      if not t.stopped then begin
        t.stopped <- true;
        (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
        List.iter
          (fun (a, b) ->
            Io.close a;
            Io.close b)
          t.conns;
        t.conns <- []
      end)

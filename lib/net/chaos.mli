(** A fault-injecting TCP proxy: the {!Secmed_mediation.Fault} rule
    table replayed against live byte streams.

    Interpose an instance on a mediator↔datasource link and it decodes
    the frames flowing through, matches [Msg] frames against the plan's
    rules by (sender, receiver, label) — consuming [times] counters
    exactly as the simulated layer does — and damages the stream for
    real: dropped frames are never forwarded, delays stall the socket,
    corruption flips payload bits, truncation cuts a frame short and
    kills the connection.  The conformance suite checks that each
    surfaces as the same typed outcome as its simulated counterpart.

    Everything it does is appended to the plan's event log via
    {!Fault.log_external}. *)

open Secmed_mediation

type t

val start :
  plan:Fault.plan ->
  target_host:string ->
  target_port:int ->
  ?port:int ->
  ?listen:Unix.file_descr * int ->
  unit ->
  t
(** Listen (default: an ephemeral port on 127.0.0.1; [listen] supplies
    an already-bound socket instead, so a harness can reserve ports
    before forking) and, per accepted connection, dial the target and
    pump frames both ways through the rule table. *)

val port : t -> int
(** Where to point the party that believes it is dialing the target. *)

val plan : t -> Fault.plan
(** The live plan — its event log accumulates what the proxy did. *)

val stop : t -> unit
(** Close the listener and every live proxied connection. *)

open Secmed_mediation
module Obs = Secmed_obs
module Protocol = Secmed_core.Protocol

exception Aborted of Fault.failure

module Mux = struct
  type t = {
    conn : Io.conn;
    mu : Mutex.t;
    subs : (int, Frame.t Queue.t) Hashtbl.t;
    closed : (int, unit) Hashtbl.t;
    closed_order : int Queue.t;  (* tombstone insertion order, for FIFO eviction *)
    max_tombstones : int;
    control : Frame.t Queue.t;
    mutable dropped : int;  (* frames discarded because their session was closed *)
    mutable dead : string option;
  }

  (* Routing must not depend on a consumer having subscribed yet: the
     recv thread sees a session's [Session_start] and, microseconds
     later, the [Msg] frames behind it — before any control-loop thread
     has had a chance to react.  So the first frame of an unknown
     session creates its queue and parks there.  Every [Session_start]
     is additionally announced on the control queue (a daemon spawns a
     handler on the first announcement per session and ignores the
     rest) — "every", because after a severed-and-redialed connection
     the announcement may not be the session's first frame on this mux.
     Frames for a session that was unsubscribed (finished) are
     dropped. *)
  let route t frame =
    Mutex.protect t.mu (fun () ->
        match Frame.session_of frame with
        | None -> Queue.push frame t.control
        | Some sid when Hashtbl.mem t.closed sid -> t.dropped <- t.dropped + 1
        | Some sid ->
          let q =
            match Hashtbl.find_opt t.subs sid with
            | Some q -> q
            | None ->
              let q = Queue.create () in
              Hashtbl.replace t.subs sid q;
              q
          in
          Queue.push frame q;
          (match frame with
          | Frame.Session_start _ -> Queue.push frame t.control
          | _ -> ()))

  let create ?(max_tombstones = 1024) conn =
    let t =
      { conn; mu = Mutex.create (); subs = Hashtbl.create 8; closed = Hashtbl.create 8;
        closed_order = Queue.create (); max_tombstones = max max_tombstones 1;
        control = Queue.create (); dropped = 0; dead = None }
    in
    let rec recv_loop () =
      match Frame.decode (Io.recv_frame conn) with
      | frame ->
        route t frame;
        recv_loop ()
      | exception Io.Transport_error msg -> t.dead <- Some msg
      | exception Wire.Malformed msg -> t.dead <- Some ("malformed frame: " ^ msg)
    in
    ignore (Thread.create recv_loop () : Thread.t);
    t

  let conn t = t.conn
  let alive t = Mutex.protect t.mu (fun () -> t.dead = None)
  let send t frame = Io.send_frame t.conn (Frame.encode frame)

  (* Subscribing clears any tombstone for the id: a session id revived
     after an epoch bump (the server pairs every reuse with an epoch
     increment, and the transport's epoch filter skips the stale frames)
     must be routable again, not silently dropped. *)
  let subscribe t sid =
    Mutex.protect t.mu (fun () ->
        Hashtbl.remove t.closed sid;
        if not (Hashtbl.mem t.subs sid) then Hashtbl.replace t.subs sid (Queue.create ()))

  (* Tombstones are bounded: eviction is FIFO over insertion order, so a
     long-lived pooled connection serving an unbounded session stream
     keeps O(max_tombstones) state.  [closed_order] may hold stale ids
     whose tombstone a later [subscribe] already cleared; popping those
     is a harmless no-op, and the queue is always at least as long as
     the table, so the loop terminates. *)
  let unsubscribe t sid =
    Mutex.protect t.mu (fun () ->
        Hashtbl.remove t.subs sid;
        if not (Hashtbl.mem t.closed sid) then begin
          Hashtbl.replace t.closed sid ();
          Queue.push sid t.closed_order;
          while Hashtbl.length t.closed > t.max_tombstones do
            match Queue.take_opt t.closed_order with
            | Some old -> Hashtbl.remove t.closed old
            | None -> Hashtbl.reset t.closed
          done
        end)

  let tombstones t = Mutex.protect t.mu (fun () -> Hashtbl.length t.closed)
  let dropped t = Mutex.protect t.mu (fun () -> t.dropped)

  (* The stdlib has no timed condition wait, so waiting is a polling
     loop at 1 ms granularity — coarse enough to stay invisible next to
     crypto, fine enough not to matter against I/O timeouts. *)
  let wait t ~timeout ~what q_of =
    let deadline = if timeout > 0. then Unix.gettimeofday () +. timeout else infinity in
    let rec loop () =
      let item, dead =
        Mutex.protect t.mu (fun () ->
            let q = q_of () in
            ((if Queue.is_empty q then None else Some (Queue.pop q)), t.dead))
      in
      match item with
      | Some frame -> frame
      | None ->
        (match dead with
        | Some msg -> raise (Io.Transport_error (Printf.sprintf "%s: %s" what msg))
        | None -> ());
        if Unix.gettimeofday () > deadline then
          raise (Io.Transport_error (Printf.sprintf "%s: timeout" what));
        Thread.delay 0.001;
        loop ()
    in
    loop ()

  let next t ~session ~timeout =
    wait t ~timeout ~what:(Printf.sprintf "session %d" session) (fun () ->
        match Hashtbl.find_opt t.subs session with
        | Some q -> q
        | None -> invalid_arg "Mux.next: session not subscribed")

  let next_control t ~timeout = wait t ~timeout ~what:"control" (fun () -> t.control)
end

type route = { r_send : Frame.t -> unit; r_next : timeout:float -> Frame.t }

(* Interned eagerly at module init (single-threaded, main domain):
   [Lazy.force] from two domains at once raises [Undefined], and these
   counters are bumped from recv threads and session workers that may
   live in loadgen worker domains. *)
let frames_out = Obs.Metrics.counter "net.frames.out"
let frames_in = Obs.Metrics.counter "net.frames.in"
let payload_out = Obs.Metrics.counter "net.payload.out"
let payload_in = Obs.Metrics.counter "net.payload.in"

let trace_frame dir ~phase ~party ~label ~size =
  if Obs.Trace.enabled () then
    Obs.Trace.event ("net." ^ dir)
      ~attrs:
        [
          ("phase", Obs.Json.Str phase);
          ("party", Obs.Json.Str (Transcript.party_name party));
          ("label", Obs.Json.Str label);
          ("bytes", Obs.Json.Int size);
        ]

let transport ~role ~session ~epoch ~io_timeout ~route_of ?(after_io = fun ~phase:_ -> ())
    () =
  let send ~phase ~seq ~sender ~receiver ~label ~size payload =
    match route_of receiver with
    | None -> ()
    | Some r ->
      (try
         r.r_send
           (Frame.Msg
              { session; epoch = epoch (); seq; sender; receiver; label; declared = size; payload })
       with Io.Transport_error msg ->
         (* The link itself is down: a typed, retryable fault blamed at
            the unreachable party, like a simulated severed link. *)
         Fault.fail ~phase ~party:receiver (label ^ ": link down: " ^ msg));
      Obs.Metrics.incr frames_out;
      Obs.Metrics.incr ~by:size payload_out;
      trace_frame "send" ~phase ~party:receiver ~label ~size;
      after_io ~phase
  in
  let recv ~phase ~seq ~sender ~receiver ~label ~size:_ =
    match route_of sender with
    | None -> Fault.fail ~phase ~party:receiver (label ^ ": no route to its sender")
    | Some r ->
      let here = epoch () in
      let rec go () =
        match r.r_next ~timeout:io_timeout with
        | Frame.Msg m when m.epoch = here && m.seq = seq ->
          if not (Transcript.party_equal m.sender sender) || not (String.equal m.label label)
          then
            Fault.fail ~phase ~party:receiver
              (Printf.sprintf "frame #%d: expected %s from %s, got %s from %s" seq label
                 (Transcript.party_name sender) m.label (Transcript.party_name m.sender))
          else m.payload
        | Frame.Msg m when m.epoch < here || (m.epoch = here && m.seq < seq) ->
          (* A replay (chaos Duplicate) or a leftover of an aborted
             attempt: the filter is what makes retries safe. *)
          go ()
        | Frame.Msg m ->
          Fault.fail ~phase ~party:receiver
            (Printf.sprintf "%s: frame gap: awaiting #%d of epoch %d, got #%d of epoch %d"
               label seq here m.seq m.epoch)
        | Frame.Abort { epoch = e; failure; _ } when e >= here -> raise (Aborted failure)
        | Frame.Abort _ | Frame.Report _ -> go ()
        | Frame.Session_start { epoch = e; _ } when e <= here -> go ()
        (* Span traffic is observability, never protocol: skippable
           wherever it lands (the mediator's batching route normally
           intercepts it first). *)
        | Frame.Span_batch _ -> go ()
        | f ->
          Fault.fail ~phase ~party:receiver
            (Printf.sprintf "%s: unexpected %s frame mid-attempt" label (Frame.tag_name f))
        | exception Io.Transport_error msg ->
          (* The wire analogue of a simulated [Drop]: the frame never
             arrived, detected and blamed at the receiving party. *)
          Fault.fail ~phase ~party:receiver
            (Printf.sprintf "%s never arrived: %s" label msg)
      in
      let payload = go () in
      Obs.Metrics.incr frames_in;
      Obs.Metrics.incr ~by:(String.length payload) payload_in;
      trace_frame "recv" ~phase ~party:sender ~label ~size:(String.length payload);
      after_io ~phase;
      payload
  in
  { Link.role; send; recv }

let run_replica ~role ~fault ~session ~epoch ~attempt ~scheme ~query ~io_timeout ~route env
    client =
  match Protocol.scheme_of_name scheme with
  | None ->
    ( Frame.St_failed
        { Fault.phase = "session"; party = role; reason = "unknown scheme: " ^ scheme },
      None )
  | Some sch -> (
    let tr =
      transport ~role ~session ~epoch:(fun () -> epoch) ~io_timeout
        ~route_of:(fun _ -> Some route) ()
    in
    match Protocol.attempt ?fault ~endpoint:(Link.Remote tr) sch env client ~query ~attempt with
    | Ok outcome -> (Frame.St_ok, Some outcome)
    | Error f -> (Frame.St_failed f, None)
    | exception Aborted _ -> (Frame.St_aborted, None)
    | exception Io.Transport_error msg ->
      (Frame.St_failed { Fault.phase = "transport"; party = role; reason = msg }, None))

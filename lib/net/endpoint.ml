open Secmed_mediation
module Obs = Secmed_obs
module Protocol = Secmed_core.Protocol
module Stream = Secmed_core.Stream

exception Aborted of Fault.failure

module Mux = struct
  type t = {
    conn : Io.conn;
    mu : Mutex.t;
    subs : (int, (Frame.t * int) Queue.t) Hashtbl.t;
    closed : (int, unit) Hashtbl.t;
    closed_order : int Queue.t;  (* tombstone insertion order, for FIFO eviction *)
    max_tombstones : int;
    max_queue : int;
    over : (int, unit) Hashtbl.t;  (* sessions whose queue overflowed *)
    control : (Frame.t * int) Queue.t;
    mutable dropped : int;  (* frames discarded because their session was closed *)
    mutable dead : string option;
  }

  (* Parked frames are mediator memory a fast peer controls, so they are
     charged to a high-water region and each session queue is bounded:
     overflow tombstones nothing silently — the frame is dropped and the
     session's next consumer read raises a typed transport error, the
     same failure shape as a severed link. *)
  let hwm = Obs.Hwm.region "mux.parked"

  let cost_of frame =
    64
    +
    match frame with
    | Frame.Msg { payload; _ } -> String.length payload
    | Frame.Msg_chunk { ck_payload; _ } -> String.length ck_payload
    | Frame.Span_batch { payload; _ } -> String.length payload
    | Frame.Stats { payload; _ } -> String.length payload
    | _ -> 0

  (* Routing must not depend on a consumer having subscribed yet: the
     recv thread sees a session's [Session_start] and, microseconds
     later, the [Msg] frames behind it — before any control-loop thread
     has had a chance to react.  So the first frame of an unknown
     session creates its queue and parks there.  Every [Session_start]
     is additionally announced on the control queue (a daemon spawns a
     handler on the first announcement per session and ignores the
     rest) — "every", because after a severed-and-redialed connection
     the announcement may not be the session's first frame on this mux.
     Frames for a session that was unsubscribed (finished) are
     dropped. *)
  let route t frame =
    Mutex.protect t.mu (fun () ->
        match Frame.session_of frame with
        | None -> Queue.push (frame, 0) t.control
        | Some sid when Hashtbl.mem t.closed sid -> t.dropped <- t.dropped + 1
        | Some sid ->
          let q =
            match Hashtbl.find_opt t.subs sid with
            | Some q -> q
            | None ->
              let q = Queue.create () in
              Hashtbl.replace t.subs sid q;
              q
          in
          if Queue.length q >= t.max_queue then begin
            (* The bound is the memory guarantee: drop and poison rather
               than balloon.  The consumer finds out on its next read. *)
            Hashtbl.replace t.over sid ();
            t.dropped <- t.dropped + 1
          end
          else begin
            let cost = cost_of frame in
            Obs.Hwm.alloc hwm cost;
            Queue.push (frame, cost) q
          end;
          (match frame with
          | Frame.Session_start _ -> Queue.push (frame, 0) t.control
          | _ -> ()))

  let create ?(max_tombstones = 1024) ?(max_queue = 1024) conn =
    let t =
      { conn; mu = Mutex.create (); subs = Hashtbl.create 8; closed = Hashtbl.create 8;
        closed_order = Queue.create (); max_tombstones = max max_tombstones 1;
        max_queue = max max_queue 1; over = Hashtbl.create 4;
        control = Queue.create (); dropped = 0; dead = None }
    in
    let rec recv_loop () =
      match Frame.decode (Io.recv_frame conn) with
      | frame ->
        route t frame;
        recv_loop ()
      | exception Io.Transport_error msg -> t.dead <- Some msg
      | exception Wire.Malformed msg -> t.dead <- Some ("malformed frame: " ^ msg)
    in
    ignore (Thread.create recv_loop () : Thread.t);
    t

  let conn t = t.conn
  let alive t = Mutex.protect t.mu (fun () -> t.dead = None)
  let send t frame = Io.send_frame t.conn (Frame.encode frame)

  let release_queue q =
    Queue.iter (fun (_, cost) -> Obs.Hwm.release hwm cost) q;
    Queue.clear q

  (* Subscribing clears any tombstone for the id: a session id revived
     after an epoch bump (the server pairs every reuse with an epoch
     increment, and the transport's epoch filter skips the stale frames)
     must be routable again, not silently dropped. *)
  let subscribe t sid =
    Mutex.protect t.mu (fun () ->
        Hashtbl.remove t.closed sid;
        Hashtbl.remove t.over sid;
        if not (Hashtbl.mem t.subs sid) then Hashtbl.replace t.subs sid (Queue.create ()))

  (* Tombstones are bounded: eviction is FIFO over insertion order, so a
     long-lived pooled connection serving an unbounded session stream
     keeps O(max_tombstones) state.  [closed_order] may hold stale ids
     whose tombstone a later [subscribe] already cleared; popping those
     is a harmless no-op, and the queue is always at least as long as
     the table, so the loop terminates. *)
  let unsubscribe t sid =
    Mutex.protect t.mu (fun () ->
        (match Hashtbl.find_opt t.subs sid with
        | Some q -> release_queue q
        | None -> ());
        Hashtbl.remove t.subs sid;
        Hashtbl.remove t.over sid;
        if not (Hashtbl.mem t.closed sid) then begin
          Hashtbl.replace t.closed sid ();
          Queue.push sid t.closed_order;
          while Hashtbl.length t.closed > t.max_tombstones do
            match Queue.take_opt t.closed_order with
            | Some old -> Hashtbl.remove t.closed old
            | None -> Hashtbl.reset t.closed
          done
        end)

  let tombstones t = Mutex.protect t.mu (fun () -> Hashtbl.length t.closed)
  let dropped t = Mutex.protect t.mu (fun () -> t.dropped)
  let overflowed t sid = Mutex.protect t.mu (fun () -> Hashtbl.mem t.over sid)

  let backlog t =
    Mutex.protect t.mu (fun () ->
        Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.subs (Queue.length t.control))

  (* The stdlib has no timed condition wait, so waiting is a polling
     loop at 1 ms granularity — coarse enough to stay invisible next to
     crypto, fine enough not to matter against I/O timeouts. *)
  let wait t ~timeout ~what q_of =
    let deadline = if timeout > 0. then Unix.gettimeofday () +. timeout else infinity in
    let rec loop () =
      let item, dead =
        Mutex.protect t.mu (fun () ->
            let q = q_of () in
            ( (if Queue.is_empty q then None
               else begin
                 let frame, cost = Queue.pop q in
                 Obs.Hwm.release hwm cost;
                 Some frame
               end),
              t.dead ))
      in
      match item with
      | Some frame -> frame
      | None ->
        (match dead with
        | Some msg -> raise (Io.Transport_error (Printf.sprintf "%s: %s" what msg))
        | None -> ());
        if Unix.gettimeofday () > deadline then
          raise (Io.Transport_error (Printf.sprintf "%s: timeout" what));
        Thread.delay 0.001;
        loop ()
    in
    loop ()

  let next t ~session ~timeout =
    wait t ~timeout ~what:(Printf.sprintf "session %d" session) (fun () ->
        if Hashtbl.mem t.over session then
          raise
            (Io.Transport_error
               (Printf.sprintf "session %d: receive queue overflow (cap %d frames)" session
                  t.max_queue));
        match Hashtbl.find_opt t.subs session with
        | Some q -> q
        | None -> invalid_arg "Mux.next: session not subscribed")

  let next_control t ~timeout = wait t ~timeout ~what:"control" (fun () -> t.control)
end

(* [r_sub]: the per-shard sub-routes behind a fanned-out logical source.
   Scalar traffic uses the merged route ([r_send] broadcasts, [r_next]
   reads the designated shard 0); streamed deliveries merge chunk
   streams from every sub-route in row order. *)
type route = {
  r_send : Frame.t -> unit;
  r_next : timeout:float -> Frame.t;
  r_sub : route array option;
}

let plain_route ~send ~next = { r_send = send; r_next = next; r_sub = None }

(* Interned eagerly at module init (single-threaded, main domain):
   [Lazy.force] from two domains at once raises [Undefined], and these
   counters are bumped from recv threads and session workers that may
   live in loadgen worker domains. *)
let frames_out = Obs.Metrics.counter "net.frames.out"
let frames_in = Obs.Metrics.counter "net.frames.in"
let payload_out = Obs.Metrics.counter "net.payload.out"
let payload_in = Obs.Metrics.counter "net.payload.in"
let stream_rows_out = Obs.Metrics.counter "stream.rows.out"
let stream_rows_in = Obs.Metrics.counter "stream.rows.in"
let stream_bytes_out = Obs.Metrics.counter "stream.bytes.out"
let stream_bytes_in = Obs.Metrics.counter "stream.bytes.in"

(* Unacknowledged chunks currently in flight from this process, summed
   over all live streamed sends — the operator's "is streaming stuck"
   gauge. *)
let backlog_gauge = Obs.Metrics.gauge "stream.backlog.chunks"
let backlog_mu = Mutex.create ()
let backlog_now = ref 0

let backlog_add d =
  Mutex.protect backlog_mu (fun () ->
      backlog_now := max 0 (!backlog_now + d);
      Obs.Metrics.set_gauge backlog_gauge (float_of_int !backlog_now))

(* Read directly (not via the gauge): the ops surface must work without
   the global metrics registry recording. *)
let stream_backlog () = Mutex.protect backlog_mu (fun () -> !backlog_now)

(* Sender window: how many chunks may be unacknowledged before the
   sender blocks awaiting a [Credit].  Sized so the in-flight bytes
   (window x chunk) stay near half a megabyte — comfortably inside the
   mux queue bound, far above what keeps a loopback pipe busy. *)
let credit_window = 8

(* Decoded-but-unmerged entries buffered while interleaving per-shard
   streams: bounded by one chunk per shard, and the bench asserts it. *)
let hwm_pending = Obs.Hwm.region "stream.pending"

let trace_frame dir ~phase ~party ~label ~size =
  if Obs.Trace.enabled () then
    Obs.Trace.event ("net." ^ dir)
      ~attrs:
        [
          ("phase", Obs.Json.Str phase);
          ("party", Obs.Json.Str (Transcript.party_name party));
          ("label", Obs.Json.Str label);
          ("bytes", Obs.Json.Int size);
        ]

let transport ~role ~session ~epoch ~io_timeout ~route_of ?(shard = (0, 1))
    ?(after_io = fun ~phase:_ -> ()) () =
  let shard_index, shard_count = shard in
  if shard_count <= 0 || shard_index < 0 || shard_index >= shard_count then
    invalid_arg "Endpoint.transport: shard out of range";
  let send ~phase ~seq ~sender ~receiver ~label ~size payload =
    match route_of receiver with
    | None -> ()
    | Some r when shard_index <> 0 ->
      (* Scalar payloads are whole-message: exactly one shard may put
         them on the wire or the receiver would see k copies.  Shard 0
         is the designated scalar speaker; the others advance their
         sequence numbers silently. *)
      ignore r
    | Some r ->
      (try
         r.r_send
           (Frame.Msg
              { session; epoch = epoch (); seq; sender; receiver; label; declared = size; payload })
       with Io.Transport_error msg ->
         (* The link itself is down: a typed, retryable fault blamed at
            the unreachable party, like a simulated severed link. *)
         Fault.fail ~phase ~party:receiver (label ^ ": link down: " ^ msg));
      Obs.Metrics.incr frames_out;
      Obs.Metrics.incr ~by:size payload_out;
      trace_frame "send" ~phase ~party:receiver ~label ~size;
      after_io ~phase
  in
  let recv ~phase ~seq ~sender ~receiver ~label ~size:_ =
    match route_of sender with
    | None -> Fault.fail ~phase ~party:receiver (label ^ ": no route to its sender")
    | Some r ->
      let here = epoch () in
      let rec go () =
        match r.r_next ~timeout:io_timeout with
        | Frame.Msg m when m.epoch = here && m.seq = seq ->
          if not (Transcript.party_equal m.sender sender) || not (String.equal m.label label)
          then
            Fault.fail ~phase ~party:receiver
              (Printf.sprintf "frame #%d: expected %s from %s, got %s from %s" seq label
                 (Transcript.party_name sender) m.label (Transcript.party_name m.sender))
          else m.payload
        | Frame.Msg m when m.epoch < here || (m.epoch = here && m.seq < seq) ->
          (* A replay (chaos Duplicate) or a leftover of an aborted
             attempt: the filter is what makes retries safe. *)
          go ()
        | Frame.Msg m ->
          Fault.fail ~phase ~party:receiver
            (Printf.sprintf "%s: frame gap: awaiting #%d of epoch %d, got #%d of epoch %d"
               label seq here m.seq m.epoch)
        | Frame.Msg_chunk m when m.ck_epoch < here || (m.ck_epoch = here && m.ck_seq < seq) ->
          go ()
        | Frame.Credit _ ->
          (* Flow-control residue of an earlier streamed send. *)
          go ()
        | Frame.Abort { epoch = e; failure; _ } when e >= here -> raise (Aborted failure)
        | Frame.Abort _ | Frame.Report _ -> go ()
        | Frame.Session_start { epoch = e; _ } when e <= here -> go ()
        (* Span traffic is observability, never protocol: skippable
           wherever it lands (the mediator's batching route normally
           intercepts it first). *)
        | Frame.Span_batch _ -> go ()
        | f ->
          Fault.fail ~phase ~party:receiver
            (Printf.sprintf "%s: unexpected %s frame mid-attempt" label (Frame.tag_name f))
        | exception Io.Transport_error msg ->
          (* The wire analogue of a simulated [Drop]: the frame never
             arrived, detected and blamed at the receiving party. *)
          Fault.fail ~phase ~party:receiver
            (Printf.sprintf "%s never arrived: %s" label msg)
      in
      let payload = go () in
      Obs.Metrics.incr frames_in;
      Obs.Metrics.incr ~by:(String.length payload) payload_in;
      trace_frame "recv" ~phase ~party:sender ~label ~size:(String.length payload);
      after_io ~phase;
      payload
  in
  (* Streamed sender: chunk this process's partition of the rows and
     keep at most [credit_window] chunks unacknowledged, replenished by
     the receiver's [Credit] grants arriving on the same route. *)
  let send_rows ~phase ~seq ~sender ~receiver ~label ~size rows =
    match route_of receiver with
    | None -> ()
    | Some r ->
      let here = epoch () in
      let rows =
        if shard_count = 1 then rows
        else Stream.partition ~k:shard_count ~shard:shard_index rows
      in
      let chunks = Stream.plan rows in
      let n = List.length chunks in
      let credits = ref credit_window in
      let outstanding = ref 0 in
      let await_credit () =
        match r.r_next ~timeout:io_timeout with
        | Frame.Credit { cr_epoch; cr_seq; cr_n; _ } when cr_epoch = here && cr_seq = seq ->
          credits := !credits + cr_n;
          outstanding := max 0 (!outstanding - cr_n);
          backlog_add (-cr_n)
        | Frame.Credit _ -> ()
        | Frame.Abort { epoch = e; failure; _ } when e >= here -> raise (Aborted failure)
        | Frame.Abort _ | Frame.Report _ | Frame.Span_batch _ -> ()
        | Frame.Session_start { epoch = e; _ } when e <= here -> ()
        | Frame.Msg m when m.epoch < here || (m.epoch = here && m.seq < seq) -> ()
        | Frame.Msg_chunk m when m.ck_epoch < here || (m.ck_epoch = here && m.ck_seq < seq) ->
          ()
        | f ->
          Fault.fail ~phase ~party:receiver
            (Printf.sprintf "%s: unexpected %s frame awaiting stream credit" label
               (Frame.tag_name f))
        | exception Io.Transport_error msg ->
          Fault.fail ~phase ~party:receiver
            (Printf.sprintf "%s: stream credit never arrived: %s" label msg)
      in
      List.iteri
        (fun ci entries ->
          while !credits <= 0 do
            await_credit ()
          done;
          let payload = Stream.encode_entries entries in
          (try
             r.r_send
               (Frame.Msg_chunk
                  { ck_session = session; ck_epoch = here; ck_seq = seq; ck_sender = sender;
                    ck_receiver = receiver; ck_label = label; ck_chunk = ci; ck_chunks = n;
                    ck_declared = size; ck_payload = payload })
           with Io.Transport_error msg ->
             Fault.fail ~phase ~party:receiver (label ^ ": link down: " ^ msg));
          decr credits;
          incr outstanding;
          backlog_add 1;
          Obs.Metrics.incr frames_out;
          let bytes =
            List.fold_left (fun acc e -> acc + String.length e.Stream.s_bytes) 0 entries
          in
          Obs.Metrics.incr ~by:bytes payload_out;
          Obs.Metrics.incr ~by:bytes stream_bytes_out;
          Obs.Metrics.incr ~by:(List.length entries) stream_rows_out)
        chunks;
      (* Trailing credits are granted but never awaited; the stale-credit
         skip absorbs them later.  Settle the backlog gauge now. *)
      backlog_add (- !outstanding);
      trace_frame "send" ~phase ~party:receiver ~label ~size;
      after_io ~phase
  in
  (* Streamed receiver: pull the per-shard chunk streams and verify each
     entry against the locally recomputed rows in index order.  Nothing
     is concatenated: at most one decoded chunk per shard is held at a
     time (charged to the "stream.pending" region), so receive-side
     memory is bounded by shards x chunk size however many rows flow. *)
  let recv_rows ~phase ~seq ~sender ~receiver ~label ~size ~expect =
    match route_of sender with
    | None -> Fault.fail ~phase ~party:receiver (label ^ ": no route to its sender")
    | Some r ->
      let subs = match r.r_sub with Some a when Array.length a > 0 -> a | _ -> [| r |] in
      let k = Array.length subs in
      let here = epoch () in
      let pending = Array.make k ([] : Stream.entry list) in
      let next_chunk = Array.make k 0 in
      let declared_chunks = Array.make k max_int in
      let pull si =
        let sub = subs.(si) in
        let rec go () =
          match sub.r_next ~timeout:io_timeout with
          | Frame.Msg_chunk m when m.ck_epoch = here && m.ck_seq = seq ->
            if
              (not (Transcript.party_equal m.ck_sender sender))
              || not (String.equal m.ck_label label)
            then
              Fault.fail ~phase ~party:receiver
                (Printf.sprintf "frame #%d: expected %s chunk from %s, got %s from %s" seq
                   label (Transcript.party_name sender) m.ck_label
                   (Transcript.party_name m.ck_sender))
            else if m.ck_chunk < next_chunk.(si) then
              (* A replayed chunk (chaos Duplicate): already merged. *)
              go ()
            else if m.ck_chunk > next_chunk.(si) then
              Fault.fail ~phase ~party:receiver
                (Printf.sprintf "%s: chunk gap: awaiting chunk %d, got %d" label
                   next_chunk.(si) m.ck_chunk)
            else if m.ck_declared <> size then
              Fault.fail ~phase ~party:receiver
                (Printf.sprintf "%s rejected: stream declares %d bytes, %d computed" label
                   m.ck_declared size)
            else begin
              next_chunk.(si) <- m.ck_chunk + 1;
              declared_chunks.(si) <- m.ck_chunks;
              let entries =
                try Stream.decode_entries m.ck_payload
                with Wire.Malformed msg ->
                  Fault.fail ~phase ~party:receiver
                    (Printf.sprintf "%s rejected: malformed chunk %d: %s" label m.ck_chunk msg)
              in
              (* Grant the replacement credit before merging so the
                 sender's pipeline never drains on our account.  A dead
                 return path surfaces on the next pull, not here. *)
              (try
                 sub.r_send
                   (Frame.Credit
                      { cr_session = session; cr_epoch = here; cr_seq = seq; cr_n = 1 })
               with Io.Transport_error _ -> ());
              let bytes =
                List.fold_left (fun acc e -> acc + String.length e.Stream.s_bytes) 0 entries
              in
              Obs.Hwm.alloc hwm_pending bytes;
              Obs.Metrics.incr frames_in;
              Obs.Metrics.incr ~by:bytes payload_in;
              Obs.Metrics.incr ~by:bytes stream_bytes_in;
              Obs.Metrics.incr ~by:(List.length entries) stream_rows_in;
              pending.(si) <- entries
            end
          | Frame.Msg_chunk m when m.ck_epoch < here || (m.ck_epoch = here && m.ck_seq < seq)
            ->
            go ()
          | Frame.Msg_chunk m ->
            Fault.fail ~phase ~party:receiver
              (Printf.sprintf "%s: frame gap: awaiting stream #%d of epoch %d, got #%d of epoch %d"
                 label seq here m.ck_seq m.ck_epoch)
          | Frame.Msg m when m.epoch < here || (m.epoch = here && m.seq < seq) -> go ()
          | Frame.Credit _ -> go ()
          | Frame.Abort { epoch = e; failure; _ } when e >= here -> raise (Aborted failure)
          | Frame.Abort _ | Frame.Report _ -> go ()
          | Frame.Session_start { epoch = e; _ } when e <= here -> go ()
          | Frame.Span_batch _ -> go ()
          | f ->
            Fault.fail ~phase ~party:receiver
              (Printf.sprintf "%s: unexpected %s frame mid-stream" label (Frame.tag_name f))
          | exception Io.Transport_error msg ->
            Fault.fail ~phase ~party:receiver
              (Printf.sprintf "%s never arrived: %s" label msg)
        in
        go ()
      in
      List.iter
        (fun (row, bytes) ->
          let si = if k = 1 then 0 else Stream.shard_of_row ~k row in
          while pending.(si) = [] do
            if next_chunk.(si) >= declared_chunks.(si) then
              (* The shard's stream is exhausted but rows remain: an
                 elided tail is a mismatch, not a hang. *)
              Fault.fail ~phase ~party:receiver
                (Printf.sprintf
                   "%s rejected: wire payload mismatch (stream ended before row %d)" label row)
            else pull si
          done;
          match pending.(si) with
          | [] -> assert false
          | e :: rest ->
            pending.(si) <- rest;
            Obs.Hwm.release hwm_pending (String.length e.Stream.s_bytes);
            if e.Stream.s_row <> row || not (String.equal e.Stream.s_bytes bytes) then
              Fault.fail ~phase ~party:receiver
                (Printf.sprintf
                   "%s rejected: wire payload mismatch (stream row %d: %d bytes received, %d computed)"
                   label row
                   (String.length e.Stream.s_bytes)
                   (String.length bytes)))
        expect;
      Array.iteri
        (fun si p ->
          if p <> [] then begin
            Obs.Hwm.release hwm_pending
              (List.fold_left (fun acc e -> acc + String.length e.Stream.s_bytes) 0 p);
            Fault.fail ~phase ~party:receiver
              (Printf.sprintf "%s rejected: %d trailing stream entries from shard %d" label
                 (List.length p) si)
          end)
        pending;
      trace_frame "recv" ~phase ~party:sender ~label ~size;
      after_io ~phase
  in
  { Link.role; send; recv; rows = Some { Link.send_rows; recv_rows } }

let run_replica ~role ~fault ~session ~epoch ~attempt ~scheme ~query ~io_timeout ?shard
    ~route env client =
  match Protocol.scheme_of_name scheme with
  | None ->
    ( Frame.St_failed
        { Fault.phase = "session"; party = role; reason = "unknown scheme: " ^ scheme },
      None )
  | Some sch -> (
    let tr =
      transport ~role ~session ~epoch:(fun () -> epoch) ~io_timeout ?shard
        ~route_of:(fun _ -> Some route) ()
    in
    match Protocol.attempt ?fault ~endpoint:(Link.Remote tr) sch env client ~query ~attempt with
    | Ok outcome -> (Frame.St_ok, Some outcome)
    | Error f -> (Frame.St_failed f, None)
    | exception Aborted _ -> (Frame.St_aborted, None)
    | exception Io.Transport_error msg ->
      (Frame.St_failed { Fault.phase = "transport"; party = role; reason = msg }, None))

(** From sockets to {!Secmed_mediation.Link.transport}.

    The drivers are endpoint-parametric: they call [Link.deliver] and the
    attached transport decides what, if anything, crosses a wire.  This
    module supplies that transport for the deterministic-replica model —
    each process sends the frames whose sender it plays and awaits (and
    checks) the frames whose receiver it plays, filtering by (attempt,
    seq) so duplicated or stale frames from an abandoned attempt are
    discarded rather than misdelivered.

    Row-wise deliveries ([Link.deliver_rows]) travel as bounded
    [Msg_chunk] frames under credit-based flow control, and a logical
    source split into shards fans the stream out across the shard routes
    (DESIGN.md §16).

    {!Mux} demultiplexes one shared connection (a mediator↔datasource
    link carries every concurrent session) into per-session frame queues
    fed by a single receive thread. *)

open Secmed_mediation

exception Aborted of Fault.failure
(** Raised out of a replica's [recv] when the mediator aborts the
    attempt; the replica's driver unwinds and reports [St_aborted]. *)

module Mux : sig
  type t

  val create : ?max_tombstones:int -> ?max_queue:int -> Io.conn -> t
  (** Spawn the receive thread.  The connection must have no other
      reader from this point on.  [max_tombstones] (default 1024) bounds
      the closed-session tombstone set; the oldest tombstones are
      evicted FIFO so a long-lived pooled connection keeps O(1) state
      per retained session.  [max_queue] (default 1024) bounds each
      session's parked-frame queue: a frame arriving at a full queue is
      dropped and the session poisoned, so its next {!next} raises
      {!Io.Transport_error} — memory stays bounded and the consumer sees
      the same typed failure as a severed link.  Parked frame bytes are
      charged to the ["mux.parked"] {!Secmed_obs.Hwm} region. *)

  val conn : t -> Io.conn
  val alive : t -> bool
  (** [false] once the receive thread died (peer closed, reset,
      malformed stream) — the cue for lazy reconnection. *)

  val send : t -> Frame.t -> unit

  val subscribe : t -> int -> unit
  (** Open a queue for a session id (idempotent).  Session queues are
      also opened implicitly by the first frame that names the session —
      the receive thread must never race a consumer's subscription —
      with a [Session_start] additionally announced on the control
      queue so a daemon can spawn the session's handler.  Subscribing
      clears any tombstone (and any overflow poisoning) for the id, so a
      session id reused after an epoch bump routes again (the
      transport's epoch filter discards whatever stale frames slip
      through). *)

  val unsubscribe : t -> int -> unit
  (** Close the session's queue; late frames for it are dropped (and
      counted in {!dropped}). *)

  val tombstones : t -> int
  (** Closed-session tombstones currently retained (≤ [max_tombstones]). *)

  val dropped : t -> int
  (** Frames discarded because their session was already closed, plus
      frames discarded by the per-session queue bound. *)

  val overflowed : t -> int -> bool
  (** Whether the session's queue has overflowed since it was last
      subscribed. *)

  val backlog : t -> int
  (** Frames currently parked across all queues (control included). *)

  val next : t -> session:int -> timeout:float -> Frame.t
  (** Block (polling) until the session's queue yields a frame.  Raises
      {!Io.Transport_error} on timeout, when the receive thread died and
      the queue is drained, or when the session's queue overflowed. *)

  val next_control : t -> timeout:float -> Frame.t
  (** Same, for connection-level frames and session announcements. *)
end

type route = {
  r_send : Frame.t -> unit;
  r_next : timeout:float -> Frame.t;  (** already session-filtered *)
  r_sub : route array option;
      (** per-shard sub-routes behind a fanned-out logical source:
          [r_send] on the merged route broadcasts and [r_next] reads the
          designated shard 0, while streamed receives interleave every
          sub-route's chunk stream in row order.  [None] for an unsharded
          counterpart. *)
}
(** One counterpart this process exchanges frames with.  A leaf (client
    or datasource) has exactly one route — its mediator connection; the
    mediator has one per remote counterpart. *)

val plain_route : send:(Frame.t -> unit) -> next:(timeout:float -> Frame.t) -> route
(** An unsharded route ([r_sub = None]). *)

val credit_window : int
(** Chunks a streaming sender may leave unacknowledged before blocking
    on a [Credit] grant. *)

val stream_backlog : unit -> int
(** Unacknowledged chunks currently in flight from this process, summed
    over all live streamed sends.  Read directly (works without the
    metrics registry recording). *)

val transport :
  role:Transcript.party ->
  session:int ->
  epoch:(unit -> int) ->
  io_timeout:float ->
  route_of:(Transcript.party -> route option) ->
  ?shard:int * int ->
  ?after_io:(phase:string -> unit) ->
  unit ->
  Link.transport
(** Sends route by the message's {e receiver}, receives by its
    {e sender} ([route_of] returning [None] means the counterpart is
    local — nothing crosses a wire).  Receive-side failures surface as
    typed faults blamed on this process's receiving party: a timeout
    matches a simulated [Drop], a payload mismatch (checked by
    [Link.deliver]) matches a simulated [Corrupt].  [after_io] runs
    after every blocking send/recv — the mediator hooks its real-time
    deadline check here so wall-clock stalls trip the budget
    mid-attempt.  [epoch] is read per frame so the mediator can reuse
    one transport across every attempt of a resilient session.

    [shard] (default [(0, 1)]) is this process's (index, count) within a
    sharded logical source: shard 0 alone speaks scalar messages for the
    party, and a streamed [send_rows] transmits only the shard's
    row partition ([Secmed_core.Stream.partition]).  A streamed
    [recv_rows] holds at most one decoded chunk per shard (charged to
    the ["stream.pending"] {!Secmed_obs.Hwm} region) while merging, so
    receive memory is bounded by shards × chunk size regardless of how
    many rows flow. *)

val run_replica :
  role:Transcript.party ->
  fault:Fault.plan option ->
  session:int ->
  epoch:int ->
  attempt:int ->
  scheme:string ->
  query:string ->
  io_timeout:float ->
  ?shard:int * int ->
  route:route ->
  Secmed_core.Env.t ->
  Secmed_core.Env.client ->
  Frame.status * Secmed_core.Outcome.t option
(** One leaf-side protocol attempt: resolve the scheme name, run the
    driver over a [Remote] link bound to [route], and translate the
    ending into the {!Frame.status} the replica reports.  The outcome is
    returned on [St_ok] so the client replica can keep its result. *)

open Secmed_mediation

type status = St_ok | St_failed of Fault.failure | St_aborted

type wire_result =
  | W_served of {
      w_scheme : string;
      w_attempts : int;
      w_degraded : (string * string) option;
      w_link_stats : (Transcript.party * int * int) list;
    }
  | W_unserved of (string * Fault.failure * int) list

type msg = {
  session : int;
  epoch : int;
  seq : int;
  sender : Transcript.party;
  receiver : Transcript.party;
  label : string;
  declared : int;
  payload : string;
}

(* One bounded slice of a streamed delivery: [chunk] of [chunks], same
   addressing as the scalar [msg] it replaces, payload a counted batch
   of (row index, bytes) entries (Secmed_core.Stream codec).  [declared]
   repeats the whole stream's transcript size on every chunk so any one
   frame identifies the delivery it belongs to. *)
type chunk = {
  ck_session : int;
  ck_epoch : int;
  ck_seq : int;
  ck_sender : Transcript.party;
  ck_receiver : Transcript.party;
  ck_label : string;
  ck_chunk : int;
  ck_chunks : int;
  ck_declared : int;
  ck_payload : string;
}

type t =
  | Hello of { role : Transcript.party; scenario : string }
  | Hello_ok of { scenario : string }
  | Busy of string
  | Query of {
      scheme : string;
      query : string;
      fault_spec : string;
      deadline : float;
      fallback : bool;
      trace : bool;
    }
  | Session_start of {
      session : int;
      epoch : int;
      attempt : int;
      scheme : string;
      query : string;
      fault_spec : string;
      trace_id : string;
      trace_parent : int;
    }
  | Msg of msg
  | Msg_chunk of chunk
  | Credit of { cr_session : int; cr_epoch : int; cr_seq : int; cr_n : int }
      (** Flow-control grant: the receiver of a streamed delivery has
          consumed a chunk of (epoch, seq) and permits [cr_n] more in
          flight.  Residue outside an active [send_rows] is skipped
          wherever it lands. *)
  | Report of { session : int; epoch : int; status : status }
  | Abort of { session : int; epoch : int; failure : Fault.failure }
  | Session_result of { session : int; result : wire_result }
  | Session_end of { session : int }
  | Span_batch of {
      session : int;
      party : Transcript.party;
      parent : int;
      payload : string;
    }
  | Stats_request
  | Stats of { payload : string }
  | Ping
  | Health of { h_role : Transcript.party; h_draining : bool; h_active : int }
  | Drain of { scenario : string; deadline : float }
  | Drain_ok
  | Draining of string

let malformed fmt = Printf.ksprintf (fun m -> raise (Wire.Malformed m)) fmt

let write_party w = function
  | Transcript.Client -> Wire.write_int w 0
  | Transcript.Mediator -> Wire.write_int w 1
  | Transcript.Authority -> Wire.write_int w 2
  | Transcript.Source i ->
    Wire.write_int w 3;
    Wire.write_int w i

let read_party r =
  match Wire.read_int r with
  | 0 -> Transcript.Client
  | 1 -> Transcript.Mediator
  | 2 -> Transcript.Authority
  | 3 -> Transcript.Source (Wire.read_int r)
  | n -> malformed "unknown party tag %d" n

(* Deadlines travel as milliseconds so the codec never has to round-trip
   a float bit pattern through a 63-bit int. *)
let write_seconds w f = Wire.write_int w (int_of_float (Float.round (f *. 1000.)))
let read_seconds r = float_of_int (Wire.read_int r) /. 1000.

let write_failure w (f : Fault.failure) =
  Wire.write_string w f.Fault.phase;
  write_party w f.Fault.party;
  Wire.write_string w f.Fault.reason

let read_failure r =
  let phase = Wire.read_string r in
  let party = read_party r in
  let reason = Wire.read_string r in
  { Fault.phase; party; reason }

let write_status w = function
  | St_ok -> Wire.write_int w 0
  | St_failed f ->
    Wire.write_int w 1;
    write_failure w f
  | St_aborted -> Wire.write_int w 2

let read_status r =
  match Wire.read_int r with
  | 0 -> St_ok
  | 1 -> St_failed (read_failure r)
  | 2 -> St_aborted
  | n -> malformed "unknown status tag %d" n

let write_result w = function
  | W_served { w_scheme; w_attempts; w_degraded; w_link_stats } ->
    Wire.write_int w 0;
    Wire.write_string w w_scheme;
    Wire.write_int w w_attempts;
    (match w_degraded with
    | None -> Wire.write_int w 0
    | Some (from_scheme, reason) ->
      Wire.write_int w 1;
      Wire.write_string w from_scheme;
      Wire.write_string w reason);
    Wire.write_list w
      (fun (party, sent, received) ->
        write_party w party;
        Wire.write_int w sent;
        Wire.write_int w received)
      w_link_stats
  | W_unserved tried ->
    Wire.write_int w 1;
    Wire.write_list w
      (fun (scheme, failure, attempts) ->
        Wire.write_string w scheme;
        write_failure w failure;
        Wire.write_int w attempts)
      tried

let read_result r =
  match Wire.read_int r with
  | 0 ->
    let w_scheme = Wire.read_string r in
    let w_attempts = Wire.read_int r in
    let w_degraded =
      match Wire.read_int r with
      | 0 -> None
      | 1 ->
        let from_scheme = Wire.read_string r in
        let reason = Wire.read_string r in
        Some (from_scheme, reason)
      | n -> malformed "unknown degraded tag %d" n
    in
    let w_link_stats =
      Wire.read_list r (fun () ->
          let party = read_party r in
          let sent = Wire.read_int r in
          let received = Wire.read_int r in
          (party, sent, received))
    in
    W_served { w_scheme; w_attempts; w_degraded; w_link_stats }
  | 1 ->
    W_unserved
      (Wire.read_list r (fun () ->
           let scheme = Wire.read_string r in
           let failure = read_failure r in
           let attempts = Wire.read_int r in
           (scheme, failure, attempts)))
  | n -> malformed "unknown result tag %d" n

let encode t =
  let w = Wire.writer () in
  (match t with
  | Hello { role; scenario } ->
    Wire.write_int w 0;
    write_party w role;
    Wire.write_string w scenario
  | Hello_ok { scenario } ->
    Wire.write_int w 1;
    Wire.write_string w scenario
  | Busy reason ->
    Wire.write_int w 2;
    Wire.write_string w reason
  | Query { scheme; query; fault_spec; deadline; fallback; trace } ->
    Wire.write_int w 3;
    Wire.write_string w scheme;
    Wire.write_string w query;
    Wire.write_string w fault_spec;
    write_seconds w deadline;
    Wire.write_int w (if fallback then 1 else 0);
    Wire.write_int w (if trace then 1 else 0)
  | Session_start { session; epoch; attempt; scheme; query; fault_spec; trace_id; trace_parent }
    ->
    Wire.write_int w 4;
    Wire.write_int w session;
    Wire.write_int w epoch;
    Wire.write_int w attempt;
    Wire.write_string w scheme;
    Wire.write_string w query;
    Wire.write_string w fault_spec;
    Wire.write_string w trace_id;
    (* +1 keeps the on-wire value non-negative (-1 = no parent). *)
    Wire.write_int w (trace_parent + 1)
  | Msg { session; epoch; seq; sender; receiver; label; declared; payload } ->
    Wire.write_int w 5;
    Wire.write_int w session;
    Wire.write_int w epoch;
    Wire.write_int w seq;
    write_party w sender;
    write_party w receiver;
    Wire.write_string w label;
    Wire.write_int w declared;
    Wire.write_string w payload
  | Report { session; epoch; status } ->
    Wire.write_int w 6;
    Wire.write_int w session;
    Wire.write_int w epoch;
    write_status w status
  | Abort { session; epoch; failure } ->
    Wire.write_int w 7;
    Wire.write_int w session;
    Wire.write_int w epoch;
    write_failure w failure
  | Session_result { session; result } ->
    Wire.write_int w 8;
    Wire.write_int w session;
    write_result w result
  | Session_end { session } ->
    Wire.write_int w 9;
    Wire.write_int w session
  | Span_batch { session; party; parent; payload } ->
    Wire.write_int w 10;
    Wire.write_int w session;
    write_party w party;
    Wire.write_int w (parent + 1);
    Wire.write_string w payload
  | Stats_request -> Wire.write_int w 11
  | Stats { payload } ->
    Wire.write_int w 12;
    Wire.write_string w payload
  | Ping -> Wire.write_int w 13
  | Health { h_role; h_draining; h_active } ->
    Wire.write_int w 14;
    write_party w h_role;
    Wire.write_int w (if h_draining then 1 else 0);
    Wire.write_int w h_active
  | Drain { scenario; deadline } ->
    Wire.write_int w 15;
    Wire.write_string w scenario;
    write_seconds w deadline
  | Drain_ok -> Wire.write_int w 16
  | Draining reason ->
    Wire.write_int w 17;
    Wire.write_string w reason
  | Msg_chunk
      { ck_session; ck_epoch; ck_seq; ck_sender; ck_receiver; ck_label; ck_chunk; ck_chunks;
        ck_declared; ck_payload } ->
    Wire.write_int w 18;
    Wire.write_int w ck_session;
    Wire.write_int w ck_epoch;
    Wire.write_int w ck_seq;
    write_party w ck_sender;
    write_party w ck_receiver;
    Wire.write_string w ck_label;
    Wire.write_int w ck_chunk;
    Wire.write_int w ck_chunks;
    Wire.write_int w ck_declared;
    Wire.write_string w ck_payload
  | Credit { cr_session; cr_epoch; cr_seq; cr_n } ->
    Wire.write_int w 19;
    Wire.write_int w cr_session;
    Wire.write_int w cr_epoch;
    Wire.write_int w cr_seq;
    Wire.write_int w cr_n);
  Wire.contents w

let decode body =
  let r = Wire.reader body in
  let t =
    match Wire.read_int r with
    | 0 ->
      let role = read_party r in
      let scenario = Wire.read_string r in
      Hello { role; scenario }
    | 1 -> Hello_ok { scenario = Wire.read_string r }
    | 2 -> Busy (Wire.read_string r)
    | 3 ->
      let scheme = Wire.read_string r in
      let query = Wire.read_string r in
      let fault_spec = Wire.read_string r in
      let deadline = read_seconds r in
      let fallback = Wire.read_int r <> 0 in
      let trace = Wire.read_int r <> 0 in
      Query { scheme; query; fault_spec; deadline; fallback; trace }
    | 4 ->
      let session = Wire.read_int r in
      let epoch = Wire.read_int r in
      let attempt = Wire.read_int r in
      let scheme = Wire.read_string r in
      let query = Wire.read_string r in
      let fault_spec = Wire.read_string r in
      let trace_id = Wire.read_string r in
      let trace_parent = Wire.read_int r - 1 in
      Session_start { session; epoch; attempt; scheme; query; fault_spec; trace_id; trace_parent }
    | 5 ->
      let session = Wire.read_int r in
      let epoch = Wire.read_int r in
      let seq = Wire.read_int r in
      let sender = read_party r in
      let receiver = read_party r in
      let label = Wire.read_string r in
      let declared = Wire.read_int r in
      let payload = Wire.read_string r in
      Msg { session; epoch; seq; sender; receiver; label; declared; payload }
    | 6 ->
      let session = Wire.read_int r in
      let epoch = Wire.read_int r in
      let status = read_status r in
      Report { session; epoch; status }
    | 7 ->
      let session = Wire.read_int r in
      let epoch = Wire.read_int r in
      let failure = read_failure r in
      Abort { session; epoch; failure }
    | 8 ->
      let session = Wire.read_int r in
      let result = read_result r in
      Session_result { session; result }
    | 9 -> Session_end { session = Wire.read_int r }
    | 10 ->
      let session = Wire.read_int r in
      let party = read_party r in
      let parent = Wire.read_int r - 1 in
      let payload = Wire.read_string r in
      Span_batch { session; party; parent; payload }
    | 11 -> Stats_request
    | 12 -> Stats { payload = Wire.read_string r }
    | 13 -> Ping
    | 14 ->
      let h_role = read_party r in
      let h_draining = Wire.read_int r <> 0 in
      let h_active = Wire.read_int r in
      Health { h_role; h_draining; h_active }
    | 15 ->
      let scenario = Wire.read_string r in
      let deadline = read_seconds r in
      Drain { scenario; deadline }
    | 16 -> Drain_ok
    | 17 -> Draining (Wire.read_string r)
    | 18 ->
      let ck_session = Wire.read_int r in
      let ck_epoch = Wire.read_int r in
      let ck_seq = Wire.read_int r in
      let ck_sender = read_party r in
      let ck_receiver = read_party r in
      let ck_label = Wire.read_string r in
      let ck_chunk = Wire.read_int r in
      let ck_chunks = Wire.read_int r in
      if ck_chunks < 0 || ck_chunks > Secmed_core.Stream.max_chunks then
        malformed "chunk count %d exceeds the %d cap" ck_chunks Secmed_core.Stream.max_chunks;
      if ck_chunk < 0 || ck_chunk >= ck_chunks then
        malformed "chunk index %d out of range for %d chunks" ck_chunk ck_chunks;
      let ck_declared = Wire.read_int r in
      let ck_payload = Wire.read_string r in
      Msg_chunk
        { ck_session; ck_epoch; ck_seq; ck_sender; ck_receiver; ck_label; ck_chunk; ck_chunks;
          ck_declared; ck_payload }
    | 19 ->
      let cr_session = Wire.read_int r in
      let cr_epoch = Wire.read_int r in
      let cr_seq = Wire.read_int r in
      let cr_n = Wire.read_int r in
      Credit { cr_session; cr_epoch; cr_seq; cr_n }
    | n -> malformed "unknown frame tag %d" n
  in
  Wire.expect_end r;
  t

let tag_name = function
  | Hello _ -> "hello"
  | Hello_ok _ -> "hello-ok"
  | Busy _ -> "busy"
  | Query _ -> "query"
  | Session_start _ -> "session-start"
  | Msg _ -> "msg"
  | Report _ -> "report"
  | Abort _ -> "abort"
  | Session_result _ -> "session-result"
  | Session_end _ -> "session-end"
  | Span_batch _ -> "span-batch"
  | Stats_request -> "stats-request"
  | Stats _ -> "stats"
  | Ping -> "ping"
  | Health _ -> "health"
  | Drain _ -> "drain"
  | Drain_ok -> "drain-ok"
  | Draining _ -> "draining"
  | Msg_chunk _ -> "msg-chunk"
  | Credit _ -> "credit"

let session_of = function
  | Hello _ | Hello_ok _ | Busy _ | Query _ | Stats_request | Stats _ | Ping | Health _
  | Drain _ | Drain_ok | Draining _ -> None
  | Session_start { session; _ }
  | Msg { session; _ }
  | Report { session; _ }
  | Abort { session; _ }
  | Session_result { session; _ }
  | Session_end { session }
  | Span_batch { session; _ } -> Some session
  | Msg_chunk { ck_session; _ } -> Some ck_session
  | Credit { cr_session; _ } -> Some cr_session

(** The session-layer frame vocabulary of the distributed transport.

    One TCP connection carries a sequence of these, each encoded with
    {!Wire} and delimited by the {!Wire.frame} length prefix (decoded by
    [Io]).  The conversation shape (DESIGN.md §11):

    - connection setup: [Hello] / [Hello_ok] (or [Busy]);
    - the client poses a [Query]; the mediator opens one session per
      attempt-chain and broadcasts [Session_start] per attempt;
    - protocol messages travel as [Msg], tagged with (session, attempt,
      seq) so stale frames from an abandoned attempt are skippable;
    - each replica ends an attempt with a [Report]; the mediator may cut
      one short with [Abort];
    - the mediator closes with [Session_result] and [Session_end]. *)

open Secmed_mediation

type status =
  | St_ok                        (** replica finished the attempt cleanly *)
  | St_failed of Fault.failure   (** replica detected a typed fault *)
  | St_aborted                   (** replica stopped on the mediator's [Abort] *)

(** What the mediator tells the remote client at the end of a query.
    [w_link_stats] are the mediator's own per-counterpart payload byte
    counters [(party, bytes_to, bytes_from)] — the ground truth the
    differential test compares against transcript totals. *)
type wire_result =
  | W_served of {
      w_scheme : string;          (** canonical name of the scheme that served *)
      w_attempts : int;
      w_degraded : (string * string) option;  (** (original scheme, reason) *)
      w_link_stats : (Transcript.party * int * int) list;
    }
  | W_unserved of (string * Fault.failure * int) list
      (** per tried scheme: name, final failure, attempts *)

(** A protocol message in flight.  [epoch] is the session-global attempt
    counter (monotonic across a degradation chain, unlike the per-scheme
    attempt number, so stale frames are always distinguishable); [seq]
    the link's delivery index within the epoch; [declared] the
    transcript size the payload is padded to.  A named record (not
    inline) so the chaos proxy and the endpoint filters can bind and
    rewrite one wholesale. *)
type msg = {
  session : int;
  epoch : int;
  seq : int;
  sender : Transcript.party;
  receiver : Transcript.party;
  label : string;
  declared : int;
  payload : string;
}

(** One bounded slice of a streamed delivery (DESIGN.md §16): same
    addressing as the scalar [msg] it replaces, plus its position
    [ck_chunk] of [ck_chunks].  [ck_payload] is a counted batch of
    (row index, bytes) entries in the [Secmed_core.Stream] codec;
    [ck_declared] repeats the whole stream's transcript size so any one
    frame identifies its delivery.  The decoder enforces the
    [Stream.max_chunks] cap, so a corrupted header cannot promise a
    pathological chunk count. *)
type chunk = {
  ck_session : int;
  ck_epoch : int;
  ck_seq : int;
  ck_sender : Transcript.party;
  ck_receiver : Transcript.party;
  ck_label : string;
  ck_chunk : int;
  ck_chunks : int;
  ck_declared : int;
  ck_payload : string;
}

type t =
  | Hello of { role : Transcript.party; scenario : string }
  | Hello_ok of { scenario : string }
  | Busy of string
  | Query of {
      scheme : string;
      query : string;
      fault_spec : string;  (** [""] = none; parsed by each replica *)
      deadline : float;     (** seconds; [0.] = the server's default policy *)
      fallback : bool;      (** enable the scheme degradation chain *)
      trace : bool;         (** ask every process to trace and ship spans back *)
    }
  | Session_start of {
      session : int;
      epoch : int;
      attempt : int;  (** the per-scheme attempt number the fault layer sees *)
      scheme : string;
      query : string;
      fault_spec : string;
      trace_id : string;  (** [""] = tracing off for this session *)
      trace_parent : int;
          (** the mediator's session span id — the root every replica's
              span batch hangs under; [-1] when tracing is off *)
    }
  | Msg of msg
  | Msg_chunk of chunk
  | Credit of { cr_session : int; cr_epoch : int; cr_seq : int; cr_n : int }
      (** Flow-control grant: the consumer of stream (epoch, seq) has
          absorbed a chunk and permits [cr_n] more in flight.  Residue
          arriving outside an active [send_rows] is skipped wherever it
          lands. *)
  | Report of { session : int; epoch : int; status : status }
  | Abort of { session : int; epoch : int; failure : Fault.failure }
  | Session_result of { session : int; result : wire_result }
  | Session_end of { session : int }
  | Span_batch of {
      session : int;
      party : Transcript.party;  (** whose collector the payload came from *)
      parent : int;
          (** span id {e in the mediator's id space} the batch's roots
              belong under; [-1] = none (the mediator's own batch) *)
      payload : string;  (** a [Trace_wire] batch: epoch + spans + events *)
    }
  | Stats_request  (** connection-level: answered without admission *)
  | Stats of { payload : string }  (** the server's stats snapshot as JSON text *)
  | Ping  (** connection-level liveness probe, answered before admission *)
  | Health of {
      h_role : Transcript.party;  (** who answered: [Mediator] or [Source i] *)
      h_draining : bool;          (** refusing new sessions, finishing old ones *)
      h_active : int;             (** sessions currently in flight *)
    }
  | Drain of { scenario : string; deadline : float }
      (** ask the peer to drain; [scenario] must match the peer's digest
          (the same shared-seed credential the [Hello] handshake checks),
          [deadline] bounds how long in-flight sessions may linger *)
  | Drain_ok  (** the peer accepted the [Drain] and is now draining *)
  | Draining of string
      (** typed refusal of a new session while draining — distinct from
          [Busy] so clients can retry against a restarted process *)

val encode : t -> string
val decode : string -> t
(** Raises {!Wire.Malformed} on anything {!encode} would not produce. *)

val tag_name : t -> string
(** Constructor name, for traces and error messages. *)

val session_of : t -> int option
(** The session id a frame belongs to; [None] for connection-level
    frames ([Hello], [Hello_ok], [Busy], [Query], [Stats_request],
    [Stats], [Ping], [Health], [Drain], [Drain_ok], [Draining]). *)

open Secmed_mediation

exception Transport_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Transport_error msg)) fmt

type conn = {
  fd : Unix.file_descr;
  peer : string;
  stream : Wire.Stream.t;
  send_mu : Mutex.t;
  mutable wbuf : Bytes.t;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable frames_in : int;
  mutable frames_out : int;
  mutable closed : bool;
}

(* A write to a peer-reset or locally-shutdown socket must surface as
   [EPIPE] -> [Transport_error] at the writer, not kill the process:
   OCaml leaves SIGPIPE at its fatal default.  Installed once, here,
   because every networked secmed process goes through this module. *)
let () =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* Process-wide transport volume, summed over every connection.
   Interned eagerly at module init (see the note in {!Endpoint}) and
   bumped unconditionally: lossy-but-safe unsynchronised counters, like
   the transcript's. *)
let m_bytes_sent = Secmed_obs.Metrics.counter "net.bytes_sent"
let m_bytes_recv = Secmed_obs.Metrics.counter "net.bytes_recv"
let m_frames_sent = Secmed_obs.Metrics.counter "net.frames_sent"
let m_frames_recv = Secmed_obs.Metrics.counter "net.frames_recv"

(* Per-connection send scratch: header + body assembled in one reused
   buffer so the steady-state frame path allocates nothing.  Capped so a
   rare oversized frame (which takes the allocating fallback) cannot pin
   megabytes to every connection; chunked deliveries sit far below the
   cap by construction. *)
let hwm_send = Secmed_obs.Hwm.region "io.send"
let max_inline_frame = 1 lsl 18
let read_quantum = 65536

let set_fd_timeout fd seconds =
  (* 0. disables the timeout (the setsockopt convention). *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO seconds;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO seconds

let of_fd ?(timeout = 0.) ~peer fd =
  if timeout > 0. then set_fd_timeout fd timeout;
  Secmed_obs.Hwm.alloc hwm_send 256;
  {
    fd;
    peer;
    stream = Wire.Stream.create ();
    send_mu = Mutex.create ();
    wbuf = Bytes.create 256;
    bytes_in = 0;
    bytes_out = 0;
    frames_in = 0;
    frames_out = 0;
    closed = false;
  }

let string_of_sockaddr = function
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | Unix.ADDR_UNIX p -> p

let connect ?timeout ~host ~port () =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found | Invalid_argument _ -> (
      try Unix.inet_addr_of_string host
      with Failure _ -> fail "connect: unknown host %s" host)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (addr, port));
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     fail "connect %s:%d: %s" host port (Unix.error_message e));
  of_fd ?timeout ~peer:(Printf.sprintf "%s:%d" host port) fd

(* Backlog sized for a loadgen fleet's connect burst: admission answers
   fast (admit or typed Busy), so the queue only has to absorb the SYN
   spike, not hold sessions. *)
let listen ?(backlog = 256) ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen fd backlog
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     fail "listen %s:%d: %s" host port (Unix.error_message e));
  let bound =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> port
  in
  (fd, bound)

let accept ?timeout fd =
  match Unix.accept fd with
  | client_fd, addr ->
    (try Unix.setsockopt client_fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    of_fd ?timeout ~peer:(string_of_sockaddr addr) client_fd
  | exception Unix.Unix_error (e, _, _) -> fail "accept: %s" (Unix.error_message e)

let set_timeout t seconds = set_fd_timeout t.fd seconds
let peer t = t.peer
let bytes_in t = t.bytes_in
let bytes_out t = t.bytes_out
let frames_in t = t.frames_in
let frames_out t = t.frames_out

(* A full write in the face of short writes, EINTR, and timeouts.  The
   caller holds [send_mu], so the frame lands contiguously even when
   several session threads share the connection. *)
let write_all_sub t b first len =
  let off = ref first in
  let len = first + len in
  while !off < len do
    match Unix.write t.fd b !off (len - !off) with
    | 0 -> fail "send to %s: connection closed" t.peer
    | n ->
      off := !off + n;
      t.bytes_out <- t.bytes_out + n;
      Secmed_obs.Metrics.incr ~by:n m_bytes_sent
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      fail "send to %s: timeout" t.peer
    | exception Unix.Unix_error (e, _, _) ->
      fail "send to %s: %s" t.peer (Unix.error_message e)
  done

let write_all t s = write_all_sub t (Bytes.unsafe_of_string s) 0 (String.length s)

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let send_frame t body =
  locked t.send_mu (fun () ->
      let n = String.length body in
      if n + 4 <= max_inline_frame then begin
        if Bytes.length t.wbuf < n + 4 then begin
          let cap = ref (Bytes.length t.wbuf) in
          while !cap < n + 4 do
            cap := !cap * 2
          done;
          Secmed_obs.Hwm.alloc hwm_send (!cap - Bytes.length t.wbuf);
          t.wbuf <- Bytes.create !cap
        end;
        Bytes.set t.wbuf 0 (Char.chr ((n lsr 24) land 0xff));
        Bytes.set t.wbuf 1 (Char.chr ((n lsr 16) land 0xff));
        Bytes.set t.wbuf 2 (Char.chr ((n lsr 8) land 0xff));
        Bytes.set t.wbuf 3 (Char.chr (n land 0xff));
        Bytes.blit_string body 0 t.wbuf 4 n;
        write_all_sub t t.wbuf 0 (n + 4)
      end
      else
        (* Oversized one-off: pay the concat rather than pinning a huge
           scratch buffer to the connection for its whole life. *)
        write_all t (Wire.frame body);
      t.frames_out <- t.frames_out + 1;
      Secmed_obs.Metrics.incr m_frames_sent)

let send_raw t s = locked t.send_mu (fun () -> write_all t s)

let recv_frame t =
  let rec next () =
    match Wire.Stream.next_frame t.stream with
    | Some body ->
      t.frames_in <- t.frames_in + 1;
      Secmed_obs.Metrics.incr m_frames_recv;
      body
    | None -> (
      (* Read straight into the reassembly buffer (Wire.Stream.reserve):
         the receive path allocates nothing per read beyond the frame
         body itself. *)
      let buf, off = Wire.Stream.reserve t.stream read_quantum in
      match Unix.read t.fd buf off read_quantum with
      | 0 -> fail "recv from %s: connection closed" t.peer
      | n ->
        Wire.Stream.commit t.stream n;
        t.bytes_in <- t.bytes_in + n;
        Secmed_obs.Metrics.incr ~by:n m_bytes_recv;
        next ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> next ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        fail "recv from %s: timeout" t.peer
      | exception Unix.Unix_error (e, _, _) ->
        fail "recv from %s: %s" t.peer (Unix.error_message e))
    | exception Wire.Malformed msg -> fail "recv from %s: %s" t.peer msg
  in
  next ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    Wire.Stream.dispose t.stream;
    Secmed_obs.Hwm.release hwm_send (Bytes.length t.wbuf);
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* Unlike [close], shutdown reliably wakes a thread blocked in read on
   this socket (close from another thread need not), so an owner can
   sever a connection whose reader it does not control.  The eventual
   [close] still releases the descriptor. *)
let shutdown t =
  if not t.closed then
    try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

(** Socket plumbing: framed, timeout-guarded, short-read/short-write safe.

    Everything [Secmed_net] puts on a wire is a {!Wire.frame}: a 4-byte
    big-endian length prefix followed by the body.  This module owns the
    two hard parts of stream sockets — partial reads and partial writes —
    so every layer above deals only in complete frames.

    All I/O failures (closed peer, reset, timeout, malformed framing)
    surface as {!Transport_error}; callers translate that into a typed
    fault at the protocol layer. *)

exception Transport_error of string

type conn
(** One connected stream socket plus its receive buffer and byte
    counters.  Sends are serialized by an internal mutex so concurrent
    session threads can share a connection without interleaving frames;
    receives are {e not} — a connection must have a single reader
    (either the owning thread or a {!Endpoint.Mux} receive thread). *)

val of_fd : ?timeout:float -> peer:string -> Unix.file_descr -> conn
(** Wrap an already-connected descriptor.  [timeout] (seconds) applies
    to each blocking read and write ([SO_RCVTIMEO]/[SO_SNDTIMEO]);
    [0.] or omitted means block indefinitely. *)

val connect : ?timeout:float -> host:string -> port:int -> unit -> conn
(** TCP connect (with [TCP_NODELAY]); raises {!Transport_error} when the
    peer is unreachable. *)

val listen : ?backlog:int -> ?host:string -> port:int -> unit -> Unix.file_descr * int
(** Bound, listening socket (with [SO_REUSEADDR]) and the port actually
    bound — pass [port:0] for an ephemeral port. *)

val accept : ?timeout:float -> Unix.file_descr -> conn
(** Block until a peer connects. *)

val set_timeout : conn -> float -> unit
(** Change the per-operation timeout of both directions. *)

val peer : conn -> string
val bytes_in : conn -> int
val bytes_out : conn -> int
(** Raw socket bytes moved (framing included) since the connection was
    wrapped. *)

val frames_in : conn -> int
val frames_out : conn -> int
(** Complete frames received/sent on this connection.  The same volumes
    are also summed process-wide into the [net.bytes_sent],
    [net.bytes_recv], [net.frames_sent] and [net.frames_recv] metrics
    counters. *)

val send_frame : conn -> string -> unit
(** Frame [body] and write it whole, looping over short writes and
    [EINTR]; [EAGAIN]/[EWOULDBLOCK] (the send timeout) and any socket
    error raise {!Transport_error}. *)

val send_raw : conn -> string -> unit
(** Write bytes with no framing — only for the chaos proxy's truncated
    frames, which are deliberately not valid wire units. *)

val recv_frame : conn -> string
(** The next complete frame body, reading as many chunks as needed.
    EOF mid-frame, a timeout, or an over-limit length prefix raise
    {!Transport_error}. *)

val close : conn -> unit
(** Idempotent. *)

val shutdown : conn -> unit
(** [Unix.shutdown] both directions without releasing the descriptor:
    reliably wakes any thread blocked reading this socket (which a
    cross-thread [close] need not), surfacing as {!Transport_error} at
    the reader.  Safe to call concurrently with the owner; idempotent
    and silent on an already-closed connection. *)

open Secmed_core
module Prng = Secmed_crypto.Prng
module Counters = Secmed_crypto.Counters
module Metrics = Secmed_obs.Metrics
module Clock = Secmed_obs.Clock

(* ------------------------------------------------------------------ *)
(* Configuration *)

type arrival = Closed | Poisson of float

type config = {
  workers : int;
  sessions_per_worker : int;
  domains : int;
  mix : (string * int) list;
  arrival : arrival;
  seed : string;
  fault_spec : string;
  deadline : float;
  fallback : bool;
  io_timeout : float;
  verify : bool;
  trace : bool;
  retry_connect : int;
  retry_backoff : float;
}

let default_config =
  {
    workers = 8;
    sessions_per_worker = 4;
    domains = 1;
    mix = [ ("das", 1); ("commutative", 1); ("pm", 1) ];
    arrival = Closed;
    seed = "loadgen";
    fault_spec = "";
    deadline = 0.;
    fallback = true;
    io_timeout = 10.;
    verify = false;
    trace = false;
    retry_connect = 0;
    retry_backoff = 0.25;
  }

(* ------------------------------------------------------------------ *)
(* The deterministic plan *)

(* Everything randomized about a run — which scheme each session uses,
   and (open loop) when it is posed — derives from pure [Prng.split]s
   of the master seed, keyed by worker index.  The plan is computed
   before any I/O happens, so two runs with the same seed and config
   drive byte-identical workloads whatever the cluster does with
   them. *)

let weighted_pick g mix total =
  let roll = Prng.uniform_int g total in
  let rec go acc = function
    | [] -> invalid_arg "Loadgen: empty scheme mix"
    | (scheme, w) :: rest -> if roll < acc + w then scheme else go (acc + w) rest
  in
  go 0 mix

(* Inverse-CDF exponential inter-arrival draw on a [0,1) grid; the grid
   is fine enough (1e-6) that the rate error is invisible next to
   session latency. *)
let exp_draw g ~rate =
  let u = float_of_int (Prng.uniform_int g 1_000_000) /. 1_000_000. in
  -.Float.log (1. -. u) /. rate

type planned = { p_worker : int; p_index : int; p_scheme : string; p_at : float }

let plan config =
  let mix = List.filter (fun (_, w) -> w > 0) config.mix in
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 mix in
  if total <= 0 then invalid_arg "Loadgen.plan: scheme mix has no positive weight";
  let master = Prng.create ~seed:config.seed in
  List.init config.workers (fun w ->
      let schemes_g = Prng.split master (Printf.sprintf "worker-%d" w) in
      let arrivals_g = Prng.split master (Printf.sprintf "arrival-%d" w) in
      let at = ref 0. in
      List.init config.sessions_per_worker (fun i ->
          (match config.arrival with
          | Closed -> ()
          | Poisson rate ->
            let per_worker = rate /. float_of_int config.workers in
            at := !at +. exp_draw arrivals_g ~rate:per_worker);
          {
            p_worker = w;
            p_index = i;
            p_scheme = weighted_pick schemes_g mix total;
            p_at = !at;
          }))

(* ------------------------------------------------------------------ *)
(* Outcomes and the report *)

type outcome_kind = Served | Degraded | Unserved | Refused | Failed

let kind_name = function
  | Served -> "served"
  | Degraded -> "degraded"
  | Unserved -> "unserved"
  | Refused -> "refused"
  | Failed -> "failed"

type record = {
  r_worker : int;
  r_index : int;
  r_scheme : string;
  r_kind : outcome_kind;
  r_latency : float;  (** seconds, connect to verdict *)
  r_epochs : int;
  r_started : float;
  r_finished : float;
  r_retries : int;
}

type report = {
  records : record list;  (** per worker, in issue order *)
  elapsed : float;  (** wall-clock of the whole fleet *)
  latency : Metrics.histogram;  (** all sessions *)
  per_scheme : (string * Metrics.histogram) list;  (** served+degraded only *)
  verify_failures : string list;
}

let count kind report =
  List.length (List.filter (fun r -> r.r_kind = kind) report.records)

let qps report =
  if report.elapsed <= 0. then 0.
  else float_of_int (List.length report.records) /. report.elapsed

(* ------------------------------------------------------------------ *)
(* The fleet *)

type target = {
  host : string;
  port : int;
  scenario : string;
  env : Env.t;
  client : Env.client;
  query : string;
}

(* [retry_connect] bounds how many times a session that never started —
   the peer was unreachable, the link died before the verdict, or it
   answered with a typed [Draining] — is re-posed, with exponential
   backoff between tries.  A [Busy] refusal is never retried (that is
   backpressure, not death); an exhausted [Draining] counts as Refused
   (the peer answered, typed) while an exhausted transport error stays
   Failed.  This is what lets a fleet ride out a process restart
   without losing sessions. *)
let run_one config target ~t0 scheme =
  let first_started = Clock.now () in
  let rec go k =
    let started = Clock.now () in
    let finish kind epochs =
      let now = Clock.now () in
      { r_worker = 0; r_index = 0; r_scheme = scheme; r_kind = kind;
        r_latency = now -. started; r_epochs = epochs; r_started = first_started -. t0;
        r_finished = now -. t0; r_retries = k }
    in
    let backoff_retry () =
      Thread.delay (Float.min 2. (config.retry_backoff *. (2. ** float_of_int k)));
      go (k + 1)
    in
    match
      (* [trace] exercises the whole span pipeline (collect, batch,
         forward) for overhead measurement; the batches themselves are
         discarded — loadgen measures, it does not render. *)
      Peer.run ~host:target.host ~port:target.port ~scenario:target.scenario ~scheme
        ~query:target.query ~fault_spec:config.fault_spec ~deadline:config.deadline
        ~fallback:config.fallback ~io_timeout:config.io_timeout ~trace:config.trace target.env
        target.client
    with
    | response ->
      let kind =
        match response.Peer.result with
        | Protocol.Served o ->
          if Option.is_some o.Outcome.degraded_from then Degraded else Served
        | Protocol.Unserved _ -> Unserved
      in
      (finish kind response.Peer.epochs, Some response)
    | exception Peer.Refused _ -> (finish Refused 0, None)
    | exception Peer.Draining _ ->
      if k < config.retry_connect then backoff_retry () else (finish Refused 0, None)
    | exception (Io.Transport_error _ | Secmed_mediation.Wire.Malformed _) ->
      if k < config.retry_connect then backoff_retry () else (finish Failed 0, None)
  in
  go 0

(* One worker: its slice of the plan, one session at a time (closed
   loop), or paced by the planned arrival times (open loop — a session
   that outlives the next arrival is simply late, the open-loop
   property loadgen exists to measure).  [t0] is the fleet's start
   instant, the common timebase every record's start/finish offsets are
   relative to. *)
let run_worker config target ~t0 planned results =
  List.iter
    (fun p ->
      (match config.arrival with
      | Closed -> ()
      | Poisson _ ->
        let wait = p.p_at -. (Clock.now () -. t0) in
        if wait > 0. then Thread.delay wait);
      let record, response = run_one config target ~t0 p.p_scheme in
      results :=
        ({ record with r_worker = p.p_worker; r_index = p.p_index }, response) :: !results)
    planned;
  Counters.release ()

(* Workers are grouped onto [domains] OCaml domains, each running its
   group as systhreads: threads overlap on I/O waits, domains add real
   crypto parallelism for the client replicas.  Every worker writes
   only its own accumulator, so the fleet needs no locks; domains are
   joined before anything is read. *)
let run config target =
  let started = Clock.now () in
  let worker_plans = plan config in
  let accumulators = List.map (fun _ -> ref []) worker_plans in
  let jobs = List.combine worker_plans accumulators in
  let domains = max 1 (min config.domains config.workers) in
  let groups = Array.make domains [] in
  List.iteri (fun i job -> groups.(i mod domains) <- job :: groups.(i mod domains)) jobs;
  let run_group jobs =
    let threads =
      List.map
        (fun (planned, results) ->
          Thread.create (fun () -> run_worker config target ~t0:started planned results) ())
        jobs
    in
    List.iter Thread.join threads
  in
  (match Array.to_list groups with
  | [] -> ()
  | first :: rest ->
    let spawned = List.map (fun jobs -> Domain.spawn (fun () -> run_group jobs)) rest in
    run_group first;
    List.iter Domain.join spawned);
  let elapsed = Clock.now () -. started in
  let outcomes = List.concat_map (fun acc -> List.rev !acc) accumulators in
  let records = List.map fst outcomes in
  let latency = Metrics.private_histogram () in
  let per_scheme = Hashtbl.create 8 in
  List.iter
    (fun r ->
      Metrics.observe latency r.r_latency;
      match r.r_kind with
      | Served | Degraded ->
        let h =
          match Hashtbl.find_opt per_scheme r.r_scheme with
          | Some h -> h
          | None ->
            let h = Metrics.private_histogram () in
            Hashtbl.add per_scheme r.r_scheme h;
            h
        in
        Metrics.observe h r.r_latency
      | Unserved | Refused | Failed -> ())
    records;
  (* Verification against the in-process reference: the environment is
     rebuilt from one seed and every per-run PRNG is a pure split of
     it, so each scheme has exactly one reference execution — every
     served session must be bit-identical to it.  The reference runs
     under a fresh parse of the same fault spec, because plan presence
     is protocol-visible by design (the commutative canary audit only
     runs when a plan is installed).  Sessions that took more than one
     protocol epoch recovered mid-flight (a severed link, a killed
     replica): their final attempt may carry retry residue, so they are
     held to result bit-identity only — the same standard the chaos
     tests pin. *)
  let messages_of tr =
    List.map
      (fun (m : Secmed_mediation.Transcript.message) ->
        (m.seq, m.sender, m.receiver, m.label, m.size))
      (Secmed_mediation.Transcript.messages tr)
  in
  let verify_failures =
    if not config.verify then []
    else begin
      let references = Hashtbl.create 4 in
      let reference scheme =
        match Hashtbl.find_opt references scheme with
        | Some r -> r
        | None ->
          let r =
            match Protocol.scheme_of_name scheme with
            | None -> Error ("unknown scheme: " ^ scheme)
            | Some sch -> (
              let fault =
                if String.equal config.fault_spec "" then None
                else
                  match Secmed_mediation.Fault.of_spec config.fault_spec with
                  | Ok plan -> Some plan
                  | Error _ -> None
              in
              match
                Counters.with_fresh (fun () ->
                    Protocol.run_exn ?fault sch target.env target.client
                      ~query:target.query)
              with
              | outcome, _ -> Ok outcome
              | exception e -> Error (Printexc.to_string e))
          in
          Hashtbl.add references scheme r;
          r
      in
      List.filter_map
        (fun (r, response) ->
          let fail fmt =
            Printf.ksprintf
              (fun msg ->
                Some (Printf.sprintf "worker %d session %d (%s): %s" r.r_worker r.r_index
                        r.r_scheme msg))
              fmt
          in
          match (r.r_kind, response) with
          | (Unserved | Refused | Failed), _ -> None
          | Degraded, _ ->
            (* A degraded session served through another scheme than it
               asked for; its reference is the fallback's, which chaos
               timing picked — out of scope for bit-identity. *)
            None
          | Served, None -> fail "served but no response captured"
          | Served, Some response -> (
            match (response.Peer.result, reference r.r_scheme) with
            | _, Error msg -> fail "reference failed: %s" msg
            | Protocol.Unserved _, _ -> fail "kind/result mismatch"
            | Protocol.Served o, Ok ref_outcome ->
              let open Secmed_relalg in
              if
                not
                  (String.equal
                     (Relation.to_string ref_outcome.Outcome.result)
                     (Relation.to_string o.Outcome.result))
              then fail "result differs from in-process reference"
              else if response.Peer.epochs > 1 then
                (* Recovered mid-session: the served relation above is
                   the bit-identity claim; transcript accounting of the
                   aborted attempt is epoch-local. *)
                None
              else if
                not
                  (messages_of ref_outcome.Outcome.transcript
                  = messages_of o.Outcome.transcript)
              then begin
                let show (seq, s, r, label, size) =
                  Printf.sprintf "#%d %s->%s %s (%d bytes)" seq
                    (Secmed_mediation.Transcript.party_name s)
                    (Secmed_mediation.Transcript.party_name r)
                    label size
                in
                let ref_ms = messages_of ref_outcome.Outcome.transcript in
                let got_ms = messages_of o.Outcome.transcript in
                let rec first_diff i = function
                  | [], [] -> Printf.sprintf "equal prefixes but lengths %d/%d" (List.length ref_ms) (List.length got_ms)
                  | a :: _, [] -> Printf.sprintf "at %d: reference %s, session ended" i (show a)
                  | [], b :: _ -> Printf.sprintf "at %d: reference ended, session %s" i (show b)
                  | a :: tl, b :: tl' ->
                    if a = b then first_diff (i + 1) (tl, tl')
                    else Printf.sprintf "at %d: reference %s, session %s" i (show a) (show b)
                in
                fail "transcript differs from in-process reference (%s)"
                  (first_diff 0 (ref_ms, got_ms))
              end
              else if not (ref_outcome.Outcome.counters = o.Outcome.counters) then
                fail "primitive counters differ from in-process reference"
              else None))
        outcomes
    end
  in
  {
    records;
    elapsed;
    latency;
    per_scheme =
      Hashtbl.fold (fun s h acc -> (s, h) :: acc) per_scheme []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    verify_failures;
  }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let ms v = v *. 1000.

let render report =
  let buf = Buffer.create 512 in
  let n = List.length report.records in
  Buffer.add_string buf
    (Printf.sprintf "%d sessions in %.2fs (%.1f qps): %d served, %d degraded, %d unserved, %d refused, %d failed\n"
       n report.elapsed (qps report) (count Served report) (count Degraded report)
       (count Unserved report) (count Refused report) (count Failed report));
  if Metrics.histogram_count report.latency > 0 then
    Buffer.add_string buf
      (Printf.sprintf "  latency ms: p50=%.1f p95=%.1f p99=%.1f max=%.1f\n"
         (ms (Metrics.quantile report.latency 0.5))
         (ms (Metrics.quantile report.latency 0.95))
         (ms (Metrics.quantile report.latency 0.99))
         (ms (Metrics.histogram_max report.latency)));
  List.iter
    (fun (scheme, h) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-12s n=%-4d p50=%.1fms p95=%.1fms p99=%.1fms\n" scheme
           (Metrics.histogram_count h)
           (ms (Metrics.quantile h 0.5))
           (ms (Metrics.quantile h 0.95))
           (ms (Metrics.quantile h 0.99))))
    report.per_scheme;
  List.iter
    (fun msg -> Buffer.add_string buf (Printf.sprintf "  VERIFY FAILED: %s\n" msg))
    report.verify_failures;
  Buffer.contents buf

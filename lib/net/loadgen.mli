(** A deterministic client fleet for sustained-load measurement.

    [run] drives [workers × sessions_per_worker] remote queries against
    a live mediator, each worker a {!Peer.run} client in its own
    thread (grouped onto [domains] OCaml domains when client-side
    crypto should parallelize for real).  Everything randomized — which
    scheme each session poses, and when (open loop) — derives from pure
    [Prng.split]s of [seed] keyed by worker index, computed {e before}
    any I/O: the same seed and config replay the identical workload,
    whatever the cluster under test does with it.

    Arrival models:
    - [Closed]: each worker poses its next session the moment the
      previous one finishes — think "N looping users"; throughput is
      bounded by latency.
    - [Poisson rate]: open loop — session start times are drawn from an
      exponential inter-arrival distribution at [rate/workers] per
      worker, and a slow mediator does not slow the offered load down,
      it just answers late.  This is the model that exposes queueing
      collapse.

    Outcomes are typed: [Refused] counts the mediator's admission
    backpressure ([Busy] frames) separately from protocol failures
    ([Unserved]) and broken links ([Failed]).  Latencies land in
    {!Secmed_obs.Metrics} private histograms (overall and per scheme,
    served sessions only).

    With [verify = true] every served session is compared bit-for-bit
    (result relation, transcript messages, primitive counters) against
    the single in-process reference execution of its scheme — valid
    because replicas re-derive all randomness from the shared scenario
    seed, so a scheme's execution is identical across sessions. *)

open Secmed_core

type arrival = Closed | Poisson of float  (** aggregate sessions/sec *)

type config = {
  workers : int;
  sessions_per_worker : int;
  domains : int;
      (** worker-thread groups; 1 = plain threads.  Note OCaml forbids
          [Unix.fork] once any domain has been spawned: keep this at 1
          in a process that forks clusters afterwards (the loopback
          harness does). *)
  mix : (string * int) list;  (** scheme → weight (weights need not sum to anything) *)
  arrival : arrival;
  seed : string;
  fault_spec : string;  (** forwarded to every query, "" = none *)
  deadline : float;  (** per-query deadline seconds, 0 = none *)
  fallback : bool;
  io_timeout : float;
  verify : bool;
  trace : bool;
      (** request distributed tracing on every session; the returned
          span batches are discarded — the knob exists to measure the
          pipeline's overhead under load *)
  retry_connect : int;
      (** how many times a session that never started (unreachable
          peer, link death before the verdict, typed [Draining]) is
          re-posed; 0 = never.  [Busy] is never retried.  What lets a
          fleet ride out a process restart without losing sessions. *)
  retry_backoff : float;
      (** base of the exponential retry backoff, seconds (capped 2s) *)
}

val default_config : config
(** 8 closed-loop workers × 4 sessions, das/commutative/pm equally
    weighted, seed ["loadgen"], no faults, no verification. *)

type planned = { p_worker : int; p_index : int; p_scheme : string; p_at : float }

val plan : config -> planned list list
(** The full deterministic schedule, one list per worker: scheme per
    session and (open loop) the planned start offset in seconds.  Pure:
    never touches the network, never mutates the config's seed. *)

type outcome_kind = Served | Degraded | Unserved | Refused | Failed

val kind_name : outcome_kind -> string

type record = {
  r_worker : int;
  r_index : int;
  r_scheme : string;
  r_kind : outcome_kind;
  r_latency : float;  (** seconds, connect to verdict (final try only) *)
  r_epochs : int;
  r_started : float;  (** first try's start, seconds since fleet start *)
  r_finished : float;  (** verdict instant, seconds since fleet start *)
  r_retries : int;  (** connect retries this session burned *)
}

type report = {
  records : record list;  (** per worker, in issue order *)
  elapsed : float;
  latency : Secmed_obs.Metrics.histogram;
  per_scheme : (string * Secmed_obs.Metrics.histogram) list;
  verify_failures : string list;  (** empty unless [verify] and a mismatch *)
}

val count : outcome_kind -> report -> int
val qps : report -> float

type target = {
  host : string;
  port : int;
  scenario : string;
  env : Env.t;
  client : Env.client;
  query : string;
}

val run : config -> target -> report

val render : report -> string
(** Multi-line human-readable summary (counts, qps, percentiles per
    scheme, verification failures if any). *)

open Secmed_mediation
open Secmed_core

type cluster = {
  c_env : Env.t;
  c_client : Env.client;
  c_query : string;
  c_scenario : string;
  c_port : int;
  c_io_timeout : float;
  c_proxies : (int * Chaos.t) list;
  c_source_pids : ((int * int * int) * int) list;  (* (source id, shard, replica) -> pid *)
  c_mediator_pid : int;
}

let env c = c.c_env
let client_of c = c.c_client
let canonical_query c = c.c_query
let scenario c = c.c_scenario
let port c = c.c_port
let mediator_pid c = c.c_mediator_pid

let source_pid c ?(shard = 0) ~id ~replica () =
  match List.assoc_opt (id, shard, replica) c.c_source_pids with
  | Some pid -> pid
  | None ->
    invalid_arg
      (Printf.sprintf "Loopback.source_pid: no source %d shard %d replica %d" id shard replica)

let chaos_events c sid =
  match List.assoc_opt sid c.c_proxies with
  | Some proxy -> Fault.events (Chaos.plan proxy)
  | None -> []

(* Children must never escape into the caller's control flow (test
   runners, at_exit hooks): whatever happens, they exit here. *)
let fork_proc f =
  match Unix.fork () with
  | 0 ->
    (try f () with _ -> ());
    Unix._exit 0
  | pid -> pid

let with_cluster ?params ?policy ?(chaos = []) ?(max_sessions = 8) ?(io_timeout = 10.)
    ?source_conns ?workers ?(standbys = 0) ?(shards = 1) ?health_interval ?drain_deadline
    ~spec f =
  if shards < 1 then invalid_arg "Loopback.with_cluster: shards must be >= 1";
  let c_env, c_client, c_query = Workload.scenario ?params spec in
  let c_scenario = Scenario.digest ?params spec in
  let replicas = 1 + max 0 standbys in
  (* Reserve every port before any process starts: a pre-bound listener
     queues connections until its owner calls accept, so there is no
     startup race to sleep around.  With [standbys], each shard gets
     that many extra daemon processes — every replica a deterministic
     twin built from the same seed; with [shards] > 1, each source id
     splits into that many partitioned daemons (DESIGN.md §16). *)
  let source_fds =
    List.concat_map
      (fun sid ->
        List.concat_map
          (fun sh -> List.init replicas (fun r -> ((sid, sh, r), Io.listen ~port:0 ())))
          (List.init shards Fun.id))
      [ 1; 2 ]
  in
  let med_fd, med_port = Io.listen ~port:0 () in
  let proxy_fds = List.map (fun (sid, plan) -> (sid, plan, Io.listen ~port:0 ())) chaos in
  (* A chaos proxy interposes on the primary (shard 0, replica 0) only:
     the plan narrates one link's faults, and failover tests want the
     standby clean. *)
  let addr_for (sid, sh, r) port =
    match
      List.find_opt (fun (psid, _, _) -> psid = sid && sh = 0 && r = 0) proxy_fds
    with
    | Some (_, _, (_, pport)) -> ("127.0.0.1", pport)
    | None -> ("127.0.0.1", port)
  in
  let c_source_pids =
    List.map
      (fun ((sid, sh, r), (fd, _)) ->
        ( (sid, sh, r),
          fork_proc (fun () ->
              Peer.source ~id:sid ~env:c_env ~client:c_client
                ~scenario:(Shard.digest c_scenario ~shard:(sh, shards))
                ~listen_fd:fd ~shard:(sh, shards) ~io_timeout ?drain_deadline
                ~drain_on_sigterm:true ()) ))
      source_fds
  in
  let c_mediator_pid =
    fork_proc (fun () ->
        let sources =
          List.map
            (fun sid ->
              ( sid,
                List.init shards (fun sh ->
                    List.init replicas (fun r ->
                        let _, sport = List.assoc (sid, sh, r) source_fds in
                        addr_for (sid, sh, r) sport)) ))
            [ 1; 2 ]
        in
        let server =
          Server.create ~env:c_env ~client:c_client ~scenario:c_scenario ~sources
            ~listen_fd:med_fd ?policy ~max_sessions ~io_timeout ?source_conns ?workers
            ?drain_deadline ?health_interval ()
        in
        Sys.set_signal Sys.sigterm
          (Sys.Signal_handle (fun _ -> Server.begin_drain server));
        Server.serve server)
  in
  let pids = List.map snd c_source_pids @ [ c_mediator_pid ] in
  (* The children own the listeners now; the proxies, which live as
     threads in this process, start only after the forks so no thread
     state is cloned into a child. *)
  List.iter (fun (_, (fd, _)) -> try Unix.close fd with Unix.Unix_error _ -> ()) source_fds;
  (try Unix.close med_fd with Unix.Unix_error _ -> ());
  let c_proxies =
    List.map
      (fun (sid, plan, (pfd, pport)) ->
        let _, sport = List.assoc (sid, 0, 0) source_fds in
        ( sid,
          Chaos.start ~plan ~target_host:"127.0.0.1" ~target_port:sport
            ~listen:(pfd, pport) () ))
      proxy_fds
  in
  let cluster =
    { c_env; c_client; c_query; c_scenario; c_port = med_port; c_io_timeout = io_timeout;
      c_proxies; c_source_pids; c_mediator_pid }
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (_, p) -> Chaos.stop p) c_proxies;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        pids)
    (fun () -> f cluster)

let target c =
  {
    Loadgen.host = "127.0.0.1";
    port = c.c_port;
    scenario = c.c_scenario;
    env = c.c_env;
    client = c.c_client;
    query = c.c_query;
  }

let query c ?fault_spec ?deadline ?fallback ?io_timeout ?trace ~scheme () =
  Peer.run ~host:"127.0.0.1" ~port:c.c_port ~scenario:c.c_scenario ~scheme ~query:c.c_query
    ?fault_spec ?deadline ?fallback
    ~io_timeout:(Option.value io_timeout ~default:c.c_io_timeout)
    ?trace c.c_env c.c_client

(** A complete distributed deployment on 127.0.0.1, for tests and
    benches inside [dune runtest].

    {!with_cluster} forks one process per datasource daemon and one for
    the mediator server, all on pre-bound ephemeral ports (no races, no
    fixed port collisions); the calling process then plays the remote
    client via {!query}.  The environment is built {e before} forking,
    so every process replays the identical scenario by construction —
    the same guarantee the digest handshake enforces for independently
    started daemons.

    Chaos plans, when given, interpose a {!Chaos} proxy on the named
    source's mediator link; the proxy threads run in the parent so the
    plan's event log stays readable by the test. *)

open Secmed_mediation
open Secmed_core

type cluster

val env : cluster -> Env.t
val client_of : cluster -> Env.client
val canonical_query : cluster -> string
val scenario : cluster -> string
val port : cluster -> int

val chaos_events : cluster -> int -> Fault.event list
(** What the proxy on this source's link actually did to the stream. *)

val with_cluster :
  ?params:Env.params ->
  ?policy:Resilience.policy ->
  ?chaos:(int * Fault.plan) list ->
  ?max_sessions:int ->
  ?io_timeout:float ->
  ?source_conns:int ->
  ?workers:int ->
  ?standbys:int ->
  ?shards:int ->
  ?health_interval:float ->
  ?drain_deadline:float ->
  spec:Workload.spec ->
  (cluster -> 'a) ->
  'a
(** Children are killed (and proxies stopped) however the callback
    ends.  [source_conns]/[workers]/[health_interval]/[drain_deadline]
    forward to {!Server.create}.  [standbys] (default 0) forks that
    many extra replica daemons per shard — deterministic twins the
    mediator's pool lists as failover candidates behind the primary;
    chaos proxies, when given, interpose on the primary (shard 0,
    replica 0) only.  [shards] (default 1) splits each source into that
    many partitioned daemons: streamed deliveries arrive as k merged
    chunk streams, and results must be bit-identical to the unsharded
    run (DESIGN.md §16).  The mediator installs a SIGTERM →
    {!Server.begin_drain} handler, so a test can drain-restart it like
    a real deployment would. *)

val source_pid : cluster -> ?shard:int -> id:int -> replica:int -> unit -> int
(** The daemon process serving [replica] (0 = primary) of source [id]
    (shard 0 by default) — for tests that SIGKILL a specific process. *)

val mediator_pid : cluster -> int

val target : cluster -> Loadgen.target
(** The cluster's mediator as a {!Loadgen} target (the parent process
    plays the whole client fleet). *)

val query :
  cluster ->
  ?fault_spec:string ->
  ?deadline:float ->
  ?fallback:bool ->
  ?io_timeout:float ->
  ?trace:bool ->
  scheme:string ->
  unit ->
  Peer.response
(** One remote query from the parent process (a fresh client connection
    per call).  [trace] forwards to {!Peer.run}: every process collects
    spans and the response carries the merged-ready batches. *)

open Secmed_mediation
open Secmed_core
module Mux = Endpoint.Mux
module Obs = Secmed_obs

exception Refused of string
exception Draining of string

type health = { h_role : Transcript.party; h_draining : bool; h_active : int }

(* ------------------------------------------------------------------ *)
(* Datasource daemon *)

let parse_fault fault_spec =
  if String.equal fault_spec "" then None
  else
    match Fault.of_spec fault_spec with
    | Ok p -> Some p
    | Error _ -> None (* the mediator validated it; fail open rather than diverge *)

let source_session ~role ~shard ~env ~client ~io_timeout mux session =
  let route =
    Endpoint.plain_route
      ~send:(fun f -> Mux.send mux f)
      ~next:(fun ~timeout -> Mux.next mux ~session ~timeout)
  in
  let fault = ref None in
  let parsed = ref false in
  let rec loop () =
    match Mux.next mux ~session ~timeout:120. with
    | Frame.Session_start { epoch; attempt; scheme; query; fault_spec; trace_id; trace_parent; _ }
      ->
      if not !parsed then begin
        (* One plan for the whole session: rule [times] counters burn
           down across attempts, mirroring the mediator's single plan. *)
        fault := parse_fault fault_spec;
        parsed := true
      end;
      let run_attempt () =
        Endpoint.run_replica ~role ~fault:!fault ~session ~epoch ~attempt ~scheme ~query
          ~io_timeout ~shard ~route env client
      in
      let status, batch =
        if String.equal trace_id "" then (fst (run_attempt ()), None)
        else begin
          (* A fresh collector per attempt, bound to this session's
             thread only: concurrent sessions on the shared mux never
             interleave spans.  The batch ships after the Report so the
             mediator's verdict path is never blocked on span traffic. *)
          let collector = Obs.Trace.create () in
          let status, _ = Obs.Trace.with_collector collector run_attempt in
          (status, Some (Trace_wire.payload_of collector))
        end
      in
      (try
         Mux.send mux (Frame.Report { session; epoch; status });
         match batch with
         | Some payload ->
           Mux.send mux
             (Frame.Span_batch { session; party = role; parent = trace_parent; payload })
         | None -> ()
       with Io.Transport_error _ -> ());
      loop ()
    | Frame.Session_end _ -> Mux.unsubscribe mux session
    | Frame.Msg _ | Frame.Abort _ | Frame.Report _ ->
      (* Leftovers of an attempt that ended on this side first. *)
      loop ()
    | _ -> loop ()
    | exception Io.Transport_error _ -> Mux.unsubscribe mux session
  in
  loop ()

(* The daemon's drain state.  [sd_draining] is flipped by only
   idempotent field writes so the SIGTERM handler may call it at any
   safe point; [sd_active] counts live session threads across every
   pooled connection. *)
type source_drain = {
  sd_mu : Mutex.t;
  mutable sd_active : int;
  mutable sd_draining : bool;
  mutable sd_deadline_at : float;
}

let source ~id ~env ~client ~scenario ~listen_fd ?(shard = (0, 1)) ?(io_timeout = 10.)
    ?(drain_deadline = 30.) ?(drain_on_sigterm = false) () =
  let role = Transcript.Source id in
  let sd =
    { sd_mu = Mutex.create (); sd_active = 0; sd_draining = false; sd_deadline_at = infinity }
  in
  let begin_drain deadline =
    if not sd.sd_draining then begin
      sd.sd_deadline_at <- Unix.gettimeofday () +. deadline;
      sd.sd_draining <- true
    end
  in
  if drain_on_sigterm then
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> begin_drain drain_deadline));
  let serve_conn conn =
    match Frame.decode (Io.recv_frame conn) with
    | Frame.Ping ->
      let h_active = Mutex.protect sd.sd_mu (fun () -> sd.sd_active) in
      (try
         Io.send_frame conn
           (Frame.encode (Frame.Health { h_role = role; h_draining = sd.sd_draining; h_active }))
       with Io.Transport_error _ -> ());
      Io.close conn
    | Frame.Drain { scenario = s; deadline } ->
      (* Same credential as the Hello handshake: only a process built
         from the shared seed can present the digest. *)
      (try
         if String.equal s scenario then begin
           begin_drain (if deadline > 0. then deadline else drain_deadline);
           Io.send_frame conn (Frame.encode Frame.Drain_ok)
         end
         else
           Io.send_frame conn
             (Frame.encode (Frame.Busy "drain refused: scenario digest mismatch"))
       with Io.Transport_error _ -> ());
      Io.close conn
    | Frame.Hello { role = Transcript.Mediator; scenario = s }
      when String.equal s scenario && sd.sd_draining ->
      Io.send_frame conn (Frame.encode (Frame.Draining "source is draining"));
      Io.close conn
    | Frame.Hello { role = Transcript.Mediator; scenario = s } when String.equal s scenario ->
      Io.send_frame conn (Frame.encode (Frame.Hello_ok { scenario }));
      (* Sessions wait with their own timeouts; the shared socket must
         tolerate idle stretches between queries. *)
      Io.set_timeout conn 0.;
      let mux = Mux.create conn in
      (* Every Session_start is announced on the control queue, and a
         resilient session announces each attempt: exactly one handler
         thread per session must result. *)
      let live_mu = Mutex.create () in
      let live = Hashtbl.create 8 in
      let rec control () =
        match Mux.next_control mux ~timeout:0. with
        | Frame.Session_start { session; epoch; _ } ->
          (* The mux already parked this frame (and anything racing in
             behind it) on the session's own queue; this copy is just
             the announcement. *)
          let fresh =
            Mutex.protect live_mu (fun () ->
                if Hashtbl.mem live session then false
                else begin
                  Hashtbl.replace live session ();
                  true
                end)
          in
          if fresh then begin
            if sd.sd_draining then begin
              (* A brand-new session on a pooled connection that predates
                 the drain: refuse it with a typed report (the mediator
                 marks this replica down and retries on a standby) rather
                 than admitting work the deadline may cut short. *)
              Mutex.protect live_mu (fun () -> Hashtbl.remove live session);
              Mux.unsubscribe mux session;
              try
                Mux.send mux
                  (Frame.Report
                     { session; epoch;
                       status =
                         Frame.St_failed
                           { Fault.phase = "admission"; party = role; reason = "draining" } })
              with Io.Transport_error _ -> ()
            end
            else begin
              Mutex.protect sd.sd_mu (fun () -> sd.sd_active <- sd.sd_active + 1);
              ignore
                (Thread.create
                   (fun () ->
                     Fun.protect
                       ~finally:(fun () ->
                         Secmed_crypto.Counters.release ();
                         Mutex.protect live_mu (fun () -> Hashtbl.remove live session);
                         Mutex.protect sd.sd_mu (fun () -> sd.sd_active <- sd.sd_active - 1))
                       (fun () -> source_session ~role ~shard ~env ~client ~io_timeout mux session))
                   ()
                  : Thread.t)
            end
          end;
          control ()
        | _ -> control ()
        | exception Io.Transport_error _ -> Io.close conn
      in
      control ()
    | Frame.Hello _ ->
      Io.send_frame conn
        (Frame.encode (Frame.Busy "scenario digest mismatch (wrong workload or parameters)"));
      Io.close conn
    | _ -> Io.close conn
    | exception (Io.Transport_error _ | Wire.Malformed _) -> Io.close conn
  in
  (* A daemon waits for its mediator indefinitely; [io_timeout] guards
     per-operation I/O once a connection exists, not the accept.  Each
     accepted connection gets its own thread: a mediator with a
     connection pool dials this daemon [source_conns] times, and every
     pooled link must be serviceable at once.  The loop ticks on a
     short select (an accept with no timeout would pin a drained daemon
     to its socket) and exits once draining and idle — or past the
     drain deadline. *)
  let rec accept_loop () =
    if
      sd.sd_draining
      && (Mutex.protect sd.sd_mu (fun () -> sd.sd_active) = 0
         || Unix.gettimeofday () > sd.sd_deadline_at)
    then ()
    else begin
      match Unix.select [ listen_fd ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ -> ()
      | [], _, _ -> accept_loop ()
      | _ :: _, _, _ -> (
        match Io.accept listen_fd with
        | conn ->
          ignore (Thread.create serve_conn conn : Thread.t);
          accept_loop ()
        | exception Io.Transport_error _ -> ())
    end
  in
  accept_loop ();
  if sd.sd_draining then (try Unix.close listen_fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Remote client *)

type response = {
  result : Protocol.session_result;
  epochs : int;
  link_stats : (Transcript.party * int * int) list;
  socket_bytes : int * int;
  remote_spans : Trace_wire.remote list;
}

let failure_of_wire attempts (f : Fault.failure) =
  { Protocol.phase = f.Fault.phase; party = f.Fault.party; reason = f.Fault.reason; attempts }

let run ~host ~port ~scenario ~scheme ~query ?(fault_spec = "") ?(deadline = 0.)
    ?(fallback = true) ?(io_timeout = 10.) ?(trace = false) env client =
  let conn = Io.connect ~timeout:io_timeout ~host ~port () in
  Fun.protect ~finally:(fun () -> Io.close conn) @@ fun () ->
  Io.send_frame conn (Frame.encode (Frame.Hello { role = Transcript.Client; scenario }));
  (match Frame.decode (Io.recv_frame conn) with
  | Frame.Hello_ok { scenario = s } when String.equal s scenario -> ()
  | Frame.Hello_ok _ -> raise (Io.Transport_error "scenario digest mismatch with the mediator")
  | Frame.Busy reason -> raise (Refused reason)
  | Frame.Draining reason -> raise (Draining reason)
  | f -> raise (Io.Transport_error ("unexpected " ^ Frame.tag_name f ^ " in handshake")));
  Io.send_frame conn
    (Frame.encode (Frame.Query { scheme; query; fault_spec; deadline; fallback; trace }));
  let route =
    Endpoint.plain_route
      ~send:(fun f -> Io.send_frame conn (Frame.encode f))
      ~next:(fun ~timeout ->
        Io.set_timeout conn timeout;
        Frame.decode (Io.recv_frame conn))
  in
  let fault = ref None in
  let parsed = ref false in
  let outcomes = Hashtbl.create 4 in
  let last_epoch = ref 0 in
  let batches = ref [] in
  let finish result =
    let socket_bytes = (Io.bytes_in conn, Io.bytes_out conn) in
    let remote_spans = List.rev !batches in
    match result with
    | Frame.W_served { w_scheme; w_attempts; w_degraded; w_link_stats } ->
      let outcome =
        match Hashtbl.find_opt outcomes w_scheme with
        | Some o -> o
        | None ->
          raise
            (Io.Transport_error
               (Printf.sprintf "mediator served %s but this replica holds no outcome for it"
                  w_scheme))
      in
      let outcome =
        match w_degraded with
        | None -> outcome
        | Some (from_scheme, reason) -> Outcome.mark_degraded outcome ~from_scheme ~reason
      in
      {
        result = Protocol.Served outcome;
        epochs = w_attempts;
        link_stats = w_link_stats;
        socket_bytes;
        remote_spans;
      }
    | Frame.W_unserved tried ->
      {
        result =
          Protocol.Unserved
            (List.map (fun (s, f, attempts) -> (s, failure_of_wire attempts f)) tried);
        epochs = !last_epoch;
        link_stats = [];
        socket_bytes;
        remote_spans;
      }
  in
  (* Between attempts the mediator may be backing off, running another
     session, or re-dialing a source: wait generously, not forever. *)
  let idle_timeout = Float.max 60. (io_timeout *. 6.) in
  let rec serve_loop () =
    Io.set_timeout conn idle_timeout;
    match Frame.decode (Io.recv_frame conn) with
    | Frame.Session_start
        { session; epoch; attempt; scheme = sname; query = q; fault_spec = fs; _ } ->
      last_epoch := epoch;
      if not !parsed then begin
        fault := parse_fault fs;
        parsed := true
      end;
      let status, outcome =
        Endpoint.run_replica ~role:Transcript.Client ~fault:!fault ~session ~epoch ~attempt
          ~scheme:sname ~query:q ~io_timeout ~route env client
      in
      (match outcome with
      | Some o -> Hashtbl.replace outcomes o.Outcome.scheme o
      | None -> ());
      Io.send_frame conn (Frame.encode (Frame.Report { session; epoch; status }));
      serve_loop ()
    | Frame.Session_result { result; _ } -> finish result
    | Frame.Busy reason -> raise (Refused reason)
    | Frame.Draining reason -> raise (Draining reason)
    | Frame.Span_batch { party; parent; payload; _ } ->
      batches := { Trace_wire.rm_party = party; rm_parent = parent; rm_payload = payload }
                 :: !batches;
      serve_loop ()
    | Frame.Msg _ | Frame.Abort _ | Frame.Report _ | Frame.Session_end _ -> serve_loop ()
    | f -> raise (Io.Transport_error ("unexpected " ^ Frame.tag_name f))
  in
  serve_loop ()

(* ------------------------------------------------------------------ *)
(* Ops client *)

let stats ~host ~port ?(io_timeout = 10.) () =
  let conn = Io.connect ~timeout:io_timeout ~host ~port () in
  Fun.protect ~finally:(fun () -> Io.close conn) @@ fun () ->
  Io.send_frame conn (Frame.encode Frame.Stats_request);
  match Frame.decode (Io.recv_frame conn) with
  | Frame.Stats { payload } -> payload
  | Frame.Busy reason -> raise (Refused reason)
  | f -> raise (Io.Transport_error ("unexpected " ^ Frame.tag_name f ^ " to a stats request"))

let ping ~host ~port ?(io_timeout = 10.) () =
  let conn = Io.connect ~timeout:io_timeout ~host ~port () in
  Fun.protect ~finally:(fun () -> Io.close conn) @@ fun () ->
  Io.send_frame conn (Frame.encode Frame.Ping);
  match Frame.decode (Io.recv_frame conn) with
  | Frame.Health { h_role; h_draining; h_active } -> { h_role; h_draining; h_active }
  | Frame.Busy reason -> raise (Refused reason)
  | f -> raise (Io.Transport_error ("unexpected " ^ Frame.tag_name f ^ " to a ping"))

let drain ~host ~port ~scenario ?(deadline = 0.) ?(io_timeout = 10.) () =
  let conn = Io.connect ~timeout:io_timeout ~host ~port () in
  Fun.protect ~finally:(fun () -> Io.close conn) @@ fun () ->
  Io.send_frame conn (Frame.encode (Frame.Drain { scenario; deadline }));
  match Frame.decode (Io.recv_frame conn) with
  | Frame.Drain_ok -> ()
  | Frame.Busy reason -> raise (Refused reason)
  | f -> raise (Io.Transport_error ("unexpected " ^ Frame.tag_name f ^ " to a drain request"))

(** The leaf processes: datasource daemons and the remote client.

    Both are replicas in the deterministic-execution model — they build
    the same environment from the same seed as the mediator, run the
    same drivers, and the transport only carries the messages each party
    actually plays a side of (plus the session-control frames). *)

open Secmed_mediation
open Secmed_core

exception Refused of string
(** The mediator (or a datasource) turned the connection away with a
    typed [Busy] frame — at capacity (admission-control backpressure)
    or a scenario digest mismatch.  The payload is the peer's reason.
    Distinct from {!Io.Transport_error} so a load generator can count
    backpressure separately from broken links. *)

exception Draining of string
(** The peer refused a new session with a typed [Draining] frame: it is
    shutting down gracefully.  Distinct from {!Refused} ([Busy]) — a
    draining process will not come back, so the right reaction is to
    retry against its restarted successor, not to back off. *)

(** A peer's answer to a [Ping] probe. *)
type health = {
  h_role : Secmed_mediation.Transcript.party;
  h_draining : bool;
  h_active : int;  (** sessions currently in flight at the peer *)
}

val source :
  id:int ->
  env:Env.t ->
  client:Env.client ->
  scenario:string ->
  listen_fd:Unix.file_descr ->
  ?shard:int * int ->
  ?io_timeout:float ->
  ?drain_deadline:float ->
  ?drain_on_sigterm:bool ->
  unit ->
  unit
(** Run datasource [id] as a daemon: accept mediator connections (a
    thread per connection — a pooling mediator dials several),
    multiplex concurrent sessions over each (a thread per session),
    and per [Session_start] run this source's replica of the attempt and
    report how it ended.  [shard] (default [(0, 1)]) makes this daemon
    shard j of k of the logical source: it transmits only its row
    partition of streamed deliveries (shard 0 alone speaks the scalar
    frames), and [scenario] must then be the matching {!Shard.digest}.  The session's fault spec is parsed once, so a
    [times]-bounded rule burns down across attempts exactly as it does
    in-process.  Returns when the listening socket is closed.

    [Ping] probes are answered with a [Health] frame before any
    handshake.  A [Drain] frame carrying the right scenario digest (or
    SIGTERM, when [drain_on_sigterm] is set — default off so embedding
    processes keep their own handlers) flips the daemon into draining:
    new connections are refused with [Draining], brand-new sessions on
    existing pooled connections are refused with a typed
    [St_failed]/"draining" report (the mediator fails them over to a
    standby), in-flight sessions finish under [drain_deadline] (default
    30s), and the daemon then returns cleanly. *)

(** What a remote query yields on the client side.  [result] is
    reconstructed from the client replica's own outcomes plus the
    mediator's [Session_result] verdict; [link_stats] are the mediator's
    per-counterpart payload byte counters [(party, sent, received)];
    [socket_bytes] the raw (framing-included) bytes this client moved. *)
type response = {
  result : Protocol.session_result;
  epochs : int;  (** attempts broadcast across the whole session *)
  link_stats : (Transcript.party * int * int) list;
  socket_bytes : int * int;  (** (received, sent) on the client socket *)
  remote_spans : Trace_wire.remote list;
      (** span batches forwarded by the mediator (its own plus every
          source's), in arrival order; [[]] unless [trace] was set *)
}

val run :
  host:string ->
  port:int ->
  scenario:string ->
  scheme:string ->
  query:string ->
  ?fault_spec:string ->
  ?deadline:float ->
  ?fallback:bool ->
  ?io_timeout:float ->
  ?trace:bool ->
  Env.t ->
  Env.client ->
  response
(** Connect to a mediator, pose one query, and play the client replica
    for every attempt the mediator announces.  With [trace] (default
    off) the query asks every process to collect spans and ship them
    back; merge [remote_spans] with the caller's own collector via
    {!Trace_wire.merge}.  Raises {!Refused} when the mediator turns the
    connection away ([Busy]: at capacity, or its scenario digest
    disagrees), {!Io.Transport_error} when the mediator is unreachable
    or the link dies mid-session. *)

val stats : host:string -> port:int -> ?io_timeout:float -> unit -> string
(** Ask a running mediator for its live stats snapshot (JSON text, the
    [Stats] frame payload).  Answered without admission control, so it
    works against a server at capacity. *)

val ping : host:string -> port:int -> ?io_timeout:float -> unit -> health
(** One liveness probe against a mediator or datasource daemon.
    Answered before admission and before any handshake; raises
    {!Io.Transport_error} when the peer is unreachable. *)

val drain :
  host:string -> port:int -> scenario:string -> ?deadline:float -> ?io_timeout:float ->
  unit -> unit
(** Ask a peer to drain gracefully.  [scenario] must be the peer's
    {!Scenario.digest} — the drain frame is authenticated by the same
    shared-seed credential as the session handshake.  [deadline] [> 0]
    overrides the peer's default drain deadline.  Raises {!Refused} when
    the digest does not match. *)

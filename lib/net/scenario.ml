open Secmed_core

let digest ?(params = Env.default_params) (spec : Workload.spec) =
  let value_kind =
    match spec.Workload.value_kind with Workload.Ints -> "ints" | Workload.Strings -> "strings"
  in
  let canonical =
    Printf.sprintf "secmed-scenario-v1|%d|%d|%d|%d|%d|%d|%s|%h|%d|%d|%d" spec.Workload.rows_left
      spec.Workload.rows_right spec.Workload.distinct_left spec.Workload.distinct_right
      spec.Workload.overlap spec.Workload.extra_attrs value_kind spec.Workload.skew
      spec.Workload.seed params.Env.group_bits params.Env.paillier_bits
  in
  Secmed_crypto.Sha256.hex_digest canonical

(** Scenario fingerprinting for the replicated-execution handshake.

    Every process in a distributed deployment must derive the identical
    environment — same workload spec, same crypto parameters, same seed —
    or the replicas diverge and every payload check fails with a
    confusing mismatch.  The [Hello] exchange therefore carries this
    digest, turning a misconfigured daemon into an immediate, explicit
    connection error. *)

val digest : ?params:Secmed_core.Env.params -> Secmed_core.Workload.spec -> string
(** SHA-256 (hex) over a versioned canonical rendering of the spec and
    parameters. *)

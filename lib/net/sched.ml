(* A bounded pool of worker systhreads with a FIFO submission queue.

   The mediator hands each accepted session to [run], which blocks the
   connection thread until a worker has executed the thunk and either
   returns its result or re-raises its exception.  Admission control
   (Server.max_sessions) bounds how many sessions are accepted at all;
   the pool bounds how many protocol drivers execute at once — sessions
   beyond [workers] queue in FIFO order instead of failing.  Workers are
   plain systhreads: driver state (Counters, Bigint caches) is
   thread-local, so concurrent drivers on different workers never
   interleave their accounting. *)

exception Stopped

type job = Job : (unit -> 'a) * 'a slot -> job

and 'a slot = {
  mutable outcome : 'a outcome;
  s_mu : Mutex.t;
  s_cond : Condition.t;
}

and 'a outcome = Pending | Done of 'a | Raised of exn * Printexc.raw_backtrace

type t = {
  mu : Mutex.t;
  cond : Condition.t;
  queue : job Queue.t;
  mutable stopping : bool;
  mutable threads : Thread.t list;
  workers : int;
  (* Lifetime accounting, all under [mu]; [busy_seconds] accumulates
     wall time inside job thunks, so utilization over an interval is
     (Δbusy_seconds / Δwall) / workers. *)
  mutable busy : int;
  mutable submitted : int;
  mutable completed : int;
  mutable rejected : int;
  mutable busy_seconds : float;
}

type stats = {
  st_workers : int;
  st_busy : int;
  st_queued : int;
  st_submitted : int;
  st_completed : int;
  st_rejected : int;
  st_busy_seconds : float;
}

let worker t =
  let rec loop () =
    let job =
      Mutex.protect t.mu (fun () ->
          while Queue.is_empty t.queue && not t.stopping do
            Condition.wait t.cond t.mu
          done;
          if Queue.is_empty t.queue then None
          else begin
            t.busy <- t.busy + 1;
            Some (Queue.pop t.queue)
          end)
    in
    match job with
    | None -> ()
    | Some (Job (f, slot)) ->
      let started = Unix.gettimeofday () in
      let outcome =
        match f () with
        | v -> Done v
        | exception e -> Raised (e, Printexc.get_raw_backtrace ())
      in
      Mutex.protect t.mu (fun () ->
          t.busy <- t.busy - 1;
          t.completed <- t.completed + 1;
          t.busy_seconds <- t.busy_seconds +. (Unix.gettimeofday () -. started));
      Mutex.protect slot.s_mu (fun () ->
          slot.outcome <- outcome;
          Condition.signal slot.s_cond);
      loop ()
  in
  loop ()

let create ~workers =
  let workers = max 1 workers in
  let t =
    {
      mu = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      threads = [];
      workers;
      busy = 0;
      submitted = 0;
      completed = 0;
      rejected = 0;
      busy_seconds = 0.;
    }
  in
  t.threads <- List.init workers (fun _ -> Thread.create worker t);
  t

let workers t = t.workers

let stats t =
  Mutex.protect t.mu (fun () ->
      {
        st_workers = t.workers;
        st_busy = t.busy;
        st_queued = Queue.length t.queue;
        st_submitted = t.submitted;
        st_completed = t.completed;
        st_rejected = t.rejected;
        st_busy_seconds = t.busy_seconds;
      })

let run t f =
  let slot = { outcome = Pending; s_mu = Mutex.create (); s_cond = Condition.create () } in
  Mutex.protect t.mu (fun () ->
      if t.stopping then raise Stopped;
      t.submitted <- t.submitted + 1;
      Queue.push (Job (f, slot)) t.queue;
      Condition.signal t.cond);
  let pending () = match slot.outcome with Pending -> true | _ -> false in
  Mutex.protect slot.s_mu (fun () ->
      while pending () do
        Condition.wait slot.s_cond slot.s_mu
      done);
  match slot.outcome with
  | Done v -> v
  | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

(* With [drain:false], queued-but-unstarted jobs are rejected with a
   typed [Stopped] raised at their blocked submitter, not silently
   dropped (which would leave the submitter waiting forever on a slot
   no worker will ever fill). *)
let stop ?(drain = true) t =
  let rejected =
    Mutex.protect t.mu (fun () ->
        t.stopping <- true;
        let rejected =
          if drain then []
          else begin
            let jobs = List.of_seq (Queue.to_seq t.queue) in
            Queue.clear t.queue;
            t.rejected <- t.rejected + List.length jobs;
            jobs
          end
        in
        Condition.broadcast t.cond;
        rejected)
  in
  List.iter
    (fun (Job (_, slot)) ->
      Mutex.protect slot.s_mu (fun () ->
          slot.outcome <- Raised (Stopped, Printexc.get_callstack 0);
          Condition.signal slot.s_cond))
    rejected;
  List.iter Thread.join t.threads;
  t.threads <- []

(** A bounded worker-thread pool with a FIFO submission queue — the
    mediator's per-session scheduler.

    Admission control decides how many sessions get {e accepted};
    the pool decides how many protocol drivers {e execute} at once.
    Submissions beyond the worker count queue in arrival order, so a
    burst degrades to queueing delay rather than refusals or
    interleaved execution.  Workers are systhreads: every piece of
    driver state that matters ([Counters] attribution, Bigint
    context caches) is thread-local, so drivers on distinct workers
    never corrupt each other. *)

type t

exception Stopped
(** Raised at a submitter whose job was refused ({!run} after {!stop})
    or rejected while queued ({!stop} [~drain:false]). *)

val create : workers:int -> t
(** Spawns [max 1 workers] worker threads, all idle. *)

val workers : t -> int

(** A consistent snapshot of the pool's accounting, read under the pool
    lock.  [st_busy_seconds] is cumulative wall time spent inside job
    thunks since creation, so utilization over an observation interval
    is [Δst_busy_seconds / (interval × st_workers)]. *)
type stats = {
  st_workers : int;
  st_busy : int;       (** workers executing a job right now *)
  st_queued : int;     (** submitted jobs not yet picked up *)
  st_submitted : int;
  st_completed : int;
  st_rejected : int;   (** queued jobs rejected by [stop ~drain:false] *)
  st_busy_seconds : float;
}

val stats : t -> stats

val run : t -> (unit -> 'a) -> 'a
(** Submit a thunk and block until a worker has run it; returns its
    result or re-raises its exception (with backtrace).  FIFO across
    concurrent submitters.  Raises {!Stopped} after {!stop}. *)

val stop : ?drain:bool -> t -> unit
(** With [drain:true] (default), queued jobs still run before workers
    exit and are joined.  With [drain:false], queued-but-unstarted jobs
    are rejected: each blocked submitter gets a typed {!Stopped} instead
    of hanging on a slot no worker will fill; jobs already executing
    still finish.  Idempotent. *)

(** A bounded worker-thread pool with a FIFO submission queue — the
    mediator's per-session scheduler.

    Admission control decides how many sessions get {e accepted};
    the pool decides how many protocol drivers {e execute} at once.
    Submissions beyond the worker count queue in arrival order, so a
    burst degrades to queueing delay rather than refusals or
    interleaved execution.  Workers are systhreads: every piece of
    driver state that matters ([Counters] attribution, Bigint
    context caches) is thread-local, so drivers on distinct workers
    never corrupt each other. *)

type t

val create : workers:int -> t
(** Spawns [max 1 workers] worker threads, all idle. *)

val workers : t -> int

(** A consistent snapshot of the pool's accounting, read under the pool
    lock.  [st_busy_seconds] is cumulative wall time spent inside job
    thunks since creation, so utilization over an observation interval
    is [Δst_busy_seconds / (interval × st_workers)]. *)
type stats = {
  st_workers : int;
  st_busy : int;       (** workers executing a job right now *)
  st_queued : int;     (** submitted jobs not yet picked up *)
  st_submitted : int;
  st_completed : int;
  st_busy_seconds : float;
}

val stats : t -> stats

val run : t -> (unit -> 'a) -> 'a
(** Submit a thunk and block until a worker has run it; returns its
    result or re-raises its exception (with backtrace).  FIFO across
    concurrent submitters.  Raises [Invalid_argument] after {!stop}. *)

val stop : t -> unit
(** Drains nothing: queued jobs still run; then workers exit and are
    joined.  Idempotent. *)

open Secmed_mediation
open Secmed_core
module R = Resilience
module Mux = Endpoint.Mux
module Obs = Secmed_obs

(* One replica endpoint of a datasource.  Health fields are guarded by
   the link's [sl_mu]: [re_up] is the last known verdict (assumed up
   until a dial, probe, or draining report proves otherwise),
   [re_down_until] gates failback — a down replica is not redialed
   before its cooldown expires unless no other candidate exists. *)
type replica = {
  re_index : int;
  re_host : string;
  re_port : int;
  mutable re_up : bool;
  mutable re_down_until : float;
  mutable re_dials : int;
  mutable re_transitions : int;
}

(* One pooled connection to a datasource.  Each slot owns at most one
   live mux; a session checks out exactly one slot per source for its
   whole lifetime, so a severed pooled connection faults only the
   sessions bound to that slot — the others never notice.  [ss_epoch]
   counts successful dials: 1 on the first connect, +1 per redial, so
   the ops surface can tell a stable slot from a flapping one.
   [ss_replica] is the slot's replica cursor: which endpoint the live
   mux is (or was last) dialed to. *)
type source_slot = {
  ss_index : int;
  ss_mu : Mutex.t;
  mutable ss_mux : Mux.t option;
  mutable ss_epoch : int;
  mutable ss_replica : int;
}

(* Live per-scheme serving tallies, keyed by the scheme that answered
   (or was asked, for failures).  The latency histogram is a private
   cell — observed under [stats_mu], unconditionally, so the ops
   surface works without the global metrics registry recording. *)
type scheme_stat = {
  mutable sc_served : int;
  mutable sc_degraded : int;
  mutable sc_failed : int;
  sc_latency : Obs.Metrics.histogram;
}

(* One shard of a logical source.  An unsharded source is the k = 1
   special case, so the whole pool/failover machinery below is per
   shard: each shard has its own replica set, its own slots, its own
   health state, and is dialed with its own scenario digest
   ({!Shard.digest}) so a miswired partition fails the handshake. *)
type source_link = {
  sl_id : int;
  sl_shard : int;
  sl_shard_count : int;
  sl_scenario : string;  (* the shard digest this link dials with *)
  sl_mu : Mutex.t;  (* guards every replica's health fields *)
  sl_replicas : replica array;
  sl_slots : source_slot array;
}

(* Per-session streamed-delivery tallies for the ops surface: filled by
   the counting route wrapper, retired into a bounded recent list when
   the session ends. *)
type stream_stat = {
  st_session : int;
  mutable st_rows_in : int;
  mutable st_rows_out : int;
  mutable st_bytes_in : int;
  mutable st_bytes_out : int;
  mutable st_active : bool;
}

(* One entry of the failover transition log: replica health flips and
   slot cursor moves, timestamped relative to server start so a soak
   harness can match them against its seeded kill schedule. *)
type fo_event = {
  fo_at : float;
  fo_source : int;
  fo_replica : int;
  fo_kind : string;  (* "down" | "up" | "failover" *)
  fo_detail : string;
}

type t = {
  env : Env.t;
  client : Env.client;
  scenario : string;
  sources : source_link list;
  listen_fd : Unix.file_descr;
  policy : R.policy;
  rsession : R.session;
  max_sessions : int;
  io_timeout : float;
  drain_deadline : float;
  health_interval : float;  (* 0. = no prober thread *)
  replica_cooldown : float;
  sched : Sched.t;  (* bounds concurrent protocol drivers; overflow queues FIFO *)
  admission_mu : Mutex.t;
  mutable active : int;
  mutable next_session : int;
  mutable stopped : bool;
  mutable draining : bool;
  mutable drain_deadline_at : float;
  started_at : float;
  stats_mu : Mutex.t;
  scheme_stats : (string, scheme_stat) Hashtbl.t;
  fo_mu : Mutex.t;
  mutable fo_events : fo_event list;  (* newest first, capped *)
  mutable fo_count : int;
  conns_mu : Mutex.t;
  mutable conn_seq : int;
  live_conns : (int, Io.conn) Hashtbl.t;  (* open client connections *)
  stream_mu : Mutex.t;
  stream_stats : (int, stream_stat) Hashtbl.t;  (* by session id *)
  mutable stream_recent : stream_stat list;  (* retired sessions, newest first, capped *)
  mutable stream_evicted : stream_stat;  (* folded tallies of sessions past the cap *)
}

(* Interned eagerly at module init — see the note in {!Endpoint}. *)
let sessions_admitted = Secmed_obs.Metrics.counter "serve.sessions.admitted"
let sessions_refused = Secmed_obs.Metrics.counter "serve.sessions.refused"
let sessions_drain_refused = Secmed_obs.Metrics.counter "serve.sessions.drain_refused"
let active_gauge = Secmed_obs.Metrics.gauge "serve.sessions.active"

let create ~env ~client ~scenario ~sources ~listen_fd ?(policy = R.default_policy)
    ?(max_sessions = 8) ?(io_timeout = 10.) ?(source_conns = 2) ?workers
    ?(drain_deadline = 30.) ?(health_interval = 0.) ?(replica_cooldown = 1.) () =
  let source_conns = max 1 source_conns in
  let workers = match workers with Some w -> max 1 w | None -> max_sessions in
  {
    env;
    client;
    scenario;
    sources =
      (* Flattened over shards: every piece of pool machinery (dialing,
         failover, probing, teardown) iterates physical endpoints; the
         logical grouping is recovered by [sl_id] where it matters (the
         route merge in [make_routes]). *)
      List.concat_map
        (fun (sl_id, shards) ->
          if shards = [] then invalid_arg "Server.create: source with no shards";
          let sl_shard_count = List.length shards in
          List.mapi
            (fun sl_shard replicas ->
              if replicas = [] then invalid_arg "Server.create: source with no replicas";
              {
                sl_id;
                sl_shard;
                sl_shard_count;
                sl_scenario = Shard.digest scenario ~shard:(sl_shard, sl_shard_count);
                sl_mu = Mutex.create ();
                sl_replicas =
                  Array.of_list
                    (List.mapi
                       (fun re_index (re_host, re_port) ->
                         { re_index; re_host; re_port; re_up = true; re_down_until = 0.;
                           re_dials = 0; re_transitions = 0 })
                       replicas);
                sl_slots =
                  Array.init source_conns (fun ss_index ->
                      { ss_index; ss_mu = Mutex.create (); ss_mux = None; ss_epoch = 0;
                        ss_replica = 0 });
              })
            shards)
        sources;
    listen_fd;
    policy;
    rsession = R.session ~policy ();
    max_sessions;
    io_timeout;
    drain_deadline;
    health_interval;
    replica_cooldown;
    sched = Sched.create ~workers;
    admission_mu = Mutex.create ();
    active = 0;
    next_session = 1;
    stopped = false;
    draining = false;
    drain_deadline_at = infinity;
    started_at = Unix.gettimeofday ();
    stats_mu = Mutex.create ();
    scheme_stats = Hashtbl.create 8;
    fo_mu = Mutex.create ();
    fo_events = [];
    fo_count = 0;
    conns_mu = Mutex.create ();
    conn_seq = 0;
    live_conns = Hashtbl.create 32;
    stream_mu = Mutex.create ();
    stream_stats = Hashtbl.create 16;
    stream_recent = [];
    stream_evicted =
      { st_session = 0; st_rows_in = 0; st_rows_out = 0; st_bytes_in = 0; st_bytes_out = 0;
        st_active = false };
  }

(* A session's slot for a source: round-robin by session id, so tests
   can predict which sessions share a pooled connection. *)
let slot_of sl sid = sl.sl_slots.((sid - 1) mod Array.length sl.sl_slots)

let log_fo t ~source ~replica ~kind ~detail =
  Mutex.protect t.fo_mu (fun () ->
      t.fo_count <- t.fo_count + 1;
      let kept =
        if List.length t.fo_events >= 512 then List.filteri (fun i _ -> i < 511) t.fo_events
        else t.fo_events
      in
      t.fo_events <-
        { fo_at = Unix.gettimeofday () -. t.started_at; fo_source = source;
          fo_replica = replica; fo_kind = kind; fo_detail = detail }
        :: kept)

let failover_events t =
  Mutex.protect t.fo_mu (fun () -> List.rev t.fo_events)

(* Health flips log a transition only on an actual edge, so the log
   length is proportional to real world events, not probe frequency. *)
let mark_down t sl idx ~reason =
  let re = sl.sl_replicas.(idx) in
  let flipped =
    Mutex.protect sl.sl_mu (fun () ->
        re.re_down_until <- Unix.gettimeofday () +. t.replica_cooldown;
        if re.re_up then begin
          re.re_up <- false;
          re.re_transitions <- re.re_transitions + 1;
          true
        end
        else false)
  in
  if flipped then log_fo t ~source:sl.sl_id ~replica:idx ~kind:"down" ~detail:reason

let mark_up t sl idx =
  let re = sl.sl_replicas.(idx) in
  let flipped =
    Mutex.protect sl.sl_mu (fun () ->
        re.re_down_until <- 0.;
        if not re.re_up then begin
          re.re_up <- true;
          re.re_transitions <- re.re_transitions + 1;
          true
        end
        else false)
  in
  if flipped then log_fo t ~source:sl.sl_id ~replica:idx ~kind:"up" ~detail:""

(* Dial order: healthy replicas first (primary-first within each band),
   then down replicas whose cooldown expired (failback probing).  If
   nothing is eligible — every replica freshly down — fall back to
   trying them all anyway: with a single replica this degrades to
   exactly the old redial-immediately behavior, and with several it
   means a fully-partitioned pool still probes rather than giving up
   without a dial. *)
let candidates sl =
  let now = Unix.gettimeofday () in
  let idxs = List.init (Array.length sl.sl_replicas) Fun.id in
  let up, cooled =
    Mutex.protect sl.sl_mu (fun () ->
        ( List.filter (fun i -> sl.sl_replicas.(i).re_up) idxs,
          List.filter
            (fun i ->
              (not sl.sl_replicas.(i).re_up) && now >= sl.sl_replicas.(i).re_down_until)
            idxs ))
  in
  match up @ cooled with [] -> idxs | eligible -> eligible

(* The pooled datasource connection, dialed on first use and redialed
   when a previous incarnation died (e.g. peer SIGKILLed, or severed by
   the chaos proxy) — the transport-level half of "a connection failure
   is a typed, retryable fault".  Lazy redial is per slot: only the
   sessions checked out on the dead slot pay the reconnect.  The redial
   walks the replica candidates in health order, so a dead primary
   fails the bound sessions over to a standby within their one typed
   retry; a later redial after the cooldown fails back.  A live mux
   whose replica was marked down out-of-band (health probe, draining
   report) is proactively switched — but only when some other replica
   is known up, so a single-replica pool never churns a working
   connection. *)
let ensure_slot t sl slot =
  Mutex.protect slot.ss_mu (fun () ->
      (* A stopped server must not open fresh source connections: the
         teardown sweep severs the muxes it can see, and a session that
         transparently redialed behind it would sit out a full transport
         timeout on a connection nobody will ever tear down. *)
      if t.stopped then Error "mediator stopped"
      else
      let dial_replica re =
        match Io.connect ~timeout:t.io_timeout ~host:re.re_host ~port:re.re_port () with
        | exception Io.Transport_error msg -> Error msg
        | conn -> (
          try
            (* Each shard is dialed with its own digest: shard daemons
               prove which partition they serve the same way every peer
               proves which workload it built. *)
            Io.send_frame conn
              (Frame.encode
                 (Frame.Hello { role = Transcript.Mediator; scenario = sl.sl_scenario }));
            match Frame.decode (Io.recv_frame conn) with
            | Frame.Hello_ok { scenario } when String.equal scenario sl.sl_scenario ->
              (* The mux receive thread must outlive idle periods. *)
              Io.set_timeout conn 0.;
              Ok (Mux.create conn)
            | Frame.Hello_ok _ ->
              Io.close conn;
              Error "scenario digest mismatch (daemon built a different workload)"
            | Frame.Draining reason ->
              Io.close conn;
              Error ("draining: " ^ reason)
            | f ->
              Io.close conn;
              Error ("unexpected " ^ Frame.tag_name f ^ " in handshake")
          with
          | Io.Transport_error msg | Wire.Malformed msg ->
            Io.close conn;
            Error msg)
      in
      let redial () =
        (match slot.ss_mux with
        | Some m -> Io.close (Mux.conn m)
        | None -> ());
        slot.ss_mux <- None;
        let rec try_each last = function
          | [] -> Error (Option.value last ~default:"no replica reachable")
          | idx :: rest -> (
            let re = sl.sl_replicas.(idx) in
            Mutex.protect sl.sl_mu (fun () -> re.re_dials <- re.re_dials + 1);
            match dial_replica re with
            | Ok m ->
              mark_up t sl idx;
              if slot.ss_epoch > 0 && slot.ss_replica <> idx then
                log_fo t ~source:sl.sl_id ~replica:idx ~kind:"failover"
                  ~detail:
                    (Printf.sprintf "%sslot %d: replica %d -> %d"
                       (if sl.sl_shard_count > 1 then
                          Printf.sprintf "shard %d " sl.sl_shard
                        else "")
                       slot.ss_index slot.ss_replica idx);
              slot.ss_replica <- idx;
              slot.ss_mux <- Some m;
              slot.ss_epoch <- slot.ss_epoch + 1;
              Ok m
            | Error msg ->
              mark_down t sl idx ~reason:msg;
              try_each
                (Some (Printf.sprintf "replica %d (%s:%d): %s" idx re.re_host re.re_port msg))
                rest)
        in
        try_each None (candidates sl)
      in
      match slot.ss_mux with
      | Some m when Mux.alive m ->
        let switch =
          Mutex.protect sl.sl_mu (fun () ->
              (not sl.sl_replicas.(slot.ss_replica).re_up)
              && Array.exists
                   (fun re -> re.re_up && re.re_index <> slot.ss_replica)
                   sl.sl_replicas)
        in
        if switch then redial () else Ok m
      | Some _ | None -> redial ())

let wire_failure (f : Protocol.failure) =
  { Fault.phase = f.Protocol.phase; party = f.Protocol.party; reason = f.Protocol.reason }

(* ------------------------------------------------------------------ *)
(* One client query *)

type peer_routes = {
  client_route : Endpoint.route;
  client_report : Frame.status option ref;
  source_routes : (int * Endpoint.route) list;
      (* per logical source: the merged route the driver's transport
         uses — [r_send] broadcasts to every shard, [r_next] reads the
         designated scalar speaker (shard 0), [r_sub] carries the
         per-shard routes a streamed receive merges *)
  source_reports : (int * int * Endpoint.route * Frame.status option ref) list;
      (* one per physical shard: (source id, shard, shard route, report
         cell) — the commit barrier awaits every shard's report *)
  stats : (Transcript.party * int ref * int ref) list;
}

(* A replica's Report can arrive while the mediator's driver is still
   blocked on a Msg from that very party — the replica gave up first
   (its own receive timed out, or it detected corruption on delivery).
   The driver's receive loop must not swallow the root cause: every
   current-epoch Report is stashed where the commit barrier can find
   it, and a St_failed fails the blocked receive fast — the frame it
   was waiting for will never come. *)
let stashing ?(on_failed = fun (_ : Fault.failure) -> ()) ~epoch ~party cell
    (route : Endpoint.route) =
  {
    route with
    Endpoint.r_next =
      (fun ~timeout ->
        match route.Endpoint.r_next ~timeout with
        | Frame.Report { epoch = e; status; _ } as f when e = !epoch ->
          cell := Some status;
          (match status with
          | Frame.St_failed failure ->
            on_failed failure;
            raise (Io.Transport_error (Transcript.party_name party ^ " reported a failure"))
          | Frame.St_ok | Frame.St_aborted ->
            (* Returned (not swallowed) so a blocked caller re-examines
               the stash at once instead of waiting out its timeout. *)
            f)
        | f -> f);
  }

(* Span batches are observability riding the session stream: record
   each one into the accumulator as it passes.  The frame is returned,
   not swallowed — every downstream reader (the endpoint's receive
   filter, the commit barrier, the post-verdict drain) skips it, and
   returning lets the drain notice a completed count without waiting
   out another read timeout. *)
let batching acc (route : Endpoint.route) =
  {
    route with
    Endpoint.r_next =
      (fun ~timeout ->
        match route.Endpoint.r_next ~timeout with
        | Frame.Span_batch { party; parent; payload; _ } as f ->
          acc := { Trace_wire.rm_party = party; rm_parent = parent; rm_payload = payload }
                 :: !acc;
          f
        | f -> f);
  }

(* Payload byte accounting per counterpart, plus per-session streamed
   tallies for the ops surface.  A [Msg_chunk] counts its row bytes
   (peeked from the count prefix, no decode), so for an unsharded run
   the per-link totals still equal the transcript's bytes-on-link —
   scalar and streamed encodings are interchangeable in the accounting
   too. *)
let counted ?stream (_, out_c, in_c) (route : Endpoint.route) =
  let note_stream dir rows bytes =
    match stream with
    | None -> ()
    | Some st ->
      if dir then begin
        st.st_rows_out <- st.st_rows_out + rows;
        st.st_bytes_out <- st.st_bytes_out + bytes
      end
      else begin
        st.st_rows_in <- st.st_rows_in + rows;
        st.st_bytes_in <- st.st_bytes_in + bytes
      end
  in
  let chunk_rows payload =
    if String.length payload < 4 then 0
    else
      (Char.code payload.[0] lsl 24)
      lor (Char.code payload.[1] lsl 16)
      lor (Char.code payload.[2] lsl 8)
      lor Char.code payload.[3]
  in
  {
    route with
    Endpoint.r_send =
      (fun f ->
        (match f with
        | Frame.Msg m -> out_c := !out_c + String.length m.Frame.payload
        | Frame.Msg_chunk m ->
          let b = Stream.payload_row_bytes m.Frame.ck_payload in
          out_c := !out_c + b;
          note_stream true (chunk_rows m.Frame.ck_payload) b
        | _ -> ());
        route.Endpoint.r_send f);
    r_next =
      (fun ~timeout ->
        let f = route.Endpoint.r_next ~timeout in
        (match f with
        | Frame.Msg m -> in_c := !in_c + String.length m.Frame.payload
        | Frame.Msg_chunk m ->
          let b = Stream.payload_row_bytes m.Frame.ck_payload in
          in_c := !in_c + b;
          note_stream false (chunk_rows m.Frame.ck_payload) b
        | _ -> ());
        f);
  }

(* The per-session streamed-delivery tally, created on first use and
   retired into a bounded recent list when the session ends.  The stat's
   fields are mutated by the session's single worker thread; the stats
   reader may observe a mid-session value, which is exactly what a live
   gauge should show. *)
let stream_stat_for t sid =
  Mutex.protect t.stream_mu (fun () ->
      match Hashtbl.find_opt t.stream_stats sid with
      | Some st -> st
      | None ->
        let st =
          { st_session = sid; st_rows_in = 0; st_rows_out = 0; st_bytes_in = 0;
            st_bytes_out = 0; st_active = true }
        in
        Hashtbl.replace t.stream_stats sid st;
        st)

let retire_stream_stat t sid =
  Mutex.protect t.stream_mu (fun () ->
      match Hashtbl.find_opt t.stream_stats sid with
      | None -> ()
      | Some st ->
        Hashtbl.remove t.stream_stats sid;
        st.st_active <- false;
        (* Only sessions that actually streamed earn a line; the recent
           list is the ops surface's memory, capped so an unbounded
           session history costs bounded state.  Sessions pushed past
           the cap fold into the evicted tally, so the totals stay
           exact however long the server runs. *)
        if st.st_rows_in + st.st_rows_out > 0 then begin
          let rec split i = function
            | [] -> ([], [])
            | x :: rest when i < 31 ->
              let kept, dropped = split (i + 1) rest in
              (x :: kept, dropped)
            | dropped -> ([], dropped)
          in
          let kept, dropped = split 0 t.stream_recent in
          List.iter
            (fun d ->
              let e = t.stream_evicted in
              e.st_rows_in <- e.st_rows_in + d.st_rows_in;
              e.st_rows_out <- e.st_rows_out + d.st_rows_out;
              e.st_bytes_in <- e.st_bytes_in + d.st_bytes_in;
              e.st_bytes_out <- e.st_bytes_out + d.st_bytes_out)
            dropped;
          t.stream_recent <- st :: kept
        end)

let make_routes t conn sid ~epoch ~batches =
  let stat party = (party, ref 0, ref 0) in
  let client_stat = stat Transcript.Client in
  let client_report = ref None in
  let sstat = stream_stat_for t sid in
  let client_route =
    stashing ~epoch ~party:Transcript.Client client_report
      (counted ~stream:sstat client_stat
         (Endpoint.plain_route
            ~send:(fun f -> Io.send_frame conn (Frame.encode f))
            ~next:(fun ~timeout ->
              Io.set_timeout conn timeout;
              Frame.decode (Io.recv_frame conn))))
  in
  (* A source route resolves its slot's mux on every call: when the
     previous incarnation died (peer crashed, chaos proxy severed the
     stream), the next send or receive redials through {!ensure_slot}
     — so a connection failure costs one attempt, not the whole query,
     and only for the sessions bound to that slot.

     A sharded source builds one such route per shard, then merges them:
     scalar sends broadcast (every shard replica awaits the mediator's
     messages), scalar receives read shard 0 (the designated scalar
     speaker), and the per-shard routes ride along in [r_sub] for the
     streamed receive to interleave. *)
  let ids = List.sort_uniq compare (List.map (fun sl -> sl.sl_id) t.sources) in
  let per_source =
    List.map
      (fun id ->
        let shards = List.filter (fun sl -> sl.sl_id = id) t.sources in
        let s = stat (Transcript.Source id) in
        let with_cells =
          List.map
            (fun sl ->
              let cell = ref None in
              let slot = slot_of sl sid in
              let describe () =
                if sl.sl_shard_count > 1 then
                  Printf.sprintf "source %d shard %d" id sl.sl_shard
                else Printf.sprintf "source %d" id
              in
              let mux () =
                match ensure_slot t sl slot with
                | Ok m ->
                  Mux.subscribe m sid;
                  m
                | Error msg ->
                  raise (Io.Transport_error (Printf.sprintf "%s: %s" (describe ()) msg))
              in
              (* A replica that reports "draining" is refusing new work
                 but still healthy enough to answer: mark it down so the
                 retry's {!ensure_slot} proactively switches this slot to
                 a standby instead of knocking on the same draining
                 daemon again. *)
              let on_failed (f : Fault.failure) =
                if String.equal f.Fault.reason "draining" then
                  mark_down t sl slot.ss_replica ~reason:"peer draining"
              in
              let r =
                stashing ~on_failed ~epoch ~party:(Transcript.Source id) cell
                  (batching batches
                     (counted ~stream:sstat s
                        (Endpoint.plain_route
                           ~send:(fun f -> Mux.send (mux ()) f)
                           ~next:(fun ~timeout -> Mux.next (mux ()) ~session:sid ~timeout))))
              in
              (sl.sl_shard, r, cell))
            shards
        in
        let arr = Array.of_list (List.map (fun (_, r, _) -> r) with_cells) in
        let merged =
          if Array.length arr = 1 then arr.(0)
          else
            {
              Endpoint.r_send = (fun f -> Array.iter (fun r -> r.Endpoint.r_send f) arr);
              r_next = arr.(0).Endpoint.r_next;
              r_sub = Some arr;
            }
        in
        (id, s, merged, List.map (fun (shard, r, c) -> (id, shard, r, c)) with_cells))
      ids
  in
  {
    client_route;
    client_report;
    source_routes = List.map (fun (id, _, merged, _) -> (id, merged)) per_source;
    source_reports = List.concat_map (fun (_, _, _, reps) -> reps) per_source;
    stats = client_stat :: List.map (fun (_, s, _, _) -> s) per_source;
  }

(* The commit barrier around each attempt: announce it, and afterwards
   collect every replica's report so no stale frames leak into the next
   attempt.  A replica's own typed fault is the root cause and outranks
   whatever downstream stall the mediator observed locally. *)
let coordinator t ~sid ~query ~fault_spec ~routes ~epoch ~failures ~trace_id ~session_span =
  let cells =
    routes.client_report :: List.map (fun (_, _, _, c) -> c) routes.source_reports
  in
  let broadcast frame =
    (try routes.client_route.Endpoint.r_send frame with Io.Transport_error _ -> ());
    (* The merged route's send fans out to every shard. *)
    List.iter
      (fun (_, r) -> try r.Endpoint.r_send frame with Io.Transport_error _ -> ())
      routes.source_routes
  in
  let begin_attempt ~scheme ~attempt =
    incr epoch;
    List.iter (fun c -> c := None) cells;
    broadcast
      (Frame.Session_start
         {
           session = sid;
           epoch = !epoch;
           attempt;
           scheme;
           query;
           fault_spec;
           trace_id;
           trace_parent = !session_span;
         })
  in
  (* The {!stashing} wrapper intercepts every current-epoch Report, so
     the stash cell — not the frame stream — is where a report lands,
     whether it arrived mid-attempt (swallowed by the driver's blocked
     receive) or during this barrier.  The loop just drains leftover
     frames until the cell fills or the window closes. *)
  let await name party (route : Endpoint.route) cell =
    let rec go () =
      match !cell with
      | Some status -> status
      | None -> (
        match route.Endpoint.r_next ~timeout:t.io_timeout with
        | _ -> go ()
        | exception Io.Transport_error msg -> (
          match !cell with
          | Some status -> status
          | None ->
            Frame.St_failed
              { Fault.phase = "transport"; party; reason = Printf.sprintf "%s: %s" name msg }))
    in
    go ()
  in
  let end_attempt ~scheme ~attempt:_ local =
    (match local with
    | Error f -> broadcast (Frame.Abort { session = sid; epoch = !epoch; failure = f })
    | Ok _ -> ());
    (* Sources before the client: in the star topology the client is
       downstream of every mediator stall, so when a source frame was
       lost the client's "mediator went quiet" timeout is a symptom —
       the source's own failure is the root cause and must win the
       blame, exactly as it does in the simulated (in-process) run.
       Every shard replica owes its own report. *)
    let statuses =
      List.map
        (fun (id, shard, r, c) ->
          let name =
            if List.exists (fun (i, s, _, _) -> i = id && s <> shard) routes.source_reports
            then Printf.sprintf "source %d shard %d" id shard
            else Printf.sprintf "source %d" id
          in
          await name (Transcript.Source id) r c)
        routes.source_reports
      @ [ await "client" Transcript.Client routes.client_route routes.client_report ]
    in
    let peer_failure =
      List.find_map (function Frame.St_failed f -> Some f | _ -> None) statuses
    in
    let verdict =
      match (local, peer_failure) with
      | _, Some pf -> Error pf
      | Error f, None -> Error f
      | Ok outcome, None -> Ok outcome
    in
    (match verdict with
    | Error f -> failures := (scheme, f) :: !failures
    | Ok _ -> ());
    (* A failed attempt on a stopped server must not enter the retry /
       degradation ladder: the client connection was severed by the
       teardown, so every further attempt (some of them crypto-heavy)
       would burn a worker the [Sched.stop] join is waiting on.  The
       typed abort unwinds the driver immediately. *)
    (match verdict with
    | Error f when t.stopped -> raise (Endpoint.Aborted f)
    | _ -> ());
    verdict
  in
  { Protocol.begin_attempt; end_attempt }

(* Per-scheme tallies for the ops surface; [key] is the scheme that
   answered (or, for a failure, the one that was asked). *)
let note_result t ~key ~elapsed outcome =
  Mutex.protect t.stats_mu (fun () ->
      let st =
        match Hashtbl.find_opt t.scheme_stats key with
        | Some st -> st
        | None ->
          let st =
            { sc_served = 0; sc_degraded = 0; sc_failed = 0;
              sc_latency = Obs.Metrics.private_histogram () }
          in
          Hashtbl.replace t.scheme_stats key st;
          st
      in
      (match outcome with
      | `Served -> st.sc_served <- st.sc_served + 1
      | `Degraded ->
        st.sc_served <- st.sc_served + 1;
        st.sc_degraded <- st.sc_degraded + 1
      | `Failed -> st.sc_failed <- st.sc_failed + 1);
      Obs.Metrics.observe st.sc_latency elapsed)

let run_query t conn sid ~release ~scheme ~query ~fault_spec ~deadline ~fallback ~trace =
  let started = Unix.gettimeofday () in
  let reply result =
    (* The admission slot is free before the client can observe the
       verdict: a closed-loop client that reconnects the instant its
       result lands must find room, not race the server's teardown. *)
    release ();
    try Io.send_frame conn (Frame.encode (Frame.Session_result { session = sid; result }))
    with Io.Transport_error _ -> ()
  in
  let refuse failure =
    note_result t ~key:scheme ~elapsed:(Unix.gettimeofday () -. started) `Failed;
    reply (Frame.W_unserved [ (scheme, failure, 0) ])
  in
  match Protocol.scheme_of_name scheme with
  | None ->
    refuse
      { Fault.phase = "session"; party = Transcript.Mediator; reason = "unknown scheme: " ^ scheme }
  | Some sch -> (
    let fault =
      if String.equal fault_spec "" then Ok None
      else Result.map Option.some (Fault.of_spec fault_spec)
    in
    match fault with
    | Error e ->
      refuse
        { Fault.phase = "session"; party = Transcript.Mediator; reason = "bad fault spec: " ^ e }
    | Ok fault -> (
      let rec dial acc = function
        | [] -> Ok (List.rev acc)
        | sl :: rest -> (
          match ensure_slot t sl (slot_of sl sid) with
          | Ok m -> dial ((sl.sl_id, m) :: acc) rest
          | Error msg -> Error (sl.sl_id, msg))
      in
      match dial [] t.sources with
      | Error (source_id, msg) ->
        refuse
          { Fault.phase = "transport"; party = Transcript.Source source_id; reason = msg }
      | Ok smuxes ->
        List.iter (fun (_, m) -> Mux.subscribe m sid) smuxes;
        Fun.protect ~finally:(fun () ->
            retire_stream_stat t sid;
            (* Whatever mux this session's slot holds *now* — possibly a
               redialed incarnation — gets the end-of-session notice.
               [t.sources] is flat over shards, so every shard daemon
               hears it. *)
            List.iter
              (fun sl ->
                let slot = slot_of sl sid in
                Mutex.protect slot.ss_mu (fun () ->
                    match slot.ss_mux with
                    | Some m ->
                      (try Mux.send m (Frame.Session_end { session = sid })
                       with Io.Transport_error _ -> ());
                      Mux.unsubscribe m sid
                    | None -> ()))
              t.sources)
        @@ fun () ->
        let epoch = ref 0 in
        let batches = ref [] in
        let routes = make_routes t conn sid ~epoch ~batches in
        let failures = ref [] in
        (* Tracing: one collector for the whole session, bound to this
           worker thread, with a root "session" span whose id every
           [Session_start] carries as [trace_parent] — the anchor each
           replica's batch roots hang under. *)
        let trace_id = if trace then Printf.sprintf "s%d" sid else "" in
        let collector = if trace then Some (Obs.Trace.create ()) else None in
        let session_span = ref (-1) in
        let coordinator =
          coordinator t ~sid ~query ~fault_spec ~routes ~epoch ~failures ~trace_id ~session_span
        in
        let route_of = function
          | Transcript.Client -> Some routes.client_route
          | Transcript.Source i ->
            List.find_map
              (fun (id, r) -> if id = i then Some r else None)
              routes.source_routes
          | Transcript.Mediator | Transcript.Authority -> None
        in
        let deadline_ref = ref None in
        let after_io ~phase =
          match !deadline_ref with Some d -> R.check d ~phase | None -> ()
        in
        (* The mediator waits twice as long as the leaves: when a frame
           is lost, its true receiver must time out (and report the
           root-cause failure) while the mediator is still listening —
           the stash then fails the mediator's receive fast, so the
           margin is latency-free except when a peer is truly silent. *)
        let transport =
          Endpoint.transport ~role:Transcript.Mediator ~session:sid
            ~epoch:(fun () -> !epoch)
            ~io_timeout:(t.io_timeout *. 2.) ~route_of ~after_io ()
        in
        (* A per-query deadline narrows the budget but must not discard
           the long-lived breaker state, which only the shared session
           holds; queries content with the server policy share it (the
           shared session's breaker table is internally locked, so
           concurrent workers may use it directly). *)
        let rsession =
          if deadline > 0. then
            R.session ~policy:{ t.policy with R.deadline_budget = Some deadline } ()
          else t.rsession
        in
        let run_driver () =
          Protocol.run_session ?fault ~endpoint:(Link.Remote transport) ~coordinator
            ~on_deadline:(fun d -> deadline_ref := Some d)
            ~session:rsession
            ?chain:(if fallback then None else Some [])
            sch t.env t.client ~query
        in
        let run_traced () =
          match collector with
          | None -> run_driver ()
          | Some c ->
            Obs.Trace.with_collector c (fun () ->
                Obs.Trace.with_span ~kind:Obs.Trace.Protocol
                  ~attrs:
                    [
                      ("session", Obs.Json.Int sid);
                      ("scheme", Obs.Json.Str scheme);
                      ("party", Obs.Json.Str "mediator");
                    ]
                  "session"
                  (fun () ->
                    (match Obs.Trace.current_span_id () with
                    | Some id -> session_span := id
                    | None -> ());
                    run_driver ()))
        in
        let verdict =
          match run_traced () with
          | v -> Some v
          | exception Endpoint.Aborted _ ->
            (* The coordinator cut the session short (stopped server).
               No reply: a cut at the drain deadline must look to the
               client exactly like the process death it stands in for —
               a severed connection it redials — not a terminal Unserved
               verdict racing the teardown's socket sweep. *)
            None
        in
        (* Each source owes one batch per epoch; a bounded drain picks
           up the ones racing in behind the final Reports.  Best-effort:
           a dead or silent source just stops its own drain. *)
        let drain_batches () =
          let timeout = Float.min 2.0 t.io_timeout in
          (* Each shard replica ships one batch per epoch, all tagged
             with the same source party; drain each shard's own route
             until the source's total reaches epochs x shards (or the
             window closes — best-effort). *)
          List.iter
            (fun (id, _, (r : Endpoint.route), _) ->
              let shards =
                List.length (List.filter (fun (i, _, _, _) -> i = id) routes.source_reports)
              in
              let have () =
                List.length
                  (List.filter
                     (fun b -> b.Trace_wire.rm_party = Transcript.Source id)
                     !batches)
              in
              let rec go () =
                if have () < !epoch * shards then
                  match r.Endpoint.r_next ~timeout with
                  | _ -> go ()
                  | exception Io.Transport_error _ -> ()
              in
              go ())
            routes.source_reports
        in
        let forward_spans () =
          match collector with
          | None -> ()
          | Some c ->
            drain_batches ();
            let send rm =
              try
                Io.send_frame conn
                  (Frame.encode
                     (Frame.Span_batch
                        {
                          session = sid;
                          party = rm.Trace_wire.rm_party;
                          parent = rm.Trace_wire.rm_parent;
                          payload = rm.Trace_wire.rm_payload;
                        }))
              with Io.Transport_error _ -> ()
            in
            List.iter send (List.rev !batches);
            send
              {
                Trace_wire.rm_party = Transcript.Mediator;
                rm_parent = -1;
                rm_payload = Trace_wire.payload_of c;
              }
        in
        let elapsed = Unix.gettimeofday () -. started in
        (match verdict with
        | None ->
          note_result t ~key:scheme ~elapsed `Failed;
          release ()
        | Some (Protocol.Served outcome) ->
          let w_degraded =
            match outcome.Outcome.degraded_from with
            | None -> None
            | Some from_scheme ->
              let reason =
                match
                  List.find_opt
                    (fun (s, _) -> not (String.equal s outcome.Outcome.scheme))
                    !failures
                with
                | Some (_, (f : Fault.failure)) -> f.Fault.reason
                | None -> "scheme exhausted its budget"
              in
              Some (from_scheme, reason)
          in
          note_result t ~key:outcome.Outcome.scheme ~elapsed
            (match w_degraded with None -> `Served | Some _ -> `Degraded);
          forward_spans ();
          reply
            (Frame.W_served
               {
                 w_scheme = outcome.Outcome.scheme;
                 w_attempts = !epoch;
                 w_degraded;
                 w_link_stats =
                   List.map (fun (p, out_c, in_c) -> (p, !out_c, !in_c)) routes.stats;
               })
        | Some (Protocol.Unserved tried) ->
          (* A deadline can trip mid-attempt, leaving replicas blocked on
             a frame that will never come: release them before the
             result, so the client's replica unwinds ahead of reading it. *)
          let last_failure =
            match List.rev tried with
            | (_, f) :: _ -> wire_failure f
            | [] ->
              {
                Fault.phase = "session";
                party = Transcript.Mediator;
                reason = "no scheme attempted";
              }
          in
          (try
             routes.client_route.Endpoint.r_send
               (Frame.Abort { session = sid; epoch = !epoch; failure = last_failure })
           with Io.Transport_error _ -> ());
          List.iter
            (fun (_, r) ->
              try
                r.Endpoint.r_send
                  (Frame.Abort { session = sid; epoch = !epoch; failure = last_failure })
              with Io.Transport_error _ -> ())
            routes.source_routes;
          (* The client replica's Report to the final abort, if any. *)
          note_result t ~key:scheme ~elapsed `Failed;
          forward_spans ();
          reply
            (Frame.W_unserved
               (List.map
                  (fun (s, (f : Protocol.failure)) -> (s, wire_failure f, f.Protocol.attempts))
                  tried)))))

(* ------------------------------------------------------------------ *)
(* Live stats snapshot *)

let stats_json t =
  let module J = Obs.Json in
  let now = Unix.gettimeofday () in
  let uptime = now -. t.started_at in
  let active, next_session =
    Mutex.protect t.admission_mu (fun () -> (t.active, t.next_session))
  in
  let sched = Sched.stats t.sched in
  let utilization =
    if uptime <= 0. then 0.
    else sched.Sched.st_busy_seconds /. (uptime *. float_of_int sched.Sched.st_workers)
  in
  let pool =
    List.map
      (fun sl ->
        let replicas =
          Mutex.protect sl.sl_mu (fun () ->
              Array.to_list
                (Array.map
                   (fun re ->
                     J.Obj
                       [
                         ("replica", J.Int re.re_index);
                         ("addr", J.Str (Printf.sprintf "%s:%d" re.re_host re.re_port));
                         ("up", J.Bool re.re_up);
                         ("dials", J.Int re.re_dials);
                         ("transitions", J.Int re.re_transitions);
                       ])
                   sl.sl_replicas))
        in
        J.Obj
          [
            ("source", J.Int sl.sl_id);
            ("shard", J.Int sl.sl_shard);
            ("shards", J.Int sl.sl_shard_count);
            ( "addr",
              J.Str
                (Printf.sprintf "%s:%d" sl.sl_replicas.(0).re_host sl.sl_replicas.(0).re_port)
            );
            ("replicas", J.List replicas);
            ( "slots",
              J.List
                (Array.to_list
                   (Array.map
                      (fun slot ->
                        let connected, dials, replica =
                          Mutex.protect slot.ss_mu (fun () ->
                              ( (match slot.ss_mux with
                                | Some m -> Mux.alive m
                                | None -> false),
                                slot.ss_epoch, slot.ss_replica ))
                        in
                        J.Obj
                          [
                            ("slot", J.Int slot.ss_index);
                            ("connected", J.Bool connected);
                            ("dials", J.Int dials);
                            ("replica", J.Int replica);
                          ])
                      sl.sl_slots)) );
          ])
      t.sources
  in
  let failover =
    let events, count = Mutex.protect t.fo_mu (fun () -> (List.rev t.fo_events, t.fo_count)) in
    J.Obj
      [
        ("count", J.Int count);
        ( "events",
          J.List
            (List.map
               (fun e ->
                 J.Obj
                   [
                     ("at", J.Float e.fo_at);
                     ("source", J.Int e.fo_source);
                     ("replica", J.Int e.fo_replica);
                     ("kind", J.Str e.fo_kind);
                     ("detail", J.Str e.fo_detail);
                   ])
               events) );
      ]
  in
  let schemes =
    Mutex.protect t.stats_mu (fun () ->
        Hashtbl.fold (fun k st acc -> (k, st) :: acc) t.scheme_stats [])
  in
  let schemes =
    List.map
      (fun (k, st) ->
        let p50, p90, p99 = Obs.Metrics.percentiles st.sc_latency in
        ( k,
          J.Obj
            [
              ("served", J.Int st.sc_served);
              ("degraded", J.Int st.sc_degraded);
              ("failed", J.Int st.sc_failed);
              ( "latency_seconds",
                J.Obj
                  [
                    ("count", J.Int (Obs.Metrics.histogram_count st.sc_latency));
                    ("p50", J.Float p50);
                    ("p90", J.Float p90);
                    ("p99", J.Float p99);
                    ("max", J.Float (Obs.Metrics.histogram_max st.sc_latency));
                  ] );
            ] ))
      (List.sort (fun (a, _) (b, _) -> compare a b) schemes)
  in
  let streams =
    let live, recent, evicted =
      Mutex.protect t.stream_mu (fun () ->
          ( Hashtbl.fold (fun _ st acc -> st :: acc) t.stream_stats [],
            t.stream_recent, t.stream_evicted ))
    in
    let sessions =
      List.sort (fun a b -> compare b.st_session a.st_session) (live @ recent)
    in
    let sum f = List.fold_left (fun acc st -> acc + f st) (f evicted) sessions in
    J.Obj
      [
        ("rows_in", J.Int (sum (fun st -> st.st_rows_in)));
        ("rows_out", J.Int (sum (fun st -> st.st_rows_out)));
        ("bytes_in", J.Int (sum (fun st -> st.st_bytes_in)));
        ("bytes_out", J.Int (sum (fun st -> st.st_bytes_out)));
        ("backlog_chunks", J.Int (Endpoint.stream_backlog ()));
        ( "sessions",
          J.List
            (List.map
               (fun st ->
                 J.Obj
                   [
                     ("session", J.Int st.st_session);
                     ("active", J.Bool st.st_active);
                     ("rows_in", J.Int st.st_rows_in);
                     ("rows_out", J.Int st.st_rows_out);
                     ("bytes_in", J.Int st.st_bytes_in);
                     ("bytes_out", J.Int st.st_bytes_out);
                   ])
               sessions) );
        ("hwm", Obs.Hwm.snapshot ());
      ]
  in
  let cv name = Obs.Metrics.counter_value (Obs.Metrics.counter name) in
  J.Obj
    [
      ("uptime_seconds", J.Float uptime);
      ("scenario", J.Str t.scenario);
      ( "sessions",
        J.Obj
          [
            ("active", J.Int active);
            ("max", J.Int t.max_sessions);
            ("next_id", J.Int next_session);
            ("admitted", J.Int (Obs.Metrics.counter_value sessions_admitted));
            ("refused", J.Int (Obs.Metrics.counter_value sessions_refused));
            ("drain_refused", J.Int (Obs.Metrics.counter_value sessions_drain_refused));
            ("draining", J.Bool t.draining);
          ] );
      ( "scheduler",
        J.Obj
          [
            ("workers", J.Int sched.Sched.st_workers);
            ("busy", J.Int sched.Sched.st_busy);
            ("queued", J.Int sched.Sched.st_queued);
            ("submitted", J.Int sched.Sched.st_submitted);
            ("completed", J.Int sched.Sched.st_completed);
            ("rejected", J.Int sched.Sched.st_rejected);
            ("busy_seconds", J.Float sched.Sched.st_busy_seconds);
            ("utilization", J.Float utilization);
          ] );
      ("pool", J.List pool);
      ("failover", failover);
      ("breakers", R.breakers_json t.rsession);
      ( "net",
        J.Obj
          [
            ("bytes_sent", J.Int (cv "net.bytes_sent"));
            ("bytes_recv", J.Int (cv "net.bytes_recv"));
            ("frames_sent", J.Int (cv "net.frames_sent"));
            ("frames_recv", J.Int (cv "net.frames_recv"));
          ] );
      ("streams", streams);
      ("schemes", J.Obj schemes);
    ]

(* ------------------------------------------------------------------ *)
(* Drain *)

(* Only idempotent field writes: this is what the SIGTERM handler calls,
   and OCaml signal handlers may run at any safe point — taking a mutex
   here could deadlock against the very thread that was interrupted. *)
let begin_drain ?deadline t =
  if not t.draining then begin
    t.drain_deadline_at <-
      Unix.gettimeofday () +. (match deadline with Some d -> d | None -> t.drain_deadline);
    t.draining <- true
  end

let draining t = t.draining

(* Done draining when nothing is admitted, executing, or queued.  The
   admission slot frees just before the worker sends [Session_result],
   so [st_busy] (which drops only when the thunk returns, strictly
   after the send) is what keeps the barrier honest. *)
let drained t =
  let active = Mutex.protect t.admission_mu (fun () -> t.active) in
  let s = Sched.stats t.sched in
  active = 0 && s.Sched.st_busy = 0 && s.Sched.st_queued = 0

(* ------------------------------------------------------------------ *)
(* Accept loop *)

(* The connection thread reads the first frame to route it: a stats or
   health probe is answered immediately — no admission, no worker — so
   the ops surface stays responsive on a server at capacity; a client
   Hello goes through scenario check, then admission, then the
   handshake and query read, then blocks in {!Sched.run} while a pool
   worker executes the driver.  Scheduling whole sessions (not
   individual frames) keeps each driver's thread-local state — counter
   attribution, bigint caches — private to one worker for the
   session's entire lifetime. *)
let handle t conn ~admit ~release =
  match Frame.decode (Io.recv_frame conn) with
  | Frame.Stats_request ->
    Io.send_frame conn
      (Frame.encode (Frame.Stats { payload = Obs.Json.to_string (stats_json t) }))
  | Frame.Ping ->
    let h_active = Mutex.protect t.admission_mu (fun () -> t.active) in
    Io.send_frame conn
      (Frame.encode
         (Frame.Health { h_role = Transcript.Mediator; h_draining = t.draining; h_active }))
  | Frame.Drain { scenario; deadline } ->
    (* The drain frame is authenticated the same way the Hello handshake
       is: by knowledge of the scenario digest, which only a process
       built from the shared seed can present. *)
    if String.equal scenario t.scenario then begin
      begin_drain ?deadline:(if deadline > 0. then Some deadline else None) t;
      Io.send_frame conn (Frame.encode Frame.Drain_ok)
    end
    else
      Io.send_frame conn (Frame.encode (Frame.Busy "drain refused: scenario digest mismatch"))
  | Frame.Hello { role = Transcript.Client; scenario } ->
    if not (String.equal scenario t.scenario) then
      Io.send_frame conn
        (Frame.encode (Frame.Busy "scenario digest mismatch (wrong workload or parameters)"))
    else if t.draining then begin
      (* Typed and distinct from [Busy]: the client knows the refusal is
         terminal for this incarnation and retries against the restarted
         process instead of backing off against a full one. *)
      Secmed_obs.Metrics.incr sessions_drain_refused;
      Io.send_frame conn (Frame.encode (Frame.Draining "mediator is draining"))
    end
    else if not (admit ()) then begin
      (* Backpressure, not a hang: a typed refusal the load layer can
         count, sent before the handshake commits any session state. *)
      Secmed_obs.Metrics.incr sessions_refused;
      Io.send_frame conn
        (Frame.encode
           (Frame.Busy (Printf.sprintf "at capacity (%d concurrent sessions)" t.max_sessions)))
    end
    else begin
      Secmed_obs.Metrics.incr sessions_admitted;
      Io.send_frame conn (Frame.encode (Frame.Hello_ok { scenario = t.scenario }));
      match Frame.decode (Io.recv_frame conn) with
      | Frame.Query { scheme; query; fault_spec; deadline; fallback; trace } ->
        let sid =
          Mutex.protect t.admission_mu (fun () ->
              let sid = t.next_session in
              t.next_session <- sid + 1;
              sid)
        in
        (try
           Sched.run t.sched (fun () ->
               run_query t conn sid ~release ~scheme ~query ~fault_spec ~deadline ~fallback
                 ~trace)
         with Sched.Stopped ->
           (* The pool was torn down (drain deadline) with this session
              still queued: a typed refusal, not a silent hang. *)
           Io.send_frame conn
             (Frame.encode (Frame.Draining "mediator drained before the session started")))
      | _ -> ()
    end
  | Frame.Hello _ ->
    Io.send_frame conn (Frame.encode (Frame.Busy "only clients may connect to this port"))
  | _ -> ()

let conn_thread t conn =
  (* Registered so a deadline-expired teardown can sever this
     connection and wake whichever worker is blocked on it. *)
  let token =
    Mutex.protect t.conns_mu (fun () ->
        t.conn_seq <- t.conn_seq + 1;
        Hashtbl.replace t.live_conns t.conn_seq conn;
        t.conn_seq)
  in
  (* [release] is called at most once per admitted session: by [reply]
     on the worker thread (strictly before [Sched.run] returns), or by
     the teardown below when the session never reached a verdict. *)
  let state_mu = Mutex.create () in
  let admitted = ref false in
  let released = ref false in
  let admit () =
    let ok =
      Mutex.protect t.admission_mu (fun () ->
          if t.active < t.max_sessions then begin
            t.active <- t.active + 1;
            Secmed_obs.Metrics.set_gauge active_gauge (float_of_int t.active);
            true
          end
          else false)
    in
    if ok then Mutex.protect state_mu (fun () -> admitted := true);
    ok
  in
  let release () =
    let owe =
      Mutex.protect state_mu (fun () ->
          if !admitted && not !released then begin
            released := true;
            true
          end
          else false)
    in
    if owe then
      Mutex.protect t.admission_mu (fun () ->
          t.active <- t.active - 1;
          Secmed_obs.Metrics.set_gauge active_gauge (float_of_int t.active))
  in
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect t.conns_mu (fun () -> Hashtbl.remove t.live_conns token);
      Io.close conn;
      release ())
    (fun () ->
      try handle t conn ~admit ~release with Io.Transport_error _ | Wire.Malformed _ -> ())

(* One health-probe pass: a short-lived connection per replica carrying
   a single Ping.  A draining or unreachable replica is marked down, so
   the pool proactively switches slots away from it instead of paying a
   session fault to discover the death. *)
let probe_replica t re =
  let timeout = Float.min 2. t.io_timeout in
  match Io.connect ~timeout ~host:re.re_host ~port:re.re_port () with
  | exception Io.Transport_error msg -> Error msg
  | conn -> (
    Fun.protect ~finally:(fun () -> Io.close conn) @@ fun () ->
    try
      Io.send_frame conn (Frame.encode Frame.Ping);
      match Frame.decode (Io.recv_frame conn) with
      | Frame.Health { h_draining = false; _ } -> Ok ()
      | Frame.Health _ -> Error "probe: peer is draining"
      | f -> Error ("probe: unexpected " ^ Frame.tag_name f)
    with Io.Transport_error msg | Wire.Malformed msg -> Error ("probe: " ^ msg))

let prober t () =
  let nap seconds =
    let rec go left =
      if left > 0. && not t.stopped then begin
        Thread.delay (Float.min 0.2 left);
        go (left -. 0.2)
      end
    in
    go seconds
  in
  while not t.stopped do
    List.iter
      (fun sl ->
        Array.iter
          (fun re ->
            if not t.stopped then
              match probe_replica t re with
              | Ok () -> mark_up t sl re.re_index
              | Error msg -> mark_down t sl re.re_index ~reason:msg)
          sl.sl_replicas)
      t.sources;
    nap t.health_interval
  done

let teardown ~drain t =
  t.stopped <- true;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  List.iter
    (fun sl ->
      Array.iter
        (fun slot ->
          Mutex.protect slot.ss_mu (fun () ->
              match slot.ss_mux with
              | Some m ->
                (* Shutdown first: close alone need not wake the mux's
                   receive thread out of a blocked read, and sessions
                   waiting on its replies would sit out the full I/O
                   timeout. *)
                Io.shutdown (Mux.conn m);
                Io.close (Mux.conn m);
                slot.ss_mux <- None
              | None -> ()))
        sl.sl_slots)
    t.sources;
  (* A forced stop (drain deadline expired) severs every open client
     connection before joining the pool: a worker mid-session may be
     blocked reading its client for up to [io_timeout], and [Sched.stop]
     joins — without the shutdown the "deadline" would quietly stretch
     by a full I/O timeout.  The severed client sees a transport fault
     and redials the restarted mediator.  A graceful stop keeps them:
     its sessions already reached verdicts. *)
  if not drain then
    Mutex.protect t.conns_mu (fun () ->
        Hashtbl.iter (fun _ conn -> Io.shutdown conn) t.live_conns);
  Sched.stop ~drain t.sched

(* The accept loop ticks on a short select so draining is observed
   promptly: [Io.accept]'s timeout binds the accepted connection, not
   the accept call, so a blocking accept would pin a drained server to
   its socket until one more client showed up.  During a drain the loop
   keeps accepting — probes stay answerable and late Hellos get their
   typed [Draining] — until the in-flight sessions finish or the
   deadline passes, then tears down without running whatever is still
   queued. *)
let serve t =
  if t.health_interval > 0. then ignore (Thread.create (prober t) () : Thread.t);
  let rec loop () =
    if t.stopped then ()
    else if t.draining && (drained t || Unix.gettimeofday () > t.drain_deadline_at) then ()
    else begin
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> if not t.stopped then Thread.delay 0.05
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Io.accept ~timeout:t.io_timeout t.listen_fd with
        | exception Io.Transport_error _ -> ()
        | conn -> ignore (Thread.create (conn_thread t) conn : Thread.t)));
      loop ()
    end
  in
  loop ();
  if t.draining && not t.stopped then teardown ~drain:false t

let stop t = if not t.stopped then teardown ~drain:true t

(** The mediator as a network server.

    One process owns the hub of the star topology: it accepts client
    connections (thread-per-session, bounded by [max_sessions] — excess
    connections are refused with a [Busy] frame), keeps one persistent,
    multiplexed connection per datasource daemon (dialed lazily,
    redialed when found dead), and drives each query through
    {!Secmed_core.Protocol.run_session} with

    - a [Remote] link endpoint, so the mediator's protocol messages
      cross real sockets;
    - a session coordinator that broadcasts [Session_start] per attempt,
      aborts the replicas when the local attempt fails, and folds their
      end-of-attempt reports into the attempt verdict (a replica's typed
      fault outranks the mediator's own downstream transport stall);
    - a real-time deadline hook: every blocking send/recv re-checks the
      query budget, so a stalled wire trips [Timed_out] exactly like a
      simulated delay;
    - one shared {!Secmed_mediation.Resilience.session}, so breaker
      state persists across queries (a per-query deadline in the [Query]
      frame gets a fresh session scoped to that budget).

    Driver execution is serialized by a global lock: the crypto counters
    and trace collector are process-global, and the protocol layer is
    what this subsystem distributes, not intra-mediator parallelism. *)

open Secmed_mediation
open Secmed_core

type t

val create :
  env:Env.t ->
  client:Env.client ->
  scenario:string ->
  sources:(int * string * int) list ->
  listen_fd:Unix.file_descr ->
  ?policy:Resilience.policy ->
  ?max_sessions:int ->
  ?io_timeout:float ->
  unit ->
  t
(** [sources] maps each datasource id to the [(host, port)] its daemon
    listens on; [scenario] is the {!Scenario.digest} every peer must
    present.  [io_timeout] (default 10s) bounds each blocking frame
    exchange; [max_sessions] (default 8) the concurrent client
    sessions. *)

val serve : t -> unit
(** Accept loop; returns when the listening socket is closed. *)

val stop : t -> unit
(** Close the listener (and the datasource connections). *)

(** The mediator as a network server.

    One process owns the hub of the star topology: it accepts client
    connections (thread-per-session, bounded by [max_sessions] — excess
    connections are refused with a typed [Busy] frame the load layer
    counts as backpressure), keeps a pool of [source_conns] persistent,
    multiplexed connections per datasource daemon (each dialed lazily,
    redialed when found dead; a session checks out one pooled
    connection per source by round-robin on its session id, so a
    severed pooled link faults only the sessions bound to it), and
    drives each query through {!Secmed_core.Protocol.run_session} with

    - a [Remote] link endpoint, so the mediator's protocol messages
      cross real sockets;
    - a session coordinator that broadcasts [Session_start] per attempt,
      aborts the replicas when the local attempt fails, and folds their
      end-of-attempt reports into the attempt verdict (a replica's typed
      fault outranks the mediator's own downstream transport stall);
    - a real-time deadline hook: every blocking send/recv re-checks the
      query budget, so a stalled wire trips [Timed_out] exactly like a
      simulated delay;
    - one shared {!Secmed_mediation.Resilience.session}, so breaker
      state persists across queries (a per-query deadline in the [Query]
      frame gets a fresh session scoped to that budget).

    Drivers execute concurrently on a bounded {!Sched} worker pool
    ([workers], default [max_sessions]) — no head-of-line blocking:
    admission bounds how many sessions are accepted, the pool bounds how
    many drivers run at once, and sessions beyond the pool queue FIFO.
    This is safe because every piece of cross-driver state is either
    thread-local (crypto counter attribution, bigint caches) or
    internally locked (the shared resilience session's breakers). *)

open Secmed_mediation
open Secmed_core

type t

val create :
  env:Env.t ->
  client:Env.client ->
  scenario:string ->
  sources:(int * string * int) list ->
  listen_fd:Unix.file_descr ->
  ?policy:Resilience.policy ->
  ?max_sessions:int ->
  ?io_timeout:float ->
  ?source_conns:int ->
  ?workers:int ->
  unit ->
  t
(** [sources] maps each datasource id to the [(host, port)] its daemon
    listens on; [scenario] is the {!Scenario.digest} every peer must
    present.  [io_timeout] (default 10s) bounds each blocking frame
    exchange; [max_sessions] (default 8) the concurrent client
    sessions; [source_conns] (default 2) the pooled connections per
    datasource; [workers] (default [max_sessions]) the concurrent
    protocol drivers. *)

val serve : t -> unit
(** Accept loop; returns when the listening socket is closed.  Every
    accepted connection is routed by its first frame: a [Stats_request]
    is answered immediately — without admission control, so the ops
    surface works on a server at capacity — and a client [Hello] goes
    through scenario check, admission, handshake, and the scheduler. *)

val stats_json : t -> Secmed_obs.Json.t
(** The live serving snapshot the [Stats] frame carries: uptime,
    admission state, scheduler utilization, per-source pool slots (with
    dial counts), breaker states, process-wide transport volume, and
    per-scheme served/degraded/failed tallies with latency
    percentiles.  Lock order is per-subsystem; the snapshot is
    consistent per field group, not globally atomic. *)

val stop : t -> unit
(** Close the listener and the pooled datasource connections, and
    retire the worker pool. *)

(** The mediator as a network server.

    One process owns the hub of the star topology: it accepts client
    connections (thread-per-session, bounded by [max_sessions] — excess
    connections are refused with a typed [Busy] frame the load layer
    counts as backpressure), keeps a pool of [source_conns] persistent,
    multiplexed connections per datasource daemon (each dialed lazily,
    redialed when found dead; a session checks out one pooled
    connection per source by round-robin on its session id, so a
    severed pooled link faults only the sessions bound to it), and
    drives each query through {!Secmed_core.Protocol.run_session} with

    - a [Remote] link endpoint, so the mediator's protocol messages
      cross real sockets;
    - a session coordinator that broadcasts [Session_start] per attempt,
      aborts the replicas when the local attempt fails, and folds their
      end-of-attempt reports into the attempt verdict (a replica's typed
      fault outranks the mediator's own downstream transport stall);
    - a real-time deadline hook: every blocking send/recv re-checks the
      query budget, so a stalled wire trips [Timed_out] exactly like a
      simulated delay;
    - one shared {!Secmed_mediation.Resilience.session}, so breaker
      state persists across queries (a per-query deadline in the [Query]
      frame gets a fresh session scoped to that budget).

    Drivers execute concurrently on a bounded {!Sched} worker pool
    ([workers], default [max_sessions]) — no head-of-line blocking:
    admission bounds how many sessions are accepted, the pool bounds how
    many drivers run at once, and sessions beyond the pool queue FIFO.
    This is safe because every piece of cross-driver state is either
    thread-local (crypto counter attribution, bigint caches) or
    internally locked (the shared resilience session's breakers). *)

open Secmed_mediation
open Secmed_core

type t

(** One entry of the failover transition log: a replica health flip
    ([fo_kind] ["down"]/["up"]) or a slot's replica cursor move
    (["failover"]), timestamped in seconds since server start. *)
type fo_event = {
  fo_at : float;
  fo_source : int;
  fo_replica : int;
  fo_kind : string;
  fo_detail : string;
}

val create :
  env:Env.t ->
  client:Env.client ->
  scenario:string ->
  sources:(int * (string * int) list list) list ->
  listen_fd:Unix.file_descr ->
  ?policy:Resilience.policy ->
  ?max_sessions:int ->
  ?io_timeout:float ->
  ?source_conns:int ->
  ?workers:int ->
  ?drain_deadline:float ->
  ?health_interval:float ->
  ?replica_cooldown:float ->
  unit ->
  t
(** [sources] maps each datasource id to its shards, each shard a
    replica list — [(host, port)] endpoints, primary first, every one a
    daemon serving the same deterministic replica of that source.  A
    single-shard entry is the classic unsharded deployment; with k
    shards, streamed deliveries arrive as k partitioned chunk streams
    merged back into row order (DESIGN.md §16), and each shard is
    dialed with its own {!Shard.digest} of [scenario] (which the client
    handshake still uses in base form).  [io_timeout] (default 10s)
    bounds each blocking frame exchange; [max_sessions] (default 8) the
    concurrent client sessions; [source_conns] (default 2) the pooled
    connections per shard; [workers] (default [max_sessions]) the
    concurrent protocol drivers.

    Each pool slot keeps a replica cursor: a redial walks the replicas
    in health order (up first, then cooldown-expired, primary first),
    so a dead primary fails the slot over to a standby within a
    session's one typed retry, and a later redial after
    [replica_cooldown] (default 1s) fails back.  [drain_deadline]
    (default 30s) bounds how long {!begin_drain} waits for in-flight
    sessions; [health_interval] > 0 (default 0 = off) starts a prober
    thread that Pings every replica and proactively marks draining or
    unreachable ones down. *)

val serve : t -> unit
(** Accept loop; returns when {!stop} is called or a drain completes
    (all in-flight sessions finished, or the drain deadline passed —
    the draining teardown rejects still-queued sessions with a typed
    [Draining]).  Every accepted connection is routed by its first
    frame: [Stats_request] and [Ping] are answered immediately —
    without admission control, so the ops surface works on a server at
    capacity — a [Drain] carrying the right scenario digest flips the
    server into draining, and a client [Hello] goes through scenario
    check, drain check, admission, handshake, and the scheduler. *)

val begin_drain : ?deadline:float -> t -> unit
(** Flip into draining (idempotent, async-signal-safe: only field
    writes, so it may be called from a SIGTERM handler).  New sessions
    are refused with [Draining]; {!serve} returns once in-flight
    sessions finish or [deadline] (default [drain_deadline]) passes. *)

val draining : t -> bool

val failover_events : t -> fo_event list
(** The failover transition log, oldest first (capped at 512 newest). *)

val stats_json : t -> Secmed_obs.Json.t
(** The live serving snapshot the [Stats] frame carries: uptime,
    admission state (including draining), scheduler utilization,
    per-source pool slots (with dial counts and replica cursors),
    per-replica health, the failover transition log, breaker states,
    process-wide transport volume, streamed-delivery tallies (totals,
    per-session rows/bytes for live and recent sessions, the current
    chunk backlog, and the tracked high-water memory regions), and
    per-scheme served/degraded/failed tallies with latency percentiles.
    Lock order is per-subsystem; the snapshot is consistent per field
    group, not globally atomic. *)

val stop : t -> unit
(** Close the listener and the pooled datasource connections, and
    retire the worker pool. *)

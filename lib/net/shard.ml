(* Sharded datasource addressing (DESIGN.md §16).

   A logical source may be split into k daemon processes, each a full
   deterministic replica that transmits only its round-robin partition
   of every streamed delivery (shard 0 alone speaks the scalar frames).
   This module owns the two pieces both sides must agree on: the CLI
   address syntax and the per-shard scenario digest. *)

let digest base ~shard:(j, k) =
  if k <= 0 || j < 0 || j >= k then invalid_arg "Shard.digest: shard out of range";
  (* k = 1 keeps the base digest so unsharded deployments interoperate
     with every earlier incarnation unchanged; a real shard mixes its
     coordinates in, so a mediator can never mistake which partition a
     daemon serves — a miswired shard fails the Hello handshake instead
     of corrupting the merge. *)
  if k = 1 then base
  else Secmed_crypto.Sha256.hex_digest (Printf.sprintf "%s|shard %d/%d" base j k)

(* "HOST:PORT" with an optional "shard@" marker (redundant — position
   assigns the index — but it lets an operator label intent). *)
let parse_addr s =
  let s =
    match String.index_opt s '@' with
    | Some i when String.sub s 0 i = "shard" ->
      String.sub s (i + 1) (String.length s - i - 1)
    | Some _ | None -> s
  in
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "bad address %S (expected HOST:PORT)" s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    if String.equal host "" then Error (Printf.sprintf "bad address %S (empty host)" s)
    else
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> Ok (host, p)
      | Some _ | None -> Error (Printf.sprintf "bad address %S (bad port)" s))

let split_on c s = String.split_on_char c s |> List.filter (fun x -> not (String.equal x ""))

(* "ID=shard@H:P,H:P;shard@H:P;..." — [;] separates shards, [,]
   separates a shard's failover replicas.  The unsharded form
   "ID=H:P,H:P" parses as one shard, so existing deployments read
   unchanged. *)
let parse_source s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "bad source %S (expected ID=HOST:PORT[,...][;...])" s)
  | Some i -> (
    let id = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt id with
    | None -> Error (Printf.sprintf "bad source id %S" id)
    | Some id -> (
      let shards = split_on ';' rest in
      if shards = [] then Error (Printf.sprintf "source %d: no addresses" id)
      else
        let parse_shard shard_s =
          let replicas = split_on ',' shard_s in
          if replicas = [] then Error (Printf.sprintf "source %d: empty shard" id)
          else
            List.fold_left
              (fun acc a ->
                match (acc, parse_addr a) with
                | Error e, _ -> Error e
                | _, Error e -> Error e
                | Ok l, Ok addr -> Ok (addr :: l))
              (Ok []) replicas
            |> Result.map List.rev
        in
        List.fold_left
          (fun acc sh ->
            match (acc, parse_shard sh) with
            | Error e, _ -> Error e
            | _, Error e -> Error e
            | Ok l, Ok replicas -> Ok (replicas :: l))
          (Ok []) shards
        |> Result.map (fun l -> (id, List.rev l))))

let parse_shard_flag s =
  match String.split_on_char '/' s with
  | [ j; k ] -> (
    match (int_of_string_opt j, int_of_string_opt k) with
    | Some j, Some k when k > 0 && j >= 0 && j < k -> Ok (j, k)
    | _ -> Error (Printf.sprintf "bad shard %S (expected J/K with 0 <= J < K)" s))
  | _ -> Error (Printf.sprintf "bad shard %S (expected J/K)" s)

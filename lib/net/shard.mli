(** Sharded datasource addressing (DESIGN.md §16): the CLI address
    syntax and the per-shard scenario digest the mediator and each shard
    daemon must agree on. *)

val digest : string -> shard:int * int -> string
(** [digest base ~shard:(j, k)]: the scenario digest shard [j] of [k]
    presents in its Hello handshake.  Equal to [base] when [k = 1]
    (unsharded deployments interoperate unchanged); otherwise a hash
    mixing the shard coordinates, so a miswired shard fails the
    handshake instead of corrupting the merge.  Raises [Invalid_argument]
    unless [0 <= j < k]. *)

val parse_addr : string -> (string * int, string) result
(** ["HOST:PORT"], optionally prefixed ["shard@"]. *)

val parse_source : string -> (int * (string * int) list list, string) result
(** ["ID=shard@H:P,H:P;shard@H:P"]: [;] separates shards, [,] separates
    a shard's failover replicas, the [shard@] marker is optional.  The
    unsharded ["ID=H:P,H:P"] parses as a single shard. *)

val parse_shard_flag : string -> (int * int, string) result
(** ["J/K"] as passed to [secmed source --shard]. *)

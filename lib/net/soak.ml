open Secmed_core
module Json = Secmed_obs.Json

type action = Kill of int * int | Drain_restart

type config = {
  params : Env.params option;
  spec : Workload.spec;
  workers : int;
  sessions_per_worker : int;
  standbys : int;
  kills : int;
  drains : int;
  seed : string;
  rate : float;
  gap : float;
  kill_hold : float;
  retry_connect : int;
  io_timeout : float;
  verify : bool;
}

let default_config =
  {
    params = None;
    spec = Workload.default;
    workers = 4;
    sessions_per_worker = 8;
    standbys = 1;
    kills = 4;
    drains = 1;
    seed = "soak";
    rate = 10.;
    gap = 0.5;
    kill_hold = 1.0;
    retry_connect = 10;
    io_timeout = 10.;
    verify = true;
  }

type event = { ev_at : float; ev_label : string }

type transition = {
  tr_incarnation : int;
  tr_at : float;
  tr_source : int;
  tr_replica : int;
  tr_kind : string;
  tr_detail : string;
}

type report = {
  sk_load : Loadgen.report;
  sk_events : event list;
  sk_transitions : transition list;
  sk_drain_exits : int list;
  sk_kills : (int * int) list;
  sk_violations : string list;
  sk_availability_pct : float;
  sk_kill_window_p99_ms : float;
  sk_failover_latency_s : float;
}

let ok r = r.sk_violations = []

(* ------------------------------------------------------------------ *)
(* The seeded schedule *)

(* Kills cycle through every (source, replica) endpoint in order before
   repeating, so [kills >= 2 * (1 + standbys)] exercises primaries and
   standbys alike; the interleaving with mediator drain-restarts is a
   seeded Fisher-Yates shuffle.  Pure: the same config always yields
   the same schedule, which is what lets the invariant checks match the
   observed transition log against it. *)
let schedule cfg =
  let replicas = 1 + max 0 cfg.standbys in
  let endpoints =
    List.concat_map (fun sid -> List.init replicas (fun r -> (sid, r))) [ 1; 2 ]
  in
  let n = List.length endpoints in
  let kills =
    List.init (max 0 cfg.kills) (fun i ->
        let sid, r = List.nth endpoints (i mod n) in
        Kill (sid, r))
  in
  let drains = List.init (max 0 cfg.drains) (fun _ -> Drain_restart) in
  let arr = Array.of_list (kills @ drains) in
  Secmed_crypto.Prng.shuffle (Secmed_crypto.Prng.create ~seed:("soak-" ^ cfg.seed)) arr;
  Array.to_list arr

(* ------------------------------------------------------------------ *)
(* The supervisor process *)

(* The cluster's processes are children of a dedicated single-threaded
   supervisor, forked before the soak driver spawns its first thread:
   OCaml forbids [Unix.fork] in a process that has spawned domains, and
   forking from a threaded parent clones locked mutexes into children.
   The supervisor speaks a tiny framed command protocol over a
   socketpair — kill / start / drain / start-mediator / quit — and owns
   every pid and listening port, rebinding (SO_REUSEADDR) when it
   restarts a process. *)

let drain_deadline = 10.
let health_interval = 0.25
let replica_cooldown = 0.5

(* The soak measures failover, not breaker policy: one SIGKILL severs a
   pooled connection and faults every session bound to that slot at
   once, which would trip a rate breaker whose open state is terminal
   for a query.  A threshold above 1.0 can never be reached (the same
   knob the serving bench uses). *)
let soak_policy =
  {
    Secmed_mediation.Resilience.default_policy with
    breaker_config =
      { Secmed_mediation.Resilience.default_breaker with failure_threshold = 2.0 };
  }

let supervisor ~env ~client ~scenario ~cfg ~source_fds ~med_fd ~med_port ~ctl_fd =
  let ctl = Io.of_fd ~peer:"soak-parent" ctl_fd in
  let sources =
    (* Single-shard: the soak exercises failover, not partitioning. *)
    List.map
      (fun sid ->
        ( sid,
          [
            List.filter_map
              (fun ((s, _), (_, port)) ->
                if s = sid then Some ("127.0.0.1", port) else None)
              source_fds;
          ] ))
      [ 1; 2 ]
  in
  let ports = Hashtbl.create 8 in
  List.iter (fun ((s, r), (_, port)) -> Hashtbl.replace ports (s, r) port) source_fds;
  let pids = Hashtbl.create 8 in
  let med_pid = ref (-1) in
  (* Every listener the supervisor still holds: children close all of
     them but their own, so a SIGKILLed process really does take its
     port down (a sibling holding an inherited copy would keep the
     kernel accepting connections nobody will ever serve). *)
  let open_listeners = ref (List.map snd source_fds @ [ (med_fd, med_port) ]) in
  let spawn fd f =
    match Unix.fork () with
    | 0 ->
      (try Unix.close ctl_fd with Unix.Unix_error _ -> ());
      List.iter
        (fun (ofd, _) ->
          if ofd <> fd then try Unix.close ofd with Unix.Unix_error _ -> ())
        !open_listeners;
      (try f fd with _ -> Unix._exit 1);
      Unix._exit 0
    | pid ->
      open_listeners := List.filter (fun (ofd, _) -> ofd <> fd) !open_listeners;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      pid
  in
  let run_source sid fd =
    Peer.source ~id:sid ~env ~client ~scenario ~listen_fd:fd ~io_timeout:cfg.io_timeout
      ~drain_deadline ~drain_on_sigterm:true ()
  in
  let run_mediator fd =
    let server =
      Server.create ~env ~client ~scenario ~sources ~listen_fd:fd ~policy:soak_policy
        ~max_sessions:(cfg.workers + 4) ~io_timeout:cfg.io_timeout
        ~workers:cfg.workers ~drain_deadline ~health_interval ~replica_cooldown ()
    in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> Server.begin_drain server));
    Server.serve server
  in
  (* A closed listening socket leaves no TIME_WAIT state, but give the
     kernel a beat anyway rather than failing a whole soak on a racy
     rebind. *)
  let rebind port =
    let rec go n =
      match Io.listen ~port () with
      | fd, _ -> fd
      | exception Io.Transport_error _ when n < 100 ->
        Unix.sleepf 0.05;
        go (n + 1)
    in
    go 0
  in
  List.iter
    (fun ((sid, r), (fd, _)) -> Hashtbl.replace pids (sid, r) (spawn fd (run_source sid)))
    source_fds;
  med_pid := spawn med_fd run_mediator;
  let reap pid =
    try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
  in
  let rec loop () =
    let reply s = Io.send_frame ctl s in
    match String.split_on_char ' ' (Io.recv_frame ctl) with
    | [ "kill"; s; r ] ->
      let key = (int_of_string s, int_of_string r) in
      (match Hashtbl.find_opt pids key with
      | Some pid ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        reap pid;
        Hashtbl.remove pids key;
        reply "ok"
      | None -> reply "err: not running");
      loop ()
    | [ "start"; s; r ] ->
      let sid = int_of_string s and rep = int_of_string r in
      let fd = rebind (Hashtbl.find ports (sid, rep)) in
      open_listeners := [ (fd, 0) ];
      Hashtbl.replace pids (sid, rep) (spawn fd (run_source sid));
      reply "ok";
      loop ()
    | [ "drain" ] ->
      (try Unix.kill !med_pid Sys.sigterm with Unix.Unix_error _ -> ());
      let code =
        match Unix.waitpid [] !med_pid with
        | _, Unix.WEXITED c -> c
        | _, Unix.WSIGNALED _ -> 111
        | _, Unix.WSTOPPED _ -> 112
        | exception Unix.Unix_error _ -> 113
      in
      med_pid := -1;
      reply (Printf.sprintf "ok %d" code);
      loop ()
    | [ "start-mediator" ] ->
      let fd = rebind med_port in
      open_listeners := [ (fd, 0) ];
      med_pid := spawn fd run_mediator;
      reply "ok";
      loop ()
    | [ "quit" ] ->
      Hashtbl.iter
        (fun _ pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          reap pid)
        pids;
      if !med_pid > 0 then begin
        (try Unix.kill !med_pid Sys.sigkill with Unix.Unix_error _ -> ());
        reap !med_pid
      end;
      reply "ok"
    | _ ->
      reply "err: unknown command";
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* The driver *)

let transitions_of_payload ~incarnation payload =
  match Json.parse payload with
  | Error _ -> []
  | Ok j -> (
    match Option.bind (Json.member "failover" j) (Json.member "events") with
    | Some (Json.List events) ->
      List.filter_map
        (fun e ->
          let i k = Option.bind (Json.member k e) Json.to_int in
          let f k = Option.bind (Json.member k e) Json.to_float in
          let s k = Option.bind (Json.member k e) Json.to_str in
          match (f "at", i "source", i "replica", s "kind", s "detail") with
          | Some at, Some source, Some replica, Some kind, Some detail ->
            Some
              {
                tr_incarnation = incarnation;
                tr_at = at;
                tr_source = source;
                tr_replica = replica;
                tr_kind = kind;
                tr_detail = detail;
              }
          | _ -> None)
        events
    | _ -> [])

let percentile q xs =
  match List.sort compare xs with
  | [] -> 0.
  | sorted ->
    let n = List.length sorted in
    let idx = min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1) in
    List.nth sorted (max 0 idx)

let run ?(progress = fun (_ : string) -> ()) cfg =
  let env, client, query = Workload.scenario ?params:cfg.params cfg.spec in
  let scenario = Scenario.digest ?params:cfg.params cfg.spec in
  let replicas = 1 + max 0 cfg.standbys in
  let source_fds =
    List.concat_map
      (fun sid -> List.init replicas (fun r -> ((sid, r), Io.listen ~port:0 ())))
      [ 1; 2 ]
  in
  let med_fd, med_port = Io.listen ~port:0 () in
  let ctl_parent, ctl_child = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let sup_pid =
    match Unix.fork () with
    | 0 ->
      (try Unix.close ctl_parent with Unix.Unix_error _ -> ());
      (try
         supervisor ~env ~client ~scenario ~cfg ~source_fds ~med_fd ~med_port
           ~ctl_fd:ctl_child
       with _ -> Unix._exit 1);
      Unix._exit 0
    | pid -> pid
  in
  (try Unix.close ctl_child with Unix.Unix_error _ -> ());
  List.iter
    (fun (_, (fd, _)) -> try Unix.close fd with Unix.Unix_error _ -> ())
    source_fds;
  (try Unix.close med_fd with Unix.Unix_error _ -> ());
  let ctl = Io.of_fd ~peer:"soak-supervisor" ctl_parent in
  let cmd c =
    Io.send_frame ctl c;
    Io.recv_frame ctl
  in
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  let expect_ok what reply =
    if reply <> "ok" then violate "supervisor %s: %s" what reply
  in
  Fun.protect
    ~finally:(fun () ->
      (try ignore (cmd "quit") with _ -> ());
      Io.close ctl;
      try ignore (Unix.waitpid [] sup_pid) with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* Wait for the whole cluster to answer probes before offering load. *)
  let wait_ping ~what ~port =
    let deadline = Unix.gettimeofday () +. 15. in
    let rec go () =
      match Peer.ping ~host:"127.0.0.1" ~port ~io_timeout:1.0 () with
      | (_ : Peer.health) -> ()
      | exception (Io.Transport_error _ | Peer.Refused _ | Peer.Draining _)
        when Unix.gettimeofday () < deadline ->
        Thread.delay 0.1;
        go ()
    in
    try go () with _ -> violate "%s never became healthy" what
  in
  wait_ping ~what:"mediator" ~port:med_port;
  List.iter
    (fun ((sid, r), (_, port)) ->
      wait_ping ~what:(Printf.sprintf "source %d replica %d" sid r) ~port)
    source_fds;
  let lcfg =
    {
      Loadgen.default_config with
      workers = cfg.workers;
      sessions_per_worker = cfg.sessions_per_worker;
      domains = 1;
      arrival = (if cfg.rate > 0. then Loadgen.Poisson cfg.rate else Loadgen.Closed);
      seed = cfg.seed;
      (* The resilience budget must absorb a SIGKILL severing a pooled
         slot (faulting every session bound to it) plus a redial race
         on top. *)
      fault_spec = "retries=6";
      io_timeout = cfg.io_timeout;
      verify = cfg.verify;
      retry_connect = cfg.retry_connect;
      retry_backoff = 0.2;
    }
  in
  let target =
    { Loadgen.host = "127.0.0.1"; port = med_port; scenario; env; client; query }
  in
  let t0 = Unix.gettimeofday () in
  let now () = Unix.gettimeofday () -. t0 in
  let events = ref [] in
  let record fmt =
    Printf.ksprintf
      (fun label ->
        progress (Printf.sprintf "%6.2fs %s" (now ()) label);
        events := { ev_at = now (); ev_label = label } :: !events)
      fmt
  in
  let load = ref None in
  let load_exn = ref None in
  let fleet =
    Thread.create
      (fun () ->
        try load := Some (Loadgen.run lcfg target) with e -> load_exn := Some e)
      ()
  in
  let stashes = ref [] in
  let stash_stats what =
    match Peer.stats ~host:"127.0.0.1" ~port:med_port ~io_timeout:2.0 () with
    | payload -> stashes := payload :: !stashes
    | exception _ -> violate "could not stash mediator stats %s" what
  in
  let kills = ref [] in
  let kill_windows = ref [] in
  let drain_exits = ref [] in
  List.iter
    (fun action ->
      Thread.delay cfg.gap;
      match action with
      | Kill (sid, r) ->
        let at = now () in
        record "SIGKILL source %d replica %d" sid r;
        expect_ok "kill" (cmd (Printf.sprintf "kill %d %d" sid r));
        kills := (sid, r) :: !kills;
        Thread.delay cfg.kill_hold;
        record "restart source %d replica %d" sid r;
        expect_ok "start" (cmd (Printf.sprintf "start %d %d" sid r));
        kill_windows := (at, now ()) :: !kill_windows
      | Drain_restart ->
        (* The transition log dies with the incarnation: stash it first. *)
        stash_stats "before drain";
        record "drain mediator (SIGTERM)";
        (match String.split_on_char ' ' (cmd "drain") with
        | [ "ok"; code ] -> drain_exits := int_of_string code :: !drain_exits
        | other -> violate "supervisor drain: %s" (String.concat " " other));
        record "restart mediator";
        expect_ok "start-mediator" (cmd "start-mediator");
        wait_ping ~what:"restarted mediator" ~port:med_port)
    (schedule cfg);
  Thread.join fleet;
  record "fleet done";
  (* A replica restarted moments before the fleet drained still needs
     the health checker one probe (cooldown + interval) before its up
     transition exists to be stashed: wait for the expected transitions
     (bounded) rather than race the checker. *)
  let has_up payloads (sid, r) =
    List.exists
      (fun payload ->
        List.exists
          (fun tr -> tr.tr_source = sid && tr.tr_replica = r && tr.tr_kind = "up")
          (transitions_of_payload ~incarnation:0 payload))
      payloads
  in
  let restarted = List.sort_uniq compare !kills in
  let rec await_ups deadline =
    match Peer.stats ~host:"127.0.0.1" ~port:med_port ~io_timeout:2.0 () with
    | payload ->
      if
        (not (List.for_all (has_up (payload :: !stashes)) restarted))
        && Unix.gettimeofday () < deadline
      then begin
        Thread.delay 0.1;
        await_ups deadline
      end
    | exception _ -> ()
  in
  await_ups (Unix.gettimeofday () +. 5.);
  stash_stats "at end";
  let sk_transitions =
    List.concat
      (List.mapi
         (fun i payload -> transitions_of_payload ~incarnation:i payload)
         (List.rev !stashes))
  in
  let sk_load =
    match (!load, !load_exn) with
    | Some r, _ -> r
    | None, Some e ->
      violate "loadgen raised: %s" (Printexc.to_string e);
      {
        Loadgen.records = [];
        elapsed = now ();
        latency = Secmed_obs.Metrics.private_histogram ();
        per_scheme = [];
        verify_failures = [];
      }
    | None, None ->
      violate "loadgen produced no report";
      {
        Loadgen.records = [];
        elapsed = now ();
        latency = Secmed_obs.Metrics.private_histogram ();
        per_scheme = [];
        verify_failures = [];
      }
  in
  (* ---------------- invariants ---------------- *)
  let records = sk_load.Loadgen.records in
  let expected = cfg.workers * cfg.sessions_per_worker in
  if List.length records <> expected then
    violate "lost sessions: expected %d records, got %d" expected (List.length records);
  let keys =
    List.sort compare
      (List.map (fun r -> (r.Loadgen.r_worker, r.Loadgen.r_index)) records)
  in
  let rec dups = function
    | a :: (b :: _ as rest) ->
      if a = b then
        violate "duplicated session: worker %d index %d" (fst a) (snd a);
      dups rest
    | _ -> ()
  in
  dups keys;
  let count k = Loadgen.count k sk_load in
  if count Loadgen.Failed > 0 then violate "%d sessions Failed" (count Loadgen.Failed);
  if count Loadgen.Unserved > 0 then
    violate "%d sessions Unserved" (count Loadgen.Unserved);
  if count Loadgen.Refused > 0 then
    violate "%d sessions Refused (retry budget exhausted while draining?)"
      (count Loadgen.Refused);
  List.iter (fun m -> violate "verify: %s" m) sk_load.Loadgen.verify_failures;
  List.iter
    (fun code -> if code <> 0 then violate "mediator drain exited with code %d" code)
    (List.rev !drain_exits);
  let killed = List.sort_uniq compare !kills in
  List.iter
    (fun (sid, r) ->
      let has kind =
        List.exists
          (fun tr -> tr.tr_source = sid && tr.tr_replica = r && tr.tr_kind = kind)
          sk_transitions
      in
      if not (has "down") then
        violate "no down transition logged for killed source %d replica %d" sid r;
      if not (has "up") then
        violate "no up transition logged for restarted source %d replica %d" sid r)
    killed;
  (* ---------------- metrics ---------------- *)
  let total = List.length records in
  let first_try_ok =
    List.length
      (List.filter
         (fun r ->
           r.Loadgen.r_retries = 0
           && match r.Loadgen.r_kind with
              | Loadgen.Served | Loadgen.Degraded -> true
              | _ -> false)
         records)
  in
  let sk_availability_pct =
    if total = 0 then 0. else 100. *. float_of_int first_try_ok /. float_of_int total
  in
  let in_kill_window r =
    List.exists
      (fun (k_at, k_end) ->
        r.Loadgen.r_started < k_end +. 0.5 && r.Loadgen.r_finished > k_at)
      !kill_windows
  in
  let sk_kill_window_p99_ms =
    1000.
    *. percentile 0.99
         (List.filter_map
            (fun r ->
              if in_kill_window r then Some (r.Loadgen.r_finished -. r.Loadgen.r_started)
              else None)
            records)
  in
  let sk_failover_latency_s =
    List.fold_left
      (fun acc (k_at, _) ->
        let first_after =
          List.fold_left
            (fun best r ->
              if r.Loadgen.r_finished > k_at then
                match best with
                | None -> Some r.Loadgen.r_finished
                | Some b -> Some (Float.min b r.Loadgen.r_finished)
              else best)
            None records
        in
        match first_after with None -> acc | Some f -> Float.max acc (f -. k_at))
      0. !kill_windows
  in
  {
    sk_load;
    sk_events = List.rev !events;
    sk_transitions;
    sk_drain_exits = List.rev !drain_exits;
    sk_kills = List.rev !kills;
    sk_violations = List.rev !violations;
    sk_availability_pct;
    sk_kill_window_p99_ms;
    sk_failover_latency_s;
  }

(* ------------------------------------------------------------------ *)
(* Reporting *)

let summary_json r =
  Json.Obj
    [
      ("availability_pct", Json.Float r.sk_availability_pct);
      ("kill_window_p99_ms", Json.Float r.sk_kill_window_p99_ms);
      ("failover_latency_s", Json.Float r.sk_failover_latency_s);
      ("kills", Json.Int (List.length r.sk_kills));
      ("drains", Json.Int (List.length r.sk_drain_exits));
      ("sessions", Json.Int (List.length r.sk_load.Loadgen.records));
      ("failed", Json.Int (Loadgen.count Loadgen.Failed r.sk_load));
      ("transitions", Json.Int (List.length r.sk_transitions));
      ("violations", Json.List (List.map (fun v -> Json.Str v) r.sk_violations));
    ]

let render r =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "soak: %d kills, %d drains over %d sessions (%.1fs)\n" (List.length r.sk_kills)
    (List.length r.sk_drain_exits)
    (List.length r.sk_load.Loadgen.records)
    r.sk_load.Loadgen.elapsed;
  add "%s" (Loadgen.render r.sk_load);
  add "availability: %.1f%% first-try; kill-window p99 %.1fms; worst failover %.2fs\n"
    r.sk_availability_pct r.sk_kill_window_p99_ms r.sk_failover_latency_s;
  add "transitions (%d):\n" (List.length r.sk_transitions);
  List.iter
    (fun tr ->
      add "  [med %d] %6.2fs source %d replica %d %-8s %s\n" tr.tr_incarnation tr.tr_at
        tr.tr_source tr.tr_replica tr.tr_kind tr.tr_detail)
    r.sk_transitions;
  (match r.sk_violations with
  | [] -> add "invariants: all hold\n"
  | vs ->
    add "VIOLATIONS (%d):\n" (List.length vs);
    List.iter (fun v -> add "  %s\n" v) vs);
  Buffer.contents buf

let write_log ~path r =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  let line j = output_string oc (Json.to_string j ^ "\n") in
  List.iter
    (fun ev ->
      line
        (Json.Obj
           [
             ("type", Json.Str "event");
             ("at", Json.Float ev.ev_at);
             ("label", Json.Str ev.ev_label);
           ]))
    r.sk_events;
  List.iter
    (fun tr ->
      line
        (Json.Obj
           [
             ("type", Json.Str "transition");
             ("incarnation", Json.Int tr.tr_incarnation);
             ("at", Json.Float tr.tr_at);
             ("source", Json.Int tr.tr_source);
             ("replica", Json.Int tr.tr_replica);
             ("kind", Json.Str tr.tr_kind);
             ("detail", Json.Str tr.tr_detail);
           ]))
    r.sk_transitions;
  List.iter
    (fun code ->
      line (Json.Obj [ ("type", Json.Str "drain"); ("exit", Json.Int code) ]))
    r.sk_drain_exits;
  List.iter
    (fun v ->
      line (Json.Obj [ ("type", Json.Str "violation"); ("msg", Json.Str v) ]))
    r.sk_violations;
  line (Json.Obj [ ("type", Json.Str "summary"); ("soak", summary_json r) ])

(** Crash/restart chaos soak: a seeded schedule of real process deaths
    driven against a live loopback cluster under load.

    {!run} forks a dedicated single-threaded supervisor process that
    owns the whole cluster — every datasource replica daemon and the
    mediator, each on a pre-bound port — and answers a tiny framed
    command protocol (kill, start, drain, start-mediator, quit) over a
    socketpair.  The driver then offers a deterministic {!Loadgen}
    fleet (with a connect-retry budget, so sessions ride out restarts)
    while executing {!schedule}: SIGKILL a source replica, restart it
    on the same port, drain-restart the mediator via SIGTERM.

    The fork happens on entry, before the driver spawns any thread:
    call this before creating domains or long-lived threads (OCaml
    forbids [Unix.fork] after [Domain.spawn]).

    Afterwards the report asserts the robustness invariants — no
    session [Failed], none lost or duplicated, every served result
    bit-identical under [verify], every mediator drain exited 0, and
    the mediator's failover transition log shows a down and an up edge
    for every endpoint the schedule killed — and distills availability
    metrics (first-try share, kill-window p99, worst failover
    latency).  A report with an empty [sk_violations] is a pass. *)

open Secmed_core

type action = Kill of int * int  (** (source id, replica index) *) | Drain_restart

type config = {
  params : Env.params option;
  spec : Workload.spec;
  workers : int;
  sessions_per_worker : int;
  standbys : int;  (** extra replica daemons per source *)
  kills : int;  (** SIGKILL/restart cycles, cycling over every endpoint *)
  drains : int;  (** mediator drain-restart cycles *)
  seed : string;  (** seeds both the schedule shuffle and the fleet *)
  rate : float;  (** aggregate Poisson arrival rate; [<= 0.] = closed loop *)
  gap : float;  (** settle seconds before each schedule action *)
  kill_hold : float;  (** how long a killed process stays dead *)
  retry_connect : int;  (** per-session connect-retry budget (see {!Loadgen}) *)
  io_timeout : float;
  verify : bool;
}

val default_config : config
(** 4 workers x 8 sessions, 1 standby per source, 4 kills + 1 drain,
    10/s Poisson, verification on. *)

val schedule : config -> action list
(** The pure seeded schedule [run] executes: same config, same list. *)

type event = { ev_at : float; ev_label : string }
(** One schedule action as executed, timestamped relative to fleet
    start. *)

type transition = {
  tr_incarnation : int;  (** which mediator incarnation logged it *)
  tr_at : float;  (** seconds since that incarnation started *)
  tr_source : int;
  tr_replica : int;
  tr_kind : string;  (** "down" | "up" | "failover" *)
  tr_detail : string;
}
(** One mediator failover-log entry, recovered from the stats snapshot
    stashed before each drain and at the end (the log dies with its
    incarnation). *)

type report = {
  sk_load : Loadgen.report;
  sk_events : event list;
  sk_transitions : transition list;
  sk_drain_exits : int list;
  sk_kills : (int * int) list;  (** endpoints killed, in schedule order *)
  sk_violations : string list;  (** empty = every invariant held *)
  sk_availability_pct : float;  (** share of sessions served on the first try *)
  sk_kill_window_p99_ms : float;
      (** p99 start-to-verdict latency of sessions overlapping a kill window *)
  sk_failover_latency_s : float;
      (** worst over kills: first session completion after the kill *)
}

val ok : report -> bool

val run : ?progress:(string -> unit) -> config -> report
(** Execute the soak.  [progress] (default silent) receives one line
    per schedule action as it happens.  The supervisor and every child
    are killed and reaped however this returns. *)

val summary_json : report -> Secmed_obs.Json.t
(** The metrics + invariants object embedded in BENCH_serve.json's
    ["failover"] section. *)

val render : report -> string

val write_log : path:string -> report -> unit
(** The machine-readable soak artifact: one JSON object per line —
    executed schedule events, the recovered transition log, drain exit
    codes, violations, and the summary. *)

open Secmed_mediation
module Obs = Secmed_obs
module Trace = Obs.Trace

let malformed fmt = Printf.ksprintf (fun m -> raise (Wire.Malformed m)) fmt

let write_attrs w attrs =
  Wire.write_list w
    (fun (k, v) ->
      Wire.write_string w k;
      Wire.write_string w (Obs.Json.to_string v))
    attrs

let read_attrs r =
  Wire.read_list r (fun () ->
      let k = Wire.read_string r in
      let raw = Wire.read_string r in
      match Obs.Json.parse raw with
      | Ok v -> (k, v)
      | Error e -> malformed "bad attr json for %s: %s" k e)

(* Optional span ids travel +1 (0 = none) so the codec never sees a
   negative int. *)
let write_opt_id w = function
  | Some id -> Wire.write_int w (id + 1)
  | None -> Wire.write_int w 0

let read_opt_id r =
  match Wire.read_int r with 0 -> None | n -> Some (n - 1)

let write_kind w = function
  | Trace.Protocol -> Wire.write_int w 0
  | Trace.Phase -> Wire.write_int w 1
  | Trace.Operation -> Wire.write_int w 2

let read_kind r =
  match Wire.read_int r with
  | 0 -> Trace.Protocol
  | 1 -> Trace.Phase
  | 2 -> Trace.Operation
  | n -> malformed "unknown span kind %d" n

let payload_of t =
  let w = Wire.writer () in
  Wire.write_int w (Int64.to_int (Trace.epoch_ns t));
  Wire.write_list w
    (fun (s : Trace.span) ->
      Wire.write_int w s.Trace.id;
      write_opt_id w s.Trace.parent;
      Wire.write_string w s.Trace.name;
      write_kind w s.Trace.kind;
      Wire.write_int w (Int64.to_int s.Trace.start_ns);
      Wire.write_int w (Int64.to_int s.Trace.stop_ns);
      write_attrs w (Trace.attrs s))
    (Trace.spans t);
  Wire.write_list w
    (fun (e : Trace.event) ->
      Wire.write_string w e.Trace.ev_name;
      write_opt_id w e.Trace.ev_span;
      Wire.write_int w (Int64.to_int e.Trace.ev_ns);
      write_attrs w e.Trace.ev_attrs)
    (Trace.events t);
  Wire.contents w

let decode payload =
  let r = Wire.reader payload in
  let epoch_ns = Int64.of_int (Wire.read_int r) in
  let spans =
    Wire.read_list r (fun () ->
        let id = Wire.read_int r in
        let parent = read_opt_id r in
        let name = Wire.read_string r in
        let kind = read_kind r in
        let start_ns = Int64.of_int (Wire.read_int r) in
        let stop_ns = Int64.of_int (Wire.read_int r) in
        let attrs = read_attrs r in
        { Trace.id; parent; name; kind; start_ns; stop_ns;
          rev_attrs = List.rev attrs })
  in
  let events =
    Wire.read_list r (fun () ->
        let ev_name = Wire.read_string r in
        let ev_span = read_opt_id r in
        let ev_ns = Int64.of_int (Wire.read_int r) in
        let ev_attrs = read_attrs r in
        { Trace.ev_name; ev_span; ev_ns; ev_attrs })
  in
  Wire.expect_end r;
  (epoch_ns, spans, events)

type remote = {
  rm_party : Transcript.party;
  rm_parent : int;
  rm_payload : string;
}

let pid_of = function
  | Transcript.Client -> 1
  | Transcript.Mediator -> 2
  | Transcript.Authority -> 100
  | Transcript.Source i -> 2 + i

let process_name_of = function
  | Transcript.Client -> "client"
  | Transcript.Mediator -> "mediator"
  | Transcript.Authority -> "authority"
  | Transcript.Source i -> Printf.sprintf "source-%d" i

(* Rebase one decoded batch into the merged space: shift every span id
   by [id_offset], hang parentless spans under [root_parent], and move
   timestamps from the batch collector's epoch onto the client's. *)
let rebase ~id_offset ~ns_delta ~root_parent (spans, events) =
  let spans =
    List.map
      (fun (s : Trace.span) ->
        {
          s with
          Trace.id = s.Trace.id + id_offset;
          parent =
            (match s.Trace.parent with
            | Some p -> Some (p + id_offset)
            | None -> root_parent);
          start_ns = Int64.add s.Trace.start_ns ns_delta;
          stop_ns = Int64.add s.Trace.stop_ns ns_delta;
        })
      spans
  in
  let events =
    List.map
      (fun (e : Trace.event) ->
        {
          e with
          Trace.ev_span =
            (match e.Trace.ev_span with
            | Some p -> Some (p + id_offset)
            | None -> None);
          ev_ns = Int64.add e.Trace.ev_ns ns_delta;
        })
      events
  in
  (spans, events)

let max_span_id spans =
  List.fold_left (fun m (s : Trace.span) -> max m s.Trace.id) (-1) spans

(* Mediator lane first (its session span is everyone's root), then the
   sources by index; arrival order is preserved within a party so the
   per-epoch source batches stay chronological. *)
let party_rank = function
  | Transcript.Mediator -> (0, 0)
  | Transcript.Source i -> (1, i)
  | Transcript.Client -> (2, 0)
  | Transcript.Authority -> (3, 0)

let merge ~client remotes =
  let client_epoch = Trace.epoch_ns client in
  let client_spans = Trace.spans client in
  let ordered =
    List.stable_sort
      (fun a b -> compare (party_rank a.rm_party) (party_rank b.rm_party))
      remotes
  in
  let next_base = ref (max_span_id client_spans + 1) in
  let mediator_offset = ref 0 in
  let lanes = Hashtbl.create 8 in
  let lane_order = ref [] in
  List.iter
    (fun rm ->
      let epoch, spans, events = decode rm.rm_payload in
      let id_offset = !next_base in
      (match rm.rm_party with
      | Transcript.Mediator ->
        if not (Hashtbl.mem lanes Transcript.Mediator) then
          mediator_offset := id_offset
      | _ -> ());
      let root_parent =
        if rm.rm_parent < 0 then None
        else Some (rm.rm_parent + !mediator_offset)
      in
      let ns_delta = Int64.sub epoch client_epoch in
      let spans, events = rebase ~id_offset ~ns_delta ~root_parent (spans, events) in
      next_base := max !next_base (max_span_id spans + 1);
      (if not (Hashtbl.mem lanes rm.rm_party) then (
         Hashtbl.replace lanes rm.rm_party (ref [], ref []);
         lane_order := rm.rm_party :: !lane_order));
      let lane_spans, lane_events = Hashtbl.find lanes rm.rm_party in
      lane_spans := !lane_spans @ spans;
      lane_events := !lane_events @ events)
    ordered;
  let client_process =
    {
      Secmed_obs.Export.pr_pid = pid_of Transcript.Client;
      pr_name = process_name_of Transcript.Client;
      pr_spans = client_spans;
      pr_events = Trace.events client;
    }
  in
  client_process
  :: List.rev_map
       (fun party ->
         let spans, events = Hashtbl.find lanes party in
         {
           Secmed_obs.Export.pr_pid = pid_of party;
           pr_name = process_name_of party;
           pr_spans = !spans;
           pr_events = !events;
         })
       !lane_order

(** Shipping trace collectors across the wire and merging them back.

    A distributed [--trace] run collects spans in three-plus processes
    at once: the client, the mediator, and every source.  Each remote
    process serializes its collector with {!payload_of} into the
    [Frame.Span_batch] payload; the client decodes every batch and
    {!merge}s them — rebasing span ids into one shared id space,
    reparenting each batch's roots under the mediator's session span,
    and shifting timestamps onto the client collector's epoch (the
    monotonic clock is comparable across processes on one host, so the
    per-collector [epoch_ns] carried in the payload is all the merge
    needs to share a timeline).

    The result is a {!Secmed_obs.Export.process} list ready for
    [Export.chrome_json_processes] / [Export.jsonl_processes]: one
    Chrome pid lane per process, every source span hanging under the
    mediator's session span. *)

open Secmed_mediation
module Obs = Secmed_obs

val payload_of : Obs.Trace.t -> string
(** The collector's epoch, spans and events, [Wire]-encoded.  Span
    attributes travel as compact JSON text. *)

val decode : string -> int64 * Obs.Trace.span list * Obs.Trace.event list
(** Inverse of {!payload_of}; raises {!Wire.Malformed} on anything it
    would not produce. *)

(** One received span batch, still in its sender's id/time space.
    [rm_parent] is the span id {e in the mediator's id space} the
    batch's roots belong under ([-1] = none — the mediator's own
    batch). *)
type remote = {
  rm_party : Transcript.party;
  rm_parent : int;
  rm_payload : string;
}

val merge : client:Obs.Trace.t -> remote list -> Obs.Export.process list
(** The client's own lane (pid 1) followed by one lane per remote party
    (mediator pid 2, source [i] pid [2+i]), ids rebased to be globally
    unique, roots reparented, timestamps on the client's epoch.
    Mediator batches are rebased first so source roots can resolve
    [rm_parent]; multiple batches from one party (sources ship one per
    epoch) share a lane in arrival order. *)

(** Monotonic time source for all telemetry and benchmarking.

    Reads [CLOCK_MONOTONIC], so intervals are immune to NTP steps and
    other wall-clock adjustments.  Absolute values are meaningless across
    processes; only differences matter. *)

val now_ns : unit -> int64
(** Nanoseconds since an arbitrary, fixed origin. *)

val now : unit -> float
(** Seconds since the same origin (nanosecond resolution). *)

val elapsed_ns : since:int64 -> int64
(** [now_ns () - since], clamped to be non-negative. *)

val ns_to_ms : int64 -> float
val ns_to_s : int64 -> float

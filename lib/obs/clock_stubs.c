/* Monotonic clock binding.
 *
 * The telemetry layer (and every phase timing / bench median derived from
 * it) must not observe NTP steps or other wall-clock adjustments, so it
 * reads CLOCK_MONOTONIC directly instead of going through gettimeofday. */

#define _POSIX_C_SOURCE 199309L

#include <time.h>

#include <caml/alloc.h>
#include <caml/mlvalues.h>

CAMLprim value secmed_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL + (int64_t)ts.tv_nsec);
}

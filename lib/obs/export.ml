let party_of_span s =
  match Trace.find_attr s "party" with
  | Some (Json.Str p) -> p
  | _ -> "run"

(* Stable party -> Chrome thread-id assignment, in order of first
   appearance; "run" (un-attributed spans, the roots) is tid 0. *)
let tid_table spans =
  let order = ref [ "run" ] in
  List.iter
    (fun s ->
      let p = party_of_span s in
      if not (List.mem p !order) then order := !order @ [ p ])
    spans;
  let table = Hashtbl.create 8 in
  List.iteri (fun i p -> Hashtbl.add table p i) !order;
  (table, !order)

let us ns = Int64.to_float ns /. 1e3

let args_of attrs = match attrs with [] -> [] | attrs -> [ ("args", Json.Obj attrs) ]

type process = {
  pr_pid : int;
  pr_name : string;
  pr_spans : Trace.span list;
  pr_events : Trace.event list;
}

let process_of_trace ?(pid = 1) ?(name = "") trace =
  { pr_pid = pid; pr_name = name; pr_spans = Trace.spans trace; pr_events = Trace.events trace }

(* One process's slice of the Chrome event array: its metadata (the
   process_name only when the process is named — the anonymous
   single-process export stays byte-identical to the historical format),
   its thread lanes, its spans, its instants. *)
let chrome_events_of p =
  let tids, order = tid_table p.pr_spans in
  let tid_of name = Option.value ~default:0 (Hashtbl.find_opt tids name) in
  let process_metadata =
    if String.equal p.pr_name "" then []
    else
      [
        Json.Obj
          [
            ("name", Json.Str "process_name");
            ("ph", Json.Str "M");
            ("pid", Json.Int p.pr_pid);
            ("tid", Json.Int 0);
            ("args", Json.Obj [ ("name", Json.Str p.pr_name) ]);
          ];
      ]
  in
  let metadata =
    List.map
      (fun name ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.Int p.pr_pid);
            ("tid", Json.Int (tid_of name));
            ("args", Json.Obj [ ("name", Json.Str name) ]);
          ])
      order
  in
  let span_events =
    List.map
      (fun s ->
        Json.Obj
          ([
             ("name", Json.Str s.Trace.name);
             ("cat", Json.Str (Trace.kind_name s.Trace.kind));
             ("ph", Json.Str "X");
             ("pid", Json.Int p.pr_pid);
             ("tid", Json.Int (tid_of (party_of_span s)));
             ("ts", Json.Float (us s.Trace.start_ns));
             ("dur", Json.Float (us (Trace.duration_ns s)));
           ]
          @ args_of (("span_id", Json.Int s.Trace.id) :: Trace.attrs s)))
      p.pr_spans
  in
  let span_by_id =
    let t = Hashtbl.create 64 in
    List.iter (fun s -> Hashtbl.replace t s.Trace.id s) p.pr_spans;
    t
  in
  let instant_events =
    List.map
      (fun e ->
        let tid =
          match e.Trace.ev_span with
          | Some id ->
            (match Hashtbl.find_opt span_by_id id with
             | Some s -> tid_of (party_of_span s)
             | None -> 0)
          | None -> 0
        in
        Json.Obj
          ([
             ("name", Json.Str e.Trace.ev_name);
             ("cat", Json.Str "event");
             ("ph", Json.Str "i");
             ("s", Json.Str "t");
             ("pid", Json.Int p.pr_pid);
             ("tid", Json.Int tid);
             ("ts", Json.Float (us e.Trace.ev_ns));
           ]
          @ args_of e.Trace.ev_attrs))
      p.pr_events
  in
  process_metadata @ metadata @ span_events @ instant_events

let has_content p = p.pr_spans <> [] || p.pr_events <> []

let chrome_json_processes processes =
  Json.to_string_pretty
    (Json.List (List.concat_map chrome_events_of (List.filter has_content processes)))

let chrome_json trace =
  Json.to_string_pretty (Json.List (chrome_events_of (process_of_trace trace)))

let span_json ?pid s =
  let pid_field = match pid with None -> [] | Some p -> [ ("pid", Json.Int p) ] in
  Json.Obj
    (("type", Json.Str "span")
     :: pid_field
    @ [
        ("id", Json.Int s.Trace.id);
        ( "parent",
          match s.Trace.parent with Some p -> Json.Int p | None -> Json.Null );
        ("name", Json.Str s.Trace.name);
        ("kind", Json.Str (Trace.kind_name s.Trace.kind));
        ("start_ns", Json.Int (Int64.to_int s.Trace.start_ns));
        ("dur_ns", Json.Int (Int64.to_int (Trace.duration_ns s)));
        ("attrs", Json.Obj (Trace.attrs s));
      ])

let event_json ?pid e =
  let pid_field = match pid with None -> [] | Some p -> [ ("pid", Json.Int p) ] in
  Json.Obj
    (("type", Json.Str "event")
     :: pid_field
    @ [
        ("name", Json.Str e.Trace.ev_name);
        ( "span",
          match e.Trace.ev_span with Some p -> Json.Int p | None -> Json.Null );
        ("at_ns", Json.Int (Int64.to_int e.Trace.ev_ns));
        ("attrs", Json.Obj e.Trace.ev_attrs);
      ])

let clock_line =
  Json.Obj [ ("type", Json.Str "clock"); ("unit", Json.Str "ns"); ("monotonic", Json.Bool true) ]

let jsonl trace =
  let buf = Buffer.create 4096 in
  let line v =
    Buffer.add_string buf (Json.to_string v);
    Buffer.add_char buf '\n'
  in
  line clock_line;
  List.iter (fun s -> line (span_json s)) (Trace.spans trace);
  List.iter (fun e -> line (event_json e)) (Trace.events trace);
  Buffer.contents buf

let jsonl_processes processes =
  let buf = Buffer.create 4096 in
  let line v =
    Buffer.add_string buf (Json.to_string v);
    Buffer.add_char buf '\n'
  in
  line clock_line;
  List.iter
    (fun p ->
      line
        (Json.Obj
           [ ("type", Json.Str "process"); ("pid", Json.Int p.pr_pid);
             ("name", Json.Str p.pr_name) ]);
      List.iter (fun s -> line (span_json ~pid:p.pr_pid s)) p.pr_spans;
      List.iter (fun e -> line (event_json ~pid:p.pr_pid e)) p.pr_events)
    (List.filter has_content processes);
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

let format_of_path path =
  if Filename.check_suffix path ".jsonl" then `Jsonl else `Chrome

let party_of_span s =
  match Trace.find_attr s "party" with
  | Some (Json.Str p) -> p
  | _ -> "run"

(* Stable party -> Chrome thread-id assignment, in order of first
   appearance; "run" (un-attributed spans, the roots) is tid 0. *)
let tid_table trace =
  let order = ref [ "run" ] in
  List.iter
    (fun s ->
      let p = party_of_span s in
      if not (List.mem p !order) then order := !order @ [ p ])
    (Trace.spans trace);
  let table = Hashtbl.create 8 in
  List.iteri (fun i p -> Hashtbl.add table p i) !order;
  (table, !order)

let us ns = Int64.to_float ns /. 1e3

let args_of attrs = match attrs with [] -> [] | attrs -> [ ("args", Json.Obj attrs) ]

let chrome_json trace =
  let tids, order = tid_table trace in
  let tid_of p = Option.value ~default:0 (Hashtbl.find_opt tids p) in
  let metadata =
    List.map
      (fun p ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int (tid_of p));
            ("args", Json.Obj [ ("name", Json.Str p) ]);
          ])
      order
  in
  let span_events =
    List.map
      (fun s ->
        Json.Obj
          ([
             ("name", Json.Str s.Trace.name);
             ("cat", Json.Str (Trace.kind_name s.Trace.kind));
             ("ph", Json.Str "X");
             ("pid", Json.Int 1);
             ("tid", Json.Int (tid_of (party_of_span s)));
             ("ts", Json.Float (us s.Trace.start_ns));
             ("dur", Json.Float (us (Trace.duration_ns s)));
           ]
          @ args_of (("span_id", Json.Int s.Trace.id) :: Trace.attrs s)))
      (Trace.spans trace)
  in
  let span_by_id =
    let t = Hashtbl.create 64 in
    List.iter (fun s -> Hashtbl.replace t s.Trace.id s) (Trace.spans trace);
    t
  in
  let instant_events =
    List.map
      (fun e ->
        let tid =
          match e.Trace.ev_span with
          | Some id ->
            (match Hashtbl.find_opt span_by_id id with
             | Some s -> tid_of (party_of_span s)
             | None -> 0)
          | None -> 0
        in
        Json.Obj
          ([
             ("name", Json.Str e.Trace.ev_name);
             ("cat", Json.Str "event");
             ("ph", Json.Str "i");
             ("s", Json.Str "t");
             ("pid", Json.Int 1);
             ("tid", Json.Int tid);
             ("ts", Json.Float (us e.Trace.ev_ns));
           ]
          @ args_of e.Trace.ev_attrs))
      (Trace.events trace)
  in
  Json.to_string_pretty (Json.List (metadata @ span_events @ instant_events))

let jsonl trace =
  let buf = Buffer.create 4096 in
  let line v =
    Buffer.add_string buf (Json.to_string v);
    Buffer.add_char buf '\n'
  in
  line (Json.Obj [ ("type", Json.Str "clock"); ("unit", Json.Str "ns"); ("monotonic", Json.Bool true) ]);
  List.iter
    (fun s ->
      line
        (Json.Obj
           [
             ("type", Json.Str "span");
             ("id", Json.Int s.Trace.id);
             ( "parent",
               match s.Trace.parent with Some p -> Json.Int p | None -> Json.Null );
             ("name", Json.Str s.Trace.name);
             ("kind", Json.Str (Trace.kind_name s.Trace.kind));
             ("start_ns", Json.Int (Int64.to_int s.Trace.start_ns));
             ("dur_ns", Json.Int (Int64.to_int (Trace.duration_ns s)));
             ("attrs", Json.Obj (Trace.attrs s));
           ]))
    (Trace.spans trace);
  List.iter
    (fun e ->
      line
        (Json.Obj
           [
             ("type", Json.Str "event");
             ("name", Json.Str e.Trace.ev_name);
             ( "span",
               match e.Trace.ev_span with Some p -> Json.Int p | None -> Json.Null );
             ("at_ns", Json.Int (Int64.to_int e.Trace.ev_ns));
             ("attrs", Json.Obj e.Trace.ev_attrs);
           ]))
    (Trace.events trace);
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

let format_of_path path =
  if Filename.check_suffix path ".jsonl" then `Jsonl else `Chrome

(** Machine-readable trace export.

    Two formats: Chrome trace-event JSON (loadable in [chrome://tracing]
    / Perfetto: spans as complete "X" events on one track per party,
    instant events as "i" marks) and a compact JSONL stream (one JSON
    object per line: a [clock] header, then every span and event), meant
    for downstream tooling. *)

val chrome_json : Trace.t -> string
(** The whole file is a JSON array, parseable with {!Json.parse}. *)

val jsonl : Trace.t -> string

val write_file : string -> string -> unit

val format_of_path : string -> [ `Chrome | `Jsonl ]
(** [.jsonl] selects the JSONL stream; anything else the Chrome format. *)

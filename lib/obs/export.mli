(** Machine-readable trace export.

    Two formats: Chrome trace-event JSON (loadable in [chrome://tracing]
    / Perfetto: spans as complete "X" events on one track per party,
    instant events as "i" marks) and a compact JSONL stream (one JSON
    object per line: a [clock] header, then every span and event), meant
    for downstream tooling.

    Both formats come in a single-trace and a multi-process flavour.  A
    {!process} is one participant of a distributed run: its Chrome [pid]
    lane, its display name, and the spans and events its collector
    gathered (already rebased into the merged id/time space by the
    caller — see [Secmed_net.Trace_wire]). *)

type process = {
  pr_pid : int;
  pr_name : string;  (** [""] omits the process_name metadata entry *)
  pr_spans : Trace.span list;
  pr_events : Trace.event list;
}

val process_of_trace : ?pid:int -> ?name:string -> Trace.t -> process
(** Defaults: [pid 1], anonymous — the single-process identity. *)

val chrome_json : Trace.t -> string
(** The whole file is a JSON array, parseable with {!Json.parse}. *)

val chrome_json_processes : process list -> string
(** One Chrome trace with a pid lane per process, each with its own
    party -> tid table (deterministic: order of first appearance, "run"
    = tid 0).  A process with no spans and no events is omitted
    entirely — an empty span batch must not leave a dangling lane.
    [chrome_json t] and [chrome_json_processes [process_of_trace t]]
    are byte-identical for a non-empty trace. *)

val jsonl : Trace.t -> string

val jsonl_processes : process list -> string
(** The clock header, then per process: a [{"type":"process",...}] line
    followed by its span and event lines, each carrying the process
    [pid].  Empty processes are omitted, like the Chrome flavour. *)

val write_file : string -> string -> unit

val format_of_path : string -> [ `Chrome | `Jsonl ]
(** [.jsonl] selects the JSONL stream; anything else the Chrome format. *)

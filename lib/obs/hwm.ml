(* Tracked high-water-mark accounting for transport-held buffers.

   Every byte a streaming transport holds alive — frame reassembly
   buffers, send scratch, parked mux frames, decoded-but-unmerged chunk
   entries — is registered against a named region, so tests and benches
   can assert the claim the chunk protocol makes: transport memory stays
   flat while the row count scales.  Unlike the metrics registry this is
   always on (the whole point is to catch a regression the recording
   flag would hide), so the implementation keeps the hot path to one
   mutex and two adds. *)

type t = {
  name : string;
  mutable current : int;
  mutable peak : int;
}

let mu = Mutex.create ()
let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let region name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some r -> r
      | None ->
        let r = { name; current = 0; peak = 0 } in
        Hashtbl.add registry name r;
        r)

let name r = r.name

let alloc r n =
  if n <> 0 then
    locked (fun () ->
        r.current <- r.current + n;
        if r.current > r.peak then r.peak <- r.current)

let release r n =
  if n <> 0 then
    locked (fun () -> r.current <- max 0 (r.current - n))

let current r = locked (fun () -> r.current)
let peak r = locked (fun () -> r.peak)

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ r ->
          r.current <- 0;
          r.peak <- 0)
        registry)

let regions () =
  locked (fun () ->
      Hashtbl.fold (fun _ r acc -> (r.name, r.current, r.peak) :: acc) registry [])
  |> List.sort compare

let global_peak () =
  locked (fun () -> Hashtbl.fold (fun _ r acc -> acc + r.peak) registry 0)

let snapshot () =
  Json.Obj
    (List.map
       (fun (name, current, peak) ->
         (name, Json.Obj [ ("current", Json.Int current); ("peak", Json.Int peak) ]))
       (regions ()))

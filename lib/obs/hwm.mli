(** Tracked high-water-mark accounting for transport-held buffers.

    The streaming transport's headline claim — mediator memory flat in
    the row count — is enforced, not asserted: every buffer the chunked
    delivery path keeps alive registers its bytes against a named region
    here, and the stream bench/tests read the per-region peak back out.
    Always on (no recording gate): a regression that re-materialises a
    whole relation must show up even in runs that never enabled
    metrics. *)

type t
(** A named accounting region ("wire.stream", "mux.parked", ...). *)

val region : string -> t
(** Interned by name; repeated calls return the same region. *)

val name : t -> string

val alloc : t -> int -> unit
(** Charge [n] bytes to the region, advancing its peak if needed. *)

val release : t -> int -> unit
(** Return [n] bytes.  Clamped at zero, so a double release cannot
    drive the gauge negative. *)

val current : t -> int
val peak : t -> int

val reset : unit -> unit
(** Zero every region's current and peak (handles stay valid) — for
    test isolation; live buffers keep their real sizes, so only call
    between runs. *)

val regions : unit -> (string * int * int) list
(** All regions as [(name, current, peak)], sorted by name. *)

val global_peak : unit -> int
(** Sum of the per-region peaks. *)

val snapshot : unit -> Json.t
(** All regions as one JSON object: [{region: {current, peak}}]. *)
